(* A two-site grid: three local nodes, two remote nodes that are faster but
   behind a slow wide-area link. The mapping evaluator should refuse the
   remote site for a communication-heavy pipeline and embrace it when the
   remote speed advantage is large enough — the classic grid trade-off.

     dune exec examples/multisite.exe *)

module Stage = Aspipe_skel.Stage
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Scenario = Aspipe_core.Scenario
module Baselines = Aspipe_core.Baselines
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search
module Topology = Aspipe_grid.Topology

let make_topo ~remote_speed engine =
  Topology.two_site engine ~site_a:[| 10.0; 10.0; 10.0 |]
    ~site_b:[| remote_speed; remote_speed |] ~intra_latency:0.001 ~intra_bandwidth:1e8
    ~inter_latency:0.15 ~inter_bandwidth:2e6 ()

let scenario ~remote_speed ~output_bytes =
  let stages =
    Array.init 5 (fun i ->
        Stage.make ~name:(Printf.sprintf "m%d" i) ~output_bytes ~work:(Variate.Constant 1.0) ())
  in
  Scenario.make
    ~name:(Printf.sprintf "multisite-r%g" remote_speed)
    ~make_topo:(make_topo ~remote_speed)
    ~stages
    ~input:(Aspipe_skel.Stream_spec.make ~items:300 ~item_bytes:1e4 ())
    ()

let describe ~remote_speed ~output_bytes =
  let sc = scenario ~remote_speed ~output_bytes in
  let topo = Scenario.build sc ~rng:(Rng.create 1) in
  let spec = Costspec.of_topology ~topo ~stages:sc.Scenario.stages ~input:sc.Scenario.input () in
  let choice = Predictor.choose (Predictor.make spec) in
  let uses_remote =
    Array.exists (fun p -> p >= 3) (Mapping.to_array choice.Search.mapping)
  in
  let outcome =
    Baselines.run_static ~label:"model" ~mapping:(Mapping.to_array choice.Search.mapping)
      ~scenario:sc ~seed:4
  in
  Printf.printf
    "remote speed %5.1f, payload %.0e B -> mapping %s (%s), predicted %.2f, simulated %.2f items/s\n"
    remote_speed output_bytes
    (Mapping.to_string choice.Search.mapping)
    (if uses_remote then "uses remote site" else "stays local")
    choice.Search.score outcome.Baselines.throughput

let () =
  print_endline "communication-heavy pipeline (1 MB payloads):";
  List.iter (fun r -> describe ~remote_speed:r ~output_bytes:1e6) [ 10.0; 40.0; 160.0 ];
  print_endline "\ncompute-heavy pipeline (10 kB payloads):";
  List.iter (fun r -> describe ~remote_speed:r ~output_bytes:1e4) [ 10.0; 20.0; 40.0 ]
