(* The effects-based process API: simulation actors as sequential code.
   A dispatcher process feeds jobs through a mailbox to two worker processes
   that share a rate-modulated server — while a plain callback event
   degrades the server's speed halfway through. Processes, mailboxes and raw
   callbacks all interleave on the same virtual clock.

     dune exec examples/des_processes.exe *)

module Engine = Aspipe_des.Engine
module Signal = Aspipe_des.Signal
module Server = Aspipe_des.Server
module Process = Aspipe_des.Process

let () =
  let engine = Engine.create () in
  let rate = Signal.create engine 10.0 in
  let cpu = Server.create engine ~name:"cpu" ~rate in
  let jobs = Process.Mailbox.create engine in
  let done_count = ref 0 in

  (* Two identical workers, written as straight-line code. *)
  let worker name =
    Process.spawn engine (fun () ->
        let rec serve () =
          let job = Process.Mailbox.recv jobs in
          Printf.printf "[%6.2f] %s picks up job %d\n" (Process.now ()) name job;
          (* Bridge to the callback world: await the server's completion. *)
          Process.await (fun k -> Server.submit cpu ~work:5.0 (fun () -> k ()));
          Printf.printf "[%6.2f] %s finished job %d\n" (Process.now ()) name job;
          incr done_count;
          serve ()
        in
        serve ())
  in
  worker "worker-A";
  worker "worker-B";

  (* The dispatcher sleeps between submissions. *)
  Process.spawn engine (fun () ->
      for job = 1 to 6 do
        Process.Mailbox.send jobs job;
        Process.sleep 0.4
      done);

  (* A plain callback halves the CPU speed at t = 1.5 — in-flight service
     slows down mid-job. *)
  ignore
    (Engine.schedule engine ~delay:1.5 (fun () ->
         print_endline "[  1.50] background load arrives: CPU speed halved";
         Signal.set rate 5.0));

  Engine.run ~until:20.0 engine;
  Printf.printf "all %d jobs done by t=%.2f (virtual)\n" !done_count (Engine.now engine)
