(* The paper's motivating story, end to end: a non-dedicated node suddenly
   gets busy mid-run. The static schedule bleeds throughput for the rest of
   the run; the adaptive pattern notices the drop through its monitors and
   migrates the affected stages.

     dune exec examples/load_spike.exe *)

module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Loadgen = Aspipe_grid.Loadgen
module Trace = Aspipe_grid.Trace
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Baselines = Aspipe_core.Baselines
module Render = Aspipe_util.Render

let scenario =
  Scenario.make ~name:"load-spike"
    ~make_topo:(fun engine ->
      Aspipe_grid.Topology.heterogeneous engine ~speeds:[| 12.0; 10.0; 10.0 |] ~latency:0.01
        ~bandwidth:1e7 ())
    ~loads:[ (0, Loadgen.Step { at = 100.0; level = 0.15 }) ]
    ~stages:(Stage.balanced ~n:4 ~work:1.0 ())
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.25) ~items:1200 ())
    ~horizon:1e5 ()

let () =
  let static = Baselines.static_model_best ~scenario ~seed:3 () in
  let adaptive = Adaptive.run ~scenario ~seed:3 () in
  Printf.printf "static : mapping %s stays; makespan %.1f s\n"
    (Aspipe_model.Mapping.to_string static.Baselines.mapping)
    static.Baselines.makespan;
  Printf.printf "adaptive: %s -> %s; makespan %.1f s (%d adaptation(s))\n"
    (Aspipe_model.Mapping.to_string adaptive.Adaptive.initial_mapping)
    (Aspipe_model.Mapping.to_string adaptive.Adaptive.final_mapping)
    adaptive.Adaptive.makespan adaptive.Adaptive.adaptation_count;
  List.iter
    (fun (a : Trace.adaptation) ->
      Printf.printf "  at t=%.1f s migrated to (%s); predicted gain %.2f items/s, stall %.2f s\n"
        a.Trace.at
        (String.concat "," (List.map string_of_int (Array.to_list a.Trace.mapping_after)))
        a.Trace.predicted_gain a.Trace.migration_cost)
    (Trace.adaptations adaptive.Adaptive.trace);
  Render.print_figure ~title:"throughput timelines (items/s, 20 s windows)" ~x_label:"t (s)"
    ~y_label:"items/s"
    [
      Render.Series.make "static" (Trace.throughput_series static.Baselines.trace ~window:20.0);
      Render.Series.make "adaptive" (Trace.throughput_series adaptive.Adaptive.trace ~window:20.0);
    ]
