(* From real code to a grid schedule: time the actual image-filter kernels
   on this machine, turn the measurements into stage cost specs (1 work unit
   = 1 second on this machine), and let the performance model place the
   pipeline on a heterogeneous grid — then check the schedule in simulation.

     dune exec examples/calibrated_pipeline.exe *)

module Image = Aspipe_workload.Image
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng
module Costspec = Aspipe_model.Costspec
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search
module Analytic = Aspipe_model.Analytic
module Mapping = Aspipe_model.Mapping
module Scenario = Aspipe_core.Scenario
module Baselines = Aspipe_core.Baselines

let side = 256

let time_kernel ~repeats f frame =
  (* Warm up once, then average. *)
  ignore (f frame);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeats do
    ignore (f frame)
  done;
  (Unix.gettimeofday () -. t0) /. Float.of_int repeats

let () =
  let rng = Rng.create 31 in
  let frame = Image.random rng ~width:side ~height:side in
  let kernels =
    [
      ("blur", fun img -> Image.gaussian_blur ~radius:3 img);
      ("sharpen", Image.sharpen);
      ("sobel", Image.sobel);
      ("finalize", fun img -> Image.threshold ~level:0.25 (Image.normalize img));
    ]
  in
  Printf.printf "calibrating the real kernels on %dx%d frames:\n" side side;
  let measured =
    List.map
      (fun (name, f) ->
        let seconds = time_kernel ~repeats:5 f frame in
        Printf.printf "  %-9s %7.2f ms/frame\n%!" name (seconds *. 1000.0);
        (name, seconds))
      kernels
  in
  (* 1 work unit = 1 second on this machine; a node of speed s runs a stage
     s x faster than here. Payload = one grayscale frame. *)
  let frame_bytes = Float.of_int (side * side * 8) in
  let stages =
    Array.of_list
      (List.map
         (fun (name, seconds) ->
           Stage.make ~name ~output_bytes:frame_bytes ~state_bytes:frame_bytes
             ~work:(Variate.Constant seconds) ())
         measured)
  in
  let speeds = [| 2.0; 1.0; 1.0; 0.5 |] in
  let input = Stream_spec.make ~items:400 ~item_bytes:frame_bytes () in
  let scenario =
    Scenario.make ~name:"calibrated"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.heterogeneous engine ~speeds ~latency:0.005 ~bandwidth:5e7 ())
      ~stages ~input ()
  in
  let topo = Scenario.build scenario ~rng:(Rng.create 32) in
  let spec = Costspec.of_topology ~topo ~stages ~input () in
  let result = Predictor.choose (Predictor.make spec) in
  let mapping = result.Search.mapping in
  let station, _ = Analytic.bottleneck spec mapping in
  Printf.printf "\ngrid speeds (vs this machine): [%s]\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.1f") speeds)));
  Format.printf "model-chosen mapping %s, predicted %.2f frames/s (bottleneck: %a)@."
    (Mapping.to_string mapping) result.Search.score Analytic.pp_bottleneck station;
  let outcome =
    Baselines.run_static ~label:"calibrated" ~mapping:(Mapping.to_array mapping) ~scenario
      ~seed:33
  in
  Printf.printf "simulated: %.2f frames/s over %d frames (makespan %.1f virtual s)\n"
    outcome.Baselines.throughput 400 outcome.Baselines.makespan
