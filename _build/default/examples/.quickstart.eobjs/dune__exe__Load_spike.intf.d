examples/load_spike.mli:
