examples/farm_grid.mli:
