examples/multisite.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util List Printf
