examples/load_spike.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util List Printf String
