examples/calibrated_pipeline.mli:
