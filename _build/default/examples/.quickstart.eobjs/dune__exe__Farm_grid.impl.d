examples/farm_grid.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Format Fun List Printf String
