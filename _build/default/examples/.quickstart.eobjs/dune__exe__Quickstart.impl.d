examples/quickstart.ml: Array Aspipe_core Aspipe_grid Aspipe_skel Aspipe_util Format Printf
