examples/quickstart.mli:
