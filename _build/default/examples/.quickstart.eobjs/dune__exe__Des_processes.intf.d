examples/des_processes.mli:
