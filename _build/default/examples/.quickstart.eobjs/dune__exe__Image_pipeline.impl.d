examples/image_pipeline.ml: Aspipe_model Aspipe_skel Aspipe_util Aspipe_workload Float List Printf Unix
