examples/des_processes.ml: Aspipe_des Printf
