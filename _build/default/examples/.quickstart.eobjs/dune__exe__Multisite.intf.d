examples/multisite.mli:
