examples/calibrated_pipeline.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Aspipe_workload Float Format List Printf String Unix
