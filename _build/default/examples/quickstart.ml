(* Quickstart: build a 4-stage pipeline, run it on a simulated 3-node grid
   under the adaptive pattern, and print what happened.

     dune exec examples/quickstart.exe *)

module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive

let () =
  (* 1. Describe the application: four stages, the third twice as heavy. *)
  let stages =
    [|
      Stage.make ~name:"decode" ~work:(Aspipe_util.Variate.Constant 1.0) ();
      Stage.make ~name:"filter" ~work:(Aspipe_util.Variate.Constant 1.0) ();
      Stage.make ~name:"analyse" ~work:(Aspipe_util.Variate.Constant 2.0) ();
      Stage.make ~name:"encode" ~work:(Aspipe_util.Variate.Constant 1.0) ();
    |]
  in
  (* 2. Describe the run: 300 items arriving in a steady stream. *)
  let input = Stream_spec.make ~arrival:(Stream_spec.Spaced 0.4) ~items:300 () in
  (* 3. Describe the grid: three 10-unit/s nodes, 10 ms links. *)
  let make_topo engine =
    Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ()
  in
  let scenario = Scenario.make ~name:"quickstart" ~make_topo ~stages ~input () in
  (* 4. Run the adaptive pattern. *)
  let report = Adaptive.run ~scenario ~seed:1 () in
  Format.printf "%a@." Adaptive.pp_report report;
  Printf.printf "first item out at %.2f s; mean sojourn %.2f s\n"
    (match Aspipe_grid.Trace.completions report.Adaptive.trace with
    | [||] -> nan
    | arr -> snd arr.(0))
    (Aspipe_grid.Trace.mean_sojourn report.Adaptive.trace)
