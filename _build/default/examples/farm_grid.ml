(* Stage replication on the grid: a task farm over heterogeneous workers.
   Shows (a) why a round-robin deal should not include every node it can
   reach, and (b) the adaptive farm evicting a worker whose availability
   collapses mid-run, then finishing close to the clairvoyant schedule.

     dune exec examples/farm_grid.exe *)

module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Farm_sim = Aspipe_skel.Farm_sim
module Loadgen = Aspipe_grid.Loadgen
module Farm_model = Aspipe_model.Farm_model
module Scenario = Aspipe_core.Scenario
module Adaptive_farm = Aspipe_core.Adaptive_farm

let speeds = [| 14.0; 12.0; 10.0; 10.0; 8.0; 6.0 |]

let task =
  Stage.make ~name:"render" ~output_bytes:1e4 ~state_bytes:0.0
    ~work:(Aspipe_util.Variate.Constant 1.0) ()

let () =
  (* The model's view of the static question: who belongs in the deal? *)
  let model = Farm_model.make ~work:1.0 ~node_rates:speeds in
  let all = List.init (Array.length speeds) Fun.id in
  let best, predicted = Farm_model.best_round_robin_set model ~candidates:all in
  Printf.printf "round-robin over all 6 workers: %.1f items/s (slowest member binds)\n"
    (Farm_model.round_robin_throughput model ~workers:all);
  Printf.printf "model-best deal {%s}: %.1f items/s\n"
    (String.concat "," (List.map string_of_int best))
    predicted;
  Printf.printf "least-loaded over all 6: %.1f items/s (capacity sum)\n\n"
    (Farm_model.proportional_throughput model ~workers:all);

  (* The dynamic question: worker 1 collapses at t = 20 s. *)
  let scenario =
    Scenario.make ~name:"farm-demo"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.heterogeneous engine ~speeds ~latency:0.01 ~bandwidth:1e7 ())
      ~loads:[ (1, Loadgen.Step { at = 20.0; level = 0.1 }) ]
      ~stages:[| task |]
      ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.05) ~items:1200 ~item_bytes:1e4 ())
      ~horizon:1e4 ()
  in
  let static =
    Adaptive_farm.run
      ~config:{ Adaptive_farm.default_config with adapt = false }
      ~scenario ~seed:6 ()
  in
  let adaptive = Adaptive_farm.run ~scenario ~seed:6 () in
  Format.printf "static:   %a@." Adaptive_farm.pp_report static;
  Format.printf "adaptive: %a@." Adaptive_farm.pp_report adaptive;
  List.iter
    (fun (t, workers) ->
      Printf.printf "  at t=%.1f s the deal became {%s}\n" t
        (String.concat "," (List.map string_of_int workers)))
    adaptive.Adaptive_farm.worker_history
