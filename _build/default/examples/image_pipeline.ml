(* Real parallelism: the 5-stage image-filter chain on OCaml 5 domains.
   Demonstrates the typed pipeline API, stage fusion (the shared-memory
   analogue of mapping several stages to one processor), and the farm.

     dune exec examples/image_pipeline.exe *)

module Rng = Aspipe_util.Rng
module Pipe = Aspipe_skel.Pipe
module Skel_mc = Aspipe_skel.Skel_mc
module Farm_mc = Aspipe_skel.Farm_mc
module Image = Aspipe_workload.Image
module Mapping = Aspipe_model.Mapping

let () =
  let rng = Rng.create 5 in
  let frames = List.init 16 (fun _ -> Image.random rng ~width:160 ~height:160) in
  let chain = Image.standard_chain ~blur_radius:3 in

  let seq_out, seq_time = Skel_mc.run_seq_timed chain frames in
  Printf.printf "sequential        : %.3f s\n%!" seq_time;

  let par_out, par_time = Skel_mc.run_timed chain frames in
  Printf.printf "1 domain per stage: %.3f s (speedup %.2fx)\n%!" par_time (seq_time /. par_time);

  (* Fuse the 5 stages onto 2 "processors": stages 0-2 and 3-4. *)
  let groups = Mapping.to_array (Mapping.blocks ~stages:5 ~processors:2) in
  let t0 = Unix.gettimeofday () in
  let fused_out = Skel_mc.run_grouped ~groups chain frames in
  let fused_time = Unix.gettimeofday () -. t0 in
  Printf.printf "fused to 2 groups : %.3f s (speedup %.2fx)\n%!" fused_time (seq_time /. fused_time);

  (* Replicate the whole chain as a farm over 4 workers. *)
  let t0 = Unix.gettimeofday () in
  let farm_out = Farm_mc.map ~workers:4 (Pipe.apply chain) frames in
  let farm_time = Unix.gettimeofday () -. t0 in
  Printf.printf "farm of 4 workers : %.3f s (speedup %.2fx)\n%!" farm_time (seq_time /. farm_time);

  (* Every backend must produce identical results. *)
  let digest images = List.fold_left (fun acc i -> acc +. Image.checksum i) 0.0 images in
  let reference = digest seq_out in
  List.iter
    (fun (label, out) ->
      let d = Float.abs (digest out -. reference) in
      if d > 1e-6 then failwith (label ^ ": output mismatch");
      Printf.printf "%s output matches sequential reference\n" label)
    [ ("pipeline", par_out); ("fused", fused_out); ("farm", farm_out) ]
