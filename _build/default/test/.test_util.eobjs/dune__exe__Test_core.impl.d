test/test_core.ml: Alcotest Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Aspipe_workload Format Fun List Printf QCheck2 QCheck_alcotest String
