test/test_des.ml: Alcotest Aspipe_des Aspipe_util Float List QCheck2 QCheck_alcotest
