test/test_skel.mli:
