test/test_exp.ml: Alcotest Aspipe_exp Float List Printf
