test/test_mc.ml: Alcotest Array Aspipe_skel Aspipe_util Aspipe_workload Fun List Printf QCheck2 QCheck_alcotest String
