test/test_skel.ml: Alcotest Array Aspipe_des Aspipe_grid Aspipe_skel Aspipe_util Domain Float Fun List Printf QCheck2 QCheck_alcotest
