test/test_util.ml: Alcotest Array Aspipe_util Filename Float Format List Printf QCheck2 QCheck_alcotest String Sys
