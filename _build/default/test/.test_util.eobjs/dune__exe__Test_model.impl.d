test/test_model.ml: Alcotest Array Aspipe_des Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Float Fun List Printf QCheck2 QCheck_alcotest String
