test/test_grid.ml: Alcotest Array Aspipe_des Aspipe_grid Aspipe_util Float List Printf String
