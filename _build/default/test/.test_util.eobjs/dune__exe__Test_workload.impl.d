test/test_workload.ml: Alcotest Array Aspipe_skel Aspipe_util Aspipe_workload Float List QCheck2 QCheck_alcotest
