(* Tests for the performance-model library: mappings, cost specs, the
   analytic bottleneck evaluator, the CTMC evaluator (including regression
   against published PEPA-workbench figures) and mapping search. *)

module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Search = Aspipe_model.Search
module Predictor = Aspipe_model.Predictor
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* -------------------------------------------------------------- Mapping *)

let test_mapping_of_array () =
  let m = Mapping.of_array ~processors:3 [| 0; 2; 1 |] in
  Alcotest.(check int) "stages" 3 (Mapping.stages m);
  Alcotest.(check int) "processor_of" 2 (Mapping.processor_of m 1);
  Alcotest.(check string) "to_string" "(0,2,1)" (Mapping.to_string m);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mapping.of_array: processor out of range") (fun () ->
      ignore (Mapping.of_array ~processors:2 [| 0; 2 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Mapping.of_array: empty") (fun () ->
      ignore (Mapping.of_array ~processors:2 [||]))

let test_mapping_round_robin () =
  Alcotest.(check (array int)) "round robin" [| 0; 1; 2; 0; 1 |]
    (Mapping.to_array (Mapping.round_robin ~stages:5 ~processors:3))

let test_mapping_blocks () =
  Alcotest.(check (array int)) "even blocks" [| 0; 0; 1; 1 |]
    (Mapping.to_array (Mapping.blocks ~stages:4 ~processors:2));
  Alcotest.(check (array int)) "uneven blocks front-load the remainder" [| 0; 0; 1; 1; 2; 2; 3 |]
    (Mapping.to_array (Mapping.blocks ~stages:7 ~processors:4));
  Alcotest.(check (array int)) "more processors than stages" [| 0; 1 |]
    (Mapping.to_array (Mapping.blocks ~stages:2 ~processors:5))

let test_mapping_enumerate () =
  Alcotest.(check int) "Np^Ns candidates" 27
    (List.length (Mapping.enumerate ~stages:3 ~processors:3 ()));
  let pinned = Mapping.enumerate ~fix_first_on:1 ~stages:3 ~processors:3 () in
  Alcotest.(check int) "pinned space" 9 (List.length pinned);
  List.iter
    (fun m ->
      if Mapping.processor_of m 0 <> 1 then Alcotest.fail "pin violated")
    pinned;
  (* All candidates distinct. *)
  let as_lists = List.map (fun m -> Array.to_list (Mapping.to_array m)) pinned in
  Alcotest.(check int) "no duplicates" 9 (List.length (List.sort_uniq compare as_lists))

let test_mapping_neighbours () =
  let m = Mapping.of_array ~processors:3 [| 0; 1 |] in
  let ns = Mapping.neighbours m ~processors:3 in
  Alcotest.(check int) "Ns x (Np-1) neighbours" 4 (List.length ns);
  List.iter
    (fun n ->
      let diff = ref 0 in
      Array.iteri
        (fun i p -> if p <> Mapping.processor_of m i then incr diff)
        (Mapping.to_array n);
      Alcotest.(check int) "exactly one stage moves" 1 !diff)
    ns

let test_mapping_colocation () =
  let m = Mapping.of_array ~processors:3 [| 0; 0; 2 |] in
  Alcotest.(check (array int)) "counts" [| 2; 0; 1 |] (Mapping.colocation m ~processors:3);
  Alcotest.(check int) "sharing of stage 0" 2 (Mapping.stages_sharing m 0);
  Alcotest.(check int) "sharing of stage 2" 1 (Mapping.stages_sharing m 2)

let test_mapping_random_in_range =
  qtest "random mappings stay in range"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 8) (int_range 0 1000))
    (fun (stages, processors, seed) ->
      let m = Mapping.random (Rng.create seed) ~stages ~processors in
      Array.for_all (fun p -> p >= 0 && p < processors) (Mapping.to_array m))

(* ------------------------------------------------------------- Costspec *)

let build_spec ?(n = 3) ?(latency = 0.01) () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n ~speed:10.0 ~latency ~bandwidth:1e6 () in
  let stages = Stage.balanced ~n:2 ~work:2.0 ~output_bytes:1e3 () in
  let input = Stream_spec.make ~items:10 ~item_bytes:1e3 () in
  Costspec.of_topology ~topo ~stages ~input ()

let test_costspec_dimensions () =
  let spec = build_spec () in
  Alcotest.(check int) "processors" 3 (Costspec.processors spec);
  Alcotest.(check int) "stages" 2 (Costspec.stages spec);
  Costspec.validate spec

let test_costspec_service_rate_sharing () =
  let spec = build_spec () in
  let spread = Mapping.of_array ~processors:3 [| 0; 1 |] in
  let packed = Mapping.of_array ~processors:3 [| 0; 0 |] in
  (* speed 10, work 2 -> 5 items/s alone; halved when sharing. *)
  check_float "alone" 5.0 (Costspec.service_rate spec spread 0);
  check_float "shared" 2.5 (Costspec.service_rate spec packed 0)

let test_costspec_move_rates () =
  let spec = build_spec ~latency:0.1 () in
  let spread = Mapping.of_array ~processors:3 [| 0; 1 |] in
  let packed = Mapping.of_array ~processors:3 [| 0; 0 |] in
  (* Remote interior move: 0.1 + 1e3/1e6 = 0.101 s. *)
  check_close ~eps:1e-9 "remote move rate" (1.0 /. 0.101) (Costspec.move_rate spec spread 1);
  Alcotest.(check bool) "local move much faster" true
    (Costspec.move_rate spec packed 1 > 1000.0);
  (* Boundary moves use the user link. *)
  check_close ~eps:1e-9 "input move" (1.0 /. 0.101) (Costspec.move_rate spec spread 0);
  check_close ~eps:1e-9 "output move" (1.0 /. 0.101) (Costspec.move_rate spec spread 2);
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Costspec.move_rate: index out of range") (fun () ->
      ignore (Costspec.move_rate spec spread 3))

let test_costspec_with_stage_work () =
  let spec = build_spec () in
  let spec' = Costspec.with_stage_work spec [| 1.0; 4.0 |] in
  let m = Mapping.of_array ~processors:3 [| 0; 1 |] in
  check_float "updated work vector" 2.5 (Costspec.service_rate spec' m 1);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Costspec.with_stage_work: length mismatch") (fun () ->
      ignore (Costspec.with_stage_work spec [| 1.0 |]))


let test_costspec_link_quality_override () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:0.1 ~bandwidth:1e6 () in
  let stages = Stage.balanced ~n:2 ~work:1.0 ~output_bytes:1e3 () in
  let input = Stream_spec.make ~items:5 ~item_bytes:1e3 () in
  let nominal = Costspec.of_topology ~topo ~stages ~input () in
  let degraded =
    Costspec.of_topology
      ~link_quality:(fun ~src:_ ~dst:_ -> 0.5)
      ~user_link_quality:(fun _ -> 0.5)
      ~topo ~stages ~input ()
  in
  check_close ~eps:1e-9 "latency doubles at quality 0.5"
    (2.0 *. nominal.Costspec.latency.(0).(1))
    degraded.Costspec.latency.(0).(1);
  check_close ~eps:1e-9 "bandwidth halves"
    (nominal.Costspec.bandwidth.(0).(1) /. 2.0)
    degraded.Costspec.bandwidth.(0).(1);
  check_close ~eps:1e-9 "user latency doubles"
    (2.0 *. nominal.Costspec.user_latency.(1))
    degraded.Costspec.user_latency.(1);
  (* Ground-truth default picks up live link quality. *)
  Aspipe_grid.Link.set_quality (Topology.link topo ~src:0 ~dst:1) 0.25;
  let live = Costspec.of_topology ~topo ~stages ~input () in
  check_close ~eps:1e-9 "default reads live quality"
    (4.0 *. nominal.Costspec.latency.(0).(1))
    live.Costspec.latency.(0).(1)

(* ------------------------------------------------------------- Analytic *)

let synthetic_spec ~stage_work ~node_rates ?(latency = 0.0001) ?(bandwidth = 1e9) () =
  let np = Array.length node_rates in
  {
    Costspec.stage_work;
    node_rates;
    item_bytes = 1.0;
    output_bytes = Array.make (Array.length stage_work) 1.0;
    latency = Array.init np (fun _ -> Array.make np latency);
    bandwidth = Array.init np (fun _ -> Array.make np bandwidth);
    user_latency = Array.make np latency;
    user_bandwidth = Array.make np bandwidth;
  }

let test_analytic_processor_bottleneck () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 2.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let station, rate = Analytic.bottleneck spec m in
  check_close ~eps:1e-3 "slow node binds" 2.0 rate;
  (* The binding station involves the slow node: either its processor
     station or the cycle of the stage mapped to it. *)
  (match station with
  | Analytic.Processor 1 | Analytic.Stage_cycle 1 -> ()
  | Analytic.Processor _ | Analytic.Stage_cycle _ ->
      Alcotest.fail "expected the slow node to bind");
  check_close ~eps:1e-3 "throughput = bottleneck rate" 2.0 (Analytic.throughput spec m)

let test_analytic_cycle_bottleneck () =
  (* Fast nodes, dreadful link: the stage cycle binds. *)
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 100.0; 100.0 |] ~latency:0.5 ()
  in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let station, rate = Analytic.bottleneck spec m in
  (match station with
  | Analytic.Stage_cycle _ -> ()
  | Analytic.Processor _ -> Alcotest.fail "expected a stage cycle as bottleneck");
  check_close ~eps:0.01 "cycle ~ service + move" (1.0 /. (0.01 +. 0.5)) rate

let test_analytic_colocation_halves () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let spread = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let packed = Mapping.of_array ~processors:2 [| 0; 0 |] in
  let ratio = Analytic.throughput spec spread /. Analytic.throughput spec packed in
  check_close ~eps:0.01 "spread is twice as fast" 2.0 ratio

let test_analytic_fill_and_completion () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let fill = Analytic.fill_latency spec m in
  Alcotest.(check bool) "fill covers both services" true (fill >= 0.2);
  let completion = Analytic.completion_time spec m ~items:100 in
  Alcotest.(check bool) "completion beyond fill" true (completion > fill);
  check_close ~eps:0.1 "completion ~ fill + (n-1)/X" (fill +. (99.0 /. Analytic.throughput spec m))
    completion;
  Alcotest.check_raises "items 0"
    (Invalid_argument "Analytic.completion_time: items must be positive") (fun () ->
      ignore (Analytic.completion_time spec m ~items:0))

let test_analytic_monotone_in_speed =
  qtest ~count:50 "throughput never decreases when a node speeds up"
    QCheck2.Gen.(triple (int_range 0 2) (float_range 1.0 20.0) (int_range 0 999))
    (fun (node, extra, seed) ->
      let rng = Rng.create seed in
      let rates = Array.init 3 (fun _ -> 1.0 +. (9.0 *. Rng.float rng)) in
      let spec = synthetic_spec ~stage_work:[| 1.0; 2.0; 1.0 |] ~node_rates:rates () in
      let faster = Array.copy rates in
      faster.(node) <- faster.(node) +. extra;
      let spec' = synthetic_spec ~stage_work:[| 1.0; 2.0; 1.0 |] ~node_rates:faster () in
      let m = Mapping.of_array ~processors:3 [| 0; 1; 2 |] in
      Analytic.throughput spec' m >= Analytic.throughput spec m -. 1e-9)

(* ----------------------------------------------------------------- Ctmc *)

let test_ctmc_state_count () =
  let model = Ctmc.build ~service_rates:[| 1.0; 1.0; 1.0 |] ~move_rates:(Array.make 4 10.0) in
  Alcotest.(check int) "3^3 states" 27 (Ctmc.state_count model);
  Alcotest.(check bool) "transitions exist" true (Ctmc.transition_count model > 27)

let test_ctmc_build_validation () =
  Alcotest.check_raises "wrong move vector"
    (Invalid_argument "Ctmc.build: move_rates must have Ns+1 entries") (fun () ->
      ignore (Ctmc.build ~service_rates:[| 1.0 |] ~move_rates:[| 1.0 |]));
  Alcotest.check_raises "non-positive rate" (Invalid_argument "Ctmc: rates must be positive")
    (fun () -> ignore (Ctmc.build ~service_rates:[| 0.0 |] ~move_rates:[| 1.0; 1.0 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Ctmc.build: no stages") (fun () ->
      ignore (Ctmc.build ~service_rates:[||] ~move_rates:[| 1.0 |]))

let test_ctmc_steady_state_properties () =
  let model =
    Ctmc.build ~service_rates:[| 2.0; 5.0; 3.0 |] ~move_rates:[| 100.0; 7.0; 9.0; 100.0 |]
  in
  let pi = Ctmc.steady_state model in
  let total = Array.fold_left ( +. ) 0.0 pi in
  check_close ~eps:1e-9 "distribution sums to 1" 1.0 total;
  Array.iter (fun p -> if p < -1e-12 then Alcotest.fail "negative probability") pi;
  Alcotest.(check bool) "balance residual tiny" true (Ctmc.residual model pi < 1e-6)

(* Regression against the published PEPA-workbench results for this model
   (Benoit, Cole, Gilmore, Hillston; ICCS 2004, Section 4.2): 3 stages,
   li-i = 0.0001 s, no input/output transfer cost, equitable sharing. *)
let pepa_throughput ~times ~mapping =
  (* times.(p) = seconds per stage on processor p when alone. *)
  let processors = Array.length times in
  let m = Mapping.of_array ~processors mapping in
  let service_rates =
    Array.init 3 (fun i ->
        let p = mapping.(i) in
        1.0 /. times.(p) /. Float.of_int (Mapping.stages_sharing m i))
  in
  let fast = 1.0 /. 0.0001 in
  let move_rates = [| fast; fast; fast; fast |] in
  Ctmc.throughput (Ctmc.build ~service_rates ~move_rates)

let test_ctmc_reproduces_pepa_row1 () =
  (* (1,2,3) with t = 0.1 everywhere: published throughput 5.63467. *)
  check_close ~eps:0.01 "one stage per processor" 5.63467
    (pepa_throughput ~times:[| 0.1; 0.1; 0.1 |] ~mapping:[| 0; 1; 2 |])

let test_ctmc_reproduces_pepa_row2 () =
  (* Same with t = 0.2: published 2.81892 (exactly half). *)
  check_close ~eps:0.01 "busy processors halve throughput" 2.81892
    (pepa_throughput ~times:[| 0.2; 0.2; 0.2 |] ~mapping:[| 0; 1; 2 |])

let test_ctmc_reproduces_pepa_all_on_one () =
  (* (1,1,1) with t = 0.1: published 1.87963. *)
  check_close ~eps:0.01 "all stages on one processor" 1.87963
    (pepa_throughput ~times:[| 0.1; 0.1; 0.1 |] ~mapping:[| 0; 0; 0 |])

let test_ctmc_matches_analytic_on_fast_network () =
  (* With negligible move times and a dominant slow stage, blocking barely
     matters: CTMC must approach the bottleneck rate. *)
  let model =
    Ctmc.build ~service_rates:[| 100.0; 1.0; 100.0 |] ~move_rates:(Array.make 4 1e6)
  in
  check_close ~eps:0.02 "dominant bottleneck" 1.0 (Ctmc.throughput model)

let test_ctmc_of_costspec_consistency () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let x = Ctmc.throughput (Ctmc.of_costspec spec m) in
  Alcotest.(check bool) "between half and full bottleneck" true
    (x > 0.5 *. Analytic.throughput spec m && x <= Analytic.throughput spec m +. 1e-9)


(* ----------------------------------------------------------- Farm_model *)

module Farm_model = Aspipe_model.Farm_model

let test_farm_model_rates () =
  let model = Farm_model.make ~work:2.0 ~node_rates:[| 10.0; 4.0 |] in
  check_float "worker rate" 5.0 (Farm_model.worker_rate model 0);
  check_float "rr binds at the slowest" 4.0
    (Farm_model.round_robin_throughput model ~workers:[ 0; 1 ]);
  check_float "proportional sums" 7.0 (Farm_model.proportional_throughput model ~workers:[ 0; 1 ]);
  check_float "empty set" 0.0 (Farm_model.round_robin_throughput model ~workers:[]);
  Alcotest.check_raises "bad work" (Invalid_argument "Farm_model.make: work must be positive")
    (fun () -> ignore (Farm_model.make ~work:0.0 ~node_rates:[| 1.0 |]))

let test_farm_model_best_set () =
  (* rates 14,12,10,10,8,6: prefixes give 14,24,30,40,40,36 -> best is the
     4-element prefix (ties resolve to the first maximum found). *)
  let model = Farm_model.make ~work:1.0 ~node_rates:[| 14.0; 12.0; 10.0; 10.0; 8.0; 6.0 |] in
  let set, score = Farm_model.best_round_robin_set model ~candidates:[ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "drops the slow tail" [ 0; 1; 2; 3 ] set;
  check_float "score" 40.0 score

let test_farm_model_best_set_exhaustive =
  qtest ~count:60 "best prefix beats every subset"
    QCheck2.Gen.(array_size (int_range 1 8) (float_range 1.0 20.0))
    (fun rates ->
      let model = Farm_model.make ~work:1.0 ~node_rates:rates in
      let candidates = List.init (Array.length rates) Fun.id in
      let _, best = Farm_model.best_round_robin_set model ~candidates in
      (* Enumerate all non-empty subsets and verify none beats the prefix. *)
      let n = List.length candidates in
      let rec subsets mask =
        if mask >= 1 lsl n then true
        else begin
          let subset = List.filter (fun i -> mask land (1 lsl i) <> 0) candidates in
          (subset = [] || Farm_model.round_robin_throughput model ~workers:subset <= best +. 1e-9)
          && subsets (mask + 1)
        end
      in
      subsets 1)


(* ----------------------------------------------------------- Repl_model *)

module Repl_model = Aspipe_model.Repl_model

let test_repl_model_capacity () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 4.0 |] ~node_rates:[| 10.0; 10.0; 10.0 |] () in
  let replicas = [| [ 0 ]; [ 1; 2 ] |] in
  check_close ~eps:1e-9 "plain stage capacity" 10.0 (Repl_model.stage_capacity spec ~replicas 0);
  check_close ~eps:1e-9 "replicated hot stage sums shares" 5.0
    (Repl_model.stage_capacity spec ~replicas 1);
  check_close ~eps:1e-9 "throughput is the min" 5.0 (Repl_model.throughput spec ~replicas)

let test_repl_model_shared_node_splits () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  (* Node 0 carries both stages: each gets half its rate. *)
  let replicas = [| [ 0 ]; [ 0; 1 ] |] in
  Alcotest.(check (array int)) "assignment counts" [| 2; 1 |]
    (Repl_model.node_share ~replicas ~processors:2);
  check_close ~eps:1e-9 "stage 0 runs on a half share" 5.0
    (Repl_model.stage_capacity spec ~replicas 0);
  check_close ~eps:1e-9 "stage 1 gets half of node0 plus all of node1" 15.0
    (Repl_model.stage_capacity spec ~replicas 1)

let test_repl_model_best_replication () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0; 4.0; 1.0 |]
      ~node_rates:(Array.make 7 10.0) ()
  in
  let replicas, predicted = Repl_model.best_replication spec ~budget:7 ~processors:7 in
  Alcotest.(check int) "hot stage got the extra replicas" 4 (List.length replicas.(2));
  check_close ~eps:1e-9 "bottleneck resolved" 10.0 predicted;
  Alcotest.check_raises "budget too small"
    (Invalid_argument "Repl_model.best_replication: budget below one replica per stage")
    (fun () -> ignore (Repl_model.best_replication spec ~budget:3 ~processors:7))

let test_repl_model_validation () =
  let spec = synthetic_spec ~stage_work:[| 1.0 |] ~node_rates:[| 10.0 |] () in
  Alcotest.check_raises "arity" (Invalid_argument "Repl_model: one replica set per stage required")
    (fun () -> ignore (Repl_model.throughput spec ~replicas:[||]));
  Alcotest.check_raises "empty set" (Invalid_argument "Repl_model: empty replica set") (fun () ->
      ignore (Repl_model.throughput spec ~replicas:[| [] |]))


let test_repl_model_monotone_in_replicas =
  qtest ~count:50 "adding a replica to a fresh node never lowers throughput"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let stages = 2 + Rng.int rng 3 in
      let processors = stages + 2 in
      let spec =
        synthetic_spec
          ~stage_work:(Array.init stages (fun _ -> Rng.range rng 0.5 3.0))
          ~node_rates:(Array.init processors (fun _ -> Rng.range rng 5.0 15.0))
          ()
      in
      (* One replica per stage on its own node; then give a random stage the
         first spare node. *)
      let base = Array.init stages (fun i -> [ i ]) in
      let grown = Array.copy base in
      let lucky = Rng.int rng stages in
      grown.(lucky) <- [ lucky; stages ];
      Repl_model.throughput spec ~replicas:grown
      >= Repl_model.throughput spec ~replicas:base -. 1e-9)

(* ---------------------------------------------------------- Pepa_export *)

module Pepa_export = Aspipe_model.Pepa_export

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_pepa_export_structure () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 0; 1 |] in
  let source = Pepa_export.pipeline spec m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (string_contains source needle))
    [
      "Stage1 = (move1, infty).(process1, infty).(move2, infty).Stage1;";
      "Stage3";
      "Processor1 = (process1, mu1).Processor1 + (process2, mu2).Processor1;";
      "Processor2 = (process3, mu3).Processor2;";
      "Network =";
      "Pipeline = Stage1 <move2> (Stage2 <move3> (Stage3));";
      "Mapping = Network <move1, move2, move3, move4> Pipeline";
    ]

let test_pepa_export_rates_match_ctmc_inputs () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 2.0 |] ~node_rates:[| 10.0; 5.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let rates = Pepa_export.rate_table spec m in
  Alcotest.(check int) "Ns mus + Ns+1 lambdas" 5 (List.length rates);
  check_close ~eps:1e-9 "mu1 = service rate of stage 0" (Costspec.service_rate spec m 0)
    (List.assoc "mu1" rates);
  check_close ~eps:1e-9 "lambda2 = interior move rate" (Costspec.move_rate spec m 1)
    (List.assoc "lambda2" rates)

(* --------------------------------------------------------- Ctmc solvers *)

let test_ctmc_solvers_agree () =
  let model =
    Ctmc.build ~service_rates:[| 2.0; 5.0; 3.0 |] ~move_rates:[| 50.0; 7.0; 9.0; 50.0 |]
  in
  let gs = Ctmc.throughput ~solver:Ctmc.Gauss_seidel model in
  let power = Ctmc.throughput ~solver:Ctmc.Power model in
  check_close ~eps:1e-6 "both solvers find the same throughput" gs power

let test_ctmc_gauss_seidel_handles_stiff () =
  (* Rates spanning 6 orders of magnitude: power iteration at default budget
     cannot converge, Gauss-Seidel must. *)
  let model = Ctmc.build ~service_rates:(Array.make 3 1.0) ~move_rates:(Array.make 4 1e6) in
  let x = Ctmc.throughput ~solver:Ctmc.Gauss_seidel model in
  Alcotest.(check bool) "plausible throughput" true (x > 0.3 && x <= 1.0);
  Alcotest.check_raises "power diverges in the iteration budget"
    (Failure "Ctmc.steady_state: no convergence") (fun () ->
      ignore (Ctmc.throughput ~solver:Ctmc.Power ~max_iter:1000 model))


let test_cross_model_bounds =
  qtest ~count:40 "ctmc never exceeds the analytic saturation bound"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let stages = 2 + Rng.int rng 3 in
      let processors = 2 + Rng.int rng 3 in
      let spec =
        synthetic_spec
          ~stage_work:(Array.init stages (fun _ -> Rng.range rng 0.5 2.0))
          ~node_rates:(Array.init processors (fun _ -> Rng.range rng 5.0 15.0))
          ~latency:(Rng.range rng 1e-3 0.05)
          ()
      in
      let m = Mapping.random rng ~stages ~processors in
      let analytic = Analytic.throughput spec m in
      let ctmc = Ctmc.throughput (Ctmc.of_costspec spec m) in
      ctmc <= analytic +. (1e-6 *. analytic) && ctmc > 0.0)

(* --------------------------------------------------------------- Search *)

let table_evaluator ~processors table m =
  (* Deterministic scoring read from a table keyed by the mapping. *)
  ignore processors;
  let key = Array.to_list (Mapping.to_array m) in
  match List.assoc_opt key table with Some v -> v | None -> 0.0

let test_search_exhaustive_finds_max () =
  let table = [ ([ 0; 0 ], 1.0); ([ 0; 1 ], 3.0); ([ 1; 0 ], 2.0); ([ 1; 1 ], 0.5) ] in
  let result = Search.exhaustive ~stages:2 ~processors:2 (table_evaluator ~processors:2 table) in
  Alcotest.(check (array int)) "argmax" [| 0; 1 |] (Mapping.to_array result.Search.mapping);
  check_float "score" 3.0 result.Search.score;
  Alcotest.(check int) "evaluated everything" 4 result.Search.evaluated

let test_search_exhaustive_vs_random_evaluator =
  qtest ~count:30 "exhaustive = brute force max"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let score m =
        (* Hash-based deterministic pseudo-score. *)
        let h = Array.fold_left (fun acc p -> (acc * 31) + p + 7) 3 (Mapping.to_array m) in
        Float.of_int (h mod 1000) +. Rng.float (Rng.create h)
      in
      ignore rng;
      let result = Search.exhaustive ~stages:3 ~processors:3 score in
      let best =
        List.fold_left
          (fun acc m -> Float.max acc (score m))
          neg_infinity
          (Mapping.enumerate ~stages:3 ~processors:3 ())
      in
      Float.abs (result.Search.score -. best) < 1e-9)

let test_search_hill_climb_local_optimum () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0; 10.0 |] () in
  let evaluator = Analytic.throughput spec in
  let start = Mapping.of_array ~processors:3 [| 0; 0; 0 |] in
  let result = Search.hill_climb ~start ~processors:3 evaluator in
  (* No neighbour may beat the returned mapping. *)
  List.iter
    (fun n ->
      if evaluator n > result.Search.score +. 1e-9 then Alcotest.fail "not a local optimum")
    (Mapping.neighbours result.Search.mapping ~processors:3);
  (* On this convex-ish landscape it should find the global optimum. *)
  let best = Search.exhaustive ~stages:3 ~processors:3 evaluator in
  check_close ~eps:1e-9 "hill climb matches exhaustive here" best.Search.score result.Search.score

let test_search_greedy_reasonable () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0; 10.0; 10.0 |] ()
  in
  let evaluator = Analytic.throughput spec in
  let greedy = Search.greedy ~stages:4 ~processors:4 evaluator in
  let best = Search.exhaustive ~stages:4 ~processors:4 evaluator in
  Alcotest.(check bool) "greedy within 60% of optimal" true
    (greedy.Search.score >= 0.4 *. best.Search.score)

let test_search_auto_switches () =
  let spec = synthetic_spec ~stage_work:(Array.make 8 1.0) ~node_rates:(Array.make 8 10.0) () in
  let evaluator = Analytic.throughput spec in
  let result = Search.auto ~exhaustive_limit:100 ~stages:8 ~processors:8 evaluator in
  (* 8^8 >> 100, so auto must have taken the greedy+hill path; its answer
     should still be a local optimum. *)
  List.iter
    (fun n ->
      if evaluator n > result.Search.score +. 1e-9 then Alcotest.fail "auto not locally optimal")
    (Mapping.neighbours result.Search.mapping ~processors:8)

let test_search_best_of () =
  let candidates =
    [ Mapping.of_array ~processors:2 [| 0; 0 |]; Mapping.of_array ~processors:2 [| 0; 1 |] ]
  in
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let result = Search.best_of candidates (Analytic.throughput spec) in
  Alcotest.(check (array int)) "spread wins" [| 0; 1 |] (Mapping.to_array result.Search.mapping);
  Alcotest.check_raises "empty candidates" (Invalid_argument "Search.best_of: no candidates")
    (fun () -> ignore (Search.best_of [] (Analytic.throughput spec)))


let test_search_hill_climb_max_steps () =
  (* max_steps 0 returns the start unchanged. *)
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let start = Mapping.of_array ~processors:2 [| 0; 0 |] in
  let result = Search.hill_climb ~max_steps:0 ~start ~processors:2 (Analytic.throughput spec) in
  Alcotest.(check (array int)) "no moves taken" [| 0; 0 |] (Mapping.to_array result.Search.mapping)

let test_predictor_fix_first_pins () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 1.0; 10.0; 10.0 |] () in
  let predictor = Predictor.make spec in
  let pinned = Predictor.choose ~fix_first_on:0 predictor in
  Alcotest.(check int) "stage 0 stays pinned despite the slow node" 0
    (Mapping.processor_of pinned.Search.mapping 0);
  let free = Predictor.choose predictor in
  Alcotest.(check bool) "unpinned beats pinned" true
    (free.Search.score >= pinned.Search.score)

(* ------------------------------------------------------------ Predictor *)

let test_predictor_kinds_agree_on_ranking () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 2.0 |] ()
  in
  let analytic = Predictor.make ~kind:Predictor.Analytic spec in
  let ctmc = Predictor.make ~kind:Predictor.Ctmc spec in
  let good = Mapping.of_array ~processors:2 [| 0; 0 |] in
  let bad = Mapping.of_array ~processors:2 [| 1; 1 |] in
  Alcotest.(check bool) "analytic prefers the fast node" true
    (Predictor.evaluate analytic good > Predictor.evaluate analytic bad);
  Alcotest.(check bool) "ctmc prefers the fast node" true
    (Predictor.evaluate ctmc good > Predictor.evaluate ctmc bad)

let test_predictor_rank_sorted () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 2.0 |] () in
  let predictor = Predictor.make spec in
  let ranked = Predictor.rank predictor (Mapping.enumerate ~stages:2 ~processors:2 ()) in
  let scores = List.map snd ranked in
  Alcotest.(check (list (float 1e-9))) "descending" (List.sort (fun a b -> compare b a) scores)
    scores

let test_predictor_choose_and_completion () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0; 10.0 |] () in
  let predictor = Predictor.make spec in
  let result = Predictor.choose predictor in
  Alcotest.(check int) "one stage per processor is optimal" 3
    (List.length
       (List.sort_uniq compare (Array.to_list (Mapping.to_array result.Search.mapping))));
  let completion = Predictor.predicted_completion predictor result.Search.mapping ~items:50 in
  Alcotest.(check bool) "finite completion" true (Float.is_finite completion)

let () =
  Alcotest.run "aspipe_model"
    [
      ( "mapping",
        [
          Alcotest.test_case "of_array" `Quick test_mapping_of_array;
          Alcotest.test_case "round robin" `Quick test_mapping_round_robin;
          Alcotest.test_case "blocks" `Quick test_mapping_blocks;
          Alcotest.test_case "enumerate" `Quick test_mapping_enumerate;
          Alcotest.test_case "neighbours" `Quick test_mapping_neighbours;
          Alcotest.test_case "colocation" `Quick test_mapping_colocation;
          test_mapping_random_in_range;
        ] );
      ( "costspec",
        [
          Alcotest.test_case "dimensions" `Quick test_costspec_dimensions;
          Alcotest.test_case "service rate sharing" `Quick test_costspec_service_rate_sharing;
          Alcotest.test_case "move rates" `Quick test_costspec_move_rates;
          Alcotest.test_case "with_stage_work" `Quick test_costspec_with_stage_work;
          Alcotest.test_case "link quality override" `Quick test_costspec_link_quality_override;
        ] );
      ( "analytic",
        [
          Alcotest.test_case "processor bottleneck" `Quick test_analytic_processor_bottleneck;
          Alcotest.test_case "cycle bottleneck" `Quick test_analytic_cycle_bottleneck;
          Alcotest.test_case "colocation halves" `Quick test_analytic_colocation_halves;
          Alcotest.test_case "fill and completion" `Quick test_analytic_fill_and_completion;
          test_analytic_monotone_in_speed;
        ] );
      ( "ctmc",
        [
          Alcotest.test_case "state count" `Quick test_ctmc_state_count;
          Alcotest.test_case "build validation" `Quick test_ctmc_build_validation;
          Alcotest.test_case "steady state properties" `Quick test_ctmc_steady_state_properties;
          Alcotest.test_case "PEPA row: (1,2,3) t=0.1" `Quick test_ctmc_reproduces_pepa_row1;
          Alcotest.test_case "PEPA row: (1,2,3) t=0.2" `Quick test_ctmc_reproduces_pepa_row2;
          Alcotest.test_case "PEPA row: (1,1,1) t=0.1" `Quick test_ctmc_reproduces_pepa_all_on_one;
          Alcotest.test_case "fast network limit" `Quick test_ctmc_matches_analytic_on_fast_network;
          Alcotest.test_case "of_costspec consistency" `Quick test_ctmc_of_costspec_consistency;
        ] );
      ( "farm_model",
        [
          Alcotest.test_case "rates" `Quick test_farm_model_rates;
          Alcotest.test_case "best set" `Quick test_farm_model_best_set;
          test_farm_model_best_set_exhaustive;
        ] );
      ( "repl_model",
        [
          Alcotest.test_case "capacity" `Quick test_repl_model_capacity;
          Alcotest.test_case "shared node splits" `Quick test_repl_model_shared_node_splits;
          Alcotest.test_case "best replication" `Quick test_repl_model_best_replication;
          Alcotest.test_case "validation" `Quick test_repl_model_validation;
          test_repl_model_monotone_in_replicas;
        ] );
      ( "pepa_export",
        [
          Alcotest.test_case "structure" `Quick test_pepa_export_structure;
          Alcotest.test_case "rates match" `Quick test_pepa_export_rates_match_ctmc_inputs;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "agree" `Quick test_ctmc_solvers_agree;
          Alcotest.test_case "stiff chains" `Quick test_ctmc_gauss_seidel_handles_stiff;
          test_cross_model_bounds;
        ] );
      ( "search",
        [
          Alcotest.test_case "exhaustive argmax" `Quick test_search_exhaustive_finds_max;
          test_search_exhaustive_vs_random_evaluator;
          Alcotest.test_case "hill climb local optimum" `Quick test_search_hill_climb_local_optimum;
          Alcotest.test_case "greedy reasonable" `Quick test_search_greedy_reasonable;
          Alcotest.test_case "auto switches" `Quick test_search_auto_switches;
          Alcotest.test_case "best_of" `Quick test_search_best_of;
          Alcotest.test_case "hill climb max steps" `Quick test_search_hill_climb_max_steps;
          Alcotest.test_case "fix_first pins" `Quick test_predictor_fix_first_pins;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "kinds agree" `Quick test_predictor_kinds_agree_on_ranking;
          Alcotest.test_case "rank sorted" `Quick test_predictor_rank_sorted;
          Alcotest.test_case "choose & completion" `Quick test_predictor_choose_and_completion;
        ] );
    ]
