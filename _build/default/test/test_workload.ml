(* Tests for the workload library: synthetic stage families and the three
   real application kernels (image, numeric, text). *)

module Rng = Aspipe_util.Rng
module Stage = Aspipe_skel.Stage
module Pipe = Aspipe_skel.Pipe
module Synthetic = Aspipe_workload.Synthetic
module Image = Aspipe_workload.Image
module Numeric = Aspipe_workload.Numeric
module Textproc = Aspipe_workload.Textproc

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let total_work stages = Array.fold_left (fun acc s -> acc +. Stage.mean_work s) 0.0 stages

(* ------------------------------------------------------------ Synthetic *)

let test_synth_balanced () =
  let stages = Synthetic.balanced ~n:5 ~work:2.0 () in
  Alcotest.(check int) "count" 5 (Array.length stages);
  check_float "total work" 10.0 (total_work stages)

let test_synth_hot_stage () =
  let stages = Synthetic.hot_stage ~n:5 ~work:1.0 ~factor:4.0 () in
  check_float "middle stage is hot" 4.0 (Stage.mean_work stages.(2));
  check_float "others cold" 1.0 (Stage.mean_work stages.(0))

let test_synth_geometric_conserves_work () =
  let front = Synthetic.front_heavy ~n:6 ~work:1.5 ~ratio:4.0 () in
  check_close ~eps:1e-9 "front-heavy total preserved" 9.0 (total_work front);
  Alcotest.(check bool) "front heavier than back" true
    (Stage.mean_work front.(0) > Stage.mean_work front.(5));
  let back = Synthetic.back_heavy ~n:6 ~work:1.5 ~ratio:4.0 () in
  check_close ~eps:1e-9 "back-heavy total preserved" 9.0 (total_work back);
  Alcotest.(check bool) "back heavier than front" true
    (Stage.mean_work back.(5) > Stage.mean_work back.(0));
  check_close ~eps:1e-9 "end ratio respected" 4.0
    (Stage.mean_work front.(0) /. Stage.mean_work front.(5))

let test_synth_noisy_mean () =
  let stages = Synthetic.noisy ~n:3 ~work:2.0 ~cv:0.5 () in
  Array.iter (fun s -> check_close ~eps:1e-9 "gamma mean preserved" 2.0 (Stage.mean_work s)) stages

let test_synth_comm_heavy () =
  let stages = Synthetic.comm_heavy ~n:3 ~bytes:5e6 () in
  Array.iter
    (fun (s : Stage.t) -> check_float "payload set" 5e6 s.Stage.output_bytes)
    stages

let test_synth_random_positive () =
  let stages = Synthetic.random (Rng.create 3) ~n:8 ~mean_work:1.0 () in
  Array.iter
    (fun s ->
      let w = Stage.mean_work s in
      Alcotest.(check bool) "positive, within the log-uniform band" true (w > 0.2 && w < 5.0))
    stages

(* ---------------------------------------------------------------- Image *)

let test_image_create_get () =
  let img = Image.create ~width:4 ~height:3 ~f:(fun ~x ~y -> Float.of_int ((y * 4) + x) /. 12.0) in
  check_float "interior pixel" (5.0 /. 12.0) (Image.get img ~x:1 ~y:1);
  check_float "clamped left" (Image.get img ~x:0 ~y:1) (Image.get img ~x:(-3) ~y:1);
  check_float "clamped bottom" (Image.get img ~x:2 ~y:2) (Image.get img ~x:2 ~y:99)

let test_image_blur_constant_fixpoint () =
  let img = Image.constant ~width:16 ~height:16 0.7 in
  let blurred = Image.gaussian_blur ~radius:3 img in
  Alcotest.(check bool) "same dims" true (Image.dimensions_equal img blurred);
  check_close ~eps:1e-9 "constant image unchanged by blur" 0.7 (Image.get blurred ~x:8 ~y:8)

let test_image_blur_smooths () =
  let rng = Rng.create 4 in
  let img = Image.random rng ~width:32 ~height:32 in
  let blurred = Image.gaussian_blur ~radius:2 img in
  (* Blur preserves the mean (up to border effects) and reduces variance. *)
  check_close ~eps:0.05 "mean preserved" (Image.mean img) (Image.mean blurred);
  let variance image =
    let m = Image.mean image in
    let acc = ref 0.0 in
    for y = 0 to 31 do
      for x = 0 to 31 do
        let d = Image.get image ~x ~y -. m in
        acc := !acc +. (d *. d)
      done
    done;
    !acc
  in
  Alcotest.(check bool) "variance reduced" true (variance blurred < 0.5 *. variance img)

let test_image_sobel_flat_is_zero () =
  let img = Image.constant ~width:8 ~height:8 0.5 in
  let edges = Image.sobel img in
  check_float "no gradient on a flat image" 0.0 (Image.get edges ~x:4 ~y:4)

let test_image_sobel_detects_edge () =
  let img = Image.create ~width:16 ~height:16 ~f:(fun ~x ~y:_ -> if x < 8 then 0.0 else 1.0) in
  let edges = Image.sobel img in
  Alcotest.(check bool) "strong response at the edge" true (Image.get edges ~x:8 ~y:8 > 0.5);
  check_float "no response far from the edge" 0.0 (Image.get edges ~x:2 ~y:8)

let test_image_threshold_binary () =
  let rng = Rng.create 5 in
  let img = Image.random rng ~width:16 ~height:16 in
  let bw = Image.threshold ~level:0.5 img in
  Array.iter
    (fun p -> if p <> 0.0 && p <> 1.0 then Alcotest.fail "threshold output must be binary")
    bw.Image.pixels

let test_image_invert_involution () =
  let rng = Rng.create 6 in
  let img = Image.random rng ~width:8 ~height:8 in
  let twice = Image.invert (Image.invert img) in
  Array.iteri
    (fun i p ->
      if Float.abs (p -. img.Image.pixels.(i)) > 1e-12 then
        Alcotest.fail "invert must be an involution")
    twice.Image.pixels

let test_image_normalize_range () =
  let img = Image.create ~width:8 ~height:8 ~f:(fun ~x ~y -> 0.3 +. (0.001 *. Float.of_int (x + y))) in
  let n = Image.normalize img in
  let lo = Array.fold_left Float.min infinity n.Image.pixels in
  let hi = Array.fold_left Float.max neg_infinity n.Image.pixels in
  check_close ~eps:1e-9 "min stretched to 0" 0.0 lo;
  check_close ~eps:1e-9 "max stretched to 1" 1.0 hi;
  (* Flat images are left alone rather than divided by ~0. *)
  let flat = Image.constant ~width:4 ~height:4 0.5 in
  check_float "flat unchanged" 0.5 (Image.get (Image.normalize flat) ~x:1 ~y:1)

let test_image_checksum_sensitivity () =
  let rng = Rng.create 7 in
  let a = Image.random rng ~width:8 ~height:8 in
  let b = Image.random rng ~width:8 ~height:8 in
  Alcotest.(check bool) "different images, different digests" true
    (Image.checksum a <> Image.checksum b);
  check_float "digest deterministic" (Image.checksum a) (Image.checksum a)

let test_image_standard_chain () =
  let rng = Rng.create 8 in
  let img = Image.random rng ~width:24 ~height:24 in
  let chain = Image.standard_chain ~blur_radius:2 in
  Alcotest.(check int) "five stages" 5 (Pipe.length chain);
  let out = Pipe.apply chain img in
  Alcotest.(check bool) "output dims preserved" true (Image.dimensions_equal img out);
  Array.iter
    (fun p -> if p <> 0.0 && p <> 1.0 then Alcotest.fail "chain ends with a binary image")
    out.Image.pixels

let test_image_validation () =
  Alcotest.check_raises "empty image" (Invalid_argument "Image.create: empty image") (fun () ->
      ignore (Image.constant ~width:0 ~height:4 0.0));
  Alcotest.check_raises "blur radius" (Invalid_argument "Image.gaussian_blur: radius must be >= 1")
    (fun () -> ignore (Image.gaussian_blur ~radius:0 (Image.constant ~width:2 ~height:2 0.0)))

(* -------------------------------------------------------------- Numeric *)

let test_numeric_identity_multiply () =
  let rng = Rng.create 9 in
  let a = Numeric.random rng 6 in
  let i = Numeric.identity 6 in
  check_close ~eps:1e-12 "A x I = A" 0.0 (Numeric.max_abs_diff (Numeric.multiply a i) a);
  check_close ~eps:1e-12 "I x A = A" 0.0 (Numeric.max_abs_diff (Numeric.multiply i a) a)

let test_numeric_multiply_associative () =
  let rng = Rng.create 10 in
  let a = Numeric.random rng 5 and b = Numeric.random rng 5 and c = Numeric.random rng 5 in
  let left = Numeric.multiply (Numeric.multiply a b) c in
  let right = Numeric.multiply a (Numeric.multiply b c) in
  Alcotest.(check bool) "associative up to float error" true
    (Numeric.max_abs_diff left right < 1e-10)

let test_numeric_add_scale () =
  let rng = Rng.create 11 in
  let a = Numeric.random rng 4 in
  let doubled = Numeric.add a a in
  check_close ~eps:1e-12 "A + A = 2A" 0.0 (Numeric.max_abs_diff doubled (Numeric.scale 2.0 a))

let test_numeric_transpose_involution () =
  let rng = Rng.create 12 in
  let a = Numeric.random rng 7 in
  check_close ~eps:1e-15 "transpose twice" 0.0
    (Numeric.max_abs_diff (Numeric.transpose (Numeric.transpose a)) a)

let test_numeric_jacobi () =
  let flat = Numeric.create 6 ~f:(fun ~row:_ ~col:_ -> 0.5) in
  check_close ~eps:1e-15 "constant is a fixpoint" 0.0
    (Numeric.max_abs_diff (Numeric.jacobi_sweep flat) flat);
  let rng = Rng.create 13 in
  let a = Numeric.random rng 6 in
  let smoothed = Numeric.jacobi_sweep a in
  (* Borders held fixed. *)
  check_float "border preserved" (Numeric.get a ~row:0 ~col:3) (Numeric.get smoothed ~row:0 ~col:3);
  check_float "corner preserved" (Numeric.get a ~row:5 ~col:5) (Numeric.get smoothed ~row:5 ~col:5)

let test_numeric_frobenius () =
  let m = Numeric.create 2 ~f:(fun ~row ~col -> if row = col then 3.0 else 4.0) in
  check_close ~eps:1e-12 "sqrt(9+16+16+9)" (sqrt 50.0) (Numeric.frobenius m)

let test_numeric_refinement_chain () =
  let rng = Rng.create 14 in
  let a = Numeric.random rng 8 in
  let chain = Numeric.refinement_chain ~iterations:3 in
  Alcotest.(check int) "3 sweeps + normalize" 4 (Pipe.length chain);
  let out = Pipe.apply chain a in
  check_close ~eps:1e-9 "normalized output" 1.0 (Numeric.frobenius out)

let test_numeric_validation () =
  Alcotest.check_raises "dimension mismatch" (Invalid_argument "Numeric.multiply: dimension mismatch")
    (fun () -> ignore (Numeric.multiply (Numeric.identity 2) (Numeric.identity 3)));
  Alcotest.check_raises "size 0" (Invalid_argument "Numeric.create: size must be positive")
    (fun () -> ignore (Numeric.identity 0))

(* ------------------------------------------------------------- Textproc *)

let test_text_tokenize () =
  Alcotest.(check (list string)) "splits and lowercases" [ "the"; "grid"; "is"; "busy" ]
    (Textproc.tokenize "The GRID, is\tbusy!");
  Alcotest.(check (list string)) "empty input" [] (Textproc.tokenize "  ...  ")

let test_text_fingerprint () =
  let a = Textproc.fingerprint [ "a"; "b" ] in
  Alcotest.(check int) "deterministic" a (Textproc.fingerprint [ "a"; "b" ]);
  Alcotest.(check bool) "order sensitive" true (a <> Textproc.fingerprint [ "b"; "a" ])

let test_text_rle_roundtrip =
  qtest "rle decode . encode = id"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'e') (int_range 0 200))
    (fun s -> Textproc.rle_decode (Textproc.rle_encode s) = s)

let test_text_rle_known () =
  Alcotest.(check (list (pair char int))) "runs" [ ('a', 3); ('b', 1); ('a', 2) ]
    (Textproc.rle_encode "aaabaa");
  Alcotest.check_raises "bad run" (Invalid_argument "Textproc.rle_decode: non-positive run length")
    (fun () -> ignore (Textproc.rle_decode [ ('a', 0) ]))

let test_text_word_count () =
  Alcotest.(check (list (pair string int))) "sorted by count then word"
    [ ("b", 2); ("a", 1); ("c", 1) ]
    (Textproc.word_count "b a b c")

let test_text_random_document () =
  let doc = Textproc.random_document (Rng.create 15) ~words:200 in
  Alcotest.(check int) "requested word count" 200 (List.length (Textproc.tokenize doc))

let test_text_analysis_chain () =
  let chain = Textproc.analysis_chain () in
  Alcotest.(check int) "three stages" 3 (Pipe.length chain);
  let fp = Pipe.apply chain "grids grids pipelines" in
  (* cleanup de-pluralizes, so "grids" and "grid" agree. *)
  Alcotest.(check int) "stemmed equivalence" fp (Pipe.apply chain "grid grid pipeline")

let () =
  Alcotest.run "aspipe_workload"
    [
      ( "synthetic",
        [
          Alcotest.test_case "balanced" `Quick test_synth_balanced;
          Alcotest.test_case "hot stage" `Quick test_synth_hot_stage;
          Alcotest.test_case "geometric conserves work" `Quick test_synth_geometric_conserves_work;
          Alcotest.test_case "noisy mean" `Quick test_synth_noisy_mean;
          Alcotest.test_case "comm heavy" `Quick test_synth_comm_heavy;
          Alcotest.test_case "random positive" `Quick test_synth_random_positive;
        ] );
      ( "image",
        [
          Alcotest.test_case "create/get" `Quick test_image_create_get;
          Alcotest.test_case "blur fixpoint" `Quick test_image_blur_constant_fixpoint;
          Alcotest.test_case "blur smooths" `Quick test_image_blur_smooths;
          Alcotest.test_case "sobel flat" `Quick test_image_sobel_flat_is_zero;
          Alcotest.test_case "sobel edge" `Quick test_image_sobel_detects_edge;
          Alcotest.test_case "threshold binary" `Quick test_image_threshold_binary;
          Alcotest.test_case "invert involution" `Quick test_image_invert_involution;
          Alcotest.test_case "normalize range" `Quick test_image_normalize_range;
          Alcotest.test_case "checksum" `Quick test_image_checksum_sensitivity;
          Alcotest.test_case "standard chain" `Quick test_image_standard_chain;
          Alcotest.test_case "validation" `Quick test_image_validation;
        ] );
      ( "numeric",
        [
          Alcotest.test_case "identity multiply" `Quick test_numeric_identity_multiply;
          Alcotest.test_case "associativity" `Quick test_numeric_multiply_associative;
          Alcotest.test_case "add/scale" `Quick test_numeric_add_scale;
          Alcotest.test_case "transpose involution" `Quick test_numeric_transpose_involution;
          Alcotest.test_case "jacobi" `Quick test_numeric_jacobi;
          Alcotest.test_case "frobenius" `Quick test_numeric_frobenius;
          Alcotest.test_case "refinement chain" `Quick test_numeric_refinement_chain;
          Alcotest.test_case "validation" `Quick test_numeric_validation;
        ] );
      ( "textproc",
        [
          Alcotest.test_case "tokenize" `Quick test_text_tokenize;
          Alcotest.test_case "fingerprint" `Quick test_text_fingerprint;
          test_text_rle_roundtrip;
          Alcotest.test_case "rle known" `Quick test_text_rle_known;
          Alcotest.test_case "word count" `Quick test_text_word_count;
          Alcotest.test_case "random document" `Quick test_text_random_document;
          Alcotest.test_case "analysis chain" `Quick test_text_analysis_chain;
        ] );
    ]
