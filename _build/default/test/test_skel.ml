(* Tests for the skeleton library: stage/stream descriptors, the simulation
   backend (including migration), bounded channels and typed pipelines. *)

module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Trace = Aspipe_grid.Trace
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Skel_sim = Aspipe_skel.Skel_sim
module Chan = Aspipe_skel.Chan
module Pipe = Aspipe_skel.Pipe
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------------------------------------------------------- Stage *)

let test_stage_balanced () =
  let stages = Stage.balanced ~n:3 ~work:2.0 () in
  Alcotest.(check int) "count" 3 (Array.length stages);
  Array.iter (fun s -> check_float "mean work" 2.0 (Stage.mean_work s)) stages

let test_stage_imbalanced () =
  let stages = Stage.imbalanced ~n:4 ~work:1.0 ~hot_stage:2 ~factor:5.0 () in
  check_float "hot stage" 5.0 (Stage.mean_work stages.(2));
  check_float "cold stage" 1.0 (Stage.mean_work stages.(0));
  Alcotest.check_raises "hot index out of range"
    (Invalid_argument "Stage.imbalanced: hot stage out of range") (fun () ->
      ignore (Stage.imbalanced ~n:2 ~work:1.0 ~hot_stage:5 ~factor:2.0 ()))

let test_stage_make_validation () =
  Alcotest.check_raises "negative size" (Invalid_argument "Stage.make: sizes must be non-negative")
    (fun () -> ignore (Stage.make ~output_bytes:(-1.0) ~work:(Variate.Constant 1.0) ()))

(* ---------------------------------------------------------- Stream_spec *)

let test_stream_immediate () =
  let spec = Stream_spec.make ~items:5 () in
  let times = Stream_spec.arrival_times spec (Rng.create 1) in
  Alcotest.(check (array (float 0.0))) "all at zero" (Array.make 5 0.0) times

let test_stream_spaced () =
  let spec = Stream_spec.make ~arrival:(Stream_spec.Spaced 0.5) ~items:4 () in
  let times = Stream_spec.arrival_times spec (Rng.create 1) in
  Alcotest.(check (array (float 1e-9))) "regular spacing" [| 0.0; 0.5; 1.0; 1.5 |] times

let test_stream_poisson_monotone () =
  let spec = Stream_spec.make ~arrival:(Stream_spec.Poisson 2.0) ~items:100 () in
  let times = Stream_spec.arrival_times spec (Rng.create 2) in
  Alcotest.(check int) "count" 100 (Array.length times);
  Array.iteri
    (fun i t ->
      if i > 0 && t < times.(i - 1) then Alcotest.fail "arrivals must be non-decreasing";
      if t <= 0.0 then Alcotest.fail "arrivals must be positive")
    times

let test_stream_invalid () =
  Alcotest.check_raises "items 0" (Invalid_argument "Stream_spec.make: items must be positive")
    (fun () -> ignore (Stream_spec.make ~items:0 ()));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Stream_spec.make: Poisson rate must be positive") (fun () ->
      ignore (Stream_spec.make ~arrival:(Stream_spec.Poisson 0.0) ~items:1 ()))

(* ------------------------------------------------------------- Skel_sim *)

(* A tiny world: [n] nodes at speed 10, negligible network. *)
let quiet_topo ?(n = 3) engine =
  Topology.uniform engine ~n ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 ()

let run_sim ?(n = 3) ?(items = 10) ?arrival ~stages ~mapping () =
  let engine = Engine.create () in
  let topo = quiet_topo ~n engine in
  let input = Stream_spec.make ?arrival ~items ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let sim = Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping ~input ~trace () in
  Skel_sim.run_to_completion sim;
  (sim, trace)

let test_sim_all_items_complete () =
  let stages = Stage.balanced ~n:3 ~work:1.0 () in
  let sim, trace = run_sim ~items:20 ~stages ~mapping:[| 0; 1; 2 |] () in
  Alcotest.(check bool) "finished" true (Skel_sim.finished sim);
  Alcotest.(check int) "all items out" 20 (Trace.items_completed trace)

let test_sim_fifo_output () =
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let _, trace = run_sim ~items:15 ~stages ~mapping:[| 0; 1 |] () in
  let items = Array.map fst (Trace.completions trace) in
  Alcotest.(check (array int)) "items depart in order" (Array.init 15 Fun.id) items

let test_sim_conservation () =
  let stages = Stage.balanced ~n:4 ~work:0.5 () in
  let _, trace = run_sim ~items:12 ~stages ~mapping:[| 0; 1; 2; 0 |] () in
  Alcotest.(check int) "services = items x stages" (12 * 4) (List.length (Trace.services trace));
  Alcotest.(check int) "transfers = items x (stages-1)" (12 * 3)
    (List.length (Trace.transfers trace))

let test_sim_services_respect_mapping () =
  let stages = Stage.balanced ~n:3 ~work:1.0 () in
  let mapping = [| 2; 0; 2 |] in
  let _, trace = run_sim ~items:5 ~stages ~mapping () in
  List.iter
    (fun (s : Trace.service) ->
      Alcotest.(check int)
        (Printf.sprintf "stage %d on its mapped node" s.Trace.stage)
        mapping.(s.Trace.stage) s.Trace.node)
    (Trace.services trace)

let test_sim_single_stage_makespan () =
  (* 10 items of work 5 on a speed-10 node: 0.5 s each, serialized. *)
  let stages = [| Stage.make ~output_bytes:10.0 ~work:(Variate.Constant 5.0) () |] in
  let _, trace = run_sim ~n:1 ~items:10 ~stages ~mapping:[| 0 |] () in
  check_close ~eps:0.01 "makespan ~ items x service" 5.0 (Trace.makespan trace)

let test_sim_colocation_halves_throughput () =
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let _, spread = run_sim ~items:60 ~stages ~mapping:[| 0; 1 |] () in
  let _, packed = run_sim ~items:60 ~stages ~mapping:[| 0; 0 |] () in
  let ratio = Trace.makespan packed /. Trace.makespan spread in
  Alcotest.(check bool)
    (Printf.sprintf "colocated run ~2x slower (ratio %.2f)" ratio)
    true
    (ratio > 1.7 && ratio < 2.3)

let test_sim_slow_link_throttles () =
  (* Blocking output moves: a 0.3 s link inflates the stage cycle to
     0.1 + 0.3 = 0.4 s -> throughput 2.5/s instead of 10/s. *)
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:0.3 ~bandwidth:1e9 () in
  let stages = Stage.balanced ~n:2 ~work:1.0 ~output_bytes:10.0 () in
  let input = Stream_spec.make ~items:50 ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let sim = Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping:[| 0; 1 |] ~input ~trace () in
  Skel_sim.run_to_completion sim;
  let throughput = Trace.throughput_after trace (0.1 *. Trace.makespan trace) in
  check_close ~eps:0.2 "cycle-limited throughput" 2.5 throughput

let test_sim_availability_step_slows_run () =
  let run ~with_load =
    let engine = Engine.create () in
    let topo = quiet_topo ~n:2 engine in
    if with_load then
      ignore
        (Engine.schedule engine ~delay:1.0 (fun () ->
             Node.set_availability (Topology.node topo 0) 0.25));
    let stages = Stage.balanced ~n:2 ~work:1.0 () in
    let input = Stream_spec.make ~items:40 ~item_bytes:10.0 () in
    let trace = Trace.create () in
    let sim =
      Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping:[| 0; 1 |] ~input ~trace ()
    in
    Skel_sim.run_to_completion sim;
    Trace.makespan trace
  in
  let clean = run ~with_load:false and loaded = run ~with_load:true in
  Alcotest.(check bool)
    (Printf.sprintf "background load slows the run (%.2f vs %.2f)" clean loaded)
    true (loaded > 2.0 *. clean)

let test_sim_remap_moves_services () =
  let engine = Engine.create () in
  let topo = quiet_topo ~n:2 engine in
  let stages = Stage.balanced ~n:2 ~work:1.0 ~state_bytes:100.0 () in
  let input = Stream_spec.make ~items:30 ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let sim = Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping:[| 0; 0 |] ~input ~trace () in
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> ignore (Skel_sim.remap sim [| 0; 1 |])));
  Skel_sim.run_to_completion sim;
  Alcotest.(check (array int)) "mapping updated" [| 0; 1 |] (Skel_sim.mapping sim);
  Alcotest.(check int) "all items complete across the migration" 30 (Trace.items_completed trace);
  let stage1_nodes =
    List.filter_map
      (fun (s : Trace.service) -> if s.Trace.stage = 1 then Some s.Trace.node else None)
      (Trace.services trace)
  in
  Alcotest.(check bool) "served on old node first" true (List.mem 0 stage1_nodes);
  Alcotest.(check bool) "served on new node later" true (List.mem 1 stage1_nodes);
  let items = Array.map fst (Trace.completions trace) in
  Alcotest.(check (array int)) "order preserved" (Array.init 30 Fun.id) items

let test_sim_remap_same_mapping_free () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  ignore engine;
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let input = Stream_spec.make ~items:5 ~item_bytes:10.0 () in
  let sim =
    Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping:[| 0; 1 |] ~input
      ~trace:(Trace.create ()) ()
  in
  check_float "no bytes move" 0.0 (Skel_sim.remap sim [| 0; 1 |]);
  Alcotest.(check bool) "not migrating" false (Skel_sim.migrating sim)

let test_sim_remap_while_migrating_rejected () =
  let engine = Engine.create () in
  (* A slow link so the migration is still in flight when we re-remap. *)
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:5.0 ~bandwidth:1e3 () in
  let stages = Stage.balanced ~n:2 ~work:1.0 ~state_bytes:1e4 () in
  let input = Stream_spec.make ~items:5 ~item_bytes:10.0 () in
  let sim =
    Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping:[| 0; 0 |] ~input
      ~trace:(Trace.create ()) ()
  in
  ignore (Skel_sim.remap sim [| 0; 1 |]);
  Alcotest.(check bool) "migration in flight" true (Skel_sim.migrating sim);
  Alcotest.check_raises "double migration rejected"
    (Invalid_argument "Skel_sim.remap: stage already migrating") (fun () ->
      ignore (Skel_sim.remap sim [| 0; 0 |]))

let test_sim_invalid_mapping () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let input = Stream_spec.make ~items:1 () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Skel_sim: mapping length must equal stage count") (fun () ->
      ignore
        (Skel_sim.create ~rng:(Rng.create 1) ~topo ~stages ~mapping:[| 0 |] ~input
           ~trace:(Trace.create ()) ()));
  Alcotest.check_raises "unknown node" (Invalid_argument "Skel_sim: mapping names an unknown node")
    (fun () ->
      ignore
        (Skel_sim.create ~rng:(Rng.create 1) ~topo ~stages ~mapping:[| 0; 9 |] ~input
           ~trace:(Trace.create ()) ()))

let test_sim_deterministic () =
  let stages = Stage.balanced ~n:3 ~work:1.0 () in
  let _, t1 = run_sim ~items:25 ~stages ~mapping:[| 0; 1; 2 |] () in
  let _, t2 = run_sim ~items:25 ~stages ~mapping:[| 0; 1; 2 |] () in
  check_float "same seed, same makespan" (Trace.makespan t1) (Trace.makespan t2)

let test_sim_spaced_arrivals_pace_output () =
  (* Arrivals slower than the service rate: output paced by arrivals. *)
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let _, trace =
    run_sim ~items:20 ~arrival:(Stream_spec.Spaced 1.0) ~stages ~mapping:[| 0; 1 |] ()
  in
  check_close ~eps:0.1 "makespan tracks the arrival process" 19.2 (Trace.makespan trace)

let test_sim_execute_oneshot () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let trace =
    Skel_sim.execute ~topo ~stages ~mapping:[| 0; 1 |]
      ~input:(Stream_spec.make ~items:8 ~item_bytes:10.0 ())
      ()
  in
  Alcotest.(check int) "one-shot runs to completion" 8 (Trace.items_completed trace)



let test_sim_total_starvation_and_recovery () =
  (* The node feeding the pipeline loses its CPU entirely for 10 s; the
     in-flight service must freeze (not finish at a bogus time) and every
     item must still drain after recovery. *)
  let engine = Engine.create () in
  let topo = quiet_topo ~n:2 engine in
  ignore
    (Engine.schedule engine ~delay:0.55 (fun () ->
         Node.set_availability (Topology.node topo 0) 0.0));
  ignore
    (Engine.schedule engine ~delay:10.55 (fun () ->
         Node.set_availability (Topology.node topo 0) 1.0));
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let input = Stream_spec.make ~items:10 ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let sim = Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages ~mapping:[| 0; 1 |] ~input ~trace () in
  Skel_sim.run_to_completion sim;
  Alcotest.(check int) "all items survive the outage" 10 (Trace.items_completed trace);
  (* Without the outage the run takes ~1.2 s; with it, at least the 10 s gap. *)
  Alcotest.(check bool) "makespan includes the stall" true (Trace.makespan trace > 10.0);
  Alcotest.(check bool) "but not much more" true (Trace.makespan trace < 13.0)

let test_sim_conservation_under_random_dynamics =
  qtest ~count:25 "no item is ever lost, duplicated or reordered"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let engine = Engine.create () in
      let topo = quiet_topo ~n:3 engine in
      (* Random availability churn on every node. *)
      for node = 0 to 2 do
        Aspipe_grid.Loadgen.apply_until ~rng:(Rng.split rng) ~horizon:50.0 topo node
          (Aspipe_grid.Loadgen.Random_walk { every = 0.5; sigma = 0.2; lo = 0.05; hi = 1.0 })
      done;
      let stages = Stage.balanced ~n:3 ~work:0.5 () in
      let items = 30 in
      let input = Stream_spec.make ~items ~item_bytes:10.0 () in
      let trace = Trace.create () in
      let sim =
        Skel_sim.create ~rng:(Rng.split rng) ~topo ~stages ~mapping:[| 0; 1; 2 |] ~input ~trace ()
      in
      (* And a random remap mid-flight. *)
      ignore
        (Engine.schedule engine ~delay:1.0 (fun () ->
             if not (Skel_sim.migrating sim) then
               ignore (Skel_sim.remap sim [| 2; 1; 0 |])));
      Skel_sim.run_to_completion sim;
      Trace.items_completed trace = items
      && Array.map fst (Trace.completions trace) = Array.init items Fun.id
      && List.length (Trace.services trace) = items * 3)

(* ------------------------------------------------------- bounded buffers *)

let test_sim_buffer_capacity_validated () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let input = Stream_spec.make ~items:1 () in
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Skel_sim: queue capacity must be at least 1") (fun () ->
      ignore
        (Skel_sim.create ~queue_capacity:0 ~rng:(Rng.create 1) ~topo ~stages ~mapping:[| 0; 1 |]
           ~input ~trace:(Trace.create ()) ()))

let buffered_makespan capacity =
  let engine = Engine.create () in
  let topo = quiet_topo ~n:3 engine in
  (* Bursty middle stage so buffering matters. *)
  let stages =
    [|
      Stage.make ~output_bytes:10.0 ~work:(Variate.Constant 1.0) ();
      Stage.make ~output_bytes:10.0 ~work:(Variate.Lognormal { mu = -0.72; sigma = 1.2 }) ();
      Stage.make ~output_bytes:10.0 ~work:(Variate.Constant 1.0) ();
    |]
  in
  let input = Stream_spec.make ~items:200 ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let sim =
    Skel_sim.create ?queue_capacity:capacity ~rng:(Rng.create 5) ~topo ~stages
      ~mapping:[| 0; 1; 2 |] ~input ~trace ()
  in
  Skel_sim.run_to_completion sim;
  Alcotest.(check int) "all items complete" 200 (Trace.items_completed trace);
  Trace.makespan trace

let test_sim_buffer_monotone () =
  (* Work draws are keyed on item identity, so a bigger buffer can only help:
     makespans must be non-increasing in capacity. *)
  let m1 = buffered_makespan (Some 1) in
  let m4 = buffered_makespan (Some 4) in
  let unbounded = buffered_makespan None in
  Alcotest.(check bool)
    (Printf.sprintf "cap1 %.2f >= cap4 %.2f >= unbounded %.2f" m1 m4 unbounded)
    true
    (m1 >= m4 -. 1e-9 && m4 >= unbounded -. 1e-9);
  Alcotest.(check bool) "buffers actually matter on bursty stages" true
    (m1 > unbounded *. 1.02)

let test_sim_work_draws_paired_across_mappings () =
  (* The same item must cost the same under different mappings. *)
  let run mapping =
    let engine = Engine.create () in
    let topo = quiet_topo ~n:3 engine in
    let stages = [| Stage.make ~work:(Variate.Exponential { rate = 1.0 }) () |] in
    let input = Stream_spec.make ~items:20 ~item_bytes:10.0 () in
    let trace = Trace.create () in
    let sim = Skel_sim.create ~rng:(Rng.create 9) ~topo ~stages ~mapping ~input ~trace () in
    Skel_sim.run_to_completion sim;
    List.map
      (fun (s : Trace.service) -> (s.Trace.item, s.Trace.finish -. s.Trace.start))
      (Trace.services trace)
    |> List.sort compare
  in
  Alcotest.(check bool) "identical per-item service durations" true
    (run [| 0 |] = run [| 2 |])

(* ------------------------------------------------------------- Farm_sim *)

module Farm_sim = Aspipe_skel.Farm_sim

let farm_task ?(work = Variate.Constant 1.0) () =
  Stage.make ~name:"task" ~output_bytes:10.0 ~state_bytes:0.0 ~work ()

let run_farm ?(items = 40) ?(dispatch = Farm_sim.Round_robin) ?(speeds = [| 10.0; 10.0 |])
    ~workers () =
  let engine = Engine.create () in
  let topo = Topology.heterogeneous engine ~speeds ~latency:1e-4 ~bandwidth:1e9 () in
  let input = Stream_spec.make ~items ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let farm =
    Farm_sim.create ~rng:(Rng.create 3) ~topo ~task:(farm_task ()) ~workers ~dispatch ~input
      ~trace ()
  in
  Farm_sim.run_to_completion farm;
  (farm, trace)

let test_farm_completes_in_order () =
  let _, trace = run_farm ~workers:[ 0; 1 ] () in
  Alcotest.(check int) "all items" 40 (Trace.items_completed trace);
  let items = Array.map fst (Trace.completions trace) in
  Alcotest.(check (array int)) "ordered emission" (Array.init 40 Fun.id) items

let test_farm_round_robin_shares () =
  let _, trace = run_farm ~items:40 ~workers:[ 0; 1 ] () in
  Alcotest.(check int) "half on node 0" 20 (Trace.services_on_node trace ~node:0);
  Alcotest.(check int) "half on node 1" 20 (Trace.services_on_node trace ~node:1)

let test_farm_least_loaded_proportional () =
  (* Node 0 is 4x faster: demand-driven dealing should give it ~4x the work. *)
  let _, trace =
    run_farm ~items:200 ~dispatch:Farm_sim.Least_loaded ~speeds:[| 40.0; 10.0 |]
      ~workers:[ 0; 1 ] ()
  in
  let n0 = Trace.services_on_node trace ~node:0 in
  let n1 = Trace.services_on_node trace ~node:1 in
  let ratio = Float.of_int n0 /. Float.of_int n1 in
  Alcotest.(check bool) (Printf.sprintf "share ratio ~4 (got %.2f)" ratio) true
    (ratio > 2.5 && ratio < 6.0)

let test_farm_single_worker_serializes () =
  let _, trace = run_farm ~items:30 ~workers:[ 1 ] () in
  Alcotest.(check int) "everything on the lone worker" 30 (Trace.services_on_node trace ~node:1);
  Alcotest.(check (float 0.1)) "serialized makespan" 3.0 (Trace.makespan trace)

let test_farm_set_workers_mid_run () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:3 ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 () in
  let input =
    Stream_spec.make ~arrival:(Stream_spec.Spaced 0.2) ~items:50 ~item_bytes:10.0 ()
  in
  let trace = Trace.create () in
  let farm =
    Farm_sim.create ~rng:(Rng.create 4) ~topo ~task:(farm_task ()) ~workers:[ 0 ]
      ~dispatch:Farm_sim.Round_robin ~input ~trace ()
  in
  ignore (Engine.schedule engine ~delay:4.0 (fun () -> Farm_sim.set_workers farm [ 1; 2 ]));
  Farm_sim.run_to_completion farm;
  Alcotest.(check (list int)) "worker set replaced" [ 1; 2 ] (Farm_sim.workers farm);
  Alcotest.(check int) "all items out" 50 (Trace.items_completed trace);
  Alcotest.(check bool) "early work on node 0" true (Trace.services_on_node trace ~node:0 > 0);
  Alcotest.(check bool) "late work on the new set" true
    (Trace.services_on_node trace ~node:1 + Trace.services_on_node trace ~node:2 > 0)

let test_farm_validation () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 () in
  let input = Stream_spec.make ~items:1 () in
  Alcotest.check_raises "empty workers" (Invalid_argument "Farm_sim: empty worker set")
    (fun () ->
      ignore
        (Farm_sim.create ~rng:(Rng.create 1) ~topo ~task:(farm_task ()) ~workers:[]
           ~dispatch:Farm_sim.Round_robin ~input ~trace:(Trace.create ()) ()));
  Alcotest.check_raises "unknown node" (Invalid_argument "Farm_sim: unknown worker node")
    (fun () ->
      ignore
        (Farm_sim.create ~rng:(Rng.create 1) ~topo ~task:(farm_task ()) ~workers:[ 7 ]
           ~dispatch:Farm_sim.Round_robin ~input ~trace:(Trace.create ()) ()))



let test_farm_window_validation () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 () in
  Alcotest.check_raises "window 0" (Invalid_argument "Farm_sim: window must be at least 1")
    (fun () ->
      ignore
        (Farm_sim.create ~window:0 ~rng:(Rng.create 1) ~topo ~task:(farm_task ())
           ~workers:[ 0 ] ~dispatch:Farm_sim.Round_robin
           ~input:(Stream_spec.make ~items:1 ())
           ~trace:(Trace.create ()) ()))

let test_farm_wider_window_keeps_results () =
  (* The window changes scheduling, never the result set. *)
  let run window =
    let engine = Engine.create () in
    let topo = Topology.heterogeneous engine ~speeds:[| 20.0; 10.0 |] ~latency:1e-4 ~bandwidth:1e9 () in
    let trace =
      Farm_sim.execute ~rng:(Rng.create 3) ~window ~topo ~task:(farm_task ())
        ~workers:[ 0; 1 ] ~dispatch:Farm_sim.Least_loaded
        ~input:(Stream_spec.make ~items:50 ~item_bytes:10.0 ())
        ()
    in
    Trace.items_completed trace
  in
  Alcotest.(check int) "window 1" 50 (run 1);
  Alcotest.(check int) "window 8" 50 (run 8)

let test_farm_outstanding_bounds () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 () in
  let farm =
    Farm_sim.create ~rng:(Rng.create 3) ~topo ~task:(farm_task ()) ~workers:[ 0; 1 ]
      ~dispatch:Farm_sim.Least_loaded
      ~input:(Stream_spec.make ~items:40 ~item_bytes:10.0 ())
      ~trace:(Trace.create ()) ()
  in
  (* Sample outstanding during the run: never above the window (2). *)
  Aspipe_des.Engine.periodic engine ~every:0.05 (fun () ->
      if Farm_sim.outstanding farm 0 > 2 || Farm_sim.outstanding farm 1 > 2 then
        Alcotest.fail "window exceeded";
      not (Farm_sim.finished farm));
  Farm_sim.run_to_completion farm;
  Alcotest.check_raises "outstanding bounds" (Invalid_argument "Farm_sim.outstanding")
    (fun () -> ignore (Farm_sim.outstanding farm 9))


let test_farm_emission_times_non_decreasing () =
  let _, trace =
    run_farm ~items:100 ~dispatch:Farm_sim.Least_loaded ~speeds:[| 30.0; 10.0 |]
      ~workers:[ 0; 1 ] ()
  in
  let times = Array.map snd (Trace.completions trace) in
  Array.iteri
    (fun i t ->
      if i > 0 && t < times.(i - 1) -. 1e-12 then
        Alcotest.fail "ordered emission must have non-decreasing timestamps")
    times

(* ------------------------------------------------------------- Repl_sim *)

module Repl_sim = Aspipe_skel.Repl_sim

let run_repl ?(items = 40) ~stages ~replicas () =
  let engine = Engine.create () in
  let topo = quiet_topo ~n:6 engine in
  let input = Stream_spec.make ~items ~item_bytes:10.0 () in
  let trace = Trace.create () in
  let sim = Repl_sim.create ~rng:(Rng.create 11) ~topo ~stages ~replicas ~input ~trace () in
  Repl_sim.run_to_completion sim;
  (sim, trace)

let test_repl_single_replica_behaves_like_pipeline () =
  let stages = Stage.balanced ~n:3 ~work:1.0 () in
  let _, trace = run_repl ~stages ~replicas:[| [ 0 ]; [ 1 ]; [ 2 ] |] () in
  Alcotest.(check int) "all items complete" 40 (Trace.items_completed trace);
  Alcotest.(check (array int)) "ordered output" (Array.init 40 Fun.id)
    (Array.map fst (Trace.completions trace));
  Alcotest.(check int) "items x stages services" 120 (List.length (Trace.services trace))

let test_repl_hot_stage_speedup () =
  let stages = Stage.imbalanced ~n:3 ~work:1.0 ~hot_stage:1 ~factor:4.0 () in
  let _, plain = run_repl ~items:80 ~stages ~replicas:[| [ 0 ]; [ 1 ]; [ 2 ] |] () in
  let _, replicated =
    run_repl ~items:80 ~stages ~replicas:[| [ 0 ]; [ 1; 3; 4; 5 ]; [ 2 ] |] ()
  in
  let speedup = Trace.makespan plain /. Trace.makespan replicated in
  Alcotest.(check bool)
    (Printf.sprintf "4 replicas of the 4x stage give ~4x (got %.2fx)" speedup)
    true
    (speedup > 3.0 && speedup < 4.5)

let test_repl_replicas_all_used () =
  let stages = Stage.imbalanced ~n:2 ~work:1.0 ~hot_stage:1 ~factor:3.0 () in
  let _, trace = run_repl ~items:60 ~stages ~replicas:[| [ 0 ]; [ 1; 2; 3 ] |] () in
  List.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d served items" node)
        true
        (Trace.services_on_node trace ~node > 0))
    [ 1; 2; 3 ]

let test_repl_order_restored_despite_variance () =
  (* Heavy-tailed hot stage over 4 replicas: completion order must still be
     the input order. *)
  let stages =
    [|
      Stage.make ~output_bytes:10.0 ~work:(Variate.Constant 0.1) ();
      Stage.make ~output_bytes:10.0 ~work:(Variate.Lognormal { mu = -0.72; sigma = 1.2 }) ();
    |]
  in
  let _, trace = run_repl ~items:100 ~stages ~replicas:[| [ 0 ]; [ 1; 2; 3; 4 ] |] () in
  Alcotest.(check (array int)) "order restored" (Array.init 100 Fun.id)
    (Array.map fst (Trace.completions trace))

let test_repl_validation () =
  let engine = Engine.create () in
  let topo = quiet_topo ~n:2 engine in
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let input = Stream_spec.make ~items:1 () in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Repl_sim: one replica set per stage required")
    (fun () ->
      ignore
        (Repl_sim.create ~rng:(Rng.create 1) ~topo ~stages ~replicas:[| [ 0 ] |] ~input
           ~trace:(Trace.create ()) ()));
  Alcotest.check_raises "empty set" (Invalid_argument "Repl_sim: empty replica set") (fun () ->
      ignore
        (Repl_sim.create ~rng:(Rng.create 1) ~topo ~stages ~replicas:[| [ 0 ]; [] |] ~input
           ~trace:(Trace.create ()) ()));
  Alcotest.check_raises "unknown node" (Invalid_argument "Repl_sim: unknown replica node")
    (fun () ->
      ignore
        (Repl_sim.create ~rng:(Rng.create 1) ~topo ~stages ~replicas:[| [ 0 ]; [ 9 ] |] ~input
           ~trace:(Trace.create ()) ()))

(* ----------------------------------------------------------------- Chan *)

let test_chan_fifo () =
  let c = Chan.create ~capacity:10 in
  List.iter (Chan.send c) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Chan.length c);
  Alcotest.(check (list (option int))) "fifo recv" [ Some 1; Some 2; Some 3 ]
    (List.init 3 (fun _ -> Chan.recv c))

let test_chan_close_semantics () =
  let c = Chan.create ~capacity:4 in
  Chan.send c 1;
  Chan.close c;
  Chan.close c (* idempotent *);
  Alcotest.(check bool) "closed" true (Chan.is_closed c);
  Alcotest.(check (option int)) "drains after close" (Some 1) (Chan.recv c);
  Alcotest.(check (option int)) "then None" None (Chan.recv c);
  Alcotest.check_raises "send after close" Chan.Closed (fun () -> Chan.send c 2)

let test_chan_try_recv () =
  let c = Chan.create ~capacity:2 in
  Alcotest.(check (option int)) "empty" None (Chan.try_recv c);
  Chan.send c 7;
  Alcotest.(check (option int)) "non-blocking hit" (Some 7) (Chan.try_recv c)

let test_chan_capacity_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Chan.create: capacity must be positive")
    (fun () -> ignore (Chan.create ~capacity:0 : int Chan.t))

let test_chan_backpressure_across_domains () =
  (* Producer sends 1000 ints through a capacity-2 channel; consumer domain
     reads them all: blocking send/recv must neither deadlock nor drop. *)
  let c = Chan.create ~capacity:2 in
  let consumer =
    Domain.spawn (fun () ->
        let rec drain acc =
          match Chan.recv c with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        drain [])
  in
  for i = 1 to 1000 do
    Chan.send c i
  done;
  Chan.close c;
  let received = Domain.join consumer in
  Alcotest.(check int) "all delivered" 1000 (List.length received);
  Alcotest.(check (list int)) "in order (first 5)" [ 1; 2; 3; 4; 5 ]
    (List.filteri (fun i _ -> i < 5) received)

(* ----------------------------------------------------------------- Pipe *)

let test_pipe_apply () =
  let open Pipe in
  let p = (fun x -> x + 1) @> (fun x -> x * 2) @> last string_of_int in
  Alcotest.(check string) "sequential semantics" "8" (apply p 3);
  Alcotest.(check int) "length" 3 (length p)

let test_pipe_fuse_identity () =
  let open Pipe in
  let p = (fun x -> x + 1) @> last (fun x -> x * 3) in
  let fused = fuse_groups [| 0; 1 |] p in
  Alcotest.(check int) "distinct groups keep stages" 2 (length fused);
  Alcotest.(check int) "same result" (apply p 5) (apply fused 5)

let test_pipe_fuse_all () =
  let open Pipe in
  let p = (fun x -> x + 1) @> (fun x -> x * 2) @> last (fun x -> x - 3) in
  let fused = fuse_groups [| 0; 0; 0 |] p in
  Alcotest.(check int) "all collapse to one stage" 1 (length fused);
  Alcotest.(check int) "same result" (apply p 10) (apply fused 10)

let test_pipe_fuse_validation () =
  let open Pipe in
  let p = (fun x -> x + 1) @> last (fun x -> x * 2) in
  Alcotest.check_raises "wrong count" (Invalid_argument "Pipe.fuse_groups: wrong group count")
    (fun () -> ignore (fuse_groups [| 0 |] p));
  Alcotest.check_raises "decreasing groups"
    (Invalid_argument "Pipe.fuse_groups: groups must be non-decreasing") (fun () ->
      ignore (fuse_groups [| 1; 0 |] p))

let test_pipe_fuse_equivalence =
  qtest "fusing never changes the function"
    QCheck2.Gen.(pair (list_size (int_range 0 20) int) (int_range 1 4))
    (fun (xs, groups) ->
      let open Pipe in
      let p =
        (fun x -> x + 1) @> (fun x -> x * 2) @> (fun x -> x - 1) @> last (fun x -> x mod 1000)
      in
      let g = Array.init 4 (fun i -> min (groups - 1) (i * groups / 4)) in
      let fused = fuse_groups g p in
      List.for_all (fun x -> apply p x = apply fused x) xs)

let () =
  Alcotest.run "aspipe_skel"
    [
      ( "stage",
        [
          Alcotest.test_case "balanced" `Quick test_stage_balanced;
          Alcotest.test_case "imbalanced" `Quick test_stage_imbalanced;
          Alcotest.test_case "validation" `Quick test_stage_make_validation;
        ] );
      ( "stream",
        [
          Alcotest.test_case "immediate" `Quick test_stream_immediate;
          Alcotest.test_case "spaced" `Quick test_stream_spaced;
          Alcotest.test_case "poisson" `Quick test_stream_poisson_monotone;
          Alcotest.test_case "invalid" `Quick test_stream_invalid;
        ] );
      ( "skel_sim",
        [
          Alcotest.test_case "all items complete" `Quick test_sim_all_items_complete;
          Alcotest.test_case "fifo output" `Quick test_sim_fifo_output;
          Alcotest.test_case "conservation" `Quick test_sim_conservation;
          Alcotest.test_case "mapping respected" `Quick test_sim_services_respect_mapping;
          Alcotest.test_case "single stage makespan" `Quick test_sim_single_stage_makespan;
          Alcotest.test_case "colocation" `Quick test_sim_colocation_halves_throughput;
          Alcotest.test_case "slow link throttles" `Quick test_sim_slow_link_throttles;
          Alcotest.test_case "load slows run" `Quick test_sim_availability_step_slows_run;
          Alcotest.test_case "remap moves services" `Quick test_sim_remap_moves_services;
          Alcotest.test_case "remap no-op" `Quick test_sim_remap_same_mapping_free;
          Alcotest.test_case "remap during migration" `Quick
            test_sim_remap_while_migrating_rejected;
          Alcotest.test_case "invalid mapping" `Quick test_sim_invalid_mapping;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "spaced arrivals" `Quick test_sim_spaced_arrivals_pace_output;
          Alcotest.test_case "execute one-shot" `Quick test_sim_execute_oneshot;
          Alcotest.test_case "starvation & recovery" `Quick test_sim_total_starvation_and_recovery;
          test_sim_conservation_under_random_dynamics;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "capacity validated" `Quick test_sim_buffer_capacity_validated;
          Alcotest.test_case "monotone in capacity" `Quick test_sim_buffer_monotone;
          Alcotest.test_case "paired work draws" `Quick test_sim_work_draws_paired_across_mappings;
        ] );
      ( "farm_sim",
        [
          Alcotest.test_case "ordered completion" `Quick test_farm_completes_in_order;
          Alcotest.test_case "round-robin shares" `Quick test_farm_round_robin_shares;
          Alcotest.test_case "least-loaded proportional" `Quick test_farm_least_loaded_proportional;
          Alcotest.test_case "single worker" `Quick test_farm_single_worker_serializes;
          Alcotest.test_case "set workers mid-run" `Quick test_farm_set_workers_mid_run;
          Alcotest.test_case "validation" `Quick test_farm_validation;
          Alcotest.test_case "window validation" `Quick test_farm_window_validation;
          Alcotest.test_case "window preserves results" `Quick test_farm_wider_window_keeps_results;
          Alcotest.test_case "outstanding bounded by window" `Quick test_farm_outstanding_bounds;
          Alcotest.test_case "emission times non-decreasing" `Quick
            test_farm_emission_times_non_decreasing;
        ] );
      ( "repl_sim",
        [
          Alcotest.test_case "single replica = pipeline" `Quick
            test_repl_single_replica_behaves_like_pipeline;
          Alcotest.test_case "hot stage speedup" `Quick test_repl_hot_stage_speedup;
          Alcotest.test_case "replicas all used" `Quick test_repl_replicas_all_used;
          Alcotest.test_case "order restored" `Quick test_repl_order_restored_despite_variance;
          Alcotest.test_case "validation" `Quick test_repl_validation;
        ] );
      ( "chan",
        [
          Alcotest.test_case "fifo" `Quick test_chan_fifo;
          Alcotest.test_case "close semantics" `Quick test_chan_close_semantics;
          Alcotest.test_case "try_recv" `Quick test_chan_try_recv;
          Alcotest.test_case "capacity validation" `Quick test_chan_capacity_validation;
          Alcotest.test_case "backpressure across domains" `Quick
            test_chan_backpressure_across_domains;
        ] );
      ( "pipe",
        [
          Alcotest.test_case "apply" `Quick test_pipe_apply;
          Alcotest.test_case "fuse identity" `Quick test_pipe_fuse_identity;
          Alcotest.test_case "fuse all" `Quick test_pipe_fuse_all;
          Alcotest.test_case "fuse validation" `Quick test_pipe_fuse_validation;
          test_pipe_fuse_equivalence;
        ] );
    ]
