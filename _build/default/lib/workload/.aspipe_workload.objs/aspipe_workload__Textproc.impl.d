lib/workload/textproc.ml: Array Aspipe_skel Aspipe_util Buffer Char Float Hashtbl List Option String
