lib/workload/numeric.mli: Aspipe_skel Aspipe_util
