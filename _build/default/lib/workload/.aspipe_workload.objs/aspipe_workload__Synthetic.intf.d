lib/workload/synthetic.mli: Aspipe_skel Aspipe_util
