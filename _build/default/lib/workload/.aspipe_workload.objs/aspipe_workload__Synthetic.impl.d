lib/workload/synthetic.ml: Array Aspipe_skel Aspipe_util Float List Printf
