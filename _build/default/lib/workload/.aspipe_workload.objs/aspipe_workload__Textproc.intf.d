lib/workload/textproc.mli: Aspipe_skel Aspipe_util
