lib/workload/numeric.ml: Array Aspipe_skel Aspipe_util Float
