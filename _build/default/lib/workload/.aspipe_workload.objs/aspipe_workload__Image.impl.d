lib/workload/image.ml: Array Aspipe_skel Aspipe_util Float
