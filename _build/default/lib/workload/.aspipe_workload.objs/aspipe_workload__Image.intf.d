lib/workload/image.mli: Aspipe_skel Aspipe_util
