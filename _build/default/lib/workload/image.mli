(** A real image-filtering workload for the shared-memory backend: grayscale
    float images and the classic filter chain (blur → sobel → threshold …)
    that grid pipeline papers use as their motivating application. All
    operations are pure — each returns a fresh image — so stages compose
    freely across domains. *)

type t = { width : int; height : int; pixels : float array }
(** Row-major grayscale, values in [\[0, 1\]]. *)

val create : width:int -> height:int -> f:(x:int -> y:int -> float) -> t
val constant : width:int -> height:int -> float -> t
val random : Aspipe_util.Rng.t -> width:int -> height:int -> t
val get : t -> x:int -> y:int -> float
(** Coordinates are clamped to the border (replicate padding). *)

val dimensions_equal : t -> t -> bool

val gaussian_blur : radius:int -> t -> t
(** Separable Gaussian with σ = radius/2 (radius ≥ 1). *)

val sobel : t -> t
(** Gradient magnitude, clamped to [\[0, 1\]]. *)

val sharpen : t -> t
(** 3×3 unsharp kernel. *)

val threshold : level:float -> t -> t
val invert : t -> t
val normalize : t -> t
(** Linear stretch to full range (identity on flat images). *)

val mean : t -> float
val checksum : t -> float
(** Order-stable digest used by tests to compare backend outputs. *)

val standard_chain : blur_radius:int -> (t, t) Aspipe_skel.Pipe.t
(** The 5-stage reference pipeline: blur → sharpen → sobel → normalize →
    threshold 0.25. *)
