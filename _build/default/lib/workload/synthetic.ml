module Stage = Aspipe_skel.Stage
module Variate = Aspipe_util.Variate
module Rng = Aspipe_util.Rng

let balanced ?(n = 4) ?(work = 1.0) () = Stage.balanced ~n ~work ()

let hot_stage ?(n = 4) ?(work = 1.0) ?hot ~factor () =
  let hot_stage = match hot with Some h -> h | None -> n / 2 in
  Stage.imbalanced ~n ~work ~hot_stage ~factor ()

let geometric ~n ~work ~ratio ~ascending =
  if n <= 0 then invalid_arg "Synthetic: n must be positive";
  if ratio <= 0.0 then invalid_arg "Synthetic: ratio must be positive";
  (* Costs form a geometric progression whose total equals n × work. *)
  let r = if n = 1 then 1.0 else ratio ** (1.0 /. Float.of_int (n - 1)) in
  let weights = Array.init n (fun i -> r ** Float.of_int i) in
  let weights = if ascending then weights else (Array.of_list (List.rev (Array.to_list weights))) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  Array.mapi
    (fun i w ->
      Stage.make
        ~name:(Printf.sprintf "g%d" i)
        ~work:(Variate.Constant (Float.of_int n *. work *. w /. total))
        ())
    weights

let front_heavy ?(n = 4) ?(work = 1.0) ?(ratio = 4.0) () =
  geometric ~n ~work ~ratio ~ascending:false

let back_heavy ?(n = 4) ?(work = 1.0) ?(ratio = 4.0) () =
  geometric ~n ~work ~ratio ~ascending:true

let noisy ?(n = 4) ?(work = 1.0) ~cv () =
  if cv <= 0.0 then invalid_arg "Synthetic.noisy: cv must be positive";
  (* Gamma with mean = work and cv = 1/sqrt(shape). *)
  let shape = 1.0 /. (cv *. cv) in
  let scale = work /. shape in
  Array.init n (fun i ->
      Stage.make ~name:(Printf.sprintf "n%d" i) ~work:(Variate.Gamma { shape; scale }) ())

let comm_heavy ?(n = 4) ?(work = 1.0) ~bytes () =
  if bytes < 0.0 then invalid_arg "Synthetic.comm_heavy: negative payload";
  Array.init n (fun i ->
      Stage.make
        ~name:(Printf.sprintf "c%d" i)
        ~output_bytes:bytes
        ~work:(Variate.Constant work)
        ())

let random rng ~n ~mean_work () =
  if n <= 0 || mean_work <= 0.0 then invalid_arg "Synthetic.random";
  Array.init n (fun i ->
      let log_span = log 4.0 in
      let mean = mean_work *. exp (Rng.range rng (-.log_span) log_span) in
      (* Lognormal noise with sigma = 0.25 around the stage mean. *)
      let sigma = 0.25 in
      let mu = log mean -. (sigma *. sigma /. 2.0) in
      Stage.make ~name:(Printf.sprintf "r%d" i) ~work:(Variate.Lognormal { mu; sigma }) ())
