(** A dense linear-algebra workload: small square matrices and the stage
    kernels (multiply, relax, scale) of an iterative numeric pipeline. *)

type t = { n : int; data : float array }
(** Row-major [n × n]. *)

val create : int -> f:(row:int -> col:int -> float) -> t
val identity : int -> t
val random : Aspipe_util.Rng.t -> int -> t
val get : t -> row:int -> col:int -> float

val multiply : t -> t -> t
(** Raises [Invalid_argument] on dimension mismatch. *)

val add : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t

val jacobi_sweep : t -> t
(** One smoothing sweep: every interior entry becomes the mean of its four
    neighbours (borders kept) — a stand-in for a stencil stage. *)

val frobenius : t -> float
val max_abs_diff : t -> t -> float

val refinement_chain : iterations:int -> (t, t) Aspipe_skel.Pipe.t
(** [iterations] Jacobi stages followed by normalization by the Frobenius
    norm — a numeric pipeline with naturally balanced stages. *)
