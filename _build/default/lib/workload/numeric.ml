module Rng = Aspipe_util.Rng

type t = { n : int; data : float array }

let create n ~f =
  if n <= 0 then invalid_arg "Numeric.create: size must be positive";
  let data = Array.make (n * n) 0.0 in
  for row = 0 to n - 1 do
    for col = 0 to n - 1 do
      data.((row * n) + col) <- f ~row ~col
    done
  done;
  { n; data }

let identity n = create n ~f:(fun ~row ~col -> if row = col then 1.0 else 0.0)
let random rng n = create n ~f:(fun ~row:_ ~col:_ -> Rng.range rng (-1.0) 1.0)

let get t ~row ~col =
  if row < 0 || row >= t.n || col < 0 || col >= t.n then invalid_arg "Numeric.get";
  t.data.((row * t.n) + col)

let multiply a b =
  if a.n <> b.n then invalid_arg "Numeric.multiply: dimension mismatch";
  let n = a.n in
  let out = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      let aik = a.data.((i * n) + k) in
      if aik <> 0.0 then begin
        let brow = k * n in
        let orow = i * n in
        for j = 0 to n - 1 do
          out.(orow + j) <- out.(orow + j) +. (aik *. b.data.(brow + j))
        done
      end
    done
  done;
  { n; data = out }

let add a b =
  if a.n <> b.n then invalid_arg "Numeric.add: dimension mismatch";
  { n = a.n; data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale k t = { t with data = Array.map (fun x -> k *. x) t.data }

let transpose t = create t.n ~f:(fun ~row ~col -> get t ~row:col ~col:row)

let jacobi_sweep t =
  create t.n ~f:(fun ~row ~col ->
      if row = 0 || col = 0 || row = t.n - 1 || col = t.n - 1 then get t ~row ~col
      else
        (get t ~row:(row - 1) ~col
        +. get t ~row:(row + 1) ~col
        +. get t ~row ~col:(col - 1)
        +. get t ~row ~col:(col + 1))
        /. 4.0)

let frobenius t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

let max_abs_diff a b =
  if a.n <> b.n then invalid_arg "Numeric.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri (fun i x -> worst := Float.max !worst (Float.abs (x -. b.data.(i)))) a.data;
  !worst

let refinement_chain ~iterations =
  if iterations < 1 then invalid_arg "Numeric.refinement_chain: need at least one stage";
  let normalize m =
    let norm = frobenius m in
    if norm <= 1e-12 then m else scale (1.0 /. norm) m
  in
  let rec build k =
    if k = 0 then Aspipe_skel.Pipe.last normalize
    else Aspipe_skel.Pipe.(jacobi_sweep @> build (k - 1))
  in
  build iterations
