(** Synthetic pipeline families for the simulated experiments: the stage
    shapes the evaluation sweeps over, all parameterized by total work so
    different shapes stay comparable. *)

val balanced : ?n:int -> ?work:float -> unit -> Aspipe_skel.Stage.t array
(** [n] equal stages (defaults n = 4, work = 1.0 per stage). *)

val hot_stage :
  ?n:int -> ?work:float -> ?hot:int -> factor:float -> unit -> Aspipe_skel.Stage.t array
(** One stage costs [factor ×] the others (default hot = middle). *)

val front_heavy : ?n:int -> ?work:float -> ?ratio:float -> unit -> Aspipe_skel.Stage.t array
(** Geometrically decreasing stage costs, first/last = [ratio] (default 4). *)

val back_heavy : ?n:int -> ?work:float -> ?ratio:float -> unit -> Aspipe_skel.Stage.t array

val noisy :
  ?n:int -> ?work:float -> cv:float -> unit -> Aspipe_skel.Stage.t array
(** Per-item work is Gamma-distributed with coefficient of variation [cv]
    around the balanced mean. *)

val comm_heavy :
  ?n:int -> ?work:float -> bytes:float -> unit -> Aspipe_skel.Stage.t array
(** Balanced compute but [bytes] per inter-stage payload, so the network is
    the bottleneck. *)

val random :
  Aspipe_util.Rng.t -> n:int -> mean_work:float -> unit -> Aspipe_skel.Stage.t array
(** Stage means drawn log-uniformly in [mean_work/4, mean_work×4] with
    lognormal per-item noise — the "unknown application" case. *)
