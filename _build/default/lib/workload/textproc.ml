module Rng = Aspipe_util.Rng

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '\''

let tokenize s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := String.lowercase_ascii (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_word_char c then Buffer.add_char buf c else flush ()) s;
  flush ();
  List.rev !out

let fingerprint tokens =
  let fnv_prime = 0x100000001b3 in
  let offset_basis = 0x3bf29ce484222325 in
  let hash =
    List.fold_left
      (fun acc token ->
        String.fold_left
          (fun h c -> (h lxor Char.code c) * fnv_prime land max_int)
          (acc * 31 land max_int) token)
      offset_basis tokens
  in
  hash lxor List.length tokens

let rle_encode s =
  let n = String.length s in
  let rec runs i acc =
    if i >= n then List.rev acc
    else begin
      let c = s.[i] in
      let j = ref i in
      while !j < n && s.[!j] = c do incr j done;
      runs !j ((c, !j - i) :: acc)
    end
  in
  runs 0 []

let rle_decode runs =
  let buf = Buffer.create 64 in
  List.iter
    (fun (c, k) ->
      if k <= 0 then invalid_arg "Textproc.rle_decode: non-positive run length";
      for _ = 1 to k do Buffer.add_char buf c done)
    runs;
  Buffer.contents buf

let word_count s =
  let table = Hashtbl.create 64 in
  List.iter
    (fun token ->
      Hashtbl.replace table token (1 + Option.value ~default:0 (Hashtbl.find_opt table token)))
    (tokenize s);
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] in
  List.sort
    (fun (wa, ca) (wb, cb) -> if ca <> cb then compare cb ca else compare wa wb)
    entries

let vocabulary =
  [|
    "grid"; "pipeline"; "stage"; "skeleton"; "adaptive"; "mapping"; "processor"; "network";
    "throughput"; "latency"; "bandwidth"; "schedule"; "monitor"; "forecast"; "migrate"; "state";
    "work"; "item"; "stream"; "input"; "output"; "model"; "markov"; "steady"; "rate"; "service";
    "move"; "process"; "node"; "link"; "site"; "user"; "load"; "busy"; "free"; "probe";
    "calibrate"; "policy"; "threshold"; "gain"; "cost"; "stall"; "window"; "sample"; "noise";
    "drop"; "queue"; "buffer"; "domain"; "channel"; "farm"; "worker"; "task"; "seed"; "trace";
    "event"; "clock"; "engine"; "signal"; "server"; "speed"; "share"; "block"; "round";
  |]

let random_document rng ~words =
  if words <= 0 then invalid_arg "Textproc.random_document: words must be positive";
  let n = Array.length vocabulary in
  let buf = Buffer.create (words * 6) in
  for i = 1 to words do
    (* Zipf-ish: square the uniform draw to favour low indices. *)
    let u = Rng.float rng in
    let idx = int_of_float (u *. u *. Float.of_int n) in
    Buffer.add_string buf vocabulary.(min (n - 1) idx);
    if i < words then Buffer.add_char buf (if i mod 12 = 0 then '\n' else ' ')
  done;
  Buffer.contents buf

let cleanup tokens =
  List.filter_map
    (fun token ->
      let token =
        if String.length token > 1 && String.ends_with ~suffix:"s" token then
          String.sub token 0 (String.length token - 1)
        else token
      in
      if String.length token = 0 then None else Some token)
    tokens

let analysis_chain () =
  let open Aspipe_skel.Pipe in
  tokenize @> cleanup @> last fingerprint
