(** A text-processing workload: tokenize → fingerprint → run-length encode,
    the kind of streaming document pipeline the skeleton literature uses for
    irregular (data-dependent) stage costs. *)

val tokenize : string -> string list
(** Splits on ASCII whitespace and punctuation; lowercases tokens. *)

val fingerprint : string list -> int
(** Order-sensitive 63-bit FNV-style digest of a token list. *)

val rle_encode : string -> (char * int) list
(** Maximal runs; inverse of {!rle_decode}. *)

val rle_decode : (char * int) list -> string
(** Raises [Invalid_argument] on non-positive run lengths. *)

val word_count : string -> (string * int) list
(** Token frequencies, sorted descending then alphabetically. *)

val random_document : Aspipe_util.Rng.t -> words:int -> string
(** Zipf-ish sampling over a fixed 64-word vocabulary. *)

val analysis_chain : unit -> (string, int) Aspipe_skel.Pipe.t
(** tokenize → stem-ish cleanup → fingerprint. *)
