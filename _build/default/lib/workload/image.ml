module Rng = Aspipe_util.Rng

type t = { width : int; height : int; pixels : float array }

let create ~width ~height ~f =
  if width <= 0 || height <= 0 then invalid_arg "Image.create: empty image";
  let pixels = Array.make (width * height) 0.0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      pixels.((y * width) + x) <- f ~x ~y
    done
  done;
  { width; height; pixels }

let constant ~width ~height v = create ~width ~height ~f:(fun ~x:_ ~y:_ -> v)

let random rng ~width ~height = create ~width ~height ~f:(fun ~x:_ ~y:_ -> Rng.float rng)

let clamp_index v limit = if v < 0 then 0 else if v >= limit then limit - 1 else v

let get t ~x ~y =
  let x = clamp_index x t.width and y = clamp_index y t.height in
  t.pixels.((y * t.width) + x)

let dimensions_equal a b = a.width = b.width && a.height = b.height

let map2i t ~f = create ~width:t.width ~height:t.height ~f

let gaussian_kernel radius =
  let sigma = Float.max 0.5 (Float.of_int radius /. 2.0) in
  let k = Array.init ((2 * radius) + 1) (fun i ->
      let d = Float.of_int (i - radius) in
      exp (-.(d *. d) /. (2.0 *. sigma *. sigma)))
  in
  let total = Array.fold_left ( +. ) 0.0 k in
  Array.map (fun v -> v /. total) k

let gaussian_blur ~radius t =
  if radius < 1 then invalid_arg "Image.gaussian_blur: radius must be >= 1";
  let kernel = gaussian_kernel radius in
  let horizontal =
    map2i t ~f:(fun ~x ~y ->
        let acc = ref 0.0 in
        Array.iteri (fun i w -> acc := !acc +. (w *. get t ~x:(x + i - radius) ~y)) kernel;
        !acc)
  in
  map2i horizontal ~f:(fun ~x ~y ->
      let acc = ref 0.0 in
      Array.iteri (fun i w -> acc := !acc +. (w *. get horizontal ~x ~y:(y + i - radius))) kernel;
      !acc)

let sobel t =
  map2i t ~f:(fun ~x ~y ->
      let p dx dy = get t ~x:(x + dx) ~y:(y + dy) in
      let gx =
        p (-1) (-1) +. (2.0 *. p (-1) 0) +. p (-1) 1 -. p 1 (-1) -. (2.0 *. p 1 0) -. p 1 1
      in
      let gy =
        p (-1) (-1) +. (2.0 *. p 0 (-1)) +. p 1 (-1) -. p (-1) 1 -. (2.0 *. p 0 1) -. p 1 1
      in
      Float.min 1.0 (sqrt ((gx *. gx) +. (gy *. gy))))

let sharpen t =
  map2i t ~f:(fun ~x ~y ->
      let center = get t ~x ~y in
      let cross =
        get t ~x:(x - 1) ~y +. get t ~x:(x + 1) ~y +. get t ~x ~y:(y - 1) +. get t ~x ~y:(y + 1)
      in
      Float.min 1.0 (Float.max 0.0 ((5.0 *. center) -. cross)))

let threshold ~level t =
  map2i t ~f:(fun ~x ~y -> if get t ~x ~y >= level then 1.0 else 0.0)

let invert t = map2i t ~f:(fun ~x ~y -> 1.0 -. get t ~x ~y)

let normalize t =
  let lo = Array.fold_left Float.min infinity t.pixels in
  let hi = Array.fold_left Float.max neg_infinity t.pixels in
  if hi -. lo <= 1e-12 then t
  else map2i t ~f:(fun ~x ~y -> (get t ~x ~y -. lo) /. (hi -. lo))

let mean t =
  Array.fold_left ( +. ) 0.0 t.pixels /. Float.of_int (Array.length t.pixels)

let checksum t =
  (* Position-weighted sum, stable under recomputation, sensitive to order. *)
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. (p *. Float.of_int ((i mod 97) + 1))) t.pixels;
  !acc

let standard_chain ~blur_radius =
  let open Aspipe_skel.Pipe in
  gaussian_blur ~radius:blur_radius
  @> sharpen
  @> sobel
  @> normalize
  @> last (threshold ~level:0.25)
