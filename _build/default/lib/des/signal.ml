type t = {
  engine : Engine.t;
  mutable value : float;
  mutable subscribers : (old_value:float -> new_value:float -> unit) list;
  history : Aspipe_util.Timeseries.t;
}

let create engine v0 =
  let history = Aspipe_util.Timeseries.create ~initial:v0 () in
  Aspipe_util.Timeseries.add history (Engine.now engine) v0;
  { engine; value = v0; subscribers = []; history }

let get t = t.value

let set t v =
  if v <> t.value then begin
    let old_value = t.value in
    t.value <- v;
    Aspipe_util.Timeseries.add t.history (Engine.now t.engine) v;
    List.iter (fun f -> f ~old_value ~new_value:v) (List.rev t.subscribers)
  end

let subscribe t f = t.subscribers <- f :: t.subscribers

let history t = t.history
