type _ Effect.t +=
  | Await : (('a -> unit) -> unit) -> 'a Effect.t
  | Sleep : float -> unit Effect.t
  | Now : float Effect.t

(* The engine is carried by the handler, so the effects need no engine
   argument — the body closure does not know which engine it was spawned on. *)

let spawn engine ?at body =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Await register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* One-shot guard: resuming twice is a bug in the caller. *)
                  let resumed = ref false in
                  register (fun v ->
                      if !resumed then failwith "Process.await: continuation resumed twice";
                      resumed := true;
                      continue k v))
          | Sleep duration ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore (Engine.schedule engine ~delay:duration (fun () -> continue k ())))
          | Now -> Some (fun (k : (a, unit) continuation) -> continue k (Engine.now engine))
          | _ -> None);
    }
  in
  let start () = match_with body () handler in
  match at with
  | None -> ignore (Engine.schedule engine ~delay:0.0 start)
  | Some time -> ignore (Engine.schedule_at engine ~time start)

let in_process_error name =
  Failure (Printf.sprintf "Process.%s: must be called from inside a process" name)

let await register =
  try Effect.perform (Await register) with Effect.Unhandled _ -> raise (in_process_error "await")

let now () =
  try Effect.perform Now with Effect.Unhandled _ -> raise (in_process_error "now")

let sleep duration =
  if duration < 0.0 then invalid_arg "Process.sleep: negative duration";
  try Effect.perform (Sleep duration) with Effect.Unhandled _ -> raise (in_process_error "sleep")

let wait_until ?(poll_every = 0.1) predicate =
  if poll_every <= 0.0 then invalid_arg "Process.wait_until: poll period must be positive";
  let rec loop () =
    if not (predicate ()) then begin
      sleep poll_every;
      loop ()
    end
  in
  loop ()

module Mailbox = struct
  type 'a t = {
    engine : Engine.t;
    messages : 'a Queue.t;
    waiting : ('a -> unit) Queue.t;
  }

  let create engine = { engine; messages = Queue.create (); waiting = Queue.create () }

  let send t message =
    if Queue.is_empty t.waiting then Queue.push message t.messages
    else begin
      let resume = Queue.pop t.waiting in
      (* Resume through the event queue, so a send never re-enters the
         receiver synchronously. *)
      ignore (Engine.schedule t.engine ~delay:0.0 (fun () -> resume message))
    end

  let recv t =
    if Queue.is_empty t.messages then await (fun k -> Queue.push k t.waiting)
    else Queue.pop t.messages

  let length t = Queue.length t.messages
end
