type handle = { mutable dead : bool }

type 'a entry = { key : float; seq : int; value : 'a; handle : handle }

type 'a t = {
  mutable heap : 'a entry array option;
  (* [heap] is [Some a] where [a.(0 .. used-1)] is a binary min-heap. We keep
     the array behind an option so [create] needs no dummy element. *)
  mutable used : int;
  mutable live : int;
  mutable next_seq : int;
}

let create () = { heap = None; used = 0; live = 0; next_seq = 0 }

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q entry =
  match q.heap with
  | None -> q.heap <- Some (Array.make 16 entry)
  | Some a ->
      if q.used = Array.length a then q.heap <- Some (Array.append a (Array.make (Array.length a) entry))

let sift_up a i =
  let item = a.(i) in
  let rec climb i =
    if i = 0 then i
    else begin
      let parent = (i - 1) / 2 in
      if entry_lt item a.(parent) then begin
        a.(i) <- a.(parent);
        climb parent
      end
      else i
    end
  in
  a.(climb i) <- item

let sift_down a used i =
  let item = a.(i) in
  let rec descend i =
    let left = (2 * i) + 1 in
    if left >= used then i
    else begin
      let smallest = if left + 1 < used && entry_lt a.(left + 1) a.(left) then left + 1 else left in
      if entry_lt a.(smallest) item then begin
        a.(i) <- a.(smallest);
        descend smallest
      end
      else i
    end
  in
  a.(descend i) <- item

let insert q key value =
  let handle = { dead = false } in
  let entry = { key; seq = q.next_seq; value; handle } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  let a = match q.heap with Some a -> a | None -> assert false in
  a.(q.used) <- entry;
  sift_up a q.used;
  q.used <- q.used + 1;
  q.live <- q.live + 1;
  handle

let cancel h = h.dead <- true

let cancelled h = h.dead

(* Remove the root and restore the heap property. *)
let remove_root q a =
  q.used <- q.used - 1;
  if q.used > 0 then begin
    a.(0) <- a.(q.used);
    sift_down a q.used 0
  end

let rec pop q =
  match q.heap with
  | None -> None
  | Some a ->
      if q.used = 0 then None
      else begin
        let root = a.(0) in
        remove_root q a;
        if root.handle.dead then pop q
        else begin
          q.live <- q.live - 1;
          Some (root.key, root.value)
        end
      end

let rec peek_key q =
  match q.heap with
  | None -> None
  | Some a ->
      if q.used = 0 then None
      else if a.(0).handle.dead then begin
        remove_root q a;
        peek_key q
      end
      else Some a.(0).key

let size q =
  (* [live] counts cancellations immediately, including entries still
     physically present in the array. *)
  let count = ref 0 in
  (match q.heap with
  | None -> ()
  | Some a ->
      for i = 0 to q.used - 1 do
        if not a.(i).handle.dead then incr count
      done);
  q.live <- !count;
  !count

let is_empty q = size q = 0
