(** Process-style simulation on top of the event loop, via OCaml 5 effects.

    Callbacks are the engine's native currency, but many simulation actors
    read better as sequential code: "work, sleep, check, repeat". A process
    is exactly that — a plain function that performs {!sleep}, {!now},
    {!await} and mailbox operations; each suspension is compiled (by an
    effect handler) into an engine event, so processes interleave
    deterministically with every callback-based component on the same
    virtual clock.

    Operations marked {e inside a process} raise [Failure] when performed
    outside one. *)

val spawn : Engine.t -> ?at:float -> (unit -> unit) -> unit
(** [spawn engine body] schedules [body] to start at [at] (default: now)
    under the process handler. *)

val sleep : float -> unit
(** {e Inside a process.} Suspend for the given virtual duration (≥ 0). *)

val now : unit -> float
(** {e Inside a process.} The current virtual time. *)

val await : (('a -> unit) -> unit) -> 'a
(** {e Inside a process.} General suspension: [await register] calls
    [register resume] immediately and suspends until [resume v] is invoked
    (exactly once — the continuation is one-shot); [v] becomes [await]'s
    return value. This is the bridge to any callback API:
    {[ let result = await (fun k -> Server.submit server ~work (fun () -> k ())) ]} *)

val wait_until : ?poll_every:float -> (unit -> bool) -> unit
(** {e Inside a process.} Sleep in [poll_every] (default 0.1 s) increments
    until the predicate holds. *)

module Mailbox : sig
  (** An unbounded inter-process message queue on the virtual clock. *)

  type 'a t

  val create : Engine.t -> 'a t

  val send : 'a t -> 'a -> unit
  (** Callable from anywhere (processes or plain callbacks). If receivers
      are blocked, the longest-waiting one is resumed at the current
      instant. *)

  val recv : 'a t -> 'a
  (** {e Inside a process.} Take the next message, suspending while empty. *)

  val length : 'a t -> int
  (** Messages currently queued (not counting blocked receivers). *)
end
