(** A time-varying value inside a simulation.

    Signals carry node availability, link quality, etc. Setting a signal
    notifies subscribers synchronously (at the current virtual time) — this
    is how a rate change reaches the servers whose in-flight work it slows
    down — and appends to a history usable as the experiment's ground truth. *)

type t

val create : Engine.t -> float -> t
(** [create engine v0] — a signal with initial value [v0] at the current
    simulation time. *)

val get : t -> float

val set : t -> float -> unit
(** [set s v] updates the value, records [(now, v)] in the history, and
    invokes every subscriber with the old and new values. Setting the
    current value again is a no-op. *)

val subscribe : t -> (old_value:float -> new_value:float -> unit) -> unit
(** Subscribers are called in subscription order. *)

val history : t -> Aspipe_util.Timeseries.t
(** The recorded [(t, v)] history, including the initial value. *)
