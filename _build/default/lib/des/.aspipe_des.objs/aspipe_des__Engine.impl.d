lib/des/engine.ml: Float Pqueue
