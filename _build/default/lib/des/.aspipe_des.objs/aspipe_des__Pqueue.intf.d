lib/des/pqueue.mli:
