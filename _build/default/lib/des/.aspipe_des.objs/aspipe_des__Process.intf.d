lib/des/process.mli: Engine
