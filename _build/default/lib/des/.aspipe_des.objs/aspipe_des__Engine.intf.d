lib/des/engine.mli:
