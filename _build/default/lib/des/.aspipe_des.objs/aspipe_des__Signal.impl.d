lib/des/signal.ml: Aspipe_util Engine List
