lib/des/server.mli: Engine Signal
