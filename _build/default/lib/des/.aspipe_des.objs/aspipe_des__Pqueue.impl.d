lib/des/pqueue.ml: Array
