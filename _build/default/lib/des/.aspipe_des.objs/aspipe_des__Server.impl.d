lib/des/server.ml: Engine Float Queue Signal
