lib/des/signal.mli: Aspipe_util Engine
