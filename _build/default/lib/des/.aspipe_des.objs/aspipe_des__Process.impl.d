lib/des/process.ml: Effect Engine Printf Queue
