(** Priority queue of timestamped entries with O(log n) insert/pop and O(1)
    cancellation (lazy deletion), the core data structure of the event loop.

    Ties on the key are broken by insertion order, so the simulation is
    deterministic: two events scheduled for the same instant fire in the
    order they were scheduled. *)

type 'a t

type handle
(** A token identifying an inserted entry; used to cancel it. *)

val create : unit -> 'a t

val insert : 'a t -> float -> 'a -> handle
(** [insert q key v] adds [v] with priority [key] (smaller pops first). *)

val cancel : handle -> unit
(** [cancel h] removes the entry lazily; idempotent. *)

val cancelled : handle -> bool

val pop : 'a t -> (float * 'a) option
(** [pop q] removes and returns the minimum live entry, or [None] if empty. *)

val peek_key : 'a t -> float option
(** Key of the next live entry without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool
