module Engine = Aspipe_des.Engine

type t = {
  engine : Engine.t;
  nodes : Node.t array;
  links : Link.t array array;
  user_links : Link.t array;
  sites : int array;
}

let engine t = t.engine
let size t = Array.length t.nodes

let node t i =
  if i < 0 || i >= size t then invalid_arg "Topology.node: index out of range";
  t.nodes.(i)

let nodes t = Array.copy t.nodes

let link t ~src ~dst =
  if src < 0 || src >= size t || dst < 0 || dst >= size t then
    invalid_arg "Topology.link: index out of range";
  t.links.(src).(dst)

let user_link t i =
  if i < 0 || i >= size t then invalid_arg "Topology.user_link: index out of range";
  t.user_links.(i)

let site_of t i =
  if i < 0 || i >= size t then invalid_arg "Topology.site_of: index out of range";
  t.sites.(i)

let build engine ~nodes ~links ~user_links ~sites =
  let n = Array.length nodes in
  let link_matrix =
    Array.init n (fun src ->
        Array.init n (fun dst ->
            if src = dst then Link.local engine else links ~src ~dst))
  in
  { engine; nodes; links = link_matrix; user_links = Array.init n user_links; sites }

let custom engine ~nodes ~links ~user_links =
  build engine ~nodes ~links ~user_links ~sites:(Array.make (Array.length nodes) 0)

let heterogeneous engine ~speeds ~latency ~bandwidth () =
  if Array.length speeds = 0 then invalid_arg "Topology.heterogeneous: no nodes";
  let nodes = Array.mapi (fun id speed -> Node.create engine ~id ~speed ()) speeds in
  let links ~src:_ ~dst:_ = Link.create engine ~latency ~bandwidth () in
  let user_links _ = Link.create engine ~latency ~bandwidth () in
  build engine ~nodes ~links ~user_links ~sites:(Array.make (Array.length speeds) 0)

let uniform engine ~n ~speed ~latency ~bandwidth () =
  if n <= 0 then invalid_arg "Topology.uniform: n must be positive";
  heterogeneous engine ~speeds:(Array.make n speed) ~latency ~bandwidth ()

let two_site engine ~site_a ~site_b ~intra_latency ~intra_bandwidth ~inter_latency
    ~inter_bandwidth () =
  let na = Array.length site_a in
  let speeds = Array.append site_a site_b in
  if Array.length speeds = 0 then invalid_arg "Topology.two_site: no nodes";
  let nodes = Array.mapi (fun id speed -> Node.create engine ~id ~speed ()) speeds in
  let sites = Array.init (Array.length speeds) (fun i -> if i < na then 0 else 1) in
  let links ~src ~dst =
    if sites.(src) = sites.(dst) then
      Link.create engine ~latency:intra_latency ~bandwidth:intra_bandwidth ()
    else Link.create engine ~latency:inter_latency ~bandwidth:inter_bandwidth ()
  in
  let user_links i =
    (* The user is co-located with site A. *)
    if sites.(i) = 0 then Link.create engine ~latency:intra_latency ~bandwidth:intra_bandwidth ()
    else Link.create engine ~latency:inter_latency ~bandwidth:inter_bandwidth ()
  in
  build engine ~nodes ~links ~user_links ~sites
