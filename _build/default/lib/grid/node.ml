module Engine = Aspipe_des.Engine
module Signal = Aspipe_des.Signal
module Server = Aspipe_des.Server

type t = {
  id : int;
  name : string;
  base_speed : float;
  availability : Signal.t;
  rate : Signal.t;
  server : Server.t;
}

let create engine ~id ?name ~speed () =
  if speed <= 0.0 then invalid_arg "Node.create: speed must be positive";
  let name = match name with Some n -> n | None -> Printf.sprintf "node%d" id in
  let availability = Signal.create engine 1.0 in
  let rate = Signal.create engine speed in
  Signal.subscribe availability (fun ~old_value:_ ~new_value ->
      Signal.set rate (speed *. new_value));
  let server = Server.create engine ~name ~rate in
  { id; name; base_speed = speed; availability; rate; server }

let id t = t.id
let name t = t.name
let base_speed t = t.base_speed
let availability t = Signal.get t.availability

let set_availability t a =
  let a = Float.min 1.0 (Float.max 0.0 a) in
  Signal.set t.availability a

let effective_rate t = Signal.get t.rate
let server t = t.server
let availability_history t = Signal.history t.availability
