(** Network-quality generators — {!Loadgen}'s counterpart for links.

    A {!Loadgen.profile} is reinterpreted with "availability" read as link
    quality (1.0 = nominal). Profiles drive one ordered pair or, with
    {!apply_pair}, both directions of a node pair — the common case for a
    congested route. *)

val apply_until :
  ?rng:Aspipe_util.Rng.t ->
  horizon:float ->
  Topology.t ->
  src:int ->
  dst:int ->
  Loadgen.profile ->
  unit
(** Drive the quality of the directed link [src → dst]. Stochastic profiles
    need [rng]. *)

val apply_pair :
  ?rng:Aspipe_util.Rng.t ->
  horizon:float ->
  Topology.t ->
  int ->
  int ->
  Loadgen.profile ->
  unit
(** Drive both directions between two nodes with the same profile (the two
    directions share every event, as one congested route would). *)

val degrade_user_link :
  ?rng:Aspipe_util.Rng.t -> horizon:float -> Topology.t -> int -> Loadgen.profile -> unit
(** Drive the user ↔ node [i] connection. *)
