module Engine = Aspipe_des.Engine
module Signal = Aspipe_des.Signal
module Server = Aspipe_des.Server

type t = {
  engine : Engine.t;
  latency : float;
  bandwidth : float;
  quality : Signal.t;
  pipe : Server.t option; (* present iff contended *)
  mutable completed : int;
}

let create engine ?(contended = false) ~latency ~bandwidth () =
  if latency < 0.0 then invalid_arg "Link.create: negative latency";
  if bandwidth <= 0.0 then invalid_arg "Link.create: bandwidth must be positive";
  let quality = Signal.create engine 1.0 in
  let pipe =
    if contended then begin
      (* The wire is a rate-modulated server whose rate tracks quality. *)
      let rate = Signal.create engine bandwidth in
      Signal.subscribe quality (fun ~old_value:_ ~new_value ->
          Signal.set rate (bandwidth *. new_value));
      Some (Server.create engine ~name:"link" ~rate)
    end
    else None
  in
  { engine; latency; bandwidth; quality; pipe; completed = 0 }

let local engine = create engine ~latency:1e-4 ~bandwidth:1e10 ()

let latency t = t.latency
let bandwidth t = t.bandwidth
let quality t = Signal.get t.quality

let set_quality t q =
  let q = Float.min 1.0 (Float.max 0.01 q) in
  Signal.set t.quality q

let effective_latency t = t.latency /. quality t
let effective_bandwidth t = t.bandwidth *. quality t

let transfer_time t ~bytes = effective_latency t +. (bytes /. effective_bandwidth t)

let transfer t ~bytes k =
  if bytes < 0.0 then invalid_arg "Link.transfer: negative size";
  let deliver () =
    t.completed <- t.completed + 1;
    k ()
  in
  match t.pipe with
  | None -> ignore (Engine.schedule t.engine ~delay:(transfer_time t ~bytes) deliver)
  | Some pipe ->
      (* Bandwidth queues (at the live rate); latency is then paid on the wire. *)
      Server.submit pipe ~work:bytes (fun () ->
          ignore (Engine.schedule t.engine ~delay:(effective_latency t) deliver))

let transfers_completed t = t.completed
let quality_history t = Signal.history t.quality
