module Stats = Aspipe_util.Stats
module Render = Aspipe_util.Render

type stage_summary = {
  stage : int;
  services : int;
  mean_service_time : float;
  p95_service_time : float;
  total_busy : float;
  nodes_used : int list;
}

let per_stage trace ~stages =
  List.init stages (fun stage ->
      let durations = Trace.service_times trace ~stage in
      let nodes =
        List.sort_uniq compare
          (List.filter_map
             (fun (s : Trace.service) -> if s.Trace.stage = stage then Some s.Trace.node else None)
             (Trace.services trace))
      in
      {
        stage;
        services = Array.length durations;
        mean_service_time = (if Array.length durations = 0 then nan else Stats.mean durations);
        p95_service_time =
          (if Array.length durations = 0 then nan else Stats.quantile durations 0.95);
        total_busy = Array.fold_left ( +. ) 0.0 durations;
        nodes_used = nodes;
      })

let node_busy_time trace ~node =
  List.fold_left
    (fun acc (s : Trace.service) ->
      if s.Trace.node = node then acc +. (s.Trace.finish -. s.Trace.start) else acc)
    0.0 (Trace.services trace)

let node_busy_fraction trace ~node =
  let span = Trace.makespan trace in
  if span <= 0.0 then 0.0 else node_busy_time trace ~node /. span

let transfer_volume trace = List.length (Trace.transfers trace)

let gantt_rows trace =
  let header = [ "kind"; "item"; "stage"; "nodes"; "start"; "finish" ] in
  let service_rows =
    List.map
      (fun (s : Trace.service) ->
        [
          "service";
          string_of_int s.Trace.item;
          string_of_int s.Trace.stage;
          string_of_int s.Trace.node;
          Printf.sprintf "%.6f" s.Trace.start;
          Printf.sprintf "%.6f" s.Trace.finish;
        ])
      (Trace.services trace)
  in
  let transfer_rows =
    List.map
      (fun (t : Trace.transfer) ->
        [
          "transfer";
          string_of_int t.Trace.item;
          string_of_int t.Trace.from_stage;
          Printf.sprintf "%d->%d" t.Trace.src t.Trace.dst;
          Printf.sprintf "%.6f" t.Trace.start;
          Printf.sprintf "%.6f" t.Trace.finish;
        ])
      (Trace.transfers trace)
  in
  header :: (service_rows @ transfer_rows)

let summary_table trace ~stages =
  let table =
    Render.Table.create ~title:"per-stage summary"
      ~columns:[ "stage"; "services"; "mean svc (s)"; "p95 svc (s)"; "busy (s)"; "nodes" ]
  in
  List.iter
    (fun s ->
      Render.Table.add_row table
        [
          string_of_int s.stage;
          string_of_int s.services;
          Printf.sprintf "%.4f" s.mean_service_time;
          Printf.sprintf "%.4f" s.p95_service_time;
          Printf.sprintf "%.2f" s.total_busy;
          "{" ^ String.concat "," (List.map string_of_int s.nodes_used) ^ "}";
        ])
    (per_stage trace ~stages);
  table
