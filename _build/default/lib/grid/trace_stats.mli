(** Post-mortem analysis of execution traces: the per-stage and per-node
    summaries a user needs to see {e why} a run performed the way it did,
    and flat rows ready for CSV export. *)

type stage_summary = {
  stage : int;
  services : int;
  mean_service_time : float;  (** [nan] if the stage never served *)
  p95_service_time : float;
  total_busy : float;  (** summed service time *)
  nodes_used : int list;  (** ascending *)
}

val per_stage : Trace.t -> stages:int -> stage_summary list

val node_busy_time : Trace.t -> node:int -> float
(** Total service time the trace records on a node. *)

val node_busy_fraction : Trace.t -> node:int -> float
(** [node_busy_time / makespan] (0 when the trace is empty). *)

val transfer_volume : Trace.t -> int
(** Number of inter-stage transfers recorded. *)

val gantt_rows : Trace.t -> string list list
(** Header plus one row per service and per transfer:
    [kind; item; stage; node(s); start; finish] — feed to
    {!Aspipe_util.Csvio.write_rows} for external plotting. *)

val summary_table : Trace.t -> stages:int -> Aspipe_util.Render.Table.t
(** The per-stage summary as a printable table. *)
