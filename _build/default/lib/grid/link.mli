(** A network link between two grid sites.

    A transfer of [b] bytes costs [latency/q + b/(bandwidth·q)] seconds,
    where [q] is the link's current {e quality} — a time-varying factor
    (1.0 = nominal, 0.1 = ten times worse) driven by {!Netgen} profiles the
    way node availability is driven by {!Loadgen}. A contended link
    serializes concurrent transfers through an FCFS server whose rate tracks
    [bandwidth·q] live; on an uncontended link each transfer samples the
    quality once, when it starts. Local links — both endpoints on the same
    node — are near-free, mirroring the "really high rate" intra-machine
    moves of grid pipeline deployments. *)

type t

val create :
  Aspipe_des.Engine.t ->
  ?contended:bool ->
  latency:float ->
  bandwidth:float ->
  unit ->
  t
(** [latency] in seconds (≥ 0), [bandwidth] in bytes/second (> 0).
    [contended] defaults to [false]. Quality starts at 1.0. *)

val local : Aspipe_des.Engine.t -> t
(** The same-node link: 0.1 ms latency, 10 GB/s. *)

val latency : t -> float
(** Nominal (quality-1) latency. *)

val bandwidth : t -> float
(** Nominal bandwidth. *)

val quality : t -> float
val set_quality : t -> float -> unit
(** Clamped to [\[0.01, 1\]] — a grid link degrades, it does not vanish. *)

val effective_latency : t -> float
val effective_bandwidth : t -> float

val transfer_time : t -> bytes:float -> float
(** Uncontended cost estimate at the current quality — what the performance
    model uses. *)

val transfer : t -> bytes:float -> (unit -> unit) -> unit
(** Simulate a transfer; the callback fires on delivery. On a contended link
    the bandwidth portion queues behind transfers already in flight. *)

val transfers_completed : t -> int
val quality_history : t -> Aspipe_util.Timeseries.t
