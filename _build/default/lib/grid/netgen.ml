module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate

let require_rng = function
  | Some rng -> rng
  | None -> invalid_arg "Netgen: this profile is stochastic and needs ~rng"

(* Drive [set] (a quality setter) with a Loadgen profile over the engine. *)
let drive ?rng ~horizon engine set profile =
  let set_at time level =
    if time <= Engine.now engine then set level
    else ignore (Engine.schedule_at engine ~time (fun () -> set level))
  in
  match (profile : Loadgen.profile) with
  | Loadgen.Dedicated -> set 1.0
  | Loadgen.Constant q -> set q
  | Loadgen.Step { at; level } -> set_at at level
  | Loadgen.Steps schedule | Loadgen.Playback schedule ->
      List.iter (fun (time, level) -> set_at time level) schedule
  | Loadgen.Sine { period; base; amplitude; sample_every } ->
      if period <= 0.0 || sample_every <= 0.0 then
        invalid_arg "Netgen: sine requires positive period and sampling step";
      Engine.periodic engine ~start:(Engine.now engine) ~every:sample_every (fun () ->
          let t = Engine.now engine in
          set (base +. (amplitude *. sin (2.0 *. Float.pi *. t /. period)));
          t < horizon)
  | Loadgen.Random_walk { every; sigma; lo; hi } ->
      if every <= 0.0 then invalid_arg "Netgen: random walk requires positive step";
      if lo > hi then invalid_arg "Netgen: random walk bounds inverted";
      let rng = require_rng rng in
      let level = ref hi in
      Engine.periodic engine ~every (fun () ->
          let next = !level +. Variate.normal rng ~mean:0.0 ~stddev:sigma in
          let next =
            if next > hi then hi -. (next -. hi)
            else if next < lo then lo +. (lo -. next)
            else next
          in
          level := Float.min hi (Float.max lo next);
          set !level;
          Engine.now engine < horizon)
  | Loadgen.Markov_on_off { to_busy_rate; to_free_rate; busy_level } ->
      if to_busy_rate <= 0.0 || to_free_rate <= 0.0 then
        invalid_arg "Netgen: on/off rates must be positive";
      let rng = require_rng rng in
      let rec go_free () =
        set 1.0;
        let hold = Variate.exponential rng ~rate:to_busy_rate in
        if Engine.now engine +. hold < horizon then
          ignore (Engine.schedule engine ~delay:hold go_busy)
      and go_busy () =
        set busy_level;
        let hold = Variate.exponential rng ~rate:to_free_rate in
        if Engine.now engine +. hold < horizon then
          ignore (Engine.schedule engine ~delay:hold go_free)
      in
      go_free ()

let apply_until ?rng ~horizon topo ~src ~dst profile =
  let link = Topology.link topo ~src ~dst in
  drive ?rng ~horizon (Topology.engine topo) (Link.set_quality link) profile

let apply_pair ?rng ~horizon topo a b profile =
  let forward = Topology.link topo ~src:a ~dst:b in
  let backward = Topology.link topo ~src:b ~dst:a in
  let set q =
    Link.set_quality forward q;
    Link.set_quality backward q
  in
  drive ?rng ~horizon (Topology.engine topo) set profile

let degrade_user_link ?rng ~horizon topo i profile =
  let link = Topology.user_link topo i in
  drive ?rng ~horizon (Topology.engine topo) (Link.set_quality link) profile
