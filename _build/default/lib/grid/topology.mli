(** Grid topologies: a set of heterogeneous nodes plus a link for every
    ordered pair, and user links carrying pipeline input and output (the
    [move_1] and [move_{Ns+1}] connections of the skeleton model). *)

type t

val engine : t -> Aspipe_des.Engine.t
val size : t -> int
val node : t -> int -> Node.t
val nodes : t -> Node.t array

val link : t -> src:int -> dst:int -> Link.t
(** [link t ~src ~dst]; [src = dst] is the local link. *)

val user_link : t -> int -> Link.t
(** The connection between the user's site and node [i]. *)

(** {1 Builders} *)

val uniform :
  Aspipe_des.Engine.t ->
  n:int ->
  speed:float ->
  latency:float ->
  bandwidth:float ->
  unit ->
  t
(** Homogeneous cluster: [n] identical nodes, all remote pairs share the same
    link parameters, user links identical too. *)

val heterogeneous :
  Aspipe_des.Engine.t ->
  speeds:float array ->
  latency:float ->
  bandwidth:float ->
  unit ->
  t
(** Per-node speeds, uniform network. *)

val two_site :
  Aspipe_des.Engine.t ->
  site_a:float array ->
  site_b:float array ->
  intra_latency:float ->
  intra_bandwidth:float ->
  inter_latency:float ->
  inter_bandwidth:float ->
  unit ->
  t
(** Two sites with cheap intra-site and expensive inter-site links. The user
    sits at site A. [site_a]/[site_b] give each node's speed. *)

val custom :
  Aspipe_des.Engine.t ->
  nodes:Node.t array ->
  links:(src:int -> dst:int -> Link.t) ->
  user_links:(int -> Link.t) ->
  t
(** Full control; the functions are evaluated once per pair at build time. *)

val site_of : t -> int -> int
(** Site index of a node (0 for single-site topologies). *)
