module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate

type profile =
  | Dedicated
  | Constant of float
  | Step of { at : float; level : float }
  | Steps of (float * float) list
  | Sine of { period : float; base : float; amplitude : float; sample_every : float }
  | Random_walk of { every : float; sigma : float; lo : float; hi : float }
  | Markov_on_off of { to_busy_rate : float; to_free_rate : float; busy_level : float }
  | Playback of (float * float) list

let pp_profile ppf = function
  | Dedicated -> Format.fprintf ppf "dedicated"
  | Constant a -> Format.fprintf ppf "constant(%g)" a
  | Step { at; level } -> Format.fprintf ppf "step(at=%g,level=%g)" at level
  | Steps ss -> Format.fprintf ppf "steps(%d)" (List.length ss)
  | Sine { period; base; amplitude; _ } ->
      Format.fprintf ppf "sine(T=%g,base=%g,amp=%g)" period base amplitude
  | Random_walk { every; sigma; _ } -> Format.fprintf ppf "walk(dt=%g,sigma=%g)" every sigma
  | Markov_on_off { to_busy_rate; to_free_rate; busy_level } ->
      Format.fprintf ppf "onoff(busy=%g,free=%g,level=%g)" to_busy_rate to_free_rate busy_level
  | Playback ss -> Format.fprintf ppf "playback(%d)" (List.length ss)

let require_rng = function
  | Some rng -> rng
  | None -> invalid_arg "Loadgen: this profile is stochastic and needs ~rng"

let apply_until ?rng ~horizon topo i profile =
  let node = Topology.node topo i in
  let engine = Topology.engine topo in
  let set = Node.set_availability node in
  let set_at time level =
    if time <= Engine.now engine then set level
    else ignore (Engine.schedule_at engine ~time (fun () -> set level))
  in
  match profile with
  | Dedicated -> set 1.0
  | Constant a -> set a
  | Step { at; level } -> set_at at level
  | Steps schedule | Playback schedule -> List.iter (fun (time, level) -> set_at time level) schedule
  | Sine { period; base; amplitude; sample_every } ->
      if period <= 0.0 || sample_every <= 0.0 then
        invalid_arg "Loadgen: sine requires positive period and sampling step";
      Engine.periodic engine ~start:(Engine.now engine) ~every:sample_every (fun () ->
          let t = Engine.now engine in
          set (base +. (amplitude *. sin (2.0 *. Float.pi *. t /. period)));
          t < horizon)
  | Random_walk { every; sigma; lo; hi } ->
      if every <= 0.0 then invalid_arg "Loadgen: random walk requires positive step";
      if lo > hi then invalid_arg "Loadgen: random walk bounds inverted";
      let rng = require_rng rng in
      let level = ref (Node.availability node) in
      Engine.periodic engine ~every (fun () ->
          let next = !level +. Variate.normal rng ~mean:0.0 ~stddev:sigma in
          (* Reflect off the bounds to stay in range without sticking. *)
          let next =
            if next > hi then hi -. (next -. hi)
            else if next < lo then lo +. (lo -. next)
            else next
          in
          level := Float.min hi (Float.max lo next);
          set !level;
          Engine.now engine < horizon)
  | Markov_on_off { to_busy_rate; to_free_rate; busy_level } ->
      if to_busy_rate <= 0.0 || to_free_rate <= 0.0 then
        invalid_arg "Loadgen: on/off rates must be positive";
      let rng = require_rng rng in
      let rec go_free () =
        set 1.0;
        let hold = Variate.exponential rng ~rate:to_busy_rate in
        if Engine.now engine +. hold < horizon then
          ignore (Engine.schedule engine ~delay:hold go_busy)
      and go_busy () =
        set busy_level;
        let hold = Variate.exponential rng ~rate:to_free_rate in
        if Engine.now engine +. hold < horizon then
          ignore (Engine.schedule engine ~delay:hold go_free)
      in
      go_free ()

let apply ?rng topo i profile = apply_until ?rng ~horizon:infinity topo i profile
