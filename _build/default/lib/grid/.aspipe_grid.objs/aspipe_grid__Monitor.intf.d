lib/grid/monitor.mli: Aspipe_util Topology
