lib/grid/node.mli: Aspipe_des Aspipe_util
