lib/grid/topology.mli: Aspipe_des Link Node
