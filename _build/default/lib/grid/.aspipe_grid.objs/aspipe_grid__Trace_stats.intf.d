lib/grid/trace_stats.mli: Aspipe_util Trace
