lib/grid/link.ml: Aspipe_des Float
