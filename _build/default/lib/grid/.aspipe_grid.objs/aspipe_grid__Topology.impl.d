lib/grid/topology.ml: Array Aspipe_des Link Node
