lib/grid/monitor.ml: Array Aspipe_des Aspipe_util Float Link Node Topology
