lib/grid/loadgen.mli: Aspipe_util Format Topology
