lib/grid/link.mli: Aspipe_des Aspipe_util
