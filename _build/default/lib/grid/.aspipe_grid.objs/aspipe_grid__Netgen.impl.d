lib/grid/netgen.ml: Aspipe_des Aspipe_util Float Link List Loadgen Topology
