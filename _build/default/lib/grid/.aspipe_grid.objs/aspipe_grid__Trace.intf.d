lib/grid/trace.mli:
