lib/grid/loadgen.ml: Aspipe_des Aspipe_util Float Format List Node Topology
