lib/grid/netgen.mli: Aspipe_util Loadgen Topology
