lib/grid/trace.ml: Array Float Hashtbl List Stdlib
