lib/grid/trace_stats.ml: Array Aspipe_util List Printf String Trace
