lib/grid/node.ml: Aspipe_des Float Printf
