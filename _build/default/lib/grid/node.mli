(** A grid processor: a base speed modulated by a time-varying availability.

    Availability is the fraction of the CPU left for the pipeline by
    background (non-dedicated) load — 1.0 means dedicated, 0.0 means the node
    is completely stolen. The node's FCFS server serves whatever stages are
    mapped to it, one item at a time, at rate [base_speed × availability]. *)

type t

val create :
  Aspipe_des.Engine.t -> id:int -> ?name:string -> speed:float -> unit -> t
(** [speed] is in abstract work units per second; must be positive. *)

val id : t -> int
val name : t -> string
val base_speed : t -> float

val availability : t -> float
val set_availability : t -> float -> unit
(** Clamped to [\[0, 1\]]. Updating re-derives the server rate, which
    re-times any in-flight service. *)

val effective_rate : t -> float
(** [base_speed × availability], in work units per second. *)

val server : t -> Aspipe_des.Server.t
val availability_history : t -> Aspipe_util.Timeseries.t
