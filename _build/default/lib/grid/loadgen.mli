(** Background-load generators for non-dedicated grid nodes.

    A profile describes how a node's availability evolves over simulated
    time; {!apply} schedules the corresponding events. Profiles are plain
    data so experiment specifications can carry them. *)

type profile =
  | Dedicated  (** availability stays 1.0 *)
  | Constant of float  (** fixed availability in [0,1] *)
  | Step of { at : float; level : float }
      (** availability drops (or rises) to [level] at time [at] *)
  | Steps of (float * float) list  (** explicit (time, availability) schedule *)
  | Sine of { period : float; base : float; amplitude : float; sample_every : float }
      (** availability = base + amplitude·sin(2πt/period), sampled *)
  | Random_walk of { every : float; sigma : float; lo : float; hi : float }
      (** Gaussian increments every [every] s, reflected into [lo, hi] *)
  | Markov_on_off of { to_busy_rate : float; to_free_rate : float; busy_level : float }
      (** exponential holding times; free = 1.0, busy = [busy_level] *)
  | Playback of (float * float) list
      (** replay a recorded availability trace *)

val pp_profile : Format.formatter -> profile -> unit

val apply : ?rng:Aspipe_util.Rng.t -> Topology.t -> int -> profile -> unit
(** [apply topo i profile] drives node [i]'s availability. Stochastic
    profiles require [rng] (raises [Invalid_argument] otherwise).
    Events run until the simulation stops pulling them (generators stop
    self-rescheduling after [horizon] if provided via {!apply_until}). *)

val apply_until :
  ?rng:Aspipe_util.Rng.t -> horizon:float -> Topology.t -> int -> profile -> unit
(** Like {!apply} but self-rescheduling profiles (sine, random walk, Markov)
    stop after [horizon], so bounded simulations terminate. *)
