type core = {
  name : string;
  observe_core : float -> unit;
  predict_core : unit -> float;
}

type t = {
  core : core;
  fallback : float;
  mutable observations : int;
  mutable error_sq_sum : float;
  mutable error_abs_sum : float;
  mutable errors_counted : int;
  bank : t list; (* non-empty only for the adaptive ensemble *)
}

let name t = t.core.name

let predict t = if t.observations = 0 then t.fallback else t.core.predict_core ()

let rec observe t x =
  if t.observations > 0 then begin
    (* Score the prediction that was in force before this measurement. *)
    let err = predict t -. x in
    t.error_sq_sum <- t.error_sq_sum +. (err *. err);
    t.error_abs_sum <- t.error_abs_sum +. Float.abs err;
    t.errors_counted <- t.errors_counted + 1
  end;
  List.iter (fun member -> observe member x) t.bank;
  t.core.observe_core x;
  t.observations <- t.observations + 1

let mse t =
  if t.errors_counted = 0 then nan else t.error_sq_sum /. Float.of_int t.errors_counted

let mae t =
  if t.errors_counted = 0 then nan else t.error_abs_sum /. Float.of_int t.errors_counted

let make ?(fallback = 0.0) core = {
  core;
  fallback;
  observations = 0;
  error_sq_sum = 0.0;
  error_abs_sum = 0.0;
  errors_counted = 0;
  bank = [];
}

let last_value ?fallback () =
  let last = ref 0.0 in
  make ?fallback
    { name = "last"; observe_core = (fun x -> last := x); predict_core = (fun () -> !last) }

let running_mean ?fallback () =
  let acc = Stats.Welford.create () in
  make ?fallback
    {
      name = "run_mean";
      observe_core = (fun x -> Stats.Welford.add acc x);
      predict_core = (fun () -> Stats.Welford.mean acc);
    }

let window_buffer window =
  if window <= 0 then invalid_arg "Forecast: window must be positive";
  let buf = Array.make window 0.0 in
  let filled = ref 0 in
  let next = ref 0 in
  let push x =
    buf.(!next) <- x;
    next := (!next + 1) mod window;
    if !filled < window then incr filled
  in
  let contents () = Array.init !filled (fun i -> buf.((!next - !filled + i + (2 * window)) mod window)) in
  (push, contents)

let sliding_mean ?fallback ~window () =
  let push, contents = window_buffer window in
  make ?fallback
    {
      name = Printf.sprintf "mean_%d" window;
      observe_core = push;
      predict_core = (fun () -> Stats.mean (contents ()));
    }

let sliding_median ?fallback ~window () =
  let push, contents = window_buffer window in
  make ?fallback
    {
      name = Printf.sprintf "median_%d" window;
      observe_core = push;
      predict_core = (fun () -> Stats.median (contents ()));
    }

let ewma ?fallback ~gain () =
  if gain <= 0.0 || gain > 1.0 then invalid_arg "Forecast.ewma: gain must be in (0,1]";
  let state = ref nan in
  make ?fallback
    {
      name = Printf.sprintf "ewma_%.2g" gain;
      observe_core =
        (fun x -> if Float.is_nan !state then state := x else state := (gain *. x) +. ((1.0 -. gain) *. !state));
      predict_core = (fun () -> !state);
    }

let trend ?fallback ~gain () =
  if gain <= 0.0 || gain > 1.0 then invalid_arg "Forecast.trend: gain must be in (0,1]";
  let trend_gain = gain /. 2.0 in
  let level = ref nan in
  let slope = ref 0.0 in
  make ?fallback
    {
      name = Printf.sprintf "trend_%.2g" gain;
      observe_core =
        (fun x ->
          if Float.is_nan !level then level := x
          else begin
            let previous = !level in
            level := (gain *. x) +. ((1.0 -. gain) *. (!level +. !slope));
            slope := (trend_gain *. (!level -. previous)) +. ((1.0 -. trend_gain) *. !slope)
          end);
      predict_core = (fun () -> !level +. !slope);
    }

let ar1 ?fallback () =
  (* Running sums for the least-squares fit of x_t = a·x_{t−1} + c. *)
  let n = ref 0 in
  let sum_prev = ref 0.0 and sum_cur = ref 0.0 in
  let sum_prev_sq = ref 0.0 and sum_cross = ref 0.0 in
  let last = ref nan in
  let coefficients () =
    let nf = Float.of_int !n in
    let denom = (nf *. !sum_prev_sq) -. (!sum_prev *. !sum_prev) in
    if !n < 3 || Float.abs denom < 1e-12 then None
    else begin
      let a = ((nf *. !sum_cross) -. (!sum_prev *. !sum_cur)) /. denom in
      let c = (!sum_cur -. (a *. !sum_prev)) /. nf in
      Some (a, c)
    end
  in
  make ?fallback
    {
      name = "ar1";
      observe_core =
        (fun x ->
          if not (Float.is_nan !last) then begin
            incr n;
            sum_prev := !sum_prev +. !last;
            sum_cur := !sum_cur +. x;
            sum_prev_sq := !sum_prev_sq +. (!last *. !last);
            sum_cross := !sum_cross +. (!last *. x)
          end;
          last := x);
      predict_core =
        (fun () ->
          match coefficients () with
          | Some (a, c) -> (a *. !last) +. c
          | None -> !last);
    }

let adaptive ?(fallback = 0.0) () =
  let bank =
    [
      last_value ~fallback ();
      running_mean ~fallback ();
      sliding_mean ~fallback ~window:5 ();
      sliding_mean ~fallback ~window:10 ();
      sliding_mean ~fallback ~window:25 ();
      sliding_median ~fallback ~window:5 ();
      sliding_median ~fallback ~window:10 ();
      sliding_median ~fallback ~window:25 ();
      ewma ~fallback ~gain:0.1 ();
      ewma ~fallback ~gain:0.25 ();
      ewma ~fallback ~gain:0.5 ();
      ewma ~fallback ~gain:0.75 ();
      trend ~fallback ~gain:0.3 ();
      ar1 ~fallback ();
    ]
  in
  let best () =
    let score member = if Float.is_nan (mse member) then infinity else mse member in
    List.fold_left
      (fun acc member -> if score member < score acc then member else acc)
      (List.hd bank) (List.tl bank)
  in
  let core =
    {
      name = "adaptive";
      observe_core = (fun _ -> ()) (* members are fed by [observe] itself *);
      predict_core = (fun () -> predict (best ()));
    }
  in
  { (make ~fallback core) with bank }

let members t =
  match t.bank with
  | [] -> [ (name t, mse t) ]
  | bank -> List.map (fun member -> (name member, mse member)) bank
