lib/util/forecast.mli:
