lib/util/rng.mli:
