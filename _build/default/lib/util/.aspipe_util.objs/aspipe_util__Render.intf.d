lib/util/render.mli:
