lib/util/forecast.ml: Array Float List Printf Stats
