lib/util/variate.mli: Format Rng
