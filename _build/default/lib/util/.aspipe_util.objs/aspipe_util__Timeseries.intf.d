lib/util/timeseries.mli:
