lib/util/csvio.ml: Array Buffer Filename Fun List Printf Render String Sys
