lib/util/csvio.mli: Render
