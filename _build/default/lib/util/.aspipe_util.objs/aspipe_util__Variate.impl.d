lib/util/variate.ml: Array Float Format Rng
