(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256++ seeded through splitmix64, which gives
    high-quality 64-bit streams with a tiny state. Every stochastic component
    of the simulator takes an explicit [Rng.t] so whole experiments are
    reproducible from a single integer seed, and [split] derives statistically
    independent child streams for concurrent components. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)], with 53 bits of precision. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Raises [Invalid_argument] if [n <= 0]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher–Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a].
    Raises [Invalid_argument] on an empty array. *)
