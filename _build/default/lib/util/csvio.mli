(** Minimal CSV output, so experiment tables and figure series can be loaded
    into external plotting tools. RFC-4180-style quoting (fields containing
    commas, quotes or newlines are quoted; quotes doubled). *)

val escape_field : string -> string

val encode_rows : string list list -> string
(** Rows joined with ["\n"], trailing newline included. *)

val write_rows : path:string -> string list list -> unit
(** Create/truncate [path] and write the encoded rows. *)

val table_rows : Render.Table.t -> string list list
(** Header row followed by the data rows. *)

val series_rows : Render.Series.t list -> string list list
(** Long format: [series,x,y] per point, with a header. *)

val save_table : dir:string -> basename:string -> Render.Table.t -> string
(** Write [dir/basename.csv] (creating [dir] if needed); returns the path. *)

val save_series : dir:string -> basename:string -> Render.Series.t list -> string
