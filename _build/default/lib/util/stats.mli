(** Online and batch statistics.

    {!Welford} accumulates mean/variance in a single pass with good numerical
    behaviour; the batch helpers operate on float arrays. These are used by
    the calibration phase (service-time estimates), the monitors, and the
    experiment harness (mean ± confidence interval over seeds). *)

module Welford : sig
  type t
  (** Mutable single-pass accumulator. *)

  val create : unit -> t
  val add : t -> float -> unit
  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to having seen both
      streams (Chan et al. parallel combination). *)

  val count : t -> int
  val mean : t -> float
  (** [mean t] is [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] when fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], linear interpolation between order
    statistics (type-7). Raises [Invalid_argument] on empty input or [q]
    outside [\[0,1\]]. Does not modify [xs]. *)

val median : float array -> float

val confidence95 : float array -> float * float
(** [confidence95 xs] is [(mean, half_width)] of a normal-approximation 95%
    confidence interval (half width = 1.96 · s/√n; 0 when n < 2). *)

val mae : float array -> float array -> float
(** Mean absolute error between two equal-length arrays. *)

val rmse : float array -> float array -> float
(** Root mean squared error between two equal-length arrays. *)

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** Fixed uniform binning over [\[lo, hi)]; out-of-range samples are counted
      in saturating edge bins. *)

  val add : t -> float -> unit
  val count : t -> int
  val counts : t -> int array
  val bin_mid : t -> int -> float
  val pp : Format.formatter -> t -> unit
  (** Render as a small ASCII bar chart. *)
end
