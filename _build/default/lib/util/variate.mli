(** Random variate generation for the standard distributions used by the
    workload generators and the grid load models.

    All samplers take the {!Rng.t} explicitly; none touches global state. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] samples Exp(rate); mean [1/rate].
    Raises [Invalid_argument] if [rate <= 0]. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** [uniform rng ~lo ~hi] samples U[lo, hi). *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** [normal rng ~mean ~stddev] samples a Gaussian (Box–Muller, polar form). *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [lognormal rng ~mu ~sigma] samples exp(N(mu, sigma²)). *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** [gamma rng ~shape ~scale] samples Gamma(k, θ) by Marsaglia–Tsang,
    extended to [shape < 1] by the boosting identity. *)

val erlang : Rng.t -> k:int -> rate:float -> float
(** [erlang rng ~k ~rate] is the sum of [k] iid Exp(rate) variables. *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** [pareto rng ~shape ~scale] samples a Pareto with minimum [scale];
    heavy-tailed service times. *)

val weibull : Rng.t -> shape:float -> scale:float -> float
(** [weibull rng ~shape ~scale] samples Weibull(k, λ). *)

val bernoulli : Rng.t -> p:float -> bool
(** [bernoulli rng ~p] is [true] with probability [p]. *)

val categorical : Rng.t -> weights:float array -> int
(** [categorical rng ~weights] samples an index proportionally to [weights].
    Raises [Invalid_argument] if weights are empty, negative or all zero. *)

val truncated : lo:float -> hi:float -> (unit -> float) -> float
(** [truncated ~lo ~hi draw] redraws (up to a bounded number of attempts,
    then clamps) until the sample lies in [\[lo, hi\]]. *)

type spec =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { rate : float }
  | Normal of { mean : float; stddev : float }
  | Lognormal of { mu : float; sigma : float }
  | Gamma of { shape : float; scale : float }
  | Pareto of { shape : float; scale : float }
  | Weibull of { shape : float; scale : float }
      (** First-class distribution descriptions, so workload files can carry
          distributions as data. *)

val sample : Rng.t -> spec -> float
(** [sample rng spec] draws once from [spec]. *)

val mean_of_spec : spec -> float
(** [mean_of_spec spec] is the analytic mean of [spec] (infinite Pareto means
    are returned as [infinity]). *)

val pp_spec : Format.formatter -> spec -> unit
