let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Variate.exponential: rate must be positive";
  let u = 1.0 -. Rng.float rng in
  -.log u /. rate

let uniform rng ~lo ~hi = Rng.range rng lo hi

let normal rng ~mean ~stddev =
  (* Polar Box–Muller; discards the second variate to stay stateless. *)
  let rec draw () =
    let u = Rng.range rng (-1.0) 1.0 in
    let v = Rng.range rng (-1.0) 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then draw ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mean +. (stddev *. draw ())

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Variate.gamma: parameters must be positive";
  if shape < 1.0 then
    (* Boost: Gamma(k) = Gamma(k+1) * U^(1/k). *)
    let u = 1.0 -. Rng.float rng in
    gamma rng ~shape:(shape +. 1.0) ~scale *. (u ** (1.0 /. shape))
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = normal rng ~mean:0.0 ~stddev:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = 1.0 -. Rng.float rng in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v3
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v3 +. log v3)) then d *. v3
        else draw ()
      end
    in
    scale *. draw ()
  end

let erlang rng ~k ~rate =
  if k <= 0 then invalid_arg "Variate.erlang: k must be positive";
  let rec loop i acc = if i = 0 then acc else loop (i - 1) (acc +. exponential rng ~rate) in
  loop k 0.0

let pareto rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Variate.pareto: parameters must be positive";
  let u = 1.0 -. Rng.float rng in
  scale /. (u ** (1.0 /. shape))

let weibull rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Variate.weibull: parameters must be positive";
  let u = 1.0 -. Rng.float rng in
  scale *. ((-.log u) ** (1.0 /. shape))

let bernoulli rng ~p = Rng.float rng < p

let categorical rng ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Variate.categorical: empty weights";
  let total = Array.fold_left (fun acc w ->
    if w < 0.0 then invalid_arg "Variate.categorical: negative weight";
    acc +. w) 0.0 weights
  in
  if total <= 0.0 then invalid_arg "Variate.categorical: weights sum to zero";
  let target = Rng.float rng *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let truncated ~lo ~hi draw =
  if lo > hi then invalid_arg "Variate.truncated: lo > hi";
  let rec attempt n =
    if n = 0 then Float.min hi (Float.max lo (draw ()))
    else
      let x = draw () in
      if x >= lo && x <= hi then x else attempt (n - 1)
  in
  attempt 64

type spec =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { rate : float }
  | Normal of { mean : float; stddev : float }
  | Lognormal of { mu : float; sigma : float }
  | Gamma of { shape : float; scale : float }
  | Pareto of { shape : float; scale : float }
  | Weibull of { shape : float; scale : float }

let sample rng = function
  | Constant c -> c
  | Uniform { lo; hi } -> uniform rng ~lo ~hi
  | Exponential { rate } -> exponential rng ~rate
  | Normal { mean; stddev } -> normal rng ~mean ~stddev
  | Lognormal { mu; sigma } -> lognormal rng ~mu ~sigma
  | Gamma { shape; scale } -> gamma rng ~shape ~scale
  | Pareto { shape; scale } -> pareto rng ~shape ~scale
  | Weibull { shape; scale } -> weibull rng ~shape ~scale

(* Lanczos approximation of the log-gamma function, for Weibull means. *)
let log_gamma_fn x =
  let coefficients =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  Array.iter
    (fun c ->
      y := !y +. 1.0;
      ser := !ser +. (c /. !y))
    coefficients;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let mean_of_spec = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { rate } -> 1.0 /. rate
  | Normal { mean; _ } -> mean
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Gamma { shape; scale } -> shape *. scale
  | Pareto { shape; scale } -> if shape <= 1.0 then infinity else shape *. scale /. (shape -. 1.0)
  | Weibull { shape; scale } -> scale *. exp (log_gamma_fn (1.0 +. (1.0 /. shape)))

let pp_spec ppf = function
  | Constant c -> Format.fprintf ppf "const(%g)" c
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential { rate } -> Format.fprintf ppf "exp(rate=%g)" rate
  | Normal { mean; stddev } -> Format.fprintf ppf "normal(%g,%g)" mean stddev
  | Lognormal { mu; sigma } -> Format.fprintf ppf "lognormal(%g,%g)" mu sigma
  | Gamma { shape; scale } -> Format.fprintf ppf "gamma(%g,%g)" shape scale
  | Pareto { shape; scale } -> Format.fprintf ppf "pareto(%g,%g)" shape scale
  | Weibull { shape; scale } -> Format.fprintf ppf "weibull(%g,%g)" shape scale
