type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to stretch a seed into the 256-bit xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Derive a child by seeding splitmix64 from the parent's next output;
     xoshiro outputs are equidistributed enough for stream separation. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let float t =
  (* 53 high bits -> [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let value = Int64.rem bits n64 in
    if Int64.sub bits value > Int64.sub Int64.max_int (Int64.sub n64 1L) then draw ()
    else Int64.to_int value
  in
  draw ()

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0
let range t lo hi = lo +. ((hi -. lo) *. float t)

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
