let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else s

let encode_rows rows =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buffer (String.concat "," (List.map escape_field row));
      Buffer.add_char buffer '\n')
    rows;
  Buffer.contents buffer

let write_rows ~path rows =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode_rows rows))

let table_rows table = Render.Table.columns table :: Render.Table.rows table

let series_rows series =
  let header = [ "series"; "x"; "y" ] in
  let data =
    List.concat_map
      (fun (s : Render.Series.t) ->
        Array.to_list
          (Array.map
             (fun (x, y) -> [ s.Render.Series.label; Printf.sprintf "%.9g" x; Printf.sprintf "%.9g" y ])
             s.Render.Series.points))
      series
  in
  header :: data

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let save_table ~dir ~basename table =
  ensure_dir dir;
  let path = Filename.concat dir (basename ^ ".csv") in
  write_rows ~path (table_rows table);
  path

let save_series ~dir ~basename series =
  ensure_dir dir;
  let path = Filename.concat dir (basename ^ ".csv") in
  write_rows ~path (series_rows series);
  path
