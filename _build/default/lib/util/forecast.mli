(** Resource-performance forecasting, in the style of the Network Weather
    Service (Wolski et al., FGCS 1999), which the original grid deployment
    relied on for availability and latency predictions.

    A forecaster consumes a stream of measurements and predicts the next one.
    The {!adaptive} forecaster runs a whole bank of primitive forecasters and
    answers with the one whose past mean-squared error is currently lowest —
    the NWS "dynamic predictor selection" idea. *)

type t

val name : t -> string

val observe : t -> float -> unit
(** [observe t x] feeds the next measurement. Before the first observation,
    [predict] returns [fallback] (default [0.]). *)

val predict : t -> float
(** [predict t] is the forecast of the next measurement. *)

val mse : t -> float
(** [mse t] is the running mean squared one-step-ahead error of this
    forecaster over all observations so far ([nan] before the second). *)

val mae : t -> float
(** Running mean absolute one-step error ([nan] before the second). *)

val last_value : ?fallback:float -> unit -> t
(** Predicts the previous measurement. *)

val running_mean : ?fallback:float -> unit -> t
(** Predicts the mean of everything seen. *)

val sliding_mean : ?fallback:float -> window:int -> unit -> t
(** Predicts the mean of the last [window] measurements. *)

val sliding_median : ?fallback:float -> window:int -> unit -> t
(** Predicts the median of the last [window] measurements — robust to the
    spiky signals grids produce. *)

val ewma : ?fallback:float -> gain:float -> unit -> t
(** Exponentially weighted moving average with smoothing [gain] in (0,1];
    prediction p ← gain·x + (1−gain)·p. *)

val trend : ?fallback:float -> gain:float -> unit -> t
(** Holt's double exponential smoothing: tracks a level and a slope, so
    steadily draining (or recovering) resources are extrapolated instead of
    lagged. Trend gain is [gain/2]. *)

val ar1 : ?fallback:float -> unit -> t
(** Online first-order autoregression: fits x_t ≈ a·x_{t−1} + c by running
    least squares and predicts from the last observation. Falls back to the
    last value until the fit is identifiable. *)

val adaptive : ?fallback:float -> unit -> t
(** The NWS ensemble: last value, running mean, sliding mean/median over
    windows {5, 10, 25}, EWMA with gains {0.1, 0.25, 0.5, 0.75}, Holt trend
    and AR(1); predicts with the member of least running MSE. *)

val members : t -> (string * float) list
(** [members t] is the bank's per-member MSE (singleton for primitive
    forecasters) — used by the forecaster-accuracy experiment. *)
