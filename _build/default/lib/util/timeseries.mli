(** Piecewise-constant time series.

    Used for background-load signals (ground truth), monitor observations and
    throughput timelines. A series is a sorted sequence of [(t, v)] points;
    its value at time [x] is the [v] of the last point with [t <= x]. *)

type t

val create : ?initial:float -> unit -> t
(** [create ~initial ()] starts with value [initial] (default 0.) at t = −∞. *)

val of_points : ?initial:float -> (float * float) list -> t
(** Builds a series from points; the list need not be sorted.
    Raises [Invalid_argument] on duplicate timestamps. *)

val add : t -> float -> float -> unit
(** [add t time value] appends a point. Raises [Invalid_argument] if [time]
    precedes the last recorded point (series are append-only). *)

val value_at : t -> float -> float
(** [value_at t time] — the piecewise-constant evaluation. *)

val points : t -> (float * float) list
(** Points in increasing time order. *)

val integrate : t -> lo:float -> hi:float -> float
(** [integrate t ~lo ~hi] is ∫ value dt over [\[lo, hi\]]. *)

val mean_over : t -> lo:float -> hi:float -> float
(** Time-average of the series over a window. *)

val sample : t -> lo:float -> hi:float -> step:float -> (float * float) array
(** Evaluate on a regular clock; used to print figure series. *)
