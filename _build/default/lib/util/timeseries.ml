type t = {
  initial : float;
  mutable times : float array;
  mutable values : float array;
  mutable length : int;
}

let create ?(initial = 0.0) () = { initial; times = Array.make 16 0.0; values = Array.make 16 0.0; length = 0 }

let ensure_capacity t =
  if t.length = Array.length t.times then begin
    let grow a = Array.append a (Array.make (Array.length a) 0.0) in
    t.times <- grow t.times;
    t.values <- grow t.values
  end

let add t time value =
  if t.length > 0 && time < t.times.(t.length - 1) then
    invalid_arg "Timeseries.add: time must be non-decreasing";
  if t.length > 0 && time = t.times.(t.length - 1) then
    (* Same-instant update supersedes the previous value. *)
    t.values.(t.length - 1) <- value
  else begin
    ensure_capacity t;
    t.times.(t.length) <- time;
    t.values.(t.length) <- value;
    t.length <- t.length + 1
  end

let of_points ?initial pts =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) pts in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg "Timeseries.of_points: duplicate timestamp";
        check rest
    | _ -> ()
  in
  check sorted;
  let t = create ?initial () in
  List.iter (fun (time, v) -> add t time v) sorted;
  t

(* Largest index with times.(i) <= x, or -1. *)
let index_at t x =
  let rec search lo hi =
    if lo > hi then hi
    else begin
      let mid = (lo + hi) / 2 in
      if t.times.(mid) <= x then search (mid + 1) hi else search lo (mid - 1)
    end
  in
  search 0 (t.length - 1)

let value_at t x =
  let i = index_at t x in
  if i < 0 then t.initial else t.values.(i)

let points t = List.init t.length (fun i -> (t.times.(i), t.values.(i)))

let integrate t ~lo ~hi =
  if hi < lo then invalid_arg "Timeseries.integrate: hi < lo";
  if hi = lo then 0.0
  else begin
    let acc = ref 0.0 in
    let cursor = ref lo in
    let value = ref (value_at t lo) in
    let i = ref (index_at t lo + 1) in
    while !i < t.length && t.times.(!i) < hi do
      acc := !acc +. (!value *. (t.times.(!i) -. !cursor));
      cursor := t.times.(!i);
      value := t.values.(!i);
      incr i
    done;
    !acc +. (!value *. (hi -. !cursor))
  end

let mean_over t ~lo ~hi =
  if hi <= lo then invalid_arg "Timeseries.mean_over: window must be positive";
  integrate t ~lo ~hi /. (hi -. lo)

let sample t ~lo ~hi ~step =
  if step <= 0.0 then invalid_arg "Timeseries.sample: step must be positive";
  let n = int_of_float (Float.floor ((hi -. lo) /. step)) + 1 in
  Array.init n (fun i ->
      let x = lo +. (step *. Float.of_int i) in
      (x, value_at t x))
