module Welford = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let n = a.count + b.count in
      let na = Float.of_int a.count and nb = Float.of_int b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. nb /. Float.of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. Float.of_int n) in
      { count = n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
    end

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then nan else t.m2 /. Float.of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. Float.of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then nan
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. Float.of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let position = q *. Float.of_int (n - 1) in
  let below = int_of_float (Float.floor position) in
  let above = int_of_float (Float.ceil position) in
  if below = above then sorted.(below)
  else begin
    let frac = position -. Float.of_int below in
    (sorted.(below) *. (1.0 -. frac)) +. (sorted.(above) *. frac)
  end

let median xs = quantile xs 0.5

let confidence95 xs =
  let n = Array.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.0)
  else (m, 1.96 *. stddev xs /. sqrt (Float.of_int n))

let check_same_length name a b =
  if Array.length a <> Array.length b then invalid_arg (name ^ ": length mismatch");
  if Array.length a = 0 then invalid_arg (name ^ ": empty arrays")

let mae a b =
  check_same_length "Stats.mae" a b;
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. b.(i))) a;
  !acc /. Float.of_int (Array.length a)

let rmse a b =
  check_same_length "Stats.rmse" a b;
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt (!acc /. Float.of_int (Array.length a))

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let raw = int_of_float (Float.of_int bins *. (x -. t.lo) /. (t.hi -. t.lo)) in
    let i = Stdlib.min (bins - 1) (Stdlib.max 0 raw) in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let counts t = Array.copy t.counts

  let bin_mid t i =
    let bins = Array.length t.counts in
    let width = (t.hi -. t.lo) /. Float.of_int bins in
    t.lo +. (width *. (Float.of_int i +. 0.5))

  let pp ppf t =
    let peak = Array.fold_left Stdlib.max 1 t.counts in
    Array.iteri
      (fun i c ->
        let bar_len = c * 40 / peak in
        Format.fprintf ppf "%10.4g | %s %d@." (bin_mid t i) (String.make bar_len '#') c)
      t.counts
end
