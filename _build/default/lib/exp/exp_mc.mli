(** E10 (figure): real parallel speedup of the shared-memory backend.

    The 5-stage image-filter chain runs over a batch of frames, sequentially
    and fused into 1..K domain groups; a farm sweep over workers covers the
    stage-replication story. Wall-clock numbers, so results vary with the
    host — the reproduction target is the shape (monotone speedup, saturation
    at the stage/core bound). *)

type point = { groups : int; seconds : float; speedup : float }

val pipeline_points : quick:bool -> point list
(** Outputs are checked against the sequential reference before timing is
    reported; a mismatch raises [Failure]. *)

type farm_point = { workers : int; seconds : float; speedup : float }

val farm_points : quick:bool -> farm_point list

val run_e10 : quick:bool -> unit
