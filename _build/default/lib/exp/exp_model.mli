(** E1 and E2: validating the mapping evaluators against the simulator.

    E1 (table): for every mapping of a 3-stage pipeline onto a 3-processor
    grid, predicted throughput from the analytic bottleneck model and the
    CTMC versus the measured simulation throughput, plus rank correlations.
    The analytic model is a saturation upper bound, the CTMC (whose
    synchronization structure is bufferless) a conservative lower bound; the
    reproduction claim is that both {e rank} mappings like the simulator.

    E2 (table): scenario suite in the style of the skeleton-scheduling
    literature — fast/slow links, busy/fast processors — comparing the
    model-chosen mapping against the simulated-best (oracle) mapping. *)

type e1_row = {
  mapping : int array;
  analytic : float;
  ctmc : float;
  simulated : float;
}

val e1_rows : quick:bool -> e1_row list
val e1_rank_correlations : e1_row list -> float * float
(** (analytic vs sim, ctmc vs sim). *)

val run_e1 : quick:bool -> unit

type e2_row = {
  label : string;
  model_mapping : int array;
  model_predicted : float;
  model_simulated : float;
  oracle_mapping : int array;
  oracle_simulated : float;
}

val e2_rows : quick:bool -> e2_row list
val run_e2 : quick:bool -> unit
