(** E17 (table): ablating the adaptation policy itself.

    The same dynamic grid as the campaign (a flapping node, a wandering
    node), one workload, several seeds — swept across the policy family:
    never adapt, the threshold trigger at three drop levels, periodic
    re-evaluation, and the eager always-best policy, plus the cool-down
    disabled variant (the thrashing control). Reports makespan (mean ± CI)
    and migration counts, so the cost of each design ingredient is visible
    in one table. *)

type row = {
  policy : string;
  mean_makespan : float;
  ci95 : float;
  mean_migrations : float;
}

val rows : quick:bool -> row list
val run_e17 : quick:bool -> unit
