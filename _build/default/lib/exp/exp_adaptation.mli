(** The adaptive-vs-static experiments — the heart of the reproduction.

    E3 (figure): throughput timeline around a mid-run load step; the static
    schedule degrades and stays degraded, the adaptive pattern re-maps and
    recovers.

    E4 (figure): completion time versus the severity of an {e undisclosed}
    initial load on one node (the engine starts blind and must discover it),
    for blind-static, informed-static, adaptive and clairvoyant strategies.

    E7 (table): sensitivity of the adaptive pattern to its two key knobs —
    monitoring interval and adaptation threshold — in completion time and
    number of migrations.

    E8 (figure): the migration-cost crossover — sweeping stage state size
    until moving a stage costs more than it saves. *)

val load_step_scenario :
  quick:bool -> ?state_bytes:float -> ?step_level:float -> unit -> Aspipe_core.Scenario.t
(** The E3/E7/E8 world: 4 balanced stages, 3 nodes (node 0 slightly faster),
    spaced arrivals, availability of node 0 drops to [step_level] (default
    0.2) 40% into the nominal run. *)

type e3_result = {
  label : string;
  series : (float * float) array;  (** windowed throughput timeline *)
  makespan : float;
  adaptations : int;
}

val e3_results : quick:bool -> e3_result list
val run_e3 : quick:bool -> unit

type e4_point = { severity : float; static_blind : float; static_informed : float;
                  adaptive : float; clairvoyant : float }

val e4_points : quick:bool -> e4_point list
val run_e4 : quick:bool -> unit

type e7_cell = {
  monitor_every : float;
  drop : float;
  completion : float;
  migrations : int;
}

val e7_cells : quick:bool -> e7_cell list

type e7_sensor_cell = {
  dropout : float;
  noise : float;
  completion : float;
  migrations : int;
}

val e7_sensor_cells : quick:bool -> e7_sensor_cell list
(** Sensor-robustness sweep on the E3 scenario: how much sample loss and
    noise the adaptation loop tolerates before it stops catching the step. *)

val run_e7 : quick:bool -> unit

type e8_point = {
  state_bytes : float;
  stall_estimate : float;
  adaptive_makespan : float;
  static_makespan : float;
  adaptations : int;
}

val e8_points : quick:bool -> e8_point list
val run_e8 : quick:bool -> unit
