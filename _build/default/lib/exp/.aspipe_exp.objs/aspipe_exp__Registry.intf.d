lib/exp/registry.mli:
