lib/exp/exp_replication.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Aspipe_workload Common Float List Printf String
