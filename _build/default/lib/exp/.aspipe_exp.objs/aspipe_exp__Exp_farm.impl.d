lib/exp/exp_farm.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Common Float Fun List Printf String
