lib/exp/exp_mc.mli:
