lib/exp/exp_scale.mli:
