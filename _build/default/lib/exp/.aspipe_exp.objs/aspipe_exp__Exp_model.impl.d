lib/exp/exp_model.ml: Array Aspipe_core Aspipe_des Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Common List Printf String
