lib/exp/common.mli: Aspipe_core Aspipe_des Aspipe_grid Aspipe_skel
