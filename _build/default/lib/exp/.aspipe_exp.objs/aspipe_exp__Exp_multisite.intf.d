lib/exp/exp_multisite.mli:
