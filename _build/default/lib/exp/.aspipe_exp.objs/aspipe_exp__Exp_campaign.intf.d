lib/exp/exp_campaign.mli:
