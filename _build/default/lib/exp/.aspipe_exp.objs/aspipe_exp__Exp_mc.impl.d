lib/exp/exp_mc.ml: Array Aspipe_model Aspipe_skel Aspipe_util Aspipe_workload Float List Printf Unix
