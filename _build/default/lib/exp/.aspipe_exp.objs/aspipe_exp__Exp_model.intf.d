lib/exp/exp_model.mli:
