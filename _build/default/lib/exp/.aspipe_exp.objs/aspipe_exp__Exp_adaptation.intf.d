lib/exp/exp_adaptation.mli: Aspipe_core
