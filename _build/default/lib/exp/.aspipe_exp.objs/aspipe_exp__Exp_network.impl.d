lib/exp/exp_network.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Common Float List Printf String
