lib/exp/exp_adaptation.ml: Array Aspipe_core Aspipe_grid Aspipe_skel Aspipe_util Common Float List Printf
