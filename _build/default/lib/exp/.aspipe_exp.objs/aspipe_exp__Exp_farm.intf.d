lib/exp/exp_farm.mli:
