lib/exp/exp_policy.mli:
