lib/exp/common.ml: Array Aspipe_core Aspipe_grid Aspipe_skel Aspipe_util Float Fun
