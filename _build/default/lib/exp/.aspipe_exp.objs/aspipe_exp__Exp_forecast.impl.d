lib/exp/exp_forecast.ml: Array Aspipe_util Float List Printf
