lib/exp/exp_ablation.ml: Array Aspipe_core Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Common Float List Printf Unix
