lib/exp/exp_policy.ml: Aspipe_core Aspipe_grid Aspipe_skel Aspipe_util Aspipe_workload Common Float List Printf
