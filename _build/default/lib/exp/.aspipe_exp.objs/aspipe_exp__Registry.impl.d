lib/exp/registry.ml: Exp_ablation Exp_adaptation Exp_campaign Exp_farm Exp_forecast Exp_mc Exp_model Exp_multisite Exp_network Exp_policy Exp_replication Exp_scale List Printf String
