lib/exp/exp_forecast.mli:
