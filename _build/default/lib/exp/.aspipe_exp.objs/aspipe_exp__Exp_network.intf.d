lib/exp/exp_network.mli:
