lib/exp/exp_scale.ml: Array Aspipe_core Aspipe_model Aspipe_skel Aspipe_util Common Float List Printf Unix
