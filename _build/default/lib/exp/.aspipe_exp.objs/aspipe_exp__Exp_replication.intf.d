lib/exp/exp_replication.mli:
