(** E12: the task farm — stage replication — on the simulated grid.

    Part (a), table: dispatch disciplines on a heterogeneous but {e static}
    grid. Round-robin over all workers binds at the slowest node (predicted
    n·min rate), least-loaded approaches the capacity sum, and the model's
    best round-robin {e subset} beats round-robin-over-everything — measured
    against the farm model's predictions.

    Part (b), figure + table: a mid-run availability collapse on one member
    of the deal. The static round-robin farm collapses with it (equal shares
    wait on the slow member); the adaptive farm evicts the degraded worker
    and recovers; least-loaded degrades only gracefully. *)

type dispatch_row = {
  label : string;
  workers : int list;
  predicted : float;
  measured : float;
}

val dispatch_rows : quick:bool -> dispatch_row list

type adapt_result = {
  label : string;
  series : (float * float) array;
  makespan : float;
  reconfigurations : int;
}

val adapt_results : quick:bool -> adapt_result list

val run_e12 : quick:bool -> unit
