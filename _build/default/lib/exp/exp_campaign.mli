(** E11 (table): the end-to-end campaign — four workload shapes on a
    dynamically loaded 4-node grid, five mapping strategies, multiple seeds.
    The headline reproduction claim: the adaptive pattern beats every
    non-clairvoyant baseline on dynamic scenarios and sits within a modest
    factor of the clairvoyant engine. *)

type cell = {
  workload : string;
  strategy : string;
  mean_makespan : float;
  ci95 : float;
  mean_adaptations : float;
}

val cells : quick:bool -> cell list

val adaptive_vs : cells:cell list -> workload:string -> strategy:string -> float
(** mean makespan of [strategy] ÷ mean makespan of ["adaptive"] on a
    workload (> 1 means adaptive wins). *)

val run_e11 : quick:bool -> unit
