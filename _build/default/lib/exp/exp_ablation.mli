(** E13: ablations of two design choices DESIGN.md calls out.

    (a) Buffer capacity. The CTMC's synchronization is bufferless while the
    default simulator queues without bound; the analytic model is the
    saturation bound. Sweeping the simulator's per-stage buffer capacity
    from 1 to unbounded should move measured throughput monotonically from
    near the CTMC's figure toward the analytic bound — evidence that the
    two evaluators bracket reality for the right structural reason.

    (b) CTMC solver. Gauss–Seidel vs uniformized power iteration on chains
    whose rates span increasing orders of magnitude: both give the same
    throughput where power converges at all, but its cost explodes with
    stiffness while Gauss–Seidel stays flat — why it is the default. *)

type buffer_row = {
  capacity : int option;
  simulated : float;
  ctmc : float;  (** constant reference *)
  analytic : float;  (** constant reference *)
}

val buffer_rows : quick:bool -> buffer_row list

type solver_row = {
  stiffness : float;  (** max rate / min rate in the chain *)
  gauss_seidel_ms : float;
  power_ms : float;  (** [nan] when power iteration failed to converge *)
  agree : bool;  (** throughputs within 1e-6 relative (when both converged) *)
}

val solver_rows : quick:bool -> solver_row list

val run_e13 : quick:bool -> unit
