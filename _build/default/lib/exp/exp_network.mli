(** E15 (figure + table): adaptation to {e network} change.

    The complementary story to E3: the processors stay healthy, but every
    inter-node route congests to 10% quality mid-run. For a pipeline with
    real payloads, the spread mapping's stage cycles inflate with the moves;
    the right response is to {e colocate} — trading processor sharing for
    network avoidance — exactly the trade-off the mapping model encodes. The
    static schedule keeps paying the congested links; the adaptive engine,
    fed by the monitor's link-quality forecasts, re-maps onto fewer nodes. *)

type result = {
  label : string;
  series : (float * float) array;
  makespan : float;
  adaptations : int;
  final_mapping : int array;
  final_distinct_nodes : int;
}

val results : quick:bool -> result list
val run_e15 : quick:bool -> unit
