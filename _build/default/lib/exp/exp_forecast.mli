(** E9 (table): one-step-ahead forecasting accuracy of every primitive
    forecaster and the NWS-style adaptive ensemble across the signal
    families a non-dedicated grid produces. The NWS claim being reproduced:
    the ensemble is never the worst and is at or near the best on every
    family. *)

type row = { signal : string; per_forecaster : (string * float) list (** MAE *) }

val signal_families : quick:bool -> (string * float array) list
(** Named synthetic availability traces. Deterministic. *)

val rows : quick:bool -> row list
val ensemble_regret : row -> float
(** MAE(adaptive) − min MAE over primitives, for one signal. *)

val run_e9 : quick:bool -> unit
