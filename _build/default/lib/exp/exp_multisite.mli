(** E16 (figure): when does a faster remote site pay?

    Three local nodes plus a two-node remote site that is [r×] faster but
    behind a 150 ms, 2 MB/s wide-area link. Sweeping [r], the best mapping
    confined to the local site is constant, while the unconstrained best
    eventually jumps across the WAN — the classic grid offload crossover.
    The model picks each mapping; the simulator measures it. *)

type point = {
  remote_speed : float;
  local_only : float;  (** simulated items/s, best local-only mapping *)
  unconstrained : float;  (** simulated items/s, best overall mapping *)
  uses_remote : bool;
}

val points : quick:bool -> point list
val run_e16 : quick:bool -> unit
