(** The experiment index: every reconstructed table and figure, addressable
    by id, runnable from the CLI and from [bench/main.exe]. *)

type kind = Table | Figure

type t = {
  id : string;
  kind : kind;
  title : string;
  run : quick:bool -> unit;
}

val all : t list
(** E1 … E13 in order. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val run_all : quick:bool -> unit
(** Run every experiment, printing a header per experiment. *)
