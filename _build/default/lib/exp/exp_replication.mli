(** E14 (table + figure): replicating the hot stage inside the pipeline.

    A 4-stage pipeline whose third stage costs 4× the others cannot beat
    [rate/4·work] under any one-node-per-stage mapping; farming that stage
    over k nodes should raise throughput to min(k · rate/4·work, rate/work)
    — saturating when the hot stage stops being the bottleneck. The table
    sweeps the replica count and compares measured against the replication
    model; the greedy {!Aspipe_model.Repl_model.best_replication} gets the
    last row for a fixed node budget. *)

type row = {
  label : string;
  replicas : int list array;
  predicted : float;
  measured : float;
}

val rows : quick:bool -> row list

type dynamic_result = {
  label : string;
  makespan : float;
  reconfigurations : int;
  final_replicas : int list array;
}

val dynamic_results : quick:bool -> dynamic_result list
(** E14b: a node carrying a hot-stage replica collapses mid-run; static
    replication bleeds, adaptive replication re-shapes the sets. *)

val run_e14 : quick:bool -> unit
