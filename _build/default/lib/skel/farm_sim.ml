module Engine = Aspipe_des.Engine
module Server = Aspipe_des.Server
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link
module Trace = Aspipe_grid.Trace

type dispatch = Round_robin | Least_loaded

let pp_dispatch ppf = function
  | Round_robin -> Format.pp_print_string ppf "round-robin"
  | Least_loaded -> Format.pp_print_string ppf "least-loaded"

type t = {
  engine : Engine.t;
  topo : Topology.t;
  trace : Trace.t;
  rng : Rng.t;
  task : Stage.t;
  work_seed : int;
  dispatch : dispatch;
  window : int;  (* demand-driven cap on per-worker outstanding (least-loaded) *)
  input : Stream_spec.t;
  backlog : int Queue.t;  (* arrived items not yet dealt to a worker *)
  mutable worker_set : int list;  (* ascending *)
  outstanding : int array;  (* per node *)
  mutable rr_cursor : int;
  (* Ordered emission: results buffered until all predecessors are out. *)
  delivered : (int, float) Hashtbl.t;
  mutable next_to_emit : int;
  mutable emitted : int;
}

let validate_workers topo workers =
  if workers = [] then invalid_arg "Farm_sim: empty worker set";
  List.iter
    (fun w ->
      if w < 0 || w >= Topology.size topo then invalid_arg "Farm_sim: unknown worker node")
    workers;
  List.sort_uniq compare workers

let workers t = t.worker_set

let outstanding t node =
  if node < 0 || node >= Array.length t.outstanding then invalid_arg "Farm_sim.outstanding";
  t.outstanding.(node)

(* Round-robin deals eagerly (equal shares, the classic deal); least-loaded
   is demand-driven: an item is only dealt when some worker has fewer than
   [window] items outstanding, so shares end up proportional to speed. *)
let pick_worker t =
  match t.dispatch with
  | Round_robin ->
      let n = List.length t.worker_set in
      let w = List.nth t.worker_set (t.rr_cursor mod n) in
      t.rr_cursor <- t.rr_cursor + 1;
      Some w
  | Least_loaded ->
      let best =
        List.fold_left
          (fun best w -> if t.outstanding.(w) < t.outstanding.(best) then w else best)
          (List.hd t.worker_set) (List.tl t.worker_set)
      in
      if t.outstanding.(best) < t.window then Some best else None

(* Emit every contiguous result now available, stamping completions at the
   current instant (the reorder buffer releases them together). *)
let rec emit_ready t =
  match Hashtbl.find_opt t.delivered t.next_to_emit with
  | None -> ()
  | Some _ ->
      Hashtbl.remove t.delivered t.next_to_emit;
      Trace.record_completion t.trace ~item:t.next_to_emit ~time:(Engine.now t.engine);
      t.emitted <- t.emitted + 1;
      t.next_to_emit <- t.next_to_emit + 1;
      emit_ready t

let rec pump_dispatch t =
  if not (Queue.is_empty t.backlog) then begin
    match pick_worker t with
    | None -> () (* every worker is at its window; a return will re-pump *)
    | Some worker ->
        let item = Queue.pop t.backlog in
        dispatch_to t ~item ~worker;
        pump_dispatch t
  end

and dispatch_to t ~item ~worker =
  t.outstanding.(worker) <- t.outstanding.(worker) + 1;
  let node = Topology.node t.topo worker in
  let in_link = Topology.user_link t.topo worker in
  Link.transfer in_link ~bytes:t.input.Stream_spec.item_bytes (fun () ->
      (* Keyed on the item, so worker sets and dispatch orders are compared
         on an identical workload realization. *)
      let keyed = Rng.create (t.work_seed lxor (item * 0x9E3779)) in
      let work = Float.max 0.0 (Variate.sample keyed t.task.Stage.work) in
      let start = ref (Engine.now t.engine) in
      Server.submit (Node.server node) ~work ~tag:item
        ~on_start:(fun () -> start := Engine.now t.engine)
        (fun () ->
          Trace.record_service t.trace
            { Trace.item; stage = 0; node = worker; start = !start; finish = Engine.now t.engine };
          let out_link = Topology.user_link t.topo worker in
          Link.transfer out_link ~bytes:t.task.Stage.output_bytes (fun () ->
              t.outstanding.(worker) <- t.outstanding.(worker) - 1;
              Hashtbl.replace t.delivered item (Engine.now t.engine);
              emit_ready t;
              pump_dispatch t)))

let assign t ~item =
  Queue.push item t.backlog;
  pump_dispatch t

let set_workers t new_workers =
  t.worker_set <- validate_workers t.topo new_workers;
  (* New capacity may unblock a demand-driven backlog immediately. *)
  pump_dispatch t

let create ?(window = 2) ~rng ~topo ~task ~workers ~dispatch ~input ~trace () =
  if window < 1 then invalid_arg "Farm_sim: window must be at least 1";
  let worker_set = validate_workers topo workers in
  let t =
    {
      engine = Topology.engine topo;
      topo;
      trace;
      rng;
      task;
      work_seed = Int64.to_int (Rng.bits64 rng) land max_int;
      dispatch;
      window;
      input;
      backlog = Queue.create ();
      worker_set;
      outstanding = Array.make (Topology.size topo) 0;
      rr_cursor = 0;
      delivered = Hashtbl.create 64;
      next_to_emit = 0;
      emitted = 0;
    }
  in
  let arrivals = Stream_spec.arrival_times input rng in
  Array.iteri
    (fun item time ->
      ignore (Engine.schedule_at t.engine ~time (fun () -> assign t ~item)))
    arrivals;
  t

let items_total t = t.input.Stream_spec.items
let items_completed t = t.emitted
let finished t = t.emitted = items_total t

let run_to_completion ?(max_time = 1e7) t =
  let rec loop () =
    if finished t then ()
    else if Engine.now t.engine > max_time then
      failwith "Farm_sim.run_to_completion: exceeded max_time before draining"
    else if Engine.step t.engine then loop ()
    else if not (finished t) then
      failwith "Farm_sim.run_to_completion: event queue drained with items in flight"
  in
  loop ()

let execute ?(rng = Rng.create 42) ?window ~topo ~task ~workers ~dispatch ~input () =
  let trace = Trace.create () in
  let t = create ?window ~rng ~topo ~task ~workers ~dispatch ~input ~trace () in
  run_to_completion t;
  trace
