(** The task-farm skeleton on shared memory: a pool of worker domains pulls
    independent tasks from a shared index and writes results in place, so the
    output order always matches the input order. Used to parallelize a hot
    pipeline stage (stage replication). *)

val map : workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~workers f xs] applies [f] to every element using [workers] domains
    (1 means: compute in the calling domain). Exceptions raised by [f] are
    re-raised in the caller after all workers stop. *)

val map_array : workers:int -> ('a -> 'b) -> 'a array -> 'b array

val pipeline_stage : workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** Alias of {!map}; named for use as a replicated stage inside a pipeline. *)
