(** The simulation backend of the pipeline skeleton.

    Runs an [Ns]-stage [Pipeline1for1] over a {!Aspipe_grid.Topology.t} under
    a stage→node mapping, producing a {!Aspipe_grid.Trace.t}. Semantics:

    - items enter at the user site and cross the user link to the first
      stage's node; outputs cross the user link back;
    - each stage serves one item at a time, in order; colocated stages share
      their node's FCFS server;
    - a stage's cycle is [(move in).(process).(move out)]: the output move is
      synchronous, so the stage cannot start its next item until the
      downstream transfer is delivered — slow links throttle the stages that
      feed them, as in the skeleton's performance model;
    - {!remap} migrates stages to new nodes mid-run: each moving stage blocks,
      its state (plus queued item payloads) crosses the old→new link, then it
      resumes at the new node. An in-flight service finishes on the old node.

    The executor never looks at ground-truth availability — only the
    simulated clock — so adaptive policies on top of it are honestly
    evaluated against imperfect information. *)

type t

val create :
  ?queue_capacity:int ->
  rng:Aspipe_util.Rng.t ->
  topo:Aspipe_grid.Topology.t ->
  stages:Stage.t array ->
  mapping:int array ->
  input:Stream_spec.t ->
  trace:Aspipe_grid.Trace.t ->
  unit ->
  t
(** Schedules all arrivals; nothing runs until the engine does.
    [queue_capacity] bounds every stage's input buffer (default unbounded):
    a delivery to a full stage parks, holding the upstream sender busy —
    with capacity 1 the pipeline approaches the bufferless synchronization
    of the CTMC model. Raises [Invalid_argument] if the mapping length
    differs from the stage count, names an unknown node, or the capacity
    is below 1. *)

val mapping : t -> int array
(** Current stage→node assignment (updated by completed migrations). *)

val remap : t -> int array -> float
(** [remap t m] starts migrating every stage whose assignment changes and
    returns the total bytes in flight. Items already being serviced finish
    where they are. Re-entrant migrations to a stage already moving are
    rejected with [Invalid_argument]. *)

val migrating : t -> bool

val items_total : t -> int
val items_completed : t -> int
val finished : t -> bool

val run_to_completion : ?max_time:float -> t -> unit
(** Steps the engine until every item has left the pipeline (or [max_time]
    virtual seconds elapse — default [1e7] — which raises [Failure], since a
    finite workload that fails to drain indicates a modelling bug). *)

val execute :
  ?rng:Aspipe_util.Rng.t ->
  ?queue_capacity:int ->
  topo:Aspipe_grid.Topology.t ->
  stages:Stage.t array ->
  mapping:int array ->
  input:Stream_spec.t ->
  unit ->
  Aspipe_grid.Trace.t
(** One-shot static run: create, drain, return the trace. *)
