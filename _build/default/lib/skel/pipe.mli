(** Typed pipelines of OCaml functions — the programming interface of the
    shared-memory backend. A [(‘a, ’b) t] transforms a stream of [’a] into a
    stream of [’b], one output per input ([Pipeline1for1]). *)

type ('a, 'b) t =
  | Last : ('a -> 'b) -> ('a, 'b) t
  | Stage : ('a -> 'c) * ('c, 'b) t -> ('a, 'b) t

val last : ('a -> 'b) -> ('a, 'b) t
(** A single-stage pipeline. *)

val ( @> ) : ('a -> 'c) -> ('c, 'b) t -> ('a, 'b) t
(** [f @> rest] prepends a stage: [f @> g @> last h]. *)

val length : ('a, 'b) t -> int
(** Number of stages. *)

val apply : ('a, 'b) t -> 'a -> 'b
(** Run one item through sequentially — the reference semantics every
    parallel backend must agree with. *)

val fuse_groups : int array -> ('a, 'b) t -> ('a, 'b) t
(** [fuse_groups groups p] composes adjacent stages assigned to the same
    group into one, so the result has one stage per distinct group — the
    shared-memory analogue of mapping several pipeline stages onto one
    processor. [groups] must have length [length p] and be non-decreasing
    (stage colocations are contiguous); raises [Invalid_argument] otherwise. *)
