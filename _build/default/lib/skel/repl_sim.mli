(** Pipelines with replicated stages — a farm nested inside the pipeline.

    Each stage runs on a {e set} of replica nodes instead of exactly one:
    items reaching the stage are dealt to a replica (demand-driven,
    least-loaded), serviced there, and re-sequenced by a per-stage reorder
    buffer before moving downstream, so the next stage still observes the
    input order ([Pipeline1for1] is preserved end to end). Replication is
    how a hot stage stops being the bottleneck without rewriting the
    application.

    Replicated stages use buffered (asynchronous) sends — the reorder buffer
    decouples the sender anyway — unlike the synchronous moves of the
    single-node {!Skel_sim}; single-replica stages therefore behave like a
    slightly more buffered {!Skel_sim} stage. *)

type t

val create :
  ?window:int ->
  rng:Aspipe_util.Rng.t ->
  topo:Aspipe_grid.Topology.t ->
  stages:Stage.t array ->
  replicas:int list array ->
  input:Stream_spec.t ->
  trace:Aspipe_grid.Trace.t ->
  unit ->
  t
(** [replicas.(i)] is stage [i]'s replica node set (non-empty, in range,
    duplicates removed). [window] (default 2) caps each replica's
    outstanding items. Raises [Invalid_argument] on bad inputs. *)

val replicas : t -> int list array
(** Current replica sets, ascending. *)

val set_replicas : t -> int list array -> unit
(** Replace every stage's replica set; takes effect for future deals (items
    already dealt to a removed replica finish there). Raises
    [Invalid_argument] on bad sets. *)

val items_total : t -> int
val items_completed : t -> int
val finished : t -> bool

val run_to_completion : ?max_time:float -> t -> unit

val execute :
  ?rng:Aspipe_util.Rng.t ->
  ?window:int ->
  topo:Aspipe_grid.Topology.t ->
  stages:Stage.t array ->
  replicas:int list array ->
  input:Stream_spec.t ->
  unit ->
  Aspipe_grid.Trace.t
(** One-shot run; the trace records each service on its replica's node. *)
