(** Stage descriptors for the simulated pipeline skeleton.

    A stage is characterized by the work it spends per item (a distribution,
    so heterogeneous and noisy stages are expressible), the bytes it emits
    downstream per item, and the bytes of internal state a migration must
    carry. The eSkel [Pipeline1for1] discipline applies: one output per
    input, inputs processed in order, one at a time. *)

type t = {
  name : string;
  work : Aspipe_util.Variate.spec;  (** work units per item *)
  output_bytes : float;  (** per-item payload sent to the next stage *)
  state_bytes : float;  (** state transferred when the stage migrates *)
}

val make :
  ?name:string ->
  ?output_bytes:float ->
  ?state_bytes:float ->
  work:Aspipe_util.Variate.spec ->
  unit ->
  t
(** Defaults: [output_bytes = 1e5], [state_bytes = 1e6], generated name. *)

val mean_work : t -> float

val balanced :
  ?output_bytes:float -> ?state_bytes:float -> n:int -> work:float -> unit -> t array
(** [n] stages of constant [work] each. *)

val imbalanced :
  ?output_bytes:float ->
  ?state_bytes:float ->
  n:int ->
  work:float ->
  hot_stage:int ->
  factor:float ->
  unit ->
  t array
(** Like {!balanced} but stage [hot_stage] costs [factor × work]. *)

val pp : Format.formatter -> t -> unit
