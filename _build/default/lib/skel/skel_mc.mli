(** The shared-memory execution backend: one OCaml 5 domain per (possibly
    fused) pipeline stage, connected by bounded channels.

    This is the backend used by the real-speedup experiments: the same
    {!Pipe.t} program runs sequentially ({!run_seq}), with one domain per
    stage ({!run}), or with stages fused into processor groups
    ({!run_grouped}) — the shared-memory analogue of the grid mapping. *)

val run_seq : ('a, 'b) Pipe.t -> 'a list -> 'b list
(** Reference semantics, zero parallelism. *)

val run : ?capacity:int -> ('a, 'b) Pipe.t -> 'a list -> 'b list
(** One domain per stage, plus a feeder. Output order equals input order.
    [capacity] bounds each inter-stage channel (default 8). *)

val run_grouped : ?capacity:int -> groups:int array -> ('a, 'b) Pipe.t -> 'a list -> 'b list
(** Fuses stages per {!Pipe.fuse_groups} first, then runs one domain per
    group. *)

val run_timed : ?capacity:int -> ('a, 'b) Pipe.t -> 'a list -> 'b list * float
(** {!run} plus wall-clock seconds (monotonic clock). *)

val run_seq_timed : ('a, 'b) Pipe.t -> 'a list -> 'b list * float
