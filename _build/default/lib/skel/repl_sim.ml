module Engine = Aspipe_des.Engine
module Server = Aspipe_des.Server
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link
module Trace = Aspipe_grid.Trace

(* src_node = -1 encodes the user site. *)
let user_site = -1

type stage_rt = {
  spec : Stage.t;
  index : int;
  mutable replica_set : int list;  (* ascending *)
  outstanding : int array;  (* per topology node *)
  arrived : (int * int) Queue.t;  (* (item, src node), in item order *)
  reorder : (int, int) Hashtbl.t;  (* finished item -> computing node *)
  mutable next_emit : int;
}

type t = {
  engine : Engine.t;
  topo : Topology.t;
  trace : Trace.t;
  window : int;
  stages : stage_rt array;
  work_table : (int * int, float) Hashtbl.t;
  work_seed : int;
  input : Stream_spec.t;
  (* Ordered completion at the sink. *)
  sink_delivered : (int, float) Hashtbl.t;
  mutable sink_next : int;
  mutable completed : int;
}

let validate topo stages replicas =
  if Array.length stages = 0 then invalid_arg "Repl_sim: empty pipeline";
  if Array.length replicas <> Array.length stages then
    invalid_arg "Repl_sim: one replica set per stage required";
  Array.map
    (fun nodes ->
      if nodes = [] then invalid_arg "Repl_sim: empty replica set";
      List.iter
        (fun n ->
          if n < 0 || n >= Topology.size topo then invalid_arg "Repl_sim: unknown replica node")
        nodes;
      List.sort_uniq compare nodes)
    replicas

let work_for t ~item ~stage =
  match Hashtbl.find_opt t.work_table (item, stage) with
  | Some w -> w
  | None ->
      let keyed = Rng.create (t.work_seed lxor (item * 0x9E3779) lxor (stage * 0x85EB51)) in
      let w = Float.max 0.0 (Variate.sample keyed t.stages.(stage).spec.Stage.work) in
      Hashtbl.add t.work_table (item, stage) w;
      w

let transfer_from t ~src ~dst ~bytes k =
  if src = user_site then Link.transfer (Topology.user_link t.topo dst) ~bytes k
  else Link.transfer (Topology.link t.topo ~src ~dst) ~bytes k

(* Ordered completion record at the sink. *)
let rec sink_emit t =
  match Hashtbl.find_opt t.sink_delivered t.sink_next with
  | None -> ()
  | Some _ ->
      Hashtbl.remove t.sink_delivered t.sink_next;
      Trace.record_completion t.trace ~item:t.sink_next ~time:(Engine.now t.engine);
      t.completed <- t.completed + 1;
      t.sink_next <- t.sink_next + 1;
      sink_emit t

let rec pump t si =
  let s = t.stages.(si) in
  if not (Queue.is_empty s.arrived) then begin
    (* Demand-driven least-loaded deal over the current replica set. *)
    let best =
      List.fold_left
        (fun best r -> if s.outstanding.(r) < s.outstanding.(best) then r else best)
        (List.hd s.replica_set) (List.tl s.replica_set)
    in
    if s.outstanding.(best) < t.window then begin
      let item, src = Queue.pop s.arrived in
      let replica = best in
      s.outstanding.(replica) <- s.outstanding.(replica) + 1;
      let bytes =
        if si = 0 then t.input.Stream_spec.item_bytes
        else t.stages.(si - 1).spec.Stage.output_bytes
      in
      transfer_from t ~src ~dst:replica ~bytes (fun () ->
          let node = Topology.node t.topo replica in
          let start = ref (Engine.now t.engine) in
          Server.submit (Node.server node) ~work:(work_for t ~item ~stage:si) ~tag:item
            ~on_start:(fun () -> start := Engine.now t.engine)
            (fun () ->
              Trace.record_service t.trace
                {
                  Trace.item;
                  stage = si;
                  node = replica;
                  start = !start;
                  finish = Engine.now t.engine;
                };
              s.outstanding.(replica) <- s.outstanding.(replica) - 1;
              Hashtbl.replace s.reorder item replica;
              emit t si;
              pump t si));
      pump t si
    end
  end

(* Re-sequence: forward every contiguous finished item downstream (or to the
   sink), preserving the input order for the next stage. *)
and emit t si =
  let s = t.stages.(si) in
  match Hashtbl.find_opt s.reorder s.next_emit with
  | None -> ()
  | Some node ->
      Hashtbl.remove s.reorder s.next_emit;
      let item = s.next_emit in
      s.next_emit <- s.next_emit + 1;
      let ns = Array.length t.stages in
      if si = ns - 1 then
        Link.transfer (Topology.user_link t.topo node) ~bytes:s.spec.Stage.output_bytes
          (fun () ->
            Hashtbl.replace t.sink_delivered item (Engine.now t.engine);
            sink_emit t)
      else begin
        Queue.push (item, node) t.stages.(si + 1).arrived;
        pump t (si + 1)
      end;
      emit t si

let create ?(window = 2) ~rng ~topo ~stages ~replicas ~input ~trace () =
  if window < 1 then invalid_arg "Repl_sim: window must be at least 1";
  let replica_sets = validate topo stages replicas in
  let t =
    {
      engine = Topology.engine topo;
      topo;
      trace;
      window;
      stages =
        Array.mapi
          (fun index spec ->
            {
              spec;
              index;
              replica_set = replica_sets.(index);
              outstanding = Array.make (Topology.size topo) 0;
              arrived = Queue.create ();
              reorder = Hashtbl.create 32;
              next_emit = 0;
            })
          stages;
      work_table = Hashtbl.create 1024;
      work_seed = Int64.to_int (Rng.bits64 rng) land max_int;
      input;
      sink_delivered = Hashtbl.create 32;
      sink_next = 0;
      completed = 0;
    }
  in
  let arrivals = Stream_spec.arrival_times input rng in
  Array.iteri
    (fun item time ->
      ignore
        (Engine.schedule_at t.engine ~time (fun () ->
             Queue.push (item, user_site) t.stages.(0).arrived;
             pump t 0)))
    arrivals;
  t

let replicas t = Array.map (fun s -> s.replica_set) t.stages

let set_replicas t new_replicas =
  let sets = validate t.topo (Array.map (fun s -> s.spec) t.stages) new_replicas in
  Array.iteri (fun i s -> s.replica_set <- sets.(i)) t.stages;
  (* Fresh capacity may unblock backlogs immediately. *)
  Array.iteri (fun i _ -> pump t i) t.stages

let items_total t = t.input.Stream_spec.items
let items_completed t = t.completed
let finished t = t.completed = items_total t

let run_to_completion ?(max_time = 1e7) t =
  let rec loop () =
    if finished t then ()
    else if Engine.now t.engine > max_time then
      failwith "Repl_sim.run_to_completion: exceeded max_time before draining"
    else if Engine.step t.engine then loop ()
    else if not (finished t) then
      failwith "Repl_sim.run_to_completion: event queue drained with items in flight"
  in
  loop ()

let execute ?(rng = Rng.create 42) ?window ~topo ~stages ~replicas ~input () =
  let trace = Trace.create () in
  let t = create ?window ~rng ~topo ~stages ~replicas ~input ~trace () in
  run_to_completion t;
  trace
