let map_array ~workers f xs =
  if workers <= 0 then invalid_arg "Farm_mc: workers must be positive";
  let n = Array.length xs in
  if n = 0 then [||]
  else if workers = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (match f xs.(i) with
          | y -> results.(i) <- Some y
          | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (min workers n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some y -> y | None -> assert false) results
  end

let map ~workers f xs = Array.to_list (map_array ~workers f (Array.of_list xs))

let pipeline_stage = map
