let run_seq pipe inputs = List.map (Pipe.apply pipe) inputs

(* Pump every element of [cin] through [f] into [cout], then propagate the
   close downstream so the chain shuts down stage by stage. *)
let pump f cin cout =
  let rec loop () =
    match Chan.recv cin with
    | None -> Chan.close cout
    | Some x ->
        Chan.send cout (f x);
        loop ()
  in
  loop ()

type packed_domain = Packed : 'a Domain.t -> packed_domain

let run ?(capacity = 8) pipe inputs =
  let cin = Chan.create ~capacity in
  let rec build : type a b. (a, b) Pipe.t -> a Chan.t -> packed_domain list -> packed_domain list * b Chan.t =
   fun p cin domains ->
    match p with
    | Pipe.Last f ->
        let cout = Chan.create ~capacity in
        let d = Domain.spawn (fun () -> pump f cin cout) in
        (Packed d :: domains, cout)
    | Pipe.Stage (f, rest) ->
        let cmid = Chan.create ~capacity in
        let d = Domain.spawn (fun () -> pump f cin cmid) in
        build rest cmid (Packed d :: domains)
  in
  let domains, cout = build pipe cin [] in
  let feeder =
    Domain.spawn (fun () ->
        List.iter (Chan.send cin) inputs;
        Chan.close cin)
  in
  let rec drain acc =
    match Chan.recv cout with None -> List.rev acc | Some y -> drain (y :: acc)
  in
  let outputs = drain [] in
  Domain.join feeder;
  List.iter (fun (Packed d) -> ignore (Domain.join d)) domains;
  outputs

let run_grouped ?capacity ~groups pipe inputs = run ?capacity (Pipe.fuse_groups groups pipe) inputs

let now_seconds () = Unix.gettimeofday ()

let run_timed ?capacity pipe inputs =
  let t0 = now_seconds () in
  let outputs = run ?capacity pipe inputs in
  (outputs, now_seconds () -. t0)

let run_seq_timed pipe inputs =
  let t0 = now_seconds () in
  let outputs = run_seq pipe inputs in
  (outputs, now_seconds () -. t0)
