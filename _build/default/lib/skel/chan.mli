(** Bounded blocking channels for inter-domain pipelines.

    A multi-producer multi-consumer FIFO with a capacity bound (back
    pressure: senders block when full) and a close protocol: after [close],
    senders raise {!Closed} and receivers drain the remaining elements then
    get [None]. This is the shared-memory analogue of the grid's inter-stage
    links. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val send : 'a t -> 'a -> unit
(** Blocks while full. Raises {!Closed} if the channel was closed. *)

val recv : 'a t -> 'a option
(** Blocks while empty and open; [None] once closed and drained. *)

val try_recv : 'a t -> 'a option
(** Non-blocking; [None] when currently empty (even if open). *)

val close : 'a t -> unit
(** Idempotent. Wakes all blocked parties. *)

val is_closed : 'a t -> bool
val length : 'a t -> int
