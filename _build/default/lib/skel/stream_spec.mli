(** Input-stream specifications: how many items enter the pipeline, when,
    and how large each item's payload is on the user link. *)

type arrival =
  | Immediate  (** the whole input set is available at t = 0 *)
  | Spaced of float  (** one item every [interval] seconds *)
  | Poisson of float  (** exponential inter-arrivals with the given rate *)

type t = { items : int; arrival : arrival; item_bytes : float }

val make : ?arrival:arrival -> ?item_bytes:float -> items:int -> unit -> t
(** Defaults: [Immediate] arrivals, [1e5] bytes per item. *)

val arrival_times : t -> Aspipe_util.Rng.t -> float array
(** Materialize the arrival instants, length [items], non-decreasing. *)

val pp : Format.formatter -> t -> unit
