(** The task-farm skeleton on the simulated grid — the stage-replication
    counterpart of {!Skel_sim}.

    One task (a {!Stage.t}) is replicated over a set of worker nodes. Items
    arrive at the user site, are assigned to a worker by the dispatch policy,
    cross the user link, queue at the worker's node server, and their results
    cross back. The farm is an {e ordered} farm: results are emitted in input
    order (a reorder buffer holds early finishers).

    The worker set can change mid-run ({!set_workers}) — the adaptive farm
    engine uses this to evict workers whose availability collapsed and to
    re-admit them later. Removing a worker never loses items: its in-flight
    and queued items finish where they are; only new assignments stop. *)

type dispatch =
  | Round_robin  (** equal shares in arrival order — eSkel's default deal *)
  | Least_loaded  (** assign to the worker with the fewest outstanding items *)

val pp_dispatch : Format.formatter -> dispatch -> unit

type t

val create :
  ?window:int ->
  rng:Aspipe_util.Rng.t ->
  topo:Aspipe_grid.Topology.t ->
  task:Stage.t ->
  workers:int list ->
  dispatch:dispatch ->
  input:Stream_spec.t ->
  trace:Aspipe_grid.Trace.t ->
  unit ->
  t
(** Raises [Invalid_argument] on an empty or out-of-range worker list or a
    [window < 1]. [window] (default 2) caps each worker's outstanding items
    under [Least_loaded] dispatch — the demand-driven deal; [Round_robin]
    deals eagerly and ignores it. Arrivals are scheduled immediately;
    nothing runs until the engine does. Each item's service is recorded in
    the trace as stage 0 on its worker's node; completions are recorded at
    ordered emission time. *)

val workers : t -> int list
(** Current worker set, ascending. *)

val set_workers : t -> int list -> unit
(** Replace the worker set; takes effect for future assignments. *)

val outstanding : t -> int -> int
(** Items assigned to worker [node] and not yet delivered back. *)

val items_total : t -> int
val items_completed : t -> int
(** Items {e emitted} (in order). *)

val finished : t -> bool

val run_to_completion : ?max_time:float -> t -> unit
(** As {!Skel_sim.run_to_completion}. *)

val execute :
  ?rng:Aspipe_util.Rng.t ->
  ?window:int ->
  topo:Aspipe_grid.Topology.t ->
  task:Stage.t ->
  workers:int list ->
  dispatch:dispatch ->
  input:Stream_spec.t ->
  unit ->
  Aspipe_grid.Trace.t
(** One-shot static run. *)
