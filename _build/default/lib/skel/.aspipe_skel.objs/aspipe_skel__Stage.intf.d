lib/skel/stage.mli: Aspipe_util Format
