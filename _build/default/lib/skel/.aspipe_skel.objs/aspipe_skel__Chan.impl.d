lib/skel/chan.ml: Condition Mutex Queue
