lib/skel/skel_mc.ml: Chan Domain List Pipe Unix
