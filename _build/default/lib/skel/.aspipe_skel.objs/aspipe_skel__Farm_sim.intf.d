lib/skel/farm_sim.mli: Aspipe_grid Aspipe_util Format Stage Stream_spec
