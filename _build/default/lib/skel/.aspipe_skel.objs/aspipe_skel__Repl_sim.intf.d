lib/skel/repl_sim.mli: Aspipe_grid Aspipe_util Stage Stream_spec
