lib/skel/pipe.mli:
