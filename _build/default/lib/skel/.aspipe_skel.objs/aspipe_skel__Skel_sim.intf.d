lib/skel/skel_sim.mli: Aspipe_grid Aspipe_util Stage Stream_spec
