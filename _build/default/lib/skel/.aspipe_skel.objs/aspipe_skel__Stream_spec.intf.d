lib/skel/stream_spec.mli: Aspipe_util Format
