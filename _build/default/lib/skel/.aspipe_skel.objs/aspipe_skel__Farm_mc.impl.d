lib/skel/farm_mc.ml: Array Atomic Domain List
