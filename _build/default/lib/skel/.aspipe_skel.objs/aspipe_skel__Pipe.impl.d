lib/skel/pipe.ml: Array
