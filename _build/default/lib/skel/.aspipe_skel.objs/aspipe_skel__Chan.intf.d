lib/skel/chan.mli:
