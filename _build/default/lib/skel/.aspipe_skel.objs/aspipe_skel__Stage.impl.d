lib/skel/stage.ml: Array Aspipe_util Format Printf
