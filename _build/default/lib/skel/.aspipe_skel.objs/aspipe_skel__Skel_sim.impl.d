lib/skel/skel_sim.ml: Array Aspipe_des Aspipe_grid Aspipe_util Float Hashtbl Int64 Queue Stage Stream_spec
