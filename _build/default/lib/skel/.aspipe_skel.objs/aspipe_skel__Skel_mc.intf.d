lib/skel/skel_mc.mli: Pipe
