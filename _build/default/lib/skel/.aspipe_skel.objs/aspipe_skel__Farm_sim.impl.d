lib/skel/farm_sim.ml: Array Aspipe_des Aspipe_grid Aspipe_util Float Format Hashtbl Int64 List Queue Stage Stream_spec
