lib/skel/repl_sim.ml: Array Aspipe_des Aspipe_grid Aspipe_util Float Hashtbl Int64 List Queue Stage Stream_spec
