lib/skel/stream_spec.ml: Array Aspipe_util Float Format Printf
