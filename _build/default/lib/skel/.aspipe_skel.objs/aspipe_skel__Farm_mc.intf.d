lib/skel/farm_mc.mli:
