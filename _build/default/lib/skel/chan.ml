exception Closed

type 'a t = {
  capacity : int;
  queue : 'a Queue.t;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Chan.create: capacity must be positive";
  {
    capacity;
    queue = Queue.create ();
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
  }

let send t x =
  Mutex.lock t.mutex;
  let rec wait () =
    if t.closed then begin
      Mutex.unlock t.mutex;
      raise Closed
    end
    else if Queue.length t.queue >= t.capacity then begin
      Condition.wait t.not_full t.mutex;
      wait ()
    end
  in
  wait ();
  Queue.push x t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let x = Queue.pop t.queue in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      Some x
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.not_empty t.mutex;
      wait ()
    end
  in
  wait ()

let try_recv t =
  Mutex.lock t.mutex;
  let result =
    if Queue.is_empty t.queue then None
    else begin
      let x = Queue.pop t.queue in
      Condition.signal t.not_full;
      Some x
    end
  in
  Mutex.unlock t.mutex;
  result

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n
