module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Farm_sim = Aspipe_skel.Farm_sim
module Farm_model = Aspipe_model.Farm_model

let log_src = Logs.Src.create "aspipe.farm" ~doc:"Adaptive farm engine"

module Log = (val Logs.src_log log_src)

type config = {
  dispatch : Farm_sim.dispatch;
  monitor_every : float;
  evaluate_every : float;
  sensor : Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  min_gain : float;
  adapt : bool;
}

let default_config =
  {
    dispatch = Farm_sim.Round_robin;
    monitor_every = 5.0;
    evaluate_every = 10.0;
    sensor = Monitor.default_sensor;
    probes = 5;
    measurement_noise = 0.01;
    min_gain = 0.1;
    adapt = true;
  }

type report = {
  scenario_name : string;
  trace : Trace.t;
  initial_workers : int list;
  final_workers : int list;
  worker_history : (float * int list) list;
  makespan : float;
  throughput : float;
  reconfigurations : int;
  monitor_samples : int;
}

let run ?(config = default_config) ~scenario ~seed () =
  if Scenario.stage_count scenario <> 1 then
    invalid_arg "Adaptive_farm.run: the scenario must have exactly one (farmed) stage";
  let root_rng = Rng.create seed in
  let env_rng = Rng.split root_rng in
  let calib_rng = Rng.split root_rng in
  let sim_rng = Rng.split root_rng in
  let monitor_rng = Rng.split root_rng in
  let topo = Scenario.build scenario ~rng:env_rng in
  let engine = Topology.engine topo in
  let task = scenario.Scenario.stages.(0) in
  let all_nodes = List.init (Topology.size topo) Fun.id in

  let calibration =
    Calibration.run ~probes:config.probes ~measurement_noise:config.measurement_noise
      ~rng:calib_rng scenario.Scenario.stages
  in
  let work = (Calibration.work_vector calibration).(0) in
  let monitor =
    Monitor.create ~sensor:config.sensor ~rng:monitor_rng ~every:config.monitor_every
      ~horizon:scenario.Scenario.horizon topo
  in
  let model_from availability =
    Farm_model.make ~work
      ~node_rates:
        (Array.init (Topology.size topo) (fun i ->
             Node.base_speed (Topology.node topo i) *. availability i))
  in
  let initial_model =
    model_from (fun i -> Node.availability (Topology.node topo i))
  in
  let initial_workers, initial_score =
    match config.dispatch with
    | Farm_sim.Round_robin -> Farm_model.best_round_robin_set initial_model ~candidates:all_nodes
    | Farm_sim.Least_loaded ->
        (all_nodes, Farm_model.proportional_throughput initial_model ~workers:all_nodes)
  in
  let trace = Trace.create () in
  let farm =
    Farm_sim.create ~rng:sim_rng ~topo ~task ~workers:initial_workers ~dispatch:config.dispatch
      ~input:scenario.Scenario.input ~trace ()
  in
  let adopted_score = ref initial_score in
  let history = ref [] in
  let reconfigurations = ref 0 in
  if config.adapt then
    Engine.periodic engine ~every:config.evaluate_every (fun () ->
        if Farm_sim.finished farm then false
        else begin
          let model = model_from (Monitor.node_forecast monitor) in
          let current = Farm_sim.workers farm in
          let candidate, score =
            match config.dispatch with
            | Farm_sim.Round_robin -> Farm_model.best_round_robin_set model ~candidates:all_nodes
            | Farm_sim.Least_loaded ->
                (all_nodes, Farm_model.proportional_throughput model ~workers:all_nodes)
          in
          let current_score =
            match config.dispatch with
            | Farm_sim.Round_robin -> Farm_model.round_robin_throughput model ~workers:current
            | Farm_sim.Least_loaded -> Farm_model.proportional_throughput model ~workers:current
          in
          if candidate <> current && score > current_score *. (1.0 +. config.min_gain) then begin
            Farm_sim.set_workers farm candidate;
            incr reconfigurations;
            history := (Engine.now engine, candidate) :: !history;
            adopted_score := score;
            Log.info (fun m ->
                m "[%s] t=%.1f worker set {%s} -> {%s} (predicted %.2f -> %.2f items/s)"
                  scenario.Scenario.name (Engine.now engine)
                  (String.concat "," (List.map string_of_int current))
                  (String.concat "," (List.map string_of_int candidate))
                  current_score score)
          end;
          true
        end);
  Farm_sim.run_to_completion farm;
  {
    scenario_name = scenario.Scenario.name;
    trace;
    initial_workers;
    final_workers = Farm_sim.workers farm;
    worker_history = List.rev !history;
    makespan = Trace.makespan trace;
    throughput = Trace.throughput trace;
    reconfigurations = !reconfigurations;
    monitor_samples = Monitor.samples_taken monitor;
  }

let pp_workers ppf ws =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int ws))

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>farm on %s: workers %a -> %a@ makespan %.2f s, throughput %.4f items/s, %d \
     reconfiguration(s)@]"
    r.scenario_name pp_workers r.initial_workers pp_workers r.final_workers r.makespan
    r.throughput r.reconfigurations
