module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Repl_sim = Aspipe_skel.Repl_sim
module Costspec = Aspipe_model.Costspec
module Repl_model = Aspipe_model.Repl_model

let log_src = Logs.Src.create "aspipe.repl" ~doc:"Adaptive replication engine"

module Log = (val Logs.src_log log_src)

type config = {
  monitor_every : float;
  evaluate_every : float;
  sensor : Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  min_gain : float;
  budget : int option;
  adapt : bool;
}

let default_config =
  {
    monitor_every = 5.0;
    evaluate_every = 10.0;
    sensor = Monitor.default_sensor;
    probes = 5;
    measurement_noise = 0.01;
    min_gain = 0.1;
    budget = None;
    adapt = true;
  }

type report = {
  scenario_name : string;
  trace : Trace.t;
  initial_replicas : int list array;
  final_replicas : int list array;
  makespan : float;
  throughput : float;
  reconfigurations : int;
  monitor_samples : int;
}

let run ?(config = default_config) ~scenario ~seed () =
  let root_rng = Rng.create seed in
  let env_rng = Rng.split root_rng in
  let calib_rng = Rng.split root_rng in
  let sim_rng = Rng.split root_rng in
  let monitor_rng = Rng.split root_rng in
  let topo = Scenario.build scenario ~rng:env_rng in
  let engine = Topology.engine topo in
  let stages = scenario.Scenario.stages in
  let processors = Topology.size topo in
  if processors < Array.length stages then
    invalid_arg "Adaptive_repl.run: need at least one node per stage";
  let budget = match config.budget with Some b -> b | None -> processors in

  let calibration =
    Calibration.run ~probes:config.probes ~measurement_noise:config.measurement_noise
      ~rng:calib_rng stages
  in
  let monitor =
    Monitor.create ~sensor:config.sensor ~rng:monitor_rng ~every:config.monitor_every
      ~horizon:scenario.Scenario.horizon topo
  in
  let spec_from availability =
    Costspec.with_stage_work
      (Costspec.of_topology ~availability ~topo ~stages ~input:scenario.Scenario.input ())
      (Calibration.work_vector calibration)
  in
  let initial_spec = spec_from (fun i -> Node.availability (Topology.node topo i)) in
  let initial_replicas, initial_score =
    Repl_model.best_replication initial_spec ~budget ~processors
  in
  let trace = Trace.create () in
  let sim =
    Repl_sim.create ~rng:sim_rng ~topo ~stages ~replicas:initial_replicas
      ~input:scenario.Scenario.input ~trace ()
  in
  let adopted = ref initial_score in
  let reconfigurations = ref 0 in
  if config.adapt then
    Engine.periodic engine ~every:config.evaluate_every (fun () ->
        if Repl_sim.finished sim then false
        else begin
          let spec = spec_from (Monitor.node_forecast monitor) in
          let candidate, score = Repl_model.best_replication spec ~budget ~processors in
          let current = Repl_sim.replicas sim in
          let current_score = Repl_model.throughput spec ~replicas:current in
          if candidate <> current && score > current_score *. (1.0 +. config.min_gain) then begin
            Repl_sim.set_replicas sim candidate;
            incr reconfigurations;
            adopted := score;
            Log.info (fun m ->
                m "[%s] t=%.1f replica sets re-shaped (predicted %.2f -> %.2f items/s)"
                  scenario.Scenario.name (Engine.now engine) current_score score);
            Trace.record_adaptation trace
              {
                Trace.at = Engine.now engine;
                mapping_before = Array.map List.length current;
                mapping_after = Array.map List.length candidate;
                predicted_gain = score -. current_score;
                migration_cost = 0.0;
              }
          end;
          true
        end);
  Repl_sim.run_to_completion sim;
  {
    scenario_name = scenario.Scenario.name;
    trace;
    initial_replicas;
    final_replicas = Repl_sim.replicas sim;
    makespan = Trace.makespan trace;
    throughput = Trace.throughput trace;
    reconfigurations = !reconfigurations;
    monitor_samples = Monitor.samples_taken monitor;
  }

let pp_sets ppf sets =
  Array.iter
    (fun ns -> Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int ns)))
    sets

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>replicated pipeline on %s: %a -> %a@ makespan %.2f s, throughput %.4f items/s, %d \
     reconfiguration(s)@]"
    r.scenario_name pp_sets r.initial_replicas pp_sets r.final_replicas r.makespan r.throughput
    r.reconfigurations
