(** The migration cost model: what moving from one mapping to another costs
    in pipeline stall time. Stages migrate concurrently over distinct links,
    so the stall is the slowest individual move; each moving stage pays its
    state transfer plus a fixed restart penalty. The adaptation policies use
    this to refuse migrations that would not amortize. *)

type t = { restart_penalty : float  (** seconds per migrating stage *) }

val default : t
(** 0.5 s restart penalty. *)

val stages_moving :
  current:Aspipe_model.Mapping.t -> target:Aspipe_model.Mapping.t -> int list
(** Indices whose processor changes. Raises [Invalid_argument] on length
    mismatch. *)

val stall_seconds :
  t ->
  spec:Aspipe_model.Costspec.t ->
  stages:Aspipe_skel.Stage.t array ->
  current:Aspipe_model.Mapping.t ->
  target:Aspipe_model.Mapping.t ->
  float
(** Estimated stall: max over moving stages of
    [link_transfer(state_bytes) + restart_penalty]; 0 when the mappings are
    equal. *)

val bytes_moving :
  stages:Aspipe_skel.Stage.t array ->
  current:Aspipe_model.Mapping.t ->
  target:Aspipe_model.Mapping.t ->
  float
(** Total state bytes that would cross the network. *)
