(** The comparison points every adaptive-pattern experiment needs.

    All baselines run in a world rebuilt from the same [(scenario, seed)]
    pair the adaptive run used — identical load events, identical per-item
    work draws — so differences in outcome are attributable to the mapping
    strategy alone. *)

type outcome = {
  label : string;
  mapping : Aspipe_model.Mapping.t;  (** the static assignment used *)
  trace : Aspipe_grid.Trace.t;
  makespan : float;
  throughput : float;
}

val run_static :
  label:string -> mapping:int array -> scenario:Scenario.t -> seed:int -> outcome
(** Execute the pipeline with a fixed mapping, no adaptation. *)

val static_round_robin : scenario:Scenario.t -> seed:int -> outcome
val static_blocks : scenario:Scenario.t -> seed:int -> outcome
val static_single_node : scenario:Scenario.t -> seed:int -> outcome
(** Everything on node 0. *)

val static_random : scenario:Scenario.t -> seed:int -> outcome
(** A uniformly random assignment (derived from [seed]). *)

val static_model_best :
  ?kind:Aspipe_model.Predictor.kind -> scenario:Scenario.t -> seed:int -> unit -> outcome
(** The mapping the performance model picks from ground truth at t = 0 and
    true stage means — the best non-clairvoyant static schedule available. *)

val oracle_static :
  ?limit:int ->
  ?fix_first_on:int ->
  scenario:Scenario.t ->
  seed:int ->
  unit ->
  outcome * (int array * float) list
(** Simulate {e every} mapping of the (bounded) assignment space in the
    identical world and return the one with the smallest makespan, plus all
    per-mapping makespans. [fix_first_on] pins stage 0's processor (use it
    when the input data's location is fixed, as in the paper's tables).
    Raises [Invalid_argument] if the space exceeds [limit] (default 4096)
    candidates. This is the true static optimum. *)

val clairvoyant : scenario:Scenario.t -> seed:int -> Adaptive.report
(** The adaptive engine with perfect sensors, dense monitoring, noise-free
    calibration and an eager policy — the practical upper bound on what
    adaptation can deliver. *)
