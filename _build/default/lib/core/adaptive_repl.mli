(** Adaptive stage replication: the pipeline with farmed stages, re-shaping
    its replica sets at run time.

    Where {!Adaptive} moves whole stages between processors, this engine
    treats every stage as a (possibly singleton) farm and periodically
    re-derives the best replica allocation for a fixed node budget from the
    monitors' forecasts ({!Aspipe_model.Repl_model.best_replication} over
    forecast-scaled rates). If a replica node degrades, the next allocation
    routes around it; if it recovers, it is re-admitted. Replica changes are
    cheap (the deal is demand-driven and stateless), so the gain threshold is
    the only brake. *)

type config = {
  monitor_every : float;
  evaluate_every : float;
  sensor : Aspipe_grid.Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  min_gain : float;
  budget : int option;  (** replica budget; default = number of nodes *)
  adapt : bool;
}

val default_config : config

type report = {
  scenario_name : string;
  trace : Aspipe_grid.Trace.t;
  initial_replicas : int list array;
  final_replicas : int list array;
  makespan : float;
  throughput : float;
  reconfigurations : int;
  monitor_samples : int;
}

val run : ?config:config -> scenario:Scenario.t -> seed:int -> unit -> report
(** Requires at least as many nodes as stages (each stage needs one replica).
    Deterministic in [(scenario, config, seed)]. *)

val pp_report : Format.formatter -> report -> unit
