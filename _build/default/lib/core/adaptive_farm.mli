(** The adaptive task farm: stage replication with a run-time-managed worker
    set — the replication counterpart of {!Adaptive}.

    A round-robin deal is only as fast as its slowest member, so on a
    non-dedicated grid the right worker set changes with the background load:
    when a node degrades, evicting it {e raises} farm throughput; when it
    recovers, re-admitting it raises it again. The engine calibrates the
    task, reads the monitors, and periodically re-selects the
    {!Aspipe_model.Farm_model.best_round_robin_set} under current forecasts,
    reconfiguring the live farm when the predicted gain clears [min_gain]. *)

type config = {
  dispatch : Aspipe_skel.Farm_sim.dispatch;
  monitor_every : float;
  evaluate_every : float;
  sensor : Aspipe_grid.Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  min_gain : float;  (** relative predicted-throughput gain to reconfigure *)
  adapt : bool;  (** [false] = static farm with the initial worker set *)
}

val default_config : config
(** round-robin, monitor 5 s / evaluate 10 s, default sensor, 5 probes,
    1% noise, 10% min gain, adaptation on. *)

type report = {
  scenario_name : string;
  trace : Aspipe_grid.Trace.t;
  initial_workers : int list;
  final_workers : int list;
  worker_history : (float * int list) list;  (** reconfigurations, in time order *)
  makespan : float;
  throughput : float;
  reconfigurations : int;
  monitor_samples : int;
}

val run : ?config:config -> scenario:Scenario.t -> seed:int -> unit -> report
(** The scenario must have exactly one stage (the farmed task); raises
    [Invalid_argument] otherwise. Deterministic in [(scenario, config, seed)]. *)

val pp_report : Format.formatter -> report -> unit
