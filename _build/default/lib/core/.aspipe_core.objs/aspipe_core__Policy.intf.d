lib/core/policy.mli: Aspipe_model
