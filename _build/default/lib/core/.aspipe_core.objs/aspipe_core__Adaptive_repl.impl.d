lib/core/adaptive_repl.ml: Array Aspipe_des Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Calibration Format List Logs Scenario String
