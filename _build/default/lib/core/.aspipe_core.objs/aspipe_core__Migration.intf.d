lib/core/migration.mli: Aspipe_model Aspipe_skel
