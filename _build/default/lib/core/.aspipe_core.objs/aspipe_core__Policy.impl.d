lib/core/policy.ml: Aspipe_model Float
