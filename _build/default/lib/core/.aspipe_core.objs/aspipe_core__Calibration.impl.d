lib/core/calibration.ml: Array Aspipe_skel Aspipe_util Float Format
