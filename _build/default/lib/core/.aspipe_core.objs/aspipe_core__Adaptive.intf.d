lib/core/adaptive.mli: Aspipe_grid Aspipe_model Calibration Format Migration Policy Scenario
