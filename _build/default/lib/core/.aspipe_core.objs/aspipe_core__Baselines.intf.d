lib/core/baselines.mli: Adaptive Aspipe_grid Aspipe_model Scenario
