lib/core/adaptive_farm.ml: Array Aspipe_des Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Calibration Format Fun List Logs Scenario String
