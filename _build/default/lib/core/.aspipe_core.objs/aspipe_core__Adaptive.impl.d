lib/core/adaptive.ml: Aspipe_des Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Calibration Float Format Logs Migration Policy Scenario
