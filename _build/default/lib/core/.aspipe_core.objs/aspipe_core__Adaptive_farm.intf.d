lib/core/adaptive_farm.mli: Aspipe_grid Aspipe_skel Format Scenario
