lib/core/migration.ml: Array Aspipe_model Aspipe_skel Float Fun List
