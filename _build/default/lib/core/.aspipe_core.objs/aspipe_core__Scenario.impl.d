lib/core/scenario.ml: Array Aspipe_des Aspipe_grid Aspipe_skel Aspipe_util List
