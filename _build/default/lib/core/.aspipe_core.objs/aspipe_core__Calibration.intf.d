lib/core/calibration.mli: Aspipe_skel Aspipe_util Format
