lib/core/baselines.ml: Adaptive Aspipe_grid Aspipe_model Aspipe_skel Aspipe_util Float List Policy Scenario
