lib/core/adaptive_repl.mli: Aspipe_grid Format Scenario
