lib/core/scenario.mli: Aspipe_des Aspipe_grid Aspipe_skel Aspipe_util
