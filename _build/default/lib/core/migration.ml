module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Stage = Aspipe_skel.Stage

type t = { restart_penalty : float }

let default = { restart_penalty = 0.5 }

let stages_moving ~current ~target =
  if Mapping.stages current <> Mapping.stages target then
    invalid_arg "Migration.stages_moving: mapping lengths differ";
  List.filter
    (fun i -> Mapping.processor_of current i <> Mapping.processor_of target i)
    (List.init (Mapping.stages current) Fun.id)

let stall_seconds t ~spec ~stages ~current ~target =
  let moving = stages_moving ~current ~target in
  List.fold_left
    (fun acc i ->
      let src = Mapping.processor_of current i and dst = Mapping.processor_of target i in
      let bytes = stages.(i).Stage.state_bytes in
      let cost = Costspec.transfer_cost spec ~src ~dst ~bytes +. t.restart_penalty in
      Float.max acc cost)
    0.0 moving

let bytes_moving ~stages ~current ~target =
  let moving = stages_moving ~current ~target in
  List.fold_left (fun acc i -> acc +. stages.(i).Stage.state_bytes) 0.0 moving
