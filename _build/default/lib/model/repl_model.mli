(** Performance model of pipelines with replicated stages ({!Aspipe_skel.Repl_sim}).

    A node serving assignments from several stages splits its rate equally
    among them; a stage's capacity is the sum of its replicas' shares divided
    by its work. With demand-driven dealing and asynchronous sends, steady
    throughput is the minimum stage capacity. *)

val node_share : replicas:int list array -> processors:int -> int array
(** How many (stage, replica) assignments each node carries. *)

val stage_capacity : Costspec.t -> replicas:int list array -> int -> float
(** Items/s stage [i] can sustain given everyone's replica sets. *)

val throughput : Costspec.t -> replicas:int list array -> float
(** min over stages of {!stage_capacity}.
    Raises [Invalid_argument] on dimension errors or empty replica sets. *)

val completion_time : Costspec.t -> replicas:int list array -> items:int -> float
(** Rough makespan: one traversal of the empty pipeline plus
    [(items − 1)] bottleneck periods. *)

val best_replication :
  Costspec.t -> budget:int -> processors:int -> int list array * float
(** Greedy replica assignment: every stage starts with one replica on its
    own processor (round-robin, error if [processors < stages]); the
    remaining [budget − Ns] replicas go one at a time to the current
    bottleneck stage, each on the least-loaded node. Returns the sets and
    the predicted throughput. *)
