type t = { work : float; node_rates : float array }

let make ~work ~node_rates =
  if work <= 0.0 then invalid_arg "Farm_model.make: work must be positive";
  Array.iter (fun r -> if r < 0.0 then invalid_arg "Farm_model.make: negative rate") node_rates;
  { work; node_rates = Array.copy node_rates }

let worker_rate t w =
  if w < 0 || w >= Array.length t.node_rates then invalid_arg "Farm_model.worker_rate";
  t.node_rates.(w) /. t.work

let round_robin_throughput t ~workers =
  match workers with
  | [] -> 0.0
  | _ ->
      let slowest = List.fold_left (fun acc w -> Float.min acc (worker_rate t w)) infinity workers in
      Float.of_int (List.length workers) *. slowest

let proportional_throughput t ~workers =
  List.fold_left (fun acc w -> acc +. worker_rate t w) 0.0 workers

let best_round_robin_set t ~candidates =
  if candidates = [] then invalid_arg "Farm_model.best_round_robin_set: no candidates";
  (* Sort fastest first (ties by node id for determinism); the best equal-share
     deal is always a prefix of this order. *)
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare (worker_rate t b) (worker_rate t a) with
        | 0 -> compare a b
        | c -> c)
      candidates
  in
  let best_set = ref [ List.hd sorted ] in
  let best_score = ref (worker_rate t (List.hd sorted)) in
  let rec scan k prefix = function
    | [] -> ()
    | w :: rest ->
        let prefix = w :: prefix in
        let score = Float.of_int k *. worker_rate t w in
        if score > !best_score then begin
          best_score := score;
          best_set := prefix
        end;
        scan (k + 1) prefix rest
  in
  scan 2 [ List.hd sorted ] (List.tl sorted);
  (List.sort compare !best_set, !best_score)
