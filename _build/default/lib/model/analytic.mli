(** The fast mapping evaluator: steady-state pipeline throughput by
    bottleneck analysis.

    Two families of stations bound the output rate:

    - every {e processor} serves the total work of the stages mapped to it:
      capacity [node_rate / Σ work];
    - every {e stage cycle} — a stage processes an item and then performs its
      synchronous output move before accepting the next: capacity
      [1 / (shared service time + output transfer time)].

    In steady state a saturated [Pipeline1for1] cannot beat its slowest
    station, and the bound is tight up to queueing noise — experiment E1
    quantifies this against the simulator and the CTMC. O(Ns + Np) per
    evaluation, so mapping search can afford thousands of calls. *)

type bottleneck = Processor of int | Stage_cycle of int

val throughput : Costspec.t -> Mapping.t -> float
(** Predicted items/second. *)

val bottleneck : Costspec.t -> Mapping.t -> bottleneck * float
(** The binding station and its capacity. *)

val stage_cycle_time : Costspec.t -> Mapping.t -> int -> float
(** Shared service time plus output-move time of stage [i]. *)

val fill_latency : Costspec.t -> Mapping.t -> float
(** Time for the first item to traverse an empty pipeline (one service and
    one move per stage, plus the input move, uncontended). *)

val completion_time : Costspec.t -> Mapping.t -> items:int -> float
(** Estimated makespan for a finite input set: fill latency plus
    [(items − 1)] bottleneck periods. *)

val pp_bottleneck : Format.formatter -> bottleneck -> unit
