let node_share ~replicas ~processors =
  let counts = Array.make processors 0 in
  Array.iter
    (fun nodes ->
      List.iter
        (fun n ->
          if n < 0 || n >= processors then invalid_arg "Repl_model: node out of range";
          counts.(n) <- counts.(n) + 1)
        nodes)
    replicas;
  counts

let validate spec replicas =
  if Array.length replicas <> Costspec.stages spec then
    invalid_arg "Repl_model: one replica set per stage required";
  Array.iter (fun nodes -> if nodes = [] then invalid_arg "Repl_model: empty replica set") replicas

let stage_capacity spec ~replicas i =
  validate spec replicas;
  let processors = Costspec.processors spec in
  let counts = node_share ~replicas ~processors in
  let work = spec.Costspec.stage_work.(i) in
  if work <= 0.0 then infinity
  else
    List.fold_left
      (fun acc node ->
        acc +. (spec.Costspec.node_rates.(node) /. Float.of_int counts.(node) /. work))
      0.0 replicas.(i)

let throughput spec ~replicas =
  validate spec replicas;
  let ns = Costspec.stages spec in
  let rec scan i acc =
    if i = ns then acc else scan (i + 1) (Float.min acc (stage_capacity spec ~replicas i))
  in
  scan 0 infinity

let completion_time spec ~replicas ~items =
  if items <= 0 then invalid_arg "Repl_model.completion_time: items must be positive";
  let x = throughput spec ~replicas in
  let ns = Costspec.stages spec in
  (* One traversal: each stage at its fastest replica's share. *)
  let fill =
    List.fold_left
      (fun acc i ->
        let capacity = stage_capacity spec ~replicas i in
        acc +. (if capacity = infinity then 0.0 else 1.0 /. capacity))
      0.0 (List.init ns Fun.id)
  in
  fill +. (Float.of_int (items - 1) /. x)

let best_replication spec ~budget ~processors =
  let ns = Costspec.stages spec in
  if processors < ns then invalid_arg "Repl_model.best_replication: need at least one node per stage";
  if budget < ns then invalid_arg "Repl_model.best_replication: budget below one replica per stage";
  let replicas = Array.init ns (fun i -> [ i mod processors ]) in
  let counts () = node_share ~replicas ~processors in
  for _ = 1 to budget - ns do
    (* Give the bottleneck stage one more replica on the least-loaded node. *)
    let bottleneck = ref 0 in
    for i = 1 to ns - 1 do
      if stage_capacity spec ~replicas i < stage_capacity spec ~replicas !bottleneck then
        bottleneck := i
    done;
    let shares = counts () in
    let target = ref 0 in
    for n = 1 to processors - 1 do
      if shares.(n) < shares.(!target) then target := n
    done;
    replicas.(!bottleneck) <- List.sort_uniq compare (!target :: replicas.(!bottleneck))
  done;
  (Array.copy replicas, throughput spec ~replicas)
