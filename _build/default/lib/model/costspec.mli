(** The performance model's view of the world: per-stage mean work, per-node
    effective rates, and the full network cost matrices. Built either from
    ground truth (model-validation experiments) or from monitor forecasts and
    calibration estimates (what the adaptive engine actually sees). *)

type t = {
  stage_work : float array;  (** mean work units per item, per stage *)
  node_rates : float array;  (** effective work units per second, per node *)
  item_bytes : float;  (** payload of one input item on the user link *)
  output_bytes : float array;  (** per-stage downstream payload *)
  latency : float array array;  (** seconds, \[src\].\[dst\]; diagonal = local *)
  bandwidth : float array array;  (** bytes per second *)
  user_latency : float array;  (** user ↔ node i *)
  user_bandwidth : float array;
}

val processors : t -> int
val stages : t -> int

val validate : t -> unit
(** Raises [Invalid_argument] on dimension mismatches or non-positive rates. *)

val of_topology :
  ?availability:(int -> float) ->
  ?link_quality:(src:int -> dst:int -> float) ->
  ?user_link_quality:(int -> float) ->
  topo:Aspipe_grid.Topology.t ->
  stages:Aspipe_skel.Stage.t array ->
  input:Aspipe_skel.Stream_spec.t ->
  unit ->
  t
(** Snapshot of a live topology. [availability] overrides the per-node
    availability used to derive rates, and [link_quality] /
    [user_link_quality] override the link qualities scaling every latency
    and bandwidth (defaults: current ground truth); pass the corresponding
    [Aspipe_grid.Monitor] forecasts to build the belief-based spec the
    adaptive engine works from. Stage work means come from the stage specs'
    distributions. *)

val with_stage_work : t -> float array -> t
(** Replace the work vector (e.g. with calibrated estimates). *)

val service_rate : t -> Mapping.t -> int -> float
(** [service_rate spec m i] is μ_i: stage [i]'s processing rate (items/s)
    under mapping [m], assuming equitable sharing of the processor among the
    stages mapped to it. *)

val move_rate : t -> Mapping.t -> int -> float
(** [move_rate spec m i] is λ_i for [i] in [0 .. Ns]: rate of the [move_i]
    connection — [i = 0] is user → stage 0's node, [i = Ns] is the last
    node → user, and interior [i] links stage [i-1]'s node to stage [i]'s. *)

val transfer_cost : t -> src:int -> dst:int -> bytes:float -> float
