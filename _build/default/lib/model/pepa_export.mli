(** Export a pipeline performance model as PEPA source text.

    The stochastic-process-algebra formulation is the lingua franca of the
    skeleton-performance literature: stages cycle through
    [(move_i, λ_i).(process_i, μ_i).(move_{i+1}, λ_{i+1})], processors are
    choices over the [process] activities of their stages, the network is a
    choice over all [move] activities, and the whole system is the three-way
    cooperation. This module renders exactly that model for a given cost
    spec and mapping, so any PEPA workbench can cross-check the built-in
    CTMC solver (the rates are the ones {!Ctmc.of_costspec} uses). *)

val pipeline : Costspec.t -> Mapping.t -> string
(** The full PEPA model: stage, processor and network definitions plus the
    system equation and a throughput measure on [process1].
    Activities are 1-indexed, matching the published notation. *)

val rate_table : Costspec.t -> Mapping.t -> (string * float) list
(** The [(name, value)] rate bindings the model references, in definition
    order: [mu1 … muNs] then [lambda1 … lambdaNs+1]. *)
