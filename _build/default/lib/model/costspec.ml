module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec

type t = {
  stage_work : float array;
  node_rates : float array;
  item_bytes : float;
  output_bytes : float array;
  latency : float array array;
  bandwidth : float array array;
  user_latency : float array;
  user_bandwidth : float array;
}

let processors t = Array.length t.node_rates
let stages t = Array.length t.stage_work

let validate t =
  let np = processors t and ns = stages t in
  if ns = 0 || np = 0 then invalid_arg "Costspec: empty dimensions";
  if Array.length t.output_bytes <> ns then invalid_arg "Costspec: output_bytes length";
  let check_matrix name m =
    if Array.length m <> np then invalid_arg ("Costspec: " ^ name ^ " rows");
    Array.iter (fun row -> if Array.length row <> np then invalid_arg ("Costspec: " ^ name ^ " cols")) m
  in
  check_matrix "latency" t.latency;
  check_matrix "bandwidth" t.bandwidth;
  if Array.length t.user_latency <> np || Array.length t.user_bandwidth <> np then
    invalid_arg "Costspec: user link vectors";
  Array.iter (fun r -> if r < 0.0 then invalid_arg "Costspec: negative node rate") t.node_rates;
  Array.iter (fun w -> if w < 0.0 then invalid_arg "Costspec: negative stage work") t.stage_work;
  Array.iter
    (Array.iter (fun b -> if b <= 0.0 then invalid_arg "Costspec: bandwidth must be positive"))
    t.bandwidth;
  Array.iter
    (fun b -> if b <= 0.0 then invalid_arg "Costspec: user bandwidth must be positive")
    t.user_bandwidth

let of_topology ?availability ?link_quality ?user_link_quality ~topo ~stages ~input () =
  let np = Topology.size topo in
  let avail =
    match availability with
    | Some f -> f
    | None -> fun i -> Node.availability (Topology.node topo i)
  in
  let quality =
    match link_quality with
    | Some f -> f
    | None -> fun ~src ~dst -> Link.quality (Topology.link topo ~src ~dst)
  in
  let user_quality =
    match user_link_quality with
    | Some f -> f
    | None -> fun i -> Link.quality (Topology.user_link topo i)
  in
  let clamp q = Float.max 0.01 q in
  let spec =
    {
      stage_work = Array.map Stage.mean_work stages;
      node_rates =
        Array.init np (fun i -> Node.base_speed (Topology.node topo i) *. avail i);
      item_bytes = input.Stream_spec.item_bytes;
      output_bytes = Array.map (fun s -> s.Stage.output_bytes) stages;
      latency =
        Array.init np (fun src ->
            Array.init np (fun dst ->
                Link.latency (Topology.link topo ~src ~dst) /. clamp (quality ~src ~dst)));
      bandwidth =
        Array.init np (fun src ->
            Array.init np (fun dst ->
                Link.bandwidth (Topology.link topo ~src ~dst) *. clamp (quality ~src ~dst)));
      user_latency =
        Array.init np (fun i ->
            Link.latency (Topology.user_link topo i) /. clamp (user_quality i));
      user_bandwidth =
        Array.init np (fun i ->
            Link.bandwidth (Topology.user_link topo i) *. clamp (user_quality i));
    }
  in
  validate spec;
  spec

let with_stage_work t stage_work =
  if Array.length stage_work <> stages t then
    invalid_arg "Costspec.with_stage_work: length mismatch";
  { t with stage_work }

let service_rate t m i =
  let p = Mapping.processor_of m i in
  let sharing = Float.of_int (Mapping.stages_sharing m i) in
  let work = t.stage_work.(i) in
  if work <= 0.0 then infinity else t.node_rates.(p) /. (work *. sharing)

let transfer_cost t ~src ~dst ~bytes = t.latency.(src).(dst) +. (bytes /. t.bandwidth.(src).(dst))

let move_rate t m i =
  let ns = stages t in
  if i < 0 || i > ns then invalid_arg "Costspec.move_rate: index out of range";
  let time =
    if i = 0 then begin
      let p = Mapping.processor_of m 0 in
      t.user_latency.(p) +. (t.item_bytes /. t.user_bandwidth.(p))
    end
    else if i = ns then begin
      let p = Mapping.processor_of m (ns - 1) in
      t.user_latency.(p) +. (t.output_bytes.(ns - 1) /. t.user_bandwidth.(p))
    end
    else begin
      let src = Mapping.processor_of m (i - 1) and dst = Mapping.processor_of m i in
      transfer_cost t ~src ~dst ~bytes:t.output_bytes.(i - 1)
    end
  in
  if time <= 0.0 then infinity else 1.0 /. time
