type t = {
  stages : int;
  states : int;
  service_rates : float array;
  transitions : (int * float) list array;  (* per source state: (target, rate) *)
  outflow : float array;  (* total exit rate per state *)
  transition_count : int;
}

(* Phases: 0 = awaiting input move, 1 = ready to process, 2 = awaiting
   output move. State encoding: little-endian base 3, digit i = stage i. *)

let pow3 n =
  let rec go acc n = if n = 0 then acc else go (acc * 3) (n - 1) in
  go 1 n

let digit state i = state / pow3 i mod 3

let with_digit state i d =
  let p = pow3 i in
  state + ((d - (state / p mod 3)) * p)

let clamp_rate r =
  if Float.is_nan r || r <= 0.0 then invalid_arg "Ctmc: rates must be positive"
  else if r = infinity then 1e12
  else r

let build ~service_rates ~move_rates =
  let ns = Array.length service_rates in
  if ns = 0 then invalid_arg "Ctmc.build: no stages";
  if ns > 13 then invalid_arg "Ctmc.build: too many stages for explicit state space";
  if Array.length move_rates <> ns + 1 then invalid_arg "Ctmc.build: move_rates must have Ns+1 entries";
  let mu = Array.map clamp_rate service_rates in
  let lambda = Array.map clamp_rate move_rates in
  let states = pow3 ns in
  let transitions = Array.make states [] in
  let outflow = Array.make states 0.0 in
  let count = ref 0 in
  for s = 0 to states - 1 do
    let add target rate =
      transitions.(s) <- (target, rate) :: transitions.(s);
      outflow.(s) <- outflow.(s) +. rate;
      incr count
    in
    (* process_i *)
    for i = 0 to ns - 1 do
      if digit s i = 1 then add (with_digit s i 2) mu.(i)
    done;
    (* input move *)
    if digit s 0 = 0 then add (with_digit s 0 1) lambda.(0);
    (* interior moves: stage e-1 puts, stage e gets *)
    for e = 1 to ns - 1 do
      if digit s (e - 1) = 2 && digit s e = 0 then
        add (with_digit (with_digit s (e - 1) 0) e 1) lambda.(e)
    done;
    (* output move *)
    if digit s (ns - 1) = 2 then add (with_digit s (ns - 1) 0) lambda.(ns)
  done;
  { stages = ns; states; service_rates = mu; transitions; outflow; transition_count = !count }

let of_costspec spec m =
  let ns = Costspec.stages spec in
  build
    ~service_rates:(Array.init ns (Costspec.service_rate spec m))
    ~move_rates:(Array.init (ns + 1) (Costspec.move_rate spec m))

let state_count t = t.states
let transition_count t = t.transition_count

type solver = Gauss_seidel | Power

let steady_state_power ~tol ~max_iter t =
  let n = t.states in
  let uniform = Array.fold_left Float.max 0.0 t.outflow *. 1.001 in
  if uniform <= 0.0 then failwith "Ctmc.steady_state: chain has no transitions";
  let pi = Array.make n (1.0 /. Float.of_int n) in
  let next = Array.make n 0.0 in
  let rec iterate k =
    Array.fill next 0 n 0.0;
    for s = 0 to n - 1 do
      let mass = pi.(s) in
      if mass > 0.0 then begin
        next.(s) <- next.(s) +. (mass *. (1.0 -. (t.outflow.(s) /. uniform)));
        List.iter
          (fun (target, rate) -> next.(target) <- next.(target) +. (mass *. rate /. uniform))
          t.transitions.(s)
      end
    done;
    let diff = ref 0.0 in
    for s = 0 to n - 1 do
      diff := !diff +. Float.abs (next.(s) -. pi.(s));
      pi.(s) <- next.(s)
    done;
    if !diff > tol then
      if k >= max_iter then failwith "Ctmc.steady_state: no convergence" else iterate (k + 1)
  in
  iterate 1;
  let total = Array.fold_left ( +. ) 0.0 pi in
  Array.map (fun p -> p /. total) pi

let steady_state_gauss_seidel ~tol ~max_iter t =
  (* Gauss–Seidel on the balance equations π_j · outflow_j = Σ_i π_i q_ij.
     Unlike uniformized power iteration, convergence does not degrade when
     rates span many orders of magnitude (local moves vs slow services). *)
  let n = t.states in
  let incoming = Array.make n [] in
  for s = 0 to n - 1 do
    List.iter
      (fun (target, rate) -> incoming.(target) <- (s, rate) :: incoming.(target))
      t.transitions.(s)
  done;
  let pi = Array.make n (1.0 /. Float.of_int n) in
  let rec sweep k =
    let diff = ref 0.0 in
    for j = 0 to n - 1 do
      if t.outflow.(j) > 0.0 then begin
        let inflow =
          List.fold_left (fun acc (src, rate) -> acc +. (pi.(src) *. rate)) 0.0 incoming.(j)
        in
        let updated = inflow /. t.outflow.(j) in
        diff := !diff +. Float.abs (updated -. pi.(j));
        pi.(j) <- updated
      end
      else pi.(j) <- 0.0
    done;
    (* Renormalize each sweep so the fixed point is a distribution. *)
    let total = Array.fold_left ( +. ) 0.0 pi in
    if total > 0.0 then
      for j = 0 to n - 1 do
        pi.(j) <- pi.(j) /. total
      done;
    if !diff > tol then
      if k >= max_iter then failwith "Ctmc.steady_state: no convergence" else sweep (k + 1)
  in
  sweep 1;
  pi

let steady_state ?(solver = Gauss_seidel) ?(tol = 1e-12) ?(max_iter = 200_000) t =
  match solver with
  | Gauss_seidel -> steady_state_gauss_seidel ~tol ~max_iter t
  | Power -> steady_state_power ~tol ~max_iter t

let throughput ?solver ?tol ?max_iter t =
  let pi = steady_state ?solver ?tol ?max_iter t in
  let processing_mass = ref 0.0 in
  for s = 0 to t.states - 1 do
    if digit s 0 = 1 then processing_mass := !processing_mass +. pi.(s)
  done;
  t.service_rates.(0) *. !processing_mass

let residual t pi =
  if Array.length pi <> t.states then invalid_arg "Ctmc.residual: wrong dimension";
  let flux = Array.make t.states 0.0 in
  for s = 0 to t.states - 1 do
    flux.(s) <- flux.(s) -. (pi.(s) *. t.outflow.(s));
    List.iter
      (fun (target, rate) -> flux.(target) <- flux.(target) +. (pi.(s) *. rate))
      t.transitions.(s)
  done;
  Array.fold_left (fun acc f -> acc +. Float.abs f) 0.0 flux
