type t = int array

let of_array ~processors a =
  if Array.length a = 0 then invalid_arg "Mapping.of_array: empty";
  Array.iter
    (fun p ->
      if p < 0 || p >= processors then invalid_arg "Mapping.of_array: processor out of range")
    a;
  Array.copy a

let to_array t = Array.copy t
let stages t = Array.length t
let processor_of t i = t.(i)
let equal (a : t) (b : t) = a = b

let to_string t =
  "(" ^ String.concat "," (List.map string_of_int (Array.to_list t)) ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let round_robin ~stages ~processors =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.round_robin";
  Array.init stages (fun i -> i mod processors)

let all_on ~stages ~processor ~processors =
  if processor < 0 || processor >= processors then invalid_arg "Mapping.all_on";
  Array.make stages processor

let random rng ~stages ~processors =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.random";
  Array.init stages (fun _ -> Aspipe_util.Rng.int rng processors)

let blocks ~stages ~processors =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.blocks";
  let groups = min stages processors in
  (* Even split: the first [stages mod groups] blocks get one extra stage. *)
  let base = stages / groups and extra = stages mod groups in
  let boundaries = Array.make (groups + 1) 0 in
  for g = 1 to groups do
    boundaries.(g) <- boundaries.(g - 1) + base + (if g <= extra then 1 else 0)
  done;
  Array.init stages (fun i ->
      let rec find g = if i < boundaries.(g + 1) then g else find (g + 1) in
      find 0)

let enumerate ?fix_first_on ~stages ~processors () =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.enumerate";
  let free = match fix_first_on with Some _ -> stages - 1 | None -> stages in
  let count = Float.of_int processors ** Float.of_int free in
  if count > Float.of_int (1 lsl 22) then
    invalid_arg "Mapping.enumerate: assignment space too large";
  let total = int_of_float count in
  List.init total (fun code ->
      let m = Array.make stages 0 in
      let start =
        match fix_first_on with
        | Some p ->
            m.(0) <- p;
            1
        | None -> 0
      in
      let rest = ref code in
      for i = start to stages - 1 do
        m.(i) <- !rest mod processors;
        rest := !rest / processors
      done;
      m)

let neighbours t ~processors =
  let acc = ref [] in
  Array.iteri
    (fun i p ->
      for q = 0 to processors - 1 do
        if q <> p then begin
          let m = Array.copy t in
          m.(i) <- q;
          acc := m :: !acc
        end
      done)
    t;
  List.rev !acc

let colocation t ~processors =
  let counts = Array.make processors 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) t;
  counts

let stages_sharing t i =
  let p = t.(i) in
  Array.fold_left (fun acc q -> if q = p then acc + 1 else acc) 0 t
