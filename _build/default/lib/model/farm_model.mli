(** Performance model of the simulated task farm.

    Under round-robin dispatch every worker receives an equal share of the
    stream, so the farm saturates when the {e slowest selected worker}
    saturates: X = n · min rate. Under least-loaded dispatch work flows
    proportionally and capacity adds up: X = Σ rates. The adaptive farm
    engine uses {!best_round_robin_set} to decide which workers a round-robin
    deal should currently include — the stage-replication analogue of the
    pipeline's mapping search. *)

type t = {
  work : float;  (** mean work units per item *)
  node_rates : float array;  (** effective work units/s per node *)
}

val make : work:float -> node_rates:float array -> t
(** Raises [Invalid_argument] if [work <= 0] or any rate is negative. *)

val worker_rate : t -> int -> float
(** Items/s worker [w] can sustain alone. *)

val round_robin_throughput : t -> workers:int list -> float
(** [|workers| × min rate] — equal shares bind at the slowest member. *)

val proportional_throughput : t -> workers:int list -> float
(** [Σ rates] — the least-loaded / work-stealing capacity. *)

val best_round_robin_set : t -> candidates:int list -> int list * float
(** The subset of [candidates] maximizing round-robin throughput: sort by
    rate descending and take the prefix whose [k × rate_k] is maximal.
    Deterministic; raises [Invalid_argument] on an empty candidate list. *)
