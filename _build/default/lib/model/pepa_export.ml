let rate_table spec m =
  let ns = Costspec.stages spec in
  let mus =
    List.init ns (fun i -> (Printf.sprintf "mu%d" (i + 1), Costspec.service_rate spec m i))
  in
  let lambdas =
    List.init (ns + 1) (fun i ->
        (Printf.sprintf "lambda%d" (i + 1), Costspec.move_rate spec m i))
  in
  mus @ lambdas

let finite_rate r = if r = infinity then 1e12 else r

let pipeline spec m =
  let ns = Costspec.stages spec in
  let np = Costspec.processors spec in
  let buffer = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buffer) fmt in
  out "// Pipeline skeleton model exported by aspipe\n";
  out "// mapping %s over %d processors\n\n" (Mapping.to_string m) np;
  List.iter (fun (name, rate) -> out "%s = %g;\n" name (finite_rate rate)) (rate_table spec m);
  out "\n";
  (* Stages: cycle through their input move, processing, and output move. *)
  for i = 1 to ns do
    out "Stage%d = (move%d, infty).(process%d, infty).(move%d, infty).Stage%d;\n" i i i (i + 1) i
  done;
  out "\n";
  (* Processors: a choice over the process activities of their stages. *)
  for p = 0 to np - 1 do
    let hosted =
      List.filter (fun i -> Mapping.processor_of m (i - 1) = p) (List.init ns (fun i -> i + 1))
    in
    match hosted with
    | [] -> ()
    | _ ->
        let alternatives =
          List.map
            (fun i -> Printf.sprintf "(process%d, mu%d).Processor%d" i i (p + 1))
            hosted
        in
        out "Processor%d = %s;\n" (p + 1) (String.concat " + " alternatives)
  done;
  out "\n";
  let moves = List.init (ns + 1) (fun i -> Printf.sprintf "(move%d, lambda%d).Network" (i + 1) (i + 1)) in
  out "Network = %s;\n\n" (String.concat " + " moves);
  (* The pipeline: stages cooperating pairwise over the interior moves. *)
  let rec chain i =
    if i = ns then Printf.sprintf "Stage%d" i
    else Printf.sprintf "Stage%d <move%d> (%s)" i (i + 1) (chain (i + 1))
  in
  out "Pipeline = %s;\n" (chain 1);
  let used_processors =
    List.sort_uniq compare (List.init ns (fun i -> Mapping.processor_of m i))
  in
  let processors =
    String.concat " || " (List.map (fun p -> Printf.sprintf "Processor%d" (p + 1)) used_processors)
  in
  let process_set = String.concat ", " (List.init ns (fun i -> Printf.sprintf "process%d" (i + 1))) in
  let move_set = String.concat ", " (List.init (ns + 1) (fun i -> Printf.sprintf "move%d" (i + 1))) in
  out "Processors = %s;\n\n" processors;
  out "Mapping = Network <%s> Pipeline <%s> Processors;\n\n" move_set process_set;
  out "// measure: throughput of process1 (steady-state rate of the first stage)\n";
  Buffer.contents buffer
