type evaluator = Mapping.t -> float

type result = { mapping : Mapping.t; score : float; evaluated : int }

let best_of candidates evaluator =
  match candidates with
  | [] -> invalid_arg "Search.best_of: no candidates"
  | first :: rest ->
      let count = ref 1 in
      let best =
        List.fold_left
          (fun (bm, bs) m ->
            incr count;
            let s = evaluator m in
            if s > bs then (m, s) else (bm, bs))
          (first, evaluator first) rest
      in
      { mapping = fst best; score = snd best; evaluated = !count }

let exhaustive ?fix_first_on ~stages ~processors evaluator =
  best_of (Mapping.enumerate ?fix_first_on ~stages ~processors ()) evaluator

let greedy ~stages ~processors evaluator =
  if stages <= 0 || processors <= 0 then invalid_arg "Search.greedy";
  let assignment = Array.make stages 0 in
  let evaluated = ref 0 in
  for i = 0 to stages - 1 do
    let best_processor = ref 0 and best_score = ref neg_infinity in
    for p = 0 to processors - 1 do
      assignment.(i) <- p;
      (* Remaining stages ride along on processor p for the tentative score. *)
      for j = i + 1 to stages - 1 do
        assignment.(j) <- p
      done;
      let score = evaluator (Mapping.of_array ~processors assignment) in
      incr evaluated;
      if score > !best_score then begin
        best_score := score;
        best_processor := p
      end
    done;
    assignment.(i) <- !best_processor;
    for j = i + 1 to stages - 1 do
      assignment.(j) <- !best_processor
    done
  done;
  let mapping = Mapping.of_array ~processors assignment in
  { mapping; score = evaluator mapping; evaluated = !evaluated + 1 }

let hill_climb ?(max_steps = 1000) ~start ~processors evaluator =
  let evaluated = ref 1 in
  let rec climb mapping score steps =
    if steps >= max_steps then { mapping; score; evaluated = !evaluated }
    else begin
      let candidates = Mapping.neighbours mapping ~processors in
      let better =
        List.fold_left
          (fun acc m ->
            let s = evaluator m in
            incr evaluated;
            match acc with
            | Some (_, bs) when bs >= s -> acc
            | _ when s > score -> Some (m, s)
            | acc -> acc)
          None candidates
      in
      match better with
      | None -> { mapping; score; evaluated = !evaluated }
      | Some (m, s) -> climb m s (steps + 1)
    end
  in
  climb start (evaluator start) 0

let auto ?(exhaustive_limit = 20_000) ~stages ~processors evaluator =
  let space = Float.of_int processors ** Float.of_int stages in
  if space <= Float.of_int exhaustive_limit then exhaustive ~stages ~processors evaluator
  else begin
    let greedy_result = greedy ~stages ~processors evaluator in
    let refined = hill_climb ~start:greedy_result.mapping ~processors evaluator in
    { refined with evaluated = refined.evaluated + greedy_result.evaluated }
  end
