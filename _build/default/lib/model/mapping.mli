(** Stage→processor assignments.

    A mapping for an [Ns]-stage pipeline over [Np] processors is an array of
    length [Ns] whose [i]-th entry names the processor hosting stage [i].
    Written [(p₀,p₁,…)] as in the skeleton-scheduling literature — e.g.
    [(0,0,1)] runs the first two stages on processor 0 and the third on
    processor 1. *)

type t = private int array

val of_array : processors:int -> int array -> t
(** Validates every entry lies in [\[0, processors)]. *)

val to_array : t -> int array
val stages : t -> int
val processor_of : t -> int -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val round_robin : stages:int -> processors:int -> t
(** Stage [i] on processor [i mod processors]. *)

val all_on : stages:int -> processor:int -> processors:int -> t

val random : Aspipe_util.Rng.t -> stages:int -> processors:int -> t

val blocks : stages:int -> processors:int -> t
(** Contiguous blocks: stages split as evenly as possible into [processors]
    consecutive groups — the classic static block mapping baseline. *)

val enumerate : ?fix_first_on:int -> stages:int -> processors:int -> unit -> t list
(** Every assignment ([processors]^[stages] of them, or a factor fewer with
    [fix_first_on] pinning stage 0, as the paper's tables do).
    Raises [Invalid_argument] if the space exceeds [2^22] mappings. *)

val neighbours : t -> processors:int -> t list
(** All mappings differing in exactly one stage's processor. *)

val colocation : t -> processors:int -> int array
(** [colocation m ~processors] gives, per processor, the number of stages it
    hosts. *)

val stages_sharing : t -> int -> int
(** [stages_sharing m i] is the number of stages (≥ 1) on stage [i]'s
    processor, including stage [i]. *)
