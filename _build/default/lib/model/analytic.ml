type bottleneck = Processor of int | Stage_cycle of int

let pp_bottleneck ppf = function
  | Processor p -> Format.fprintf ppf "processor %d" p
  | Stage_cycle i -> Format.fprintf ppf "stage %d cycle" i

let stage_cycle_time spec m i =
  let service =
    let rate = Costspec.service_rate spec m i in
    if rate = infinity then 0.0 else 1.0 /. rate
  in
  let move_out =
    let rate = Costspec.move_rate spec m (i + 1) in
    if rate = infinity then 0.0 else 1.0 /. rate
  in
  service +. move_out

(* Every station with its items/s capacity under [m]. *)
let stations spec m =
  let ns = Costspec.stages spec in
  let np = Costspec.processors spec in
  let work_per_processor = Array.make np 0.0 in
  Array.iteri
    (fun i w ->
      let p = Mapping.processor_of m i in
      work_per_processor.(p) <- work_per_processor.(p) +. w)
    spec.Costspec.stage_work;
  let processor_stations =
    List.filter_map
      (fun p ->
        if work_per_processor.(p) <= 0.0 then None
        else Some (Processor p, spec.Costspec.node_rates.(p) /. work_per_processor.(p)))
      (List.init np Fun.id)
  in
  let cycle_stations =
    List.map
      (fun i ->
        let cycle = stage_cycle_time spec m i in
        (Stage_cycle i, if cycle <= 0.0 then infinity else 1.0 /. cycle))
      (List.init ns Fun.id)
  in
  processor_stations @ cycle_stations

let bottleneck spec m =
  match stations spec m with
  | [] -> invalid_arg "Analytic.bottleneck: no stations"
  | first :: rest ->
      List.fold_left (fun (bs, br) (s, r) -> if r < br then (s, r) else (bs, br)) first rest

let throughput spec m = snd (bottleneck spec m)

let fill_latency spec m =
  let ns = Costspec.stages spec in
  let services =
    List.fold_left
      (fun acc i ->
        let rate = Costspec.service_rate spec m i in
        acc +. (if rate = infinity then 0.0 else 1.0 /. rate))
      0.0 (List.init ns Fun.id)
  in
  let moves =
    List.fold_left
      (fun acc i ->
        let rate = Costspec.move_rate spec m i in
        acc +. (if rate = infinity then 0.0 else 1.0 /. rate))
      0.0
      (List.init (ns + 1) Fun.id)
  in
  services +. moves

let completion_time spec m ~items =
  if items <= 0 then invalid_arg "Analytic.completion_time: items must be positive";
  let x = throughput spec m in
  fill_latency spec m +. (Float.of_int (items - 1) /. x)
