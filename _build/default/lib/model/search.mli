(** Mapping search: given an evaluator (predicted throughput, higher is
    better), find a good stage→processor assignment.

    Exhaustive search reproduces the paper-scale behaviour (enumerate all
    Np^Ns candidates, pick the best); greedy and hill-climbing keep the
    decision path sub-second when the space explodes, which experiment E6
    quantifies. *)

type evaluator = Mapping.t -> float

type result = { mapping : Mapping.t; score : float; evaluated : int }

val exhaustive :
  ?fix_first_on:int -> stages:int -> processors:int -> evaluator -> result
(** Scores the full assignment space. Ties break toward the first candidate
    in enumeration order, so results are deterministic. *)

val greedy : stages:int -> processors:int -> evaluator -> result
(** Builds the mapping stage by stage, placing each stage on the processor
    that maximizes the evaluator applied to the partial pipeline (remaining
    stages tentatively on the last chosen processor). O(Ns·Np) evaluations. *)

val hill_climb :
  ?max_steps:int -> start:Mapping.t -> processors:int -> evaluator -> result
(** Steepest-ascent over the single-stage-move neighbourhood from [start];
    stops at a local optimum or after [max_steps] (default 1000) moves. *)

val auto :
  ?exhaustive_limit:int -> stages:int -> processors:int -> evaluator -> result
(** Exhaustive when the space has at most [exhaustive_limit] (default 20000)
    candidates, otherwise greedy refined by hill climbing — the policy the
    adaptive engine uses. *)

val best_of : Mapping.t list -> evaluator -> result
(** Score an explicit candidate list (e.g. the paper's eight mappings). *)
