lib/model/costspec.ml: Array Aspipe_grid Aspipe_skel Float Mapping
