lib/model/analytic.mli: Costspec Format Mapping
