lib/model/costspec.mli: Aspipe_grid Aspipe_skel Mapping
