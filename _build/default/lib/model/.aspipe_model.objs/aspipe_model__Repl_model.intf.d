lib/model/repl_model.mli: Costspec
