lib/model/search.mli: Mapping
