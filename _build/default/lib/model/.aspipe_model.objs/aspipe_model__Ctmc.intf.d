lib/model/ctmc.mli: Costspec Mapping
