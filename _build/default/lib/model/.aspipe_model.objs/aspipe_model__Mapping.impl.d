lib/model/mapping.ml: Array Aspipe_util Float Format List String
