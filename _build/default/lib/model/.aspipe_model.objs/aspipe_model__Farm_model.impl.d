lib/model/farm_model.ml: Array Float List
