lib/model/pepa_export.mli: Costspec Mapping
