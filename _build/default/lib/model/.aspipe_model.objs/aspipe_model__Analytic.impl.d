lib/model/analytic.ml: Array Costspec Float Format Fun List Mapping
