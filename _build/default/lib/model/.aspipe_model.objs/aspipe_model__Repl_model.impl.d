lib/model/repl_model.ml: Array Costspec Float Fun List
