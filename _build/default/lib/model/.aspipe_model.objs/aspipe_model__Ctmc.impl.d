lib/model/ctmc.ml: Array Costspec Float List
