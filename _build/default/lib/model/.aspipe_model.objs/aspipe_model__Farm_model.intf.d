lib/model/farm_model.mli:
