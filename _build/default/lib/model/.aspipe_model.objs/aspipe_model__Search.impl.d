lib/model/search.ml: Array Float List Mapping
