lib/model/predictor.mli: Costspec Mapping Search
