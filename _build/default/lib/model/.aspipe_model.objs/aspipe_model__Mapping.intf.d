lib/model/mapping.mli: Aspipe_util Format
