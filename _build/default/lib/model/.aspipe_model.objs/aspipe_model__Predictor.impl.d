lib/model/predictor.ml: Analytic Costspec Ctmc Float List Search
