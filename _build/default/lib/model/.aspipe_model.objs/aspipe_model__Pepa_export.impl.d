lib/model/pepa_export.ml: Buffer Costspec List Mapping Printf String
