(** The high-fidelity mapping evaluator: a continuous-time Markov chain of
    the pipeline ⋈ processors ⋈ network cooperation.

    Each stage cycles through three phases — awaiting its input move,
    processing, awaiting its output move. Interior moves synchronize adjacent
    stages (the upstream must be ready to put, the downstream ready to get);
    the boundary moves synchronize with the always-ready user. Processing
    rates μ and move rates λ come from a {!Costspec.t}; processor sharing is
    folded into μ (equitable division among colocated stages). The state
    space is 3^Ns; steady state is computed by uniformized power iteration
    and throughput as μ₀ · P\[stage 0 is processing\].

    With exponential assumptions this is exact, so it validates the analytic
    bottleneck model and the simulator against each other (experiment E1). *)

type t

val build : service_rates:float array -> move_rates:float array -> t
(** [service_rates] has length Ns (μ per stage), [move_rates] length Ns + 1
    (λ per edge, input edge first). All rates must be positive; [infinity]
    is allowed and treated as a very fast but finite rate (1e12). Raises
    [Invalid_argument] on length or sign errors, or if Ns > 13 (3^Ns states
    would not fit in memory). *)

val of_costspec : Costspec.t -> Mapping.t -> t

val state_count : t -> int
val transition_count : t -> int

type solver =
  | Gauss_seidel
      (** in-place sweeps over the balance equations; robust to stiff chains
          (rates spanning many orders of magnitude) — the default *)
  | Power
      (** uniformized power iteration; kept for the solver ablation — its
          convergence degrades as max-rate/min-rate grows *)

val steady_state : ?solver:solver -> ?tol:float -> ?max_iter:int -> t -> float array
(** The stationary distribution π. Raises [Failure] if the iteration does
    not reach [tol] (default 1e-12 on the L1 step difference) within
    [max_iter] (default 200_000) sweeps. *)

val throughput : ?solver:solver -> ?tol:float -> ?max_iter:int -> t -> float
(** Items per second through the pipeline. *)

val residual : t -> float array -> float
(** ‖πQ‖₁ — a correctness check on a proposed stationary vector. *)
