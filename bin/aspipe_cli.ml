(* aspipe — command-line front end.

   Subcommands:
     list-experiments        enumerate the reconstructed tables/figures
     experiment <id>         regenerate one (or `all`)
     campaign                run the registry through the multicore runner
     simulate                run an ad-hoc adaptive-vs-static comparison
                             (--arrivals switches it to an open serving stream)
     serve                   open-arrival serving demo: autoscalers vs a latency SLO
     trace-export            run a scenario and export Perfetto/JSONL telemetry
     metrics                 run a scenario and print the metrics snapshot
     faults                  crash nodes mid-run: static DNF vs adaptive failover
     calibrate               show a calibration pass on a synthetic pipeline
     forecast-demo           NWS-style forecaster accuracy on a step signal *)

open Cmdliner

module Rng = Aspipe_util.Rng
module Forecast = Aspipe_util.Forecast
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Loadgen = Aspipe_grid.Loadgen
module Fault = Aspipe_fault.Fault
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Baselines = Aspipe_core.Baselines
module Calibration = Aspipe_core.Calibration
module Registry = Aspipe_exp.Registry
module Arrival = Aspipe_serve.Arrival
module Slo = Aspipe_serve.Slo
module Autoscaler = Aspipe_serve.Autoscaler
module Serve = Aspipe_serve.Serve
module Json = Aspipe_obs.Json
module Trace_event = Aspipe_obs.Trace_event
module Jsonl = Aspipe_obs.Jsonl
module Meter = Aspipe_obs.Meter
module Metrics = Aspipe_obs.Metrics

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced experiment sizes (same shapes).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log adaptation decisions to stderr.")

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

(* ------------------------------------------------------- list-experiments *)

let experiment_kind e =
  match e.Registry.kind with Registry.Table -> "table" | Registry.Figure -> "figure"

let list_experiments json =
  if json then
    (* The registry renders itself, so this listing, the text listing and
       bench --only can never disagree about what exists. *)
    print_endline (Json.to_string (Registry.to_json ()))
  else
    List.iter
      (fun e -> Printf.printf "%-4s %-7s %s\n" e.Registry.id (experiment_kind e) e.Registry.title)
      Registry.all

let list_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit a JSON array instead of the aligned text.")
  in
  Cmd.v (Cmd.info "list-experiments" ~doc:"List the reconstructed tables and figures")
    Term.(const list_experiments $ json)

(* ------------------------------------------------------------- experiment *)

let run_experiment quick id =
  if String.lowercase_ascii id = "all" then `Ok (Registry.run_all ~quick)
  else
    match Registry.find id with
    | Some e -> `Ok (e.Registry.run ~quick)
    | None -> `Error (false, Printf.sprintf "unknown experiment %S (try list-experiments)" id)

let experiment_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (E1..E20 or 'all').")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate one experiment (or all)")
    Term.(ret (const run_experiment $ quick_arg $ id_arg))

(* --------------------------------------------------------------- campaign *)

let campaign quick jobs oversubscribe only cache_dir summary_only profile =
  let module Prof = Aspipe_prof.Prof in
  if profile <> None then Prof.enable ();
  match
    Aspipe_runner.Campaign.run
      ?jobs ~oversubscribe ?cache_dir
      ?only:(Option.map (String.split_on_char ',') only)
      ~quick ()
  with
  | report -> (
      if not summary_only then Aspipe_runner.Campaign.print_outputs report;
      Aspipe_runner.Campaign.print_summary report;
      match profile with
      | None -> `Ok ()
      | Some path -> (
          Prof.disable ();
          let p = Prof.collect () in
          print_string (Aspipe_prof.Report.render p);
          try
            Aspipe_prof.Export.write p ~path;
            let spans =
              List.fold_left
                (fun acc tl -> acc + List.length tl.Aspipe_prof.Prof.spans)
                0 p.Aspipe_prof.Prof.timelines
            in
            Printf.printf
              "wrote runner profile (%d spans, %d domains) to %s — open in ui.perfetto.dev\n"
              spans
              (List.length p.Aspipe_prof.Prof.timelines)
              path;
            `Ok ()
          with Sys_error msg -> `Error (false, "cannot write profile: " ^ msg)))
  | exception Invalid_argument msg -> `Error (false, msg)

let campaign_cmd =
  let jobs =
    Arg.(value
        & opt (some int) None
        & info [ "jobs"; "j" ] ~docv:"N"
            ~doc:"Worker domains (default: the recommended domain count; capped at the core \
                  count unless $(b,--oversubscribe)). Output is byte-identical whatever the \
                  value.")
  in
  let oversubscribe =
    Arg.(value
        & flag
        & info [ "oversubscribe" ]
            ~doc:"Take $(b,--jobs) literally even beyond the recommended domain count \
                  (more domains than cores multiply stop-the-world GC barriers; useful \
                  only for measuring that effect).")
  in
  let profile =
    Arg.(value
        & opt ~vopt:(Some "aspipe-profile.json") (some string) None
        & info [ "profile" ] ~docv:"FILE"
            ~doc:"Record a wall-clock runner profile: per-domain timelines to FILE \
                  (Perfetto JSON, default $(b,aspipe-profile.json)) plus a contention \
                  report after the summary.")
  in
  let only =
    Arg.(value
        & opt (some string) None
        & info [ "only" ] ~docv:"IDS" ~doc:"Comma-separated experiment ids, e.g. $(b,E1,E18).")
  in
  let cache_dir =
    Arg.(value
        & opt (some string) None
        & info [ "cache-dir" ] ~docv:"DIR"
            ~doc:"Content-addressed result cache: unchanged experiments of an unchanged binary \
                  replay from disk.")
  in
  let summary_only =
    Arg.(value & flag & info [ "summary-only" ] ~doc:"Print only the runner summary, not the experiment outputs.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the experiment registry in parallel on a domain pool (deterministic output)")
    Term.(
      ret
        (const campaign $ quick_arg $ jobs $ oversubscribe $ only $ cache_dir $ summary_only
       $ profile))

(* --------------------------------------------------------------- simulate *)

(* Shared ad-hoc scenario of simulate / trace-export / metrics: a uniform
   grid, an optionally hot middle stage, and a load step on node 0. With
   [quick], sizes shrink to values under which the default threshold policy
   still commits at least one adaptation. *)
let cli_scenario ?(faults = []) ?(horizon = 1e5) ~quick ~nodes ~stages ~items ~hot ~step_at () =
  let items = if quick then min items 150 else items in
  let step_at = if quick && step_at > 0.0 then Float.min step_at 30.0 else step_at in
  let stage_array =
    if hot > 1.0 then Aspipe_workload.Synthetic.hot_stage ~n:stages ~factor:hot ()
    else Aspipe_workload.Synthetic.balanced ~n:stages ()
  in
  let loads =
    if step_at > 0.0 then [ (0, Loadgen.Step { at = step_at; level = 0.2 }) ] else []
  in
  Scenario.make ~name:"cli"
    ~make_topo:(fun engine ->
      Aspipe_grid.Topology.uniform engine ~n:nodes ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
    ~loads ~faults ~stages:stage_array
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.3) ~items ())
    ~horizon ()

let scenario_args =
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Grid size.") in
  let stages = Arg.(value & opt int 4 & info [ "stages" ] ~doc:"Pipeline stages.") in
  let items = Arg.(value & opt int 500 & info [ "items" ] ~doc:"Input items.") in
  let hot = Arg.(value & opt float 1.0 & info [ "hot-factor" ] ~doc:"Cost multiplier of the middle stage.") in
  let step = Arg.(value & opt float 60.0 & info [ "step-at" ] ~doc:"Time of a load step on node 0 (0 = none).") in
  Term.(const (fun nodes stages items hot step_at -> (nodes, stages, items, hot, step_at))
        $ nodes $ stages $ items $ hot $ step)

let simulate verbose quick seed (nodes, stages, items, hot, step_at) fault_spec arrivals summary
    csv_dir trace_out =
  setup_logs verbose;
  let faults =
    match fault_spec with
    | None -> []
    | Some spec -> (
        try Fault.parse_spec spec
        with Invalid_argument msg ->
          Printf.eprintf "aspipe: %s\n" msg;
          exit 1)
  in
  let collector = Trace_event.create () in
  let instrument =
    match trace_out with
    | None -> None
    | Some _ -> Some (fun bus -> Trace_event.attach collector bus)
  in
  let trace =
    match arrivals with
    | Some spec ->
        (* Open serving mode: the same ad-hoc grid (load step and --faults
           included), but the input is an open arrival process instead of a
           finite batch. Makespan is meaningless here, so both rows report
           serving terms — sojourn quantiles, SLO attainment, node-seconds —
           with the divergence trigger standing in for "adaptive". *)
        let arrival =
          try Arrival.parse_spec spec
          with Invalid_argument msg ->
            Printf.eprintf "aspipe: %s\n" msg;
            exit 1
        in
        let horizon = if quick then 120.0 else 300.0 in
        let scenario =
          cli_scenario ~faults ~horizon ~quick ~nodes ~stages ~items ~hot ~step_at ()
        in
        let slo = Slo.spec ~target_quantile:0.95 ~threshold:6.0 ~window:30.0 in
        let run ?instrument autoscaler =
          Serve.run ?instrument ~initial:`Best ~autoscaler ~arrival ~slo ~scenario ~seed ()
        in
        let static = run (Autoscaler.static ()) in
        let adaptive = run ?instrument (Autoscaler.remap_on_divergence ()) in
        Format.printf "static-best-mapping : %a@." Serve.pp_report static;
        Format.printf "adaptive            : %a@." Serve.pp_report adaptive;
        adaptive.Serve.trace
    | None ->
        let scenario = cli_scenario ~faults ~quick ~nodes ~stages ~items ~hot ~step_at () in
        (* Under a fault schedule the static mapping may never finish, so
           probe the fault-free world for its mapping and report a DNF
           honestly. *)
        (if faults = [] then
           let static = Baselines.static_model_best ~scenario ~seed () in
           Printf.printf "static-model-best : mapping %s, makespan %.1f s\n"
             (Aspipe_model.Mapping.to_string static.Baselines.mapping)
             static.Baselines.makespan
         else
           let base = cli_scenario ~quick ~nodes ~stages ~items ~hot ~step_at () in
           let nominal = Baselines.static_model_best ~scenario:base ~seed () in
           let static =
             Baselines.static_faulty ~label:"static-model-best"
               ~mapping:(Aspipe_model.Mapping.to_array nominal.Baselines.mapping)
               ~scenario ~seed ()
           in
           Printf.printf "static-model-best : mapping %s, %s (%d/%d items, %d lost)\n"
             (Aspipe_model.Mapping.to_string static.Baselines.f_mapping)
             (match static.Baselines.finish with
             | Some f -> Printf.sprintf "makespan %.1f s" f
             | None -> "DNF")
             static.Baselines.completed static.Baselines.total static.Baselines.items_lost);
        let adaptive = Adaptive.run ?instrument ~scenario ~seed () in
        Format.printf "adaptive          : %a@." Adaptive.pp_report adaptive;
        adaptive.Adaptive.trace
  in
  if summary then
    Aspipe_util.Render.Table.print (Aspipe_grid.Trace_stats.summary_table trace ~stages);
  (match trace_out with
  | None -> ()
  | Some path -> (
      try
        Trace_event.write collector ~path;
        Printf.printf
          "wrote Chrome trace-event JSON (%d events) to %s — open in ui.perfetto.dev\n"
          (Trace_event.events_collected collector)
          path
      with Sys_error msg ->
        Printf.eprintf "aspipe: cannot write trace: %s\n" msg;
        exit 1));
  match csv_dir with
  | None -> ()
  | Some dir ->
      Aspipe_util.Csvio.write_rows
        ~path:(Filename.concat dir "gantt.csv")
        (Aspipe_grid.Trace_stats.gantt_rows trace);
      let path =
        Aspipe_util.Csvio.save_table ~dir ~basename:"stage_summary"
          (Aspipe_grid.Trace_stats.summary_table trace ~stages)
      in
      Printf.printf "wrote %s and %s\n" (Filename.concat dir "gantt.csv") path

let faults_arg =
  Arg.(value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Node fault schedule: semicolon-separated $(i,node:profile) clauses where a profile \
             is $(b,crash\\@T), $(b,crash\\@T+D) (crash then recover after D), \
             $(b,mtbf=M,mttr=R) or $(b,windows=T1+D1,T2+D2,...) — e.g. \
             $(b,0:crash\\@120;1:mtbf=500,mttr=50).")

let arrivals_arg =
  Arg.(value
      & opt (some string) None
      & info [ "arrivals" ] ~docv:"SPEC"
          ~doc:
            "Serve an open arrival process instead of the closed batch: \
             $(b,poisson:RATE), $(b,diurnal:BASE,AMP,PERIOD), \
             $(b,flash:BASE,PEAK,AT,RAMP,DECAY), $(b,mmpp:RATE/HOLD,...) or \
             $(b,replay:T1,T2,...). Reports sojourn quantiles, SLO attainment and \
             node-seconds in place of makespan.")

let simulate_cmd =
  let summary = Arg.(value & flag & info [ "summary" ] ~doc:"Print the per-stage trace summary.") in
  let csv = Arg.(value & opt (some dir) None & info [ "csv" ] ~docv:"DIR" ~doc:"Write gantt.csv and stage_summary.csv to DIR.") in
  let trace = Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Write the adaptive run as Chrome trace-event/Perfetto JSON to FILE.") in
  Cmd.v (Cmd.info "simulate" ~doc:"Ad-hoc adaptive vs static run on a uniform grid")
    Term.(const simulate $ verbose_arg $ quick_arg $ seed_arg $ scenario_args $ faults_arg
          $ arrivals_arg $ summary $ csv $ trace)

(* ------------------------------------------------------------------ serve *)

(* The serving estate mirrors E21–E24: unit-work stages on a uniform grid,
   so capacity comes in clean per-node steps and the autoscalers' choices
   are easy to read off the node-seconds column. *)
let serve_cmd_run verbose quick seed nodes stages horizon arrivals_spec which provision
    threshold quantile window fault_spec show_windows =
  setup_logs verbose;
  let fail msg =
    Printf.eprintf "aspipe: %s\n" msg;
    exit 1
  in
  let faults =
    match fault_spec with
    | None -> []
    | Some spec -> ( try Fault.parse_spec spec with Invalid_argument msg -> fail msg)
  in
  let arrival = try Arrival.parse_spec arrivals_spec with Invalid_argument msg -> fail msg in
  let slo =
    try Slo.spec ~target_quantile:quantile ~threshold ~window
    with Invalid_argument msg -> fail msg
  in
  let horizon = if quick then horizon /. 2.0 else horizon in
  let scenario =
    Scenario.make ~name:"cli-serve"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.uniform engine ~n:nodes ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
      ~faults
      ~stages:
        (Array.init stages (fun i ->
             Stage.make ~name:(Printf.sprintf "srv%d" i) ~output_bytes:1e4 ~state_bytes:1e5
               ~work:(Aspipe_util.Variate.Constant 1.0) ()))
      ~input:(Stream_spec.make ~item_bytes:1e4 ~items:1 ())
      ~horizon ()
  in
  let run (initial, autoscaler) =
    Serve.run ~initial ~autoscaler ~arrival ~slo ~provision_rate:provision ~scenario ~seed ()
  in
  let row = function
    | `Static -> (`Best, Autoscaler.static ())
    | `Divergence -> (`Cheapest, Autoscaler.remap_on_divergence ())
    | `Queue -> (`Cheapest, Autoscaler.queue_length ())
    | `Latency -> (`Cheapest, Autoscaler.latency_gradient ())
  in
  let fmt_s x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" x in
  let fmt_pct x = if Float.is_nan x then "-" else Printf.sprintf "%.0f%%" (100.0 *. x) in
  match which with
  | `All ->
      let table =
        Aspipe_util.Render.Table.create
          ~title:
            (Format.asprintf "autoscalers serving %a over %.0f s (%a)" Arrival.pp arrival
               horizon Slo.pp_spec slo)
          ~columns:
            [ "autoscaler"; "arrivals"; "done"; "p50 (s)"; "p99 (s)"; "SLO att."; "node-s"; "remaps" ]
      in
      List.iter
        (fun auto ->
          let r = run (row auto) in
          Aspipe_util.Render.Table.add_row table
            [
              r.Serve.autoscaler_name;
              string_of_int r.Serve.arrivals;
              string_of_int r.Serve.completions;
              fmt_s r.Serve.p50;
              fmt_s r.Serve.p99;
              fmt_pct r.Serve.attainment;
              Printf.sprintf "%.0f" r.Serve.node_seconds;
              string_of_int r.Serve.adaptation_count;
            ])
        [ `Static; `Divergence; `Queue; `Latency ];
      Aspipe_util.Render.Table.print table
  | (`Static | `Divergence | `Queue | `Latency) as auto ->
      let r = run (row auto) in
      Format.printf "%a@." Serve.pp_report r;
      if show_windows then
        List.iter
          (fun (w : Slo.window_stats) ->
            Printf.printf "window %3d ending %7.1f s: %4d done, %3d over SLO  %s\n" w.Slo.index
              w.Slo.until w.Slo.completions w.Slo.violations
              (if w.Slo.attained then "ok" else "MISS"))
          r.Serve.windows

let serve_cmd =
  let nodes = Arg.(value & opt int 5 & info [ "nodes" ] ~doc:"Grid size.") in
  let stages = Arg.(value & opt int 4 & info [ "stages" ] ~doc:"Pipeline stages.") in
  let horizon =
    Arg.(value & opt float 600.0 & info [ "horizon" ] ~docv:"S" ~doc:"Arrival horizon in seconds (halved under $(b,--quick)); the queue then drains.")
  in
  let arrivals =
    Arg.(value
        & opt string "diurnal:1.6,1.2,240"
        & info [ "arrivals" ] ~docv:"SPEC"
            ~doc:"Arrival process (same grammar as $(b,simulate --arrivals)).")
  in
  let autoscaler =
    Arg.(value
        & opt
            (enum
               [ ("all", `All); ("static", `Static); ("divergence", `Divergence);
                 ("queue", `Queue); ("latency", `Latency) ])
            `All
        & info [ "autoscaler" ] ~docv:"NAME"
            ~doc:"Which autoscaler to run: $(b,static), $(b,divergence) (the paper's trigger), \
                  $(b,queue), $(b,latency), or $(b,all) for a comparison table.")
  in
  let provision =
    Arg.(value
        & opt float 1.6
        & info [ "provision" ] ~docv:"RATE"
            ~doc:"Demand (items/s) the initial mapping is provisioned for; scaling autoscalers \
                  start on the cheapest mapping covering it, $(b,static) on the \
                  throughput-best one.")
  in
  let threshold = Arg.(value & opt float 6.0 & info [ "slo-threshold" ] ~docv:"S" ~doc:"Sojourn SLO threshold in seconds.") in
  let quantile = Arg.(value & opt float 0.95 & info [ "slo-quantile" ] ~docv:"Q" ~doc:"SLO target quantile in (0,1).") in
  let window = Arg.(value & opt float 30.0 & info [ "slo-window" ] ~docv:"S" ~doc:"SLO accounting window in seconds.") in
  let windows =
    Arg.(value & flag & info [ "windows" ] ~doc:"Print the per-window attainment series (single-autoscaler runs only).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Open-arrival serving demo: autoscaler policies against a latency SLO")
    Term.(const serve_cmd_run $ verbose_arg $ quick_arg $ seed_arg $ nodes $ stages $ horizon
          $ arrivals $ autoscaler $ provision $ threshold $ quantile $ window $ faults_arg
          $ windows)

(* ----------------------------------------------------------- trace-export *)

let trace_export verbose quick seed (nodes, stages, items, hot, step_at) format out =
  setup_logs verbose;
  let scenario = cli_scenario ~quick ~nodes ~stages ~items ~hot ~step_at () in
  let write_out content =
    match out with
    | None -> print_string content
    | Some path -> (
        try
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc content);
          Printf.eprintf "wrote %s\n" path
        with Sys_error msg ->
          Printf.eprintf "aspipe: cannot write %s: %s\n" path msg;
          exit 1)
  in
  match format with
  | `Perfetto ->
      let collector = Trace_event.create () in
      ignore
        (Adaptive.run ~instrument:(fun bus -> Trace_event.attach collector bus) ~scenario ~seed ());
      write_out (Trace_event.to_string collector ^ "\n")
  | `Jsonl ->
      let buffer = Buffer.create 65536 in
      ignore
        (Adaptive.run
           ~instrument:(fun bus ->
             ignore (Aspipe_obs.Bus.subscribe bus (Jsonl.sink_to_buffer buffer)))
           ~scenario ~seed ());
      write_out (Buffer.contents buffer)

let trace_export_cmd =
  let format =
    Arg.(value
        & opt (enum [ ("perfetto", `Perfetto); ("jsonl", `Jsonl) ]) `Perfetto
        & info [ "format" ] ~docv:"FMT"
            ~doc:"Output format: $(b,perfetto) (Chrome trace-event JSON) or $(b,jsonl) (one \
                  structured event per line).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace-export"
       ~doc:"Run the adaptive scenario and export its full event stream")
    Term.(const trace_export $ verbose_arg $ quick_arg $ seed_arg $ scenario_args $ format $ out)

(* ---------------------------------------------------------------- metrics *)

let metrics verbose quick seed (nodes, stages, items, hot, step_at) json =
  setup_logs verbose;
  let scenario = cli_scenario ~quick ~nodes ~stages ~items ~hot ~step_at () in
  let meter = ref None in
  let report =
    Adaptive.run
      ~instrument:(fun bus -> meter := Some (Meter.attach bus))
      ~scenario ~seed ()
  in
  match !meter with
  | None -> assert false
  | Some meter ->
      let snapshot = Meter.snapshot meter in
      if json then print_endline (Json.to_string (Metrics.snapshot_to_json snapshot))
      else begin
        Format.printf "%a@." Adaptive.pp_report report;
        print_string (Metrics.render snapshot)
      end

let metrics_cmd =
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the snapshot as JSON.") in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Run the adaptive scenario and print its metrics-registry snapshot")
    Term.(const metrics $ verbose_arg $ quick_arg $ seed_arg $ scenario_args $ json)

(* ------------------------------------------------------------------ farm *)

let farm verbose seed nodes items step_at =
  setup_logs verbose;
  let speeds = Array.init nodes (fun i -> 14.0 -. (1.5 *. Float.of_int i)) in
  let loads =
    if step_at > 0.0 && nodes > 1 then [ (1, Loadgen.Step { at = step_at; level = 0.15 }) ]
    else []
  in
  let scenario =
    Scenario.make ~name:"cli-farm"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.heterogeneous engine ~speeds ~latency:0.01 ~bandwidth:1e7 ())
      ~loads
      ~stages:
        [| Aspipe_skel.Stage.make ~name:"task" ~state_bytes:0.0
             ~work:(Aspipe_util.Variate.Constant 1.0) () |]
      ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.06) ~items ())
      ~horizon:1e5 ()
  in
  let module AF = Aspipe_core.Adaptive_farm in
  let static = AF.run ~config:{ AF.default_config with adapt = false } ~scenario ~seed () in
  let adaptive = AF.run ~scenario ~seed () in
  Format.printf "static:   %a@." AF.pp_report static;
  Format.printf "adaptive: %a@." AF.pp_report adaptive

let farm_cmd =
  let nodes = Arg.(value & opt int 6 & info [ "nodes" ] ~doc:"Grid size (speeds 14, 12.5, 11, ...).") in
  let items = Arg.(value & opt int 1200 & info [ "items" ] ~doc:"Input items.") in
  let step = Arg.(value & opt float 20.0 & info [ "step-at" ] ~doc:"Time of a load step on node 1 (0 = none).") in
  Cmd.v (Cmd.info "farm" ~doc:"Adaptive vs static task farm on a heterogeneous grid")
    Term.(const farm $ verbose_arg $ seed_arg $ nodes $ items $ step)

(* ------------------------------------------------------------- replicate *)

let replicate verbose seed nodes stages hot items =
  setup_logs verbose;
  let stage_array = Aspipe_workload.Synthetic.hot_stage ~n:stages ~factor:hot () in
  let scenario =
    Scenario.make ~name:"cli-repl"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.uniform engine ~n:nodes ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
      ~stages:stage_array
      ~input:(Stream_spec.make ~items ())
      ~horizon:1e5 ()
  in
  let module AR = Aspipe_core.Adaptive_repl in
  let report = AR.run ~scenario ~seed () in
  Format.printf "%a@." AR.pp_report report

let replicate_cmd =
  let nodes = Arg.(value & opt int 7 & info [ "nodes" ] ~doc:"Grid size.") in
  let stages = Arg.(value & opt int 4 & info [ "stages" ] ~doc:"Pipeline stages.") in
  let hot = Arg.(value & opt float 4.0 & info [ "hot-factor" ] ~doc:"Cost multiplier of the middle stage.") in
  let items = Arg.(value & opt int 500 & info [ "items" ] ~doc:"Input items.") in
  Cmd.v
    (Cmd.info "replicate" ~doc:"Pipeline with model-allocated replicated stages")
    Term.(const replicate $ verbose_arg $ seed_arg $ nodes $ stages $ hot $ items)

(* ----------------------------------------------------------------- faults *)

let faults_demo verbose seed nodes stages items fault_spec =
  setup_logs verbose;
  let schedule =
    try Fault.parse_spec fault_spec
    with Invalid_argument msg ->
      Printf.eprintf "aspipe: %s\n" msg;
      exit 1
  in
  List.iter
    (fun (node, profile) ->
      Format.printf "node %d: %a@." node Fault.pp_profile profile)
    schedule;
  let scenario ~faults =
    Scenario.make ~name:"cli-faults"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.uniform engine ~n:nodes ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
      ~faults
      ~stages:(Aspipe_workload.Synthetic.balanced ~n:stages ())
      ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.3) ~items ())
      ~horizon:1e5 ()
  in
  let nominal = Baselines.static_model_best ~scenario:(scenario ~faults:[]) ~seed () in
  let static =
    Baselines.static_faulty ~label:"static"
      ~mapping:(Aspipe_model.Mapping.to_array nominal.Baselines.mapping)
      ~scenario:(scenario ~faults:schedule) ~seed ()
  in
  (match static.Baselines.finish with
  | Some f ->
      Printf.printf "static   : finished at %.1f s (%d/%d items, %d lost along the way)\n" f
        static.Baselines.completed static.Baselines.total static.Baselines.items_lost
  | None ->
      Printf.printf "static   : DNF at %d/%d items\n" static.Baselines.completed
        static.Baselines.total;
      Option.iter (Printf.printf "%s\n") static.Baselines.stall);
  let adaptive = Adaptive.run ~scenario:(scenario ~faults:schedule) ~seed () in
  Format.printf "adaptive : %a@." Adaptive.pp_report adaptive

let faults_cmd =
  let nodes = Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Grid size.") in
  let stages = Arg.(value & opt int 4 & info [ "stages" ] ~doc:"Pipeline stages.") in
  let items = Arg.(value & opt int 300 & info [ "items" ] ~doc:"Input items.") in
  let spec =
    Arg.(value
        & opt string "1:crash@40"
        & info [ "faults" ] ~docv:"SPEC"
            ~doc:"Fault schedule (same grammar as $(b,simulate --faults)).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Demo: crash nodes mid-run and compare static DNF against adaptive failover")
    Term.(const faults_demo $ verbose_arg $ seed_arg $ nodes $ stages $ items $ spec)

(* -------------------------------------------------------------- calibrate *)

let calibrate seed probes =
  let stages = Aspipe_workload.Synthetic.noisy ~n:5 ~cv:0.4 () in
  let calibration = Calibration.run ~probes ~rng:(Rng.create seed) stages in
  Format.printf "%a" Calibration.pp calibration;
  let errors = Calibration.relative_error calibration stages in
  Array.iteri (fun i e -> Printf.printf "stage %d relative error: %.1f%%\n" i (100.0 *. e)) errors

let calibrate_cmd =
  let probes = Arg.(value & opt int 5 & info [ "probes" ] ~doc:"Probe items per stage.") in
  Cmd.v (Cmd.info "calibrate" ~doc:"Run the calibration phase on a noisy synthetic pipeline")
    Term.(const calibrate $ seed_arg $ probes)

(* ------------------------------------------------------------ export-pepa *)

let export_pepa stages nodes hot =
  let engine = Aspipe_des.Engine.create () in
  let topo =
    Aspipe_grid.Topology.uniform engine ~n:nodes ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ()
  in
  let stage_array =
    if hot > 1.0 then Aspipe_workload.Synthetic.hot_stage ~n:stages ~factor:hot ()
    else Aspipe_workload.Synthetic.balanced ~n:stages ()
  in
  let input = Stream_spec.make ~items:100 ~item_bytes:1e4 () in
  let spec = Aspipe_model.Costspec.of_topology ~topo ~stages:stage_array ~input () in
  let predictor = Aspipe_model.Predictor.make spec in
  let result = Aspipe_model.Predictor.choose predictor in
  print_string (Aspipe_model.Pepa_export.pipeline spec result.Aspipe_model.Search.mapping);
  Printf.printf "// model-chosen mapping %s, predicted throughput %.4f items/s\n"
    (Aspipe_model.Mapping.to_string result.Aspipe_model.Search.mapping)
    result.Aspipe_model.Search.score

let export_pepa_cmd =
  let stages = Arg.(value & opt int 3 & info [ "stages" ] ~doc:"Pipeline stages.") in
  let nodes = Arg.(value & opt int 3 & info [ "nodes" ] ~doc:"Grid size.") in
  let hot = Arg.(value & opt float 1.0 & info [ "hot-factor" ] ~doc:"Cost multiplier of the middle stage.") in
  Cmd.v
    (Cmd.info "export-pepa"
       ~doc:"Print the pipeline's PEPA model for the model-chosen mapping")
    Term.(const export_pepa $ stages $ nodes $ hot)

(* ---------------------------------------------------------- forecast-demo *)

let forecast_demo () =
  let signal = Array.init 80 (fun i -> if i < 40 then 0.9 else 0.3) in
  let forecaster = Forecast.adaptive ~fallback:1.0 () in
  Array.iteri
    (fun i v ->
      let predicted = Forecast.predict forecaster in
      Forecast.observe forecaster v;
      if i mod 8 = 0 then Printf.printf "t=%2d  predicted %.3f  observed %.3f\n" i predicted v)
    signal;
  Printf.printf "ensemble MAE over the run: %.4f\n" (Forecast.mae forecaster);
  List.iter
    (fun (name, mse) -> Printf.printf "  member %-10s mse %.5f\n" name mse)
    (Forecast.members forecaster)

let forecast_cmd =
  Cmd.v (Cmd.info "forecast-demo" ~doc:"Show the NWS-style adaptive forecaster on a step signal")
    Term.(const forecast_demo $ const ())

let () =
  let info = Cmd.info "aspipe" ~version:"1.0.0" ~doc:"Adaptive parallel pipeline pattern for grids" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; experiment_cmd; campaign_cmd; simulate_cmd; serve_cmd; trace_export_cmd; metrics_cmd; faults_cmd;
            farm_cmd; replicate_cmd; calibrate_cmd; forecast_cmd; export_pepa_cmd;
          ]))
