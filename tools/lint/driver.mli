(** Tree scan + reporting. *)

type options = {
  root : string;  (** repository root *)
  roots : string list;  (** scan roots relative to [root] *)
  rules : string list option;  (** run only these rule ids; ["syntax"] is always on *)
  severities : (string * Finding.severity option) list;
      (** per-rule severity overrides; [None] switches the rule off *)
}

val default : options
(** Root ["."], roots [Config.scan_roots], all rules at error severity. *)

val check_source : options -> path:string -> string -> Finding.t list
(** Lint one in-memory source under [options]; [path] is the
    root-relative name the rule scopes key on. *)

type report = { files_scanned : int; findings : Finding.t list }

val scan : options -> report
(** Walk the scan roots (deterministic order) and lint every .ml/.mli.
    @raise Failure when a scan root is missing. *)

val errors : report -> int
val warnings : report -> int
val summary_line : report -> string
val render_text : report -> string
val render_json : options -> report -> string
