(** Tree scan + reporting. *)

type options = {
  root : string;  (** repository root *)
  roots : string list;  (** scan roots relative to [root] *)
  rules : string list option;  (** run only these rule ids; ["syntax"] is always on *)
  severities : (string * Finding.severity option) list;
      (** per-rule severity overrides; [None] switches the rule off *)
  typed : bool;  (** also run the Typedtree pass (R8..R10) over .cmt files *)
  cmt_root : string option;
      (** where to look for .cmt files; default [<root>/_build/default] *)
}

val default : options
(** Root ["."], roots [Config.scan_roots], all rules at error severity,
    typed pass off. *)

val check_source : options -> path:string -> string -> Finding.t list
(** Lint one in-memory source (syntactic pass only); [path] is the
    root-relative name the rule scopes key on. *)

type report = {
  files_scanned : int;
  typed_ran : bool;  (** the typed pass analysed at least one unit *)
  typed_units : int;
  findings : Finding.t list;
}

val scan : options -> report
(** Walk the scan roots (deterministic order), lint every .ml/.mli, run
    the typed pass when [typed] is set, and append W1 unused-waiver
    findings. @raise Failure when a scan root is missing. *)

val errors : report -> int
val warnings : report -> int

val internal_failures : report -> int
(** Findings with rule ["syntax"] or ["internal"]: infrastructure
    failures, mapped to exit code 2. *)

val exit_code : report -> int
(** 2 on internal failures, 1 on error-severity findings, else 0. *)

val summary_line : report -> string
val render_text : report -> string
val render_json : options -> report -> string
val render_sarif : report -> string
