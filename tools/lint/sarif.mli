(** SARIF 2.1.0 export, built as [Aspipe_obs.Json.t] so it round-trips
    through [Json.of_string]. *)

val of_findings : Finding.t list -> Aspipe_obs.Json.t
val render : Finding.t list -> string
