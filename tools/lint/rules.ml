(* The rule catalogue. Every rule has a stable id (used in reports and
   severity overrides) and a waiver slug: a comment

     (* lint: <slug> <justification> *)

   on the flagged line or the line directly above suppresses the finding.
   The scopes and allowlists each rule closes over live in [Config]; the
   catalogue here is what `--list-rules` and DESIGN.md document. *)

type t = {
  id : string;
  name : string;
  slug : string;  (* waiver token *)
  summary : string;
}

let all =
  [
    {
      id = "R1";
      name = "no-wall-clock";
      slug = "wall-clock-ok";
      summary =
        "virtual-time code must not read the wall clock \
         (Unix.gettimeofday/Unix.time/Sys.time); only the runner and the \
         direct-execution engines (lib/runner/, lib/skel/skel_mc.ml, \
         lib/exp/exp_mc.ml) measure real elapsed time";
    };
    {
      id = "R2";
      name = "deterministic-iteration";
      slug = "unordered-ok";
      summary =
        "Hashtbl.iter/Hashtbl.fold walk in hash order; the enclosing \
         structure-level binding must sort the result (List.sort/Array.sort) \
         before anything renders it";
    };
    {
      id = "R3";
      name = "no-raw-print";
      slug = "raw-print-ok";
      summary =
        "library code prints only through Aspipe_util.Out (so --jobs N \
         capture stays byte-identical with --jobs 1); stdout printers are \
         allowed only in lib/util/out.ml";
    };
    {
      id = "R4";
      name = "guarded-hot-emit";
      slug = "unguarded-emit-ok";
      summary =
        "per-item Bus.emit call sites must sit under an `if Bus.active ...` \
         (or `when Bus.active ...`) guard; sparse control events \
         (crash/recovery, adaptation decisions, failover) are exempt";
    };
    {
      id = "R5";
      name = "domain-safety";
      slug = "shared-state-ok";
      summary =
        "structure-level ref/Hashtbl.create/Buffer.create/Queue.create \
         /Chan.create/Spsc.create bindings in lib/ are state shared across \
         campaign worker domains; they must be Atomic.t, Domain.DLS, or \
         created per run";
    };
    {
      id = "R6";
      name = "banned-construct";
      slug = "banned-ok";
      summary =
        "Obj.magic/Obj.repr, Random.self_init and physical (in)equality \
         (==/!=) are banned: each one breaks reproducibility or type safety";
    };
    {
      id = "R7";
      name = "guarded-prof-record";
      slug = "unguarded-prof-ok";
      summary =
        "profiler probes (Prof.record/Prof.record_gc) in lib/ must sit \
         under an `if Prof.enabled () ...` (or `when Prof.enabled () ...`) \
         guard so profiler-off runs never build span arguments; lib/prof/ \
         itself re-checks the flag and is exempt";
    };
  ]

let find id = List.find_opt (fun r -> r.id = id) all

let get id =
  match find id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Rules.get: unknown rule %S" id)

let ids = List.map (fun r -> r.id) all
