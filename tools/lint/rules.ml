(* The rule catalogue. Every rule has a stable id (used in reports and
   severity overrides) and a waiver slug: a comment

     (* lint: <slug> <justification> *)

   on the flagged line or the line directly above suppresses the finding.
   The scopes and allowlists each rule closes over live in [Config]; the
   catalogue here is what `--list-rules` and DESIGN.md document. *)

type t = {
  id : string;
  name : string;
  slug : string;  (* waiver token *)
  summary : string;
}

let all =
  [
    {
      id = "R1";
      name = "no-wall-clock";
      slug = "wall-clock-ok";
      summary =
        "virtual-time code must not read the wall clock \
         (Unix.gettimeofday/Unix.time/Sys.time); only the runner and the \
         direct-execution engines (lib/runner/, lib/skel/skel_mc.ml, \
         lib/exp/exp_mc.ml) measure real elapsed time";
    };
    {
      id = "R2";
      name = "deterministic-iteration";
      slug = "unordered-ok";
      summary =
        "Hashtbl.iter/Hashtbl.fold walk in hash order; the enclosing \
         structure-level binding must sort the result (List.sort/Array.sort) \
         before anything renders it";
    };
    {
      id = "R3";
      name = "no-raw-print";
      slug = "raw-print-ok";
      summary =
        "library code prints only through Aspipe_util.Out (so --jobs N \
         capture stays byte-identical with --jobs 1); stdout printers are \
         allowed only in lib/util/out.ml";
    };
    {
      id = "R4";
      name = "guarded-hot-emit";
      slug = "unguarded-emit-ok";
      summary =
        "per-item Bus.emit call sites must sit under an `if Bus.active ...` \
         (or `when Bus.active ...`) guard; sparse control events \
         (crash/recovery, adaptation decisions, failover) are exempt";
    };
    {
      id = "R5";
      name = "domain-safety";
      slug = "shared-state-ok";
      summary =
        "structure-level ref/Hashtbl.create/Buffer.create/Queue.create \
         /Chan.create/Spsc.create bindings in lib/ are state shared across \
         campaign worker domains; they must be Atomic.t, Domain.DLS, or \
         created per run";
    };
    {
      id = "R6";
      name = "banned-construct";
      slug = "banned-ok";
      summary =
        "Obj.magic/Obj.repr, Random.self_init and physical (in)equality \
         (==/!=) are banned: each one breaks reproducibility or type safety";
    };
    {
      id = "R7";
      name = "guarded-prof-record";
      slug = "unguarded-prof-ok";
      summary =
        "profiler probes (Prof.record/Prof.record_gc) in lib/ must sit \
         under an `if Prof.enabled () ...` (or `when Prof.enabled () ...`) \
         guard so profiler-off runs never build span arguments; lib/prof/ \
         itself re-checks the flag and is exempt";
    };
    {
      id = "R8";
      name = "mutable-escape";
      slug = "domain-shared-ok";
      summary =
        "[typed] an ambient mutable location (ref, Hashtbl, array, Buffer, \
         mutable record) that is written and reachable from a Domain.spawn \
         worker body is shared across domains without synchronisation; make \
         it Atomic.t/Domain.DLS, guard it with a Mutex field, or keep it out \
         of spawned closures — subsumes and de-syntactifies R5";
    };
    {
      id = "R9";
      name = "spsc-discipline";
      slug = "spsc-ok";
      summary =
        "[typed] each Spsc.create ring must keep its push* call sites in at \
         most one spawn context and its pop* call sites in at most one spawn \
         context along the call graph — the lock-free ring is only correct \
         under single-producer/single-consumer usage";
    };
    {
      id = "R10";
      name = "job-purity";
      slug = "impure-job-ok";
      summary =
        "[typed] registry job closures and stage functions handed to \
         Skel_sim/Skel_mc/Farm_mc/Common.par_map must not write any ambient \
         mutable location (module state or captured locals) except through \
         the sanctioned Aspipe_util.Out capture and Atomic/DLS cells — the \
         static underwriting of the jobs-1 ≡ jobs-N determinism contract";
    };
    {
      id = "W1";
      name = "unused-waiver";
      slug = "unused-waiver-ok";
      summary =
        "a `(* lint: <slug> ... *)` comment whose rule never fires at that \
         site is dead and could mask a future regression; delete it (only \
         slugs of rules that actually ran in the pass are considered, so a \
         typed-rule waiver survives a syntactic-only scan)";
    };
  ]

(* Bumped whenever a rule is added, removed or renamed; reported in the
   JSON and SARIF outputs so archived reports are comparable. v1 = R1..R7
   (PR 5/6), v2 adds the typed rules R8..R10 and W1. *)
let catalogue_version = 2

let find id = List.find_opt (fun r -> r.id = id) all

let get id =
  match find id with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Rules.get: unknown rule %S" id)

let ids = List.map (fun r -> r.id) all

(* The rules whose findings only the cmt-based pass can produce: their
   waiver slugs are exempt from W1 when the typed pass did not run. *)
let typed_ids = [ "R8"; "R9"; "R10" ]
let slugs = List.map (fun r -> r.slug) all
let slug_of_rule id = (get id).slug
