(* Typedtree helpers shared by the typed analyses (R8..R10).

   Everything here keys on *resolved* [Path.t]s — the payoff of running on
   the Typedtree instead of the Parsetree: `module S = Aspipe_util.Spsc`
   followed by `S.push` still resolves to a path whose suffix is
   [Spsc.push], so the analyses see through aliases, opens and dune's
   `Lib__Module` name mangling. *)

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply (a, b) -> flatten_path a @ flatten_path b
  | Path.Pextra_ty (p, _) -> flatten_path p

(* Dune mangles wrapped-library modules to `Lib__Module`; the short name is
   the part after the last "__" ("Aspipe_util__Spsc" -> "Spsc",
   "Dune__exe__Aspipe_cli" -> "Aspipe_cli"). *)
let short_module_name m =
  let n = String.length m in
  let rec last_sep i acc =
    if i + 1 >= n then acc
    else if m.[i] = '_' && m.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) acc
  in
  match last_sep 0 None with Some j when j < n -> String.sub m j (n - j) | _ -> m

let ends_with ~suffix parts =
  let np = List.length parts and ns = List.length suffix in
  np >= ns && List.filteri (fun i _ -> i >= np - ns) parts = suffix

let matches_any suffixes parts = List.exists (fun s -> ends_with ~suffix:s parts) suffixes

(* The first positional (unlabelled) argument of an application. *)
let first_positional args =
  List.find_map
    (function Asttypes.Nolabel, Some e -> Some (e : Typedtree.expression) | _ -> None)
    args

let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some e -> Some (e : Typedtree.expression) | _ -> None)
    args

(* [e] stripped of coercions/constraints recorded in [exp_extra]. The
   typedtree stores them as wrappers in extras, so the description itself
   is already the underlying expression — this is a hook point, kept for
   clarity at call sites. *)
let strip (e : Typedtree.expression) = e

(* Head application: [Some (path-parts, args)] when [e] is
   [f a1 ... an] with [f] an identifier. *)
let head_apply (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_apply ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, args) ->
      Some (flatten_path p, args)
  | _ -> None

(* The ident bound by a simple [let x = ...] pattern, if any. *)
let pattern_var (p : Typedtree.pattern) =
  match p.pat_desc with
  | Typedtree.Tpat_var (id, _) -> Some id
  | Typedtree.Tpat_alias ({ pat_desc = Typedtree.Tpat_any; _ }, id, _) -> Some id
  | _ -> None

(* Unique hashtable key for an ident (name + stamp). *)
let ident_key id = Ident.unique_name id

(* Walk every expression of [root] with [f]; [f] sees each node before its
   children. *)
let iter_expressions f (root : Typedtree.expression) =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it root

(* Does the expression [e] contain [sub] (physical identity on nodes)?
   Used to test whether a use site falls inside a spawn-argument subtree. *)
let contains (e : Typedtree.expression) (sub : Typedtree.expression) =
  let found = ref false in
  iter_expressions (fun x -> if x == sub then found := true) e;
  !found

(* Peel a lambda chain down to its body: [fun ~a b -> e] yields the
   labelled parameter idents in order plus [e]. Only simple-variable
   parameters are named; a pattern parameter keeps its slot with [None].
   The chain stops at the first multi-case [function] or optional
   argument with a default (whose desugaring inserts a [let]) — callers
   treat the unseen tail conservatively. *)
let rec lambda_params (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_function { arg_label; cases = [ { c_lhs; c_rhs; c_guard = None } ]; _ } ->
      let params, body = lambda_params c_rhs in
      ((arg_label, pattern_var c_lhs) :: params, body)
  | _ -> ([], e)

let is_function (e : Typedtree.expression) =
  match e.exp_desc with Typedtree.Texp_function _ -> true | _ -> false
