(* SARIF 2.1.0 export. The log is built as an [Aspipe_obs.Json.t] value —
   the same minimal JSON the rest of the tree uses — so it round-trips
   through [Json.of_string] and tests can introspect it without an
   external JSON dependency. Only the fields CI viewers actually read are
   emitted: driver name/version, the rule catalogue, and one result per
   finding with a physical location (SARIF columns are 1-based). *)

open Aspipe_obs

let schema = "https://json.schemastore.org/sarif-2.1.0.json"

let rule_json (r : Rules.t) =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("name", Json.String r.name);
      ("shortDescription", Json.Obj [ ("text", Json.String r.summary) ]);
    ]

let level (s : Finding.severity) =
  match s with Finding.Error -> "error" | Finding.Warning -> "warning"

let result_json (f : Finding.t) =
  Json.Obj
    [
      ("ruleId", Json.String f.rule);
      ("level", Json.String (level f.severity));
      ("message", Json.Obj [ ("text", Json.String f.message) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    [
                      ( "artifactLocation",
                        Json.Obj [ ("uri", Json.String f.file) ] );
                      ( "region",
                        Json.Obj
                          [
                            ("startLine", Json.Int (max 1 f.line));
                            ("startColumn", Json.Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]

let of_findings findings =
  Json.Obj
    [
      ("$schema", Json.String schema);
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "aspipe-lint");
                            ( "version",
                              Json.String
                                (string_of_int Rules.catalogue_version) );
                            ("rules", Json.List (List.map rule_json Rules.all));
                          ] );
                    ] );
                ("results", Json.List (List.map result_json findings));
              ];
          ] );
    ]

let render findings = Json.to_string (of_findings findings) ^ "\n"
