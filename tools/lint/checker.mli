(** The per-file AST walk implementing the syntactic rules R1..R7. *)

val check : ?waivers:Waivers.t -> path:string -> string -> Finding.t list
(** [check ~path source] parses [source] ([Parse.interface] when [path]
    ends in [.mli], [Parse.implementation] otherwise) and returns the
    waiver-filtered findings, sorted by location. [path] must be the
    root-relative, '/'-separated path: rule scopes and allowlists key on
    it. All findings come back at [Error] severity; the driver applies
    severity overrides. Unparseable input yields one ["syntax"] finding.
    [waivers] lets the driver share one usage-tracked table between this
    pass, the typed pass and W1; by default the source is scanned afresh. *)
