(** The per-file AST walk implementing rules R1..R6. *)

val check : path:string -> string -> Finding.t list
(** [check ~path source] parses [source] ([Parse.interface] when [path]
    ends in [.mli], [Parse.implementation] otherwise) and returns the
    waiver-filtered findings, sorted by location. [path] must be the
    root-relative, '/'-separated path: rule scopes and allowlists key on
    it. All findings come back at [Error] severity; the driver applies
    severity overrides. Unparseable input yields one ["syntax"] finding. *)
