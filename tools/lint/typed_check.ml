(* The typed (Typedtree) pass: interprocedural analyses R8..R10 over a
   whole-library call graph.

   The pass works on *mentions*: each top-level value's body contributes
   an edge to every other top-level value it names, keyed by
   "<short parent module>.<name>" so cross-unit [Pdot] references and
   same-unit [Pident] references land on the same node. Dynamic dispatch
   (a closure passed as a value and called elsewhere) contributes no
   edge — the analyses under-approximate reachability and say so in
   DESIGN.md's soundness caveats.

   R8  mutable-escape: a location allocated by a mutable head (ref,
       Hashtbl.create, Array.make, mutable record literal, ...) is
       flagged when it is (a) unsynchronized, (b) written somewhere, and
       (c) mention-reachable from a [Domain.spawn] body. A second, local
       form flags a function-local mutable captured by a spawned closure
       when one context writes it and another context also touches it
       (a replicated spawn counts as two contexts by itself).

   R9  spsc-discipline: for each [let r = Spsc.create ...], the push*
       call sites on [r] must sit in at most one spawn context, and the
       pop* call sites likewise, following [r] through calls to known
       top-level functions via per-parameter summaries. A ring that
       escapes into an unknown function is skipped silently.

   R10 job-purity: registry job closures and closure arguments at stage
       call heads must not write ambient mutable locations — neither
       module-level ones (transitively, through the mention graph) nor
       locals captured from the enclosing function. *)

module SS = Set.Make (String)

type input = { unit_ : Typed_load.unit_input; waivers : Waivers.t }

type lkind = Plain | Mutable_loc | Sync_loc

type gdef = {
  key : string option;  (* None for `let () = ...` and pattern bindings *)
  path : string;
  line : int;
  col : int;
  kind : lkind;
  body : Typedtree.expression;
  waivers : Waivers.t;
  ident_map : (string, string) Hashtbl.t;  (* unit top-level ident -> key *)
  in_registry : bool;
  in_job_scope : bool;
}

type spawn = {
  sp_path : string;
  sp_line : int;
  sp_col : int;
  sp_replicated : bool;  (* under a replicating iterator: N identical domains *)
  sp_bodies : Typedtree.expression list;  (* closure bodies run on the new domain *)
  sp_seeds : SS.t;  (* global keys those bodies mention *)
}

type ring = { r_ident : string; r_name : string; r_line : int; r_col : int }

type root = {
  rt_line : int;
  rt_col : int;
  rt_desc : string;
  rt_exprs : Typedtree.expression list;
}

(* Everything one body analysis produces. *)
type danal = {
  d : gdef;
  mentions : SS.t;
  gwrites : (string * Typedtree.expression) list;  (* global key, write node *)
  lwrites : (string * Typedtree.expression) list;  (* local ident key, node *)
  lment_count : (string, int) Hashtbl.t;  (* local ident key -> #mentions *)
  lmuts : (string * (string * int * int * Typedtree.expression)) list;
      (* local ident key -> name, line, col, defining rhs *)
  lclosures : (string, Typedtree.expression) Hashtbl.t;
  spawns : spawn list;  (* pre-order: outermost first *)
  rings : ring list;
  roots : root list;
}

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

(* ------------------------------------------------- location classification *)

let classify (e : Typedtree.expression) =
  match Tast_util.head_apply e with
  | Some (parts, _) ->
      if Tast_util.matches_any Config.sync_heads parts then Sync_loc
      else if Tast_util.matches_any Config.mutable_heads parts then Mutable_loc
      else Plain
  | None -> (
      match e.exp_desc with
      | Typedtree.Texp_record { fields; _ } ->
          let mut =
            Array.exists (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable) fields
          in
          if not mut then Plain
          else
            let guarded =
              Array.exists
                (fun (_, def) ->
                  match def with
                  | Typedtree.Overridden (_, fe) -> (
                      match Tast_util.head_apply fe with
                      | Some (parts, _) ->
                          Tast_util.matches_any Config.mutex_guard_heads parts
                      | None -> false)
                  | Typedtree.Kept _ -> false)
                fields
            in
            if guarded then Sync_loc else Mutable_loc
      | Typedtree.Texp_array _ -> Mutable_loc
      | _ -> Plain)

(* ------------------------------------------------------- def collection *)

let collect_unit (inp : input) ~on_def =
  let u = inp.unit_ in
  let in_registry = List.mem u.path Config.job_registry_files in
  let in_job_scope = Config.job_purity_scope u.path in
  let ident_map = Hashtbl.create 32 in
  let mk ?key ~loc body =
    let line, col = line_col loc in
    on_def
      {
        key; path = u.path; line; col; kind = classify body; body;
        waivers = inp.waivers; ident_map; in_registry; in_job_scope;
      }
  in
  let rec items parent strs =
    List.iter
      (fun (si : Typedtree.structure_item) ->
        match si.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match Tast_util.pattern_var vb.vb_pat with
                | Some id ->
                    let key = parent ^ "." ^ Ident.name id in
                    Hashtbl.replace ident_map (Tast_util.ident_key id) key;
                    mk ~key ~loc:vb.vb_pat.pat_loc vb.vb_expr
                | None -> mk ~loc:vb.vb_pat.pat_loc vb.vb_expr)
              vbs
        | Typedtree.Tstr_eval (e, _) -> mk ~loc:e.exp_loc e
        | Typedtree.Tstr_module mb -> submodule mb
        | Typedtree.Tstr_recmodule mbs -> List.iter submodule mbs
        | _ -> ())
      strs
  and submodule (mb : Typedtree.module_binding) =
    let name =
      match mb.mb_id with
      | Some id -> Ident.name id
      | None -> ( match mb.mb_name.txt with Some n -> n | None -> "_")
    in
    let rec mexpr (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Typedtree.Tmod_structure s -> items name s.str_items
      | Typedtree.Tmod_constraint (inner, _, _, _) -> mexpr inner
      | _ -> ()
    in
    mexpr mb.mb_expr
  in
  items u.modname u.structure.str_items

(* --------------------------------------------------------- name resolution *)

(* Resolve a use of [p] to a global key: same-unit references are [Pident]
   and go through the unit's ident map; cross-unit references are [Pdot]
   and key on the last two path components (mangling stripped). *)
let resolver kind_of (d : gdef) (p : Path.t) =
  match p with
  | Path.Pident id -> Hashtbl.find_opt d.ident_map (Tast_util.ident_key id)
  | _ -> (
      match List.rev (Tast_util.flatten_path p) with
      | name :: m :: _ ->
          let key = Tast_util.short_module_name m ^ "." ^ name in
          if Hashtbl.mem kind_of key then Some key else None
      | _ -> None)

(* ------------------------------------------------------- per-def analysis *)

let is_spsc_neutral parts =
  (* Any other Spsc operation (close_push, length, ...) neither pushes nor
     pops but is a legitimate, accounted use of the ring. *)
  match List.rev parts with _ :: m :: _ -> m = "Spsc" | _ -> false

let collect_lets (d : gdef) lclosures lmuts rings =
  Tast_util.iter_expressions
    (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_let (_, vbs, _) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match Tast_util.pattern_var vb.vb_pat with
              | None -> ()
              | Some id ->
                  let k = Tast_util.ident_key id in
                  if Tast_util.is_function vb.vb_expr then
                    Hashtbl.replace lclosures k vb.vb_expr;
                  (match Tast_util.head_apply vb.vb_expr with
                  | Some (parts, _)
                    when Tast_util.ends_with ~suffix:Config.spsc_create_suffix parts ->
                      let line, col = line_col vb.vb_pat.pat_loc in
                      rings :=
                        { r_ident = k; r_name = Ident.name id; r_line = line; r_col = col }
                        :: !rings
                  | _ -> ());
                  if classify vb.vb_expr = Mutable_loc then begin
                    let line, col = line_col vb.vb_pat.pat_loc in
                    lmuts := (k, (Ident.name id, line, col, vb.vb_expr)) :: !lmuts
                  end)
            vbs
      | _ -> ())
    d.body

(* Spawn sites, with replication flags and closure-body routing: the arg
   of [Domain.spawn worker] is just an ident, so the spawned code is the
   local closure [worker] — and transitively any local closure those
   bodies mention, so writes inside helpers called from the domain are
   attributed to the spawn context. *)
let collect_spawns (d : gdef) resolve lclosures =
  let spawns = ref [] in
  let repl = ref false in
  let closure_of (e : Typedtree.expression) =
    match e.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) ->
        Hashtbl.find_opt lclosures (Tast_util.ident_key id)
    | _ -> None
  in
  let bodies_and_seeds arg =
    let seen = Hashtbl.create 8 in
    let bodies = ref [] and seeds = ref SS.empty in
    let rec add (e : Typedtree.expression) =
      if not (Hashtbl.mem seen e.exp_loc) then begin
        Hashtbl.replace seen e.exp_loc ();
        bodies := e :: !bodies;
        Tast_util.iter_expressions
          (fun x ->
            match x.Typedtree.exp_desc with
            | Typedtree.Texp_ident (p, _, _) -> (
                (match resolve p with Some k -> seeds := SS.add k !seeds | None -> ());
                match closure_of x with Some b -> add b | None -> ())
            | _ -> ())
          e
      end
    in
    add (match closure_of arg with Some b -> b | None -> arg);
    (List.rev !bodies, !seeds)
  in
  let expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
    match Tast_util.head_apply e with
    | Some (parts, args) when Tast_util.matches_any Config.spawn_heads parts ->
        (match Tast_util.first_positional args with
        | Some arg ->
            let bodies, seeds = bodies_and_seeds arg in
            let line, col = line_col e.exp_loc in
            spawns :=
              {
                sp_path = d.path; sp_line = line; sp_col = col;
                sp_replicated = !repl; sp_bodies = bodies; sp_seeds = seeds;
              }
              :: !spawns
        | None -> ());
        Tast_iterator.default_iterator.expr self e
    | Some (parts, _) when Tast_util.matches_any Config.replicating_heads parts -> (
        match e.exp_desc with
        | Typedtree.Texp_apply (fn, args) ->
            self.expr self fn;
            List.iter
              (fun (_, a) ->
                match a with
                | Some (a : Typedtree.expression) when Tast_util.is_function a ->
                    let saved = !repl in
                    repl := true;
                    self.expr self a;
                    repl := saved
                | Some a -> self.expr self a
                | None -> ())
              args
        | _ -> Tast_iterator.default_iterator.expr self e)
    | _ -> Tast_iterator.default_iterator.expr self e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it d.body;
  List.rev !spawns

let write_target resolve kind_of (target : Typedtree.expression) =
  match target.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> (
      match resolve p with
      | Some k ->
          if Hashtbl.find_opt kind_of k = Some Mutable_loc then `Global k else `None
      | None -> (
          match p with
          | Path.Pident id -> `Local (Tast_util.ident_key id)
          | _ -> `None))
  | _ -> `None

let analyze_def (d : gdef) resolve kind_of =
  let lclosures = Hashtbl.create 8 in
  let lmuts = ref [] and rings = ref [] in
  collect_lets d lclosures lmuts rings;
  let spawns = collect_spawns d resolve lclosures in
  let mentions = ref SS.empty in
  let gwrites = ref [] and lwrites = ref [] in
  let lment_count = Hashtbl.create 32 in
  let roots = ref [] in
  let record_write target node =
    match write_target resolve kind_of target with
    | `Global k -> gwrites := (k, node) :: !gwrites
    | `Local lk -> lwrites := (lk, node) :: !lwrites
    | `None -> ()
  in
  Tast_util.iter_expressions
    (fun e ->
      match e.Typedtree.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> (
          (match resolve p with
          | Some k -> mentions := SS.add k !mentions
          | None -> ());
          match p with
          | Path.Pident id ->
              let k = Tast_util.ident_key id in
              Hashtbl.replace lment_count k
                (1 + Option.value ~default:0 (Hashtbl.find_opt lment_count k))
          | _ -> ())
      | Typedtree.Texp_setfield (obj, _, _, _) -> record_write obj e
      | Typedtree.Texp_apply _ -> (
          match Tast_util.head_apply e with
          | Some (parts, args) when Tast_util.matches_any Config.write_op_suffixes parts
            -> (
              match Tast_util.first_positional args with
              | Some target -> record_write target e
              | None -> ())
          | Some (parts, args)
            when d.in_job_scope && Tast_util.matches_any Config.stage_head_suffixes parts
            ->
              let line, col = line_col e.exp_loc in
              let head = String.concat "." parts in
              roots :=
                {
                  rt_line = line; rt_col = col;
                  rt_desc = Printf.sprintf "stage argument of %s" head;
                  rt_exprs = Tast_util.positional_args args;
                }
                :: !roots
          | _ -> ())
      | Typedtree.Texp_record { fields; _ } when d.in_registry ->
          Array.iter
            (fun ((ld : Types.label_description), def) ->
              match def with
              | Typedtree.Overridden (_, fe)
                when List.mem ld.lbl_name Config.job_field_names ->
                  let line, col = line_col fe.exp_loc in
                  roots :=
                    {
                      rt_line = line; rt_col = col;
                      rt_desc = Printf.sprintf "registry job field `%s`" ld.lbl_name;
                      rt_exprs = [ fe ];
                    }
                    :: !roots
              | _ -> ())
            fields
      | _ -> ())
    d.body;
  {
    d;
    mentions = !mentions;
    gwrites = !gwrites;
    lwrites = !lwrites;
    lment_count;
    lmuts = !lmuts;
    lclosures;
    spawns;
    rings = List.rev !rings;
    roots = List.rev !roots;
  }

(* -------------------------------------------------------- spawn contexts *)

type tok =
  | TCreator
  | TSpawn of int * int * bool  (* line, col, replicated *)
  | TCallee of int * int  (* call-site line/col of a summarised callee that
                             spawns internally: a distinct, unreplicated context *)

let tok_key = function
  | TCreator -> "c"
  | TSpawn (l, c, _) -> Printf.sprintf "s%d:%d" l c
  | TCallee (l, c) -> Printf.sprintf "k%d:%d" l c

let tok_weight = function TSpawn (_, _, true) -> 2 | _ -> 1

let ctx_of spawns node =
  match
    List.find_opt
      (fun s -> List.exists (fun b -> Tast_util.contains b node) s.sp_bodies)
      spawns
  with
  | Some s -> TSpawn (s.sp_line, s.sp_col, s.sp_replicated)
  | None -> TCreator

let in_spawn spawns node = ctx_of spawns node <> TCreator

let effective_contexts toks =
  let tbl = Hashtbl.create 8 in
  List.iter (fun t -> Hashtbl.replace tbl (tok_key t) t) toks;
  Hashtbl.fold (fun _ t acc -> acc + tok_weight t) tbl 0

(* ------------------------------------------------------ reporting helpers *)

let report acc (waivers : Waivers.t) ~rule ~file ~line ~col message =
  if not (Waivers.allows waivers ~line ~slug:(Rules.slug_of_rule rule)) then
    acc :=
      { Finding.rule; severity = Finding.Error; file; line; col; message } :: !acc

(* A location-level waiver excludes the location from every typed rule:
   either the typed slug or R5's syntactic one works, so an existing
   justified `shared-state-ok` keeps covering the same site. *)
let loc_waived (g : gdef) =
  let a = Waivers.allows g.waivers ~line:g.line ~slug:"domain-shared-ok" in
  let b = Waivers.allows g.waivers ~line:g.line ~slug:"shared-state-ok" in
  a || b

(* --------------------------------------------------------------- R8 global *)

(* BFS over the mention graph from every spawn's seed set; [origin] maps a
   reached key to (parent key on the shortest path, seeding spawn). *)
let domain_reach (danals : danal list) edges =
  let origin = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun a ->
      List.iter
        (fun s ->
          SS.iter
            (fun k ->
              if not (Hashtbl.mem origin k) then begin
                Hashtbl.replace origin k (None, s);
                Queue.add k queue
              end)
            s.sp_seeds)
        a.spawns)
    danals;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    let _, s = Hashtbl.find origin k in
    SS.iter
      (fun k' ->
        if not (Hashtbl.mem origin k') then begin
          Hashtbl.replace origin k' (Some k, s);
          Queue.add k' queue
        end)
      (Option.value ~default:SS.empty (Hashtbl.find_opt edges k))
  done;
  origin

let chain_to origin k =
  let rec up k acc n =
    if n > 4 then "..." :: acc
    else
      match Hashtbl.find_opt origin k with
      | Some (Some p, _) -> up p (p :: acc) (n + 1)
      | _ -> acc
  in
  up k [] 0

let check_r8_globals acc danals kind_of loc_def edges =
  let written =
    List.fold_left
      (fun s a -> List.fold_left (fun s (k, _) -> SS.add k s) s a.gwrites)
      SS.empty danals
  in
  let origin = domain_reach danals edges in
  Hashtbl.iter
    (fun k kind ->
      if kind = Mutable_loc && SS.mem k written then
        match Hashtbl.find_opt origin k with
        | None -> ()
        | Some (_, s) -> (
            match Hashtbl.find_opt loc_def k with
            | None -> ()
            | Some g ->
                if not (loc_waived g) then
                  let via =
                    match chain_to origin k with
                    | [] -> ""
                    | path -> Printf.sprintf " via %s" (String.concat " -> " path)
                  in
                  report acc g.waivers ~rule:"R8" ~file:g.path ~line:g.line ~col:g.col
                    (Printf.sprintf
                       "`%s` is an unsynchronized mutable location written in this \
                        tree and reachable from the domain spawned at %s:%d%s; make \
                        it Atomic.t/Domain.DLS or keep it out of spawned closures \
                        (waive with `(* lint: domain-shared-ok ... *)`)"
                       k s.sp_path s.sp_line via))
    )
    kind_of

(* ---------------------------------------------------------------- R8 local *)

let check_r8_locals acc (a : danal) =
  List.iter
    (fun (lk, (name, line, col, _)) ->
      let write_nodes = List.filter (fun (k, _) -> k = lk) a.lwrites in
      if write_nodes <> [] then begin
        let write_toks = List.map (fun (_, n) -> ctx_of a.spawns n) write_nodes in
        (* Every mention is a touch; the write targets are mentions too, so
           the write contexts are automatically included. *)
        let touch_toks = ref [] in
        Tast_util.iter_expressions
          (fun e ->
            match e.Typedtree.exp_desc with
            | Typedtree.Texp_ident (Path.Pident id, _, _)
              when Tast_util.ident_key id = lk ->
                touch_toks := ctx_of a.spawns e :: !touch_toks
            | _ -> ())
          a.d.body;
        let spawn_touched =
          List.exists (function TSpawn _ -> true | _ -> false) !touch_toks
        in
        if spawn_touched && effective_contexts !touch_toks >= 2 then
          let sp =
            match
              List.find_opt (function TSpawn _ -> true | _ -> false)
                (write_toks @ !touch_toks)
            with
            | Some (TSpawn (l, _, _)) -> Printf.sprintf "%s:%d" a.d.path l
            | _ -> "?"
          in
          if not (Waivers.allows a.d.waivers ~line ~slug:"shared-state-ok") then
            report acc a.d.waivers ~rule:"R8" ~file:a.d.path ~line ~col
              (Printf.sprintf
                 "local mutable `%s` is written in one domain context and touched \
                  in another (spawn at %s); share it through a ring or Atomic, or \
                  waive with `(* lint: domain-shared-ok ... *)` if accesses are \
                  disjoint or ordered by join"
                 name sp)
      end)
    a.lmuts

(* ------------------------------------------------------------ R9 summaries *)

type pinfo = {
  mutable push_d : bool;  (* pushes in the caller's own context *)
  mutable push_s : bool;  (* pushes inside a spawn of its own *)
  mutable pop_d : bool;
  mutable pop_s : bool;
  mutable esc : bool;  (* flows somewhere the analysis cannot follow *)
}

let fresh_pinfo () = { push_d = false; push_s = false; pop_d = false; pop_s = false; esc = false }

type summary = { params : (Asttypes.arg_label * string option) list; infos : pinfo array }

(* Match a call-site argument list against a summary's parameter list:
   labelled arguments by label name, positional ones in order. *)
let param_index (s : summary) (label : Asttypes.arg_label) ~pos_index =
  let labelled name =
    let rec find i = function
      | [] -> None
      | (Asttypes.Labelled l, _) :: _ when l = name -> Some i
      | (Asttypes.Optional l, _) :: _ when l = name -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 s.params
  in
  match label with
  | Asttypes.Nolabel ->
      let rec find i seen = function
        | [] -> None
        | (Asttypes.Nolabel, _) :: _ when seen = pos_index -> Some i
        | (Asttypes.Nolabel, _) :: rest -> find (i + 1) (seen + 1) rest
        | _ :: rest -> find (i + 1) seen rest
      in
      find 0 0 s.params
  | Asttypes.Labelled l | Asttypes.Optional l -> labelled l

let build_summaries (danals : danal list) resolve_for =
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 64 in
  let bodies = Hashtbl.create 64 in
  List.iter
    (fun (a : danal) ->
      match a.d.key with
      | Some k ->
          let params, body = Tast_util.lambda_params a.d.body in
          if params <> [] then begin
            let params =
              List.map
                (fun (l, id) -> (l, Option.map Tast_util.ident_key id))
                params
            in
            Hashtbl.replace summaries k
              { params; infos = Array.init (List.length params) (fun _ -> fresh_pinfo ()) };
            Hashtbl.replace bodies k (a, body)
          end
      | None -> ())
    danals;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 6 do
    changed := false;
    incr rounds;
    Hashtbl.iter
      (fun k (a, body) ->
        let s = Hashtbl.find summaries k in
        let resolve = resolve_for a.d in
        let param_tbl = Hashtbl.create 8 in
        List.iteri
          (fun i (_, id) ->
            match id with Some ik -> Hashtbl.replace param_tbl ik i | None -> ())
          s.params;
        let accounted = Hashtbl.create 8 in
        let account ik =
          Hashtbl.replace accounted ik
            (1 + Option.value ~default:0 (Hashtbl.find_opt accounted ik))
        in
        let set cell v = if v && not cell then changed := true in
        let mark_push p sp =
          if sp then (set p.push_s true; p.push_s <- true)
          else (set p.push_d true; p.push_d <- true)
        and mark_pop p sp =
          if sp then (set p.pop_s true; p.pop_s <- true)
          else (set p.pop_d true; p.pop_d <- true)
        and mark_esc p = set p.esc true; p.esc <- true in
        let param_of (e : Typedtree.expression) =
          match e.exp_desc with
          | Typedtree.Texp_ident (Path.Pident id, _, _) ->
              let ik = Tast_util.ident_key id in
              Option.map (fun i -> (ik, i)) (Hashtbl.find_opt param_tbl ik)
          | _ -> None
        in
        Tast_util.iter_expressions
          (fun e ->
            match Tast_util.head_apply e with
            | Some (parts, args) ->
                let sp = in_spawn a.spawns e in
                let pushes = Tast_util.matches_any Config.spsc_push_suffixes parts in
                let pops = Tast_util.matches_any Config.spsc_pop_suffixes parts in
                if pushes || pops then (
                  match Tast_util.first_positional args with
                  | Some t -> (
                      match param_of t with
                      | Some (ik, i) ->
                          account ik;
                          let p = s.infos.(i) in
                          if pushes then mark_push p sp else mark_pop p sp
                      | None -> ())
                  | None -> ())
                else if is_spsc_neutral parts then
                  List.iter
                    (fun (_, arg) ->
                      match arg with
                      | Some arg -> (
                          match param_of arg with
                          | Some (ik, _) -> account ik
                          | None -> ())
                      | None -> ())
                    args
                else
                  let callee =
                    match e.exp_desc with
                    | Typedtree.Texp_apply
                        ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _) -> (
                        match resolve p with
                        | Some k' -> Hashtbl.find_opt summaries k'
                        | None -> None)
                    | _ -> None
                  in
                  let pos = ref (-1) in
                  List.iter
                    (fun (label, arg) ->
                      match arg with
                      | None -> ()
                      | Some arg -> (
                          if label = Asttypes.Nolabel then incr pos;
                          match param_of arg with
                          | None -> ()
                          | Some (ik, i) -> (
                              let p = s.infos.(i) in
                              match callee with
                              | None -> ()  (* unknown use: caught by counting *)
                              | Some cs -> (
                                  match param_index cs label ~pos_index:!pos with
                                  | None -> ()
                                  | Some j ->
                                      account ik;
                                      let q = cs.infos.(j) in
                                      if q.esc then mark_esc p;
                                      if q.push_d || q.push_s then
                                        mark_push p (sp || q.push_s);
                                      if q.pop_d || q.pop_s then
                                        mark_pop p (sp || q.pop_s)))))
                    args
            | None -> ())
          body;
        (* Any param mention not accounted for is an escape. *)
        Hashtbl.iter
          (fun ik i ->
            let total =
              Option.value ~default:0 (Hashtbl.find_opt a.lment_count ik)
            in
            let used = Option.value ~default:0 (Hashtbl.find_opt accounted ik) in
            if total > used then mark_esc s.infos.(i))
          param_tbl)
      bodies
  done;
  summaries

(* ---------------------------------------------------------------- R9 rings *)

let check_r9 acc (a : danal) resolve summaries =
  if a.rings <> [] then begin
    let ring_tbl = Hashtbl.create 4 in
    List.iter (fun r -> Hashtbl.replace ring_tbl r.r_ident r) a.rings;
    let producers = Hashtbl.create 4 and consumers = Hashtbl.create 4 in
    let escaped = Hashtbl.create 4 in
    let accounted = Hashtbl.create 8 in
    let account ik =
      Hashtbl.replace accounted ik
        (1 + Option.value ~default:0 (Hashtbl.find_opt accounted ik))
    in
    let add tbl r t =
      Hashtbl.replace tbl r.r_ident (t :: Option.value ~default:[] (Hashtbl.find_opt tbl r.r_ident))
    in
    let ring_of (e : Typedtree.expression) =
      match e.exp_desc with
      | Typedtree.Texp_ident (Path.Pident id, _, _) ->
          Hashtbl.find_opt ring_tbl (Tast_util.ident_key id)
      | _ -> None
    in
    Tast_util.iter_expressions
      (fun e ->
        match Tast_util.head_apply e with
        | None -> ()
        | Some (parts, args) ->
            let pushes = Tast_util.matches_any Config.spsc_push_suffixes parts in
            let pops = Tast_util.matches_any Config.spsc_pop_suffixes parts in
            if pushes || pops then (
              match Tast_util.first_positional args with
              | Some t -> (
                  match ring_of t with
                  | Some r ->
                      account r.r_ident;
                      let tok = ctx_of a.spawns e in
                      if pushes then add producers r tok else add consumers r tok
                  | None -> ())
              | None -> ())
            else if is_spsc_neutral parts then
              List.iter
                (fun (_, arg) ->
                  match arg with
                  | Some arg -> (
                      match ring_of arg with
                      | Some r -> account r.r_ident
                      | None -> ())
                  | None -> ())
                args
            else begin
              let callee =
                match e.exp_desc with
                | Typedtree.Texp_apply
                    ({ exp_desc = Typedtree.Texp_ident (p, _, _); _ }, _) -> (
                    match resolve p with
                    | Some k' -> Hashtbl.find_opt summaries k'
                    | None -> None)
                | _ -> None
              in
              let pos = ref (-1) in
              List.iter
                (fun (label, arg) ->
                  match arg with
                  | None -> ()
                  | Some arg -> (
                      if label = Asttypes.Nolabel then incr pos;
                      match ring_of arg with
                      | None -> ()
                      | Some r -> (
                          match callee with
                          | None -> ()  (* unknown call: caught by counting *)
                          | Some cs -> (
                              match param_index cs label ~pos_index:!pos with
                              | None -> ()
                              | Some j ->
                                  account r.r_ident;
                                  let q = cs.infos.(j) in
                                  if q.esc then Hashtbl.replace escaped r.r_ident ();
                                  let line, col = line_col e.exp_loc in
                                  let here = ctx_of a.spawns e in
                                  if q.push_d then add producers r here;
                                  if q.pop_d then add consumers r here;
                                  if q.push_s then
                                    add producers r
                                      (match here with
                                      | TCreator -> TCallee (line, col)
                                      | t -> t);
                                  if q.pop_s then
                                    add consumers r
                                      (match here with
                                      | TCreator -> TCallee (line, col)
                                      | t -> t)))))
                args
            end)
      a.d.body;
    List.iter
      (fun r ->
        let total =
          Option.value ~default:0 (Hashtbl.find_opt a.lment_count r.r_ident)
        in
        let used = Option.value ~default:0 (Hashtbl.find_opt accounted r.r_ident) in
        let escapes = Hashtbl.mem escaped r.r_ident || total > used in
        if not escapes then begin
          let check side tbl =
            let toks = Option.value ~default:[] (Hashtbl.find_opt tbl r.r_ident) in
            let n = effective_contexts toks in
            if n > 1 then
              report acc a.d.waivers ~rule:"R9" ~file:a.d.path ~line:r.r_line
                ~col:r.r_col
                (Printf.sprintf
                   "ring `%s` has %d %s-side spawn contexts; Spsc is only correct \
                    with a single %s (waive with `(* lint: spsc-ok ... *)`)"
                   r.r_name n side side)
          in
          check "producer" producers;
          check "consumer" consumers
        end)
      a.rings
  end

(* ------------------------------------------------------------------- R10 *)

let bfs_from seeds edges =
  let seen = Hashtbl.create 32 in
  let queue = Queue.create () in
  SS.iter
    (fun k ->
      Hashtbl.replace seen k ();
      Queue.add k queue)
    seeds;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    SS.iter
      (fun k' ->
        if not (Hashtbl.mem seen k') then begin
          Hashtbl.replace seen k' ();
          Queue.add k' queue
        end)
      (Option.value ~default:SS.empty (Hashtbl.find_opt edges k))
  done;
  seen

let check_r10 acc (a : danal) resolve kind_of loc_def edges writes_of =
  List.iter
    (fun (rt : root) ->
      let inside node = List.exists (fun r -> Tast_util.contains r node) rt.rt_exprs in
      let reported = Hashtbl.create 4 in
      let flag target ~via =
        if not (Hashtbl.mem reported target) then begin
          Hashtbl.replace reported target ();
          let excluded =
            match Hashtbl.find_opt loc_def target with
            | Some g -> loc_waived g
            | None -> false
          in
          if not excluded then
            report acc a.d.waivers ~rule:"R10" ~file:a.d.path ~line:rt.rt_line
              ~col:rt.rt_col
              (Printf.sprintf
                 "%s writes ambient mutable `%s`%s; job and stage closures must \
                  be write-pure (route output through Out capture or Atomic/DLS, \
                  or waive with `(* lint: impure-job-ok ... *)`)"
                 rt.rt_desc target
                 (match via with
                 | None -> ""
                 | Some v -> Printf.sprintf " via `%s`" v))
        end
      in
      (* direct writes in the closure body *)
      List.iter (fun (k, node) -> if inside node then flag k ~via:None) a.gwrites;
      (* transitive writes through the mention graph *)
      let seeds = ref SS.empty in
      List.iter
        (fun r ->
          Tast_util.iter_expressions
            (fun x ->
              match x.Typedtree.exp_desc with
              | Typedtree.Texp_ident (p, _, _) -> (
                  match resolve p with
                  | Some k -> seeds := SS.add k !seeds
                  | None -> ())
              | _ -> ())
            r)
        rt.rt_exprs;
      let reach = bfs_from !seeds edges in
      Hashtbl.iter
        (fun k () ->
          SS.iter
            (fun t ->
              if Hashtbl.find_opt kind_of t = Some Mutable_loc then
                flag t ~via:(Some k))
            (Option.value ~default:SS.empty (Hashtbl.find_opt writes_of k)))
        reach;
      (* captured locals of the enclosing function *)
      List.iter
        (fun (lk, node) ->
          if inside node then
            match List.assoc_opt lk a.lmuts with
            | Some (name, _, _, defnode) when not (inside defnode) ->
                if
                  not
                    (Waivers.allows a.d.waivers ~line:rt.rt_line
                       ~slug:"impure-job-ok")
                then
                  report acc a.d.waivers ~rule:"R10" ~file:a.d.path ~line:rt.rt_line
                    ~col:rt.rt_col
                    (Printf.sprintf
                       "%s writes captured local mutable `%s`; job and stage \
                        closures must be write-pure (waive with `(* lint: \
                        impure-job-ok ... *)`)"
                       rt.rt_desc name)
            | _ -> ())
        a.lwrites)
    a.roots

(* -------------------------------------------------------------------- run *)

let run (inputs : input list) =
  let kind_of : (string, lkind) Hashtbl.t = Hashtbl.create 256 in
  let loc_def : (string, gdef) Hashtbl.t = Hashtbl.create 64 in
  let defs = ref [] in
  List.iter
    (fun inp ->
      collect_unit inp ~on_def:(fun d ->
          defs := d :: !defs;
          match d.key with
          | None -> ()
          | Some k -> (
              (match Hashtbl.find_opt kind_of k with
              | None -> Hashtbl.replace kind_of k d.kind
              | Some Plain when d.kind <> Plain -> Hashtbl.replace kind_of k d.kind
              | Some _ -> ());
              match d.kind with
              | Mutable_loc ->
                  if not (Hashtbl.mem loc_def k) then Hashtbl.replace loc_def k d
              | _ -> ())))
    inputs;
  let defs = List.rev !defs in
  let resolve_for d = resolver kind_of d in
  let danals = List.map (fun d -> analyze_def d (resolve_for d) kind_of) defs in
  (* mention graph and write table, merged per key *)
  let edges = Hashtbl.create 256 and writes_of = Hashtbl.create 64 in
  List.iter
    (fun a ->
      match a.d.key with
      | None -> ()
      | Some k ->
          Hashtbl.replace edges k
            (SS.union a.mentions
               (Option.value ~default:SS.empty (Hashtbl.find_opt edges k)));
          let w = List.fold_left (fun s (t, _) -> SS.add t s) SS.empty a.gwrites in
          Hashtbl.replace writes_of k
            (SS.union w (Option.value ~default:SS.empty (Hashtbl.find_opt writes_of k))))
    danals;
  let summaries = build_summaries danals resolve_for in
  let acc = ref [] in
  check_r8_globals acc danals kind_of loc_def edges;
  List.iter
    (fun a ->
      check_r8_locals acc a;
      check_r9 acc a (resolve_for a.d) summaries;
      check_r10 acc a (resolve_for a.d) kind_of loc_def edges writes_of)
    danals;
  let sorted = List.sort Finding.compare !acc in
  (* drop exact duplicates (e.g. the same target reached from two roots on
     one line) *)
  let rec dedup = function
    | a :: b :: rest when Finding.compare a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted
