(* The per-file AST walk implementing R1..R7.

   Files are parsed with compiler-libs ([Parse.implementation] /
   [Parse.interface]) and walked with [Ast_iterator]. The analysis is
   purely syntactic — no typing pass — which keeps it fast and lets tests
   feed it fixture snippets that never typecheck; the cost is that two of
   the rules are heuristics and say so in their messages:

   - R2 accepts an unordered [Hashtbl.iter]/[Hashtbl.fold] when the same
     structure-level binding also applies a sort ([Config.sort_suffixes]) —
     the witness that entries are ordered before anything renders them;
   - R4 recognises guards syntactically: the then-branch of an
     [if ... Bus.active ...] conditional or the body of a [when ...
     Bus.active ...] match case. R7 applies the same recognition to
     [Prof.enabled] guards around profiler record calls.

   The walk keeps four depth counters:
   - [guard_depth] > 0 inside a Bus.active-guarded region (R4);
   - [prof_guard_depth] > 0 inside a Prof.enabled-guarded region (R7);
   - [sort_depth]  > 0 inside a structure-level binding whose subtree
     applies a sort (R2);
   - [expr_depth]  > 0 inside any expression, so R5 fires only on
     structure-level bindings (module state), never on locals — including
     locals of [let module M = struct ... end in ...]. *)

open Parsetree

type ctx = {
  path : string;
  waivers : Waivers.t;
  mutable findings : Finding.t list;
  mutable guard_depth : int;
  mutable prof_guard_depth : int;
  mutable sort_depth : int;
  mutable expr_depth : int;
}

let rec flatten (lid : Longident.t) =
  match lid with
  | Lident s -> [ s ]
  | Ldot (l, s) -> flatten l @ [ s ]
  | Lapply (a, b) -> flatten a @ flatten b

let flat lid = String.concat "." (flatten lid)

let ends_with ~suffix parts =
  let np = List.length parts and ns = List.length suffix in
  np >= ns && List.filteri (fun i _ -> i >= np - ns) parts = suffix

let is_bus_active lid = ends_with ~suffix:[ "Bus"; "active" ] (flatten lid)
let is_bus_emit lid = ends_with ~suffix:[ "Bus"; "emit" ] (flatten lid)
let is_prof_enabled lid = ends_with ~suffix:Config.prof_enabled_suffix (flatten lid)

let is_prof_record parts =
  List.exists (fun suffix -> ends_with ~suffix parts) Config.prof_record_suffixes

let is_sort lid =
  let parts = flatten lid in
  List.exists (fun suffix -> ends_with ~suffix parts) Config.sort_suffixes

(* Does [e] mention an identifier satisfying [pred]? *)
let expr_mentions pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when pred txt -> found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let item_mentions pred item =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } when pred txt -> found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.structure_item it item;
  !found

let report ctx rule_id (loc : Location.t) message =
  let rule = Rules.get rule_id in
  let line = loc.loc_start.pos_lnum in
  let col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
  if not (Waivers.allows ctx.waivers ~line ~slug:rule.Rules.slug) then
    ctx.findings <-
      { Finding.rule = rule.Rules.id; severity = Finding.Error; file = ctx.path; line; col; message }
      :: ctx.findings

(* R1, R2, R3, R6 are pure identifier rules. *)
let check_ident ctx (loc : Location.t) lid =
  let parts = flatten lid in
  let name = String.concat "." parts in
  if List.mem name Config.wall_clock_idents && not (Config.wall_clock_allowed ctx.path) then
    report ctx "R1" loc
      (Printf.sprintf
         "%s reads the wall clock; virtual-time code takes time from the DES engine \
          (waive with `(* lint: wall-clock-ok ... *)` where real elapsed time is the point)"
         name);
  if List.mem name Config.unordered_walk_idents && ctx.sort_depth = 0 then
    report ctx "R2" loc
      (Printf.sprintf
         "%s walks a hash table in hash order and no sort appears in the enclosing \
          binding; sort before rendering or waive with `(* lint: unordered-ok ... *)`"
         name);
  if Config.raw_print_scope ctx.path && List.mem name Config.raw_print_idents then
    report ctx "R3" loc
      (Printf.sprintf
         "%s writes to stdout directly; library code prints through Aspipe_util.Out \
          so --jobs N capture stays byte-identical"
         name);
  if List.mem name Config.banned_idents then
    report ctx "R6" loc (Printf.sprintf "%s is banned in this tree" name);
  if Config.prof_record_scope ctx.path && is_prof_record parts && ctx.prof_guard_depth = 0 then
    report ctx "R7" loc
      (Printf.sprintf
         "%s outside an `if Prof.enabled () ...` guard builds span arguments on \
          profiler-off runs; guard it, or waive with `(* lint: unguarded-prof-ok ... *)`"
         name);
  match parts with
  | [ op ] when List.mem op Config.banned_operators ->
      report ctx "R6" loc
        (Printf.sprintf
           "physical (in)equality (%s) on structured values is representation-dependent; \
            use =, <> or compare"
           op)
  | _ -> ()

(* The payload constructor of [Bus.emit bus (Event.Ctor {...})], if the
   argument is a literal construction. *)
let rec payload_constructor e =
  match e.pexp_desc with
  | Pexp_construct ({ txt; _ }, _) -> (
      match List.rev (flatten txt) with c :: _ -> Some c | [] -> None)
  | Pexp_constraint (inner, _) | Pexp_open (_, inner) -> payload_constructor inner
  | _ -> None

let check_emit ctx e args =
  if ctx.guard_depth = 0 then
    match args with
    | _ :: (_, payload) :: _ -> (
        match payload_constructor payload with
        | Some ctor when List.mem ctor Config.control_events -> ()
        | Some ctor ->
            report ctx "R4" e.pexp_loc
              (Printf.sprintf
                 "per-item Bus.emit of %s outside an `if Bus.active ...` guard; guard it, \
                  or waive with `(* lint: unguarded-emit-ok ... *)` if it is a control path"
                 ctor)
        | None ->
            report ctx "R4" e.pexp_loc
              "Bus.emit with a non-literal payload outside an `if Bus.active ...` guard")
    | _ ->
        report ctx "R4" e.pexp_loc
          "partially applied Bus.emit outside an `if Bus.active ...` guard"

let expr_handler ctx (self : Ast_iterator.iterator) e =
  ctx.expr_depth <- ctx.expr_depth + 1;
  (match e.pexp_desc with
  | Pexp_ident { txt; _ } -> check_ident ctx e.pexp_loc txt
  | _ -> ());
  (match e.pexp_desc with
  | Pexp_ifthenelse (cond, then_, else_)
    when expr_mentions is_bus_active cond || expr_mentions is_prof_enabled cond ->
      let bus = expr_mentions is_bus_active cond in
      let prof = expr_mentions is_prof_enabled cond in
      self.expr self cond;
      if bus then ctx.guard_depth <- ctx.guard_depth + 1;
      if prof then ctx.prof_guard_depth <- ctx.prof_guard_depth + 1;
      self.expr self then_;
      if bus then ctx.guard_depth <- ctx.guard_depth - 1;
      if prof then ctx.prof_guard_depth <- ctx.prof_guard_depth - 1;
      Option.iter (self.expr self) else_
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) when is_bus_emit txt ->
      check_emit ctx e args;
      Ast_iterator.default_iterator.expr self e
  | _ -> Ast_iterator.default_iterator.expr self e);
  ctx.expr_depth <- ctx.expr_depth - 1

let case_handler ctx (self : Ast_iterator.iterator) (c : case) =
  match c.pc_guard with
  | Some guard
    when expr_mentions is_bus_active guard || expr_mentions is_prof_enabled guard ->
      let bus = expr_mentions is_bus_active guard in
      let prof = expr_mentions is_prof_enabled guard in
      self.pat self c.pc_lhs;
      self.expr self guard;
      if bus then ctx.guard_depth <- ctx.guard_depth + 1;
      if prof then ctx.prof_guard_depth <- ctx.prof_guard_depth + 1;
      self.expr self c.pc_rhs;
      if bus then ctx.guard_depth <- ctx.guard_depth - 1;
      if prof then ctx.prof_guard_depth <- ctx.prof_guard_depth - 1
  | _ -> Ast_iterator.default_iterator.case self c

(* The head application of a binding's right-hand side, through type
   constraints: [let t : ty = Hashtbl.create 8] has head "Hashtbl.create". *)
let binding_head e =
  let rec peel e =
    match e.pexp_desc with Pexp_constraint (inner, _) -> peel inner | _ -> e
  in
  match (peel e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> Some (flat txt)
  | _ -> None

let structure_item_handler ctx (self : Ast_iterator.iterator) item =
  (match item.pstr_desc with
  | Pstr_value (_, bindings) when ctx.expr_depth = 0 && Config.shared_state_scope ctx.path ->
      List.iter
        (fun vb ->
          match binding_head vb.pvb_expr with
          | Some head when List.mem head Config.shared_state_heads ->
              report ctx "R5" vb.pvb_loc
                (Printf.sprintf
                   "structure-level `%s` is state shared across campaign worker domains; \
                    use Atomic.t or Domain.DLS, or waive with `(* lint: shared-state-ok ... *)`"
                   head)
          | _ -> ())
        bindings
  | _ -> ());
  let sorted =
    match item.pstr_desc with Pstr_value _ -> item_mentions is_sort item | _ -> false
  in
  if sorted then ctx.sort_depth <- ctx.sort_depth + 1;
  Ast_iterator.default_iterator.structure_item self item;
  if sorted then ctx.sort_depth <- ctx.sort_depth - 1

let check ?waivers ~path source =
  let ctx =
    {
      path;
      waivers = (match waivers with Some w -> w | None -> Waivers.scan source);
      findings = [];
      guard_depth = 0;
      prof_guard_depth = 0;
      sort_depth = 0;
      expr_depth = 0;
    }
  in
  let iterator =
    {
      Ast_iterator.default_iterator with
      expr = expr_handler ctx;
      case = case_handler ctx;
      structure_item = structure_item_handler ctx;
    }
  in
  (try
     let lexbuf = Lexing.from_string source in
     Location.init lexbuf path;
     if Filename.check_suffix path ".mli" then
       iterator.signature iterator (Parse.interface lexbuf)
     else iterator.structure iterator (Parse.implementation lexbuf)
   with exn ->
     let line, message =
       match exn with
       | Syntaxerr.Error err ->
           ((Syntaxerr.location_of_error err).loc_start.pos_lnum, "syntax error")
       | Lexer.Error (_, loc) -> (loc.loc_start.pos_lnum, "lexer error")
       | exn -> (1, "unparseable: " ^ Printexc.to_string exn)
     in
     ctx.findings <-
       [ { Finding.rule = "syntax"; severity = Finding.Error; file = path; line; col = 0; message } ]);
  List.sort Finding.compare ctx.findings
