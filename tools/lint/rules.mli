(** The rule catalogue: stable ids, waiver slugs, one-line summaries. *)

type t = {
  id : string;  (** "R1".."R6" *)
  name : string;  (** short kebab-case name, e.g. "no-wall-clock" *)
  slug : string;  (** waiver token accepted in [(* lint: <slug> ... *)] *)
  summary : string;
}

val all : t list
val find : string -> t option
val get : string -> t
(** Like {!find}; raises [Invalid_argument] on an unknown id. *)

val ids : string list
