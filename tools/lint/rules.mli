(** The rule catalogue: stable ids, waiver slugs, one-line summaries. *)

type t = {
  id : string;  (** "R1".."R10", "W1" *)
  name : string;  (** short kebab-case name, e.g. "no-wall-clock" *)
  slug : string;  (** waiver token accepted in [(* lint: <slug> ... *)] *)
  summary : string;
}

val all : t list
val find : string -> t option
val get : string -> t
(** Like {!find}; raises [Invalid_argument] on an unknown id. *)

val ids : string list

val catalogue_version : int
(** Bumped on any rule addition/removal/rename; carried in the JSON and
    SARIF reports. *)

val typed_ids : string list
(** Rules only the cmt-based typed pass can fire (R8..R10); their slugs
    are exempt from W1 when the typed pass did not run. *)

val slugs : string list
val slug_of_rule : string -> string
