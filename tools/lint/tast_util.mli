(** Typedtree helpers shared by the typed analyses (R8..R10). All name
    matching keys on resolved [Path.t] suffixes, so module aliases, opens
    and dune's [Lib__Module] mangling are seen through. *)

val flatten_path : Path.t -> string list
val short_module_name : string -> string
(** ["Aspipe_util__Spsc"] -> ["Spsc"]; unmangled names pass through. *)

val ends_with : suffix:string list -> string list -> bool
val matches_any : string list list -> string list -> bool

val first_positional :
  (Asttypes.arg_label * Typedtree.expression option) list -> Typedtree.expression option

val positional_args :
  (Asttypes.arg_label * Typedtree.expression option) list -> Typedtree.expression list

val strip : Typedtree.expression -> Typedtree.expression

val head_apply :
  Typedtree.expression ->
  (string list * (Asttypes.arg_label * Typedtree.expression option) list) option
(** [Some (path-parts, args)] when the expression is [f a1 ... an] with
    [f] an identifier. *)

val pattern_var : Typedtree.pattern -> Ident.t option
val ident_key : Ident.t -> string

val iter_expressions : (Typedtree.expression -> unit) -> Typedtree.expression -> unit
val contains : Typedtree.expression -> Typedtree.expression -> bool
(** [contains e sub]: does [e]'s subtree hold [sub] (physical identity)? *)

val lambda_params :
  Typedtree.expression -> (Asttypes.arg_label * Ident.t option) list * Typedtree.expression
(** Peel a lambda chain to (labelled parameters, body); stops at the
    first multi-case [function] or defaulted optional argument. *)

val is_function : Typedtree.expression -> bool
