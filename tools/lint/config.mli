(** Rule scopes and allowlists (root-relative, '/'-separated paths). *)

val scan_roots : string list
(** Directories linted by default: [lib], [bin], [bench]. *)

val wall_clock_idents : string list
val wall_clock_allowed : string -> bool

val unordered_walk_idents : string list
val sort_suffixes : string list list

val raw_print_scope : string -> bool
val raw_print_idents : string list

val control_events : string list

val shared_state_scope : string -> bool
val shared_state_heads : string list

val banned_idents : string list
val banned_operators : string list

val prof_record_suffixes : string list list
(** Dotted-path suffixes of profiler record calls ([Prof.record],
    [Prof.record_gc]) that R7 requires under a [Prof.enabled] guard. *)

val prof_enabled_suffix : string list
(** Dotted-path suffix of the profiler's flag read ([Prof.enabled]). *)

val prof_record_scope : string -> bool
(** Where R7 applies: [lib/] minus [lib/prof/] (the recorder itself
    re-checks the flag). *)
