(** Rule scopes and allowlists (root-relative, '/'-separated paths). *)

val scan_roots : string list
(** Directories linted by default: [lib], [bin], [bench]. *)

val wall_clock_idents : string list
val wall_clock_allowed : string -> bool

val unordered_walk_idents : string list
val sort_suffixes : string list list

val raw_print_scope : string -> bool
val raw_print_idents : string list

val control_events : string list

val shared_state_scope : string -> bool
val shared_state_heads : string list

val banned_idents : string list
val banned_operators : string list

val prof_record_suffixes : string list list
(** Dotted-path suffixes of profiler record calls ([Prof.record],
    [Prof.record_gc]) that R7 requires under a [Prof.enabled] guard. *)

val prof_enabled_suffix : string list
(** Dotted-path suffix of the profiler's flag read ([Prof.enabled]). *)

val prof_record_scope : string -> bool
(** Where R7 applies: [lib/] minus [lib/prof/] (the recorder itself
    re-checks the flag). *)

(** {2 Typed pass (R8..R10)} — all matching is on resolved-[Path.t]
    suffixes, robust against module aliases and dune name mangling. *)

val mutable_heads : string list list
(** Expression heads allocating an ambient mutable location (R8). *)

val sync_heads : string list list
(** Heads whose result is synchronised (Atomic/DLS/Mutex) or delegated to
    its own analysis (Spsc/Chan → R9); never an R8 location. *)

val mutex_guard_heads : string list list
(** A mutable record literal with a field built from one of these heads is
    treated as mutex-guarded state (the Pool pattern). *)

val write_op_suffixes : string list list
(** Functions that mutate their first positional argument; [:=]/[incr]/
    [decr] and [Texp_setfield] are also recognised structurally. *)

val spawn_heads : string list list
(** Heads whose function argument runs on a new domain ([Domain.spawn]). *)

val replicating_heads : string list list
(** Higher-order iterators that make a nested [Domain.spawn] a replicated
    (multi-domain) context. *)

val spsc_create_suffix : string list
val spsc_push_suffixes : string list list
val spsc_pop_suffixes : string list list

val job_registry_files : string list
val job_field_names : string list
(** Files/record-field names binding registry job closures (R10 roots). *)

val stage_head_suffixes : string list list
(** Call heads whose closure arguments execute on worker domains (R10). *)

val job_purity_scope : string -> bool
(** Where R10 applies: [lib/] minus the backends' own internals
    ([lib/skel/], [lib/runner/]). *)
