(* Rule scopes and allowlists: where each rule applies and which names it
   watches. These encode the repo's conventions (DESIGN.md, "Static
   analysis"); changing a list here is a convention change and should come
   with a DESIGN.md update. All paths are root-relative, '/'-separated. *)

let scan_roots = [ "lib"; "bin"; "bench" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* ---------------------------------------------------- R1 no-wall-clock *)

(* Monotonic_clock.now is bechamel's monotonic source — still a real
   clock, so virtual-time code may not touch it either. *)
let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Monotonic_clock.now" ]

(* The campaign runner times real work on real domains, the profiler
   (lib/prof/) exists to record real durations, and the _mc
   direct-execution engines exist to measure real speedup; everything else
   takes time from the DES engine's virtual clock. skel_mc is on the list
   for Monotonic_clock.now alone (run_timed durations) — it no longer
   touches the wall clock proper. *)
let wall_clock_allowed path =
  starts_with ~prefix:"lib/runner/" path
  || starts_with ~prefix:"lib/prof/" path
  || path = "lib/skel/skel_mc.ml"
  || path = "lib/exp/exp_mc.ml"

(* -------------------------------------------- R2 deterministic-iteration *)

let unordered_walk_idents = [ "Hashtbl.iter"; "Hashtbl.fold" ]

(* Presence of any of these in the same structure-level binding is the
   (heuristic) witness that the walked entries are sorted before use. *)
let sort_suffixes =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "sort_uniq" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
  ]

(* ------------------------------------------------------ R3 no-raw-print *)

let raw_print_scope path = starts_with ~prefix:"lib/" path && path <> "lib/util/out.ml"

let raw_print_idents =
  let bare =
    [
      "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
      "print_float"; "print_bytes"; "printf";
    ]
  in
  bare
  @ List.map (fun n -> "Stdlib." ^ n) bare
  @ [ "Printf.printf"; "Format.printf"; "Format.print_string"; "Format.print_newline" ]

(* --------------------------------------------------- R4 guarded-hot-emit *)

(* Sparse control events may be emitted unguarded: Control-interest sinks
   (the fault machinery, the trace's adaptation record) must see them even
   on an otherwise silent bus (see lib/obs/bus.mli). Everything else is
   per-item hot-path traffic and must be guarded by Bus.active. *)
let control_events =
  [
    "Node_crashed"; "Node_recovered"; "Adaptation_considered"; "Adaptation_committed";
    "Adaptation_rejected"; "Failover_committed"; "Slo_window";
  ]

(* ------------------------------------------------------ R5 domain-safety *)

(* Campaign jobs run experiment closures on worker domains, and those
   closures reach essentially every library module; structure-level mutable
   state anywhere in lib/ is therefore shared across domains. *)
let shared_state_scope path = starts_with ~prefix:"lib/" path

(* Channels are cross-domain by construction: a structure-level Chan or
   Spsc ring is shared mutable state with a single-producer/single-consumer
   ownership contract no module-level binding can honour, so both creation
   heads are watched alongside the classic containers. *)
let shared_state_heads =
  [
    "ref"; "Stdlib.ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Chan.create"; "Aspipe_skel.Chan.create"; "Spsc.create"; "Aspipe_util.Spsc.create";
  ]

(* -------------------------------------------------- R6 banned-construct *)

let banned_idents = [ "Obj.magic"; "Obj.repr"; "Random.self_init" ]
let banned_operators = [ "=="; "!=" ]

(* ------------------------------------------------ R7 guarded-prof-record *)

(* Profiler probes must be free when profiling is off: a record call site
   sits under an `if Prof.enabled () ...` (or `when ...`) guard so its
   arguments (labels, Gc.quick_stat reads) are never built on unprofiled
   runs — the wall-clock twin of R4's Bus.active discipline. lib/prof/
   itself is exempt: the recorder re-checks the flag internally. *)
let prof_record_suffixes = [ [ "Prof"; "record" ]; [ "Prof"; "record_gc" ] ]
let prof_enabled_suffix = [ "Prof"; "enabled" ]

let prof_record_scope path =
  starts_with ~prefix:"lib/" path && not (starts_with ~prefix:"lib/prof/" path)

(* ===================== typed pass (R8..R10, Typedtree over .cmt) ======= *)

(* All typed-pass name matching is on *path suffixes* (the last one or two
   components of the resolved [Path.t]), so `Spsc.push`,
   `Aspipe_util.Spsc.push` and the dune-mangled `Aspipe_util__Spsc.push`
   all match — the same convention the syntactic rules use for waiver-free
   robustness against module aliases. *)

(* ------------------------------------------------------ R8 mutable-escape *)

(* Expression heads that allocate an ambient mutable location. Arrays are
   included even though read-only arrays are common: R8 only fires on
   locations that are actually *written* somewhere, so a constant lookup
   table never trips it. *)
let mutable_heads =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Array"; "of_list" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Buffer"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
  ]

(* Heads whose result is synchronised (or has its own dedicated analysis)
   and is therefore *not* an R8 location: Atomic and DLS are the sanctioned
   cross-domain cells, a Mutex is itself a guard, and Spsc/Chan rings are
   channels whose ownership discipline R9 checks instead. *)
let sync_heads =
  [
    [ "Atomic"; "make" ];
    [ "Domain"; "DLS"; "new_key" ];
    [ "DLS"; "new_key" ];
    [ "Mutex"; "create" ];
    [ "Condition"; "create" ];
    [ "Spsc"; "create" ];
    [ "Chan"; "create" ];
  ]

(* A mutable record literal that carries a Mutex field is treated as
   mutex-guarded state (the Pool pattern: every field write happens with
   t.mutex held). Heuristic, documented in DESIGN.md's soundness caveats. *)
let mutex_guard_heads = [ [ "Mutex"; "create" ] ]

(* Functions whose first positional argument they mutate. [":="], [incr],
   [decr] and `x.(i) <- v` / `r.f <- v` (Texp_setfield) are recognised
   structurally as well. *)
let write_op_suffixes =
  [
    [ ":=" ];
    [ "incr" ];
    [ "decr" ];
    [ "Hashtbl"; "add" ];
    [ "Hashtbl"; "replace" ];
    [ "Hashtbl"; "remove" ];
    [ "Hashtbl"; "reset" ];
    [ "Hashtbl"; "clear" ];
    [ "Hashtbl"; "filter_map_inplace" ];
    [ "Array"; "set" ];
    [ "Array"; "unsafe_set" ];
    [ "Array"; "fill" ];
    [ "Array"; "blit" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ];
    [ "Bytes"; "set" ];
    [ "Bytes"; "unsafe_set" ];
    [ "Bytes"; "fill" ];
    [ "Bytes"; "blit" ];
    [ "Buffer"; "add_string" ];
    [ "Buffer"; "add_char" ];
    [ "Buffer"; "add_bytes" ];
    [ "Buffer"; "add_substring" ];
    [ "Buffer"; "add_buffer" ];
    [ "Buffer"; "clear" ];
    [ "Buffer"; "reset" ];
    [ "Queue"; "push" ];
    [ "Queue"; "add" ];
    [ "Queue"; "pop" ];
    [ "Queue"; "take" ];
    [ "Queue"; "clear" ];
    [ "Queue"; "transfer" ];
    [ "Stack"; "push" ];
    [ "Stack"; "pop" ];
    [ "Stack"; "clear" ];
  ]

(* Worker-spawning heads: the function argument becomes a new domain
   context. [Domain.spawn] is the primitive; everything else in the tree
   (Pool workers, Skel_mc stages, Farm_mc lanes) bottoms out in it. *)
let spawn_heads = [ [ "Domain"; "spawn" ] ]

(* Higher-order iterators that call their function argument many times: a
   Domain.spawn under one of these is a *replicated* spawn context (N
   domains run the same closure), so a single syntactic site already
   counts as multi-domain sharing. *)
let replicating_heads =
  [
    [ "List"; "init" ]; [ "List"; "map" ]; [ "List"; "mapi" ]; [ "List"; "iter" ];
    [ "List"; "iteri" ]; [ "Array"; "init" ]; [ "Array"; "map" ]; [ "Array"; "mapi" ];
    [ "Array"; "iter" ]; [ "Array"; "iteri" ];
  ]

(* ----------------------------------------------------- R9 spsc-discipline *)

let spsc_create_suffix = [ "Spsc"; "create" ]
let spsc_push_suffixes = [ [ "Spsc"; "push" ]; [ "Spsc"; "push_chunk" ] ]
let spsc_pop_suffixes = [ [ "Spsc"; "pop" ]; [ "Spsc"; "pop_chunk" ] ]

(* ---------------------------------------------------------- R10 job-purity *)

(* Registry files whose record fields listed below bind experiment job
   closures — the roots of the jobs-1 ≡ jobs-N determinism contract. *)
let job_registry_files = [ "lib/exp/registry.ml" ]
let job_field_names = [ "run"; "job" ]

(* Call heads whose function arguments execute on worker domains: stage
   functions of the direct-execution backends, farm workers, and the
   replication-splitting hook. Their closure arguments must be write-pure
   w.r.t. ambient mutable locations. *)
let stage_head_suffixes =
  [
    [ "Skel_mc"; "run" ];
    [ "Skel_mc"; "run_fold" ];
    [ "Skel_mc"; "run_grouped" ];
    [ "Skel_mc"; "run_timed" ];
    [ "Skel_mc"; "run_chan" ];
    [ "Skel_mc"; "run_chan_fold" ];
    [ "Farm_mc"; "map" ];
    [ "Farm_mc"; "map_array" ];
    [ "Farm_mc"; "map_stream" ];
    [ "Farm_mc"; "pipeline_stage" ];
    [ "Common"; "par_map" ];
  ]

(* The R10 scope: job/stage closures anywhere in lib/ are checked; the
   backends' own internals (lib/skel/, lib/runner/) implement the handoff
   machinery itself and answer to R8/R9 instead. *)
let job_purity_scope path =
  starts_with ~prefix:"lib/" path
  && (not (starts_with ~prefix:"lib/skel/" path))
  && not (starts_with ~prefix:"lib/runner/" path)
