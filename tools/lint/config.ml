(* Rule scopes and allowlists: where each rule applies and which names it
   watches. These encode the repo's conventions (DESIGN.md, "Static
   analysis"); changing a list here is a convention change and should come
   with a DESIGN.md update. All paths are root-relative, '/'-separated. *)

let scan_roots = [ "lib"; "bin"; "bench" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* ---------------------------------------------------- R1 no-wall-clock *)

(* Monotonic_clock.now is bechamel's monotonic source — still a real
   clock, so virtual-time code may not touch it either. *)
let wall_clock_idents =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Monotonic_clock.now" ]

(* The campaign runner times real work on real domains, the profiler
   (lib/prof/) exists to record real durations, and the _mc
   direct-execution engines exist to measure real speedup; everything else
   takes time from the DES engine's virtual clock. skel_mc is on the list
   for Monotonic_clock.now alone (run_timed durations) — it no longer
   touches the wall clock proper. *)
let wall_clock_allowed path =
  starts_with ~prefix:"lib/runner/" path
  || starts_with ~prefix:"lib/prof/" path
  || path = "lib/skel/skel_mc.ml"
  || path = "lib/exp/exp_mc.ml"

(* -------------------------------------------- R2 deterministic-iteration *)

let unordered_walk_idents = [ "Hashtbl.iter"; "Hashtbl.fold" ]

(* Presence of any of these in the same structure-level binding is the
   (heuristic) witness that the walked entries are sorted before use. *)
let sort_suffixes =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "sort_uniq" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
  ]

(* ------------------------------------------------------ R3 no-raw-print *)

let raw_print_scope path = starts_with ~prefix:"lib/" path && path <> "lib/util/out.ml"

let raw_print_idents =
  let bare =
    [
      "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
      "print_float"; "print_bytes"; "printf";
    ]
  in
  bare
  @ List.map (fun n -> "Stdlib." ^ n) bare
  @ [ "Printf.printf"; "Format.printf"; "Format.print_string"; "Format.print_newline" ]

(* --------------------------------------------------- R4 guarded-hot-emit *)

(* Sparse control events may be emitted unguarded: Control-interest sinks
   (the fault machinery, the trace's adaptation record) must see them even
   on an otherwise silent bus (see lib/obs/bus.mli). Everything else is
   per-item hot-path traffic and must be guarded by Bus.active. *)
let control_events =
  [
    "Node_crashed"; "Node_recovered"; "Adaptation_considered"; "Adaptation_committed";
    "Adaptation_rejected"; "Failover_committed"; "Slo_window";
  ]

(* ------------------------------------------------------ R5 domain-safety *)

(* Campaign jobs run experiment closures on worker domains, and those
   closures reach essentially every library module; structure-level mutable
   state anywhere in lib/ is therefore shared across domains. *)
let shared_state_scope path = starts_with ~prefix:"lib/" path

(* Channels are cross-domain by construction: a structure-level Chan or
   Spsc ring is shared mutable state with a single-producer/single-consumer
   ownership contract no module-level binding can honour, so both creation
   heads are watched alongside the classic containers. *)
let shared_state_heads =
  [
    "ref"; "Stdlib.ref"; "Hashtbl.create"; "Buffer.create"; "Queue.create"; "Stack.create";
    "Chan.create"; "Aspipe_skel.Chan.create"; "Spsc.create"; "Aspipe_util.Spsc.create";
  ]

(* -------------------------------------------------- R6 banned-construct *)

let banned_idents = [ "Obj.magic"; "Obj.repr"; "Random.self_init" ]
let banned_operators = [ "=="; "!=" ]

(* ------------------------------------------------ R7 guarded-prof-record *)

(* Profiler probes must be free when profiling is off: a record call site
   sits under an `if Prof.enabled () ...` (or `when ...`) guard so its
   arguments (labels, Gc.quick_stat reads) are never built on unprofiled
   runs — the wall-clock twin of R4's Bus.active discipline. lib/prof/
   itself is exempt: the recorder re-checks the flag internally. *)
let prof_record_suffixes = [ [ "Prof"; "record" ]; [ "Prof"; "record_gc" ] ]
let prof_enabled_suffix = [ "Prof"; "enabled" ]

let prof_record_scope path =
  starts_with ~prefix:"lib/" path && not (starts_with ~prefix:"lib/prof/" path)
