(** The typed (Typedtree) pass: interprocedural analyses R8..R10.

    [run] takes every unit of the scanned tree at once — the analyses are
    whole-library: R8 reachability, R9 parameter summaries and R10 write
    cones all follow the cross-unit mention graph. Waiver tables are the
    same usage-tracked values the syntactic pass used, so a suppression
    here counts for W1, and a location-level [shared-state-ok] /
    [domain-shared-ok] waiver excludes the location from R8 and R10
    alike. Findings come back at [Error] severity, sorted and deduplicated;
    the driver applies severity overrides. *)

type input = { unit_ : Typed_load.unit_input; waivers : Waivers.t }

val run : input list -> Finding.t list
