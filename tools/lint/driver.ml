(* Tree scan + reporting: walk the scan roots, check every .ml/.mli, apply
   severity overrides, and render the result as text or JSON. *)

type options = {
  root : string;  (* repository root *)
  roots : string list;  (* scan roots relative to [root] *)
  rules : string list option;  (* only these rule ids (syntax always on) *)
  severities : (string * Finding.severity option) list;
      (* per-rule overrides; [None] switches the rule off *)
}

let default = { root = "."; roots = Config.scan_roots; rules = None; severities = [] }

let resolve opts (f : Finding.t) =
  let enabled =
    f.rule = "syntax"
    || match opts.rules with None -> true | Some ids -> List.mem f.rule ids
  in
  if not enabled then None
  else
    match List.assoc_opt f.rule opts.severities with
    | Some None -> None
    | Some (Some severity) -> Some { f with severity }
    | None -> Some f

let check_source opts ~path source =
  List.filter_map (resolve opts) (Checker.check ~path source)

type report = { files_scanned : int; findings : Finding.t list }

let errors r =
  List.length (List.filter (fun f -> f.Finding.severity = Finding.Error) r.findings)

let warnings r =
  List.length (List.filter (fun f -> f.Finding.severity = Finding.Warning) r.findings)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Sorted, deterministic directory walk; [rel] keeps '/'-separated
   root-relative names for scope matching and reporting. *)
let rec collect ~dir ~rel acc =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      let abs = Filename.concat dir name and r = rel ^ "/" ^ name in
      if Sys.is_directory abs then collect ~dir:abs ~rel:r acc
      else if Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli" then
        (abs, r) :: acc
      else acc)
    acc entries

let scan opts =
  let files =
    List.concat_map
      (fun r ->
        let dir = Filename.concat opts.root r in
        if not (Sys.file_exists dir && Sys.is_directory dir) then
          failwith (Printf.sprintf "aspipe-lint: scan root %S not found under %S" r opts.root);
        collect ~dir ~rel:r [])
      opts.roots
  in
  let files = List.sort compare files in
  let findings =
    List.concat_map (fun (abs, rel) -> check_source opts ~path:rel (read_file abs)) files
  in
  { files_scanned = List.length files; findings = List.sort Finding.compare findings }

let summary_line r =
  Printf.sprintf "aspipe-lint: %d files scanned, %d errors, %d warnings" r.files_scanned
    (errors r) (warnings r)

let render_text r =
  let buffer = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buffer (Finding.to_string f);
      Buffer.add_char buffer '\n')
    r.findings;
  Buffer.add_string buffer (summary_line r);
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let to_json opts r =
  Aspipe_obs.Json.Obj
    [
      ("tool", Aspipe_obs.Json.String "aspipe-lint");
      ("version", Aspipe_obs.Json.Int 1);
      ("roots", Aspipe_obs.Json.List (List.map (fun s -> Aspipe_obs.Json.String s) opts.roots));
      ("files_scanned", Aspipe_obs.Json.Int r.files_scanned);
      ("findings", Aspipe_obs.Json.List (List.map Finding.to_json r.findings));
      ( "summary",
        Aspipe_obs.Json.Obj
          [
            ("errors", Aspipe_obs.Json.Int (errors r));
            ("warnings", Aspipe_obs.Json.Int (warnings r));
          ] );
    ]

let render_json opts r = Aspipe_obs.Json.to_string (to_json opts r) ^ "\n"
