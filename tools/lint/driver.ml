(* Tree scan + reporting: walk the scan roots, run the syntactic pass on
   every .ml/.mli, optionally run the typed (cmt-based) pass over the same
   tree, apply severity overrides, flag unused waivers (W1), and render
   the result as text, JSON or SARIF. *)

type options = {
  root : string;  (* repository root *)
  roots : string list;  (* scan roots relative to [root] *)
  rules : string list option;  (* only these rule ids (syntax always on) *)
  severities : (string * Finding.severity option) list;
      (* per-rule overrides; [None] switches the rule off *)
  typed : bool;  (* also run the Typedtree pass (R8..R10) *)
  cmt_root : string option;  (* where to look for .cmt files; default
                                <root>/_build/default *)
}

let default =
  {
    root = ".";
    roots = Config.scan_roots;
    rules = None;
    severities = [];
    typed = false;
    cmt_root = None;
  }

(* "syntax" (unparseable input) and "internal" (typed-pass infrastructure
   failure: missing/unreadable cmts) are not catalogue rules: they are
   always on and map to exit code 2. *)
let internal_rules = [ "syntax"; "internal" ]

let resolve opts (f : Finding.t) =
  let enabled =
    List.mem f.rule internal_rules
    || match opts.rules with None -> true | Some ids -> List.mem f.rule ids
  in
  if not enabled then None
  else
    match List.assoc_opt f.rule opts.severities with
    | Some None -> None
    | Some (Some severity) -> Some { f with severity }
    | None -> Some f

let check_source opts ~path source =
  List.filter_map (resolve opts) (Checker.check ~path source)

type report = {
  files_scanned : int;
  typed_ran : bool;
  typed_units : int;
  findings : Finding.t list;
}

let errors r =
  List.length (List.filter (fun f -> f.Finding.severity = Finding.Error) r.findings)

let warnings r =
  List.length (List.filter (fun f -> f.Finding.severity = Finding.Warning) r.findings)

let internal_failures r =
  List.length (List.filter (fun f -> List.mem f.Finding.rule internal_rules) r.findings)

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Sorted, deterministic directory walk; [rel] keeps '/'-separated
   root-relative names for scope matching and reporting. *)
let rec collect ~dir ~rel acc =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      let abs = Filename.concat dir name and r = rel ^ "/" ^ name in
      if Sys.is_directory abs then collect ~dir:abs ~rel:r acc
      else if Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli" then
        (abs, r) :: acc
      else acc)
    acc entries

let internal_finding message =
  { Finding.rule = "internal"; severity = Finding.Error; file = "."; line = 0; col = 0; message }

(* The typed pass: locate cmts, pair each unit with the waiver table its
   source's syntactic scan already built (so waiver usage accumulates
   across both passes), and run the whole-tree analyses. *)
let run_typed opts tables =
  let cmt_root =
    match opts.cmt_root with
    | Some dir -> dir
    | None -> Filename.concat opts.root (Filename.concat "_build" "default")
  in
  if not (Sys.file_exists cmt_root && Sys.is_directory cmt_root) then
    ( [
        internal_finding
          (Printf.sprintf
             "typed pass: cmt directory %S not found; run `dune build @lint-typed` \
              (or any full build) first, or pass --cmt-root"
             cmt_root);
      ],
      0 )
  else
    let lr = Typed_load.load_tree ~root:opts.root ~cmt_root ~roots:opts.roots in
    let load_findings = List.map internal_finding lr.errors in
    if lr.units = [] then
      ( internal_finding
          (Printf.sprintf
             "typed pass: no .cmt files for the scan roots under %S; run `dune \
              build @lint-typed` first"
             cmt_root)
        :: load_findings,
        0 )
    else
      let inputs =
        List.filter_map
          (fun (u : Typed_load.unit_input) ->
            match Hashtbl.find_opt tables u.path with
            | Some waivers -> Some { Typed_check.unit_ = u; waivers }
            | None -> None)
          lr.units
      in
      (load_findings @ Typed_check.run inputs, List.length inputs)

(* W1: any waiver entry still unused after every pass that could have fired
   it. Unknown slugs are always reported; known slugs only when their rule
   was actually part of this scan (enabled, and — for R8..R10 — the typed
   pass ran), so a typed-rule waiver survives a syntactic-only scan. *)
let unused_waivers opts ~typed_ran tables =
  let rule_enabled id =
    (match opts.rules with None -> true | Some ids -> List.mem id ids)
    && (match List.assoc_opt id opts.severities with Some None -> false | _ -> true)
  in
  let active_slug slug =
    List.exists
      (fun (r : Rules.t) ->
        r.slug = slug && r.id <> "W1" && rule_enabled r.id
        && ((not (List.mem r.id Rules.typed_ids)) || typed_ran))
      Rules.all
  in
  let findings = ref [] in
  Hashtbl.iter
    (fun path waivers ->
      List.iter
        (fun (line, slug, used) ->
          if not used then
            let unknown = not (List.mem slug Rules.slugs) in
            if unknown || active_slug slug then
              if not (Waivers.allows waivers ~line ~slug:"unused-waiver-ok") then
                findings :=
                  {
                    Finding.rule = "W1";
                    severity = Finding.Error;
                    file = path;
                    line;
                    col = 0;
                    message =
                      (if unknown then
                         Printf.sprintf
                           "unknown waiver slug `%s`; see --list-rules for the \
                            catalogue"
                           slug
                       else
                         Printf.sprintf
                           "waiver `%s` never fired at this site; delete it (a dead \
                            waiver can mask a future regression)"
                           slug);
                  }
                  :: !findings)
        (Waivers.entries waivers))
    tables;
  !findings

let scan opts =
  let files =
    List.concat_map
      (fun r ->
        let dir = Filename.concat opts.root r in
        if not (Sys.file_exists dir && Sys.is_directory dir) then
          failwith (Printf.sprintf "aspipe-lint: scan root %S not found under %S" r opts.root);
        collect ~dir:dir ~rel:r [])
      opts.roots
  in
  let files = List.sort compare files in
  (* One shared, usage-tracked waiver table per file: the syntactic pass,
     the typed pass and W1 all mark the same entries. *)
  let tables : (string, Waivers.t) Hashtbl.t = Hashtbl.create 64 in
  let syntactic =
    List.concat_map
      (fun (abs, rel) ->
        let source = read_file abs in
        let waivers = Waivers.scan source in
        Hashtbl.replace tables rel waivers;
        Checker.check ~waivers ~path:rel source)
      files
  in
  let typed_findings, typed_units =
    if opts.typed then run_typed opts tables else ([], 0)
  in
  (* The typed rules only "ran" for W1 purposes when units were analysed;
     a failed cmt lookup already yields an internal finding. *)
  let typed_ran = opts.typed && typed_units > 0 in
  let w1 = unused_waivers opts ~typed_ran tables in
  let findings =
    List.filter_map (resolve opts) (syntactic @ typed_findings @ w1)
  in
  {
    files_scanned = List.length files;
    typed_ran;
    typed_units;
    findings = List.sort Finding.compare findings;
  }

let summary_line r =
  Printf.sprintf "aspipe-lint: %d files scanned%s, %d errors, %d warnings"
    r.files_scanned
    (if r.typed_ran then Printf.sprintf " (typed pass over %d units)" r.typed_units
     else "")
    (errors r) (warnings r)

let render_text r =
  let buffer = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buffer (Finding.to_string f);
      Buffer.add_char buffer '\n')
    r.findings;
  Buffer.add_string buffer (summary_line r);
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let to_json opts r =
  Aspipe_obs.Json.Obj
    [
      ("tool", Aspipe_obs.Json.String "aspipe-lint");
      ("version", Aspipe_obs.Json.Int 1);
      ("catalogue_version", Aspipe_obs.Json.Int Rules.catalogue_version);
      ("roots", Aspipe_obs.Json.List (List.map (fun s -> Aspipe_obs.Json.String s) opts.roots));
      ("files_scanned", Aspipe_obs.Json.Int r.files_scanned);
      ("typed", Aspipe_obs.Json.Bool r.typed_ran);
      ("typed_units", Aspipe_obs.Json.Int r.typed_units);
      ("findings", Aspipe_obs.Json.List (List.map Finding.to_json r.findings));
      ( "summary",
        Aspipe_obs.Json.Obj
          [
            ("errors", Aspipe_obs.Json.Int (errors r));
            ("warnings", Aspipe_obs.Json.Int (warnings r));
            ("internal_failures", Aspipe_obs.Json.Int (internal_failures r));
          ] );
    ]

let render_json opts r = Aspipe_obs.Json.to_string (to_json opts r) ^ "\n"
let render_sarif r = Sarif.render r.findings

(* Exit status for a report: 2 on infrastructure failure (unparseable
   input, missing/unreadable cmts), 1 on error-severity findings, else 0. *)
let exit_code r =
  if internal_failures r > 0 then 2 else if errors r > 0 then 1 else 0
