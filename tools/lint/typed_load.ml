(* Loading Typedtrees for the typed pass (R8..R10).

   Two sources:

   - [load_tree] walks a dune build directory (normally `_build/default`)
     for `.cmt` files, keeping implementations whose recorded source file
     sits under one of the scan roots. Dune writes cmts by default
     (`-bin-annot` is on), so `dune build @check` — or any full build — is
     enough to feed the pass.

   - [fixture] typechecks a source snippet in-process against the
     compiler's initial environment, so unit tests can exercise the typed
     analyses without a dune build. Fixtures may reference only the stdlib
     plus modules they define themselves; a local `module Spsc = struct
     ... end` stands in for the real ring because all typed-pass matching
     is on path *suffixes*. *)

type unit_input = {
  path : string;  (* root-relative source path, '/'-separated *)
  modname : string;  (* short module name, mangling stripped *)
  structure : Typedtree.structure;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let under_roots roots path =
  List.exists (fun r -> starts_with ~prefix:(r ^ "/") path || path = r) roots

(* Normalise the cmt's recorded source path: dune records it relative to
   the context root ("lib/util/spsc.ml"), already '/'-separated. *)
let normalize p =
  let p = if Filename.is_relative p then p else p in
  String.concat "/" (String.split_on_char '\\' p)

let rec walk_cmts dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc name ->
          let abs = Filename.concat dir name in
          if Sys.is_directory abs then walk_cmts abs acc
          else if Filename.check_suffix name ".cmt" then abs :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

type load_result = { units : unit_input list; errors : string list }

let load_tree ~root ~cmt_root ~roots =
  let cmts = List.sort compare (walk_cmts cmt_root []) in
  let seen = Hashtbl.create 64 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun cmt ->
      match Cmt_format.read_cmt cmt with
      | exception exn ->
          errors :=
            Printf.sprintf "%s: unreadable cmt (%s)" cmt (Printexc.to_string exn) :: !errors
      | info -> (
          match (info.Cmt_format.cmt_sourcefile, info.Cmt_format.cmt_annots) with
          | Some src, Cmt_format.Implementation structure ->
              let path = normalize src in
              (* Keep only real sources under the scan roots; generated
                 files (`.ml-gen` alias modules, ppx output) have no
                 counterpart on disk and are skipped. *)
              if
                under_roots roots path
                && Filename.check_suffix path ".ml"
                && Sys.file_exists (Filename.concat root path)
                && not (Hashtbl.mem seen path)
              then begin
                Hashtbl.add seen path ();
                let modname = Tast_util.short_module_name info.Cmt_format.cmt_modname in
                units := { path; modname; structure } :: !units
              end
          | _ -> ()))
    cmts;
  {
    units = List.sort (fun a b -> compare a.path b.path) !units;
    errors = List.rev !errors;
  }

(* In-process typechecking for test fixtures. [Compmisc.init_path] seeds
   the load path with the stdlib; the environment is cached because
   re-initialising per fixture is needlessly slow. *)
let initial_env = lazy (
  Compmisc.init_path ();
  Compmisc.initial_env ())

let fixture ~path source =
  let env = Lazy.force initial_env in
  let modname =
    String.capitalize_ascii Filename.(remove_extension (basename path))
  in
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match
    let past = Parse.implementation lexbuf in
    Typemod.type_structure env past
  with
  | structure, _, _, _, _ -> Ok { path; modname; structure }
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
            Format.asprintf "%a" Location.print_report report
        | _ -> Printexc.to_string exn
      in
      Error msg
