(* aspipe-lint: static analysis enforcing the repo's determinism,
   domain-safety and observability invariants (rules R1..R6; see DESIGN.md
   "Static analysis" and `--list-rules`).

   Usage: dune build @lint                       (lint the whole tree)
          dune exec tools/lint/aspipe_lint_cli.exe -- --root . [--json]
          ... --severity R2=warning --severity R6=off
          ... --rules R1,R3 lib                  (subset of rules / roots)

   Exit status: 0 when no error-severity finding, 1 otherwise, 2 on usage
   or I/O errors. *)

module Driver = Aspipe_lint.Driver
module Finding = Aspipe_lint.Finding
module Rules = Aspipe_lint.Rules

let usage = "aspipe-lint [options] [scan-roots]"

let () =
  let root = ref "." in
  let json = ref false in
  let out = ref None in
  let severities = ref [] in
  let rules = ref None in
  let roots = ref [] in
  let list_rules = ref false in
  let fail msg =
    prerr_endline ("aspipe-lint: " ^ msg);
    exit 2
  in
  let set_severity spec =
    match String.index_opt spec '=' with
    | None -> fail (Printf.sprintf "--severity expects RULE=error|warning|off, got %S" spec)
    | Some i ->
        let rule = String.sub spec 0 i in
        let level = String.sub spec (i + 1) (String.length spec - i - 1) in
        if Rules.find rule = None then fail (Printf.sprintf "unknown rule %S" rule);
        let severity =
          match level with
          | "error" -> Some Finding.Error
          | "warning" | "warn" -> Some Finding.Warning
          | "off" -> None
          | other -> fail (Printf.sprintf "unknown severity %S" other)
        in
        severities := (rule, severity) :: !severities
  in
  let set_rules spec =
    let ids = String.split_on_char ',' spec in
    List.iter (fun id -> if Rules.find id = None then fail (Printf.sprintf "unknown rule %S" id)) ids;
    rules := Some ids
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ("--json", Arg.Set json, " render the report as JSON instead of text");
      ("--out", Arg.String (fun f -> out := Some f), "FILE also write the report to FILE");
      ( "--severity",
        Arg.String set_severity,
        "RULE=LEVEL override a rule's severity: error, warning or off (repeatable)" );
      ("--rules", Arg.String set_rules, "IDS comma-separated rule ids to run (default: all)");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) ->
        Printf.printf "%s %-26s waiver `(* lint: %s ... *)`\n    %s\n" r.id r.name r.slug r.summary)
      Rules.all;
    exit 0
  end;
  let options =
    {
      Driver.root = !root;
      roots = (match List.rev !roots with [] -> Driver.default.Driver.roots | rs -> rs);
      rules = !rules;
      severities = !severities;
    }
  in
  match Driver.scan options with
  | exception Failure msg -> fail msg
  | report ->
      let rendered =
        if !json then Driver.render_json options report else Driver.render_text report
      in
      print_string rendered;
      (match !out with
      | Some file ->
          Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc rendered)
      | None -> ());
      exit (if Driver.errors report > 0 then 1 else 0)
