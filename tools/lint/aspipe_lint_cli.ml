(* aspipe-lint: static analysis enforcing the repo's determinism,
   domain-safety and observability invariants (syntactic rules R1..R7,
   typed rules R8..R10; see DESIGN.md "Static analysis" / "Typed
   analysis" and `--list-rules`).

   Usage: dune build @lint                       (syntactic pass)
          dune build @lint-typed                 (+ Typedtree pass on cmts)
          dune exec tools/lint/aspipe_lint_cli.exe -- --root . [--json]
          ... --typed [--cmt-root _build/default]
          ... --sarif report.sarif
          ... --severity R2=warning --severity R6=off
          ... --rules R1,R3 lib                  (subset of rules / roots)

   Exit status: 0 when no error-severity finding, 1 when there are
   error-severity findings, 2 on usage errors or internal failures
   (unparseable sources, missing/unreadable cmt files). *)

module Driver = Aspipe_lint.Driver
module Finding = Aspipe_lint.Finding
module Rules = Aspipe_lint.Rules

let usage = "aspipe-lint [options] [scan-roots]"

let () =
  let root = ref "." in
  let json = ref false in
  let typed = ref false in
  let cmt_root = ref None in
  let sarif = ref None in
  let out = ref None in
  let severities = ref [] in
  let rules = ref None in
  let roots = ref [] in
  let list_rules = ref false in
  let fail msg =
    prerr_endline ("aspipe-lint: " ^ msg);
    exit 2
  in
  let set_severity spec =
    match String.index_opt spec '=' with
    | None -> fail (Printf.sprintf "--severity expects RULE=error|warning|off, got %S" spec)
    | Some i ->
        let rule = String.sub spec 0 i in
        let level = String.sub spec (i + 1) (String.length spec - i - 1) in
        if Rules.find rule = None then fail (Printf.sprintf "unknown rule %S" rule);
        let severity =
          match level with
          | "error" -> Some Finding.Error
          | "warning" | "warn" -> Some Finding.Warning
          | "off" -> None
          | other -> fail (Printf.sprintf "unknown severity %S" other)
        in
        severities := (rule, severity) :: !severities
  in
  let set_rules spec =
    let ids = String.split_on_char ',' spec in
    List.iter (fun id -> if Rules.find id = None then fail (Printf.sprintf "unknown rule %S" id)) ids;
    rules := Some ids
  in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root (default: .)");
      ("--json", Arg.Set json, " render the report as JSON instead of text");
      ( "--typed",
        Arg.Set typed,
        " also run the Typedtree pass (R8..R10) over .cmt files" );
      ( "--cmt-root",
        Arg.String (fun d -> cmt_root := Some d),
        "DIR directory holding the .cmt files (default: <root>/_build/default)" );
      ( "--sarif",
        Arg.String (fun f -> sarif := Some f),
        "FILE also write the findings as SARIF 2.1.0 to FILE" );
      ("--out", Arg.String (fun f -> out := Some f), "FILE also write the report to FILE");
      ( "--severity",
        Arg.String set_severity,
        "RULE=LEVEL override a rule's severity: error, warning or off (repeatable)" );
      ("--rules", Arg.String set_rules, "IDS comma-separated rule ids to run (default: all)");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun dir -> roots := dir :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Rules.t) ->
        Printf.printf "%s %-26s waiver `(* lint: %s ... *)`\n    %s\n" r.id r.name r.slug r.summary)
      Rules.all;
    exit 0
  end;
  let options =
    {
      Driver.root = !root;
      roots = (match List.rev !roots with [] -> Driver.default.Driver.roots | rs -> rs);
      rules = !rules;
      severities = !severities;
      typed = !typed;
      cmt_root = !cmt_root;
    }
  in
  match Driver.scan options with
  | exception Failure msg -> fail msg
  | report ->
      let rendered =
        if !json then Driver.render_json options report else Driver.render_text report
      in
      print_string rendered;
      (match !out with
      | Some file ->
          Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc rendered)
      | None -> ());
      (match !sarif with
      | Some file ->
          Out_channel.with_open_bin file (fun oc ->
              Out_channel.output_string oc (Driver.render_sarif report))
      | None -> ());
      exit (Driver.exit_code report)
