(** Loading Typedtrees for the typed pass (R8..R10): cmt files from a dune
    build directory, or in-process typechecking for test fixtures. *)

type unit_input = {
  path : string;  (** root-relative source path, '/'-separated *)
  modname : string;  (** short module name (dune mangling stripped) *)
  structure : Typedtree.structure;
}

type load_result = { units : unit_input list; errors : string list }

val load_tree : root:string -> cmt_root:string -> roots:string list -> load_result
(** Walk [cmt_root] (normally [<root>/_build/default]) for [.cmt]
    implementations whose recorded source file sits under one of [roots]
    and still exists under [root]. Deterministic (sorted); duplicate
    source files keep the first cmt. Unreadable cmts are reported in
    [errors], not raised. *)

val fixture : path:string -> string -> (unit_input, string) result
(** Typecheck [source] in-process against the compiler's initial
    environment (stdlib only). For unit tests. *)
