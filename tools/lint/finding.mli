(** One rule violation at one source location. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type t = {
  rule : string;  (** "R1".."R6", or "syntax" for unparseable input *)
  severity : severity;
  file : string;  (** root-relative, '/'-separated *)
  line : int;
  col : int;
  message : string;
}

val compare : t -> t -> int
(** File, then line, then column, then rule id. *)

val to_string : t -> string
(** [file:line:col: [rule] severity: message] — the text report line. *)

val to_json : t -> Aspipe_obs.Json.t
