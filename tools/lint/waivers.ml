(* Waiver comments.

   A finding on line L is suppressed when the waiver comment

     (* lint: <slug> <free-text justification> *)

   appears on line L (trailing the flagged code) or on line L-1 (a comment
   of its own above it). The slug is the rule's waiver token (Rules.all);
   the justification is free text, and writing one is the point — every
   waiver documents an invariant exception that used to be folklore. One
   comment carries one slug; stack comments to waive several rules.

   Every entry records whether it actually suppressed a finding during a
   scan: a waiver that never fires is dead weight that could mask a future
   regression, so the driver reports unfired entries as W1 unused-waiver
   (restricted to slugs whose rules actually ran — a typed-rule waiver is
   not "unused" just because only the syntactic pass ran). *)

type entry = { line : int; slug : string; mutable used : bool }
type t = entry list

let marker = "(* lint:"

let is_slug_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* All slugs on one line: every occurrence of the marker, first
   whitespace-separated token after it. *)
let slugs_of_line line =
  let n = String.length line in
  let rec find_from i acc =
    if i >= n then acc
    else
      match String.index_from_opt line i '(' with
      | None -> acc
      | Some j ->
          if j + String.length marker <= n && String.sub line j (String.length marker) = marker
          then begin
            let k = ref (j + String.length marker) in
            while !k < n && line.[!k] = ' ' do incr k done;
            let start = !k in
            while !k < n && is_slug_char line.[!k] do incr k done;
            let acc = if !k > start then String.sub line start (!k - start) :: acc else acc in
            find_from !k acc
          end
          else find_from (j + 1) acc
  in
  find_from 0 []

let scan source : t =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun i line -> List.map (fun s -> { line = i + 1; slug = s; used = false }) (slugs_of_line line))
       lines)

(* Marks the matching entry used: suppression is what a waiver is for, so
   an [allows] hit is the liveness witness W1 keys on. *)
let allows t ~line ~slug =
  let hit = ref false in
  List.iter
    (fun e ->
      if e.slug = slug && (e.line = line || e.line = line - 1) then begin
        e.used <- true;
        hit := true
      end)
    t;
  !hit

let entries t = List.map (fun e -> (e.line, e.slug, e.used)) t
