(** Waiver comments: [(* lint: <slug> <justification> *)] on the flagged
    line or the line directly above suppresses that rule's finding. Each
    entry tracks whether it ever fired, feeding W1 unused-waiver. *)

type t

val scan : string -> t
(** Collect all waivers in a source file. *)

val allows : t -> line:int -> slug:string -> bool
(** [true] when [slug] is waived for a finding on [line] (the waiver sits
    on [line] itself or on [line - 1]). Marks the matching entry used. *)

val entries : t -> (int * string * bool) list
(** All [(line, slug, used)] entries, in file order. *)
