(** Waiver comments: [(* lint: <slug> <justification> *)] on the flagged
    line or the line directly above suppresses that rule's finding. *)

type t

val scan : string -> t
(** Collect all waivers in a source file. *)

val allows : t -> line:int -> slug:string -> bool
(** [true] when [slug] is waived for a finding on [line] (the waiver sits
    on [line] itself or on [line - 1]). *)
