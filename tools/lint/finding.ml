(* A lint finding: one rule violation at one source location. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;  (* "R1".."R6", or "syntax" for unparseable input *)
  severity : severity;
  file : string;  (* root-relative, '/'-separated *)
  line : int;
  col : int;
  message : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" t.file t.line t.col t.rule
    (severity_to_string t.severity) t.message

let to_json t =
  Aspipe_obs.Json.Obj
    [
      ("file", Aspipe_obs.Json.String t.file);
      ("line", Aspipe_obs.Json.Int t.line);
      ("col", Aspipe_obs.Json.Int t.col);
      ("rule", Aspipe_obs.Json.String t.rule);
      ("severity", Aspipe_obs.Json.String (severity_to_string t.severity));
      ("message", Aspipe_obs.Json.String t.message);
    ]
