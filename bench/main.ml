(* The benchmark harness: regenerates every reconstructed table and figure
   (the full registry, E1..E20) through the multicore campaign runner, then
   runs Bechamel micro-benchmarks of the decision path —
   the components whose speed makes run-time adaptation viable at all.

   Usage: dune exec bench/main.exe            (full experiment sizes)
          dune exec bench/main.exe -- --quick (reduced sizes, same shapes)
          dune exec bench/main.exe -- --only E3,E9
          dune exec bench/main.exe -- --jobs 4    (worker domains; default =
                                                   recommended domain count;
                                                   output is byte-identical
                                                   to --jobs 1)
          dune exec bench/main.exe -- --cache DIR (content-addressed result
                                                   cache: unchanged
                                                   experiments of an
                                                   unchanged binary replay
                                                   from disk)
          dune exec bench/main.exe -- --skip-micro

   Perf harness (see DESIGN.md "Performance" for the aspipe-bench/1
   schema; run under `--profile release` — the dev profile's -opaque
   disables the cross-module inlining the hot path is built around):

          dune exec --profile release bench/main.exe -- --perf --quick
          ... --perf --perf-out FILE          (default BENCH_5.json)
          ... --perf --perf-baseline FILE    (compare against a committed
                                              BENCH_5.json or BENCH_4.json;
                                              exit 1 on >25% events/sec
                                              regression)
          ... --jobs-sweep [--quick]         (campaign wall time at
                                              jobs 1/2/4/N, written as the
                                              campaign.sweep array; exit 1
                                              if jobs 4 is slower than
                                              jobs 1)
          ... --oversubscribe                (lift the campaign runner's
                                              worker cap at the core
                                              count)
          ... --mc [--quick]                 (shared-memory backend sweep:
                                              Chan vs lock-free SPSC rings
                                              vs the DES prediction, over
                                              items x stages x batch;
                                              digest-checked, gated, written
                                              to --mc-out, default
                                              BENCH_8.json)
          ... --mc --mc-items N              (override the items axis)
          ... --search [--quick]             (mapping-search sweep: old
                                              materializing exhaustive vs
                                              incremental Gray walk vs
                                              branch-and-bound vs the
                                              chunked parallel backend,
                                              over stages x processors;
                                              result-checked, gated,
                                              written to --search-out,
                                              default BENCH_9.json) *)

open Bechamel
open Toolkit

module Rng = Aspipe_util.Rng
module Forecast = Aspipe_util.Forecast
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Search = Aspipe_model.Search
module Pqueue = Aspipe_des.Pqueue

let synthetic_spec ~stages ~processors =
  let rng = Rng.create 23 in
  {
    Costspec.stage_work = Array.init stages (fun _ -> Rng.range rng 0.5 2.0);
    node_rates = Array.init processors (fun _ -> Rng.range rng 5.0 15.0);
    item_bytes = 1e4;
    output_bytes = Array.make stages 1e4;
    latency = Array.init processors (fun _ -> Array.make processors 0.01);
    bandwidth = Array.init processors (fun _ -> Array.make processors 1e7);
    user_latency = Array.make processors 0.01;
    user_bandwidth = Array.make processors 1e7;
  }

let micro_tests () =
  let spec44 = synthetic_spec ~stages:4 ~processors:4 in
  let spec88 = synthetic_spec ~stages:8 ~processors:8 in
  let spec55 = synthetic_spec ~stages:5 ~processors:5 in
  let mapping44 = Mapping.round_robin ~stages:4 ~processors:4 in
  let mapping55 = Mapping.round_robin ~stages:5 ~processors:5 in
  Test.make_grouped ~name:"aspipe" ~fmt:"%s/%s"
    [
      Test.make ~name:"analytic-eval-4x4"
        (Staged.stage (fun () -> ignore (Analytic.throughput spec44 mapping44)));
      Test.make ~name:"ctmc-solve-4st"
        (Staged.stage (fun () -> ignore (Ctmc.throughput (Ctmc.of_costspec spec44 mapping44))));
      Test.make ~name:"ctmc-solve-5st"
        (Staged.stage (fun () -> ignore (Ctmc.throughput (Ctmc.of_costspec spec55 mapping55))));
      Test.make ~name:"search-exhaustive-4x4"
        (Staged.stage (fun () ->
             ignore (Search.exhaustive ~stages:4 ~processors:4 (Analytic.throughput spec44))));
      Test.make ~name:"search-auto-8x8"
        (Staged.stage (fun () ->
             ignore (Search.auto ~stages:8 ~processors:8 (Analytic.throughput spec88))));
      Test.make ~name:"pqueue-1k-insert-pop"
        (Staged.stage (fun () ->
             let q = Pqueue.create () in
             for i = 0 to 999 do
               ignore (Pqueue.insert q (Float.of_int ((i * 7919) mod 997)) i)
             done;
             let rec drain () = match Pqueue.pop q with Some _ -> drain () | None -> () in
             drain ()));
      Test.make ~name:"bus-emit-1k-observed"
        (Staged.stage (fun () ->
             (* Cost of the telemetry hot path: one subscribed sink, 1000
                emissions. Bounds the overhead every instrumented run pays. *)
             let bus = Aspipe_obs.Bus.create () in
             let seen = ref 0 in
             ignore (Aspipe_obs.Bus.subscribe bus (fun _ -> incr seen));
             for i = 0 to 999 do
               (* lint: unguarded-emit-ok microbench of the raw emit cost itself *)
               Aspipe_obs.Bus.emit bus (Aspipe_obs.Event.Completion { item = i })
             done));
      Test.make ~name:"forecast-adaptive-100obs"
        (Staged.stage (fun () ->
             let f = Forecast.adaptive () in
             for i = 0 to 99 do
               Forecast.observe f (0.5 +. (0.4 *. sin (Float.of_int i /. 7.0)))
             done;
             ignore (Forecast.predict f)));
      Test.make ~name:"sim-pipeline-100items"
        (Staged.stage (fun () ->
             let scenario =
               Aspipe_core.Scenario.make ~name:"bench"
                 ~make_topo:(fun engine ->
                   Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01
                     ~bandwidth:1e7 ())
                 ~stages:(Aspipe_skel.Stage.balanced ~n:4 ~work:1.0 ())
                 ~input:(Aspipe_skel.Stream_spec.make ~items:100 ())
                 ()
             in
             ignore
               (Aspipe_core.Baselines.run_static ~label:"bench" ~mapping:[| 0; 1; 2; 0 |]
                  ~scenario ~seed:3)));
    ]

let run_micro () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "######## Micro-benchmarks (monotonic clock, ns/run) ########";
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (estimate :: _) -> Printf.printf "%-36s %14.1f ns/run\n" name estimate
      | Some [] | None -> Printf.printf "%-36s (no estimate)\n" name)
    rows;
  print_newline ()

(* One instrumented adaptive run whose metrics snapshot closes the report:
   the same registry the CLI's [metrics] subcommand prints, so the bench
   output doubles as a telemetry regression reference. *)
let run_metrics_snapshot ~quick =
  let items = if quick then 150 else 500 in
  let scenario =
    Aspipe_core.Scenario.make ~name:"bench-telemetry"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
      ~loads:[ (0, Aspipe_grid.Loadgen.Step { at = 30.0; level = 0.2 }) ]
      ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:4 ~factor:3.0 ())
      ~input:(Aspipe_skel.Stream_spec.make ~arrival:(Aspipe_skel.Stream_spec.Spaced 0.3) ~items ())
      ~horizon:1e5 ()
  in
  let meter = ref None in
  ignore
    (Aspipe_core.Adaptive.run
       ~instrument:(fun bus -> meter := Some (Aspipe_obs.Meter.attach bus))
       ~scenario ~seed:7 ());
  match !meter with
  | None -> ()
  | Some meter ->
      print_endline "######## Telemetry snapshot (adaptive run, seed 7) ########";
      print_string (Aspipe_obs.Metrics.render (Aspipe_obs.Meter.snapshot meter));
      print_newline ()

(* --- perf harness ----------------------------------------------------- *)

module Json = Aspipe_obs.Json
module Engine = Aspipe_des.Engine

(* lint: wall-clock-ok the perf harness exists to measure real elapsed time *)
let wall () = Unix.gettimeofday ()

(* DES microbench: [timers] self-rescheduling callbacks over one engine,
   deterministic delays, no telemetry. Measures the raw schedule/pop/fire
   loop. The workload is frozen — the committed baseline in BENCH_4.json was
   measured with exactly this shape. *)
let des_microbench ~timers ~events =
  let engine = Engine.create () in
  let fired = ref 0 in
  for i = 0 to timers - 1 do
    let rec self () =
      incr fired;
      if !fired + timers <= events then begin
        let delay = 0.001 +. (0.0001 *. Float.of_int (((i * 7) + !fired) mod 64)) in
        ignore (Engine.schedule engine ~delay self)
      end
    in
    ignore (Engine.schedule engine ~delay:(0.0001 *. Float.of_int (i + 1)) self)
  done;
  let a0 = Gc.allocated_bytes () in
  let t0 = wall () in
  Engine.run ~until:1e12 engine;
  let t1 = wall () in
  let a1 = Gc.allocated_bytes () in
  (!fired, t1 -. t0, a1 -. a0)

(* Sim microbench: a 4-stage pipeline on 3 nodes, N items — observed (trace
   sink attached, the pre-PR-comparable configuration) or unobserved (no
   sink: the guarded emit path, which should allocate no event payloads). *)
let sim_microbench ~observed ~items =
  let rng = Aspipe_util.Rng.create 42 in
  let engine = Engine.create () in
  let topo =
    Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ()
  in
  let stages = Aspipe_skel.Stage.balanced ~n:4 ~work:1.0 () in
  let input = Aspipe_skel.Stream_spec.make ~items () in
  let trace = if observed then Some (Aspipe_grid.Trace.create ()) else None in
  let sim =
    Aspipe_skel.Skel_sim.create ?trace ~rng ~topo ~stages ~mapping:[| 0; 1; 2; 0 |] ~input ()
  in
  let a0 = Gc.allocated_bytes () in
  let t0 = wall () in
  Aspipe_skel.Skel_sim.run_to_completion sim;
  let t1 = wall () in
  let a1 = Gc.allocated_bytes () in
  (items, t1 -. t0, a1 -. a0, Engine.events_fired engine)

(* Best of [n] runs by elapsed time: the minimum is the least-perturbed
   sample on a noisy machine, and it is what the committed baseline used. *)
let best_of n time_of f =
  let best = ref (f ()) in
  for _ = 2 to n do
    let r = f () in
    if time_of r < time_of !best then best := r
  done;
  !best

(* The pre-PR measurement this PR's ≥1.5× DES target is judged against:
   same workloads, same best-of-N methodology, release profile, captured on
   the commit preceding the optimisation. Frozen by hand — the harness can
   only measure the code it is built from. *)
let baseline_json =
  Json.Obj
    [
      ( "des",
        Json.Obj
          [
            ("events", Json.Int 1_000_000);
            ("events_per_sec", Json.Float 4_349_832.0);
            ("ns_per_event", Json.Float 229.9);
            ("bytes_per_event", Json.Float 231.8);
          ] );
      ( "sim",
        Json.Obj
          [
            ("items", Json.Int 5000);
            ("events", Json.Int 50_000);
            ("items_per_sec", Json.Float 149_970.0);
            ("bytes_per_item", Json.Float 8935.0);
          ] );
      ( "campaign",
        Json.Obj
          [
            ("quick", Json.Bool true);
            ("jobs1_wall_seconds", Json.Float 1.228);
            ("jobs4_wall_seconds", Json.Float 5.985);
          ] );
    ]

let float_member path json =
  let rec walk json = function
    | [] -> ( match json with Json.Float f -> Some f | Json.Int i -> Some (Float.of_int i) | _ -> None)
    | key :: rest -> ( match Json.member key json with Some j -> walk j rest | None -> None)
  in
  walk json path

(* --- jobs sweep -------------------------------------------------------- *)

(* Campaign wall time as a function of requested parallelism: jobs 1, 2, 4
   and the recommended domain count, best of [reps] runs each (reports are
   discarded — campaign output is byte-identical across jobs by
   construction, which dune runtest verifies separately). Points run in
   ascending jobs order, so any warm-up bias (page cache, code paths)
   favours jobs 1 and works *against* the speedup the gate demands. *)

type sweep_point = { sjobs : int; sworkers : int; swall : float }

let run_sweep ~quick ~oversubscribe ~reps =
  let cores = Domain.recommended_domain_count () in
  let jobs_list = List.sort_uniq compare [ 1; 2; 4; cores ] in
  List.map
    (fun jobs ->
      let best = ref infinity and workers = ref 1 in
      for _ = 1 to reps do
        let r = Aspipe_runner.Campaign.run ~jobs ~oversubscribe ~quick () in
        workers := r.Aspipe_runner.Campaign.workers;
        if r.Aspipe_runner.Campaign.wall_seconds < !best then
          best := r.Aspipe_runner.Campaign.wall_seconds
      done;
      { sjobs = jobs; sworkers = !workers; swall = !best })
    jobs_list

let sweep_wall jobs points =
  Option.map (fun p -> p.swall) (List.find_opt (fun p -> p.sjobs = jobs) points)

let sweep_json points =
  let wall1 = Option.value (sweep_wall 1 points) ~default:Float.nan in
  Json.List
    (List.map
       (fun p ->
         Json.Obj
           [
             ("jobs", Json.Int p.sjobs);
             ("workers", Json.Int p.sworkers);
             ("wall_seconds", Json.Float p.swall);
             ("speedup_vs_jobs1", Json.Float (wall1 /. p.swall));
           ])
       points)

let print_sweep ~label ~reps points =
  let wall1 = Option.value (sweep_wall 1 points) ~default:Float.nan in
  Printf.printf "######## Jobs sweep (%s campaign, best of %d) ########\n" label reps;
  List.iter
    (fun p ->
      Printf.printf "jobs %d (workers %d): %7.3f s  speedup %.2fx\n" p.sjobs p.sworkers
        p.swall (wall1 /. p.swall))
    points

(* The inversion gate: jobs 4 slower than jobs 1 is the regression this
   gate exists to kill. The broken configuration was ~5x slower; 10%
   covers run-to-run noise, which is all that separates the two points on
   a single-core host where the cap pins both to one worker. *)
let sweep_gate_tolerance = 1.10

let sweep_gate points =
  match (sweep_wall 1 points, sweep_wall 4 points) with
  | Some w1, Some w4 when w4 > w1 *. sweep_gate_tolerance ->
      Printf.eprintf
        "jobs-sweep: REGRESSION — jobs 4 wall %.3fs exceeds jobs 1 wall %.3fs (+%.0f%% tolerance)\n"
        w4 w1
        ((sweep_gate_tolerance -. 1.0) *. 100.0);
      false
  | Some w1, Some w4 ->
      Printf.printf "jobs-sweep gate: jobs 4 %.3fs vs jobs 1 %.3fs — ok\n" w4 w1;
      true
  | _ -> true

let campaign_json ~quick ~outcomes ~sweep ~sweep_over ~bytes_per_outcome =
  Json.Obj
    ([
       ("quick", Json.Bool quick);
       ("outcomes", Json.Int outcomes);
       ("sweep", sweep_json sweep);
       ("sweep_oversubscribed", sweep_json sweep_over);
     ]
    @
    match bytes_per_outcome with
    | Some b -> [ ("jobs1_bytes_per_outcome", Json.Float b) ]
    | None -> [])

let run_jobs_sweep ~quick ~oversubscribe ~out =
  let reps = if quick then 3 else 1 in
  let sweep = run_sweep ~quick ~oversubscribe:false ~reps in
  let sweep_over =
    if oversubscribe then run_sweep ~quick ~oversubscribe:true ~reps else []
  in
  print_sweep ~label:(if quick then "quick" else "full") ~reps sweep;
  if sweep_over <> [] then
    print_sweep ~label:"oversubscribed" ~reps sweep_over;
  let json =
    Json.Obj
      [
        ("schema", Json.String "aspipe-bench/1");
        ("quick", Json.Bool quick);
        ("ocaml", Json.String Sys.ocaml_version);
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ( "method",
          Json.String "jobs sweep only: campaign wall seconds, best-of-N per point" );
        ( "current",
          Json.Obj
            [
              ( "campaign",
                campaign_json ~quick ~outcomes:(List.length Aspipe_exp.Registry.all)
                  ~sweep ~sweep_over ~bytes_per_outcome:None );
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if not (sweep_gate sweep) then exit 1

(* --- multicore backend bench (--mc) ----------------------------------- *)

(* Throughput of the shared-memory pipeline backend over a sweep of
   items × stage count × transfer batch size, measured twice per shape —
   once over the legacy mutex+condvar Chan path, once over the lock-free
   SPSC rings — and compared with the DES prediction for the same shape
   (the simulator run in virtual time with the measured per-stage cost, at
   a reduced item count; steady-state virtual throughput is the model's
   claim about ideal pipelining). Every run folds the output stream into a
   digest that must agree across all three paths, so the speedup numbers
   are backed by an equivalence check. Results go to BENCH_8.json
   (aspipe-bench/1 schema) with a host-aware regression gate. *)

module McPipe = Aspipe_skel.Pipe
module Skel_mc = Aspipe_skel.Skel_mc

(* Integer stages with a few ALU ops each: enough work to be a real stage
   function, small enough that channel overhead dominates — the regime the
   SPSC rings exist for. *)
let mc_stage s x = ((x * 16777619) + s) land 0x3FFFFFFF
let mc_digest acc y = ((acc lxor y) * 31) land 0x3FFFFFFF

let mc_chain ~stages =
  let rec chain s =
    if s = stages - 1 then McPipe.last (mc_stage s) else McPipe.Stage (mc_stage s, chain (s + 1))
  in
  chain 0

let mc_capacity = 1024

(* Sequential reference: digest and per-item cost, without materializing
   the stream. *)
let mc_seq ~stages ~items =
  let chain = mc_chain ~stages in
  let digest = ref 0 in
  let t0 = wall () in
  for i = 0 to items - 1 do
    digest := mc_digest !digest (McPipe.apply chain i)
  done;
  (!digest, wall () -. t0)

(* The DES prediction: the same shape in virtual time — [stages] uniform
   nodes, the measured per-stage service cost, negligible transfer costs —
   at a reduced item count (steady state is reached long before 20k items).
   Virtual items/second is what the model says an ideally pipelined
   execution of this chain should sustain. *)
let mc_des_prediction ~stages ~per_stage_seconds ~items =
  let sim_items = min items 20_000 in
  let engine = Engine.create () in
  let topo =
    Aspipe_grid.Topology.uniform engine ~n:stages ~speed:1.0 ~latency:1e-9 ~bandwidth:1e12 ()
  in
  let work = Float.max per_stage_seconds 1e-12 in
  let stage_defs = Aspipe_skel.Stage.balanced ~n:stages ~work () in
  let mapping = Array.init stages Fun.id in
  let input = Aspipe_skel.Stream_spec.make ~items:sim_items ~item_bytes:1.0 () in
  let trace =
    Aspipe_skel.Skel_sim.execute ~rng:(Rng.create 7) ~queue_capacity:mc_capacity ~topo
      ~stages:stage_defs ~mapping ~input ()
  in
  let completions = Aspipe_grid.Trace.completions trace in
  let t_last = snd completions.(Array.length completions - 1) in
  Float.of_int sim_items /. t_last

type mc_point = {
  p_items : int;
  p_stages : int;
  p_batch : int;
  p_chan_ips : float;
  p_spsc_ips : float;
  p_pred_ips : float;
}

(* The regression gate adapts to the host: the ≥5x claim is only honest on
   a multi-core machine at full scale (the acceptance shape: >= 4 cores,
   10^7 items, batch >= 16); a 2–3-core host must still show the rings no
   slower than the mutexes; a single core runs 6+ domains oversubscribed,
   where parity-within-2x is the measured cost of spinning without
   parallelism (both numbers are recorded either way). *)
let mc_required_ratio ~cores ~items =
  if cores >= 4 && items >= 10_000_000 then 5.0 else if cores >= 2 then 1.0 else 0.5

let run_mc ~quick ~out ~items_override =
  let cores = Domain.recommended_domain_count () in
  let items_list =
    match items_override with
    | Some n -> [ n ]
    | None -> if quick then [ 1_000_000 ] else [ 1_000_000; 10_000_000 ]
  in
  let stage_counts = [ 2; 4 ] in
  let batches = [ 1; 16; 64 ] in
  Printf.printf "######## Multicore backend bench (Chan vs SPSC, capacity %d) ########\n" mc_capacity;
  Printf.printf "cores: %d\n" cores;
  let points =
    List.concat_map
      (fun items ->
        List.concat_map
          (fun stages ->
            let chain = mc_chain ~stages in
            let seq_digest, seq_secs = mc_seq ~stages ~items in
            let per_stage = seq_secs /. Float.of_int items /. Float.of_int stages in
            let pred = mc_des_prediction ~stages ~per_stage_seconds:per_stage ~items in
            let check path d =
              if d <> seq_digest then begin
                Printf.eprintf "bench --mc: %s digest mismatch at items=%d stages=%d\n" path items
                  stages;
                exit 2
              end
            in
            let t0 = wall () in
            let dchan =
              Skel_mc.run_chan_fold ~capacity:mc_capacity chain ~items ~gen:Fun.id ~init:0
                ~f:mc_digest
            in
            let chan_secs = wall () -. t0 in
            check "chan" dchan;
            let chan_ips = Float.of_int items /. chan_secs in
            Printf.printf
              "items=%.0e stages=%d  seq %9.0f it/s  chan %9.0f it/s  model %9.0f it/s\n"
              (Float.of_int items) stages
              (Float.of_int items /. seq_secs)
              chan_ips pred;
            List.map
              (fun batch ->
                let t0 = wall () in
                let d =
                  Skel_mc.run_fold ~capacity:mc_capacity ~batch chain ~items ~gen:Fun.id ~init:0
                    ~f:mc_digest
                in
                let secs = wall () -. t0 in
                check "spsc" d;
                let ips = Float.of_int items /. secs in
                Printf.printf "  spsc batch=%-3d %9.0f it/s  %5.2fx chan  %5.2fx model\n" batch ips
                  (ips /. chan_ips) (ips /. pred);
                {
                  p_items = items;
                  p_stages = stages;
                  p_batch = batch;
                  p_chan_ips = chan_ips;
                  p_spsc_ips = ips;
                  p_pred_ips = pred;
                })
              batches)
          stage_counts)
      items_list
  in
  (* Gate on the largest shape: most stages, most items, batch >= 16. *)
  let gate_items = List.fold_left max 0 (List.map (fun p -> p.p_items) points) in
  let gate_stages = List.fold_left max 0 (List.map (fun p -> p.p_stages) points) in
  let candidates =
    List.filter
      (fun p -> p.p_items = gate_items && p.p_stages = gate_stages && p.p_batch >= 16)
      points
  in
  let best_ratio =
    List.fold_left (fun acc p -> Float.max acc (p.p_spsc_ips /. p.p_chan_ips)) 0.0 candidates
  in
  let required = mc_required_ratio ~cores ~items:gate_items in
  let pass = best_ratio >= required in
  let json =
    Json.Obj
      [
        ("schema", Json.String "aspipe-bench/1");
        ("quick", Json.Bool quick);
        ("ocaml", Json.String Sys.ocaml_version);
        ("cores", Json.Int cores);
        ( "method",
          Json.String
            "mc backend sweep: items x stages x batch, digest-checked; chan = legacy \
             mutex+condvar channels, spsc = lock-free SPSC rings, model = DES prediction at \
             measured per-stage cost" );
        ( "mc",
          Json.Obj
            [
              ("capacity", Json.Int mc_capacity);
              ( "sweep",
                Json.List
                  (List.map
                     (fun p ->
                       Json.Obj
                         [
                           ("items", Json.Int p.p_items);
                           ("stages", Json.Int p.p_stages);
                           ("batch", Json.Int p.p_batch);
                           ("chan_items_per_sec", Json.Float p.p_chan_ips);
                           ("spsc_items_per_sec", Json.Float p.p_spsc_ips);
                           ("speedup_vs_chan", Json.Float (p.p_spsc_ips /. p.p_chan_ips));
                           ("des_predicted_items_per_sec", Json.Float p.p_pred_ips);
                         ])
                     points) );
              ( "gate",
                Json.Obj
                  [
                    ("items", Json.Int gate_items);
                    ("stages", Json.Int gate_stages);
                    ("min_batch", Json.Int 16);
                    ("cores", Json.Int cores);
                    ("required_ratio", Json.Float required);
                    ("best_ratio", Json.Float best_ratio);
                    ("pass", Json.Bool pass);
                  ] );
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if pass then
    Printf.printf "mc gate: spsc/chan %.2fx >= %.2fx required (%d cores, %d items) — ok\n"
      best_ratio required cores gate_items
  else begin
    Printf.eprintf
      "mc gate: REGRESSION — spsc/chan %.2fx below the %.2fx required on this host (%d cores, %d \
       items, batch >= 16)\n"
      best_ratio required cores gate_items;
    exit 1
  end

(* --- mapping-search bench (--search) ----------------------------------- *)

(* Old-vs-new decision cost over a stages x processors sweep. Four backends
   per point, all required to return the identical (mapping, score):

   - old: the historical materializing path — [Mapping.enumerate] into a
     list, full [Analytic.throughput] per candidate ([Search.exhaustive_ref]);
   - gray: zero-allocation Gray-order walk on [Analytic.Incr], every
     candidate still scored — isolates the incremental-evaluator win;
   - b&b: branch-and-bound + symmetry canonicalization
     ([Search.exhaustive_spec]) — the production serial path; its "scored"
     column shows how few leaves survive pruning;
   - par: the chunked parallel backend over the domain pool.

   The gate is on time-to-decision: b&b must be no slower than old at every
   point (1.25x tolerance for timer noise on sub-ms points) and >= 10x
   faster at the largest space. *)

let uniform_spec ~stages ~processors =
  { (synthetic_spec ~stages ~processors) with Costspec.node_rates = Array.make processors 10.0 }

(* Seconds per run: warm-up, then best-of-3 of an n-run loop sized so one
   measurement lasts >= ~20ms (n = 1 for the slow backends). *)
let search_measure f =
  ignore (f ());
  let t0 = wall () in
  let result = ref (f ()) in
  let once = wall () -. t0 in
  let n = max 1 (min 1000 (int_of_float (0.02 /. Float.max once 1e-9))) in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = wall () in
    for _ = 1 to n do
      result := f ()
    done;
    let dt = (wall () -. t0) /. Float.of_int n in
    if dt < !best then best := dt
  done;
  (!result, !best)

type search_point = {
  q_stages : int;
  q_processors : int;
  q_space : int;
  q_uniform : bool;
  q_old_s : float;
  q_gray_s : float;
  q_bb_s : float;
  q_bb_scored : int;
  q_par_s : float;
}

let run_search ~quick ~out ~jobs =
  let cores = Domain.recommended_domain_count () in
  let shapes =
    (* (stages, processors, uniform node rates). Spaces: 256, 4k, 65k (x2),
       262k, plus 46k and 1M in the full run. *)
    if quick then [ (4, 4, false); (6, 4, false); (8, 4, false); (8, 4, true); (9, 4, false) ]
    else
      [
        (4, 4, false); (6, 4, false); (6, 6, false); (8, 4, false); (8, 4, true);
        (9, 4, false); (10, 4, false);
      ]
  in
  Printf.printf "######## Mapping-search bench (old vs incremental) ########\n";
  Printf.printf "cores: %d | pool workers: %d\n" cores jobs;
  let pool = Aspipe_runner.Pool.create ~workers:jobs () in
  let par = { Search.pmap = (fun f xs -> Aspipe_runner.Pool.map_list pool f xs) } in
  let points =
    List.map
      (fun (stages, processors, uniform) ->
        let spec =
          if uniform then uniform_spec ~stages ~processors
          else synthetic_spec ~stages ~processors
        in
        let space = Option.get (Mapping.space_size ~stages ~processors) in
        let evaluator m = Analytic.throughput spec m in
        let old_r, old_s =
          search_measure (fun () -> Search.exhaustive_ref ~stages ~processors evaluator)
        in
        let gray_r, gray_s =
          search_measure (fun () -> Search.exhaustive_spec ~prune:false ~canonical:false spec)
        in
        let bb_r, bb_s = search_measure (fun () -> Search.exhaustive_spec spec) in
        let par_r, par_s = search_measure (fun () -> Search.exhaustive_par ~par spec) in
        (* The speedup numbers are only worth recording if every backend
           decided identically. *)
        List.iter
          (fun (name, (r : Search.result)) ->
            if
              (not (Mapping.equal r.Search.mapping old_r.Search.mapping))
              || Int64.bits_of_float r.Search.score
                 <> Int64.bits_of_float old_r.Search.score
            then begin
              Printf.eprintf "bench --search: %s result mismatch at Ns=%d Np=%d\n" name stages
                processors;
              exit 2
            end)
          [ ("gray", gray_r); ("b&b", bb_r); ("par", par_r) ];
        Printf.printf
          "Ns=%-2d Np=%-2d space=%-8d%s old %8.2f ms | gray %8.2f ms (%6.1fx) | b&b %8.2f ms \
           (%6.1fx, %d scored) | par %8.2f ms\n"
          stages processors space
          (if uniform then " uniform" else "        ")
          (old_s *. 1e3) (gray_s *. 1e3) (old_s /. gray_s) (bb_s *. 1e3) (old_s /. bb_s)
          bb_r.Search.evaluated (par_s *. 1e3);
        {
          q_stages = stages;
          q_processors = processors;
          q_space = space;
          q_uniform = uniform;
          q_old_s = old_s;
          q_gray_s = gray_s;
          q_bb_s = bb_s;
          q_bb_scored = bb_r.Search.evaluated;
          q_par_s = par_s;
        })
      shapes
  in
  Aspipe_runner.Pool.shutdown pool;
  let tolerance = 1.25 in
  let slow_points =
    List.filter (fun p -> p.q_bb_s > p.q_old_s *. tolerance) points
  in
  let largest = List.fold_left (fun acc p -> if p.q_space > acc.q_space then p else acc)
      (List.hd points) (List.tl points)
  in
  let largest_ratio = largest.q_old_s /. largest.q_bb_s in
  let required = 10.0 in
  let pass = slow_points = [] && largest_ratio >= required in
  let json =
    Json.Obj
      [
        ("schema", Json.String "aspipe-bench/1");
        ("quick", Json.Bool quick);
        ("ocaml", Json.String Sys.ocaml_version);
        ("cores", Json.Int cores);
        ("pool_workers", Json.Int jobs);
        ( "method",
          Json.String
            "mapping-search sweep: per shape, best-of-3 timed runs (looped to >= 20ms for \
             sub-ms backends); old = materialized enumerate + full evaluator, gray = \
             incremental Gray-order walk (all candidates scored), bb = branch-and-bound + \
             symmetry canonicalization, par = chunked parallel backend; all backends \
             result-checked identical" );
        ( "search",
          Json.Obj
            [
              ( "sweep",
                Json.List
                  (List.map
                     (fun p ->
                       Json.Obj
                         [
                           ("stages", Json.Int p.q_stages);
                           ("processors", Json.Int p.q_processors);
                           ("space", Json.Int p.q_space);
                           ("uniform_rates", Json.Bool p.q_uniform);
                           ("old_ms", Json.Float (p.q_old_s *. 1e3));
                           ("gray_ms", Json.Float (p.q_gray_s *. 1e3));
                           ("bb_ms", Json.Float (p.q_bb_s *. 1e3));
                           ("bb_scored", Json.Int p.q_bb_scored);
                           ("par_ms", Json.Float (p.q_par_s *. 1e3));
                           ( "old_evals_per_sec",
                             Json.Float (Float.of_int p.q_space /. p.q_old_s) );
                           ( "gray_evals_per_sec",
                             Json.Float (Float.of_int p.q_space /. p.q_gray_s) );
                           ( "bb_decisions_per_sec_equiv",
                             Json.Float (Float.of_int p.q_space /. p.q_bb_s) );
                           ("speedup_gray_vs_old", Json.Float (p.q_old_s /. p.q_gray_s));
                           ("speedup_bb_vs_old", Json.Float (p.q_old_s /. p.q_bb_s));
                         ])
                     points) );
              ( "gate",
                Json.Obj
                  [
                    ("tolerance", Json.Float tolerance);
                    ("largest_space", Json.Int largest.q_space);
                    ("largest_speedup_bb_vs_old", Json.Float largest_ratio);
                    ("required_largest_speedup", Json.Float required);
                    ("slow_points", Json.Int (List.length slow_points));
                    ("pass", Json.Bool pass);
                  ] );
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if pass then
    Printf.printf "search gate: %.1fx at the largest space (%d), new <= old everywhere — ok\n"
      largest_ratio largest.q_space
  else begin
    List.iter
      (fun p ->
        Printf.eprintf
          "search gate: REGRESSION — b&b %.2f ms slower than old %.2f ms at Ns=%d Np=%d\n"
          (p.q_bb_s *. 1e3) (p.q_old_s *. 1e3) p.q_stages p.q_processors)
      slow_points;
    if largest_ratio < required then
      Printf.eprintf
        "search gate: REGRESSION — only %.1fx over old at the largest space (%d), %.0fx \
         required\n"
        largest_ratio largest.q_space required;
    exit 1
  end

let run_perf ~quick ~out ~baseline_file =
  (* Warm-ups mirror the measured shapes at reduced size. *)
  ignore (des_microbench ~timers:64 ~events:10_000);
  let des_events, des_secs, des_bytes =
    best_of 5 (fun (_, s, _) -> s) (fun () -> des_microbench ~timers:512 ~events:1_000_000)
  in
  let des_ev_s = Float.of_int des_events /. des_secs in
  ignore (sim_microbench ~observed:true ~items:200);
  let sim_items, sim_secs, sim_bytes, sim_events =
    best_of 3 (fun (_, s, _, _) -> s) (fun () -> sim_microbench ~observed:true ~items:5000)
  in
  let _, unobs_secs, unobs_bytes, _ =
    best_of 3 (fun (_, s, _, _) -> s) (fun () -> sim_microbench ~observed:false ~items:5000)
  in
  (* Full-registry campaign wall time across a jobs sweep (capped and
     oversubscribed). Allocation is sampled in the calling domain only
     (workers have their own GC) around a dedicated jobs-1 run that doubles
     as the sweep's warm-up, so it is reported per outcome as an
     approximation. *)
  let a0 = Gc.allocated_bytes () in
  let report1 = Aspipe_runner.Campaign.run ~jobs:1 ~quick () in
  let a1 = Gc.allocated_bytes () in
  let outcomes = List.length report1.Aspipe_runner.Campaign.outcomes in
  let reps = if quick then 3 else 1 in
  let sweep = run_sweep ~quick ~oversubscribe:false ~reps in
  let sweep_over = run_sweep ~quick ~oversubscribe:true ~reps:(max 1 (reps - 1)) in
  let json =
    Json.Obj
      [
        ("schema", Json.String "aspipe-bench/1");
        ("quick", Json.Bool quick);
        ("ocaml", Json.String Sys.ocaml_version);
        ("method", Json.String "best-of-5 (des) / best-of-3 wall time; release profile; see DESIGN.md");
        ("baseline", baseline_json);
        ( "current",
          Json.Obj
            [
              ( "des",
                Json.Obj
                  [
                    ("events", Json.Int des_events);
                    ("events_per_sec", Json.Float des_ev_s);
                    ("ns_per_event", Json.Float (des_secs *. 1e9 /. Float.of_int des_events));
                    ("bytes_per_event", Json.Float (des_bytes /. Float.of_int des_events));
                  ] );
              ( "sim",
                Json.Obj
                  [
                    ("items", Json.Int sim_items);
                    ("events", Json.Int sim_events);
                    ("items_per_sec", Json.Float (Float.of_int sim_items /. sim_secs));
                    ("bytes_per_item", Json.Float (sim_bytes /. Float.of_int sim_items));
                  ] );
              ( "sim_unobserved",
                Json.Obj
                  [
                    ("items", Json.Int sim_items);
                    ("items_per_sec", Json.Float (Float.of_int sim_items /. unobs_secs));
                    ("bytes_per_item", Json.Float (unobs_bytes /. Float.of_int sim_items));
                  ] );
              ( "campaign",
                campaign_json ~quick ~outcomes ~sweep ~sweep_over
                  ~bytes_per_outcome:
                    (Some ((a1 -. a0) /. Float.of_int (max 1 outcomes))) );
            ] );
        ("cores", Json.Int (Domain.recommended_domain_count ()));
        ( "improvement",
          Json.Obj [ ("des_events_per_sec_ratio", Json.Float (des_ev_s /. 4_349_832.0)) ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "######## Perf harness ########\n";
  Printf.printf "des microbench:   %9.0f events/s  %6.1f ns/event  %6.1f bytes/event\n" des_ev_s
    (des_secs *. 1e9 /. Float.of_int des_events)
    (des_bytes /. Float.of_int des_events);
  Printf.printf "sim (observed):   %9.0f items/s   %6.1f bytes/item\n"
    (Float.of_int sim_items /. sim_secs)
    (sim_bytes /. Float.of_int sim_items);
  Printf.printf "sim (unobserved): %9.0f items/s   %6.1f bytes/item\n"
    (Float.of_int sim_items /. unobs_secs)
    (unobs_bytes /. Float.of_int sim_items);
  Printf.printf "campaign (%s): %d outcomes\n" (if quick then "quick" else "full") outcomes;
  print_sweep ~label:(if quick then "quick" else "full") ~reps sweep;
  print_sweep ~label:"oversubscribed" ~reps:(max 1 (reps - 1)) sweep_over;
  Printf.printf "vs pre-PR baseline: %.2fx des events/s\n" (des_ev_s /. 4_349_832.0);
  Printf.printf "wrote %s\n" out;
  if not (sweep_gate sweep) then exit 1;
  match baseline_file with
  | None -> ()
  | Some file -> (
      let contents = In_channel.with_open_text file In_channel.input_all in
      match Json.of_string contents with
      | Error msg ->
          Printf.eprintf "perf: cannot parse baseline %s: %s\n" file msg;
          exit 2
      | Ok committed -> (
          match float_member [ "current"; "des"; "events_per_sec" ] committed with
          | None ->
              Printf.eprintf "perf: %s has no current.des.events_per_sec\n" file;
              exit 2
          | Some committed_ev_s ->
              let floor = 0.75 *. committed_ev_s in
              if des_ev_s < floor then begin
                Printf.eprintf
                  "perf: REGRESSION — des microbench %.0f events/s is more than 25%% below the \
                   committed %.0f events/s\n"
                  des_ev_s committed_ev_s;
                exit 1
              end
              else
                Printf.printf "regression gate: %.0f events/s >= 75%% of committed %.0f — ok\n"
                  des_ev_s committed_ev_s))

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let skip_micro = List.mem "--skip-micro" args in
  let flag_value name =
    let rec find = function
      | key :: value :: _ when key = name -> Some value
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let only = Option.map (String.split_on_char ',') (flag_value "--only") in
  let jobs =
    match flag_value "--jobs" with
    | None -> Aspipe_runner.Campaign.default_jobs ()
    | Some v -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> j
        | _ ->
            Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" v;
            exit 2)
  in
  let cache_dir = flag_value "--cache" in
  let oversubscribe = List.mem "--oversubscribe" args in
  if List.mem "--perf" args then begin
    let out = Option.value (flag_value "--perf-out") ~default:"BENCH_5.json" in
    run_perf ~quick ~out ~baseline_file:(flag_value "--perf-baseline");
    exit 0
  end;
  if List.mem "--jobs-sweep" args then begin
    let out = Option.value (flag_value "--perf-out") ~default:"BENCH_5.json" in
    run_jobs_sweep ~quick ~oversubscribe ~out;
    exit 0
  end;
  if List.mem "--mc" args then begin
    let out = Option.value (flag_value "--mc-out") ~default:"BENCH_8.json" in
    let items_override =
      match flag_value "--mc-items" with
      | None -> None
      | Some v -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> Some n
          | _ ->
              Printf.eprintf "bench: --mc-items expects a positive integer, got %S\n" v;
              exit 2)
    in
    run_mc ~quick ~out ~items_override;
    exit 0
  end;
  if List.mem "--search" args then begin
    let out = Option.value (flag_value "--search-out") ~default:"BENCH_9.json" in
    run_search ~quick ~out ~jobs;
    exit 0
  end;
  (match Aspipe_runner.Campaign.run ~jobs ~oversubscribe ?cache_dir ?only ~quick () with
  | report ->
      Aspipe_runner.Campaign.print_outputs report;
      Aspipe_runner.Campaign.print_summary report
  | exception Invalid_argument msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2);
  if not skip_micro then run_micro ();
  run_metrics_snapshot ~quick
