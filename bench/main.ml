(* The benchmark harness: regenerates every reconstructed table and figure
   (the full registry, E1..E20) through the multicore campaign runner, then
   runs Bechamel micro-benchmarks of the decision path —
   the components whose speed makes run-time adaptation viable at all.

   Usage: dune exec bench/main.exe            (full experiment sizes)
          dune exec bench/main.exe -- --quick (reduced sizes, same shapes)
          dune exec bench/main.exe -- --only E3,E9
          dune exec bench/main.exe -- --jobs 4    (worker domains; default =
                                                   recommended domain count;
                                                   output is byte-identical
                                                   to --jobs 1)
          dune exec bench/main.exe -- --cache DIR (content-addressed result
                                                   cache: unchanged
                                                   experiments of an
                                                   unchanged binary replay
                                                   from disk)
          dune exec bench/main.exe -- --skip-micro *)

open Bechamel
open Toolkit

module Rng = Aspipe_util.Rng
module Forecast = Aspipe_util.Forecast
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Search = Aspipe_model.Search
module Pqueue = Aspipe_des.Pqueue

let synthetic_spec ~stages ~processors =
  let rng = Rng.create 23 in
  {
    Costspec.stage_work = Array.init stages (fun _ -> Rng.range rng 0.5 2.0);
    node_rates = Array.init processors (fun _ -> Rng.range rng 5.0 15.0);
    item_bytes = 1e4;
    output_bytes = Array.make stages 1e4;
    latency = Array.init processors (fun _ -> Array.make processors 0.01);
    bandwidth = Array.init processors (fun _ -> Array.make processors 1e7);
    user_latency = Array.make processors 0.01;
    user_bandwidth = Array.make processors 1e7;
  }

let micro_tests () =
  let spec44 = synthetic_spec ~stages:4 ~processors:4 in
  let spec88 = synthetic_spec ~stages:8 ~processors:8 in
  let spec55 = synthetic_spec ~stages:5 ~processors:5 in
  let mapping44 = Mapping.round_robin ~stages:4 ~processors:4 in
  let mapping55 = Mapping.round_robin ~stages:5 ~processors:5 in
  Test.make_grouped ~name:"aspipe" ~fmt:"%s/%s"
    [
      Test.make ~name:"analytic-eval-4x4"
        (Staged.stage (fun () -> ignore (Analytic.throughput spec44 mapping44)));
      Test.make ~name:"ctmc-solve-4st"
        (Staged.stage (fun () -> ignore (Ctmc.throughput (Ctmc.of_costspec spec44 mapping44))));
      Test.make ~name:"ctmc-solve-5st"
        (Staged.stage (fun () -> ignore (Ctmc.throughput (Ctmc.of_costspec spec55 mapping55))));
      Test.make ~name:"search-exhaustive-4x4"
        (Staged.stage (fun () ->
             ignore (Search.exhaustive ~stages:4 ~processors:4 (Analytic.throughput spec44))));
      Test.make ~name:"search-auto-8x8"
        (Staged.stage (fun () ->
             ignore (Search.auto ~stages:8 ~processors:8 (Analytic.throughput spec88))));
      Test.make ~name:"pqueue-1k-insert-pop"
        (Staged.stage (fun () ->
             let q = Pqueue.create () in
             for i = 0 to 999 do
               ignore (Pqueue.insert q (Float.of_int ((i * 7919) mod 997)) i)
             done;
             let rec drain () = match Pqueue.pop q with Some _ -> drain () | None -> () in
             drain ()));
      Test.make ~name:"bus-emit-1k-observed"
        (Staged.stage (fun () ->
             (* Cost of the telemetry hot path: one subscribed sink, 1000
                emissions. Bounds the overhead every instrumented run pays. *)
             let bus = Aspipe_obs.Bus.create () in
             let seen = ref 0 in
             ignore (Aspipe_obs.Bus.subscribe bus (fun _ -> incr seen));
             for i = 0 to 999 do
               Aspipe_obs.Bus.emit bus (Aspipe_obs.Event.Completion { item = i })
             done));
      Test.make ~name:"forecast-adaptive-100obs"
        (Staged.stage (fun () ->
             let f = Forecast.adaptive () in
             for i = 0 to 99 do
               Forecast.observe f (0.5 +. (0.4 *. sin (Float.of_int i /. 7.0)))
             done;
             ignore (Forecast.predict f)));
      Test.make ~name:"sim-pipeline-100items"
        (Staged.stage (fun () ->
             let scenario =
               Aspipe_core.Scenario.make ~name:"bench"
                 ~make_topo:(fun engine ->
                   Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01
                     ~bandwidth:1e7 ())
                 ~stages:(Aspipe_skel.Stage.balanced ~n:4 ~work:1.0 ())
                 ~input:(Aspipe_skel.Stream_spec.make ~items:100 ())
                 ()
             in
             ignore
               (Aspipe_core.Baselines.run_static ~label:"bench" ~mapping:[| 0; 1; 2; 0 |]
                  ~scenario ~seed:3)));
    ]

let run_micro () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "######## Micro-benchmarks (monotonic clock, ns/run) ########";
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (estimate :: _) -> Printf.printf "%-36s %14.1f ns/run\n" name estimate
      | Some [] | None -> Printf.printf "%-36s (no estimate)\n" name)
    rows;
  print_newline ()

(* One instrumented adaptive run whose metrics snapshot closes the report:
   the same registry the CLI's [metrics] subcommand prints, so the bench
   output doubles as a telemetry regression reference. *)
let run_metrics_snapshot ~quick =
  let items = if quick then 150 else 500 in
  let scenario =
    Aspipe_core.Scenario.make ~name:"bench-telemetry"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
      ~loads:[ (0, Aspipe_grid.Loadgen.Step { at = 30.0; level = 0.2 }) ]
      ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:4 ~factor:3.0 ())
      ~input:(Aspipe_skel.Stream_spec.make ~arrival:(Aspipe_skel.Stream_spec.Spaced 0.3) ~items ())
      ~horizon:1e5 ()
  in
  let meter = ref None in
  ignore
    (Aspipe_core.Adaptive.run
       ~instrument:(fun bus -> meter := Some (Aspipe_obs.Meter.attach bus))
       ~scenario ~seed:7 ());
  match !meter with
  | None -> ()
  | Some meter ->
      print_endline "######## Telemetry snapshot (adaptive run, seed 7) ########";
      print_string (Aspipe_obs.Metrics.render (Aspipe_obs.Meter.snapshot meter));
      print_newline ()

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let skip_micro = List.mem "--skip-micro" args in
  let flag_value name =
    let rec find = function
      | key :: value :: _ when key = name -> Some value
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let only = Option.map (String.split_on_char ',') (flag_value "--only") in
  let jobs =
    match flag_value "--jobs" with
    | None -> Aspipe_runner.Campaign.default_jobs ()
    | Some v -> (
        match int_of_string_opt v with
        | Some j when j >= 1 -> j
        | _ ->
            Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" v;
            exit 2)
  in
  let cache_dir = flag_value "--cache" in
  (match Aspipe_runner.Campaign.run ~jobs ?cache_dir ?only ~quick () with
  | report ->
      Aspipe_runner.Campaign.print_outputs report;
      Aspipe_runner.Campaign.print_summary report
  | exception Invalid_argument msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2);
  if not skip_micro then run_micro ();
  run_metrics_snapshot ~quick
