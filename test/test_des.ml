(* Tests for the discrete-event engine: priority queue, event loop, signals
   and rate-modulated servers. *)

module Pqueue = Aspipe_des.Pqueue
module Engine = Aspipe_des.Engine
module Signal = Aspipe_des.Signal
module Server = Aspipe_des.Server
module Rng = Aspipe_util.Rng

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --------------------------------------------------------------- Pqueue *)

let test_pqueue_ordering =
  qtest "pop yields keys in non-decreasing order"
    QCheck2.Gen.(list_size (int_range 0 300) (float_range 0.0 1000.0))
    (fun keys ->
      let q = Pqueue.create () in
      List.iteri (fun i k -> ignore (Pqueue.insert q k i)) keys;
      let rec drain acc =
        match Pqueue.pop q with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort Float.compare keys)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> ignore (Pqueue.insert q 1.0 v)) [ 1; 2; 3; 4 ];
  let order =
    List.init 4 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "equal keys pop in insertion order" [ 1; 2; 3; 4 ] order

let test_pqueue_cancel () =
  let q = Pqueue.create () in
  let _a = Pqueue.insert q 1.0 "a" in
  let b = Pqueue.insert q 2.0 "b" in
  let _c = Pqueue.insert q 3.0 "c" in
  Pqueue.cancel b;
  Pqueue.cancel b (* idempotent *);
  Alcotest.(check bool) "cancelled flag" true (Pqueue.cancelled b);
  Alcotest.(check int) "size counts live entries" 2 (Pqueue.size q);
  let popped =
    List.init 2 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "cancelled entry skipped" [ "a"; "c" ] popped;
  Alcotest.(check bool) "empty after" true (Pqueue.is_empty q)

let test_pqueue_peek_skips_cancelled () =
  let q = Pqueue.create () in
  let a = Pqueue.insert q 1.0 "a" in
  let _b = Pqueue.insert q 2.0 "b" in
  Pqueue.cancel a;
  Alcotest.(check (option (float 0.0))) "peek skips the cancelled root" (Some 2.0)
    (Pqueue.peek_key q)

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "pop empty" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek empty" true (Pqueue.peek_key q = None);
  Alcotest.(check bool) "pop_if empty" true (Pqueue.pop_if q ~horizon:infinity = None);
  Alcotest.(check int) "size empty" 0 (Pqueue.size q)

let test_pqueue_pop_if_horizon () =
  let q = Pqueue.create () in
  ignore (Pqueue.insert q 2.0 "b");
  ignore (Pqueue.insert q 1.0 "a");
  ignore (Pqueue.insert q 3.0 "c");
  Alcotest.(check bool) "beyond horizon stays" true (Pqueue.pop_if q ~horizon:0.5 = None);
  Alcotest.(check int) "nothing removed" 3 (Pqueue.size q);
  Alcotest.(check bool) "at horizon pops" true (Pqueue.pop_if q ~horizon:1.0 = Some (1.0, "a"));
  Alcotest.(check bool) "next beyond" true (Pqueue.pop_if q ~horizon:1.5 = None);
  Alcotest.(check bool) "wide horizon pops" true (Pqueue.pop_if q ~horizon:10.0 = Some (2.0, "b"))

let test_pqueue_pop_min_readback () =
  let q = Pqueue.create () in
  ignore (Pqueue.insert q 4.0 "later");
  ignore (Pqueue.insert q 2.0 "sooner");
  Alcotest.(check bool) "pops" true (Pqueue.pop_min q ~horizon:infinity);
  Alcotest.(check (float 0.0)) "popped key" 2.0 (Pqueue.popped_key q);
  Alcotest.(check string) "popped value" "sooner" (Pqueue.popped_value q);
  Alcotest.(check bool) "pops again" true (Pqueue.pop_min q ~horizon:infinity);
  Alcotest.(check string) "second value" "later" (Pqueue.popped_value q);
  Alcotest.(check bool) "then empty" false (Pqueue.pop_min q ~horizon:infinity)

let test_pqueue_pop_if_drops_cancelled_beyond_horizon () =
  let q = Pqueue.create () in
  let h = Pqueue.insert q 5.0 "dead" in
  ignore (Pqueue.insert q 7.0 "live");
  Pqueue.cancel h;
  (* The cancelled root is physically removed even though both entries lie
     beyond the horizon. *)
  Alcotest.(check bool) "nothing within horizon" true (Pqueue.pop_if q ~horizon:1.0 = None);
  Alcotest.(check bool) "live entry pops" true (Pqueue.pop_if q ~horizon:10.0 = Some (7.0, "live"))

(* Model-based property: any interleaving of insert / remove-min / cancel
   agrees with a reference model — a list of live [(key, seq)] pairs where
   the minimum is by key then insertion order. Small integer keys force
   ties; cancel targets any handle ever issued, so cancelling entries that
   were already popped or cancelled is exercised too (idempotent no-op). *)

type pq_op = Pq_insert of int | Pq_remove_min | Pq_cancel of int | Pq_pop_if of int

let pq_op_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun k -> Pq_insert k) (int_range 0 20));
        (3, return Pq_remove_min);
        (2, map (fun i -> Pq_cancel i) (int_range 0 10_000));
        (2, map (fun h -> Pq_pop_if h) (int_range 0 20));
      ])

let test_pqueue_matches_model =
  qtest ~count:150 "interleaved insert/remove-min/cancel matches reference model"
    QCheck2.Gen.(list_size (int_range 0 150) pq_op_gen)
    (fun ops ->
      let q = Pqueue.create () in
      let handles = ref [] (* every handle ever issued, newest first *) in
      let issued = ref 0 in
      let live = ref [] (* model: live (key, seq) entries *) in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Pq_insert k ->
              let key = float_of_int k in
              let h = Pqueue.insert q key !seq in
              handles := (h, (key, !seq)) :: !handles;
              incr issued;
              live := (key, !seq) :: !live;
              incr seq;
              Pqueue.size q = List.length !live
          | Pq_remove_min ->
              let expected =
                match List.sort compare !live with
                | [] -> None
                | ((k, s) as min) :: _ ->
                    live := List.filter (fun e -> e <> min) !live;
                    Some (k, s)
              in
              Pqueue.pop q = expected
          | Pq_cancel i ->
              if !issued = 0 then true
              else begin
                let h, target = List.nth !handles (i mod !issued) in
                Pqueue.cancel h;
                live := List.filter (fun e -> e <> target) !live;
                Pqueue.cancelled h && Pqueue.size q = List.length !live
              end
          | Pq_pop_if h ->
              let horizon = float_of_int h in
              let expected =
                match List.sort compare !live with
                | ((k, s) as min) :: _ when k <= horizon ->
                    live := List.filter (fun e -> e <> min) !live;
                    Some (k, s)
                | _ -> None
              in
              Pqueue.pop_if q ~horizon = expected)
        ops
      && (* after the op sequence, draining pops the remaining model in order *)
      List.sort compare !live
      = (let rec drain acc =
           match Pqueue.pop q with Some e -> drain (e :: acc) | None -> List.rev acc
         in
         drain []))

(* --------------------------------------------------------------- Engine *)

let test_engine_order () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule engine ~delay:3.0 (fun () -> log := "c" :: !log));
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule engine ~delay:2.0 (fun () -> log := "b" :: !log));
  Engine.run engine;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "clock at last event" 3.0 (Engine.now engine);
  Alcotest.(check int) "events fired" 3 (Engine.events_fired engine)

let test_engine_same_time_fifo () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule engine ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "FIFO at same instant" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_invalid () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: delay must be finite and non-negative") (fun () ->
      ignore (Engine.schedule engine ~delay:(-1.0) (fun () -> ())));
  Alcotest.check_raises "nan delay"
    (Invalid_argument "Engine.schedule: delay must be finite and non-negative") (fun () ->
      ignore (Engine.schedule engine ~delay:nan (fun () -> ())));
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> ()));
  Engine.run engine;
  Alcotest.check_raises "past schedule_at"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      ignore (Engine.schedule_at engine ~time:0.5 (fun () -> ())))

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule engine ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run engine;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_nested_scheduling () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule engine ~delay:1.0 (fun () ->
         log := `First :: !log;
         ignore (Engine.schedule engine ~delay:0.5 (fun () -> log := `Nested :: !log))));
  Engine.run engine;
  Alcotest.(check int) "both events fired" 2 (List.length !log);
  check_float "clock at nested event" 1.5 (Engine.now engine)

let test_engine_run_until () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule engine ~delay:5.0 (fun () -> incr fired));
  Engine.run ~until:2.0 engine;
  Alcotest.(check int) "only the early event" 1 !fired;
  check_float "clock advanced to horizon" 2.0 (Engine.now engine);
  Alcotest.(check int) "late event still pending" 1 (Engine.pending engine);
  Engine.run engine;
  Alcotest.(check int) "drains on unbounded run" 2 !fired

let test_engine_periodic () =
  let engine = Engine.create () in
  let ticks = ref 0 in
  Engine.periodic engine ~every:1.0 (fun () ->
      incr ticks;
      !ticks < 5);
  Engine.run engine;
  Alcotest.(check int) "stops when callback says so" 5 !ticks;
  check_float "last tick time" 5.0 (Engine.now engine)

let test_engine_periodic_start () =
  let engine = Engine.create () in
  let times = ref [] in
  Engine.periodic engine ~start:0.0 ~every:2.0 (fun () ->
      times := Engine.now engine :: !times;
      List.length !times < 3);
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "explicit start honoured" [ 0.0; 2.0; 4.0 ]
    (List.rev !times)

(* --------------------------------------------------------------- Signal *)

let test_signal_basics () =
  let engine = Engine.create () in
  let s = Signal.create engine 1.0 in
  check_float "initial value" 1.0 (Signal.get s);
  let seen = ref [] in
  Signal.subscribe s (fun ~old_value ~new_value -> seen := (old_value, new_value) :: !seen);
  Signal.set s 0.5;
  Signal.set s 0.5 (* no-op *);
  Signal.set s 0.8;
  Alcotest.(check int) "two real changes" 2 (List.length !seen);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "old/new pair" (0.5, 0.8) (List.hd !seen)

let test_signal_history () =
  let engine = Engine.create () in
  let s = Signal.create engine 1.0 in
  ignore (Engine.schedule engine ~delay:2.0 (fun () -> Signal.set s 0.25));
  Engine.run engine;
  let history = Signal.history s in
  check_float "history before the change" 1.0 (Aspipe_util.Timeseries.value_at history 1.0);
  check_float "history after the change" 0.25 (Aspipe_util.Timeseries.value_at history 3.0)

(* --------------------------------------------------------------- Server *)

let make_server ?(rate = 10.0) () =
  let engine = Engine.create () in
  let signal = Signal.create engine rate in
  let server = Server.create engine ~name:"s" ~rate:signal in
  (engine, signal, server)

let test_server_single_job_timing () =
  let engine, _, server = make_server ~rate:10.0 () in
  let finish = ref nan in
  Server.submit server ~work:25.0 (fun () -> finish := Engine.now engine);
  Engine.run engine;
  check_float "work/rate seconds" 2.5 !finish;
  Alcotest.(check int) "completed count" 1 (Server.completed server)

let test_server_fifo () =
  let engine, _, server = make_server ~rate:1.0 () in
  let order = ref [] in
  List.iter
    (fun tag -> Server.submit server ~work:1.0 ~tag (fun () -> order := tag :: !order))
    [ 1; 2; 3 ];
  Alcotest.(check int) "two waiting behind the first" 2 (Server.queue_length server);
  Engine.run engine;
  Alcotest.(check (list int)) "FIFO completion" [ 1; 2; 3 ] (List.rev !order);
  check_float "serialized makespan" 3.0 (Engine.now engine)

let test_server_rate_change_mid_service () =
  let engine, signal, server = make_server ~rate:10.0 () in
  let finish = ref nan in
  (* work 10 at rate 10 would finish at t=1; halving the rate at t=0.5
     leaves 5 units at rate 5 -> finish at 1.5. *)
  Server.submit server ~work:10.0 (fun () -> finish := Engine.now engine);
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Signal.set signal 5.0));
  Engine.run engine;
  check_float "completion re-derived from remaining work" 1.5 !finish

let test_server_zero_rate_stalls () =
  let engine, signal, server = make_server ~rate:10.0 () in
  let finish = ref nan in
  Server.submit server ~work:10.0 (fun () -> finish := Engine.now engine);
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Signal.set signal 0.0));
  ignore (Engine.schedule engine ~delay:2.5 (fun () -> Signal.set signal 10.0));
  Engine.run engine;
  (* 5 units done by 0.5, stalled 2 s, remaining 5 at rate 10 -> 0.5 more. *)
  check_float "stall then resume" 3.0 !finish

let test_server_rate_rise_speeds_up () =
  let engine, signal, server = make_server ~rate:1.0 () in
  let finish = ref nan in
  Server.submit server ~work:10.0 (fun () -> finish := Engine.now engine);
  ignore (Engine.schedule engine ~delay:1.0 (fun () -> Signal.set signal 9.0));
  Engine.run engine;
  check_float "1 unit at rate 1, 9 at rate 9" 2.0 !finish

let test_server_on_start () =
  let engine, _, server = make_server ~rate:1.0 () in
  let starts = ref [] in
  List.iter
    (fun tag ->
      Server.submit server ~work:2.0 ~tag
        ~on_start:(fun () -> starts := (tag, Engine.now engine) :: !starts)
        (fun () -> ()))
    [ 1; 2 ];
  Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9)))) "service start instants" [ (1, 0.0); (2, 2.0) ]
    (List.rev !starts)

let test_server_utilization () =
  let engine, _, server = make_server ~rate:1.0 () in
  Server.submit server ~work:1.0 (fun () -> ());
  ignore (Engine.schedule engine ~delay:4.0 (fun () -> ()));
  Engine.run engine;
  check_float "busy 1s of 4s" 0.25 (Server.utilization server)

let test_server_in_service_remaining () =
  let engine, _, server = make_server ~rate:2.0 () in
  Server.submit server ~work:10.0 (fun () -> ());
  ignore
    (Engine.schedule engine ~delay:2.0 (fun () ->
         check_float "remaining after 2s at rate 2" 6.0 (Server.in_service_remaining server)));
  Engine.run engine;
  check_float "idle server has no remaining work" 0.0 (Server.in_service_remaining server)

let test_server_zero_work () =
  let engine, _, server = make_server () in
  let finish = ref nan in
  Server.submit server ~work:0.0 (fun () -> finish := Engine.now engine);
  Engine.run engine;
  check_float "zero work completes immediately" 0.0 !finish

let test_server_invalid_work () =
  let _, _, server = make_server () in
  Alcotest.check_raises "negative work"
    (Invalid_argument "Server.submit: work must be finite and non-negative") (fun () ->
      Server.submit server ~work:(-1.0) (fun () -> ()))

let test_server_resubmit_from_callback () =
  let engine, _, server = make_server ~rate:1.0 () in
  let finishes = ref [] in
  Server.submit server ~work:1.0 (fun () ->
      finishes := Engine.now engine :: !finishes;
      Server.submit server ~work:1.0 (fun () -> finishes := Engine.now engine :: !finishes));
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "chained submissions run back-to-back" [ 1.0; 2.0 ]
    (List.rev !finishes)

let test_server_shared_rate_signal () =
  (* Two servers driven by one signal must both retime on a change. *)
  let engine = Engine.create () in
  let signal = Signal.create engine 10.0 in
  let a = Server.create engine ~name:"a" ~rate:signal in
  let b = Server.create engine ~name:"b" ~rate:signal in
  let fa = ref nan and fb = ref nan in
  Server.submit a ~work:10.0 (fun () -> fa := Engine.now engine);
  Server.submit b ~work:20.0 (fun () -> fb := Engine.now engine);
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Signal.set signal 5.0));
  Engine.run engine;
  check_float "server a retimed" 1.5 !fa;
  check_float "server b retimed" 3.5 !fb

let test_server_random_rate_schedule =
  (* Property: total work done equals the integral of the rate over the busy
     period, i.e. completion happens exactly when the integral reaches the
     submitted work. *)
  qtest ~count:60 "completion matches rate-signal integral"
    QCheck2.Gen.(
      pair (float_range 1.0 50.0) (list_size (int_range 0 8) (float_range 0.1 10.0)))
    (fun (work, rates) ->
      let engine = Engine.create () in
      let signal = Signal.create engine 1.0 in
      let server = Server.create engine ~name:"p" ~rate:signal in
      let finish = ref nan in
      Server.submit server ~work (fun () -> finish := Engine.now engine);
      List.iteri
        (fun i rate ->
          ignore
            (Engine.schedule_at engine
               ~time:(Float.of_int (i + 1))
               (fun () -> Signal.set signal rate)))
        rates;
      Engine.run engine;
      if Float.is_nan !finish then false
      else begin
        (* Integrate the applied schedule up to the completion time. *)
        let rate_at t =
          let rec find i value = function
            | [] -> value
            | r :: rest ->
                if t >= Float.of_int (i + 1) then find (i + 1) r rest else value
          in
          find 0 1.0 rates
        in
        let steps = 20_000 in
        let dt = !finish /. Float.of_int steps in
        let integral = ref 0.0 in
        for k = 0 to steps - 1 do
          integral := !integral +. (rate_at ((Float.of_int k +. 0.5) *. dt) *. dt)
        done;
        Float.abs (!integral -. work) < 0.05 *. work +. 0.1
      end)



let test_engine_random_schedule_order =
  qtest ~count:100 "random schedules fire in time order; cancelled never fire"
    QCheck2.Gen.(list_size (int_range 0 60) (pair (float_range 0.0 100.0) bool))
    (fun events ->
      let engine = Engine.create () in
      let fired = ref [] in
      let cancelled_fired = ref false in
      List.iter
        (fun (delay, cancel) ->
          let h =
            Engine.schedule engine ~delay (fun () ->
                if cancel then cancelled_fired := true
                else fired := Engine.now engine :: !fired)
          in
          if cancel then Engine.cancel h)
        events;
      Engine.run engine;
      let times = List.rev !fired in
      let expected =
        List.filter_map (fun (d, c) -> if c then None else Some d) events
        |> List.sort Float.compare
      in
      (not !cancelled_fired) && times = expected)

(* -------------------------------------------------------------- Process *)

module Process = Aspipe_des.Process

let test_process_sleep_interleaves () =
  let engine = Engine.create () in
  let log = ref [] in
  Process.spawn engine (fun () ->
      log := ("a", Process.now ()) :: !log;
      Process.sleep 2.0;
      log := ("a", Process.now ()) :: !log);
  Process.spawn engine (fun () ->
      Process.sleep 1.0;
      log := ("b", Process.now ()) :: !log);
  Engine.run engine;
  Alcotest.(check (list (pair string (float 1e-9)))) "interleaved by virtual time"
    [ ("a", 0.0); ("b", 1.0); ("a", 2.0) ]
    (List.rev !log)

let test_process_spawn_at () =
  let engine = Engine.create () in
  let started = ref nan in
  Process.spawn engine ~at:5.0 (fun () -> started := Process.now ());
  Engine.run engine;
  check_float "starts at the requested time" 5.0 !started

let test_process_await_bridges_callbacks () =
  (* A process submits to a rate-modulated server and awaits the completion
     callback — sequential code over the callback API. *)
  let engine = Engine.create () in
  let signal = Signal.create engine 10.0 in
  let server = Server.create engine ~name:"p" ~rate:signal in
  let finish = ref nan in
  Process.spawn engine (fun () ->
      Process.await (fun k -> Server.submit server ~work:20.0 (fun () -> k ()));
      finish := Process.now ());
  Engine.run engine;
  check_float "resumed exactly at service completion" 2.0 !finish

let test_process_wait_until () =
  let engine = Engine.create () in
  let flag = ref false in
  ignore (Engine.schedule engine ~delay:3.0 (fun () -> flag := true));
  let observed = ref nan in
  Process.spawn engine (fun () ->
      Process.wait_until ~poll_every:0.5 (fun () -> !flag);
      observed := Process.now ());
  Engine.run engine;
  Alcotest.(check bool) "woke shortly after the flag" true (!observed >= 3.0 && !observed <= 3.5)

let test_process_outside_raises () =
  Alcotest.check_raises "sleep outside a process"
    (Failure "Process.sleep: must be called from inside a process") (fun () ->
      Process.sleep 1.0);
  Alcotest.check_raises "now outside a process"
    (Failure "Process.now: must be called from inside a process") (fun () ->
      ignore (Process.now ()))

let test_process_mailbox () =
  let engine = Engine.create () in
  let mailbox = Process.Mailbox.create engine in
  let received = ref [] in
  Process.spawn engine (fun () ->
      for _ = 1 to 3 do
        let v = Process.Mailbox.recv mailbox in
        received := (v, Process.now ()) :: !received
      done);
  Process.spawn engine (fun () ->
      Process.Mailbox.send mailbox 10 (* consumed immediately *);
      Process.sleep 2.0;
      Process.Mailbox.send mailbox 20;
      Process.Mailbox.send mailbox 30);
  Engine.run engine;
  Alcotest.(check (list (pair int (float 1e-9)))) "messages received in order, at send times"
    [ (10, 0.0); (20, 2.0); (30, 2.0) ]
    (List.rev !received);
  Alcotest.(check int) "mailbox drained" 0 (Process.Mailbox.length mailbox)

let test_process_mailbox_buffers () =
  let engine = Engine.create () in
  let mailbox = Process.Mailbox.create engine in
  Process.Mailbox.send mailbox "x";
  Process.Mailbox.send mailbox "y";
  Alcotest.(check int) "buffered when nobody waits" 2 (Process.Mailbox.length mailbox);
  let first = ref "" in
  Process.spawn engine (fun () -> first := Process.Mailbox.recv mailbox);
  Engine.run engine;
  Alcotest.(check string) "fifo" "x" !first

let () =
  Alcotest.run "aspipe_des"
    [
      ( "pqueue",
        [
          test_pqueue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_pqueue_cancel;
          Alcotest.test_case "peek skips cancelled" `Quick test_pqueue_peek_skips_cancelled;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
          Alcotest.test_case "pop_if horizon" `Quick test_pqueue_pop_if_horizon;
          Alcotest.test_case "pop_min read-back" `Quick test_pqueue_pop_min_readback;
          Alcotest.test_case "pop_if drops cancelled beyond horizon" `Quick
            test_pqueue_pop_if_drops_cancelled_beyond_horizon;
          test_pqueue_matches_model;
        ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "invalid" `Quick test_engine_invalid;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "periodic" `Quick test_engine_periodic;
          Alcotest.test_case "periodic start" `Quick test_engine_periodic_start;
          test_engine_random_schedule_order;
        ] );
      ( "signal",
        [
          Alcotest.test_case "basics" `Quick test_signal_basics;
          Alcotest.test_case "history" `Quick test_signal_history;
        ] );
      ( "process",
        [
          Alcotest.test_case "sleep interleaves" `Quick test_process_sleep_interleaves;
          Alcotest.test_case "spawn at" `Quick test_process_spawn_at;
          Alcotest.test_case "await bridges callbacks" `Quick test_process_await_bridges_callbacks;
          Alcotest.test_case "wait_until" `Quick test_process_wait_until;
          Alcotest.test_case "outside a process" `Quick test_process_outside_raises;
          Alcotest.test_case "mailbox" `Quick test_process_mailbox;
          Alcotest.test_case "mailbox buffers" `Quick test_process_mailbox_buffers;
        ] );
      ( "server",
        [
          Alcotest.test_case "single job timing" `Quick test_server_single_job_timing;
          Alcotest.test_case "fifo" `Quick test_server_fifo;
          Alcotest.test_case "rate change mid-service" `Quick test_server_rate_change_mid_service;
          Alcotest.test_case "zero rate stalls" `Quick test_server_zero_rate_stalls;
          Alcotest.test_case "rate rise" `Quick test_server_rate_rise_speeds_up;
          Alcotest.test_case "on_start" `Quick test_server_on_start;
          Alcotest.test_case "utilization" `Quick test_server_utilization;
          Alcotest.test_case "in-service remaining" `Quick test_server_in_service_remaining;
          Alcotest.test_case "zero work" `Quick test_server_zero_work;
          Alcotest.test_case "invalid work" `Quick test_server_invalid_work;
          Alcotest.test_case "resubmit from callback" `Quick test_server_resubmit_from_callback;
          Alcotest.test_case "shared rate signal" `Quick test_server_shared_rate_signal;
          test_server_random_rate_schedule;
        ] );
    ]
