(* Tests for the serving subsystem: arrival generators against closed-form
   expected counts, trace-replay round-trips, the CLI spec grammar, SLO
   window arithmetic, the recorded per-item sojourn series, and end-to-end
   determinism of the serving driver — including E21 byte-for-byte under
   --jobs 1 vs --jobs 4. *)

module Rng = Aspipe_util.Rng
module Engine = Aspipe_des.Engine
module Bus = Aspipe_obs.Bus
module Event = Aspipe_obs.Event
module Trace = Aspipe_grid.Trace
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Scenario = Aspipe_core.Scenario
module Arrival = Aspipe_serve.Arrival
module Slo = Aspipe_serve.Slo
module Autoscaler = Aspipe_serve.Autoscaler
module Serve = Aspipe_serve.Serve
module Campaign = Aspipe_runner.Campaign

let seed = 7

(* ------------------------------------------------------------- arrivals *)

(* A Poisson(N) count stays within 6 standard deviations of N for any
   draw we would keep; with a fixed seed this is a deterministic
   regression band, not a flaky statistical test. *)
let check_count name expected n =
  let sd = sqrt expected in
  let lo = expected -. (6.0 *. sd) and hi = expected +. (6.0 *. sd) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d arrivals within [%.0f, %.0f]" name n lo hi)
    true
    (let x = Float.of_int n in x >= lo && x <= hi)

let test_poisson_count () =
  let t = Arrival.poisson ~rate:2.0 in
  check_count "poisson 2/s over 1000 s" 2000.0
    (Array.length (Arrival.times ~until:1000.0 ~rng:(Rng.create seed) t))

let test_nhpp_counts () =
  (* Over whole periods the sine integrates away: E[N] = base · T. *)
  let t = Arrival.diurnal ~base:2.0 ~amplitude:1.5 ~period:100.0 in
  check_count "diurnal over 10 periods" 2000.0
    (Array.length (Arrival.times ~until:1000.0 ~rng:(Rng.create seed) t));
  (* Flash crowd: ∫rate = base·T + surge·(ramp/2 + decay·(1 − e^{−Δ/decay})). *)
  let t = Arrival.flash_crowd ~base:1.0 ~peak:5.0 ~at:100.0 ~ramp:20.0 ~decay:30.0 in
  let expected = 1000.0 +. (4.0 *. (10.0 +. (30.0 *. (1.0 -. exp (-880.0 /. 30.0))))) in
  check_count "flash crowd closed form" expected
    (Array.length (Arrival.times ~until:1000.0 ~rng:(Rng.create (seed + 1)) t))

let test_nhpp_respects_zero_rate () =
  let t = Arrival.nhpp ~rate:(fun t -> if t < 500.0 then 0.0 else 3.0) ~rate_max:3.0 in
  let times = Arrival.times ~until:1000.0 ~rng:(Rng.create seed) t in
  Alcotest.(check bool) "no arrivals in the zero-rate stretch" true
    (Array.for_all (fun x -> x >= 500.0) times);
  check_count "second half at rate 3" 1500.0 (Array.length times)

(* MMPP counts are modulation-dominated: the state-occupancy fluctuation
   contributes far more variance than the Poisson draws, so the band is a
   relative ±15% over many holding cycles (and, with the seed fixed, a
   deterministic regression band). The two expectations together pin the
   holding distribution down: only the Exp-occupancy ratio 25/(75+25) puts
   the skewed process at half the symmetric one's count. *)
let check_mmpp name expected n =
  let lo = 0.85 *. expected and hi = 1.15 *. expected in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d arrivals within [%.0f, %.0f]" name n lo hi)
    true
    (let x = Float.of_int n in x >= lo && x <= hi)

let test_mmpp_counts () =
  (* Symmetric holding: half the time in each state → E[N] = mean rate · T. *)
  let t = Arrival.mmpp ~rates:[| 0.0; 4.0 |] ~mean_holding:[| 25.0; 25.0 |] in
  check_mmpp "mmpp 0/4 symmetric" 40000.0
    (Array.length (Arrival.times ~until:20000.0 ~rng:(Rng.create seed) t))

let test_mmpp_holding_modulates () =
  (* Stretching one state's holding shifts occupancy with it: holding 75/25
     at rates 0/4 → the emitting state holds 1/4 of the time. *)
  let t = Arrival.mmpp ~rates:[| 0.0; 4.0 |] ~mean_holding:[| 75.0; 25.0 |] in
  check_mmpp "mmpp skewed occupancy" 20000.0
    (Array.length (Arrival.times ~until:20000.0 ~rng:(Rng.create seed) t))

let test_replay_round_trip () =
  let t = Arrival.mmpp ~rates:[| 1.0; 5.0 |] ~mean_holding:[| 30.0; 10.0 |] in
  let recorded = Arrival.times ~until:300.0 ~rng:(Rng.create seed) t in
  Alcotest.(check bool) "recorded something" true (Array.length recorded > 0);
  (* Replay ignores its rng entirely: a different seed must reproduce the
     recorded instants bit-for-bit. *)
  let replayed =
    Arrival.times ~until:300.0 ~rng:(Rng.create 0xdead) (Arrival.replay recorded)
  in
  Alcotest.(check (array (float 0.0))) "replay reproduces the draw exactly" recorded replayed

let test_schedule_matches_times () =
  (* The lazy self-rescheduling generator and the materializer are the same
     process: schedule must fire exactly at the instants times returns. *)
  let t = Arrival.diurnal ~base:2.0 ~amplitude:1.0 ~period:60.0 in
  let expected = Arrival.times ~max_items:100 ~until:120.0 ~rng:(Rng.create seed) t in
  let engine = Engine.create () in
  let seen = ref [] in
  Arrival.schedule ~max_items:100 ~until:120.0 ~rng:(Rng.create seed) ~engine t ~f:(fun () ->
      seen := Engine.now engine :: !seen);
  Engine.run engine;
  Alcotest.(check (array (float 1e-9))) "schedule fires at the materialized instants"
    expected
    (Array.of_list (List.rev !seen))

let test_parse_spec () =
  let shape spec = Format.asprintf "%a" Arrival.pp (Arrival.parse_spec spec) in
  Alcotest.(check string) "poisson" "poisson(2.5/s)" (shape "poisson:2.5");
  Alcotest.(check string) "diurnal" "nhpp(rate_max 2.8/s)" (shape "diurnal:1.6,1.2,240");
  Alcotest.(check string) "flash" "nhpp(rate_max 6/s)" (shape "flash:1.8,6,120,20,60");
  Alcotest.(check string) "mmpp" "mmpp(2 states, rates 1.2,4)" (shape "mmpp:1.2/80,4/40");
  Alcotest.(check string) "replay" "replay(3 arrivals)" (shape "replay:0,1,2.5");
  let refused spec =
    match Arrival.parse_spec spec with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "unknown kind refused" true (refused "bogus:1");
  Alcotest.(check bool) "bad arity refused" true (refused "poisson:1,2");
  Alcotest.(check bool) "bad number refused" true (refused "poisson:fast");
  Alcotest.(check bool) "missing colon refused" true (refused "poisson");
  Alcotest.(check bool) "constructor validation applies" true (refused "poisson:-1")

(* ------------------------------------------------------------------ slo *)

let test_slo_window_arithmetic () =
  let meter = Slo.create (Slo.spec ~target_quantile:0.9 ~threshold:1.0 ~window:10.0) in
  (* 20 departures, 2 over threshold: exactly the (1−q) budget → attained. *)
  for i = 1 to 20 do
    Slo.observe meter ~sojourn:(if i <= 2 then 2.0 else 0.5)
  done;
  let w = Slo.close_window meter ~now:10.0 in
  Alcotest.(check int) "completions" 20 w.Slo.completions;
  Alcotest.(check int) "violations" 2 w.Slo.violations;
  Alcotest.(check bool) "boundary attained" true w.Slo.attained;
  (* One more violation than the budget → miss. *)
  for i = 1 to 20 do
    Slo.observe meter ~sojourn:(if i <= 3 then 2.0 else 0.5)
  done;
  let w = Slo.close_window meter ~now:20.0 in
  Alcotest.(check bool) "over budget misses" false w.Slo.attained;
  (* An empty window is vacuously attained. *)
  let w = Slo.close_window meter ~now:30.0 in
  Alcotest.(check bool) "empty window vacuous" true w.Slo.attained;
  Alcotest.(check int) "window index" 2 w.Slo.index;
  Alcotest.(check (float 1e-9)) "attainment 2/3" (2.0 /. 3.0) (Slo.attainment meter);
  Alcotest.(check int) "completion total" 40 (Slo.completions_total meter);
  Alcotest.(check int) "violation total" 5 (Slo.violations_total meter)

let test_slo_spec_validation () =
  let refused f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "quantile 0" true
    (refused (fun () -> Slo.spec ~target_quantile:0.0 ~threshold:1.0 ~window:1.0));
  Alcotest.(check bool) "quantile 1" true
    (refused (fun () -> Slo.spec ~target_quantile:1.0 ~threshold:1.0 ~window:1.0));
  Alcotest.(check bool) "negative threshold" true
    (refused (fun () -> Slo.spec ~target_quantile:0.5 ~threshold:(-1.0) ~window:1.0));
  Alcotest.(check bool) "zero window" true
    (refused (fun () -> Slo.spec ~target_quantile:0.5 ~threshold:1.0 ~window:0.0))

(* ------------------------------------------------- trace sojourn series *)

let test_trace_sojourn_series () =
  (* Batch shape: entry is the item's first service start, and the series
     carries every item (the old interface exposed only the mean). *)
  let trace = Trace.create () in
  Trace.record_service trace { Trace.item = 0; stage = 0; node = 0; start = 1.0; finish = 2.0 };
  Trace.record_service trace { Trace.item = 1; stage = 0; node = 0; start = 2.0; finish = 3.0 };
  Trace.record_service trace { Trace.item = 0; stage = 1; node = 1; start = 2.5; finish = 4.0 };
  Trace.record_completion trace ~item:1 ~time:6.5;
  Trace.record_completion trace ~item:0 ~time:5.0;
  Alcotest.(check (array (pair int (float 1e-9))))
    "per-item series, completion order"
    [| (1, 4.5); (0, 4.0) |]
    (Trace.sojourns trace);
  Alcotest.(check (float 1e-9)) "mean matches the series" 4.25 (Trace.mean_sojourn trace)

let test_trace_sojourn_stamp_wins () =
  (* Serving shape: an open-arrival stamp (Sojourn event) predates the first
     service start and must win as the entry instant. *)
  let trace = Trace.create () in
  let bus = Bus.create () in
  Trace.subscribe trace bus;
  Bus.emit bus (Event.Sojourn { item = 7; arrival = 0.5 });
  Trace.record_service trace { Trace.item = 7; stage = 0; node = 0; start = 2.0; finish = 3.0 };
  Trace.record_completion trace ~item:7 ~time:4.0;
  Alcotest.(check (array (pair int (float 1e-9))))
    "arrival stamp wins over first service start"
    [| (7, 3.5) |]
    (Trace.sojourns trace)

(* ---------------------------------------------------------------- serve *)

let small_scenario () =
  Scenario.make ~name:"serve-test"
    ~make_topo:(fun engine ->
      Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
    ~stages:
      (Array.init 3 (fun i ->
           Stage.make
             ~name:(Printf.sprintf "s%d" i)
             ~output_bytes:1e4 ~state_bytes:1e5
             ~work:(Aspipe_util.Variate.Constant 1.0)
             ()))
    ~input:(Stream_spec.make ~item_bytes:1e4 ~items:1 ())
    ~horizon:120.0 ()

let serve_once () =
  Serve.run
    ~autoscaler:(Autoscaler.latency_gradient ())
    ~arrival:(Arrival.poisson ~rate:1.5)
    ~slo:(Slo.spec ~target_quantile:0.95 ~threshold:6.0 ~window:30.0)
    ~provision_rate:1.5
    ~scenario:(small_scenario ())
    ~seed:11 ()

let test_serve_deterministic () =
  let a = serve_once () and b = serve_once () in
  Alcotest.(check bool) "serves something" true (a.Serve.completions > 0);
  Alcotest.(check int) "arrivals repeat" a.Serve.arrivals b.Serve.arrivals;
  Alcotest.(check (float 0.0)) "p99 bit-identical" a.Serve.p99 b.Serve.p99;
  Alcotest.(check (float 0.0)) "node-seconds bit-identical" a.Serve.node_seconds
    b.Serve.node_seconds;
  Alcotest.(check string) "whole report renders identically"
    (Format.asprintf "%a" Serve.pp_report a)
    (Format.asprintf "%a" Serve.pp_report b)

let test_serve_accounts_every_arrival () =
  let r = serve_once () in
  Alcotest.(check int) "drained: completions = arrivals - lost" r.Serve.arrivals
    (r.Serve.completions + r.Serve.items_lost);
  Alcotest.(check bool) "slo windows sealed" true (List.length r.Serve.windows > 0);
  Alcotest.(check bool) "node-seconds accrued" true (r.Serve.node_seconds > 0.0)

let test_e21_jobs_determinism () =
  (* The acceptance criterion: E21 byte-identical at --jobs 1 and --jobs 4
     (oversubscribed so real pool workers run even on one core). *)
  let seq = Campaign.run ~jobs:1 ~only:[ "E21" ] ~quick:true () in
  let par = Campaign.run ~jobs:4 ~oversubscribe:true ~only:[ "E21" ] ~quick:true () in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "E21 byte-identical under jobs 1 vs jobs 4" a.Campaign.output
        b.Campaign.output)
    seq.Campaign.outcomes par.Campaign.outcomes

let () =
  Alcotest.run "serve"
    [
      ( "arrival",
        [
          Alcotest.test_case "poisson count" `Quick test_poisson_count;
          Alcotest.test_case "nhpp closed-form counts" `Quick test_nhpp_counts;
          Alcotest.test_case "nhpp zero-rate stretch" `Quick test_nhpp_respects_zero_rate;
          Alcotest.test_case "mmpp symmetric count" `Quick test_mmpp_counts;
          Alcotest.test_case "mmpp holding modulates" `Quick test_mmpp_holding_modulates;
          Alcotest.test_case "replay round-trip" `Quick test_replay_round_trip;
          Alcotest.test_case "schedule = times" `Quick test_schedule_matches_times;
          Alcotest.test_case "CLI spec grammar" `Quick test_parse_spec;
        ] );
      ( "slo",
        [
          Alcotest.test_case "window arithmetic" `Quick test_slo_window_arithmetic;
          Alcotest.test_case "spec validation" `Quick test_slo_spec_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "sojourn series" `Quick test_trace_sojourn_series;
          Alcotest.test_case "arrival stamp wins" `Quick test_trace_sojourn_stamp_wins;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deterministic report" `Quick test_serve_deterministic;
          Alcotest.test_case "accounts every arrival" `Quick test_serve_accounts_every_arrival;
          Alcotest.test_case "E21 golden jobs 1 vs 4" `Slow test_e21_jobs_determinism;
        ] );
    ]
