(* Differential tests between the two pipeline backends: the DES-based
   Skel_sim (virtual time on a simulated grid) and the Domains-based
   Skel_mc (real shared-memory parallelism).

   The backends model the same skeleton, so on any pipeline shape they
   must agree on the stream invariants: every stage services every item
   exactly once, and the output stream preserves input order. The
   simulator is additionally checked for completion ordering in virtual
   time; the multicore backend for agreement with the pure reference
   [Pipe.apply]. *)

module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Trace = Aspipe_grid.Trace
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Skel_sim = Aspipe_skel.Skel_sim
module Skel_mc = Aspipe_skel.Skel_mc
module Pipe = Aspipe_skel.Pipe
module Rng = Aspipe_util.Rng

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* One pipeline shape, drawn small enough that the whole grid of cases
   stays fast: [stages] pipeline stages over [nodes] uniform nodes with a
   round-robin mapping, [items] inputs, [capacity] bounding both the DES
   stage queues and the Domains channels. *)
type shape = { stages : int; nodes : int; items : int; capacity : int; batch : int }

let shape_gen =
  QCheck2.Gen.(
    map
      (fun ((stages, nodes), (items, capacity), batch) ->
        { stages; nodes; items; capacity; batch })
      (triple
         (pair (int_range 1 4) (int_range 1 3))
         (pair (int_range 1 30) (int_range 1 6))
         (int_range 1 8)))

let pp_shape s =
  Printf.sprintf "{stages=%d; nodes=%d; items=%d; capacity=%d; batch=%d}" s.stages s.nodes s.items
    s.capacity s.batch

(* --------------------------------------------------- DES side of the diff *)

let run_sim shape =
  let engine = Engine.create () in
  let topo =
    Topology.uniform engine ~n:shape.nodes ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 ()
  in
  let stages = Stage.balanced ~n:shape.stages ~work:0.1 () in
  let mapping = Array.init shape.stages (fun i -> i mod shape.nodes) in
  let input = Stream_spec.make ~items:shape.items ~item_bytes:10.0 ~batch:shape.batch () in
  Skel_sim.execute ~rng:(Rng.create 5) ~queue_capacity:shape.capacity ~topo ~stages ~mapping
    ~input ()

(* Per-stage service counts from a trace. *)
let sim_visits trace ~stages =
  Array.init stages (fun stage -> Array.length (Trace.service_times trace ~stage))

(* ----------------------------------------------- Domains side of the diff *)

(* A chain of [stages] counting stages: stage s increments its own visit
   counter and tags the item, so the outputs also witness that every item
   passed through every stage in order. *)
let run_mc shape =
  let visits = Array.init shape.stages (fun _ -> Atomic.make 0) in
  let stage s x =
    Atomic.incr visits.(s);
    (x * 10) + s
  in
  let rec chain s =
    if s = shape.stages - 1 then Pipe.last (stage s) else Pipe.Stage (stage s, chain (s + 1))
  in
  let pipe = chain 0 in
  let inputs = List.init shape.items Fun.id in
  let outputs = Skel_mc.run ~capacity:shape.capacity ~batch:shape.batch pipe inputs in
  (* Snapshot the counters before the reference run — [Pipe.apply] walks
     the same counting stages. *)
  let counts = Array.map Atomic.get visits in
  (counts, outputs, List.map (Pipe.apply pipe) inputs)

(* ------------------------------------------------------------ properties *)

let prop_stage_visits_agree shape =
  let trace = run_sim shape in
  let sim = sim_visits trace ~stages:shape.stages in
  let mc, _, _ = run_mc shape in
  let expected = Array.make shape.stages shape.items in
  if sim <> expected then
    QCheck2.Test.fail_reportf "%s: DES visits %s, expected every stage to serve all items"
      (pp_shape shape)
      (String.concat "," (List.map string_of_int (Array.to_list sim)));
  if mc <> expected then
    QCheck2.Test.fail_reportf "%s: Domains visits %s, expected every stage to serve all items"
      (pp_shape shape)
      (String.concat "," (List.map string_of_int (Array.to_list mc)));
  true

let prop_output_order_agrees shape =
  (* DES: completions leave in item order (an in-order pipeline preserves
     the stream). Domains: outputs equal the pure reference in input
     order. Together: both backends present the same stream to the
     consumer. *)
  let trace = run_sim shape in
  let completion_ids = Array.to_list (Array.map fst (Trace.completions trace)) in
  let _, outputs, reference = run_mc shape in
  completion_ids = List.init shape.items Fun.id && outputs = reference

let prop_sim_completions_monotone shape =
  let trace = run_sim shape in
  let times = Array.map snd (Trace.completions trace) in
  Array.length times = shape.items
  && (let ok = ref true in
      Array.iteri (fun i t -> if i > 0 && t < times.(i - 1) then ok := false) times;
      !ok)

let test_visits = qtest "every stage serves every item on both backends" shape_gen prop_stage_visits_agree
let test_order = qtest "output ordering agrees across backends" shape_gen prop_output_order_agrees
let test_monotone =
  qtest ~count:30 "DES completion times are monotone" shape_gen prop_sim_completions_monotone

(* A pinned corner grid on top of the random sweep: the degenerate shapes
   (single stage, single item, capacity 1, more stages than nodes) checked
   exhaustively so a regression names the exact shape. *)
let test_corner_grid () =
  List.iter
    (fun shape ->
      Alcotest.(check bool) (pp_shape shape ^ " visits") true (prop_stage_visits_agree shape);
      Alcotest.(check bool) (pp_shape shape ^ " order") true (prop_output_order_agrees shape))
    [
      { stages = 1; nodes = 1; items = 1; capacity = 1; batch = 1 };
      { stages = 1; nodes = 3; items = 10; capacity = 1; batch = 4 };
      { stages = 4; nodes = 1; items = 10; capacity = 1; batch = 64 };
      { stages = 4; nodes = 2; items = 25; capacity = 2; batch = 8 };
      { stages = 3; nodes = 3; items = 12; capacity = 6; batch = 2 };
    ]

(* -------------------------------------------------- large-stream battery *)

(* The SPSC backend at real stream length: 10^5 items through every
   (stages × batch × capacity) corner the benchmark sweeps, each output
   list compared for structural equality against the sequential reference
   and every stage's visit counter checked for exactly-once service. This
   is the scale where a lost wake-up, a dropped chunk tail or an index-wrap
   bug actually manifests — the small random shapes above cannot reach
   wrap-around at capacity 64. *)
let test_large_stream_grid () =
  let items = 100_000 in
  List.iter
    (fun stages ->
      List.iter
        (fun batch ->
          List.iter
            (fun capacity ->
              let visits = Array.init stages (fun _ -> Atomic.make 0) in
              let stage s x =
                Atomic.incr visits.(s);
                (x * 7) + s
              in
              let rec chain s =
                if s = stages - 1 then Pipe.last (stage s) else Pipe.Stage (stage s, chain (s + 1))
              in
              let pipe = chain 0 in
              let inputs = List.init items Fun.id in
              let outputs = Skel_mc.run ~capacity ~batch pipe inputs in
              (* Snapshot before the reference run walks the same counters. *)
              let counts = Array.map Atomic.get visits in
              let label =
                Printf.sprintf "stages=%d batch=%d capacity=%d items=%d" stages batch capacity
                  items
              in
              let reference = Skel_mc.run_seq pipe inputs in
              if outputs <> reference then Alcotest.failf "%s: outputs diverge from run_seq" label;
              Array.iteri
                (fun s c ->
                  if c <> items then
                    Alcotest.failf "%s: stage %d served %d times, expected %d" label s c items)
                counts)
            [ 1; 64 ])
        [ 1; 8; 64 ])
    [ 2; 4 ]

(* One full-length differential against the simulator: at 10^5 items both
   backends must still agree that every stage serves every item and that
   the stream leaves in input order. *)
let test_large_sim_vs_mc () =
  let shape = { stages = 4; nodes = 2; items = 100_000; capacity = 64; batch = 16 } in
  Alcotest.(check bool) (pp_shape shape ^ " visits") true (prop_stage_visits_agree shape);
  Alcotest.(check bool) (pp_shape shape ^ " order") true (prop_output_order_agrees shape)

let () =
  Alcotest.run "aspipe_diff"
    [
      ( "sim-vs-mc",
        [
          test_visits;
          test_order;
          test_monotone;
          Alcotest.test_case "corner grid" `Quick test_corner_grid;
          Alcotest.test_case "large stream grid" `Slow test_large_stream_grid;
          Alcotest.test_case "large sim-vs-mc" `Slow test_large_sim_vs_mc;
        ] );
    ]
