(* Tests for the campaign runner: deque semantics against a reference
   model, pool determinism (index-ordered collection, nested fan-out,
   exception propagation), the content-addressed cache, and the golden
   guarantee that --jobs 1 and --jobs N produce byte-identical output —
   down to the JSONL event stream of an adaptive run executed inside a
   pool task. *)

module Deque = Aspipe_runner.Deque
module Pool = Aspipe_runner.Pool
module Cache = Aspipe_runner.Cache
module Campaign = Aspipe_runner.Campaign
module Jsonl = Aspipe_obs.Jsonl

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ----------------------------------------------------------------- Deque *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "length" 5 (Deque.length d);
  Alcotest.(check (option int)) "owner pops newest" (Some 5) (Deque.pop d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1) (Deque.steal d);
  Alcotest.(check (option int)) "owner again" (Some 4) (Deque.pop d);
  Alcotest.(check (option int)) "thief again" (Some 2) (Deque.steal d);
  Alcotest.(check (option int)) "last element from either end" (Some 3) (Deque.pop d);
  Alcotest.(check bool) "empty" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop on empty" None (Deque.pop d);
  Alcotest.(check (option int)) "steal on empty" None (Deque.steal d)

(* Reference model: a plain list with push at the back, pop from the back,
   steal from the front. Any interleaving of operations must produce the
   same observation sequence. *)
type deque_op = Push of int | Pop | Steal

let deque_op_gen =
  QCheck2.Gen.(
    frequency
      [ (3, map (fun x -> Push x) (int_range 0 999)); (2, return Pop); (2, return Steal) ])

let test_deque_matches_model =
  qtest "deque = list model under any op interleaving"
    QCheck2.Gen.(list_size (int_range 0 200) deque_op_gen)
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push x ->
              Deque.push d x;
              model := !model @ [ x ];
              Deque.length d = List.length !model
          | Pop -> (
              let expected =
                match List.rev !model with
                | [] -> None
                | last :: rest ->
                    model := List.rev rest;
                    Some last
              in
              Deque.pop d = expected)
          | Steal -> (
              let expected =
                match !model with
                | [] -> None
                | first :: rest ->
                    model := rest;
                    Some first
              in
              Deque.steal d = expected))
        ops)

let test_deque_growth () =
  (* Push far past the initial ring capacity, interleaving steals so the
     ring wraps, then verify full FIFO drain order. *)
  let d = Deque.create () in
  let stolen = ref [] in
  for i = 0 to 499 do
    Deque.push d i;
    if i mod 3 = 0 then
      match Deque.steal d with Some x -> stolen := x :: !stolen | None -> ()
  done;
  let rec drain acc = match Deque.steal d with Some x -> drain (x :: acc) | None -> List.rev acc in
  let all = List.rev !stolen @ drain [] in
  Alcotest.(check (list int)) "nothing lost, FIFO preserved" (List.init 500 Fun.id)
    (List.sort compare all);
  Alcotest.(check bool) "drained" true (Deque.is_empty d)

(* ------------------------------------------------------------------ Pool *)

let with_pool ~workers f =
  let pool = Pool.create ~workers () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_matches_map =
  qtest ~count:30 "pool map = List.map at any worker count"
    QCheck2.Gen.(pair (list_size (int_range 0 100) int) (int_range 1 4))
    (fun (xs, workers) ->
      with_pool ~workers (fun pool ->
          Pool.map_list pool (fun x -> (x * 31) mod 1009) xs
          = List.map (fun x -> (x * 31) mod 1009) xs))

let test_pool_results_by_index () =
  (* Deliberately uneven task costs: results must still land by input
     index, not completion order. *)
  with_pool ~workers:4 (fun pool ->
      let inputs = Array.init 40 Fun.id in
      let f i =
        let spin = if i mod 7 = 0 then 20_000 else 10 in
        let acc = ref i in
        for _ = 1 to spin do
          acc := (!acc * 17) mod 1000003
        done;
        (i, !acc)
      in
      let expected = Array.map f inputs in
      Alcotest.(check (array (pair int int))) "index order" expected (Pool.map pool f inputs))

let test_pool_nested_map () =
  (* An outer batch whose tasks each fan out an inner batch on the same
     pool: the helping await must let this drain on 2 workers. *)
  with_pool ~workers:2 (fun pool ->
      let outer = List.init 6 Fun.id in
      let result =
        Pool.map_list pool
          (fun i -> List.fold_left ( + ) 0 (Pool.map_list pool (fun j -> (i * 10) + j) [ 1; 2; 3; 4; 5 ]))
          outer
      in
      let expected = List.map (fun i -> List.fold_left ( + ) 0 (List.map (fun j -> (i * 10) + j) [ 1; 2; 3; 4; 5 ])) outer in
      Alcotest.(check (list int)) "nested fan-out" expected result)

let test_pool_exception_propagates () =
  let boom = Failure "pool-boom" in
  with_pool ~workers:3 (fun pool ->
      Alcotest.check_raises "first task exception re-raised" boom (fun () ->
          ignore (Pool.map_list pool (fun x -> if x = 13 then raise boom else x) (List.init 50 Fun.id)));
      (* The pool survives a failed batch and runs the next one. *)
      Alcotest.(check (list int)) "pool still serviceable" [ 2; 4; 6 ]
        (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_empty_batch () =
  with_pool ~workers:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map_list pool Fun.id []))

let test_pool_stats () =
  with_pool ~workers:3 (fun pool ->
      ignore (Pool.map_list pool Fun.id (List.init 30 Fun.id));
      let stats = Pool.stats pool in
      Alcotest.(check int) "workers recorded" 3 stats.Pool.workers;
      Alcotest.(check int) "every task accounted"
        30
        (Array.fold_left ( + ) 0 stats.Pool.tasks_executed);
      Alcotest.(check int) "size" 3 (Pool.size pool))

let test_pool_invalid_workers () =
  Alcotest.check_raises "workers 0" (Invalid_argument "Pool.create: workers must be >= 1")
    (fun () -> ignore (Pool.create ~workers:0 ()))

(* ----------------------------------------------------------------- Cache *)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let test_cache_round_trip () =
  match Cache.open_ ~dir:(temp_dir "aspipe-cache") with
  | None -> Alcotest.fail "cache refused to open (executable not digestible?)"
  | Some cache ->
      let key = Cache.key cache ~id:"E1" ~title:"some table" ~quick:true in
      Alcotest.(check (option string)) "miss before store" None (Cache.find cache key);
      Cache.store cache key "captured output\n";
      Alcotest.(check (option string)) "hit after store" (Some "captured output\n")
        (Cache.find cache key)

let test_cache_key_distinguishes () =
  match Cache.open_ ~dir:(temp_dir "aspipe-cache") with
  | None -> Alcotest.fail "cache refused to open"
  | Some cache ->
      let base = Cache.key cache ~id:"E1" ~title:"t" ~quick:true in
      Alcotest.(check string) "key is stable" base (Cache.key cache ~id:"E1" ~title:"t" ~quick:true);
      Alcotest.(check bool) "quick flag changes the key" false
        (base = Cache.key cache ~id:"E1" ~title:"t" ~quick:false);
      Alcotest.(check bool) "id changes the key" false
        (base = Cache.key cache ~id:"E2" ~title:"t" ~quick:true);
      Alcotest.(check bool) "title changes the key" false
        (base = Cache.key cache ~id:"E1" ~title:"u" ~quick:true)

(* -------------------------------------------------------------- Campaign *)

let golden_ids = [ "E1"; "E18"; "E20" ]

let test_campaign_golden_determinism () =
  (* The tentpole guarantee: a parallel campaign is byte-identical to the
     sequential one, experiment by experiment. E1/E18/E20 cover a model
     table, a fault-tolerance table and a campaign-style figure. *)
  (* ~oversubscribe forces real pool workers even on a single-core host,
     where the adaptive cap would otherwise collapse jobs 4 to inline. *)
  let seq = Campaign.run ~jobs:1 ~only:golden_ids ~quick:true () in
  let par = Campaign.run ~jobs:4 ~oversubscribe:true ~only:golden_ids ~quick:true () in
  Alcotest.(check (list string)) "registry order, sequentially" golden_ids
    (List.map (fun o -> o.Campaign.id) seq.Campaign.outcomes);
  Alcotest.(check (list string)) "registry order, in parallel" golden_ids
    (List.map (fun o -> o.Campaign.id) par.Campaign.outcomes);
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        (Printf.sprintf "%s byte-identical under jobs 1 vs jobs 4" a.Campaign.id)
        a.Campaign.output b.Campaign.output)
    seq.Campaign.outcomes par.Campaign.outcomes

let test_campaign_unknown_id () =
  Alcotest.check_raises "unknown id refused"
    (Invalid_argument "unknown experiment id: E99")
    (fun () -> ignore (Campaign.run ~jobs:1 ~only:[ "E99" ] ~quick:true ()))

let test_campaign_report_sanity () =
  let report = Campaign.run ~jobs:2 ~oversubscribe:true ~only:[ "E1" ] ~quick:true () in
  Alcotest.(check int) "jobs recorded" 2 report.Campaign.jobs;
  Alcotest.(check int) "workers recorded" 2 report.Campaign.workers;
  Alcotest.(check int) "utilisation per domain" 2 (Array.length report.Campaign.utilisation);
  Alcotest.(check bool) "wall time positive" true (report.Campaign.wall_seconds > 0.0);
  Alcotest.(check bool) "speedup positive" true (report.Campaign.speedup > 0.0);
  Array.iter
    (fun u -> Alcotest.(check bool) "utilisation in [0,1]" true (u >= 0.0 && u <= 1.0))
    report.Campaign.utilisation

let test_campaign_capped_workers () =
  (* Without ~oversubscribe a 1-core host runs jobs 4 inline: the request
     is recorded but the pool is never oversubscribed. *)
  let report = Campaign.run ~jobs:4 ~only:[ "E1" ] ~quick:true () in
  Alcotest.(check int) "jobs recorded as requested" 4 report.Campaign.jobs;
  Alcotest.(check bool) "workers capped to the host" true
    (report.Campaign.workers <= max 4 (Domain.recommended_domain_count ()));
  Alcotest.(check bool) "at least one worker" true (report.Campaign.workers >= 1)

let test_campaign_cache_hits () =
  let dir = temp_dir "aspipe-campaign-cache" in
  let first = Campaign.run ~jobs:2 ~cache_dir:dir ~only:golden_ids ~quick:true () in
  let second = Campaign.run ~jobs:2 ~cache_dir:dir ~only:golden_ids ~quick:true () in
  Alcotest.(check int) "cold run computes" 0 first.Campaign.cache_hits;
  Alcotest.(check int) "warm run replays all" (List.length golden_ids) second.Campaign.cache_hits;
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        (Printf.sprintf "%s cached bytes identical" a.Campaign.id)
        a.Campaign.output b.Campaign.output;
      Alcotest.(check bool) "flagged as cached" true b.Campaign.cached)
    first.Campaign.outcomes second.Campaign.outcomes

(* ----------------------------------------- trace determinism under a pool *)

(* The per-run isolation claim, checked at the finest grain we export: the
   JSONL event stream of a full adaptive run executed inside a pool task is
   byte-identical to the same run executed inline. *)

let adaptive_jsonl seed =
  let scenario =
    Aspipe_core.Scenario.make ~name:"runner-trace"
      ~make_topo:(fun engine ->
        Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
      ~loads:[ (0, Aspipe_grid.Loadgen.Step { at = 20.0; level = 0.2 }) ]
      ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:4 ~factor:3.0 ())
      ~input:
        (Aspipe_skel.Stream_spec.make ~arrival:(Aspipe_skel.Stream_spec.Spaced 0.3) ~items:80 ())
      ~horizon:1e5 ()
  in
  let buffer = Buffer.create 65536 in
  ignore
    (Aspipe_core.Adaptive.run
       ~instrument:(fun bus -> ignore (Aspipe_obs.Bus.subscribe bus (Jsonl.sink_to_buffer buffer)))
       ~scenario ~seed ());
  Buffer.contents buffer

let test_trace_bytes_identical_under_pool () =
  let seeds = [ 3; 7; 11; 19 ] in
  let inline = List.map adaptive_jsonl seeds in
  let pooled = with_pool ~workers:4 (fun pool -> Pool.map_list pool adaptive_jsonl seeds) in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: JSONL stream non-empty" (List.nth seeds i))
        true (String.length a > 0);
      Alcotest.(check string)
        (Printf.sprintf "seed %d: JSONL stream byte-identical in a pool task" (List.nth seeds i))
        a b)
    (List.combine inline pooled)

let () =
  Alcotest.run "aspipe_runner"
    [
      ( "deque",
        [
          Alcotest.test_case "LIFO owner / FIFO thief" `Quick test_deque_lifo_fifo;
          test_deque_matches_model;
          Alcotest.test_case "growth and wrap-around" `Quick test_deque_growth;
        ] );
      ( "pool",
        [
          test_pool_matches_map;
          Alcotest.test_case "results by index" `Quick test_pool_results_by_index;
          Alcotest.test_case "nested map (helping)" `Quick test_pool_nested_map;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "empty batch" `Quick test_pool_empty_batch;
          Alcotest.test_case "stats" `Quick test_pool_stats;
          Alcotest.test_case "invalid workers" `Quick test_pool_invalid_workers;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round trip" `Quick test_cache_round_trip;
          Alcotest.test_case "key distinguishes" `Quick test_cache_key_distinguishes;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "golden determinism E1/E18/E20" `Slow test_campaign_golden_determinism;
          Alcotest.test_case "unknown id" `Quick test_campaign_unknown_id;
          Alcotest.test_case "report sanity" `Quick test_campaign_report_sanity;
          Alcotest.test_case "capped workers" `Quick test_campaign_capped_workers;
          Alcotest.test_case "cache hits" `Slow test_campaign_cache_hits;
        ] );
      ( "trace-determinism",
        [ Alcotest.test_case "JSONL bytes under pool" `Slow test_trace_bytes_identical_under_pool ] );
    ]
