(* Performance-contract tests: the optimisations in the virtual-time hot
   path must not change observable behaviour, and the allocation-lean
   paths must actually be lean.

   Two caveats keep these honest on shared CI hardware:
   - no wall-clock assertions (those live in the bench harness, compared
     against BENCH_4.json with a tolerance);
   - allocation budgets are coarse, because the dev profile compiles with
     [-opaque] (no cross-module inlining) and so boxes floats at call
     boundaries that the release profile keeps unboxed. The budgets catch
     a reintroduced per-event payload or per-push cell, not a word or two
     of boxing. *)

module Engine = Aspipe_des.Engine
module Bus = Aspipe_obs.Bus
module Pqueue = Aspipe_des.Pqueue

let make_sim ?trace ~items engine =
  let rng = Aspipe_util.Rng.create 42 in
  let topo =
    Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ()
  in
  let stages = Aspipe_skel.Stage.balanced ~n:4 ~work:1.0 () in
  let input = Aspipe_skel.Stream_spec.make ~items () in
  Aspipe_skel.Skel_sim.create ?trace ~rng ~topo ~stages ~mapping:[| 0; 1; 2; 0 |] ~input ()

(* A sink-free simulation run stamps no events at all: every hot emit is
   guarded by [Bus.active], and fault-free runs emit no control events. *)
let test_sink_free_run_emits_nothing () =
  let engine = Engine.create () in
  let sim = make_sim ~items:500 engine in
  Alcotest.(check bool) "bus inactive without sinks" false (Bus.active (Engine.bus engine));
  Aspipe_skel.Skel_sim.run_to_completion sim;
  Alcotest.(check int) "completed" 500 (Aspipe_skel.Skel_sim.items_completed sim);
  Alcotest.(check int) "no events stamped" 0 (Bus.events_emitted (Engine.bus engine))

(* The same workload, observed and unobserved: the unobserved run must
   allocate strictly less (it builds no payloads), and both must agree on
   every simulation-visible outcome. *)
let test_unobserved_run_allocates_less () =
  let run ~observed =
    let engine = Engine.create () in
    let trace = if observed then Some (Aspipe_grid.Trace.create ()) else None in
    let sim = make_sim ?trace ~items:2000 engine in
    let a0 = Gc.allocated_bytes () in
    Aspipe_skel.Skel_sim.run_to_completion sim;
    let bytes = Gc.allocated_bytes () -. a0 in
    (bytes, Engine.events_fired engine, Engine.now engine)
  in
  let obs_bytes, obs_events, obs_now = run ~observed:true in
  let un_bytes, un_events, un_now = run ~observed:false in
  Alcotest.(check int) "same events fired" obs_events un_events;
  Alcotest.(check (float 1e-9)) "same final clock" obs_now un_now;
  if un_bytes >= obs_bytes then
    Alcotest.failf "unobserved run allocated %.0f bytes >= observed %.0f" un_bytes obs_bytes

(* Guarded emit on an inactive bus: the guard itself must not allocate a
   payload per call. The budget is generous (loop overhead, dev-profile
   boxing) but far below one payload record per iteration. *)
let test_guarded_emit_allocation_budget () =
  let bus = Bus.create () in
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    if Bus.active bus then Bus.emit bus (Aspipe_obs.Event.Completion { item = i })
  done;
  let per_iter = (Gc.minor_words () -. w0) /. Float.of_int iters in
  if per_iter > 1.0 then
    Alcotest.failf "guarded emit allocated %.2f minor words/iter on an inactive bus" per_iter;
  Alcotest.(check int) "seq untouched" 0 (Bus.events_emitted bus)

(* The schedule/pop_min/fire loop: a coarse per-event budget that would
   catch a reintroduced closure, option, or heap cell per operation. *)
let test_pqueue_cycle_allocation_budget () =
  let q = Pqueue.create () in
  let f () = () in
  for i = 0 to 63 do
    ignore (Pqueue.insert q (0.0001 *. Float.of_int i) f)
  done;
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 0 to iters - 1 do
    if Pqueue.pop_min q ~horizon:infinity then
      ignore (Pqueue.insert q (Pqueue.popped_key q +. (0.0001 *. Float.of_int (i land 63))) f)
  done;
  let per_op = (Gc.minor_words () -. w0) /. Float.of_int iters in
  if per_op > 16.0 then
    Alcotest.failf "pop_min/insert cycle allocated %.2f minor words/op" per_op

(* Golden determinism: the campaign output for three registry experiments
   is byte-identical to the digests captured before the optimisation, and
   identical again under --jobs 4. *)
let golden_campaign = [ ("E1", "28a482341504a86deef536622a83277c");
                        ("E3", "705233c8dcefc56efb2182bf2f3446ae");
                        ("E18", "d99e1d91c6ba0cf1d9f55a5ee1201040") ]

let campaign_digests ?(oversubscribe = false) ~jobs () =
  let report =
    Aspipe_runner.Campaign.run ~jobs ~oversubscribe ~only:(List.map fst golden_campaign)
      ~quick:true ()
  in
  List.map
    (fun o ->
      ( o.Aspipe_runner.Campaign.id,
        Digest.to_hex (Digest.string o.Aspipe_runner.Campaign.output) ))
    report.Aspipe_runner.Campaign.outcomes

let check_campaign_digests digests =
  List.iter
    (fun (id, expected) ->
      match List.assoc_opt id digests with
      | None -> Alcotest.failf "experiment %s missing from campaign output" id
      | Some got -> Alcotest.(check string) (id ^ " output digest") expected got)
    golden_campaign

let test_golden_campaign_jobs1 () = check_campaign_digests (campaign_digests ~jobs:1 ())

let test_golden_campaign_jobs4 () =
  (* ~oversubscribe keeps this a real 4-worker pool on any host. *)
  check_campaign_digests (campaign_digests ~oversubscribe:true ~jobs:4 ())

(* Golden determinism: the full JSONL event stream of an adaptive run —
   every event, field and float rendering — is byte-identical to the
   pre-optimisation capture, for two seeds. *)
let golden_jsonl = [ (3, "e383d75d7c75493e32b4ea2417b03a96", 141161);
                     (7, "7eaf8f4683aa8f447850bc8f554531f9", 135858) ]

let test_golden_jsonl () =
  List.iter
    (fun (seed, expected, expected_bytes) ->
      let scenario =
        Aspipe_core.Scenario.make ~name:"perf-golden"
          ~make_topo:(fun engine ->
            Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01
              ~bandwidth:1e7 ())
          ~loads:[ (0, Aspipe_grid.Loadgen.Step { at = 20.0; level = 0.2 }) ]
          ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:4 ~factor:3.0 ())
          ~input:
            (Aspipe_skel.Stream_spec.make ~arrival:(Aspipe_skel.Stream_spec.Spaced 0.3)
               ~items:80 ())
          ~horizon:1e5 ()
      in
      let buffer = Buffer.create 65536 in
      ignore
        (Aspipe_core.Adaptive.run
           ~instrument:(fun bus ->
             ignore (Bus.subscribe bus (Aspipe_obs.Jsonl.sink_to_buffer buffer)))
           ~scenario ~seed ());
      Alcotest.(check int)
        (Printf.sprintf "seed %d stream length" seed)
        expected_bytes (Buffer.length buffer);
      Alcotest.(check string)
        (Printf.sprintf "seed %d stream digest" seed)
        expected
        (Digest.to_hex (Digest.string (Buffer.contents buffer))))
    golden_jsonl

let () =
  Alcotest.run "perf"
    [
      ( "allocation",
        [
          Alcotest.test_case "sink-free run emits nothing" `Quick
            test_sink_free_run_emits_nothing;
          Alcotest.test_case "unobserved allocates less" `Quick
            test_unobserved_run_allocates_less;
          Alcotest.test_case "guarded emit budget" `Quick
            test_guarded_emit_allocation_budget;
          Alcotest.test_case "pqueue cycle budget" `Quick
            test_pqueue_cycle_allocation_budget;
        ] );
      ( "golden",
        [
          Alcotest.test_case "campaign jobs 1" `Quick test_golden_campaign_jobs1;
          Alcotest.test_case "campaign jobs 4" `Quick test_golden_campaign_jobs4;
          Alcotest.test_case "jsonl streams" `Quick test_golden_jsonl;
        ] );
    ]
