(* Tests for aspipe-lint: one positive / negative / waiver triple per rule
   (syntactic fixtures are inline snippets that need to parse, not
   typecheck; typed fixtures are typechecked in-process against the
   stdlib), severity plumbing, exit codes, SARIF, W1, and self-checks
   that the shipped tree is clean under both passes. *)

module Checker = Aspipe_lint.Checker
module Driver = Aspipe_lint.Driver
module Finding = Aspipe_lint.Finding
module Rules = Aspipe_lint.Rules
module Waivers = Aspipe_lint.Waivers
module Typed_load = Aspipe_lint.Typed_load
module Typed_check = Aspipe_lint.Typed_check
module Sarif = Aspipe_lint.Sarif
module Json = Aspipe_obs.Json

let lint ?(path = "lib/demo/demo.ml") source = Checker.check ~path source
let rules_of findings = List.map (fun f -> f.Finding.rule) findings
let rule_list = Alcotest.(check (list string))

(* ------------------------------------------------------------------- R1 *)

let test_r1_wall_clock () =
  let src = "let elapsed () = Unix.gettimeofday ()\n" in
  rule_list "flagged in simulator code" [ "R1" ] (rules_of (lint ~path:"lib/grid/clock.ml" src));
  rule_list "Sys.time flagged too" [ "R1" ]
    (rules_of (lint ~path:"lib/core/x.ml" "let t () = Sys.time ()\n"));
  rule_list "runner allowlisted" [] (rules_of (lint ~path:"lib/runner/pool.ml" src));
  rule_list "direct-execution engine allowlisted" []
    (rules_of (lint ~path:"lib/skel/skel_mc.ml" src));
  rule_list "exp_mc allowlisted" [] (rules_of (lint ~path:"lib/exp/exp_mc.ml" src));
  let mono = "let now () = Monotonic_clock.now ()\n" in
  rule_list "monotonic clock is still a real clock in DES code" [ "R1" ]
    (rules_of (lint ~path:"lib/des/engine.ml" mono));
  rule_list "core code cannot use it either" [ "R1" ]
    (rules_of (lint ~path:"lib/core/x.ml" mono));
  rule_list "the profiler may" [] (rules_of (lint ~path:"lib/prof/prof.ml" mono));
  let waived = "(* lint: wall-clock-ok measuring a real solve *)\nlet elapsed () = Unix.gettimeofday ()\n" in
  rule_list "waiver on the line above" [] (rules_of (lint waived))

(* ------------------------------------------------------------------- R2 *)

let test_r2_unordered_iteration () =
  rule_list "bare Hashtbl.iter flagged" [ "R2" ]
    (rules_of (lint "let render h = Hashtbl.iter (fun k v -> ignore (k, v)) h\n"));
  rule_list "Hashtbl.fold flagged" [ "R2" ]
    (rules_of (lint "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"));
  rule_list "sort in the same binding passes" []
    (rules_of
       (lint "let keys h = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n"));
  rule_list "sort later in the same binding passes" []
    (rules_of
       (lint
          "let render h =\n\
          \  let acc = ref [] in\n\
          \  Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) h;\n\
          \  List.sort compare !acc\n"));
  rule_list "sort in a different binding does not excuse it" [ "R2" ]
    (rules_of
       (lint
          "let sorted xs = List.sort compare xs\n\
           let render h = Hashtbl.iter (fun k v -> ignore (k, v)) h\n"));
  rule_list "same-line waiver" []
    (rules_of
       (lint "let total h = Hashtbl.fold (fun _ v a -> v + a) h 0 (* lint: unordered-ok sum commutes *)\n"))

(* ------------------------------------------------------------------- R3 *)

let test_r3_raw_print () =
  let src = "let banner () = print_endline \"hi\"\n" in
  rule_list "direct print in lib flagged" [ "R3" ] (rules_of (lint src));
  rule_list "Stdlib-qualified flagged" [ "R3" ]
    (rules_of (lint "let f () = Stdlib.print_string \"x\"\n"));
  rule_list "Printf.printf flagged" [ "R3" ]
    (rules_of (lint "let f n = Printf.printf \"%d\" n\n"));
  rule_list "executables may print" [] (rules_of (lint ~path:"bin/aspipe_cli.ml" src));
  rule_list "bench may print" [] (rules_of (lint ~path:"bench/main.ml" src));
  rule_list "lib/util/out.ml is the one allowed module" []
    (rules_of (lint ~path:"lib/util/out.ml" src));
  rule_list "Out.print_string is the sanctioned route" []
    (rules_of (lint "let f s = Out.print_string s\n"));
  rule_list "pp to a formatter is fine" []
    (rules_of (lint "let pp ppf t = Format.pp_print_string ppf t\n"))

(* ------------------------------------------------------------------- R4 *)

let test_r4_guarded_emit () =
  rule_list "unguarded per-item emit flagged" [ "R4" ]
    (rules_of (lint "let f bus item = Bus.emit bus (Event.Completion { item })\n"));
  rule_list "if Bus.active guard passes" []
    (rules_of
       (lint
          "let f bus item =\n\
          \  if Bus.active bus then Bus.emit bus (Event.Completion { item })\n"));
  rule_list "qualified guard and emit pass" []
    (rules_of
       (lint
          "let f bus item =\n\
          \  if Aspipe_obs.Bus.active bus then\n\
          \    Aspipe_obs.Bus.emit bus (Aspipe_obs.Event.Completion { item })\n"));
  rule_list "when Bus.active match guard passes" []
    (rules_of
       (lint
          "let f opt item =\n\
          \  match opt with\n\
          \  | Some bus when Bus.active bus -> Bus.emit bus (Event.Completion { item })\n\
          \  | _ -> ()\n"));
  rule_list "emit in the else branch stays flagged" [ "R4" ]
    (rules_of
       (lint
          "let f bus item =\n\
          \  if Bus.active bus then () else Bus.emit bus (Event.Completion { item })\n"));
  rule_list "control events are exempt" []
    (rules_of (lint "let f bus node = Bus.emit bus (Event.Node_crashed { node })\n"));
  rule_list "adaptation decisions are control events" []
    (rules_of
       (lint
          "let f bus m t =\n\
          \  Bus.emit bus (Event.Adaptation_rejected { mapping = m; observed_throughput = t })\n"));
  rule_list "waiver" []
    (rules_of
       (lint
          "let f bus item =\n\
          \  (* lint: unguarded-emit-ok exercising the emit path itself *)\n\
          \  Bus.emit bus (Event.Completion { item })\n"))

(* ------------------------------------------------------------------- R5 *)

let test_r5_shared_state () =
  rule_list "structure-level ref flagged" [ "R5" ]
    (rules_of (lint "let hook = ref None\n"));
  rule_list "structure-level Hashtbl flagged" [ "R5" ]
    (rules_of (lint "let table = Hashtbl.create 16\n"));
  rule_list "annotated binding still flagged" [ "R5" ]
    (rules_of (lint "let cell : int ref = ref 0\n"));
  rule_list "Atomic passes" [] (rules_of (lint "let counter = Atomic.make 0\n"));
  rule_list "Domain.DLS passes" []
    (rules_of (lint "let key = Domain.DLS.new_key (fun () -> ref [])\n"));
  rule_list "locals are fine" []
    (rules_of (lint "let f xs = let acc = ref 0 in List.iter (fun x -> acc := !acc + x) xs; !acc\n"));
  rule_list "constructor functions are fine" []
    (rules_of (lint "let create () = Hashtbl.create 16\n"));
  rule_list "nested module state flagged" [ "R5" ]
    (rules_of (lint "module M = struct let cache = Hashtbl.create 8 end\n"));
  rule_list "structure-level Chan flagged" [ "R5" ]
    (rules_of (lint "let bus = Chan.create ~capacity:8\n"));
  rule_list "structure-level Spsc ring flagged" [ "R5" ]
    (rules_of (lint "let ring = Spsc.create ~capacity:64\n"));
  rule_list "qualified Spsc flagged too" [ "R5" ]
    (rules_of (lint "let ring = Aspipe_util.Spsc.create ~capacity:64\n"));
  rule_list "per-run channel creation is fine" []
    (rules_of (lint "let connect n = Array.init n (fun _ -> Spsc.create ~capacity:8)\n"));
  rule_list "outside lib/ not in scope" []
    (rules_of (lint ~path:"bench/main.ml" "let hook = ref None\n"));
  rule_list "channel waiver" []
    (rules_of
       (lint
          "(* lint: shared-state-ok test harness fixture, single consumer *)\n\
           let ring = Spsc.create ~capacity:4\n"));
  rule_list "waiver" []
    (rules_of (lint "(* lint: shared-state-ok guarded by the pool's init barrier *)\nlet hook = ref None\n"))

(* ------------------------------------------------------------------- R6 *)

let test_r6_banned () =
  rule_list "Obj.magic flagged" [ "R6" ] (rules_of (lint "let f x = Obj.magic x\n"));
  rule_list "Random.self_init flagged" [ "R6" ]
    (rules_of (lint "let seed () = Random.self_init ()\n"));
  rule_list "physical equality flagged" [ "R6" ] (rules_of (lint "let f a b = a == b\n"));
  rule_list "physical inequality flagged" [ "R6" ] (rules_of (lint "let f a b = a != b\n"));
  rule_list "structural equality fine" [] (rules_of (lint "let f a b = a = b\n"));
  rule_list "waiver" []
    (rules_of (lint "let f a b = a == b (* lint: banned-ok interned sentinel compare *)\n"))

(* ------------------------------------------------------------------- R7 *)

let test_r7_guarded_prof_record () =
  rule_list "unguarded record flagged" [ "R7" ]
    (rules_of (lint "let f t0 t1 = Prof.record Task ~label:\"x\" ~t0 ~t1 ~a:0 ~b:0 ~words:0.\n"));
  rule_list "record_gc flagged too" [ "R7" ]
    (rules_of (lint "let f () = Prof.record_gc ~label:\"start\"\n"));
  rule_list "qualified record flagged" [ "R7" ]
    (rules_of (lint "let f () = Aspipe_prof.Prof.record_gc ~label:\"start\"\n"));
  rule_list "if Prof.enabled guard passes" []
    (rules_of
       (lint
          "let f t0 t1 =\n\
          \  if Prof.enabled () then Prof.record Task ~label:\"x\" ~t0 ~t1 ~a:0 ~b:0 ~words:0.\n"));
  rule_list "compound condition mentioning Prof.enabled passes" []
    (rules_of
       (lint
          "let f t0 t1 =\n\
          \  if t0 > 0.0 && Prof.enabled () then Prof.record Task ~label:\"x\" ~t0 ~t1 ~a:0 ~b:0 ~words:0.\n"));
  rule_list "when Prof.enabled match guard passes" []
    (rules_of
       (lint
          "let f probe =\n\
          \  match probe with\n\
          \  | Some t0 when Prof.enabled () -> Prof.record_gc ~label:\"end\"\n\
          \  | _ -> ()\n"));
  rule_list "record in the else branch stays flagged" [ "R7" ]
    (rules_of
       (lint
          "let f () = if Prof.enabled () then () else Prof.record_gc ~label:\"x\"\n"));
  rule_list "a Bus.active guard does not excuse a prof record" [ "R7" ]
    (rules_of
       (lint "let f bus = if Bus.active bus then Prof.record_gc ~label:\"x\"\n"));
  rule_list "lib/prof/ itself is exempt" []
    (rules_of (lint ~path:"lib/prof/prof.ml" "let f () = Prof.record_gc ~label:\"x\"\n"));
  rule_list "outside lib/ not in scope" []
    (rules_of (lint ~path:"bin/aspipe_cli.ml" "let f () = Prof.record_gc ~label:\"x\"\n"));
  rule_list "waiver" []
    (rules_of
       (lint
          "let f () =\n\
          \  (* lint: unguarded-prof-ok exercising the recorder itself *)\n\
          \  Prof.record_gc ~label:\"x\"\n"))

(* --------------------------------------------------- typed pass fixtures *)

(* Typed fixtures typecheck against the stdlib only; a local [Spsc] /
   [Common] stub stands in for the real modules because the typed pass
   matches resolved-path *suffixes*. *)
let typed ?(path = "lib/demo/demo.ml") source =
  match Typed_load.fixture ~path source with
  | Error msg -> Alcotest.failf "fixture does not typecheck:\n%s" msg
  | Ok u ->
      let waivers = Waivers.scan source in
      Typed_check.run [ { Typed_check.unit_ = u; waivers } ]

let spsc_stub =
  "module Spsc = struct\n\
  \  type 'a t = { mutable buf : 'a list }\n\
  \  let create _n : 'a t = { buf = [] }\n\
  \  let push (t : 'a t) x = t.buf <- x :: t.buf\n\
  \  let pop (t : 'a t) = match t.buf with [] -> None | x :: tl -> t.buf <- tl; Some x\n\
  \  let close_push (_ : 'a t) = ()\n\
   end\n"

let common_stub = "module Common = struct let par_map f xs = List.map f xs end\n"

(* ------------------------------------------------------------------- R8 *)

let test_r8_global_escape () =
  let src =
    "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
     let record k v = Hashtbl.replace table k v\n\
     let worker () = Domain.spawn (fun () -> record 1 2)\n"
  in
  rule_list "written global reachable from a spawn" [ "R8" ] (rules_of (typed src));
  let unwritten =
    "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
     let look k = Hashtbl.find_opt table k\n\
     let worker () = Domain.spawn (fun () -> look 1)\n"
  in
  rule_list "read-only location passes" [] (rules_of (typed unwritten));
  let unreached =
    "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
     let record k v = Hashtbl.replace table k v\n\
     let worker () = Domain.spawn (fun () -> 1 + 2)\n\
     let log () = record 1 2\n"
  in
  rule_list "written but not spawn-reachable passes" [] (rules_of (typed unreached));
  let atomic =
    "let counter = Atomic.make 0\n\
     let bump () = Atomic.incr counter\n\
     let worker () = Domain.spawn (fun () -> bump ())\n"
  in
  rule_list "Atomic is sanctioned" [] (rules_of (typed atomic));
  let waived =
    "(* lint: domain-shared-ok single writer, joined before reads *)\n\
     let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
     let record k v = Hashtbl.replace table k v\n\
     let worker () = Domain.spawn (fun () -> record 1 2)\n"
  in
  rule_list "waiver at the location" [] (rules_of (typed waived));
  let r5_waiver =
    "(* lint: shared-state-ok guarded by the run barrier *)\n\
     let table : (int, int) Hashtbl.t = Hashtbl.create 8\n\
     let record k v = Hashtbl.replace table k v\n\
     let worker () = Domain.spawn (fun () -> record 1 2)\n"
  in
  rule_list "an R5 waiver covers the same location" [] (rules_of (typed r5_waiver))

let test_r8_local_capture () =
  let smuggled =
    "let leak () =\n\
    \  let c = ref 0 in\n\
    \  let d = Domain.spawn (fun () -> c := 1) in\n\
    \  Domain.join d;\n\
    \  !c\n"
  in
  rule_list "closure smuggles a ref into Domain.spawn" [ "R8" ]
    (rules_of (typed smuggled));
  let named_closure =
    "let leak () =\n\
    \  let c = ref 0 in\n\
    \  let worker () = c := 1 in\n\
    \  let d = Domain.spawn worker in\n\
    \  Domain.join d;\n\
    \  !c\n"
  in
  rule_list "spawned named closure is attributed to the spawn" [ "R8" ]
    (rules_of (typed named_closure));
  let replicated =
    "let leak () =\n\
    \  let c = ref 0 in\n\
    \  let ds = List.init 4 (fun _ -> Domain.spawn (fun () -> c := 1)) in\n\
    \  List.iter Domain.join ds\n"
  in
  rule_list "replicated spawn is multi-context by itself" [ "R8" ]
    (rules_of (typed replicated));
  let transferred =
    "let owned () =\n\
    \  let c = ref 0 in\n\
    \  let d = Domain.spawn (fun () -> c := 1; !c) in\n\
    \  Domain.join d\n"
  in
  rule_list "ownership transfer (touched only inside one spawn) passes" []
    (rules_of (typed transferred));
  let creator_only =
    "let fine () =\n\
    \  let c = ref 0 in\n\
    \  let d = Domain.spawn (fun () -> 41 + 1) in\n\
    \  c := 1;\n\
    \  Domain.join d + !c\n"
  in
  rule_list "creator-only mutable passes" [] (rules_of (typed creator_only));
  let waived =
    "let leak () =\n\
    \  (* lint: domain-shared-ok write happens before the join-ordered read *)\n\
    \  let c = ref 0 in\n\
    \  let d = Domain.spawn (fun () -> c := 1) in\n\
    \  Domain.join d;\n\
    \  !c\n"
  in
  rule_list "waiver above the local" [] (rules_of (typed waived))

(* ------------------------------------------------------------------- R9 *)

let test_r9_spsc_discipline () =
  let two_producers =
    spsc_stub
    ^ "let two () =\n\
      \  let r = Spsc.create 8 in\n\
      \  let d1 = Domain.spawn (fun () -> Spsc.push r 1) in\n\
      \  let d2 = Domain.spawn (fun () -> Spsc.push r 2) in\n\
      \  Domain.join d1; Domain.join d2;\n\
      \  Spsc.pop r\n"
  in
  rule_list "two producer spawns flagged" [ "R9" ] (rules_of (typed two_producers));
  let two_consumers =
    spsc_stub
    ^ "let two () =\n\
      \  let r = Spsc.create 8 in\n\
      \  let d1 = Domain.spawn (fun () -> Spsc.pop r) in\n\
      \  let d2 = Domain.spawn (fun () -> Spsc.pop r) in\n\
      \  Spsc.push r 1;\n\
      \  Domain.join d1; Domain.join d2\n"
  in
  rule_list "two consumer spawns flagged" [ "R9" ] (rules_of (typed two_consumers));
  let disciplined =
    spsc_stub
    ^ "let ok () =\n\
      \  let r = Spsc.create 8 in\n\
      \  let d = Domain.spawn (fun () -> Spsc.pop r) in\n\
      \  Spsc.push r 1;\n\
      \  Spsc.close_push r;\n\
      \  Domain.join d\n"
  in
  rule_list "one producer, one consumer passes" [] (rules_of (typed disciplined));
  let interprocedural =
    spsc_stub
    ^ "let feed_one q = Spsc.push q 1\n\
       let two () =\n\
      \  let r = Spsc.create 8 in\n\
      \  let d1 = Domain.spawn (fun () -> feed_one r) in\n\
      \  let d2 = Domain.spawn (fun () -> feed_one r) in\n\
      \  Domain.join d1; Domain.join d2;\n\
      \  Spsc.pop r\n"
  in
  rule_list "pushes through a helper are still producers" [ "R9" ]
    (rules_of (typed interprocedural));
  let replicated =
    spsc_stub
    ^ "let lanes () =\n\
      \  let r = Spsc.create 8 in\n\
      \  let ds = List.init 4 (fun _ -> Domain.spawn (fun () -> Spsc.push r 1)) in\n\
      \  List.iter Domain.join ds;\n\
      \  Spsc.pop r\n"
  in
  rule_list "replicated producer spawn flagged" [ "R9" ] (rules_of (typed replicated));
  let escaped =
    spsc_stub
    ^ "let stash () =\n\
      \  let r = Spsc.create 8 in\n\
      \  let d1 = Domain.spawn (fun () -> Spsc.push r 1) in\n\
      \  let d2 = Domain.spawn (fun () -> Spsc.push r 2) in\n\
      \  Domain.join d1; Domain.join d2;\n\
      \  [ r ]\n"
  in
  rule_list "an escaping ring is skipped (documented caveat)" []
    (rules_of (typed escaped));
  let waived =
    spsc_stub
    ^ "let two () =\n\
      \  (* lint: spsc-ok producers run in disjoint phases *)\n\
      \  let r = Spsc.create 8 in\n\
      \  let d1 = Domain.spawn (fun () -> Spsc.push r 1) in\n\
      \  let d2 = Domain.spawn (fun () -> Spsc.push r 2) in\n\
      \  Domain.join d1; Domain.join d2;\n\
      \  Spsc.pop r\n"
  in
  rule_list "waiver at the create site" [] (rules_of (typed waived))

(* ------------------------------------------------------------------ R10 *)

let test_r10_job_purity () =
  let registry =
    "let hits = ref 0\n\
     type entry = { id : string; run : quick:bool -> unit }\n\
     let all = [ { id = \"e1\"; run = (fun ~quick -> ignore quick; incr hits) } ]\n"
  in
  rule_list "impure registry job flagged" [ "R10" ]
    (rules_of (typed ~path:"lib/exp/registry.ml" registry));
  let registry_pure =
    "type entry = { id : string; run : quick:bool -> unit }\n\
     let all = [ { id = \"e1\"; run = (fun ~quick -> ignore quick) } ]\n"
  in
  rule_list "pure registry job passes" []
    (rules_of (typed ~path:"lib/exp/registry.ml" registry_pure));
  let transitive =
    common_stub
    ^ "let hits = ref 0\n\
       let bump () = incr hits\n\
       let jobs xs = Common.par_map (fun x -> bump (); x) xs\n"
  in
  rule_list "stage closure writing module state through a helper" [ "R10" ]
    (rules_of (typed transitive));
  let captured =
    common_stub
    ^ "let f xs =\n\
      \  let acc = ref 0 in\n\
      \  Common.par_map (fun x -> acc := !acc + x; x) xs\n"
  in
  rule_list "stage closure writing a captured local" [ "R10" ]
    (rules_of (typed captured));
  let atomic =
    common_stub
    ^ "let hits = Atomic.make 0\n\
       let f xs = Common.par_map (fun x -> Atomic.incr hits; x) xs\n"
  in
  rule_list "Atomic writes are sanctioned" [] (rules_of (typed atomic));
  let local_inside =
    common_stub
    ^ "let f xs = Common.par_map (fun x -> let c = ref x in incr c; !c) xs\n"
  in
  rule_list "a local created inside the closure passes" []
    (rules_of (typed local_inside));
  let out_of_scope =
    common_stub
    ^ "let hits = ref 0\n\
       let f xs = Common.par_map (fun x -> incr hits; x) xs\n"
  in
  rule_list "lib/skel is the backend's own code, not in scope" []
    (rules_of (typed ~path:"lib/skel/demo.ml" out_of_scope));
  let waived =
    common_stub
    ^ "let hits = ref 0\n\
       let f xs =\n\
      \  (* lint: impure-job-ok counter is debug-only and jobs-invariant *)\n\
      \  Common.par_map (fun x -> incr hits; x) xs\n"
  in
  rule_list "waiver at the call site" [] (rules_of (typed waived))

(* ------------------------------------------- parsing, severities, driver *)

let test_syntax_error_is_a_finding () =
  match lint "let let let\n" with
  | [ f ] ->
      Alcotest.(check string) "rule id" "syntax" f.Finding.rule;
      Alcotest.(check bool) "error severity" true (f.Finding.severity = Finding.Error)
  | other -> Alcotest.failf "expected one syntax finding, got %d" (List.length other)

let test_mli_parses_as_interface () =
  rule_list "interfaces lint clean" []
    (rules_of (lint ~path:"lib/demo/demo.mli" "val f : int -> int\n"))

let test_severity_overrides () =
  let src = "let render h = Hashtbl.iter (fun k v -> ignore (k, v)) h\n" in
  let with_sev severities =
    Driver.check_source { Driver.default with severities } ~path:"lib/demo/demo.ml" src
  in
  (match with_sev [ ("R2", Some Finding.Warning) ] with
  | [ f ] -> Alcotest.(check bool) "downgraded" true (f.Finding.severity = Finding.Warning)
  | other -> Alcotest.failf "expected one finding, got %d" (List.length other));
  rule_list "off" [] (rules_of (with_sev [ ("R2", None) ]));
  let only_r1 =
    Driver.check_source { Driver.default with rules = Some [ "R1" ] } ~path:"lib/demo/demo.ml" src
  in
  rule_list "rule selection drops others" [] (rules_of only_r1)

let test_rule_catalogue_consistent () =
  Alcotest.(check (list string)) "ids are R1..R10 + W1"
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9"; "R10"; "W1" ]
    Rules.ids;
  let slugs = List.map (fun r -> r.Rules.slug) Rules.all in
  Alcotest.(check (list string)) "slugs are distinct" (List.sort_uniq compare slugs)
    (List.sort compare slugs);
  Alcotest.(check int) "catalogue version bumped for the typed rules" 2
    Rules.catalogue_version;
  Alcotest.(check (list string)) "typed ids" [ "R8"; "R9"; "R10" ] Rules.typed_ids

(* ------------------------------------------------- W1, exit codes, JSON *)

(* A scratch tree on disk: Driver.scan is the only entry point that runs
   the W1 pass, so these tests write a real (tiny) root. *)
let with_scratch_tree files f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "aspipe_lint_test_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  List.iter
    (fun (rel, contents) ->
      let abs = Filename.concat dir rel in
      let rec mkdirs d =
        if not (Sys.file_exists d) then begin
          mkdirs (Filename.dirname d);
          Sys.mkdir d 0o755
        end
      in
      mkdirs (Filename.dirname abs);
      Out_channel.with_open_bin abs (fun oc -> Out_channel.output_string oc contents))
    files;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let scratch_opts root = { Driver.default with root; roots = [ "lib" ] }

let test_w1_unused_waiver () =
  with_scratch_tree
    [ ("lib/x.ml", "(* lint: wall-clock-ok stale justification *)\nlet f x = x\n") ]
    (fun root ->
      let report = Driver.scan (scratch_opts root) in
      rule_list "stale waiver flagged" [ "W1" ] (rules_of report.Driver.findings));
  with_scratch_tree
    [ ("lib/x.ml", "(* lint: not-a-real-slug whatever *)\nlet f x = x\n") ]
    (fun root ->
      let report = Driver.scan (scratch_opts root) in
      match report.Driver.findings with
      | [ f ] ->
          Alcotest.(check string) "unknown slug is W1" "W1" f.Finding.rule;
          let contains_sub hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "message names the slug" true
            (contains_sub f.Finding.message "not-a-real-slug")
      | other -> Alcotest.failf "expected one W1 finding, got %d" (List.length other));
  with_scratch_tree
    [ ("lib/x.ml", "(* lint: spsc-ok phase-disjoint producers *)\nlet f x = x\n") ]
    (fun root ->
      let report = Driver.scan (scratch_opts root) in
      rule_list "typed-rule waiver survives a syntactic-only scan" []
        (rules_of report.Driver.findings));
  with_scratch_tree
    [
      ( "lib/x.ml",
        "let elapsed () = Unix.gettimeofday () (* lint: wall-clock-ok measures a real solve *)\n"
      );
    ]
    (fun root ->
      let report = Driver.scan (scratch_opts root) in
      rule_list "a firing waiver is not unused" [] (rules_of report.Driver.findings))

let mk_report findings =
  { Driver.files_scanned = 1; typed_ran = false; typed_units = 0; findings }

let finding ?(rule = "R1") ?(severity = Finding.Error) () =
  { Finding.rule; severity; file = "lib/x.ml"; line = 3; col = 1; message = "m" }

let test_exit_codes () =
  Alcotest.(check int) "clean tree exits 0" 0 (Driver.exit_code (mk_report []));
  Alcotest.(check int) "error findings exit 1" 1
    (Driver.exit_code (mk_report [ finding () ]));
  Alcotest.(check int) "warnings alone exit 0" 0
    (Driver.exit_code (mk_report [ finding ~severity:Finding.Warning () ]));
  Alcotest.(check int) "syntax failure exits 2" 2
    (Driver.exit_code (mk_report [ finding ~rule:"syntax" () ]));
  Alcotest.(check int) "internal failure exits 2" 2
    (Driver.exit_code (mk_report [ finding ~rule:"internal" (); finding () ]));
  with_scratch_tree
    [ ("lib/x.ml", "let f x = x in\n") ]
    (fun root ->
      let report = Driver.scan (scratch_opts root) in
      Alcotest.(check int) "unparseable source exits 2 end-to-end" 2
        (Driver.exit_code report))

let test_json_report_shape () =
  let report =
    mk_report [ finding (); finding ~rule:"R2" ~severity:Finding.Warning () ]
  in
  let rendered = Driver.render_json Driver.default report in
  match Json.of_string rendered with
  | Error e -> Alcotest.failf "report does not parse back: %s" e
  | Ok j ->
      Alcotest.(check bool) "catalogue_version present and current" true
        (Json.member "catalogue_version" j = Some (Json.Int Rules.catalogue_version));
      let findings =
        match Json.member "findings" j with Some (Json.List l) -> l | _ -> []
      in
      let severities =
        List.filter_map
          (fun f ->
            match Json.member "severity" f with
            | Some (Json.String s) -> Some s
            | _ -> None)
          findings
      in
      Alcotest.(check (list string)) "every finding carries its severity"
        [ "error"; "warning" ] severities

(* ----------------------------------------------------------------- SARIF *)

let sarif_roundtrip =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 8)
        (let* rule = oneofl Rules.ids in
         let* severity = bool in
         let* file = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
         let* line = int_range 1 5000 in
         let* col = int_range 0 200 in
         let* message = string_printable in
         return
           {
             Finding.rule;
             severity = (if severity then Finding.Error else Finding.Warning);
             file = "lib/" ^ file ^ ".ml";
             line;
             col;
             message;
           }))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"SARIF round-trips through Aspipe_obs.Json"
       gen
       (fun findings ->
         match Json.of_string (Sarif.render findings) with
         | Error e -> QCheck2.Test.fail_reportf "SARIF does not parse back: %s" e
         | Ok j ->
             if j <> Sarif.of_findings findings then
               QCheck2.Test.fail_reportf "parsed SARIF differs from the source value"
             else true))

let test_sarif_shape () =
  let rendered = Sarif.render [ finding () ] in
  match Json.of_string rendered with
  | Error e -> Alcotest.failf "unparseable SARIF: %s" e
  | Ok j -> (
      Alcotest.(check bool) "sarif version" true
        (Json.member "version" j = Some (Json.String "2.1.0"));
      match Json.member "runs" j with
      | Some (Json.List [ run ]) -> (
          let driver =
            Option.bind (Json.member "tool" run) (Json.member "driver")
          in
          (match Option.bind driver (Json.member "rules") with
          | Some (Json.List rules) ->
              Alcotest.(check int) "whole catalogue exported"
                (List.length Rules.all) (List.length rules)
          | _ -> Alcotest.fail "missing tool.driver.rules");
          match Json.member "results" run with
          | Some (Json.List [ result ]) ->
              Alcotest.(check bool) "ruleId" true
                (Json.member "ruleId" result = Some (Json.String "R1"))
          | _ -> Alcotest.fail "expected one result")
      | _ -> Alcotest.fail "expected one run")

(* ------------------------------------------------------------ self-check *)

(* The repo root: walk up from cwd past _build (tests run in
   _build/default/test) to the first directory holding dune-project and
   the real source tree. *)
let repo_root () =
  let inside_build dir =
    let rec has = function
      | "/" | "." -> false
      | d -> Filename.basename d = "_build" || has (Filename.dirname d)
    in
    has dir
  in
  let rec up dir =
    if
      (not (inside_build dir))
      && Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_tree_is_lint_clean () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repository root from the test cwd"
  | Some root ->
      let report = Driver.scan { Driver.default with root } in
      Alcotest.(check bool) "scanned a real tree" true (report.Driver.files_scanned > 100);
      if report.Driver.findings <> [] then
        Alcotest.failf "tree has lint findings:\n%s" (Driver.render_text report)

(* The typed pass over the shipped tree itself: the .cmt files for the
   libraries this test links against live in <root>/_build/default, so a
   normal `dune runtest` exercises the interprocedural analyses on real
   code. Skipped (not failed) when no cmts are present, e.g. after a
   clean. *)
let test_typed_self_check () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repository root from the test cwd"
  | Some root ->
      let report = Driver.scan { Driver.default with root; typed = true } in
      if report.Driver.typed_units = 0 then
        Alcotest.skip ()
      else begin
        Alcotest.(check bool) "typed pass ran" true report.Driver.typed_ran;
        Alcotest.(check bool) "analysed a real library" true
          (report.Driver.typed_units > 20);
        if report.Driver.findings <> [] then
          Alcotest.failf "typed pass has findings on the shipped tree:\n%s"
            (Driver.render_text report)
      end

let () =
  Alcotest.run "aspipe_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 no-wall-clock" `Quick test_r1_wall_clock;
          Alcotest.test_case "R2 deterministic-iteration" `Quick test_r2_unordered_iteration;
          Alcotest.test_case "R3 no-raw-print" `Quick test_r3_raw_print;
          Alcotest.test_case "R4 guarded-hot-emit" `Quick test_r4_guarded_emit;
          Alcotest.test_case "R5 domain-safety" `Quick test_r5_shared_state;
          Alcotest.test_case "R6 banned-construct" `Quick test_r6_banned;
          Alcotest.test_case "R7 guarded-prof-record" `Quick test_r7_guarded_prof_record;
        ] );
      ( "typed rules",
        [
          Alcotest.test_case "R8 global escape" `Quick test_r8_global_escape;
          Alcotest.test_case "R8 local capture" `Quick test_r8_local_capture;
          Alcotest.test_case "R9 SPSC discipline" `Quick test_r9_spsc_discipline;
          Alcotest.test_case "R10 job purity" `Quick test_r10_job_purity;
        ] );
      ( "driver",
        [
          Alcotest.test_case "syntax errors surface" `Quick test_syntax_error_is_a_finding;
          Alcotest.test_case "mli parses" `Quick test_mli_parses_as_interface;
          Alcotest.test_case "severity overrides" `Quick test_severity_overrides;
          Alcotest.test_case "catalogue consistent" `Quick test_rule_catalogue_consistent;
          Alcotest.test_case "W1 unused waivers" `Quick test_w1_unused_waiver;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "JSON report shape" `Quick test_json_report_shape;
        ] );
      ( "sarif",
        [
          Alcotest.test_case "document shape" `Quick test_sarif_shape;
          sarif_roundtrip;
        ] );
      ( "self-check",
        [
          Alcotest.test_case "shipped tree is lint-clean" `Quick test_tree_is_lint_clean;
          Alcotest.test_case "typed pass over the shipped tree" `Quick test_typed_self_check;
        ] );
    ]
