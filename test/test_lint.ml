(* Tests for aspipe-lint: one positive / negative / waiver triple per rule
   (fixtures are inline snippets — the linter is purely syntactic, so they
   need to parse, not typecheck), severity plumbing, and a self-check that
   the shipped tree is lint-clean at error severity. *)

module Checker = Aspipe_lint.Checker
module Driver = Aspipe_lint.Driver
module Finding = Aspipe_lint.Finding
module Rules = Aspipe_lint.Rules

let lint ?(path = "lib/demo/demo.ml") source = Checker.check ~path source
let rules_of findings = List.map (fun f -> f.Finding.rule) findings
let rule_list = Alcotest.(check (list string))

(* ------------------------------------------------------------------- R1 *)

let test_r1_wall_clock () =
  let src = "let elapsed () = Unix.gettimeofday ()\n" in
  rule_list "flagged in simulator code" [ "R1" ] (rules_of (lint ~path:"lib/grid/clock.ml" src));
  rule_list "Sys.time flagged too" [ "R1" ]
    (rules_of (lint ~path:"lib/core/x.ml" "let t () = Sys.time ()\n"));
  rule_list "runner allowlisted" [] (rules_of (lint ~path:"lib/runner/pool.ml" src));
  rule_list "direct-execution engine allowlisted" []
    (rules_of (lint ~path:"lib/skel/skel_mc.ml" src));
  rule_list "exp_mc allowlisted" [] (rules_of (lint ~path:"lib/exp/exp_mc.ml" src));
  let mono = "let now () = Monotonic_clock.now ()\n" in
  rule_list "monotonic clock is still a real clock in DES code" [ "R1" ]
    (rules_of (lint ~path:"lib/des/engine.ml" mono));
  rule_list "core code cannot use it either" [ "R1" ]
    (rules_of (lint ~path:"lib/core/x.ml" mono));
  rule_list "the profiler may" [] (rules_of (lint ~path:"lib/prof/prof.ml" mono));
  let waived = "(* lint: wall-clock-ok measuring a real solve *)\nlet elapsed () = Unix.gettimeofday ()\n" in
  rule_list "waiver on the line above" [] (rules_of (lint waived))

(* ------------------------------------------------------------------- R2 *)

let test_r2_unordered_iteration () =
  rule_list "bare Hashtbl.iter flagged" [ "R2" ]
    (rules_of (lint "let render h = Hashtbl.iter (fun k v -> ignore (k, v)) h\n"));
  rule_list "Hashtbl.fold flagged" [ "R2" ]
    (rules_of (lint "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n"));
  rule_list "sort in the same binding passes" []
    (rules_of
       (lint "let keys h = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n"));
  rule_list "sort later in the same binding passes" []
    (rules_of
       (lint
          "let render h =\n\
          \  let acc = ref [] in\n\
          \  Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) h;\n\
          \  List.sort compare !acc\n"));
  rule_list "sort in a different binding does not excuse it" [ "R2" ]
    (rules_of
       (lint
          "let sorted xs = List.sort compare xs\n\
           let render h = Hashtbl.iter (fun k v -> ignore (k, v)) h\n"));
  rule_list "same-line waiver" []
    (rules_of
       (lint "let total h = Hashtbl.fold (fun _ v a -> v + a) h 0 (* lint: unordered-ok sum commutes *)\n"))

(* ------------------------------------------------------------------- R3 *)

let test_r3_raw_print () =
  let src = "let banner () = print_endline \"hi\"\n" in
  rule_list "direct print in lib flagged" [ "R3" ] (rules_of (lint src));
  rule_list "Stdlib-qualified flagged" [ "R3" ]
    (rules_of (lint "let f () = Stdlib.print_string \"x\"\n"));
  rule_list "Printf.printf flagged" [ "R3" ]
    (rules_of (lint "let f n = Printf.printf \"%d\" n\n"));
  rule_list "executables may print" [] (rules_of (lint ~path:"bin/aspipe_cli.ml" src));
  rule_list "bench may print" [] (rules_of (lint ~path:"bench/main.ml" src));
  rule_list "lib/util/out.ml is the one allowed module" []
    (rules_of (lint ~path:"lib/util/out.ml" src));
  rule_list "Out.print_string is the sanctioned route" []
    (rules_of (lint "let f s = Out.print_string s\n"));
  rule_list "pp to a formatter is fine" []
    (rules_of (lint "let pp ppf t = Format.pp_print_string ppf t\n"))

(* ------------------------------------------------------------------- R4 *)

let test_r4_guarded_emit () =
  rule_list "unguarded per-item emit flagged" [ "R4" ]
    (rules_of (lint "let f bus item = Bus.emit bus (Event.Completion { item })\n"));
  rule_list "if Bus.active guard passes" []
    (rules_of
       (lint
          "let f bus item =\n\
          \  if Bus.active bus then Bus.emit bus (Event.Completion { item })\n"));
  rule_list "qualified guard and emit pass" []
    (rules_of
       (lint
          "let f bus item =\n\
          \  if Aspipe_obs.Bus.active bus then\n\
          \    Aspipe_obs.Bus.emit bus (Aspipe_obs.Event.Completion { item })\n"));
  rule_list "when Bus.active match guard passes" []
    (rules_of
       (lint
          "let f opt item =\n\
          \  match opt with\n\
          \  | Some bus when Bus.active bus -> Bus.emit bus (Event.Completion { item })\n\
          \  | _ -> ()\n"));
  rule_list "emit in the else branch stays flagged" [ "R4" ]
    (rules_of
       (lint
          "let f bus item =\n\
          \  if Bus.active bus then () else Bus.emit bus (Event.Completion { item })\n"));
  rule_list "control events are exempt" []
    (rules_of (lint "let f bus node = Bus.emit bus (Event.Node_crashed { node })\n"));
  rule_list "adaptation decisions are control events" []
    (rules_of
       (lint
          "let f bus m t =\n\
          \  Bus.emit bus (Event.Adaptation_rejected { mapping = m; observed_throughput = t })\n"));
  rule_list "waiver" []
    (rules_of
       (lint
          "let f bus item =\n\
          \  (* lint: unguarded-emit-ok exercising the emit path itself *)\n\
          \  Bus.emit bus (Event.Completion { item })\n"))

(* ------------------------------------------------------------------- R5 *)

let test_r5_shared_state () =
  rule_list "structure-level ref flagged" [ "R5" ]
    (rules_of (lint "let hook = ref None\n"));
  rule_list "structure-level Hashtbl flagged" [ "R5" ]
    (rules_of (lint "let table = Hashtbl.create 16\n"));
  rule_list "annotated binding still flagged" [ "R5" ]
    (rules_of (lint "let cell : int ref = ref 0\n"));
  rule_list "Atomic passes" [] (rules_of (lint "let counter = Atomic.make 0\n"));
  rule_list "Domain.DLS passes" []
    (rules_of (lint "let key = Domain.DLS.new_key (fun () -> ref [])\n"));
  rule_list "locals are fine" []
    (rules_of (lint "let f xs = let acc = ref 0 in List.iter (fun x -> acc := !acc + x) xs; !acc\n"));
  rule_list "constructor functions are fine" []
    (rules_of (lint "let create () = Hashtbl.create 16\n"));
  rule_list "nested module state flagged" [ "R5" ]
    (rules_of (lint "module M = struct let cache = Hashtbl.create 8 end\n"));
  rule_list "structure-level Chan flagged" [ "R5" ]
    (rules_of (lint "let bus = Chan.create ~capacity:8\n"));
  rule_list "structure-level Spsc ring flagged" [ "R5" ]
    (rules_of (lint "let ring = Spsc.create ~capacity:64\n"));
  rule_list "qualified Spsc flagged too" [ "R5" ]
    (rules_of (lint "let ring = Aspipe_util.Spsc.create ~capacity:64\n"));
  rule_list "per-run channel creation is fine" []
    (rules_of (lint "let connect n = Array.init n (fun _ -> Spsc.create ~capacity:8)\n"));
  rule_list "outside lib/ not in scope" []
    (rules_of (lint ~path:"bench/main.ml" "let hook = ref None\n"));
  rule_list "channel waiver" []
    (rules_of
       (lint
          "(* lint: shared-state-ok test harness fixture, single consumer *)\n\
           let ring = Spsc.create ~capacity:4\n"));
  rule_list "waiver" []
    (rules_of (lint "(* lint: shared-state-ok guarded by the pool's init barrier *)\nlet hook = ref None\n"))

(* ------------------------------------------------------------------- R6 *)

let test_r6_banned () =
  rule_list "Obj.magic flagged" [ "R6" ] (rules_of (lint "let f x = Obj.magic x\n"));
  rule_list "Random.self_init flagged" [ "R6" ]
    (rules_of (lint "let seed () = Random.self_init ()\n"));
  rule_list "physical equality flagged" [ "R6" ] (rules_of (lint "let f a b = a == b\n"));
  rule_list "physical inequality flagged" [ "R6" ] (rules_of (lint "let f a b = a != b\n"));
  rule_list "structural equality fine" [] (rules_of (lint "let f a b = a = b\n"));
  rule_list "waiver" []
    (rules_of (lint "let f a b = a == b (* lint: banned-ok interned sentinel compare *)\n"))

(* ------------------------------------------------------------------- R7 *)

let test_r7_guarded_prof_record () =
  rule_list "unguarded record flagged" [ "R7" ]
    (rules_of (lint "let f t0 t1 = Prof.record Task ~label:\"x\" ~t0 ~t1 ~a:0 ~b:0 ~words:0.\n"));
  rule_list "record_gc flagged too" [ "R7" ]
    (rules_of (lint "let f () = Prof.record_gc ~label:\"start\"\n"));
  rule_list "qualified record flagged" [ "R7" ]
    (rules_of (lint "let f () = Aspipe_prof.Prof.record_gc ~label:\"start\"\n"));
  rule_list "if Prof.enabled guard passes" []
    (rules_of
       (lint
          "let f t0 t1 =\n\
          \  if Prof.enabled () then Prof.record Task ~label:\"x\" ~t0 ~t1 ~a:0 ~b:0 ~words:0.\n"));
  rule_list "compound condition mentioning Prof.enabled passes" []
    (rules_of
       (lint
          "let f t0 t1 =\n\
          \  if t0 > 0.0 && Prof.enabled () then Prof.record Task ~label:\"x\" ~t0 ~t1 ~a:0 ~b:0 ~words:0.\n"));
  rule_list "when Prof.enabled match guard passes" []
    (rules_of
       (lint
          "let f probe =\n\
          \  match probe with\n\
          \  | Some t0 when Prof.enabled () -> Prof.record_gc ~label:\"end\"\n\
          \  | _ -> ()\n"));
  rule_list "record in the else branch stays flagged" [ "R7" ]
    (rules_of
       (lint
          "let f () = if Prof.enabled () then () else Prof.record_gc ~label:\"x\"\n"));
  rule_list "a Bus.active guard does not excuse a prof record" [ "R7" ]
    (rules_of
       (lint "let f bus = if Bus.active bus then Prof.record_gc ~label:\"x\"\n"));
  rule_list "lib/prof/ itself is exempt" []
    (rules_of (lint ~path:"lib/prof/prof.ml" "let f () = Prof.record_gc ~label:\"x\"\n"));
  rule_list "outside lib/ not in scope" []
    (rules_of (lint ~path:"bin/aspipe_cli.ml" "let f () = Prof.record_gc ~label:\"x\"\n"));
  rule_list "waiver" []
    (rules_of
       (lint
          "let f () =\n\
          \  (* lint: unguarded-prof-ok exercising the recorder itself *)\n\
          \  Prof.record_gc ~label:\"x\"\n"))

(* ------------------------------------------- parsing, severities, driver *)

let test_syntax_error_is_a_finding () =
  match lint "let let let\n" with
  | [ f ] ->
      Alcotest.(check string) "rule id" "syntax" f.Finding.rule;
      Alcotest.(check bool) "error severity" true (f.Finding.severity = Finding.Error)
  | other -> Alcotest.failf "expected one syntax finding, got %d" (List.length other)

let test_mli_parses_as_interface () =
  rule_list "interfaces lint clean" []
    (rules_of (lint ~path:"lib/demo/demo.mli" "val f : int -> int\n"))

let test_severity_overrides () =
  let src = "let render h = Hashtbl.iter (fun k v -> ignore (k, v)) h\n" in
  let with_sev severities =
    Driver.check_source { Driver.default with severities } ~path:"lib/demo/demo.ml" src
  in
  (match with_sev [ ("R2", Some Finding.Warning) ] with
  | [ f ] -> Alcotest.(check bool) "downgraded" true (f.Finding.severity = Finding.Warning)
  | other -> Alcotest.failf "expected one finding, got %d" (List.length other));
  rule_list "off" [] (rules_of (with_sev [ ("R2", None) ]));
  let only_r1 =
    Driver.check_source { Driver.default with rules = Some [ "R1" ] } ~path:"lib/demo/demo.ml" src
  in
  rule_list "rule selection drops others" [] (rules_of only_r1)

let test_rule_catalogue_consistent () =
  Alcotest.(check (list string)) "ids are R1..R7"
    [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7" ]
    Rules.ids;
  let slugs = List.map (fun r -> r.Rules.slug) Rules.all in
  Alcotest.(check (list string)) "slugs are distinct" (List.sort_uniq compare slugs)
    (List.sort compare slugs)

(* ------------------------------------------------------------ self-check *)

(* The repo root: walk up from cwd past _build (tests run in
   _build/default/test) to the first directory holding dune-project and
   the real source tree. *)
let repo_root () =
  let inside_build dir =
    let rec has = function
      | "/" | "." -> false
      | d -> Filename.basename d = "_build" || has (Filename.dirname d)
    in
    has dir
  in
  let rec up dir =
    if
      (not (inside_build dir))
      && Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lib")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let test_tree_is_lint_clean () =
  match repo_root () with
  | None -> Alcotest.fail "could not locate the repository root from the test cwd"
  | Some root ->
      let report = Driver.scan { Driver.default with root } in
      Alcotest.(check bool) "scanned a real tree" true (report.Driver.files_scanned > 100);
      if report.Driver.findings <> [] then
        Alcotest.failf "tree has lint findings:\n%s" (Driver.render_text report)

let () =
  Alcotest.run "aspipe_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 no-wall-clock" `Quick test_r1_wall_clock;
          Alcotest.test_case "R2 deterministic-iteration" `Quick test_r2_unordered_iteration;
          Alcotest.test_case "R3 no-raw-print" `Quick test_r3_raw_print;
          Alcotest.test_case "R4 guarded-hot-emit" `Quick test_r4_guarded_emit;
          Alcotest.test_case "R5 domain-safety" `Quick test_r5_shared_state;
          Alcotest.test_case "R6 banned-construct" `Quick test_r6_banned;
          Alcotest.test_case "R7 guarded-prof-record" `Quick test_r7_guarded_prof_record;
        ] );
      ( "driver",
        [
          Alcotest.test_case "syntax errors surface" `Quick test_syntax_error_is_a_finding;
          Alcotest.test_case "mli parses" `Quick test_mli_parses_as_interface;
          Alcotest.test_case "severity overrides" `Quick test_severity_overrides;
          Alcotest.test_case "catalogue consistent" `Quick test_rule_catalogue_consistent;
        ] );
      ( "self-check",
        [ Alcotest.test_case "shipped tree is lint-clean" `Quick test_tree_is_lint_clean ] );
    ]
