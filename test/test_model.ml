(* Tests for the performance-model library: mappings, cost specs, the
   analytic bottleneck evaluator, the CTMC evaluator (including regression
   against published PEPA-workbench figures) and mapping search. *)

module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Analytic = Aspipe_model.Analytic
module Ctmc = Aspipe_model.Ctmc
module Search = Aspipe_model.Search
module Predictor = Aspipe_model.Predictor
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* -------------------------------------------------------------- Mapping *)

let test_mapping_of_array () =
  let m = Mapping.of_array ~processors:3 [| 0; 2; 1 |] in
  Alcotest.(check int) "stages" 3 (Mapping.stages m);
  Alcotest.(check int) "processor_of" 2 (Mapping.processor_of m 1);
  Alcotest.(check string) "to_string" "(0,2,1)" (Mapping.to_string m);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mapping.of_array: processor out of range") (fun () ->
      ignore (Mapping.of_array ~processors:2 [| 0; 2 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Mapping.of_array: empty") (fun () ->
      ignore (Mapping.of_array ~processors:2 [||]))

let test_mapping_round_robin () =
  Alcotest.(check (array int)) "round robin" [| 0; 1; 2; 0; 1 |]
    (Mapping.to_array (Mapping.round_robin ~stages:5 ~processors:3))

let test_mapping_blocks () =
  Alcotest.(check (array int)) "even blocks" [| 0; 0; 1; 1 |]
    (Mapping.to_array (Mapping.blocks ~stages:4 ~processors:2));
  Alcotest.(check (array int)) "uneven blocks front-load the remainder" [| 0; 0; 1; 1; 2; 2; 3 |]
    (Mapping.to_array (Mapping.blocks ~stages:7 ~processors:4));
  Alcotest.(check (array int)) "more processors than stages" [| 0; 1 |]
    (Mapping.to_array (Mapping.blocks ~stages:2 ~processors:5))

let test_mapping_enumerate () =
  Alcotest.(check int) "Np^Ns candidates" 27
    (List.length (Mapping.enumerate ~stages:3 ~processors:3 ()));
  let pinned = Mapping.enumerate ~fix_first_on:1 ~stages:3 ~processors:3 () in
  Alcotest.(check int) "pinned space" 9 (List.length pinned);
  List.iter
    (fun m ->
      if Mapping.processor_of m 0 <> 1 then Alcotest.fail "pin violated")
    pinned;
  (* All candidates distinct. *)
  let as_lists = List.map (fun m -> Array.to_list (Mapping.to_array m)) pinned in
  Alcotest.(check int) "no duplicates" 9 (List.length (List.sort_uniq compare as_lists))

let test_mapping_neighbours () =
  let m = Mapping.of_array ~processors:3 [| 0; 1 |] in
  let ns = Mapping.neighbours m ~processors:3 in
  Alcotest.(check int) "Ns x (Np-1) neighbours" 4 (List.length ns);
  List.iter
    (fun n ->
      let diff = ref 0 in
      Array.iteri
        (fun i p -> if p <> Mapping.processor_of m i then incr diff)
        (Mapping.to_array n);
      Alcotest.(check int) "exactly one stage moves" 1 !diff)
    ns

let test_mapping_colocation () =
  let m = Mapping.of_array ~processors:3 [| 0; 0; 2 |] in
  Alcotest.(check (array int)) "counts" [| 2; 0; 1 |] (Mapping.colocation m ~processors:3);
  Alcotest.(check int) "sharing of stage 0" 2 (Mapping.stages_sharing m 0);
  Alcotest.(check int) "sharing of stage 2" 1 (Mapping.stages_sharing m 2)

let test_mapping_random_in_range =
  qtest "random mappings stay in range"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 8) (int_range 0 1000))
    (fun (stages, processors, seed) ->
      let m = Mapping.random (Rng.create seed) ~stages ~processors in
      Array.for_all (fun p -> p >= 0 && p < processors) (Mapping.to_array m))

(* ------------------------------------------------------------- Costspec *)

let build_spec ?(n = 3) ?(latency = 0.01) () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n ~speed:10.0 ~latency ~bandwidth:1e6 () in
  let stages = Stage.balanced ~n:2 ~work:2.0 ~output_bytes:1e3 () in
  let input = Stream_spec.make ~items:10 ~item_bytes:1e3 () in
  Costspec.of_topology ~topo ~stages ~input ()

let test_costspec_dimensions () =
  let spec = build_spec () in
  Alcotest.(check int) "processors" 3 (Costspec.processors spec);
  Alcotest.(check int) "stages" 2 (Costspec.stages spec);
  Costspec.validate spec

let test_costspec_service_rate_sharing () =
  let spec = build_spec () in
  let spread = Mapping.of_array ~processors:3 [| 0; 1 |] in
  let packed = Mapping.of_array ~processors:3 [| 0; 0 |] in
  (* speed 10, work 2 -> 5 items/s alone; halved when sharing. *)
  check_float "alone" 5.0 (Costspec.service_rate spec spread 0);
  check_float "shared" 2.5 (Costspec.service_rate spec packed 0)

let test_costspec_move_rates () =
  let spec = build_spec ~latency:0.1 () in
  let spread = Mapping.of_array ~processors:3 [| 0; 1 |] in
  let packed = Mapping.of_array ~processors:3 [| 0; 0 |] in
  (* Remote interior move: 0.1 + 1e3/1e6 = 0.101 s. *)
  check_close ~eps:1e-9 "remote move rate" (1.0 /. 0.101) (Costspec.move_rate spec spread 1);
  Alcotest.(check bool) "local move much faster" true
    (Costspec.move_rate spec packed 1 > 1000.0);
  (* Boundary moves use the user link. *)
  check_close ~eps:1e-9 "input move" (1.0 /. 0.101) (Costspec.move_rate spec spread 0);
  check_close ~eps:1e-9 "output move" (1.0 /. 0.101) (Costspec.move_rate spec spread 2);
  Alcotest.check_raises "index out of range"
    (Invalid_argument "Costspec.move_rate: index out of range") (fun () ->
      ignore (Costspec.move_rate spec spread 3))

let test_costspec_with_stage_work () =
  let spec = build_spec () in
  let spec' = Costspec.with_stage_work spec [| 1.0; 4.0 |] in
  let m = Mapping.of_array ~processors:3 [| 0; 1 |] in
  check_float "updated work vector" 2.5 (Costspec.service_rate spec' m 1);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Costspec.with_stage_work: length mismatch") (fun () ->
      ignore (Costspec.with_stage_work spec [| 1.0 |]))


let test_costspec_link_quality_override () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:0.1 ~bandwidth:1e6 () in
  let stages = Stage.balanced ~n:2 ~work:1.0 ~output_bytes:1e3 () in
  let input = Stream_spec.make ~items:5 ~item_bytes:1e3 () in
  let nominal = Costspec.of_topology ~topo ~stages ~input () in
  let degraded =
    Costspec.of_topology
      ~link_quality:(fun ~src:_ ~dst:_ -> 0.5)
      ~user_link_quality:(fun _ -> 0.5)
      ~topo ~stages ~input ()
  in
  check_close ~eps:1e-9 "latency doubles at quality 0.5"
    (2.0 *. nominal.Costspec.latency.(0).(1))
    degraded.Costspec.latency.(0).(1);
  check_close ~eps:1e-9 "bandwidth halves"
    (nominal.Costspec.bandwidth.(0).(1) /. 2.0)
    degraded.Costspec.bandwidth.(0).(1);
  check_close ~eps:1e-9 "user latency doubles"
    (2.0 *. nominal.Costspec.user_latency.(1))
    degraded.Costspec.user_latency.(1);
  (* Ground-truth default picks up live link quality. *)
  Aspipe_grid.Link.set_quality (Topology.link topo ~src:0 ~dst:1) 0.25;
  let live = Costspec.of_topology ~topo ~stages ~input () in
  check_close ~eps:1e-9 "default reads live quality"
    (4.0 *. nominal.Costspec.latency.(0).(1))
    live.Costspec.latency.(0).(1)

(* ------------------------------------------------------------- Analytic *)

let synthetic_spec ~stage_work ~node_rates ?(latency = 0.0001) ?(bandwidth = 1e9) () =
  let np = Array.length node_rates in
  {
    Costspec.stage_work;
    node_rates;
    item_bytes = 1.0;
    output_bytes = Array.make (Array.length stage_work) 1.0;
    latency = Array.init np (fun _ -> Array.make np latency);
    bandwidth = Array.init np (fun _ -> Array.make np bandwidth);
    user_latency = Array.make np latency;
    user_bandwidth = Array.make np bandwidth;
  }

let test_analytic_processor_bottleneck () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 2.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let station, rate = Analytic.bottleneck spec m in
  check_close ~eps:1e-3 "slow node binds" 2.0 rate;
  (* The binding station involves the slow node: either its processor
     station or the cycle of the stage mapped to it. *)
  (match station with
  | Analytic.Processor 1 | Analytic.Stage_cycle 1 -> ()
  | Analytic.Processor _ | Analytic.Stage_cycle _ ->
      Alcotest.fail "expected the slow node to bind");
  check_close ~eps:1e-3 "throughput = bottleneck rate" 2.0 (Analytic.throughput spec m)

let test_analytic_cycle_bottleneck () =
  (* Fast nodes, dreadful link: the stage cycle binds. *)
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 100.0; 100.0 |] ~latency:0.5 ()
  in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let station, rate = Analytic.bottleneck spec m in
  (match station with
  | Analytic.Stage_cycle _ -> ()
  | Analytic.Processor _ -> Alcotest.fail "expected a stage cycle as bottleneck");
  check_close ~eps:0.01 "cycle ~ service + move" (1.0 /. (0.01 +. 0.5)) rate

let test_analytic_colocation_halves () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let spread = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let packed = Mapping.of_array ~processors:2 [| 0; 0 |] in
  let ratio = Analytic.throughput spec spread /. Analytic.throughput spec packed in
  check_close ~eps:0.01 "spread is twice as fast" 2.0 ratio

let test_analytic_fill_and_completion () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let fill = Analytic.fill_latency spec m in
  Alcotest.(check bool) "fill covers both services" true (fill >= 0.2);
  let completion = Analytic.completion_time spec m ~items:100 in
  Alcotest.(check bool) "completion beyond fill" true (completion > fill);
  check_close ~eps:0.1 "completion ~ fill + (n-1)/X" (fill +. (99.0 /. Analytic.throughput spec m))
    completion;
  Alcotest.check_raises "items 0"
    (Invalid_argument "Analytic.completion_time: items must be positive") (fun () ->
      ignore (Analytic.completion_time spec m ~items:0))

let test_analytic_monotone_in_speed =
  qtest ~count:50 "throughput never decreases when a node speeds up"
    QCheck2.Gen.(triple (int_range 0 2) (float_range 1.0 20.0) (int_range 0 999))
    (fun (node, extra, seed) ->
      let rng = Rng.create seed in
      let rates = Array.init 3 (fun _ -> 1.0 +. (9.0 *. Rng.float rng)) in
      let spec = synthetic_spec ~stage_work:[| 1.0; 2.0; 1.0 |] ~node_rates:rates () in
      let faster = Array.copy rates in
      faster.(node) <- faster.(node) +. extra;
      let spec' = synthetic_spec ~stage_work:[| 1.0; 2.0; 1.0 |] ~node_rates:faster () in
      let m = Mapping.of_array ~processors:3 [| 0; 1; 2 |] in
      Analytic.throughput spec' m >= Analytic.throughput spec m -. 1e-9)

(* ----------------------------------------------------------------- Ctmc *)

let test_ctmc_state_count () =
  let model = Ctmc.build ~service_rates:[| 1.0; 1.0; 1.0 |] ~move_rates:(Array.make 4 10.0) in
  Alcotest.(check int) "3^3 states" 27 (Ctmc.state_count model);
  Alcotest.(check bool) "transitions exist" true (Ctmc.transition_count model > 27)

let test_ctmc_build_validation () =
  Alcotest.check_raises "wrong move vector"
    (Invalid_argument "Ctmc.build: move_rates must have Ns+1 entries") (fun () ->
      ignore (Ctmc.build ~service_rates:[| 1.0 |] ~move_rates:[| 1.0 |]));
  Alcotest.check_raises "non-positive rate" (Invalid_argument "Ctmc: rates must be positive")
    (fun () -> ignore (Ctmc.build ~service_rates:[| 0.0 |] ~move_rates:[| 1.0; 1.0 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Ctmc.build: no stages") (fun () ->
      ignore (Ctmc.build ~service_rates:[||] ~move_rates:[| 1.0 |]))

let test_ctmc_steady_state_properties () =
  let model =
    Ctmc.build ~service_rates:[| 2.0; 5.0; 3.0 |] ~move_rates:[| 100.0; 7.0; 9.0; 100.0 |]
  in
  let pi = Ctmc.steady_state model in
  let total = Array.fold_left ( +. ) 0.0 pi in
  check_close ~eps:1e-9 "distribution sums to 1" 1.0 total;
  Array.iter (fun p -> if p < -1e-12 then Alcotest.fail "negative probability") pi;
  Alcotest.(check bool) "balance residual tiny" true (Ctmc.residual model pi < 1e-6)

(* Regression against the published PEPA-workbench results for this model
   (Benoit, Cole, Gilmore, Hillston; ICCS 2004, Section 4.2): 3 stages,
   li-i = 0.0001 s, no input/output transfer cost, equitable sharing. *)
let pepa_throughput ~times ~mapping =
  (* times.(p) = seconds per stage on processor p when alone. *)
  let processors = Array.length times in
  let m = Mapping.of_array ~processors mapping in
  let service_rates =
    Array.init 3 (fun i ->
        let p = mapping.(i) in
        1.0 /. times.(p) /. Float.of_int (Mapping.stages_sharing m i))
  in
  let fast = 1.0 /. 0.0001 in
  let move_rates = [| fast; fast; fast; fast |] in
  Ctmc.throughput (Ctmc.build ~service_rates ~move_rates)

let test_ctmc_reproduces_pepa_row1 () =
  (* (1,2,3) with t = 0.1 everywhere: published throughput 5.63467. *)
  check_close ~eps:0.01 "one stage per processor" 5.63467
    (pepa_throughput ~times:[| 0.1; 0.1; 0.1 |] ~mapping:[| 0; 1; 2 |])

let test_ctmc_reproduces_pepa_row2 () =
  (* Same with t = 0.2: published 2.81892 (exactly half). *)
  check_close ~eps:0.01 "busy processors halve throughput" 2.81892
    (pepa_throughput ~times:[| 0.2; 0.2; 0.2 |] ~mapping:[| 0; 1; 2 |])

let test_ctmc_reproduces_pepa_all_on_one () =
  (* (1,1,1) with t = 0.1: published 1.87963. *)
  check_close ~eps:0.01 "all stages on one processor" 1.87963
    (pepa_throughput ~times:[| 0.1; 0.1; 0.1 |] ~mapping:[| 0; 0; 0 |])

let test_ctmc_matches_analytic_on_fast_network () =
  (* With negligible move times and a dominant slow stage, blocking barely
     matters: CTMC must approach the bottleneck rate. *)
  let model =
    Ctmc.build ~service_rates:[| 100.0; 1.0; 100.0 |] ~move_rates:(Array.make 4 1e6)
  in
  check_close ~eps:0.02 "dominant bottleneck" 1.0 (Ctmc.throughput model)

let test_ctmc_of_costspec_consistency () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let x = Ctmc.throughput (Ctmc.of_costspec spec m) in
  Alcotest.(check bool) "between half and full bottleneck" true
    (x > 0.5 *. Analytic.throughput spec m && x <= Analytic.throughput spec m +. 1e-9)


(* ----------------------------------------------------------- Farm_model *)

module Farm_model = Aspipe_model.Farm_model

let test_farm_model_rates () =
  let model = Farm_model.make ~work:2.0 ~node_rates:[| 10.0; 4.0 |] in
  check_float "worker rate" 5.0 (Farm_model.worker_rate model 0);
  check_float "rr binds at the slowest" 4.0
    (Farm_model.round_robin_throughput model ~workers:[ 0; 1 ]);
  check_float "proportional sums" 7.0 (Farm_model.proportional_throughput model ~workers:[ 0; 1 ]);
  check_float "empty set" 0.0 (Farm_model.round_robin_throughput model ~workers:[]);
  Alcotest.check_raises "bad work" (Invalid_argument "Farm_model.make: work must be positive")
    (fun () -> ignore (Farm_model.make ~work:0.0 ~node_rates:[| 1.0 |]))

let test_farm_model_best_set () =
  (* rates 14,12,10,10,8,6: prefixes give 14,24,30,40,40,36 -> best is the
     4-element prefix (ties resolve to the first maximum found). *)
  let model = Farm_model.make ~work:1.0 ~node_rates:[| 14.0; 12.0; 10.0; 10.0; 8.0; 6.0 |] in
  let set, score = Farm_model.best_round_robin_set model ~candidates:[ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "drops the slow tail" [ 0; 1; 2; 3 ] set;
  check_float "score" 40.0 score

let test_farm_model_best_set_exhaustive =
  qtest ~count:60 "best prefix beats every subset"
    QCheck2.Gen.(array_size (int_range 1 8) (float_range 1.0 20.0))
    (fun rates ->
      let model = Farm_model.make ~work:1.0 ~node_rates:rates in
      let candidates = List.init (Array.length rates) Fun.id in
      let _, best = Farm_model.best_round_robin_set model ~candidates in
      (* Enumerate all non-empty subsets and verify none beats the prefix. *)
      let n = List.length candidates in
      let rec subsets mask =
        if mask >= 1 lsl n then true
        else begin
          let subset = List.filter (fun i -> mask land (1 lsl i) <> 0) candidates in
          (subset = [] || Farm_model.round_robin_throughput model ~workers:subset <= best +. 1e-9)
          && subsets (mask + 1)
        end
      in
      subsets 1)


(* ----------------------------------------------------------- Repl_model *)

module Repl_model = Aspipe_model.Repl_model

let test_repl_model_capacity () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 4.0 |] ~node_rates:[| 10.0; 10.0; 10.0 |] () in
  let replicas = [| [ 0 ]; [ 1; 2 ] |] in
  check_close ~eps:1e-9 "plain stage capacity" 10.0 (Repl_model.stage_capacity spec ~replicas 0);
  check_close ~eps:1e-9 "replicated hot stage sums shares" 5.0
    (Repl_model.stage_capacity spec ~replicas 1);
  check_close ~eps:1e-9 "throughput is the min" 5.0 (Repl_model.throughput spec ~replicas)

let test_repl_model_shared_node_splits () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  (* Node 0 carries both stages: each gets half its rate. *)
  let replicas = [| [ 0 ]; [ 0; 1 ] |] in
  Alcotest.(check (array int)) "assignment counts" [| 2; 1 |]
    (Repl_model.node_share ~replicas ~processors:2);
  check_close ~eps:1e-9 "stage 0 runs on a half share" 5.0
    (Repl_model.stage_capacity spec ~replicas 0);
  check_close ~eps:1e-9 "stage 1 gets half of node0 plus all of node1" 15.0
    (Repl_model.stage_capacity spec ~replicas 1)

let test_repl_model_best_replication () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0; 4.0; 1.0 |]
      ~node_rates:(Array.make 7 10.0) ()
  in
  let replicas, predicted = Repl_model.best_replication spec ~budget:7 ~processors:7 in
  Alcotest.(check int) "hot stage got the extra replicas" 4 (List.length replicas.(2));
  check_close ~eps:1e-9 "bottleneck resolved" 10.0 predicted;
  Alcotest.check_raises "budget too small"
    (Invalid_argument "Repl_model.best_replication: budget below one replica per stage")
    (fun () -> ignore (Repl_model.best_replication spec ~budget:3 ~processors:7))

let test_repl_model_validation () =
  let spec = synthetic_spec ~stage_work:[| 1.0 |] ~node_rates:[| 10.0 |] () in
  Alcotest.check_raises "arity" (Invalid_argument "Repl_model: one replica set per stage required")
    (fun () -> ignore (Repl_model.throughput spec ~replicas:[||]));
  Alcotest.check_raises "empty set" (Invalid_argument "Repl_model: empty replica set") (fun () ->
      ignore (Repl_model.throughput spec ~replicas:[| [] |]))


let test_repl_model_monotone_in_replicas =
  qtest ~count:50 "adding a replica to a fresh node never lowers throughput"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let stages = 2 + Rng.int rng 3 in
      let processors = stages + 2 in
      let spec =
        synthetic_spec
          ~stage_work:(Array.init stages (fun _ -> Rng.range rng 0.5 3.0))
          ~node_rates:(Array.init processors (fun _ -> Rng.range rng 5.0 15.0))
          ()
      in
      (* One replica per stage on its own node; then give a random stage the
         first spare node. *)
      let base = Array.init stages (fun i -> [ i ]) in
      let grown = Array.copy base in
      let lucky = Rng.int rng stages in
      grown.(lucky) <- [ lucky; stages ];
      Repl_model.throughput spec ~replicas:grown
      >= Repl_model.throughput spec ~replicas:base -. 1e-9)

(* ---------------------------------------------------------- Pepa_export *)

module Pepa_export = Aspipe_model.Pepa_export

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_pepa_export_structure () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 0; 1 |] in
  let source = Pepa_export.pipeline spec m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (string_contains source needle))
    [
      "Stage1 = (move1, infty).(process1, infty).(move2, infty).Stage1;";
      "Stage3";
      "Processor1 = (process1, mu1).Processor1 + (process2, mu2).Processor1;";
      "Processor2 = (process3, mu3).Processor2;";
      "Network =";
      "Pipeline = Stage1 <move2> (Stage2 <move3> (Stage3));";
      "Mapping = Network <move1, move2, move3, move4> Pipeline";
    ]

let test_pepa_export_rates_match_ctmc_inputs () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 2.0 |] ~node_rates:[| 10.0; 5.0 |] () in
  let m = Mapping.of_array ~processors:2 [| 0; 1 |] in
  let rates = Pepa_export.rate_table spec m in
  Alcotest.(check int) "Ns mus + Ns+1 lambdas" 5 (List.length rates);
  check_close ~eps:1e-9 "mu1 = service rate of stage 0" (Costspec.service_rate spec m 0)
    (List.assoc "mu1" rates);
  check_close ~eps:1e-9 "lambda2 = interior move rate" (Costspec.move_rate spec m 1)
    (List.assoc "lambda2" rates)

(* --------------------------------------------------------- Ctmc solvers *)

let test_ctmc_solvers_agree () =
  let model =
    Ctmc.build ~service_rates:[| 2.0; 5.0; 3.0 |] ~move_rates:[| 50.0; 7.0; 9.0; 50.0 |]
  in
  let gs = Ctmc.throughput ~solver:Ctmc.Gauss_seidel model in
  let power = Ctmc.throughput ~solver:Ctmc.Power model in
  check_close ~eps:1e-6 "both solvers find the same throughput" gs power

let test_ctmc_gauss_seidel_handles_stiff () =
  (* Rates spanning 6 orders of magnitude: power iteration at default budget
     cannot converge, Gauss-Seidel must. *)
  let model = Ctmc.build ~service_rates:(Array.make 3 1.0) ~move_rates:(Array.make 4 1e6) in
  let x = Ctmc.throughput ~solver:Ctmc.Gauss_seidel model in
  Alcotest.(check bool) "plausible throughput" true (x > 0.3 && x <= 1.0);
  Alcotest.check_raises "power diverges in the iteration budget"
    (Failure "Ctmc.steady_state: no convergence") (fun () ->
      ignore (Ctmc.throughput ~solver:Ctmc.Power ~max_iter:1000 model))


let test_cross_model_bounds =
  qtest ~count:40 "ctmc never exceeds the analytic saturation bound"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let stages = 2 + Rng.int rng 3 in
      let processors = 2 + Rng.int rng 3 in
      let spec =
        synthetic_spec
          ~stage_work:(Array.init stages (fun _ -> Rng.range rng 0.5 2.0))
          ~node_rates:(Array.init processors (fun _ -> Rng.range rng 5.0 15.0))
          ~latency:(Rng.range rng 1e-3 0.05)
          ()
      in
      let m = Mapping.random rng ~stages ~processors in
      let analytic = Analytic.throughput spec m in
      let ctmc = Ctmc.throughput (Ctmc.of_costspec spec m) in
      ctmc <= analytic +. (1e-6 *. analytic) && ctmc > 0.0)

(* --------------------------------------------------------------- Search *)

let table_evaluator ~processors table m =
  (* Deterministic scoring read from a table keyed by the mapping. *)
  ignore processors;
  let key = Array.to_list (Mapping.to_array m) in
  match List.assoc_opt key table with Some v -> v | None -> 0.0

let test_search_exhaustive_finds_max () =
  let table = [ ([ 0; 0 ], 1.0); ([ 0; 1 ], 3.0); ([ 1; 0 ], 2.0); ([ 1; 1 ], 0.5) ] in
  let result = Search.exhaustive ~stages:2 ~processors:2 (table_evaluator ~processors:2 table) in
  Alcotest.(check (array int)) "argmax" [| 0; 1 |] (Mapping.to_array result.Search.mapping);
  check_float "score" 3.0 result.Search.score;
  Alcotest.(check int) "evaluated everything" 4 result.Search.evaluated

let test_search_exhaustive_vs_random_evaluator =
  qtest ~count:30 "exhaustive = brute force max"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let score m =
        (* Hash-based deterministic pseudo-score. *)
        let h = Array.fold_left (fun acc p -> (acc * 31) + p + 7) 3 (Mapping.to_array m) in
        Float.of_int (h mod 1000) +. Rng.float (Rng.create h)
      in
      ignore rng;
      let result = Search.exhaustive ~stages:3 ~processors:3 score in
      let best =
        List.fold_left
          (fun acc m -> Float.max acc (score m))
          neg_infinity
          (Mapping.enumerate ~stages:3 ~processors:3 ())
      in
      Float.abs (result.Search.score -. best) < 1e-9)

let test_search_hill_climb_local_optimum () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0; 10.0 |] () in
  let evaluator = Analytic.throughput spec in
  let start = Mapping.of_array ~processors:3 [| 0; 0; 0 |] in
  let result = Search.hill_climb ~start ~processors:3 evaluator in
  (* No neighbour may beat the returned mapping. *)
  List.iter
    (fun n ->
      if evaluator n > result.Search.score +. 1e-9 then Alcotest.fail "not a local optimum")
    (Mapping.neighbours result.Search.mapping ~processors:3);
  (* On this convex-ish landscape it should find the global optimum. *)
  let best = Search.exhaustive ~stages:3 ~processors:3 evaluator in
  check_close ~eps:1e-9 "hill climb matches exhaustive here" best.Search.score result.Search.score

let test_search_greedy_reasonable () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0; 10.0; 10.0 |] ()
  in
  let evaluator = Analytic.throughput spec in
  let greedy = Search.greedy ~stages:4 ~processors:4 evaluator in
  let best = Search.exhaustive ~stages:4 ~processors:4 evaluator in
  Alcotest.(check bool) "greedy within 60% of optimal" true
    (greedy.Search.score >= 0.4 *. best.Search.score)

let test_search_auto_switches () =
  let spec = synthetic_spec ~stage_work:(Array.make 8 1.0) ~node_rates:(Array.make 8 10.0) () in
  let evaluator = Analytic.throughput spec in
  let result = Search.auto ~exhaustive_limit:100 ~stages:8 ~processors:8 evaluator in
  (* 8^8 >> 100, so auto must have taken the greedy+hill path; its answer
     should still be a local optimum. *)
  List.iter
    (fun n ->
      if evaluator n > result.Search.score +. 1e-9 then Alcotest.fail "auto not locally optimal")
    (Mapping.neighbours result.Search.mapping ~processors:8)

let test_search_best_of () =
  let candidates =
    [ Mapping.of_array ~processors:2 [| 0; 0 |]; Mapping.of_array ~processors:2 [| 0; 1 |] ]
  in
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let result = Search.best_of candidates (Analytic.throughput spec) in
  Alcotest.(check (array int)) "spread wins" [| 0; 1 |] (Mapping.to_array result.Search.mapping);
  Alcotest.check_raises "empty candidates" (Invalid_argument "Search.best_of: no candidates")
    (fun () -> ignore (Search.best_of [] (Analytic.throughput spec)))


let test_search_hill_climb_max_steps () =
  (* max_steps 0 returns the start unchanged. *)
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0 |] () in
  let start = Mapping.of_array ~processors:2 [| 0; 0 |] in
  let result = Search.hill_climb ~max_steps:0 ~start ~processors:2 (Analytic.throughput spec) in
  Alcotest.(check (array int)) "no moves taken" [| 0; 0 |] (Mapping.to_array result.Search.mapping)

let test_predictor_fix_first_pins () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 1.0; 10.0; 10.0 |] () in
  let predictor = Predictor.make spec in
  let pinned = Predictor.choose ~fix_first_on:0 predictor in
  Alcotest.(check int) "stage 0 stays pinned despite the slow node" 0
    (Mapping.processor_of pinned.Search.mapping 0);
  let free = Predictor.choose predictor in
  Alcotest.(check bool) "unpinned beats pinned" true
    (free.Search.score >= pinned.Search.score)

(* ------------------------------------------------------------ Predictor *)

let test_predictor_kinds_agree_on_ranking () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 2.0 |] ()
  in
  let analytic = Predictor.make ~kind:Predictor.Analytic spec in
  let ctmc = Predictor.make ~kind:Predictor.Ctmc spec in
  let good = Mapping.of_array ~processors:2 [| 0; 0 |] in
  let bad = Mapping.of_array ~processors:2 [| 1; 1 |] in
  Alcotest.(check bool) "analytic prefers the fast node" true
    (Predictor.evaluate analytic good > Predictor.evaluate analytic bad);
  Alcotest.(check bool) "ctmc prefers the fast node" true
    (Predictor.evaluate ctmc good > Predictor.evaluate ctmc bad)

let test_predictor_rank_sorted () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0 |] ~node_rates:[| 10.0; 2.0 |] () in
  let predictor = Predictor.make spec in
  let ranked = Predictor.rank predictor (Mapping.enumerate ~stages:2 ~processors:2 ()) in
  let scores = List.map snd ranked in
  Alcotest.(check (list (float 1e-9))) "descending" (List.sort (fun a b -> compare b a) scores)
    scores

let test_predictor_choose_and_completion () =
  let spec = synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0 |] ~node_rates:[| 10.0; 10.0; 10.0 |] () in
  let predictor = Predictor.make spec in
  let result = Predictor.choose predictor in
  Alcotest.(check int) "one stage per processor is optimal" 3
    (List.length
       (List.sort_uniq compare (Array.to_list (Mapping.to_array result.Search.mapping))));
  let completion = Predictor.predicted_completion predictor result.Search.mapping ~items:50 in
  Alcotest.(check bool) "finite completion" true (Float.is_finite completion)

(* --------------------------------------- Mapping iterators & space sizing *)

let test_space_within_boundaries () =
  let some = Alcotest.(check (option int)) in
  some "3^3" (Some 27) (Mapping.space_within ~stages:3 ~processors:3 ~cap:27);
  some "3^3 over cap" None (Mapping.space_within ~stages:3 ~processors:3 ~cap:26);
  some "5^9 exact" (Some 1_953_125) (Mapping.space_size ~stages:9 ~processors:5);
  some "2^22 is exactly enumerable" (Some Mapping.max_enumeration)
    (Mapping.space_within ~stages:22 ~processors:2 ~cap:Mapping.max_enumeration);
  some "3^14 exceeds the cap" None
    (Mapping.space_within ~stages:14 ~processors:3 ~cap:Mapping.max_enumeration);
  some "stages 0" (Some 1) (Mapping.space_within ~stages:0 ~processors:7 ~cap:0);
  some "single processor never explodes" (Some 1)
    (Mapping.space_size ~stages:1000 ~processors:1);
  (* The overflow cases the float path silently misrounded. *)
  some "2^63 overflows" None (Mapping.space_size ~stages:63 ~processors:2);
  some "10^20 overflows" None (Mapping.space_size ~stages:20 ~processors:10);
  some "2^62 near max_int" None (Mapping.space_size ~stages:62 ~processors:2);
  some "2^61 fits" (Some (1 lsl 61)) (Mapping.space_size ~stages:61 ~processors:2)

let test_iter_enumerate_matches_enumerate () =
  let check_shape ?fix_first_on ~stages ~processors () =
    let listed =
      List.map Mapping.to_array (Mapping.enumerate ?fix_first_on ~stages ~processors ())
    in
    let iterated = ref [] in
    Mapping.iter_enumerate ?fix_first_on ~stages ~processors (fun m ->
        iterated := Mapping.to_array m :: !iterated);
    Alcotest.(check (list (array int)))
      (Printf.sprintf "Ns=%d Np=%d same order and content" stages processors)
      listed
      (List.rev !iterated)
  in
  check_shape ~stages:3 ~processors:3 ();
  check_shape ~stages:4 ~processors:2 ();
  check_shape ~fix_first_on:2 ~stages:4 ~processors:3 ();
  check_shape ~stages:1 ~processors:1 ();
  check_shape ~fix_first_on:0 ~stages:1 ~processors:4 ()

let test_iter_enumerate_cap_boundary () =
  (* Exactly 2^22 candidates is allowed; one multiplication more is not.
     Counting through the iterator keeps this memory-free. *)
  let count = ref 0 in
  Mapping.iter_enumerate ~stages:22 ~processors:2 (fun _ -> incr count);
  Alcotest.(check int) "2^22 visited" Mapping.max_enumeration !count;
  Alcotest.check_raises "3^14 too large"
    (Invalid_argument "Mapping.enumerate: assignment space too large") (fun () ->
      Mapping.iter_enumerate ~stages:14 ~processors:3 (fun _ -> ()))

let test_decode_code_roundtrip =
  qtest ~count:200 "decode/code_of round-trip in enumeration order"
    QCheck2.Gen.(triple (int_range 1 6) (int_range 1 4) (int_range 0 10_000))
    (fun (stages, processors, seed) ->
      let fix_first_on = if seed mod 3 = 0 then Some (seed mod processors) else None in
      let free = match fix_first_on with Some _ -> stages - 1 | None -> stages in
      let total = Option.get (Mapping.space_size ~stages:free ~processors) in
      let code = seed mod total in
      let m = Mapping.decode ?fix_first_on ~stages ~processors code in
      Mapping.code_of ?fix_first_on ~processors m = code)

let test_iter_gray_properties () =
  let check_shape ?fix_first_on ~stages ~processors () =
    let name = Printf.sprintf "Ns=%d Np=%d" stages processors in
    let free = match fix_first_on with Some _ -> stages - 1 | None -> stages in
    let total = Option.get (Mapping.space_size ~stages:free ~processors) in
    let seen = Array.make total 0 in
    let prev = ref [||] in
    let steps = ref 0 in
    Mapping.iter_gray ?fix_first_on ~stages ~processors
      ~init:(fun m ->
        let a = Mapping.to_array m in
        Alcotest.(check int) (name ^ ": init is code 0") 0
          (Mapping.code_of ?fix_first_on ~processors m);
        seen.(0) <- seen.(0) + 1;
        prev := a)
      ~step:(fun m ~stage ~code ->
        incr steps;
        let a = Mapping.to_array m in
        let changed = ref [] in
        Array.iteri (fun i p -> if p <> !prev.(i) then changed := i :: !changed) a;
        Alcotest.(check (list int)) (name ^ ": exactly one stage changed") [ stage ] !changed;
        Alcotest.(check int)
          (name ^ ": reported code matches the assignment")
          (Mapping.code_of ?fix_first_on ~processors m)
          code;
        seen.(code) <- seen.(code) + 1;
        prev := a)
      ();
    Alcotest.(check int) (name ^ ": full space walked") (total - 1) !steps;
    Array.iteri
      (fun code n ->
        Alcotest.(check int) (Printf.sprintf "%s: code %d visited once" name code) 1 n)
      seen
  in
  check_shape ~stages:4 ~processors:3 ();
  check_shape ~stages:5 ~processors:2 ();
  check_shape ~fix_first_on:1 ~stages:4 ~processors:3 ();
  check_shape ~stages:3 ~processors:1 ();
  check_shape ~stages:1 ~processors:4 ()

let test_iter_neighbours_matches_neighbours () =
  let m = Mapping.of_array ~processors:3 [| 0; 2; 1; 1 |] in
  let listed = List.map Mapping.to_array (Mapping.neighbours m ~processors:3) in
  let iterated = ref [] in
  Mapping.iter_neighbours m ~processors:3 (fun ~stage ~target n ->
      Alcotest.(check int) "callback target matches the scratch entry" target
        (Mapping.processor_of n stage);
      iterated := Mapping.to_array n :: !iterated);
  Alcotest.(check (list (array int))) "same order and content" listed (List.rev !iterated)

(* ------------------------------------------------- Incremental evaluator *)

(* Random specs exercising the corners the differential battery cares
   about: zero-work stages, [infinity] node rates, duplicated rates and
   uniform link matrices (so processor-symmetry classes are non-trivial),
   plus fully heterogeneous draws. *)
let gen_spec =
  QCheck2.Gen.(
    let* stages = int_range 1 5 in
    let* processors = int_range 1 4 in
    let* uniform = bool in
    let rate =
      if uniform then oneofl [ 5.0; 10.0; infinity ]
      else oneof [ float_range 1.0 20.0; oneofl [ 0.0; infinity ] ]
    in
    let work = oneof [ float_range 0.1 3.0; oneofl [ 0.0; 1.0 ] ] in
    let* stage_work = array_size (return stages) work in
    let* node_rates = array_size (return processors) rate in
    let* item_bytes = float_range 0.0 2e4 in
    let* output_bytes = array_size (return stages) (float_range 0.0 2e4) in
    let* base_latency = if uniform then return 0.01 else float_range 0.0 0.05 in
    let* base_bandwidth = if uniform then return 1e6 else float_range 1e5 1e7 in
    let* latency_cells =
      array_size (return (processors * processors)) (float_range 0.0 0.05)
    in
    let* bandwidth_cells =
      array_size (return (processors * processors)) (float_range 1e5 1e7)
    in
    let latency =
      Array.init processors (fun src ->
          Array.init processors (fun dst ->
              if uniform then base_latency else latency_cells.((src * processors) + dst)))
    in
    let bandwidth =
      Array.init processors (fun src ->
          Array.init processors (fun dst ->
              if uniform then base_bandwidth
              else bandwidth_cells.((src * processors) + dst)))
    in
    return
      {
        Costspec.stage_work;
        node_rates;
        item_bytes;
        output_bytes;
        latency;
        bandwidth;
        user_latency = Array.make processors (if uniform then 0.01 else base_latency);
        user_bandwidth = Array.make processors (if uniform then 1e6 else base_bandwidth);
      })

let bits = Int64.bits_of_float

let test_incr_matches_full_evaluator =
  qtest ~count:300 "Incr score == Analytic.throughput over random move sequences"
    QCheck2.Gen.(
      triple gen_spec (int_range 0 10_000) (list_size (int_range 0 30) (pair small_nat small_nat)))
    (fun (spec, seed, raw_moves) ->
      let stages = Costspec.stages spec and processors = Costspec.processors spec in
      let total = Option.get (Mapping.space_size ~stages ~processors) in
      let start = Mapping.decode ~stages ~processors (seed mod total) in
      let st = Analytic.Incr.create spec start in
      let agree () =
        bits (Analytic.Incr.score st)
        = bits (Analytic.throughput spec (Analytic.Incr.mapping st))
      in
      agree ()
      && List.for_all
           (fun (s, p) ->
             Analytic.Incr.move st ~stage:(s mod stages) (p mod processors);
             agree ())
           raw_moves)

let check_results_identical name (a : Search.result) (b : Search.result) =
  Alcotest.(check (array int))
    (name ^ ": same mapping")
    (Mapping.to_array a.Search.mapping)
    (Mapping.to_array b.Search.mapping);
  Alcotest.(check int64) (name ^ ": same score bits") (bits a.Search.score)
    (bits b.Search.score)

let test_exhaustive_backends_agree =
  qtest ~count:200 "all exhaustive backends return the reference result"
    QCheck2.Gen.(pair gen_spec (int_range 0 1000))
    (fun (spec, seed) ->
      let stages = Costspec.stages spec and processors = Costspec.processors spec in
      let fix_first_on =
        if seed mod 3 = 0 && stages > 1 then Some (seed mod processors) else None
      in
      let reference =
        Search.exhaustive_ref ?fix_first_on ~stages ~processors (Analytic.throughput spec)
      in
      let same (r : Search.result) =
        Mapping.equal r.Search.mapping reference.Search.mapping
        && bits r.Search.score = bits reference.Search.score
      in
      let full (r : Search.result) = same r && r.Search.evaluated = reference.Search.evaluated in
      full (Search.exhaustive ?fix_first_on ~stages ~processors (Analytic.throughput spec))
      && full (Search.exhaustive_spec ?fix_first_on ~prune:false ~canonical:false spec)
      && same (Search.exhaustive_spec ?fix_first_on ~prune:true ~canonical:false spec)
      && same (Search.exhaustive_spec ?fix_first_on ~prune:false ~canonical:true spec)
      && same (Search.exhaustive_spec ?fix_first_on spec)
      && full (Search.exhaustive_par ?fix_first_on ~chunks:1 spec)
      && full (Search.exhaustive_par ?fix_first_on ~chunks:5 spec))

let test_hill_climb_spec_matches_generic =
  qtest ~count:200 "hill_climb_spec replicates the generic climb exactly"
    QCheck2.Gen.(pair gen_spec (int_range 0 10_000))
    (fun (spec, seed) ->
      let stages = Costspec.stages spec and processors = Costspec.processors spec in
      let total = Option.get (Mapping.space_size ~stages ~processors) in
      let start = Mapping.decode ~stages ~processors (seed mod total) in
      let generic =
        Search.hill_climb ~start ~processors (Analytic.throughput spec)
      in
      let incr = Search.hill_climb_spec ~start spec in
      Mapping.equal generic.Search.mapping incr.Search.mapping
      && bits generic.Search.score = bits incr.Search.score
      && generic.Search.evaluated = incr.Search.evaluated)

let test_auto_spec_matches_auto =
  qtest ~count:100 "auto_spec agrees with the generic auto on both sides of the limit"
    QCheck2.Gen.(pair gen_spec (oneofl [ 2; 200_000 ]))
    (fun (spec, limit) ->
      let stages = Costspec.stages spec and processors = Costspec.processors spec in
      let generic =
        Search.auto ~exhaustive_limit:limit ~stages ~processors (Analytic.throughput spec)
      in
      let fast = Search.auto_spec ~exhaustive_limit:limit spec in
      Mapping.equal generic.Search.mapping fast.Search.mapping
      && bits generic.Search.score = bits fast.Search.score)

(* The uniform grid is maximally tie-heavy: every processor permutation of a
   mapping scores identically. The contract — lowest enumeration code wins —
   must hold on every backend, or serial and parallel searches diverge. *)
let test_exhaustive_tie_break_lowest_code () =
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 1.0; 1.0; 1.0 |]
      ~node_rates:[| 10.0; 10.0; 10.0 |] ~latency:0.01 ~bandwidth:1e7 ()
  in
  let candidates = Mapping.enumerate ~stages:4 ~processors:3 () in
  let scores = List.map (Analytic.throughput spec) candidates in
  let best = List.fold_left Float.max neg_infinity scores in
  let ties = List.length (List.filter (fun s -> s = best) scores) in
  Alcotest.(check bool) "the spec is genuinely tie-heavy" true (ties > 1);
  let expected_code =
    let rec first i = function
      | [] -> assert false
      | s :: rest -> if s = best then i else first (i + 1) rest
    in
    first 0 scores
  in
  let check_backend name (r : Search.result) =
    Alcotest.(check int64) (name ^ ": argmax score") (bits best) (bits r.Search.score);
    Alcotest.(check int)
      (name ^ ": lowest code among ties")
      expected_code
      (Mapping.code_of ~processors:3 r.Search.mapping)
  in
  check_backend "reference"
    (Search.exhaustive_ref ~stages:4 ~processors:3 (Analytic.throughput spec));
  check_backend "generic iterator"
    (Search.exhaustive ~stages:4 ~processors:3 (Analytic.throughput spec));
  check_backend "gray walk" (Search.exhaustive_spec ~prune:false ~canonical:false spec);
  check_backend "pruned" (Search.exhaustive_spec ~canonical:false spec);
  check_backend "canonicalized" (Search.exhaustive_spec spec);
  check_backend "parallel 7 chunks" (Search.exhaustive_par ~chunks:7 spec)

let test_canonicalization_prunes_symmetric_grid () =
  (* 4 interchangeable processors: only one representative per symmetry
     class may be scored — far fewer than 4^5 leaves. *)
  let spec =
    synthetic_spec ~stage_work:[| 1.0; 0.5; 2.0; 1.0; 0.7 |]
      ~node_rates:[| 10.0; 10.0; 10.0; 10.0 |] ()
  in
  let plain = Search.exhaustive_spec ~prune:false ~canonical:false spec in
  let canon = Search.exhaustive_spec ~prune:false ~canonical:true spec in
  check_results_identical "canonical vs plain" canon plain;
  Alcotest.(check bool)
    (Printf.sprintf "scored %d << %d leaves" canon.Search.evaluated plain.Search.evaluated)
    true
    (canon.Search.evaluated * 4 < plain.Search.evaluated)

let test_search_parallel_pool_byte_identical () =
  (* The real domain pool against the sequential backend: byte-identical
     results regardless of worker count or chunking. *)
  let rng = Rng.create 23 in
  let stages = 7 and processors = 4 in
  let spec =
    synthetic_spec
      ~stage_work:(Array.init stages (fun _ -> Rng.range rng 0.5 2.0))
      ~node_rates:(Array.init processors (fun _ -> Rng.range rng 5.0 15.0))
      ()
  in
  let seq = Search.exhaustive_par ~chunks:8 spec in
  let pool = Aspipe_runner.Pool.create ~workers:4 () in
  let par = { Search.pmap = (fun f xs -> Aspipe_runner.Pool.map_list pool f xs) } in
  let jobs4 = Search.exhaustive_par ~par ~chunks:8 spec in
  Aspipe_runner.Pool.shutdown pool;
  check_results_identical "jobs 1 vs jobs 4" jobs4 seq;
  Alcotest.(check int) "every candidate accounted" (4 * 4 * 4 * 4 * 4 * 4 * 4)
    jobs4.Search.evaluated;
  check_results_identical "matches the serial spec walk" jobs4 (Search.exhaustive_spec spec)

let test_default_exhaustive_limit_raised () =
  Alcotest.(check bool)
    (Printf.sprintf "default limit %d >= 10x the historical 20k"
       Search.default_exhaustive_limit)
    true
    (Search.default_exhaustive_limit >= 200_000)

let () =
  Alcotest.run "aspipe_model"
    [
      ( "mapping",
        [
          Alcotest.test_case "of_array" `Quick test_mapping_of_array;
          Alcotest.test_case "round robin" `Quick test_mapping_round_robin;
          Alcotest.test_case "blocks" `Quick test_mapping_blocks;
          Alcotest.test_case "enumerate" `Quick test_mapping_enumerate;
          Alcotest.test_case "neighbours" `Quick test_mapping_neighbours;
          Alcotest.test_case "colocation" `Quick test_mapping_colocation;
          test_mapping_random_in_range;
        ] );
      ( "costspec",
        [
          Alcotest.test_case "dimensions" `Quick test_costspec_dimensions;
          Alcotest.test_case "service rate sharing" `Quick test_costspec_service_rate_sharing;
          Alcotest.test_case "move rates" `Quick test_costspec_move_rates;
          Alcotest.test_case "with_stage_work" `Quick test_costspec_with_stage_work;
          Alcotest.test_case "link quality override" `Quick test_costspec_link_quality_override;
        ] );
      ( "analytic",
        [
          Alcotest.test_case "processor bottleneck" `Quick test_analytic_processor_bottleneck;
          Alcotest.test_case "cycle bottleneck" `Quick test_analytic_cycle_bottleneck;
          Alcotest.test_case "colocation halves" `Quick test_analytic_colocation_halves;
          Alcotest.test_case "fill and completion" `Quick test_analytic_fill_and_completion;
          test_analytic_monotone_in_speed;
        ] );
      ( "ctmc",
        [
          Alcotest.test_case "state count" `Quick test_ctmc_state_count;
          Alcotest.test_case "build validation" `Quick test_ctmc_build_validation;
          Alcotest.test_case "steady state properties" `Quick test_ctmc_steady_state_properties;
          Alcotest.test_case "PEPA row: (1,2,3) t=0.1" `Quick test_ctmc_reproduces_pepa_row1;
          Alcotest.test_case "PEPA row: (1,2,3) t=0.2" `Quick test_ctmc_reproduces_pepa_row2;
          Alcotest.test_case "PEPA row: (1,1,1) t=0.1" `Quick test_ctmc_reproduces_pepa_all_on_one;
          Alcotest.test_case "fast network limit" `Quick test_ctmc_matches_analytic_on_fast_network;
          Alcotest.test_case "of_costspec consistency" `Quick test_ctmc_of_costspec_consistency;
        ] );
      ( "farm_model",
        [
          Alcotest.test_case "rates" `Quick test_farm_model_rates;
          Alcotest.test_case "best set" `Quick test_farm_model_best_set;
          test_farm_model_best_set_exhaustive;
        ] );
      ( "repl_model",
        [
          Alcotest.test_case "capacity" `Quick test_repl_model_capacity;
          Alcotest.test_case "shared node splits" `Quick test_repl_model_shared_node_splits;
          Alcotest.test_case "best replication" `Quick test_repl_model_best_replication;
          Alcotest.test_case "validation" `Quick test_repl_model_validation;
          test_repl_model_monotone_in_replicas;
        ] );
      ( "pepa_export",
        [
          Alcotest.test_case "structure" `Quick test_pepa_export_structure;
          Alcotest.test_case "rates match" `Quick test_pepa_export_rates_match_ctmc_inputs;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "agree" `Quick test_ctmc_solvers_agree;
          Alcotest.test_case "stiff chains" `Quick test_ctmc_gauss_seidel_handles_stiff;
          test_cross_model_bounds;
        ] );
      ( "search",
        [
          Alcotest.test_case "exhaustive argmax" `Quick test_search_exhaustive_finds_max;
          test_search_exhaustive_vs_random_evaluator;
          Alcotest.test_case "hill climb local optimum" `Quick test_search_hill_climb_local_optimum;
          Alcotest.test_case "greedy reasonable" `Quick test_search_greedy_reasonable;
          Alcotest.test_case "auto switches" `Quick test_search_auto_switches;
          Alcotest.test_case "best_of" `Quick test_search_best_of;
          Alcotest.test_case "hill climb max steps" `Quick test_search_hill_climb_max_steps;
          Alcotest.test_case "fix_first pins" `Quick test_predictor_fix_first_pins;
        ] );
      ( "mapping iterators",
        [
          Alcotest.test_case "space sizing boundaries" `Quick test_space_within_boundaries;
          Alcotest.test_case "iter_enumerate = enumerate" `Quick
            test_iter_enumerate_matches_enumerate;
          Alcotest.test_case "enumeration cap boundary" `Quick test_iter_enumerate_cap_boundary;
          test_decode_code_roundtrip;
          Alcotest.test_case "gray walk properties" `Quick test_iter_gray_properties;
          Alcotest.test_case "iter_neighbours = neighbours" `Quick
            test_iter_neighbours_matches_neighbours;
        ] );
      ( "incremental search",
        [
          test_incr_matches_full_evaluator;
          test_exhaustive_backends_agree;
          test_hill_climb_spec_matches_generic;
          test_auto_spec_matches_auto;
          Alcotest.test_case "tie-break: lowest code wins" `Quick
            test_exhaustive_tie_break_lowest_code;
          Alcotest.test_case "symmetry canonicalization prunes" `Quick
            test_canonicalization_prunes_symmetric_grid;
          Alcotest.test_case "parallel pool byte-identical" `Quick
            test_search_parallel_pool_byte_identical;
          Alcotest.test_case "exhaustive limit raised 10x" `Quick
            test_default_exhaustive_limit_raised;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "kinds agree" `Quick test_predictor_kinds_agree_on_ranking;
          Alcotest.test_case "rank sorted" `Quick test_predictor_rank_sorted;
          Alcotest.test_case "choose & completion" `Quick test_predictor_choose_and_completion;
        ] );
    ]
