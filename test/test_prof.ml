(* Tests for Aspipe_prof: the zero-cost-when-off contract, span ordering
   and nesting recovery, exclusive-time accounting, the Out capture probe,
   and both exporters (contention report, Perfetto JSON).

   Prof state is global to the process; every test that enables the
   profiler disables it in a [Fun.protect] finally so the suite's order
   does not matter. *)

module Prof = Aspipe_prof.Prof
module Report = Aspipe_prof.Report
module Export = Aspipe_prof.Export
module Campaign = Aspipe_runner.Campaign
module Json = Aspipe_obs.Json
module Out = Aspipe_util.Out

let with_profiler f =
  Prof.enable ();
  Fun.protect ~finally:Prof.disable f

let span ?(kind = Prof.Task) ?(label = "") ?(a = 0) ?(b = 0) ?(words = 0.0) t0 t1 =
  { Prof.kind; label; t0; t1; a; b; words }

let close_to = Alcotest.float 1e-9

(* ------------------------------------------------------- off is free *)

let test_off_allocates_nothing () =
  Prof.disable ();
  let before = Prof.buffers_allocated () in
  Prof.record Prof.Task ~label:"ignored" ~t0:0.0 ~t1:1.0 ~a:0 ~b:0 ~words:0.0;
  Prof.record_gc ~label:"ignored";
  Prof.set_domain ~order:7 "ignored";
  Alcotest.(check int) "no buffer created by a disabled record" before
    (Prof.buffers_allocated ())

let test_off_campaign_allocates_nothing () =
  Prof.disable ();
  let before = Prof.buffers_allocated () in
  ignore (Campaign.run ~jobs:4 ~oversubscribe:true ~only:[ "E1" ] ~quick:true ());
  Alcotest.(check int) "a profiler-off campaign creates zero span buffers" before
    (Prof.buffers_allocated ())

(* The observability guarantee: turning the profiler on cannot change the
   campaign's bytes, jobs 1 or jobs 4. *)
let test_profiled_output_byte_identical () =
  Prof.disable ();
  let plain = Campaign.run ~jobs:1 ~only:[ "E1"; "E18" ] ~quick:true () in
  let profiled =
    with_profiler (fun () ->
        Campaign.run ~jobs:4 ~oversubscribe:true ~only:[ "E1"; "E18" ] ~quick:true ())
  in
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        (Printf.sprintf "%s byte-identical with the profiler on" a.Campaign.id)
        a.Campaign.output b.Campaign.output)
    plain.Campaign.outcomes profiled.Campaign.outcomes

(* --------------------------------------------- recording and ordering *)

let test_enable_resets_previous_spans () =
  with_profiler (fun () ->
      Prof.record Prof.Task ~label:"old" ~t0:1.0 ~t1:2.0 ~a:0 ~b:0 ~words:0.0);
  with_profiler (fun () ->
      let spans = List.concat_map (fun tl -> tl.Prof.spans) (Prof.collect ()).Prof.timelines in
      Alcotest.(check int) "enable drops spans from the previous session" 0
        (List.length spans))

let test_span_sorting_restores_nesting () =
  let p =
    with_profiler (fun () ->
        Prof.set_domain ~order:0 "main";
        let base = Prof.now () in
        (* Appended in END order, as the instrumentation does: the child
           task finishes (and records) before its enclosing parent. *)
        Prof.record Prof.Task ~label:"child" ~t0:(base +. 0.010) ~t1:(base +. 0.020)
          ~a:0 ~b:0 ~words:0.0;
        Prof.record Prof.Task ~label:"parent" ~t0:base ~t1:(base +. 0.050) ~a:0 ~b:0
          ~words:0.0;
        (* Same t0 as parent, shorter: ties break longest-first. *)
        Prof.record Prof.Task ~label:"twin" ~t0:base ~t1:(base +. 0.030) ~a:0 ~b:0
          ~words:0.0;
        Prof.collect ())
  in
  match p.Prof.timelines with
  | [ tl ] ->
      Alcotest.(check string) "timeline named" "main" tl.Prof.domain;
      Alcotest.(check int) "display order" 0 tl.Prof.order;
      Alcotest.(check (list string)) "parents before children, longest first on ties"
        [ "parent"; "twin"; "child" ]
        (List.map (fun s -> s.Prof.label) tl.Prof.spans);
      (match tl.Prof.spans with
      | first :: _ -> Alcotest.check close_to "rebased to origin" 0.0 first.Prof.t0
      | [] -> Alcotest.fail "no spans collected")
  | other -> Alcotest.failf "expected one timeline, got %d" (List.length other)

let test_task_exclusives () =
  (* Hand-built, already-sorted timeline:
       parent [0,10] > child [2,5] > grandchild [3,4]; await [6,8] under
       parent. Direct children only: the grandchild is charged to the
       child, never double-charged to the parent. *)
  let tl =
    {
      Prof.order = 0;
      domain = "main";
      spans =
        [
          span ~label:"parent" 0.0 10.0;
          span ~label:"child" 2.0 5.0;
          span ~label:"grandchild" 3.0 4.0;
          span ~kind:Prof.Await_wait 6.0 8.0;
        ];
    }
  in
  let excl = List.map (fun (s, e) -> (s.Prof.label, e)) (Report.task_exclusives tl) in
  let get label = List.assoc label excl in
  Alcotest.(check int) "one entry per task" 3 (List.length excl);
  Alcotest.check close_to "parent = 10 - child 3 - await 2" 5.0 (get "parent");
  Alcotest.check close_to "child = 3 - grandchild 1" 2.0 (get "child");
  Alcotest.check close_to "grandchild keeps its full duration" 1.0 (get "grandchild")

(* ----------------------------------------------------- the Out probe *)

let test_out_probe_records_flushes () =
  let p =
    with_profiler (fun () ->
        let bytes = Out.capture (fun () -> Out.print_string "hello out") in
        Alcotest.(check string) "capture still returns the bytes" "hello out" bytes;
        Prof.collect ())
  in
  let flushes =
    List.concat_map
      (fun tl ->
        List.filter (fun s -> s.Prof.kind = Prof.Out_flush) tl.Prof.spans)
      p.Prof.timelines
  in
  Alcotest.(check bool) "at least one flush recorded" true (flushes <> []);
  Alcotest.(check int) "flush carries the byte count" 9
    (List.fold_left (fun acc s -> acc + s.Prof.a) 0 flushes)

let test_probe_cleared_on_disable () =
  with_profiler (fun () -> ());
  let before = Prof.buffers_allocated () in
  ignore (Out.capture (fun () -> Out.print_string "quiet"));
  Alcotest.(check int) "no recording after disable" before (Prof.buffers_allocated ())

(* ---------------------------------------- campaign profile, --jobs 4 *)

let test_campaign_profile_per_domain () =
  let p, report =
    with_profiler (fun () ->
        let report =
          Campaign.run ~jobs:4 ~oversubscribe:true ~only:[ "E1"; "E18"; "E20" ]
            ~quick:true ()
        in
        (Prof.collect (), report))
  in
  Alcotest.(check int) "campaign used 4 workers" 4 report.Campaign.workers;
  Alcotest.(check (list string)) "one timeline per domain, display order"
    [ "main"; "worker 0"; "worker 1"; "worker 2"; "worker 3" ]
    (List.map (fun tl -> tl.Prof.domain) p.Prof.timelines);
  List.iter
    (fun tl ->
      List.iter
        (fun s ->
          if not (s.Prof.t0 >= 0.0 && s.Prof.t1 >= s.Prof.t0) then
            Alcotest.failf "%s: span %s not well-formed (t0 %.9f t1 %.9f)" tl.Prof.domain
              (Prof.kind_name s.Prof.kind) s.Prof.t0 s.Prof.t1)
        tl.Prof.spans)
    p.Prof.timelines;
  let main_tasks =
    match p.Prof.timelines with
    | main :: _ -> List.filter (fun s -> s.Prof.kind = Prof.Task) main.Prof.spans
    | [] -> []
  in
  Alcotest.(check bool) "experiment task spans carry registry ids" true
    (List.exists (fun s -> s.Prof.label = "E1") main_tasks
    || List.exists
         (fun tl -> List.exists (fun s -> s.Prof.label = "E1") tl.Prof.spans)
         p.Prof.timelines)

(* ------------------------------------------------------------ exports *)

let synthetic_profile () =
  {
    Prof.origin = 123.0;
    timelines =
      [
        {
          Prof.order = 0;
          domain = "main";
          spans =
            [
              span ~label:"E1" ~a:2 ~words:1.5e6 0.0 0.4;
              span ~kind:Prof.Gc_sample ~a:10 ~b:1 ~words:2e6 0.1 0.1;
              span ~kind:Prof.Out_flush ~a:512 0.35 0.35;
            ];
        };
        {
          Prof.order = 1;
          domain = "worker 0";
          spans =
            [
              span ~kind:Prof.Steal ~a:1 ~b:3 0.05 0.05;
              span ~label:"E2" 0.05 0.2;
              span ~kind:Prof.Worker_idle 0.2 0.4;
              span ~kind:Prof.Queue_sample ~a:2 ~b:5 0.1 0.1;
            ];
        };
      ];
  }

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_report_render () =
  let text = Report.render (synthetic_profile ()) in
  List.iter
    (fun needle ->
      if not (string_contains text needle) then
        Alcotest.failf "report missing %S:\n%s" needle text)
    [
      "Wall-clock contention report";
      "main";
      "worker 0";
      "totals:";
      "top 2 tasks by exclusive seconds:";
      "E1";
    ];
  Alcotest.(check string) "deterministic" text (Report.render (synthetic_profile ()))

let test_perfetto_export_round_trips () =
  let text = Export.to_string (synthetic_profile ()) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "export is not valid JSON (%s):\n%s" e text
  | Ok doc -> (
      (match Json.member "displayTimeUnit" doc with
      | Some (Json.String "ms") -> ()
      | _ -> Alcotest.fail "displayTimeUnit missing");
      match Json.member "traceEvents" doc with
      | Some (Json.List events) ->
          let phases =
            List.filter_map
              (fun e ->
                match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
              events
          in
          let count p = List.length (List.filter (( = ) p) phases) in
          Alcotest.(check int) "process + 2x2 thread metadata" 6 (count "M");
          Alcotest.(check int) "E1/E2 tasks + idle + out flush as slices" 4 (count "X");
          Alcotest.(check int) "steal instant" 1 (count "i");
          Alcotest.(check int) "gc + queue counter samples" 2 (count "C");
          List.iter
            (fun e ->
              match Json.member "pid" e with
              | Some (Json.Int pid) ->
                  Alcotest.(check int) "every event on the runner process"
                    Export.runner_pid pid
              | _ -> Alcotest.fail "event without pid")
            events
      | _ -> Alcotest.fail "traceEvents missing")

let test_export_write () =
  let path = Filename.temp_file "aspipe-prof" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Export.write (synthetic_profile ()) ~path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      match Json.of_string body with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "written file is not valid JSON: %s" e)

let () =
  Alcotest.run "aspipe_prof"
    [
      ( "off",
        [
          Alcotest.test_case "record allocates nothing" `Quick test_off_allocates_nothing;
          Alcotest.test_case "campaign allocates nothing" `Slow
            test_off_campaign_allocates_nothing;
          Alcotest.test_case "output byte-identical when on" `Slow
            test_profiled_output_byte_identical;
        ] );
      ( "recording",
        [
          Alcotest.test_case "enable resets spans" `Quick test_enable_resets_previous_spans;
          Alcotest.test_case "sorting restores nesting" `Quick
            test_span_sorting_restores_nesting;
          Alcotest.test_case "task exclusives" `Quick test_task_exclusives;
          Alcotest.test_case "out probe" `Quick test_out_probe_records_flushes;
          Alcotest.test_case "probe cleared on disable" `Quick test_probe_cleared_on_disable;
        ] );
      ( "campaign",
        [ Alcotest.test_case "per-domain timelines, jobs 4" `Slow test_campaign_profile_per_domain ] );
      ( "export",
        [
          Alcotest.test_case "contention report" `Quick test_report_render;
          Alcotest.test_case "perfetto round-trip" `Quick test_perfetto_export_round_trips;
          Alcotest.test_case "write" `Quick test_export_write;
        ] );
    ]
