(* Tests for the grid substrate: nodes, links, topologies, load generators,
   the monitoring subsystem and execution traces. *)

module Engine = Aspipe_des.Engine
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link
module Topology = Aspipe_grid.Topology
module Loadgen = Aspipe_grid.Loadgen
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Rng = Aspipe_util.Rng

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

(* ----------------------------------------------------------------- Node *)

let test_node_rates () =
  let engine = Engine.create () in
  let node = Node.create engine ~id:0 ~speed:8.0 () in
  check_float "dedicated rate" 8.0 (Node.effective_rate node);
  Node.set_availability node 0.5;
  check_float "half availability halves the rate" 4.0 (Node.effective_rate node);
  Node.set_availability node 2.0;
  check_float "availability clamped above" 8.0 (Node.effective_rate node);
  Node.set_availability node (-1.0);
  check_float "availability clamped below" 0.0 (Node.effective_rate node)

let test_node_invalid_speed () =
  let engine = Engine.create () in
  Alcotest.check_raises "non-positive speed" (Invalid_argument "Node.create: speed must be positive")
    (fun () -> ignore (Node.create engine ~id:0 ~speed:0.0 ()))

let test_node_history () =
  let engine = Engine.create () in
  let node = Node.create engine ~id:1 ~speed:10.0 () in
  ignore (Engine.schedule engine ~delay:5.0 (fun () -> Node.set_availability node 0.3));
  Engine.run engine;
  let history = Node.availability_history node in
  check_float "before" 1.0 (Aspipe_util.Timeseries.value_at history 2.0);
  check_float "after" 0.3 (Aspipe_util.Timeseries.value_at history 6.0)

(* ----------------------------------------------------------------- Link *)

let test_link_transfer_time () =
  let engine = Engine.create () in
  let link = Link.create engine ~latency:0.1 ~bandwidth:100.0 () in
  check_float "latency + bytes/bandwidth" 0.6 (Link.transfer_time link ~bytes:50.0)

let test_link_delivery () =
  let engine = Engine.create () in
  let link = Link.create engine ~latency:0.1 ~bandwidth:100.0 () in
  let delivered = ref nan in
  Link.transfer link ~bytes:50.0 (fun () -> delivered := Engine.now engine);
  Engine.run engine;
  check_float "delivered at transfer_time" 0.6 !delivered;
  Alcotest.(check int) "transfer counted" 1 (Link.transfers_completed link)

let test_link_uncontended_overlap () =
  let engine = Engine.create () in
  let link = Link.create engine ~latency:0.5 ~bandwidth:100.0 () in
  let times = ref [] in
  Link.transfer link ~bytes:50.0 (fun () -> times := Engine.now engine :: !times);
  Link.transfer link ~bytes:50.0 (fun () -> times := Engine.now engine :: !times);
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "parallel transfers overlap" [ 1.0; 1.0 ] !times

let test_link_contended_serializes () =
  let engine = Engine.create () in
  let link = Link.create engine ~contended:true ~latency:0.1 ~bandwidth:100.0 () in
  let times = ref [] in
  Link.transfer link ~bytes:100.0 (fun () -> times := Engine.now engine :: !times);
  Link.transfer link ~bytes:100.0 (fun () -> times := Engine.now engine :: !times);
  Engine.run engine;
  (* First: 1 s on the wire + 0.1 latency; second queues behind the first's
     bandwidth slot: 2 s + 0.1. *)
  Alcotest.(check (list (float 1e-9))) "bandwidth serializes" [ 2.1; 1.1 ] !times

let test_link_invalid () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative latency" (Invalid_argument "Link.create: negative latency")
    (fun () -> ignore (Link.create engine ~latency:(-0.1) ~bandwidth:1.0 ()));
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Link.create: bandwidth must be positive") (fun () ->
      ignore (Link.create engine ~latency:0.1 ~bandwidth:0.0 ()));
  let link = Link.create engine ~latency:0.0 ~bandwidth:1.0 () in
  Alcotest.check_raises "negative transfer" (Invalid_argument "Link.transfer: negative size")
    (fun () -> Link.transfer link ~bytes:(-1.0) (fun () -> ()))

(* ------------------------------------------------------------- Topology *)

let test_topology_uniform () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:4 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Alcotest.(check int) "size" 4 (Topology.size topo);
  check_float "node speed" 10.0 (Node.base_speed (Topology.node topo 2));
  check_float "remote latency" 0.01 (Link.latency (Topology.link topo ~src:0 ~dst:1));
  Alcotest.(check bool) "local link is fast" true
    (Link.latency (Topology.link topo ~src:2 ~dst:2) < 0.001);
  Alcotest.(check int) "single site" 0 (Topology.site_of topo 3)

let test_topology_heterogeneous () =
  let engine = Engine.create () in
  let topo = Topology.heterogeneous engine ~speeds:[| 1.0; 2.0; 3.0 |] ~latency:0.01 ~bandwidth:1e6 () in
  Alcotest.(check (list (float 0.0))) "per-node speeds" [ 1.0; 2.0; 3.0 ]
    (Array.to_list (Array.map Node.base_speed (Topology.nodes topo)))

let test_topology_two_site () =
  let engine = Engine.create () in
  let topo =
    Topology.two_site engine ~site_a:[| 10.0; 10.0 |] ~site_b:[| 20.0 |] ~intra_latency:0.001
      ~intra_bandwidth:1e8 ~inter_latency:0.2 ~inter_bandwidth:1e6 ()
  in
  Alcotest.(check int) "three nodes" 3 (Topology.size topo);
  Alcotest.(check int) "site of local node" 0 (Topology.site_of topo 0);
  Alcotest.(check int) "site of remote node" 1 (Topology.site_of topo 2);
  check_float "intra latency" 0.001 (Link.latency (Topology.link topo ~src:0 ~dst:1));
  check_float "inter latency" 0.2 (Link.latency (Topology.link topo ~src:0 ~dst:2));
  check_float "user link to remote site is wide-area" 0.2 (Link.latency (Topology.user_link topo 2));
  check_float "user link to home site is local" 0.001 (Link.latency (Topology.user_link topo 0))

let test_topology_bounds () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:1.0 ~latency:0.01 ~bandwidth:1e6 () in
  Alcotest.check_raises "node index" (Invalid_argument "Topology.node: index out of range")
    (fun () -> ignore (Topology.node topo 2));
  Alcotest.check_raises "link index" (Invalid_argument "Topology.link: index out of range")
    (fun () -> ignore (Topology.link topo ~src:0 ~dst:5))

(* -------------------------------------------------------------- Loadgen *)

let run_profile ?rng ~horizon profile =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:1 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Loadgen.apply_until ?rng ~horizon topo 0 profile;
  Engine.run ~until:horizon engine;
  (engine, Topology.node topo 0)

let test_loadgen_constant () =
  let _, node = run_profile ~horizon:10.0 (Loadgen.Constant 0.4) in
  check_float "constant applied" 0.4 (Node.availability node)

let test_loadgen_step () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:1 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Loadgen.apply topo 0 (Loadgen.Step { at = 5.0; level = 0.2 });
  Engine.run ~until:4.0 engine;
  check_float "before the step" 1.0 (Node.availability (Topology.node topo 0));
  Engine.run ~until:6.0 engine;
  check_float "after the step" 0.2 (Node.availability (Topology.node topo 0))

let test_loadgen_steps_schedule () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:1 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Loadgen.apply topo 0 (Loadgen.Steps [ (1.0, 0.5); (2.0, 0.9) ]);
  Engine.run ~until:1.5 engine;
  check_float "first step" 0.5 (Node.availability (Topology.node topo 0));
  Engine.run ~until:3.0 engine;
  check_float "second step" 0.9 (Node.availability (Topology.node topo 0))

let test_loadgen_sine_bounded () =
  let _, node =
    run_profile ~horizon:50.0
      (Loadgen.Sine { period = 10.0; base = 0.6; amplitude = 0.3; sample_every = 0.5 })
  in
  let history = Node.availability_history node in
  List.iter
    (fun (_, v) ->
      if v < 0.0 || v > 1.0 then Alcotest.fail "sine availability out of clamp range")
    (Aspipe_util.Timeseries.points history);
  (* The signal must actually oscillate. *)
  let values = List.map snd (Aspipe_util.Timeseries.points history) in
  let lo = List.fold_left Float.min 1.0 values and hi = List.fold_left Float.max 0.0 values in
  Alcotest.(check bool) "oscillates" true (hi -. lo > 0.3)

let test_loadgen_random_walk_bounds () =
  let rng = Rng.create 4 in
  let _, node =
    run_profile ~rng ~horizon:200.0
      (Loadgen.Random_walk { every = 1.0; sigma = 0.3; lo = 0.2; hi = 0.9 })
  in
  List.iter
    (fun (t, v) ->
      if t > 0.0 && (v < 0.2 -. 1e-9 || v > 0.9 +. 1e-9) then
        Alcotest.fail (Printf.sprintf "walk escaped bounds: %f at %f" v t))
    (Aspipe_util.Timeseries.points (Node.availability_history node))

let test_loadgen_markov_levels () =
  let rng = Rng.create 6 in
  let _, node =
    run_profile ~rng ~horizon:500.0
      (Loadgen.Markov_on_off { to_busy_rate = 0.2; to_free_rate = 0.2; busy_level = 0.3 })
  in
  let values = List.map snd (Aspipe_util.Timeseries.points (Node.availability_history node)) in
  List.iter
    (fun v -> if v <> 1.0 && v <> 0.3 then Alcotest.fail "markov level not in {1.0, 0.3}")
    values;
  Alcotest.(check bool) "visits both states" true
    (List.mem 0.3 values && List.mem 1.0 values)

let test_loadgen_needs_rng () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:1 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Alcotest.check_raises "stochastic profile without rng"
    (Invalid_argument "Loadgen: this profile is stochastic and needs ~rng") (fun () ->
      Loadgen.apply topo 0 (Loadgen.Random_walk { every = 1.0; sigma = 0.1; lo = 0.0; hi = 1.0 }))

let test_loadgen_playback () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:1 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Loadgen.apply topo 0 (Loadgen.Playback [ (0.0, 0.8); (10.0, 0.6) ]);
  Engine.run ~until:11.0 engine;
  check_float "trace replayed" 0.6 (Node.availability (Topology.node topo 0))


let test_link_quality_scales_costs () =
  let engine = Engine.create () in
  let link = Link.create engine ~latency:0.1 ~bandwidth:100.0 () in
  check_float "nominal quality" 1.0 (Link.quality link);
  Link.set_quality link 0.5;
  check_float "effective latency doubles" 0.2 (Link.effective_latency link);
  check_float "effective bandwidth halves" 50.0 (Link.effective_bandwidth link);
  check_float "transfer time at quality 0.5" 1.2 (Link.transfer_time link ~bytes:50.0);
  Link.set_quality link 0.0;
  check_float "quality clamped at 0.01" 0.01 (Link.quality link);
  Link.set_quality link 5.0;
  check_float "quality clamped at 1" 1.0 (Link.quality link)

let test_link_quality_history () =
  let engine = Engine.create () in
  let link = Link.create engine ~latency:0.1 ~bandwidth:100.0 () in
  ignore (Engine.schedule engine ~delay:3.0 (fun () -> Link.set_quality link 0.25));
  Engine.run engine;
  check_float "history before" 1.0 (Aspipe_util.Timeseries.value_at (Link.quality_history link) 1.0);
  check_float "history after" 0.25 (Aspipe_util.Timeseries.value_at (Link.quality_history link) 4.0)

let test_link_contended_quality_retimes () =
  (* A transfer in flight on a contended link slows down when quality drops. *)
  let engine = Engine.create () in
  let link = Link.create engine ~contended:true ~latency:0.0 ~bandwidth:100.0 () in
  let finish = ref nan in
  Link.transfer link ~bytes:100.0 (fun () -> finish := Engine.now engine);
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Link.set_quality link 0.5));
  Engine.run engine;
  (* 50 bytes by t=0.5; remaining 50 at 50 B/s -> one more second. *)
  check_close ~eps:1e-9 "wire retimed" 1.5 !finish

(* --------------------------------------------------------------- Netgen *)

module Netgen = Aspipe_grid.Netgen

let test_netgen_pair_step () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Netgen.apply_pair ~horizon:100.0 topo 0 1 (Loadgen.Step { at = 5.0; level = 0.2 });
  Engine.run ~until:6.0 engine;
  check_float "forward degraded" 0.2 (Link.quality (Topology.link topo ~src:0 ~dst:1));
  check_float "backward degraded" 0.2 (Link.quality (Topology.link topo ~src:1 ~dst:0));
  check_float "other pairs untouched" 1.0 (Link.quality (Topology.link topo ~src:0 ~dst:2))

let test_netgen_user_link () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Netgen.degrade_user_link ~horizon:100.0 topo 1 (Loadgen.Constant 0.3);
  Engine.run ~until:1.0 engine;
  check_float "user link degraded" 0.3 (Link.quality (Topology.user_link topo 1));
  check_float "other user link untouched" 1.0 (Link.quality (Topology.user_link topo 0))

let test_netgen_needs_rng () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  Alcotest.check_raises "stochastic profile without rng"
    (Invalid_argument "Netgen: this profile is stochastic and needs ~rng") (fun () ->
      Netgen.apply_pair ~horizon:10.0 topo 0 1
        (Loadgen.Random_walk { every = 1.0; sigma = 0.1; lo = 0.1; hi = 1.0 }))

let test_monitor_link_forecast () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n:2 ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  let monitor =
    Monitor.create ~sensor:Monitor.perfect_sensor ~rng:(Rng.create 2) ~every:1.0 ~horizon:60.0
      topo
  in
  Link.set_quality (Topology.link topo ~src:0 ~dst:1) 0.4;
  Link.set_quality (Topology.user_link topo 1) 0.6;
  Engine.run ~until:40.0 engine;
  check_close ~eps:0.02 "link forecast tracks truth" 0.4
    (Monitor.link_forecast monitor ~src:0 ~dst:1);
  check_close ~eps:0.02 "user link forecast tracks truth" 0.6
    (Monitor.user_link_forecast monitor 1);
  check_float "diagonal is nominal" 1.0 (Monitor.link_forecast monitor ~src:1 ~dst:1);
  check_close ~eps:0.02 "unaffected link stays nominal" 1.0
    (Monitor.link_forecast monitor ~src:1 ~dst:0)

(* -------------------------------------------------------------- Monitor *)

let monitored_topology ?(n = 2) () =
  let engine = Engine.create () in
  let topo = Topology.uniform engine ~n ~speed:10.0 ~latency:0.01 ~bandwidth:1e6 () in
  (engine, topo)

let test_monitor_perfect_tracks_truth () =
  let engine, topo = monitored_topology () in
  let monitor =
    Monitor.create ~sensor:Monitor.perfect_sensor ~rng:(Rng.create 1) ~every:1.0 ~horizon:100.0
      topo
  in
  Node.set_availability (Topology.node topo 1) 0.35;
  Engine.run ~until:60.0 engine;
  check_close ~eps:0.02 "forecast converges to truth" 0.35 (Monitor.node_forecast monitor 1);
  Alcotest.(check bool) "samples were taken" true (Monitor.samples_taken monitor > 50)

let test_monitor_before_samples () =
  let _, topo = monitored_topology () in
  let monitor =
    Monitor.create ~rng:(Rng.create 1) ~every:1.0 ~horizon:10.0 topo
  in
  check_float "optimistic before any sample" 1.0 (Monitor.node_forecast monitor 0);
  Alcotest.(check bool) "no observation yet" true (Monitor.last_observation monitor 0 = None)

let test_monitor_noisy_bounded () =
  let engine, topo = monitored_topology () in
  let monitor =
    Monitor.create
      ~sensor:{ Monitor.noise = 0.5; dropout = 0.0 }
      ~rng:(Rng.create 3) ~every:1.0 ~horizon:50.0 topo
  in
  Node.set_availability (Topology.node topo 0) 0.9;
  Engine.run ~until:50.0 engine;
  let f = Monitor.node_forecast monitor 0 in
  Alcotest.(check bool) "forecast clamped to [0,1]" true (f >= 0.0 && f <= 1.0)

let test_monitor_total_dropout () =
  let engine, topo = monitored_topology () in
  let monitor =
    Monitor.create
      ~sensor:{ Monitor.noise = 0.0; dropout = 1.0 }
      ~rng:(Rng.create 3) ~every:1.0 ~horizon:20.0 topo
  in
  Engine.run ~until:20.0 engine;
  Alcotest.(check int) "all samples lost" 0 (Monitor.samples_taken monitor);
  check_float "forecast stays at fallback" 1.0 (Monitor.node_forecast monitor 0)

let test_monitor_horizon_stops () =
  let engine, topo = monitored_topology () in
  let monitor = Monitor.create ~rng:(Rng.create 1) ~every:1.0 ~horizon:5.0 topo in
  Engine.run engine;
  (* Per tick: 2 node sensors + 2 user-link sensors + 2 directed link
     sensors = 6 samples; 5 ticks at t=1..5, then the horizon stops it. *)
  Alcotest.(check bool) "sampling stopped near horizon" true
    (Monitor.samples_taken monitor <= 32);
  Alcotest.(check bool) "engine drained (no infinite periodic)" true (Engine.pending engine = 0);
  ignore monitor

let test_monitor_forecast_error () =
  let engine, topo = monitored_topology () in
  let monitor =
    Monitor.create ~sensor:Monitor.perfect_sensor ~rng:(Rng.create 1) ~every:1.0 ~horizon:30.0
      topo
  in
  Engine.run ~until:30.0 engine;
  check_close ~eps:1e-6 "constant signal forecast error ~0" 0.0 (Monitor.forecast_error monitor 0)

(* ---------------------------------------------------------------- Trace *)

let sample_trace () =
  let t = Trace.create () in
  Trace.record_service t { Trace.item = 0; stage = 0; node = 1; start = 0.0; finish = 1.0 };
  Trace.record_service t { Trace.item = 0; stage = 1; node = 2; start = 1.5; finish = 2.0 };
  Trace.record_service t { Trace.item = 1; stage = 0; node = 1; start = 1.0; finish = 2.5 };
  Trace.record_transfer t
    { Trace.item = 0; from_stage = 0; src = 1; dst = 2; start = 1.0; finish = 1.5 };
  Trace.record_completion t ~item:0 ~time:2.2;
  Trace.record_completion t ~item:1 ~time:4.0;
  t

let test_trace_completions () =
  let t = sample_trace () in
  Alcotest.(check int) "count" 2 (Trace.items_completed t);
  check_float "makespan" 4.0 (Trace.makespan t);
  check_float "throughput" 0.5 (Trace.throughput t);
  Alcotest.(check (list (pair int (float 0.0)))) "ordered completions" [ (0, 2.2); (1, 4.0) ]
    (Array.to_list (Trace.completions t))

let test_trace_throughput_after () =
  let t = sample_trace () in
  check_float "ignoring the fill" (1.0 /. 1.0) (Trace.throughput_after t 3.0);
  check_float "empty tail" 0.0 (Trace.throughput_after t 5.0)

let test_trace_series () =
  let t = sample_trace () in
  let series = Trace.throughput_series t ~window:2.0 in
  Alcotest.(check int) "two windows" 2 (Array.length series);
  check_float "first window midpoint" 1.0 (fst series.(0));
  check_float "first window rate" 0.0 (snd series.(0));
  check_float "second window rate" 1.0 (snd series.(1));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Trace.throughput_series: window must be positive") (fun () ->
      ignore (Trace.throughput_series t ~window:0.0))

let test_trace_series_empty () =
  let t = Trace.create () in
  Alcotest.(check int) "no completions -> empty series" 0
    (Array.length (Trace.throughput_series t ~window:2.0))

let test_trace_series_single () =
  let t = Trace.create () in
  Trace.record_completion t ~item:0 ~time:3.0;
  let series = Trace.throughput_series t ~window:2.0 in
  Alcotest.(check int) "ceil(3/2) windows" 2 (Array.length series);
  check_float "first window empty" 0.0 (snd series.(0));
  check_float "lone completion in second window" 0.5 (snd series.(1));
  check_float "second midpoint" 3.0 (fst series.(1))

let test_trace_series_boundary () =
  (* A completion exactly at span = k·window would index one past the last
     window without the clamp. *)
  let t = Trace.create () in
  Trace.record_completion t ~item:0 ~time:4.0;
  let series = Trace.throughput_series t ~window:2.0 in
  Alcotest.(check int) "span/window windows" 2 (Array.length series);
  check_float "boundary completion clamped into last window" 0.5 (snd series.(1))

let test_trace_services () =
  let t = sample_trace () in
  Alcotest.(check int) "three services" 3 (List.length (Trace.services t));
  Alcotest.(check (list (float 1e-9))) "stage 0 service times" [ 1.0; 1.5 ]
    (Array.to_list (Trace.service_times t ~stage:0));
  Alcotest.(check int) "services on node 1" 2 (Trace.services_on_node t ~node:1);
  Alcotest.(check int) "one transfer" 1 (List.length (Trace.transfers t))

let test_trace_sojourn () =
  let t = sample_trace () in
  (* item 0: first start 0.0, done 2.2; item 1: first start 1.0, done 4.0. *)
  check_close ~eps:1e-9 "mean sojourn" ((2.2 +. 3.0) /. 2.0) (Trace.mean_sojourn t)

let test_trace_adaptations () =
  let t = Trace.create () in
  let adaptation at =
    {
      Trace.at;
      mapping_before = [| 0; 1 |];
      mapping_after = [| 1; 1 |];
      predicted_gain = 0.5;
      migration_cost = 1.0;
    }
  in
  Trace.record_adaptation t (adaptation 1.0);
  Trace.record_adaptation t (adaptation 2.0);
  Alcotest.(check (list (float 0.0))) "time order" [ 1.0; 2.0 ]
    (List.map (fun (a : Trace.adaptation) -> a.Trace.at) (Trace.adaptations t))

let test_trace_empty () =
  let t = Trace.create () in
  check_float "makespan 0" 0.0 (Trace.makespan t);
  check_float "throughput 0" 0.0 (Trace.throughput t);
  Alcotest.(check bool) "series empty" true (Trace.throughput_series t ~window:1.0 = [||]);
  Alcotest.(check bool) "sojourn nan" true (Float.is_nan (Trace.mean_sojourn t))


(* ---------------------------------------------------------- Trace_stats *)

module Trace_stats = Aspipe_grid.Trace_stats

let test_trace_stats_per_stage () =
  let t = sample_trace () in
  match Trace_stats.per_stage t ~stages:2 with
  | [ s0; s1 ] ->
      Alcotest.(check int) "stage 0 services" 2 s0.Trace_stats.services;
      check_close ~eps:1e-9 "stage 0 mean" 1.25 s0.Trace_stats.mean_service_time;
      check_close ~eps:1e-9 "stage 0 busy" 2.5 s0.Trace_stats.total_busy;
      Alcotest.(check (list int)) "stage 0 nodes" [ 1 ] s0.Trace_stats.nodes_used;
      Alcotest.(check int) "stage 1 services" 1 s1.Trace_stats.services;
      Alcotest.(check (list int)) "stage 1 nodes" [ 2 ] s1.Trace_stats.nodes_used
  | _ -> Alcotest.fail "expected two stage summaries"

let test_trace_stats_node_busy () =
  let t = sample_trace () in
  check_close ~eps:1e-9 "node 1 busy time" 2.5 (Trace_stats.node_busy_time t ~node:1);
  check_close ~eps:1e-9 "node 1 fraction of makespan" (2.5 /. 4.0)
    (Trace_stats.node_busy_fraction t ~node:1);
  check_float "unused node" 0.0 (Trace_stats.node_busy_time t ~node:7)

let test_trace_stats_gantt () =
  let t = sample_trace () in
  let rows = Trace_stats.gantt_rows t in
  Alcotest.(check int) "header + 3 services + 1 transfer" 5 (List.length rows);
  Alcotest.(check (list string)) "header" [ "kind"; "item"; "stage"; "nodes"; "start"; "finish" ]
    (List.hd rows);
  Alcotest.(check int) "transfers counted" 1 (Trace_stats.transfer_volume t)

let test_trace_stats_table_renders () =
  let t = sample_trace () in
  let table = Trace_stats.summary_table t ~stages:2 in
  Alcotest.(check bool) "renders" true
    (String.length (Aspipe_util.Render.Table.to_string table) > 0)

let () =
  Alcotest.run "aspipe_grid"
    [
      ( "node",
        [
          Alcotest.test_case "rates" `Quick test_node_rates;
          Alcotest.test_case "invalid speed" `Quick test_node_invalid_speed;
          Alcotest.test_case "history" `Quick test_node_history;
        ] );
      ( "link",
        [
          Alcotest.test_case "transfer time" `Quick test_link_transfer_time;
          Alcotest.test_case "delivery" `Quick test_link_delivery;
          Alcotest.test_case "uncontended overlap" `Quick test_link_uncontended_overlap;
          Alcotest.test_case "contended serializes" `Quick test_link_contended_serializes;
          Alcotest.test_case "invalid" `Quick test_link_invalid;
          Alcotest.test_case "quality scales costs" `Quick test_link_quality_scales_costs;
          Alcotest.test_case "quality history" `Quick test_link_quality_history;
          Alcotest.test_case "contended retimes" `Quick test_link_contended_quality_retimes;
        ] );
      ( "netgen",
        [
          Alcotest.test_case "pair step" `Quick test_netgen_pair_step;
          Alcotest.test_case "user link" `Quick test_netgen_user_link;
          Alcotest.test_case "needs rng" `Quick test_netgen_needs_rng;
          Alcotest.test_case "monitor link forecast" `Quick test_monitor_link_forecast;
        ] );
      ( "topology",
        [
          Alcotest.test_case "uniform" `Quick test_topology_uniform;
          Alcotest.test_case "heterogeneous" `Quick test_topology_heterogeneous;
          Alcotest.test_case "two site" `Quick test_topology_two_site;
          Alcotest.test_case "bounds" `Quick test_topology_bounds;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "constant" `Quick test_loadgen_constant;
          Alcotest.test_case "step" `Quick test_loadgen_step;
          Alcotest.test_case "steps" `Quick test_loadgen_steps_schedule;
          Alcotest.test_case "sine bounded" `Quick test_loadgen_sine_bounded;
          Alcotest.test_case "walk bounds" `Quick test_loadgen_random_walk_bounds;
          Alcotest.test_case "markov levels" `Quick test_loadgen_markov_levels;
          Alcotest.test_case "needs rng" `Quick test_loadgen_needs_rng;
          Alcotest.test_case "playback" `Quick test_loadgen_playback;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "perfect tracks truth" `Quick test_monitor_perfect_tracks_truth;
          Alcotest.test_case "before samples" `Quick test_monitor_before_samples;
          Alcotest.test_case "noisy bounded" `Quick test_monitor_noisy_bounded;
          Alcotest.test_case "total dropout" `Quick test_monitor_total_dropout;
          Alcotest.test_case "horizon stops" `Quick test_monitor_horizon_stops;
          Alcotest.test_case "forecast error" `Quick test_monitor_forecast_error;
        ] );
      ( "trace_stats",
        [
          Alcotest.test_case "per stage" `Quick test_trace_stats_per_stage;
          Alcotest.test_case "node busy" `Quick test_trace_stats_node_busy;
          Alcotest.test_case "gantt rows" `Quick test_trace_stats_gantt;
          Alcotest.test_case "table renders" `Quick test_trace_stats_table_renders;
        ] );
      ( "trace",
        [
          Alcotest.test_case "completions" `Quick test_trace_completions;
          Alcotest.test_case "throughput after" `Quick test_trace_throughput_after;
          Alcotest.test_case "series" `Quick test_trace_series;
          Alcotest.test_case "series empty" `Quick test_trace_series_empty;
          Alcotest.test_case "series single" `Quick test_trace_series_single;
          Alcotest.test_case "series boundary" `Quick test_trace_series_boundary;
          Alcotest.test_case "services" `Quick test_trace_services;
          Alcotest.test_case "sojourn" `Quick test_trace_sojourn;
          Alcotest.test_case "adaptations" `Quick test_trace_adaptations;
          Alcotest.test_case "empty" `Quick test_trace_empty;
        ] );
    ]
