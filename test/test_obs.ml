(* Tests for the observability layer: event bus semantics, the metrics
   registry, JSON round-trips, the JSONL and Chrome-trace exporters, and
   determinism of instrumented runs. *)

module Bus = Aspipe_obs.Bus
module Event = Aspipe_obs.Event
module Json = Aspipe_obs.Json
module Metrics = Aspipe_obs.Metrics
module Jsonl = Aspipe_obs.Jsonl
module Trace_event = Aspipe_obs.Trace_event
module Meter = Aspipe_obs.Meter
module Trace = Aspipe_grid.Trace
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------- Bus *)

let test_bus_stamps_time_and_seq () =
  let clock = ref 0.0 in
  let bus = Bus.create ~clock:(fun () -> !clock) () in
  let seen = ref [] in
  ignore (Bus.subscribe bus (fun e -> seen := e :: !seen));
  Bus.emit bus (Event.Completion { item = 0 });
  clock := 2.5;
  Bus.emit bus (Event.Completion { item = 1 });
  match List.rev !seen with
  | [ a; b ] ->
      check_float "first stamped at 0" 0.0 a.Event.time;
      check_float "second stamped at 2.5" 2.5 b.Event.time;
      Alcotest.(check int) "seq 0" 0 a.Event.seq;
      Alcotest.(check int) "seq 1" 1 b.Event.seq;
      Alcotest.(check int) "events_emitted" 2 (Bus.events_emitted bus)
  | _ -> Alcotest.fail "expected exactly two events"

let test_bus_subscription_order_and_unsubscribe () =
  let bus = Bus.create () in
  let log = ref [] in
  let sub_a = Bus.subscribe bus (fun _ -> log := "a" :: !log) in
  ignore (Bus.subscribe bus (fun _ -> log := "b" :: !log));
  Bus.emit bus (Event.Completion { item = 0 });
  Alcotest.(check (list string)) "delivered in subscription order" [ "a"; "b" ] (List.rev !log);
  Bus.unsubscribe bus sub_a;
  log := [];
  Bus.emit bus (Event.Completion { item = 1 });
  Alcotest.(check (list string)) "a detached" [ "b" ] (List.rev !log);
  Bus.unsubscribe bus sub_a (* idempotent *)

let test_bus_counts_without_sinks () =
  let bus = Bus.create () in
  Alcotest.(check bool) "inactive" false (Bus.active bus);
  Bus.emit bus (Event.Completion { item = 0 });
  Alcotest.(check int) "seq advances with no sinks" 1 (Bus.events_emitted bus)

let test_bus_control_interest () =
  let bus = Bus.create () in
  let seen = ref 0 in
  let sub = Bus.subscribe ~interest:Bus.Control bus (fun _ -> incr seen) in
  (* A control sink does not, by itself, make the bus active ... *)
  Alcotest.(check bool) "control sink leaves bus inactive" false (Bus.active bus);
  (* ... but it receives every event actually emitted. *)
  Bus.emit bus (Event.Node_crashed { node = 1 });
  Alcotest.(check int) "control sink sees emitted events" 1 !seen;
  let all = Bus.subscribe bus (fun _ -> ()) in
  Alcotest.(check bool) "an All sink activates" true (Bus.active bus);
  Bus.unsubscribe bus all;
  Alcotest.(check bool) "inactive again after unsubscribe" false (Bus.active bus);
  Bus.unsubscribe bus sub;
  Bus.emit bus (Event.Node_crashed { node = 2 });
  Alcotest.(check int) "detached control sink sees nothing" 1 !seen

let test_bus_many_sinks_ordered () =
  (* Push the sink table through several growth doublings and check order
     and unsubscribe-from-the-middle survival. *)
  let bus = Bus.create () in
  let log = ref [] in
  let subs =
    List.init 37 (fun i -> (i, Bus.subscribe bus (fun _ -> log := i :: !log)))
  in
  Bus.emit bus (Event.Completion { item = 0 });
  Alcotest.(check (list int)) "37 sinks fire in subscription order" (List.init 37 Fun.id)
    (List.rev !log);
  List.iter (fun (i, sub) -> if i mod 3 = 0 then Bus.unsubscribe bus sub) subs;
  log := [];
  Bus.emit bus (Event.Completion { item = 1 });
  Alcotest.(check (list int)) "survivors keep their order"
    (List.filter (fun i -> i mod 3 <> 0) (List.init 37 Fun.id))
    (List.rev !log)

(* --------------------------------------------------------------- Metrics *)

let test_metrics_counter_gauge () =
  let registry = Metrics.create () in
  let c = Metrics.Counter.get registry "c" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.Counter.value c);
  let c' = Metrics.Counter.get registry "c" in
  Metrics.Counter.incr c';
  Alcotest.(check int) "get is idempotent (same cell)" 6 (Metrics.Counter.value c);
  let g = Metrics.Gauge.get registry "g" in
  Metrics.Gauge.set g 2.0;
  Metrics.Gauge.add g 0.5;
  check_float "gauge" 2.5 (Metrics.Gauge.value g)

let test_metrics_kind_mismatch () =
  let registry = Metrics.create () in
  ignore (Metrics.Counter.get registry "x");
  Alcotest.(check bool) "reusing a name as another kind raises" true
    (try
       ignore (Metrics.Gauge.get registry "x");
       false
     with Invalid_argument _ -> true)

let test_metrics_histogram () =
  let registry = Metrics.create () in
  let h = Metrics.Histogram.get registry "h" in
  List.iter (Metrics.Histogram.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  Metrics.Histogram.observe h nan;
  (* NaN dropped *)
  Alcotest.(check int) "count excludes NaN" 4 (Metrics.Histogram.count h);
  check_float "sum exact" 15.0 (Metrics.Histogram.sum h);
  check_float "mean exact" 3.75 (Metrics.Histogram.mean h);
  let p0 = Metrics.Histogram.quantile h 0.0 in
  let p100 = Metrics.Histogram.quantile h 1.0 in
  Alcotest.(check bool) "quantiles clamped to observed range" true
    (p0 >= 1.0 && p100 <= 8.0 && p0 <= p100);
  Metrics.Histogram.observe h 0.0;
  Metrics.Histogram.observe h (-3.0);
  let underflow =
    List.exists (fun (lo, hi, n) -> lo = 0.0 && hi = 0.0 && n = 2) (Metrics.Histogram.buckets h)
  in
  Alcotest.(check bool) "non-positive values share the underflow bucket" true underflow

let test_metrics_empty_histogram () =
  let registry = Metrics.create () in
  let h = Metrics.Histogram.get registry "empty" in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Metrics.Histogram.mean h));
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.Histogram.quantile h 0.5));
  (* An all-NaN histogram must render, not crash or print "nan" cells. *)
  let rendered = Metrics.render (Metrics.snapshot registry) in
  Alcotest.(check bool) "render survives empty histogram" true (String.length rendered > 0)

let test_metrics_snapshot_sorted () =
  let registry = Metrics.create () in
  ignore (Metrics.Counter.get registry "zz");
  ignore (Metrics.Counter.get registry "aa");
  let snapshot = Metrics.snapshot registry in
  Alcotest.(check (list string)) "counters name-sorted" [ "aa"; "zz" ]
    (List.map fst snapshot.Metrics.counters)

(* ------------------------------------------------------------------ JSON *)

let test_json_roundtrip () =
  let value =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline");
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 0.125; Json.String "" ]);
      ]
  in
  match Json.of_string (Json.to_string value) with
  | Ok parsed -> Alcotest.(check bool) "round-trips structurally" true (parsed = value)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan serializes as null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf serializes as null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ]

(* ----------------------------------------------------------------- JSONL *)

let test_jsonl_event_fields () =
  let event =
    { Event.time = 1.5; seq = 7; payload = Event.Service_finish { item = 3; stage = 1; node = 2; start = 1.0 } }
  in
  match Json.of_string (Jsonl.line event) with
  | Error e -> Alcotest.fail ("jsonl line must be valid JSON: " ^ e)
  | Ok json ->
      Alcotest.(check (option string)) "type tag" (Some "service_finish")
        (match Json.member "type" json with Some (Json.String s) -> Some s | _ -> None);
      Alcotest.(check bool) "carries ts, seq and payload fields" true
        (Json.member "ts" json <> None && Json.member "seq" json <> None
        && Json.member "item" json <> None && Json.member "start" json <> None)

(* ------------------------------------------ trace translation (bus sink) *)

let test_trace_subscribe_translates () =
  let clock = ref 0.0 in
  let bus = Bus.create ~clock:(fun () -> !clock) () in
  let trace = Trace.create () in
  Trace.subscribe trace bus;
  clock := 2.0;
  Bus.emit bus (Event.Service_finish { item = 0; stage = 0; node = 1; start = 1.0 });
  clock := 3.0;
  Bus.emit bus (Event.Transfer { item = 0; from_stage = 0; src = 1; dst = 2; start = 2.0; bytes = 10.0 });
  clock := 4.0;
  Bus.emit bus (Event.Completion { item = 0 });
  Bus.emit bus (Event.Queue_sample { stage = 0; depth = 3 });
  (* ignored *)
  (match Trace.services trace with
  | [ s ] ->
      check_float "finish is the event time" 2.0 s.Trace.finish;
      check_float "start carried in payload" 1.0 s.Trace.start
  | _ -> Alcotest.fail "expected one service");
  Alcotest.(check int) "one transfer" 1 (List.length (Trace.transfers trace));
  Alcotest.(check int) "one completion" 1 (Trace.items_completed trace);
  check_float "completion time" 4.0 (Trace.makespan trace)

(* ----------------------------------------------------- instrumented runs *)

let small_scenario () =
  Scenario.make ~name:"obs-test"
    ~make_topo:(fun engine ->
      Aspipe_grid.Topology.uniform engine ~n:3 ~speed:10.0 ~latency:0.01 ~bandwidth:1e7 ())
    ~loads:[ (0, Aspipe_grid.Loadgen.Step { at = 10.0; level = 0.2 }) ]
    ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:4 ~factor:3.0 ())
    ~input:(Aspipe_skel.Stream_spec.make ~arrival:(Aspipe_skel.Stream_spec.Spaced 0.3) ~items:60 ())
    ~horizon:1e5 ()

let jsonl_of_run ~seed =
  let buffer = Buffer.create 4096 in
  ignore
    (Adaptive.run
       ~instrument:(fun bus -> ignore (Bus.subscribe bus (Jsonl.sink_to_buffer buffer)))
       ~scenario:(small_scenario ()) ~seed ());
  Buffer.contents buffer

let test_jsonl_deterministic () =
  let a = jsonl_of_run ~seed:11 in
  let b = jsonl_of_run ~seed:11 in
  Alcotest.(check bool) "log is non-empty" true (String.length a > 0);
  Alcotest.(check string) "same seed, byte-identical JSONL" a b;
  let c = jsonl_of_run ~seed:12 in
  Alcotest.(check bool) "different seed diverges" true (a <> c)

let test_instrumentation_does_not_change_run () =
  let plain = Adaptive.run ~scenario:(small_scenario ()) ~seed:5 () in
  let observed =
    Adaptive.run
      ~instrument:(fun bus ->
        ignore (Meter.attach bus);
        ignore (Bus.subscribe bus (Jsonl.sink_to_buffer (Buffer.create 4096))))
      ~scenario:(small_scenario ()) ~seed:5 ()
  in
  check_float "makespan unchanged by sinks" plain.Adaptive.makespan observed.Adaptive.makespan;
  Alcotest.(check int) "adaptations unchanged by sinks" plain.Adaptive.adaptation_count
    observed.Adaptive.adaptation_count

let test_trace_event_export_valid () =
  let collector = Trace_event.create () in
  ignore
    (Adaptive.run
       ~instrument:(fun bus -> Trace_event.attach collector bus)
       ~scenario:(small_scenario ()) ~seed:5 ());
  match Json.of_string (Trace_event.to_string collector) with
  | Error e -> Alcotest.fail ("trace export must be valid JSON: " ^ e)
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          let phases =
            List.filter_map
              (fun e -> match Json.member "ph" e with Some (Json.String p) -> Some p | _ -> None)
              events
          in
          Alcotest.(check bool) "has complete slices" true (List.mem "X" phases);
          Alcotest.(check bool) "has counter samples" true (List.mem "C" phases);
          Alcotest.(check bool) "has track metadata" true (List.mem "M" phases)
      | _ -> Alcotest.fail "missing traceEvents array")

let test_meter_counts_completions () =
  let meter = ref None in
  let report =
    Adaptive.run
      ~instrument:(fun bus -> meter := Some (Meter.attach bus))
      ~scenario:(small_scenario ()) ~seed:5 ()
  in
  match !meter with
  | None -> Alcotest.fail "instrument hook not called"
  | Some meter ->
      let snapshot = Meter.snapshot meter in
      let counter name = List.assoc_opt name snapshot.Metrics.counters in
      Alcotest.(check (option int)) "items.completed matches the trace" (Some 60)
        (counter "items.completed");
      Alcotest.(check (option int)) "adaptations.committed matches the report"
        (Some report.Adaptive.adaptation_count)
        (counter "adaptations.committed");
      Alcotest.(check bool) "service-time histograms present" true
        (List.mem_assoc "stage.0.service_time" snapshot.Metrics.histograms)

(* Golden determinism test for the meter-ordering fix: utilization gauges
   register in sorted node order, so the rendered snapshot cannot depend on
   the order nodes first appear in the event stream (hash order). *)
let test_meter_snapshot_order_independent () =
  let snapshot_for nodes =
    let clock = ref 0.0 in
    let bus = Bus.create ~clock:(fun () -> !clock) () in
    let meter = Meter.attach bus in
    List.iter
      (fun node ->
        clock := !clock +. 1.0;
        Bus.emit bus (Event.Service_finish { item = node; stage = 0; node; start = !clock -. 0.5 }))
      nodes;
    Meter.snapshot meter
  in
  let ascending = snapshot_for [ 0; 1; 2; 3; 5; 8; 13 ] in
  let scrambled = snapshot_for [ 13; 5; 0; 8; 2; 1; 3 ] in
  Alcotest.(check string) "rendered snapshot independent of node arrival order"
    (Metrics.render ascending) (Metrics.render scrambled);
  let gauge_names = List.map fst ascending.Metrics.gauges in
  Alcotest.(check (list string)) "utilization gauges come out sorted"
    (List.sort compare gauge_names) gauge_names;
  Alcotest.(check bool) "utilization gauges present" true
    (List.mem_assoc "node.13.utilization" ascending.Metrics.gauges)

let () =
  Alcotest.run "aspipe_obs"
    [
      ( "bus",
        [
          Alcotest.test_case "stamps time and seq" `Quick test_bus_stamps_time_and_seq;
          Alcotest.test_case "order and unsubscribe" `Quick
            test_bus_subscription_order_and_unsubscribe;
          Alcotest.test_case "counts without sinks" `Quick test_bus_counts_without_sinks;
          Alcotest.test_case "control interest" `Quick test_bus_control_interest;
          Alcotest.test_case "many sinks ordered" `Quick test_bus_many_sinks_ordered;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "empty histogram" `Quick test_metrics_empty_histogram;
          Alcotest.test_case "snapshot sorted" `Quick test_metrics_snapshot_sorted;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "nonfinite" `Quick test_json_nonfinite_is_null;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "jsonl fields" `Quick test_jsonl_event_fields;
          Alcotest.test_case "trace subscribe" `Quick test_trace_subscribe_translates;
          Alcotest.test_case "jsonl deterministic" `Quick test_jsonl_deterministic;
          Alcotest.test_case "sinks are pure observers" `Quick
            test_instrumentation_does_not_change_run;
          Alcotest.test_case "trace-event valid" `Quick test_trace_event_export_valid;
          Alcotest.test_case "meter counts" `Quick test_meter_counts_completions;
          Alcotest.test_case "meter snapshot order-independent" `Quick
            test_meter_snapshot_order_independent;
        ] );
    ]
