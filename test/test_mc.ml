(* Tests for the shared-memory backend: every parallel execution strategy
   must agree exactly with the sequential reference, under back pressure,
   fusion, replication and exceptions. *)

module Pipe = Aspipe_skel.Pipe
module Chan = Aspipe_skel.Chan
module Skel_mc = Aspipe_skel.Skel_mc
module Farm_mc = Aspipe_skel.Farm_mc

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let int_chain =
  let open Pipe in
  (fun x -> x + 3) @> (fun x -> x * 2) @> (fun x -> x - 1) @> last (fun x -> x * x)

let test_run_matches_seq () =
  let inputs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "parallel = sequential" (Skel_mc.run_seq int_chain inputs)
    (Skel_mc.run int_chain inputs)

let test_run_preserves_order =
  qtest "run preserves input order for any payload"
    QCheck2.Gen.(list_size (int_range 0 200) int)
    (fun inputs -> Skel_mc.run int_chain inputs = List.map (Pipe.apply int_chain) inputs)

let test_run_empty () =
  Alcotest.(check (list int)) "empty stream" [] (Skel_mc.run int_chain [])

let test_run_single_item () =
  Alcotest.(check (list int)) "one item" [ Pipe.apply int_chain 7 ] (Skel_mc.run int_chain [ 7 ])

let test_run_capacity_one () =
  let inputs = List.init 50 Fun.id in
  Alcotest.(check (list int)) "tight back pressure"
    (Skel_mc.run_seq int_chain inputs)
    (Skel_mc.run ~capacity:1 int_chain inputs)

let test_run_grouped_matches () =
  let inputs = List.init 60 Fun.id in
  let expected = Skel_mc.run_seq int_chain inputs in
  List.iter
    (fun groups ->
      Alcotest.(check (list int))
        (Printf.sprintf "grouped %s" (String.concat "" (List.map string_of_int (Array.to_list groups))))
        expected
        (Skel_mc.run_grouped ~groups int_chain inputs))
    [ [| 0; 0; 0; 0 |]; [| 0; 0; 1; 1 |]; [| 0; 1; 2; 3 |]; [| 0; 1; 1; 2 |] ]

let test_run_heterogeneous_types () =
  let open Pipe in
  let chain = string_of_int @> String.length @> last (fun n -> n * 10) in
  Alcotest.(check (list int)) "types change across stages" [ 10; 20; 30; 40 ]
    (Skel_mc.run chain [ 1; 10; 100; 1000 ])

let test_run_timed_returns_outputs () =
  let outputs, seconds = Skel_mc.run_timed int_chain [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "outputs intact" (Skel_mc.run_seq int_chain [ 1; 2; 3 ]) outputs;
  Alcotest.(check bool) "time non-negative" true (seconds >= 0.0)

(* ------------------------------------------------------------ edge cases *)

(* The degenerate shapes every backend must get right: a pipe of one stage
   (no inter-stage channel at all), nothing flowing through any backend,
   and the whole chain fused into a single group under the tightest
   back-pressure — each asserting output order, not just content. *)

let single_stage = Pipe.last (fun x -> x + 1)

let test_single_stage_pipe () =
  let inputs = List.init 40 Fun.id in
  let expected = List.map (fun x -> x + 1) inputs in
  Alcotest.(check (list int)) "run_seq" expected (Skel_mc.run_seq single_stage inputs);
  Alcotest.(check (list int)) "run" expected (Skel_mc.run single_stage inputs);
  Alcotest.(check (list int)) "run, capacity 1" expected
    (Skel_mc.run ~capacity:1 single_stage inputs);
  Alcotest.(check (list int)) "run_grouped, one group" expected
    (Skel_mc.run_grouped ~groups:[| 0 |] single_stage inputs)

let test_empty_every_backend () =
  Alcotest.(check (list int)) "run" [] (Skel_mc.run int_chain []);
  Alcotest.(check (list int)) "run, capacity 1" [] (Skel_mc.run ~capacity:1 int_chain []);
  Alcotest.(check (list int)) "run_grouped" []
    (Skel_mc.run_grouped ~groups:[| 0; 0; 0; 0 |] int_chain []);
  Alcotest.(check (list int)) "single stage" [] (Skel_mc.run single_stage [])

let test_one_group_capacity_one_order () =
  let inputs = List.init 80 (fun i -> 79 - i) in
  let expected = List.map (Pipe.apply int_chain) inputs in
  Alcotest.(check (list int)) "everything fused on one domain, capacity 1" expected
    (Skel_mc.run_grouped ~capacity:1 ~groups:[| 0; 0; 0; 0 |] int_chain inputs)

(* ------------------------------------------------- batched SPSC transfer *)

(* The batch knob must never change semantics, only throughput: output
   equals the sequential reference across the (capacity × batch) grid,
   including batch > capacity (chunks transfer in partial slices) and
   batch > items (one short chunk). *)

let test_run_batch_matrix () =
  let inputs = List.init 333 Fun.id in
  let expected = Skel_mc.run_seq int_chain inputs in
  List.iter
    (fun capacity ->
      List.iter
        (fun batch ->
          Alcotest.(check (list int))
            (Printf.sprintf "capacity=%d batch=%d" capacity batch)
            expected
            (Skel_mc.run ~capacity ~batch int_chain inputs))
        [ 1; 8; 64; 512 ])
    [ 1; 2; 8 ]

let test_run_batch_exceeds_items () =
  let inputs = List.init 5 Fun.id in
  Alcotest.(check (list int)) "batch > items" (Skel_mc.run_seq int_chain inputs)
    (Skel_mc.run ~capacity:4 ~batch:64 int_chain inputs)

let test_run_invalid_batch () =
  Alcotest.check_raises "batch 0" (Invalid_argument "Skel_mc.run: batch must be positive")
    (fun () -> ignore (Skel_mc.run ~batch:0 int_chain [ 1 ]));
  Alcotest.check_raises "capacity 0" (Invalid_argument "Skel_mc.run: capacity must be positive")
    (fun () -> ignore (Skel_mc.run ~capacity:0 int_chain [ 1 ]))

let test_run_fold_matches_run () =
  let items = 500 in
  let inputs = List.init items Fun.id in
  let expected = Skel_mc.run int_chain inputs in
  let collect acc x = x :: acc in
  Alcotest.(check (list int)) "run_fold = run"
    expected
    (List.rev (Skel_mc.run_fold ~capacity:8 ~batch:16 int_chain ~items ~gen:Fun.id ~init:[] ~f:collect));
  Alcotest.(check (list int)) "run_chan_fold = run"
    expected
    (List.rev (Skel_mc.run_chan_fold int_chain ~items ~gen:Fun.id ~init:[] ~f:collect));
  Alcotest.(check int) "run_fold of zero items" 0
    (Skel_mc.run_fold int_chain ~items:0 ~gen:Fun.id ~init:0 ~f:( + ))

(* ----------------------------------------------------------------- Farm *)

let test_farm_matches_map =
  qtest "farm map = List.map at any worker count"
    QCheck2.Gen.(pair (list_size (int_range 0 100) int) (int_range 1 6))
    (fun (xs, workers) -> Farm_mc.map ~workers (fun x -> (x * 7) mod 1001) xs
                          = List.map (fun x -> (x * 7) mod 1001) xs)

let test_farm_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Farm_mc.map ~workers:4 (fun x -> x) []);
  Alcotest.(check (list int)) "workers=1 computes inline" [ 2; 4 ]
    (Farm_mc.map ~workers:1 (fun x -> x * 2) [ 1; 2 ])

let test_farm_more_workers_than_items () =
  Alcotest.(check (list int)) "workers > items" [ 1; 4; 9 ]
    (Farm_mc.map ~workers:16 (fun x -> x * x) [ 1; 2; 3 ])

let test_farm_array () =
  Alcotest.(check (array int)) "array variant" [| 2; 4; 6 |]
    (Farm_mc.map_array ~workers:3 (fun x -> 2 * x) [| 1; 2; 3 |])

let test_farm_exception_propagates () =
  let boom = Failure "boom" in
  Alcotest.check_raises "worker exception re-raised" boom (fun () ->
      ignore (Farm_mc.map ~workers:3 (fun x -> if x = 50 then raise boom else x)
                (List.init 100 Fun.id)))

let test_farm_invalid_workers () =
  Alcotest.check_raises "workers 0" (Invalid_argument "Farm_mc: workers must be positive")
    (fun () -> ignore (Farm_mc.map ~workers:0 Fun.id [ 1 ]))

let test_farm_as_pipeline_stage () =
  Alcotest.(check (list int)) "pipeline_stage alias" [ 1; 8; 27 ]
    (Farm_mc.pipeline_stage ~workers:2 (fun x -> x * x * x) [ 1; 2; 3 ])

(* ------------------------------------------------------- streaming farm *)

let test_map_stream_matches_map =
  qtest "map_stream = List.map over workers x batch x capacity"
    QCheck2.Gen.(
      quad (list_size (int_range 0 120) int) (int_range 1 5) (int_range 1 9) (int_range 1 5))
    (fun (xs, workers, batch, capacity) ->
      Farm_mc.map_stream ~capacity ~batch ~workers (fun x -> (x * 13) mod 997) xs
      = List.map (fun x -> (x * 13) mod 997) xs)

let test_map_stream_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Farm_mc.map_stream ~workers:4 (fun x -> x) []);
  Alcotest.(check (list int)) "workers=1 computes inline" [ 2; 4 ]
    (Farm_mc.map_stream ~workers:1 (fun x -> x * 2) [ 1; 2 ])

let test_map_stream_preserves_order () =
  (* Workers finish chunks at different speeds; the collector must still
     reassemble in deal order. Reversed input makes a reorder visible. *)
  let inputs = List.init 200 (fun i -> 199 - i) in
  Alcotest.(check (list int)) "order preserved under contention"
    (List.map (fun x -> x + 1) inputs)
    (Farm_mc.map_stream ~capacity:2 ~batch:4 ~workers:3 (fun x -> x + 1) inputs)

let test_map_stream_exception_propagates () =
  let boom = Failure "stream-boom" in
  Alcotest.check_raises "worker exception re-raised" boom (fun () ->
      ignore
        (Farm_mc.map_stream ~capacity:2 ~batch:8 ~workers:3
           (fun x -> if x = 150 then raise boom else x)
           (List.init 400 Fun.id)))

let test_map_stream_invalid_args () =
  Alcotest.check_raises "workers 0" (Invalid_argument "Farm_mc: workers must be positive")
    (fun () -> ignore (Farm_mc.map_stream ~workers:0 Fun.id [ 1 ]));
  Alcotest.check_raises "batch 0" (Invalid_argument "Farm_mc: batch must be positive") (fun () ->
      ignore (Farm_mc.map_stream ~batch:0 ~workers:2 Fun.id [ 1 ]));
  Alcotest.check_raises "capacity 0" (Invalid_argument "Farm_mc: capacity must be positive")
    (fun () -> ignore (Farm_mc.map_stream ~capacity:0 ~workers:2 Fun.id [ 1 ]))

(* ------------------------------------------------- failure paths (Domains) *)

(* The close protocol under real contention: a party blocked on a full
   (or empty) channel must be woken by [close] with the typed outcome —
   {!Chan.Closed} for senders, [None] for receivers — never left parked.
   Each test runs the blocking side on its own domain and joins it, so a
   regression here hangs the suite instead of passing silently. *)

let test_chan_close_wakes_blocked_sender () =
  let chan = Chan.create ~capacity:1 in
  Chan.send chan 0;
  let sender =
    Domain.spawn (fun () ->
        (* Blocks: the channel is full and nothing drains it. *)
        match Chan.send chan 1 with () -> `Sent | exception Chan.Closed -> `Raised_closed)
  in
  Unix.sleepf 0.05;
  Chan.close chan;
  Alcotest.(check bool) "blocked sender raises Closed" true (Domain.join sender = `Raised_closed)

let test_chan_close_wakes_blocked_receiver () =
  let chan : int Chan.t = Chan.create ~capacity:4 in
  let receiver = Domain.spawn (fun () -> Chan.recv chan) in
  Unix.sleepf 0.05;
  Chan.close chan;
  Alcotest.(check (option int)) "blocked receiver gets None" None (Domain.join receiver)

let test_chan_drain_after_close () =
  let chan = Chan.create ~capacity:4 in
  List.iter (Chan.send chan) [ 1; 2; 3 ];
  Chan.close chan;
  Alcotest.check_raises "send after close" Chan.Closed (fun () -> Chan.send chan 4);
  Alcotest.(check (list (option int))) "queued elements drain FIFO, then None"
    [ Some 1; Some 2; Some 3; None ]
    (List.map (fun _ -> Chan.recv chan) [ (); (); (); () ])

(* A raising stage function must surface as its exception from [run], not
   as a deadlock. Capacity 1 with many items makes the failure mode real:
   when the middle stage dies, the feeder and the upstream stage are
   blocked on full channels and only the close-on-failure path can wake
   them. *)
let test_pipeline_stage_exception_propagates () =
  let boom = Failure "stage-boom" in
  let open Pipe in
  let chain = (fun x -> x + 1) @> (fun x -> if x = 5 then raise boom else x) @> last (fun x -> x * 2) in
  Alcotest.check_raises "mid-chain stage failure re-raised" boom (fun () ->
      ignore (Skel_mc.run ~capacity:1 chain (List.init 200 Fun.id)))

let test_pipeline_first_stage_exception_propagates () =
  let boom = Failure "head-boom" in
  let open Pipe in
  let chain = (fun x -> if x = 0 then raise boom else x) @> last (fun x -> x + 1) in
  Alcotest.check_raises "first stage failure re-raised" boom (fun () ->
      ignore (Skel_mc.run ~capacity:1 chain (List.init 50 Fun.id)))

let test_pipeline_last_stage_exception_propagates () =
  let boom = Failure "tail-boom" in
  let open Pipe in
  let chain = (fun x -> x + 1) @> (fun x -> x * 3) @> last (fun x -> if x > 30 then raise boom else x) in
  Alcotest.check_raises "last stage failure re-raised" boom (fun () ->
      ignore (Skel_mc.run ~capacity:1 chain (List.init 100 Fun.id)))

(* The same failure modes with whole batches in flight: when a stage dies
   mid-chunk, its neighbours are parked on full/empty rings holding
   partially transferred chunks, and only the close-on-failure relay can
   wake them. The original exception must win over the [Spsc.Closed] the
   relaying neighbours raise — and nothing may deadlock or double-close. *)

let test_batched_mid_chain_exception () =
  let boom = Failure "batched-boom" in
  let open Pipe in
  let chain =
    (fun x -> x + 1) @> (fun x -> if x = 100 then raise boom else x) @> last (fun x -> x * 2)
  in
  List.iter
    (fun (capacity, batch) ->
      Alcotest.check_raises (Printf.sprintf "capacity=%d batch=%d" capacity batch) boom
        (fun () -> ignore (Skel_mc.run ~capacity ~batch chain (List.init 2000 Fun.id))))
    [ (1, 8); (2, 64); (8, 16); (4, 512) ]

let test_batched_first_stage_exception () =
  let boom = Failure "batched-head-boom" in
  let open Pipe in
  let chain = (fun x -> if x = 10 then raise boom else x) @> last (fun x -> x + 1) in
  Alcotest.check_raises "first stage, batch 32" boom (fun () ->
      ignore (Skel_mc.run ~capacity:2 ~batch:32 chain (List.init 1000 Fun.id)))

let test_batched_last_stage_exception () =
  let boom = Failure "batched-tail-boom" in
  let open Pipe in
  let chain =
    (fun x -> x + 1) @> (fun x -> x * 3) @> last (fun x -> if x > 300 then raise boom else x)
  in
  Alcotest.check_raises "last stage, batch 32" boom (fun () ->
      ignore (Skel_mc.run ~capacity:2 ~batch:32 chain (List.init 1000 Fun.id)))

let test_run_fold_exception_propagates () =
  let boom = Failure "fold-boom" in
  let open Pipe in
  let chain = (fun x -> if x = 500 then raise boom else x) @> last (fun x -> x + 1) in
  Alcotest.check_raises "run_fold failure re-raised" boom (fun () ->
      ignore (Skel_mc.run_fold ~capacity:4 ~batch:16 chain ~items:2000 ~gen:Fun.id ~init:0 ~f:( + )))

(* --------------------------------------------------- cross-backend checks *)

let test_image_chain_backends_agree () =
  let rng = Aspipe_util.Rng.create 8 in
  let frames = List.init 4 (fun _ -> Aspipe_workload.Image.random rng ~width:48 ~height:48) in
  let chain = Aspipe_workload.Image.standard_chain ~blur_radius:2 in
  let digest images =
    List.fold_left (fun acc i -> acc +. Aspipe_workload.Image.checksum i) 0.0 images
  in
  let reference = digest (Skel_mc.run_seq chain frames) in
  Alcotest.(check (float 1e-6)) "pipeline backend" reference (digest (Skel_mc.run chain frames));
  Alcotest.(check (float 1e-6)) "fused backend" reference
    (digest (Skel_mc.run_grouped ~groups:[| 0; 0; 1; 1; 1 |] chain frames));
  Alcotest.(check (float 1e-6)) "farmed whole chain" reference
    (digest (Farm_mc.map ~workers:3 (Pipe.apply chain) frames))

let () =
  Alcotest.run "aspipe_mc"
    [
      ( "pipeline",
        [
          Alcotest.test_case "matches sequential" `Quick test_run_matches_seq;
          test_run_preserves_order;
          Alcotest.test_case "empty" `Quick test_run_empty;
          Alcotest.test_case "single item" `Quick test_run_single_item;
          Alcotest.test_case "capacity 1" `Quick test_run_capacity_one;
          Alcotest.test_case "grouped" `Quick test_run_grouped_matches;
          Alcotest.test_case "heterogeneous types" `Quick test_run_heterogeneous_types;
          Alcotest.test_case "timed" `Quick test_run_timed_returns_outputs;
          Alcotest.test_case "single-stage pipe" `Quick test_single_stage_pipe;
          Alcotest.test_case "empty on every backend" `Quick test_empty_every_backend;
          Alcotest.test_case "one group, capacity 1" `Quick test_one_group_capacity_one_order;
          Alcotest.test_case "batch matrix" `Quick test_run_batch_matrix;
          Alcotest.test_case "batch exceeds items" `Quick test_run_batch_exceeds_items;
          Alcotest.test_case "invalid batch/capacity" `Quick test_run_invalid_batch;
          Alcotest.test_case "run_fold matches run" `Quick test_run_fold_matches_run;
        ] );
      ( "farm",
        [
          test_farm_matches_map;
          Alcotest.test_case "empty & single" `Quick test_farm_empty_and_single;
          Alcotest.test_case "more workers than items" `Quick test_farm_more_workers_than_items;
          Alcotest.test_case "array variant" `Quick test_farm_array;
          Alcotest.test_case "exception propagates" `Quick test_farm_exception_propagates;
          Alcotest.test_case "invalid workers" `Quick test_farm_invalid_workers;
          Alcotest.test_case "pipeline stage alias" `Quick test_farm_as_pipeline_stage;
          test_map_stream_matches_map;
          Alcotest.test_case "map_stream empty & single" `Quick test_map_stream_empty_and_single;
          Alcotest.test_case "map_stream preserves order" `Quick test_map_stream_preserves_order;
          Alcotest.test_case "map_stream exception" `Quick test_map_stream_exception_propagates;
          Alcotest.test_case "map_stream invalid args" `Quick test_map_stream_invalid_args;
        ] );
      ( "failure-paths",
        [
          Alcotest.test_case "close wakes blocked sender" `Quick test_chan_close_wakes_blocked_sender;
          Alcotest.test_case "close wakes blocked receiver" `Quick test_chan_close_wakes_blocked_receiver;
          Alcotest.test_case "drain after close" `Quick test_chan_drain_after_close;
          Alcotest.test_case "mid-chain stage exception" `Quick test_pipeline_stage_exception_propagates;
          Alcotest.test_case "first-stage exception" `Quick test_pipeline_first_stage_exception_propagates;
          Alcotest.test_case "last-stage exception" `Quick test_pipeline_last_stage_exception_propagates;
          Alcotest.test_case "batched mid-chain exception" `Quick test_batched_mid_chain_exception;
          Alcotest.test_case "batched first-stage exception" `Quick test_batched_first_stage_exception;
          Alcotest.test_case "batched last-stage exception" `Quick test_batched_last_stage_exception;
          Alcotest.test_case "run_fold exception" `Quick test_run_fold_exception_propagates;
        ] );
      ( "cross-backend",
        [ Alcotest.test_case "image chain agreement" `Slow test_image_chain_backends_agree ] );
    ]
