(* Tests for the fault subsystem: injection profiles, crash/recovery
   semantics in the simulator, checkpoint re-dispatch, failover, monitor
   suspicion and determinism of faulty runs. *)

module Engine = Aspipe_des.Engine
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Skel_sim = Aspipe_skel.Skel_sim
module Fault = Aspipe_fault.Fault
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Baselines = Aspipe_core.Baselines
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Event = Aspipe_obs.Event
module Bus = Aspipe_obs.Bus

(* A tiny world: [n] nodes at speed 10, near-instant network, so service
   times dominate and crash instants are easy to reason about. *)
let quiet_topo ?(n = 3) engine =
  Topology.uniform engine ~n ~speed:10.0 ~latency:1e-4 ~bandwidth:1e9 ()

let constant_stages ~n =
  Array.init n (fun i ->
      Stage.make ~name:(Printf.sprintf "s%d" i) ~output_bytes:10.0 ~state_bytes:100.0
        ~work:(Variate.Constant 1.0) ())

let make_sim ?(n = 3) ?(items = 20) ?(stage_count = 1) ~mapping () =
  let engine = Engine.create () in
  let topo = quiet_topo ~n engine in
  let trace = Trace.create () in
  let sim =
    Skel_sim.create ~rng:(Rng.create 7) ~topo ~stages:(constant_stages ~n:stage_count) ~mapping
      ~input:(Stream_spec.make ~items ~item_bytes:10.0 ())
      ~trace ()
  in
  (engine, topo, trace, sim)

let completion_ids trace = Array.map fst (Trace.completions trace)

(* ------------------------------------------------- crash loses the queue *)

(* Single stage, batch input, permanent crash mid-run: by the crash instant
   every item has been accepted (near-instant user link), so fail-stop must
   split the input exactly into completed + checkpointed-lost, with the
   lost ids being precisely the uncompleted tail in FIFO order. *)
let test_crash_loses_exactly_in_service_and_queued () =
  let items = 20 in
  let engine, topo, trace, sim = make_sim ~items ~mapping:[| 0 |] () in
  let lost_events = ref [] in
  ignore
    (Bus.subscribe (Engine.bus engine) (fun (e : Event.t) ->
         match e.Event.payload with
         | Event.Item_lost { item; stage; node } ->
             Alcotest.(check int) "lost at stage 0" 0 stage;
             Alcotest.(check int) "lost on node 0" 0 node;
             lost_events := item :: !lost_events
         | _ -> ()));
  ignore (Engine.schedule_at engine ~time:1.05 (fun () -> Node.set_up (Topology.node topo 0) false));
  (match Skel_sim.run sim with
  | `Completed -> Alcotest.fail "a dead stage host cannot complete the workload"
  | `Stalled _ -> ());
  let completed = Skel_sim.items_completed sim in
  let lost = Skel_sim.lost_items sim in
  Alcotest.(check bool) "made progress before the crash" true (completed > 0);
  Alcotest.(check int) "completed + lost = total" items (completed + List.length lost);
  Alcotest.(check (list int)) "lost = the uncompleted FIFO tail"
    (List.init (items - completed) (fun i -> completed + i))
    lost;
  Alcotest.(check int) "one loss event per lost item" (List.length lost)
    (Skel_sim.items_lost_total sim);
  Alcotest.(check (list int)) "bus events match the checkpoint" lost
    (List.sort compare !lost_events);
  Alcotest.(check int) "completions all precede the crash" completed
    (Array.length (Trace.completions trace))

(* ------------------------------------------------------ recovery replays *)

let test_recovery_replays_checkpoint () =
  let items = 20 in
  let engine, topo, trace, sim = make_sim ~items ~mapping:[| 0 |] () in
  ignore (Engine.schedule_at engine ~time:1.05 (fun () -> Node.set_up (Topology.node topo 0) false));
  ignore (Engine.schedule_at engine ~time:3.0 (fun () -> Node.set_up (Topology.node topo 0) true));
  (match Skel_sim.run sim with
  | `Completed -> ()
  | `Stalled d -> Alcotest.fail ("recovery should complete the workload:\n" ^ d));
  Alcotest.(check int) "every item completed" items (Skel_sim.items_completed sim);
  Alcotest.(check (list int)) "checkpoint drained" [] (Skel_sim.lost_items sim);
  Alcotest.(check int) "every loss re-dispatched" (Skel_sim.items_lost_total sim)
    (Skel_sim.items_redispatched_total sim);
  Alcotest.(check bool) "the crash actually lost items" true (Skel_sim.items_lost_total sim > 0);
  (* No duplicate or dropped outputs: the completion ids are exactly the
     input ids, and 1-for-1 FIFO order survives the replay. *)
  let ids = completion_ids trace in
  Alcotest.(check (array int)) "output multiset = input image, in order"
    (Array.init items Fun.id) ids

(* --------------------------------------------------------------- failover *)

let test_failover_redispatches_to_survivor () =
  let items = 30 in
  let engine, topo, trace, sim = make_sim ~n:3 ~items ~stage_count:2 ~mapping:[| 0; 1 |] () in
  ignore (Engine.schedule_at engine ~time:1.0 (fun () -> Node.set_up (Topology.node topo 1) false));
  ignore (Engine.schedule_at engine ~time:2.0 (fun () -> Skel_sim.failover sim [| 0; 2 |]));
  (match Skel_sim.run sim with
  | `Completed -> ()
  | `Stalled d -> Alcotest.fail ("failover should complete the workload:\n" ^ d));
  Alcotest.(check (array int)) "mapping moved off the corpse" [| 0; 2 |] (Skel_sim.mapping sim);
  Alcotest.(check int) "every item completed" items (Skel_sim.items_completed sim);
  Alcotest.(check (list int)) "checkpoint drained" [] (Skel_sim.lost_items sim);
  Alcotest.(check bool) "the crash actually lost items" true (Skel_sim.items_lost_total sim > 0);
  let ids = completion_ids trace in
  Alcotest.(check (array int)) "no duplicate, no drop, order preserved"
    (Array.init items Fun.id) ids

(* ------------------------------------------------------- stall diagnosis *)

let test_stall_diagnostic_names_the_problem () =
  let items = 10 in
  let engine, topo, _trace, sim = make_sim ~n:2 ~items ~stage_count:2 ~mapping:[| 0; 1 |] () in
  ignore (Engine.schedule_at engine ~time:0.55 (fun () -> Node.set_up (Topology.node topo 1) false));
  match Skel_sim.run sim with
  | `Completed -> Alcotest.fail "expected a fault-induced stall"
  | `Stalled d ->
      let contains needle =
        Alcotest.(check bool) (Printf.sprintf "diagnostic mentions %S" needle) true
          (let len = String.length needle in
           let rec scan i = i + len <= String.length d && (String.sub d i len = needle || scan (i + 1)) in
           scan 0)
      in
      contains "stage 1";
      contains "(s1)";
      contains "node 1";
      contains "DOWN";
      contains "queued";
      contains "fault-induced stall";
      contains (Printf.sprintf "/%d items completed" items)

(* ------------------------------------------------------- fault profiles *)

let test_profile_validation () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  Alcotest.check_raises "negative crash time"
    (Invalid_argument "Fault: crash time must be non-negative") (fun () ->
      Fault.apply_node ~horizon:100.0 topo 0 (Fault.Crash_at (-1.0)));
  Alcotest.check_raises "poisson needs rng"
    (Invalid_argument "Fault: the Poisson profile is stochastic and needs ~rng") (fun () ->
      Fault.apply_node ~horizon:100.0 topo 0 (Fault.Poisson { mtbf = 10.0; mttr = 1.0 }))

let test_windows_drive_liveness () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  let node = Topology.node topo 1 in
  Fault.apply_node ~horizon:100.0 topo 1 (Fault.Windows [ (10.0, 5.0); (30.0, 5.0) ]);
  Engine.run ~until:12.0 engine;
  Alcotest.(check bool) "down inside the first window" false (Node.up node);
  Engine.run ~until:20.0 engine;
  Alcotest.(check bool) "up between windows" true (Node.up node);
  Engine.run ~until:32.0 engine;
  Alcotest.(check bool) "down inside the second window" false (Node.up node);
  Engine.run ~until:50.0 engine;
  Alcotest.(check bool) "up after the last window" true (Node.up node)

(* The whole Poisson schedule is drawn up front from the caller's rng, so
   equal seeds must yield equal crash/recovery instants and different seeds
   (practically) must not. *)
let poisson_transitions seed =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  let events = ref [] in
  ignore
    (Bus.subscribe (Engine.bus engine) (fun (e : Event.t) ->
         match e.Event.payload with
         | Event.Node_crashed { node } -> events := (e.Event.time, `Down, node) :: !events
         | Event.Node_recovered { node } -> events := (e.Event.time, `Up, node) :: !events
         | _ -> ()));
  Fault.apply_node ~rng:(Rng.create seed) ~horizon:500.0 topo 1
    (Fault.Poisson { mtbf = 60.0; mttr = 10.0 });
  Engine.run ~until:500.0 engine;
  List.rev !events

let test_poisson_respects_seed () =
  let a = poisson_transitions 5 in
  let b = poisson_transitions 5 in
  let c = poisson_transitions 6 in
  Alcotest.(check bool) "schedule non-trivial" true (List.length a > 0);
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  Alcotest.(check bool) "different seed, different schedule" true (a <> c)

let test_parse_spec () =
  (match Fault.parse_spec "0:crash@120;1:mtbf=500,mttr=50;3:windows=10+5,40+5" with
  | [ (0, Fault.Crash_at t); (1, Fault.Poisson { mtbf; mttr }); (3, Fault.Windows ws) ] ->
      Alcotest.(check (float 1e-9)) "crash time" 120.0 t;
      Alcotest.(check (float 1e-9)) "mtbf" 500.0 mtbf;
      Alcotest.(check (float 1e-9)) "mttr" 50.0 mttr;
      Alcotest.(check int) "two windows" 2 (List.length ws)
  | _ -> Alcotest.fail "unexpected parse");
  (match Fault.parse_spec "2:crash@10+20" with
  | [ (2, Fault.Crash_recover { at; duration }) ] ->
      Alcotest.(check (float 1e-9)) "at" 10.0 at;
      Alcotest.(check (float 1e-9)) "duration" 20.0 duration
  | _ -> Alcotest.fail "crash@T+D should parse as crash+recover");
  List.iter
    (fun bad ->
      try
        ignore (Fault.parse_spec bad);
        Alcotest.fail (Printf.sprintf "%S should not parse" bad)
      with Invalid_argument _ -> ())
    [ ""; "x:crash@1"; "0:boom"; "0:crash@"; "0:mtbf=5"; "0:windows=" ]

(* ---------------------------------------------------- monitor suspicion *)

let test_monitor_suspects_dead_node () =
  let engine = Engine.create () in
  let topo = quiet_topo engine in
  let monitor =
    Monitor.create ~suspect_after:2 ~rng:(Rng.create 3) ~every:1.0 ~horizon:100.0 topo
  in
  Engine.run ~until:5.0 engine;
  Alcotest.(check bool) "healthy node unsuspected" false (Monitor.suspected monitor 1);
  Node.set_up (Topology.node topo 1) false;
  Engine.run ~until:6.2 engine;
  Alcotest.(check bool) "one miss is not yet suspicion" false (Monitor.suspected monitor 1);
  Engine.run ~until:8.5 engine;
  Alcotest.(check bool) "two misses suspect the node" true (Monitor.suspected monitor 1);
  Alcotest.(check (list int)) "suspect list" [ 1 ] (Monitor.suspects monitor);
  Node.set_up (Topology.node topo 1) true;
  Engine.run ~until:11.5 engine;
  Alcotest.(check bool) "an answered heartbeat clears suspicion" false
    (Monitor.suspected monitor 1)

(* ------------------------------------------- adaptive failover end-to-end *)

let crash_scenario ~faults =
  Scenario.make ~name:"test-crash"
    ~make_topo:(fun engine ->
      Topology.uniform engine ~n:3 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
    ~faults
    ~stages:(constant_stages ~n:2)
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.2) ~items:150 ~item_bytes:100.0 ())
    ~horizon:1e4 ()

let test_adaptive_completes_after_crash () =
  let seed = 11 in
  (* Probe the fault-free world for the mapping the static schedule (and,
     with high likelihood, the adaptive engine) starts from, then kill one
     of its nodes a third of the way in. *)
  let nominal = Baselines.static_model_best ~scenario:(crash_scenario ~faults:[]) ~seed () in
  let mapping = Aspipe_model.Mapping.to_array nominal.Baselines.mapping in
  let victim = mapping.(1) in
  let scenario =
    crash_scenario ~faults:[ (victim, Fault.Crash_at (0.3 *. nominal.Baselines.makespan)) ]
  in
  let static = Baselines.static_faulty ~label:"static" ~mapping ~scenario ~seed () in
  Alcotest.(check bool) "static DNFs" true (static.Baselines.finish = None);
  let report = Adaptive.run ~scenario ~seed () in
  Alcotest.(check int) "adaptive completes every item" 150
    (Trace.items_completed report.Adaptive.trace);
  Alcotest.(check bool) "at least one failover committed" true
    (report.Adaptive.failover_count >= 1);
  Alcotest.(check bool) "losses were re-dispatched" true
    (report.Adaptive.items_redispatched >= report.Adaptive.items_lost);
  let final = Aspipe_model.Mapping.to_array report.Adaptive.final_mapping in
  Alcotest.(check bool) "final mapping avoids the corpse" true
    (not (Array.exists (fun n -> n = victim) final))

let test_restart_baseline_completes_but_pays () =
  let seed = 11 in
  let nominal = Baselines.static_model_best ~scenario:(crash_scenario ~faults:[]) ~seed () in
  let mapping = Aspipe_model.Mapping.to_array nominal.Baselines.mapping in
  let scenario =
    crash_scenario ~faults:[ (mapping.(1), Fault.Crash_at (0.3 *. nominal.Baselines.makespan)) ]
  in
  let restart = Baselines.static_restart ~scenario ~seed () in
  (match restart.Baselines.finish with
  | None -> Alcotest.fail "restart should eventually complete"
  | Some f ->
      Alcotest.(check bool) "restart pays more than the fault-free run" true
        (f > nominal.Baselines.makespan));
  Alcotest.(check bool) "at least one restart happened" true (restart.Baselines.restarts >= 1)

(* ------------------------------------------------------------ determinism *)

let jsonl_of_run ~scenario ~seed =
  let buffer = Buffer.create 65536 in
  ignore
    (Adaptive.run
       ~instrument:(fun bus -> ignore (Bus.subscribe bus (Aspipe_obs.Jsonl.sink_to_buffer buffer)))
       ~scenario ~seed ());
  Buffer.contents buffer

let test_faulty_run_deterministic () =
  let scenario = crash_scenario ~faults:[ (1, Fault.Crash_at 10.0) ] in
  let a = jsonl_of_run ~scenario ~seed:11 in
  let b = jsonl_of_run ~scenario ~seed:11 in
  Alcotest.(check bool) "stream non-trivial" true (String.length a > 1000);
  Alcotest.(check bool) "fault events present" true
    (let needle = "node_crashed" in
     let len = String.length needle in
     let rec scan i = i + len <= String.length a && (String.sub a i len = needle || scan (i + 1)) in
     scan 0);
  Alcotest.(check bool) "same seed, byte-identical JSONL" true (String.equal a b)

let () =
  Alcotest.run "aspipe_fault"
    [
      ( "crash semantics",
        [
          Alcotest.test_case "loses exactly in-service + queued" `Quick
            test_crash_loses_exactly_in_service_and_queued;
          Alcotest.test_case "recovery replays the checkpoint" `Quick
            test_recovery_replays_checkpoint;
          Alcotest.test_case "failover re-dispatches to a survivor" `Quick
            test_failover_redispatches_to_survivor;
          Alcotest.test_case "stall diagnostic names the problem" `Quick
            test_stall_diagnostic_names_the_problem;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "windows drive liveness" `Quick test_windows_drive_liveness;
          Alcotest.test_case "poisson respects the seed" `Quick test_poisson_respects_seed;
          Alcotest.test_case "parse_spec grammar" `Quick test_parse_spec;
        ] );
      ( "detection",
        [ Alcotest.test_case "monitor suspects a dead node" `Quick test_monitor_suspects_dead_node ] );
      ( "end-to-end",
        [
          Alcotest.test_case "adaptive completes after a crash" `Slow
            test_adaptive_completes_after_crash;
          Alcotest.test_case "restart completes but pays" `Slow
            test_restart_baseline_completes_but_pays;
          Alcotest.test_case "faulty runs are deterministic" `Slow test_faulty_run_deterministic;
        ] );
    ]
