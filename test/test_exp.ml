(* Tests for the experiment harness: the registry, the shared helpers and
   quick-size sanity runs of the cheap experiments (the shape claims the
   full benchmark asserts at scale). *)

module Registry = Aspipe_exp.Registry
module Common = Aspipe_exp.Common
module Exp_model = Aspipe_exp.Exp_model
module Exp_forecast = Aspipe_exp.Exp_forecast
module Exp_scale = Aspipe_exp.Exp_scale

let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

(* ------------------------------------------------------------- Registry *)

let test_registry_complete () =
  Alcotest.(check int) "twenty-four experiments" 24 (List.length Registry.all);
  let ids = List.map (fun e -> e.Registry.id) Registry.all in
  Alcotest.(check int) "ids unique" 24 (List.length (List.sort_uniq compare ids));
  List.iteri
    (fun i id -> Alcotest.(check string) "ordered ids" (Printf.sprintf "E%d" (i + 1)) id)
    ids

(* Every listing surface must derive from the registry: the id list, the
   JSON rendering and [find] have to agree entry for entry, or the CLI's
   list-experiments and bench --only drift apart. *)
let test_registry_single_source () =
  Alcotest.(check (list string))
    "ids mirror all" (List.map (fun e -> e.Registry.id) Registry.all) Registry.ids;
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) "find agrees with ids" id e.Registry.id
      | None -> Alcotest.fail (Printf.sprintf "listed id %s not findable" id))
    Registry.ids;
  match Registry.to_json () with
  | Aspipe_obs.Json.List entries ->
      Alcotest.(check int) "json entry per experiment" (List.length Registry.ids)
        (List.length entries);
      List.iter2
        (fun id entry ->
          match Aspipe_obs.Json.member "id" entry with
          | Some (Aspipe_obs.Json.String j) -> Alcotest.(check string) "json id" id j
          | _ -> Alcotest.fail "json entry lacks an id field")
        Registry.ids entries
  | _ -> Alcotest.fail "to_json is not a list"

let test_registry_find () =
  (match Registry.find "e3" with
  | Some e -> Alcotest.(check string) "case-insensitive lookup" "E3" e.Registry.id
  | None -> Alcotest.fail "E3 not found");
  Alcotest.(check bool) "unknown id" true (Registry.find "E99" = None)

(* --------------------------------------------------------------- Common *)

let test_spearman () =
  check_close "perfect agreement" 1.0
    (Common.spearman [| 1.0; 2.0; 3.0; 4.0 |] [| 10.0; 20.0; 30.0; 40.0 |]);
  check_close "perfect reversal" (-1.0)
    (Common.spearman [| 1.0; 2.0; 3.0; 4.0 |] [| 4.0; 3.0; 2.0; 1.0 |]);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Common.spearman") (fun () ->
      ignore (Common.spearman [| 1.0 |] [| 1.0; 2.0 |]))

let test_scale () =
  Alcotest.(check int) "full size untouched" 500 (Common.scale ~quick:false 500);
  Alcotest.(check int) "quick divides" 100 (Common.scale ~quick:true 500);
  Alcotest.(check int) "quick floor" 20 (Common.scale ~quick:true 50)

let test_mean_ci () =
  let mean, ci = Common.mean_ci [ 2.0; 4.0 ] in
  check_close "mean" 3.0 mean;
  Alcotest.(check bool) "ci positive for spread data" true (ci > 0.0)

(* ----------------------------------------------- E1 shape at quick size *)

let test_e1_models_rank_like_simulator () =
  let rows = Exp_model.e1_rows ~quick:true in
  Alcotest.(check int) "nine pinned mappings" 9 (List.length rows);
  let rho_analytic, rho_ctmc = Exp_model.e1_rank_correlations rows in
  Alcotest.(check bool)
    (Printf.sprintf "ctmc ranks like the simulator (rho=%.2f)" rho_ctmc)
    true (rho_ctmc > 0.8);
  Alcotest.(check bool)
    (Printf.sprintf "analytic correlates (rho=%.2f)" rho_analytic)
    true (rho_analytic > 0.5);
  List.iter
    (fun (r : Exp_model.e1_row) ->
      Alcotest.(check bool) "ctmc is the conservative bound" true (r.ctmc <= r.simulated +. 0.2);
      Alcotest.(check bool) "analytic is the optimistic bound" true
        (r.analytic >= 0.8 *. r.simulated))
    rows

(* ----------------------------------------------- E2 shape at quick size *)

let test_e2_model_agrees_with_oracle () =
  let rows = Exp_model.e2_rows ~quick:true in
  Alcotest.(check int) "six scenarios" 6 (List.length rows);
  List.iter
    (fun (r : Exp_model.e2_row) ->
      let ratio = r.model_simulated /. r.oracle_simulated in
      Alcotest.(check bool)
        (Printf.sprintf "%s: model within 10%% of oracle (ratio %.3f)" r.label ratio)
        true (ratio > 0.9))
    rows

(* ----------------------------------------------- E9 shape at quick size *)

let test_e9_ensemble_never_catastrophic () =
  let rows = Exp_forecast.rows ~quick:true in
  Alcotest.(check int) "six signal families" 6 (List.length rows);
  List.iter
    (fun (r : Exp_forecast.row) ->
      let maes = List.map snd r.per_forecaster in
      let worst = List.fold_left Float.max 0.0 maes in
      let adaptive = List.assoc "adaptive" r.per_forecaster in
      Alcotest.(check bool)
        (Printf.sprintf "%s: ensemble not the worst" r.signal)
        true
        (adaptive < worst || worst = 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s: regret bounded" r.signal)
        true
        (Exp_forecast.ensemble_regret r < 0.15))
    rows

(* ----------------------------------------------- E6 decision-path costs *)

let test_e6_decision_path_is_fast () =
  let rows = Exp_scale.e6_rows ~quick:true in
  List.iter
    (fun (r : Exp_scale.e6_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "Ns=%d Np=%d: sub-second decisions" r.stages r.processors)
        true
        (r.auto_ms < 1000.0 && r.ctmc_solve_ms < 5000.0);
      Alcotest.(check int) "state space accounted" r.ctmc_states
        (int_of_float (3.0 ** Float.of_int r.stages)))
    rows

let () =
  Alcotest.run "aspipe_exp"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "single source" `Quick test_registry_single_source;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
      ( "common",
        [
          Alcotest.test_case "spearman" `Quick test_spearman;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "mean_ci" `Quick test_mean_ci;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "E1 ranking" `Slow test_e1_models_rank_like_simulator;
          Alcotest.test_case "E2 agreement" `Slow test_e2_model_agrees_with_oracle;
          Alcotest.test_case "E9 ensemble" `Quick test_e9_ensemble_never_catastrophic;
          Alcotest.test_case "E6 decision cost" `Quick test_e6_decision_path_is_fast;
        ] );
    ]
