(* Tests for the adaptive pattern itself: calibration, migration costs,
   policies, scenarios, the engine and the baselines. The headline
   behavioural claims of the reproduction — "the adaptive pipeline recovers
   from a load step that a static schedule cannot" — are asserted here at
   reduced scale. *)

module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Loadgen = Aspipe_grid.Loadgen
module Monitor = Aspipe_grid.Monitor
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Trace = Aspipe_grid.Trace
module Stage = Aspipe_skel.Stage
module Stream_spec = Aspipe_skel.Stream_spec
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search
module Calibration = Aspipe_core.Calibration
module Migration = Aspipe_core.Migration
module Policy = Aspipe_core.Policy
module Scenario = Aspipe_core.Scenario
module Adaptive = Aspipe_core.Adaptive
module Baselines = Aspipe_core.Baselines

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

(* ----------------------------------------------------------- Calibration *)

let test_calibration_exact_for_constant_work () =
  let stages = Stage.balanced ~n:3 ~work:2.0 () in
  let c = Calibration.run ~probes:3 ~measurement_noise:0.0 ~rng:(Rng.create 1) stages in
  Array.iter (fun w -> check_float "constant work measured exactly" 2.0 w)
    (Calibration.work_vector c);
  Array.iter (fun e -> check_float "zero relative error" 0.0 e)
    (Calibration.relative_error c stages)

let test_calibration_converges_with_probes () =
  let stages = [| Stage.make ~work:(Variate.Gamma { shape = 4.0; scale = 0.5 }) () |] in
  let c = Calibration.run ~probes:400 ~measurement_noise:0.01 ~rng:(Rng.create 2) stages in
  let estimate = Calibration.stage_estimate c 0 in
  check_close ~eps:0.15 "many probes approach the true mean 2.0" 2.0 estimate.Calibration.mean_work;
  Alcotest.(check int) "sample count recorded" 400 estimate.Calibration.samples;
  Alcotest.(check bool) "spread recorded" true (estimate.Calibration.stddev > 0.0)

let test_calibration_noise_bounded () =
  let stages = Stage.balanced ~n:2 ~work:1.0 () in
  let c = Calibration.run ~probes:100 ~measurement_noise:0.05 ~rng:(Rng.create 3) stages in
  let errors = Calibration.relative_error c stages in
  Array.iter (fun e -> Alcotest.(check bool) "within a few percent" true (e < 0.05)) errors

let test_calibration_validation () =
  let stages = Stage.balanced ~n:1 ~work:1.0 () in
  Alcotest.check_raises "0 probes" (Invalid_argument "Calibration.run: need at least one probe")
    (fun () -> ignore (Calibration.run ~probes:0 ~rng:(Rng.create 1) stages));
  let c = Calibration.run ~rng:(Rng.create 1) stages in
  Alcotest.check_raises "estimate index" (Invalid_argument "Calibration.stage_estimate")
    (fun () -> ignore (Calibration.stage_estimate c 5));
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Calibration.pp c) > 0)

(* ------------------------------------------------------------- Migration *)

let migration_spec () =
  {
    Costspec.stage_work = [| 1.0; 1.0; 1.0 |];
    node_rates = [| 10.0; 10.0 |];
    item_bytes = 1e3;
    output_bytes = Array.make 3 1e3;
    latency = [| [| 1e-4; 0.1 |]; [| 0.1; 1e-4 |] |];
    bandwidth = [| [| 1e9; 1e6 |]; [| 1e6; 1e9 |] |];
    user_latency = [| 1e-4; 1e-4 |];
    user_bandwidth = [| 1e9; 1e9 |];
  }

let test_migration_stages_moving () =
  let current = Mapping.of_array ~processors:2 [| 0; 0; 1 |] in
  let target = Mapping.of_array ~processors:2 [| 0; 1; 0 |] in
  Alcotest.(check (list int)) "stages 1 and 2 move" [ 1; 2 ]
    (Migration.stages_moving ~current ~target);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Migration.stages_moving: mapping lengths differ") (fun () ->
      ignore (Migration.stages_moving ~current ~target:(Mapping.of_array ~processors:2 [| 0 |])))

let test_migration_stall () =
  let spec = migration_spec () in
  let stages = Stage.balanced ~n:3 ~work:1.0 ~state_bytes:1e6 () in
  let current = Mapping.of_array ~processors:2 [| 0; 0; 1 |] in
  let model = { Migration.restart_penalty = 0.5 } in
  check_float "no move, no stall" 0.0
    (Migration.stall_seconds model ~spec ~stages ~current ~target:current);
  let target = Mapping.of_array ~processors:2 [| 0; 1; 1 |] in
  (* One stage moves 1e6 bytes over a 1e6 B/s, 0.1 s link: 1.1 s + 0.5. *)
  check_close ~eps:1e-9 "stall = transfer + restart" 1.6
    (Migration.stall_seconds model ~spec ~stages ~current ~target);
  (* Two stages moving concurrently: still the max, not the sum. *)
  let target2 = Mapping.of_array ~processors:2 [| 1; 1; 0 |] in
  check_close ~eps:1e-9 "parallel moves cost the max" 1.6
    (Migration.stall_seconds model ~spec ~stages ~current ~target:target2);
  check_float "bytes moving sums" 3e6
    (Migration.bytes_moving ~stages ~current ~target:target2)

(* ---------------------------------------------------------------- Policy *)

(* A hand-built context over a 2-stage, 2-node world where node 1 has become
   very slow, so moving everything to node 0 is clearly right. *)
let make_context ?(observed = 10.0) ?(adopted = 10.0) ?(items_remaining = 1000)
    ?(stall = 0.1) ?(time = 100.0) () =
  let spec =
    {
      Costspec.stage_work = [| 1.0; 1.0 |];
      node_rates = [| 10.0; 0.5 |];
      item_bytes = 1e3;
      output_bytes = Array.make 2 1e3;
      latency = [| [| 1e-4; 0.01 |]; [| 0.01; 1e-4 |] |];
      bandwidth = [| [| 1e9; 1e7 |]; [| 1e7; 1e9 |] |];
      user_latency = [| 1e-4; 1e-4 |];
      user_bandwidth = [| 1e9; 1e9 |];
    }
  in
  let predictor = Predictor.make spec in
  let current = Mapping.of_array ~processors:2 [| 0; 1 |] in
  {
    Policy.time;
    current;
    predictor;
    observed_throughput = observed;
    adopted_throughput = adopted;
    items_remaining;
    migration_stall = (fun _ -> stall);
    choose_best = (fun () -> Predictor.choose predictor);
    serving = None;
  }

let test_policy_never () =
  let policy = Policy.never () in
  Alcotest.(check string) "name" "never" (Policy.name policy);
  (match Policy.decide policy (make_context ()) with
  | Policy.Keep -> ()
  | Policy.Remap _ -> Alcotest.fail "never must keep")

let test_policy_periodic_remaps_on_gain () =
  let policy = Policy.periodic_best () in
  match Policy.decide policy (make_context ()) with
  | Policy.Remap m ->
      Alcotest.(check bool) "moves the stage off the dying node" true
        (Array.for_all (fun p -> p = 0) (Mapping.to_array m))
  | Policy.Keep -> Alcotest.fail "expected a remap"

let test_policy_periodic_respects_migration_cost () =
  let policy = Policy.periodic_best () in
  (* Two items left: nothing can amortize a 1000 s stall. *)
  match Policy.decide policy (make_context ~items_remaining:2 ~stall:1000.0 ()) with
  | Policy.Keep -> ()
  | Policy.Remap _ -> Alcotest.fail "must not migrate when it cannot amortize"

let test_policy_threshold_requires_degradation () =
  let policy = Policy.threshold ~drop:0.25 () in
  (* Observed right at expectation: no search, no remap. *)
  (match Policy.decide policy (make_context ~observed:10.0 ~adopted:10.0 ()) with
  | Policy.Keep -> ()
  | Policy.Remap _ -> Alcotest.fail "no degradation, no remap");
  (* Observed collapsed: remap. *)
  match Policy.decide policy (make_context ~observed:2.0 ~adopted:10.0 ()) with
  | Policy.Remap _ -> ()
  | Policy.Keep -> Alcotest.fail "expected remap on degradation"

let test_policy_threshold_cooldown () =
  let policy = Policy.threshold ~drop:0.25 ~cooldown:30.0 () in
  (match Policy.decide policy (make_context ~observed:2.0 ~adopted:10.0 ~time:100.0 ()) with
  | Policy.Remap _ -> ()
  | Policy.Keep -> Alcotest.fail "first trigger should fire");
  (* 10 s later, still inside the cooldown window. *)
  (match Policy.decide policy (make_context ~observed:2.0 ~adopted:10.0 ~time:110.0 ()) with
  | Policy.Keep -> ()
  | Policy.Remap _ -> Alcotest.fail "cooldown must suppress");
  (* 40 s later, outside the cooldown. *)
  match Policy.decide policy (make_context ~observed:2.0 ~adopted:10.0 ~time:140.0 ()) with
  | Policy.Remap _ -> ()
  | Policy.Keep -> Alcotest.fail "cooldown expired, should fire again"

let test_policy_always_best_small_gains () =
  let policy = Policy.always_best () in
  match Policy.decide policy (make_context ()) with
  | Policy.Remap _ -> ()
  | Policy.Keep -> Alcotest.fail "always_best should chase the gain"

(* -------------------------------------------------------------- Scenario *)

let small_scenario ?(loads = []) ?(items = 40) () =
  Scenario.make ~name:"test"
    ~make_topo:(fun engine ->
      Topology.uniform engine ~n:3 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
    ~loads
    ~stages:(Stage.balanced ~n:3 ~work:1.0 ~state_bytes:1e4 ())
    ~input:(Stream_spec.make ~items ~item_bytes:1e3 ())
    ~horizon:1e4 ()

let test_scenario_build_applies_loads () =
  let scenario = small_scenario ~loads:[ (1, Loadgen.Constant 0.3) ] () in
  let topo = Scenario.build scenario ~rng:(Rng.create 1) in
  check_float "load applied at build" 0.3 (Node.availability (Topology.node topo 1));
  check_float "other nodes untouched" 1.0 (Node.availability (Topology.node topo 0));
  Alcotest.(check int) "stage count" 3 (Scenario.stage_count scenario)

let test_scenario_validation () =
  Alcotest.check_raises "empty pipeline" (Invalid_argument "Scenario.make: empty pipeline")
    (fun () ->
      ignore
        (Scenario.make ~name:"x"
           ~make_topo:(fun engine ->
             Topology.uniform engine ~n:1 ~speed:1.0 ~latency:0.1 ~bandwidth:1.0 ())
           ~stages:[||]
           ~input:(Stream_spec.make ~items:1 ())
           ()))

(* -------------------------------------------------------------- Adaptive *)

let test_adaptive_completes_static_world () =
  let scenario = small_scenario () in
  (* The run is only a few seconds of virtual time; monitor densely so the
     report's sampling counters are exercised. *)
  let config =
    { Adaptive.default_config with monitor_every = 0.25; evaluate_every = 0.5 }
  in
  let report = Adaptive.run ~config ~scenario ~seed:5 () in
  Alcotest.(check int) "all items flow through" 40
    (Trace.items_completed report.Adaptive.trace);
  Alcotest.(check bool) "positive makespan" true (report.Adaptive.makespan > 0.0);
  Alcotest.(check bool) "monitors ran" true (report.Adaptive.monitor_samples > 0);
  Alcotest.(check string) "scenario name carried" "test" report.Adaptive.scenario_name

let test_adaptive_deterministic () =
  let scenario = small_scenario () in
  let a = Adaptive.run ~scenario ~seed:9 () in
  let b = Adaptive.run ~scenario ~seed:9 () in
  check_float "same seed, same makespan" a.Adaptive.makespan b.Adaptive.makespan;
  Alcotest.(check int) "same adaptation count" a.Adaptive.adaptation_count
    b.Adaptive.adaptation_count

let test_adaptive_seed_changes_world () =
  (* Different seeds give different monitor noise; the run still completes. *)
  let scenario = small_scenario () in
  let a = Adaptive.run ~scenario ~seed:1 () in
  Alcotest.(check int) "completes under any seed" 40 (Trace.items_completed a.Adaptive.trace)

(* The headline behaviour: a mid-run availability collapse on the node the
   schedule leans on. Static bleeds for the rest of the run; adaptive
   recovers. (Reduced-scale version of experiment E3.) *)
let step_scenario () =
  let items = 400 in
  Scenario.make ~name:"step"
    ~make_topo:(fun engine ->
      Topology.heterogeneous engine ~speeds:[| 12.0; 10.0; 10.0 |] ~latency:0.01 ~bandwidth:1e7 ())
    ~loads:[ (0, Loadgen.Step { at = 30.0; level = 0.15 }) ]
    ~stages:(Stage.balanced ~n:4 ~work:1.0 ~state_bytes:1e5 ())
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.25) ~items ~item_bytes:1e4 ())
    ~horizon:1e4 ()

let test_adaptive_beats_static_after_step () =
  let scenario = step_scenario () in
  let static = Baselines.static_model_best ~scenario ~seed:7 () in
  let adaptive = Adaptive.run ~scenario ~seed:7 () in
  Alcotest.(check bool) "at least one adaptation" true (adaptive.Adaptive.adaptation_count >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%.1f) at least 1.5x faster than static (%.1f)"
       adaptive.Adaptive.makespan static.Baselines.makespan)
    true
    (static.Baselines.makespan > 1.5 *. adaptive.Adaptive.makespan);
  (* The adaptation must be recorded in the trace with its context. *)
  match Trace.adaptations adaptive.Adaptive.trace with
  | [] -> Alcotest.fail "adaptation not recorded"
  | a :: _ ->
      Alcotest.(check bool) "recorded after the step" true (a.Trace.at >= 30.0);
      Alcotest.(check bool) "positive predicted gain" true (a.Trace.predicted_gain > 0.0)

let test_adaptive_never_policy_stays_put () =
  let scenario = step_scenario () in
  let config = { Adaptive.default_config with policy = (fun () -> Policy.never ()) } in
  let report = Adaptive.run ~config ~scenario ~seed:7 () in
  Alcotest.(check int) "no adaptations under never" 0 report.Adaptive.adaptation_count;
  Alcotest.(check bool) "mapping unchanged" true
    (Mapping.equal report.Adaptive.initial_mapping report.Adaptive.final_mapping)

let test_adaptive_blind_start_discovers_load () =
  (* Node 0 is secretly at 20% from the start; a blind engine must discover
     it and end with a mapping that avoids node 0. *)
  let scenario =
    Scenario.make ~name:"hidden"
      ~make_topo:(fun engine ->
        Topology.uniform engine ~n:3 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
      ~loads:[ (0, Loadgen.Constant 0.2) ]
      ~stages:(Stage.balanced ~n:3 ~work:1.0 ~state_bytes:1e4 ())
      ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.3) ~items:300 ~item_bytes:1e3 ())
      ~horizon:1e4 ()
  in
  let config =
    {
      Adaptive.default_config with
      initial_resource_reading = false;
      policy = (fun () -> Policy.periodic_best ());
    }
  in
  let report = Adaptive.run ~config ~scenario ~seed:11 () in
  Alcotest.(check bool) "adapted at least once" true (report.Adaptive.adaptation_count >= 1);
  Alcotest.(check bool) "final mapping avoids the loaded node" true
    (Array.for_all (fun p -> p <> 0) (Mapping.to_array report.Adaptive.final_mapping))



let test_adaptive_colocates_under_congestion () =
  (* E15 at reduced scale: all routes congest; the engine must end on fewer
     distinct nodes than it started with and beat the static schedule. *)
  let stages =
    Array.init 4 (fun i ->
        Stage.make ~name:(Printf.sprintf "n%d" i) ~output_bytes:5e5 ~state_bytes:1e6
          ~work:(Aspipe_util.Variate.Constant 1.0) ())
  in
  let scenario =
    Scenario.make ~name:"congestion-test"
      ~make_topo:(fun engine ->
        Topology.heterogeneous engine ~speeds:[| 12.0; 10.0; 10.0 |] ~latency:0.01
          ~bandwidth:1e7 ())
      ~net_loads:
        (List.map
           (fun pair -> (pair, Loadgen.Step { at = 25.0; level = 0.1 }))
           [ (0, 1); (0, 2); (1, 2) ])
      ~stages
      ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.3) ~items:300 ~item_bytes:1e4 ())
      ~horizon:1e4 ()
  in
  let static = Baselines.static_model_best ~scenario ~seed:15 () in
  let adaptive = Adaptive.run ~scenario ~seed:15 () in
  let distinct m = List.length (List.sort_uniq compare (Array.to_list (Mapping.to_array m))) in
  Alcotest.(check bool) "adapted" true (adaptive.Adaptive.adaptation_count >= 1);
  Alcotest.(check bool) "colocated onto fewer nodes" true
    (distinct adaptive.Adaptive.final_mapping < distinct adaptive.Adaptive.initial_mapping);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%.1f) beats static (%.1f)" adaptive.Adaptive.makespan
       static.Baselines.makespan)
    true
    (adaptive.Adaptive.makespan < static.Baselines.makespan)

(* --------------------------------------------------------- Adaptive_farm *)

module Adaptive_farm = Aspipe_core.Adaptive_farm
module Farm_sim = Aspipe_skel.Farm_sim

let farm_scenario ?(loads = []) ?(items = 200) () =
  Scenario.make ~name:"farm-test"
    ~make_topo:(fun engine ->
      Topology.heterogeneous engine ~speeds:[| 14.0; 12.0; 10.0; 6.0 |] ~latency:1e-3
        ~bandwidth:1e8 ())
    ~loads
    ~stages:
      [| Stage.make ~name:"task" ~output_bytes:1e3 ~state_bytes:0.0
           ~work:(Aspipe_util.Variate.Constant 1.0) () |]
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.05) ~items ~item_bytes:1e3 ())
    ~horizon:1e4 ()

let test_adaptive_farm_requires_one_stage () =
  let bad =
    Scenario.make ~name:"bad"
      ~make_topo:(fun engine ->
        Topology.uniform engine ~n:2 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
      ~stages:(Stage.balanced ~n:2 ~work:1.0 ())
      ~input:(Stream_spec.make ~items:1 ())
      ()
  in
  Alcotest.check_raises "multi-stage scenario rejected"
    (Invalid_argument "Adaptive_farm.run: the scenario must have exactly one (farmed) stage")
    (fun () -> ignore (Adaptive_farm.run ~scenario:bad ~seed:1 ()))

let test_adaptive_farm_static_completes () =
  let config = { Adaptive_farm.default_config with adapt = false } in
  let report = Adaptive_farm.run ~config ~scenario:(farm_scenario ()) ~seed:2 () in
  Alcotest.(check int) "all items emitted" 200
    (Trace.items_completed report.Adaptive_farm.trace);
  Alcotest.(check int) "no reconfigurations when static" 0
    report.Adaptive_farm.reconfigurations;
  (* The initial reading sees the heterogeneous speeds: the model drops the
     slow node 3 from the round-robin deal. *)
  Alcotest.(check (list int)) "slow node excluded" [ 0; 1; 2 ]
    report.Adaptive_farm.initial_workers

let test_adaptive_farm_evicts_degraded_worker () =
  let scenario =
    farm_scenario ~items:400 ~loads:[ (1, Loadgen.Step { at = 5.0; level = 0.1 }) ] ()
  in
  let static =
    Adaptive_farm.run
      ~config:{ Adaptive_farm.default_config with adapt = false }
      ~scenario ~seed:3 ()
  in
  let adaptive = Adaptive_farm.run ~scenario ~seed:3 () in
  Alcotest.(check bool) "reconfigured at least once" true
    (adaptive.Adaptive_farm.reconfigurations >= 1);
  Alcotest.(check bool) "degraded worker evicted" true
    (not (List.mem 1 adaptive.Adaptive_farm.final_workers));
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%.1f) faster than static (%.1f)"
       adaptive.Adaptive_farm.makespan static.Adaptive_farm.makespan)
    true
    (adaptive.Adaptive_farm.makespan < static.Adaptive_farm.makespan);
  Alcotest.(check bool) "history recorded" true
    (List.length adaptive.Adaptive_farm.worker_history
     = adaptive.Adaptive_farm.reconfigurations)

let test_adaptive_farm_deterministic () =
  let scenario = farm_scenario () in
  let a = Adaptive_farm.run ~scenario ~seed:5 () in
  let b = Adaptive_farm.run ~scenario ~seed:5 () in
  check_float "same seed, same makespan" a.Adaptive_farm.makespan b.Adaptive_farm.makespan


let test_adaptive_with_ctmc_evaluator () =
  (* The exact evaluator on a small instance: slower, same decisions class. *)
  let scenario = small_scenario () in
  let config =
    { Adaptive.default_config with evaluator = Predictor.Ctmc; monitor_every = 0.5;
      evaluate_every = 1.0 }
  in
  let report = Adaptive.run ~config ~scenario ~seed:13 () in
  Alcotest.(check int) "completes under the ctmc evaluator" 40
    (Trace.items_completed report.Adaptive.trace)

let test_adaptive_conservation_under_dynamics =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:10 ~name:"adaptive engine never loses items"
       QCheck2.Gen.(int_range 0 1000)
       (fun seed ->
         let scenario =
           Scenario.make ~name:"prop"
             ~make_topo:(fun engine ->
               Topology.uniform engine ~n:3 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
             ~loads:
               [
                 (0, Loadgen.Markov_on_off
                       { to_busy_rate = 0.2; to_free_rate = 0.2; busy_level = 0.2 });
                 (2, Loadgen.Random_walk { every = 1.0; sigma = 0.2; lo = 0.1; hi = 1.0 });
               ]
             ~stages:(Stage.balanced ~n:3 ~work:1.0 ~state_bytes:1e4 ())
             ~input:
               (Stream_spec.make ~arrival:(Stream_spec.Spaced 0.4) ~items:60 ~item_bytes:1e3 ())
             ~horizon:1e4 ()
         in
         let report = Adaptive.run ~scenario ~seed () in
         Trace.items_completed report.Adaptive.trace = 60
         && Array.map fst (Trace.completions report.Adaptive.trace) = Array.init 60 Fun.id))


(* --------------------------------------------------------- Adaptive_repl *)

module Adaptive_repl = Aspipe_core.Adaptive_repl

let repl_scenario ?(loads = []) ?(items = 300) () =
  Scenario.make ~name:"repl-test"
    ~make_topo:(fun engine ->
      Topology.uniform engine ~n:6 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
    ~loads
    ~stages:(Aspipe_workload.Synthetic.hot_stage ~n:3 ~hot:1 ~factor:3.0 ())
    ~input:(Stream_spec.make ~arrival:(Stream_spec.Spaced 0.105) ~items ~item_bytes:1e3 ())
    ~horizon:1e4 ()

let test_adaptive_repl_initial_allocation () =
  let config = { Adaptive_repl.default_config with adapt = false } in
  let report = Adaptive_repl.run ~config ~scenario:(repl_scenario ()) ~seed:4 () in
  Alcotest.(check int) "all items" 300 (Trace.items_completed report.Adaptive_repl.trace);
  (* Budget 6 over 3 stages with a 3x hot stage: the hot stage gets the
     extra replicas. *)
  Alcotest.(check bool) "hot stage replicated" true
    (List.length report.Adaptive_repl.initial_replicas.(1) >= 3);
  Alcotest.(check int) "no reconfiguration when static" 0
    report.Adaptive_repl.reconfigurations

let test_adaptive_repl_routes_around_collapse () =
  (* Node 1 carries a hot-stage replica; with arrivals near capacity its
     collapse is binding, so the engine must re-shape the replica sets. *)
  let scenario =
    repl_scenario ~items:400
      ~loads:[ (1, Loadgen.Step { at = 8.0; level = 0.05 }) ]
      ()
  in
  let static =
    Adaptive_repl.run ~config:{ Adaptive_repl.default_config with adapt = false } ~scenario
      ~seed:5 ()
  in
  let adaptive = Adaptive_repl.run ~scenario ~seed:5 () in
  Alcotest.(check bool) "reconfigured" true (adaptive.Adaptive_repl.reconfigurations >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive (%.1f) beats static (%.1f)" adaptive.Adaptive_repl.makespan
       static.Adaptive_repl.makespan)
    true
    (adaptive.Adaptive_repl.makespan < static.Adaptive_repl.makespan);
  Alcotest.(check int) "no items lost" 400 (Trace.items_completed adaptive.Adaptive_repl.trace)

let test_adaptive_repl_needs_enough_nodes () =
  let scenario =
    Scenario.make ~name:"tiny"
      ~make_topo:(fun engine ->
        Topology.uniform engine ~n:2 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
      ~stages:(Stage.balanced ~n:3 ~work:1.0 ())
      ~input:(Stream_spec.make ~items:1 ())
      ()
  in
  Alcotest.check_raises "too few nodes"
    (Invalid_argument "Adaptive_repl.run: need at least one node per stage") (fun () ->
      ignore (Adaptive_repl.run ~scenario ~seed:1 ()))


let test_adaptive_farm_least_loaded_mode () =
  let config =
    { Adaptive_farm.default_config with dispatch = Farm_sim.Least_loaded; adapt = false }
  in
  let report = Adaptive_farm.run ~config ~scenario:(farm_scenario ()) ~seed:6 () in
  (* Least-loaded keeps every node in the deal. *)
  Alcotest.(check (list int)) "all nodes enrolled" [ 0; 1; 2; 3 ]
    report.Adaptive_farm.initial_workers;
  Alcotest.(check int) "completes" 200 (Trace.items_completed report.Adaptive_farm.trace)

let test_adaptive_repl_records_adaptations_in_trace () =
  let scenario =
    repl_scenario ~items:400 ~loads:[ (1, Loadgen.Step { at = 8.0; level = 0.05 }) ] ()
  in
  let report = Adaptive_repl.run ~scenario ~seed:5 () in
  let recorded = Trace.adaptations report.Adaptive_repl.trace in
  Alcotest.(check int) "every reconfiguration is in the trace"
    report.Adaptive_repl.reconfigurations (List.length recorded);
  List.iter
    (fun (a : Trace.adaptation) ->
      Alcotest.(check bool) "positive predicted gain" true (a.Trace.predicted_gain > 0.0))
    recorded

(* ------------------------------------------------------------- Baselines *)

let test_baselines_static_shapes () =
  let scenario = small_scenario () in
  let rr = Baselines.static_round_robin ~scenario ~seed:3 in
  Alcotest.(check (array int)) "round robin" [| 0; 1; 2 |] (Mapping.to_array rr.Baselines.mapping);
  let blocks = Baselines.static_blocks ~scenario ~seed:3 in
  Alcotest.(check (array int)) "blocks" [| 0; 1; 2 |] (Mapping.to_array blocks.Baselines.mapping);
  let single = Baselines.static_single_node ~scenario ~seed:3 in
  Alcotest.(check (array int)) "single node" [| 0; 0; 0 |]
    (Mapping.to_array single.Baselines.mapping);
  Alcotest.(check bool) "single node slower" true
    (single.Baselines.makespan > rr.Baselines.makespan)

let test_baselines_identical_world () =
  let scenario = small_scenario () in
  let a = Baselines.run_static ~label:"a" ~mapping:[| 0; 1; 2 |] ~scenario ~seed:3 in
  let b = Baselines.run_static ~label:"b" ~mapping:[| 0; 1; 2 |] ~scenario ~seed:3 in
  check_float "same seed, identical run" a.Baselines.makespan b.Baselines.makespan

let test_baselines_oracle_dominates () =
  let scenario = small_scenario ~loads:[ (0, Loadgen.Constant 0.4) ] ~items:30 () in
  let oracle, all = Baselines.oracle_static ~scenario ~seed:3 () in
  Alcotest.(check int) "swept the full space" 27 (List.length all);
  List.iter
    (fun (_, makespan) ->
      Alcotest.(check bool) "oracle is the minimum" true
        (oracle.Baselines.makespan <= makespan +. 1e-9))
    all;
  let model_best = Baselines.static_model_best ~scenario ~seed:3 () in
  Alcotest.(check bool) "oracle <= model best" true
    (oracle.Baselines.makespan <= model_best.Baselines.makespan +. 1e-9)

let test_baselines_oracle_space_guard () =
  let scenario =
    Scenario.make ~name:"big"
      ~make_topo:(fun engine ->
        Topology.uniform engine ~n:8 ~speed:10.0 ~latency:1e-3 ~bandwidth:1e8 ())
      ~stages:(Stage.balanced ~n:8 ~work:1.0 ())
      ~input:(Stream_spec.make ~items:2 ())
      ()
  in
  Alcotest.check_raises "space too large"
    (Invalid_argument "Baselines.oracle_static: assignment space too large") (fun () ->
      ignore (Baselines.oracle_static ~scenario ~seed:1 ()))

let test_baselines_clairvoyant_completes () =
  let scenario = step_scenario () in
  let report = Baselines.clairvoyant ~scenario ~seed:7 in
  Alcotest.(check int) "all items" 400 (Trace.items_completed report.Adaptive.trace);
  Alcotest.(check string) "policy name" "always_best" report.Adaptive.policy_name

let test_baselines_model_best_beats_blind_round_robin () =
  let scenario = small_scenario ~loads:[ (0, Loadgen.Constant 0.2) ] () in
  let model = Baselines.static_model_best ~scenario ~seed:3 () in
  let blind = Baselines.static_round_robin ~scenario ~seed:3 in
  (* Round robin is forced onto the 20%-available node; the model, which
     knows, must win clearly. *)
  Alcotest.(check bool)
    (Printf.sprintf "model (%.2f) beats blind (%.2f)" model.Baselines.makespan
       blind.Baselines.makespan)
    true
    (model.Baselines.makespan < blind.Baselines.makespan);
  (* And the random baseline at least runs to completion. *)
  let random = Baselines.static_random ~scenario ~seed:3 in
  Alcotest.(check bool) "random completes" true (random.Baselines.makespan > 0.0)

let () =
  Alcotest.run "aspipe_core"
    [
      ( "calibration",
        [
          Alcotest.test_case "constant exact" `Quick test_calibration_exact_for_constant_work;
          Alcotest.test_case "converges" `Quick test_calibration_converges_with_probes;
          Alcotest.test_case "noise bounded" `Quick test_calibration_noise_bounded;
          Alcotest.test_case "validation" `Quick test_calibration_validation;
        ] );
      ( "migration",
        [
          Alcotest.test_case "stages moving" `Quick test_migration_stages_moving;
          Alcotest.test_case "stall model" `Quick test_migration_stall;
        ] );
      ( "policy",
        [
          Alcotest.test_case "never" `Quick test_policy_never;
          Alcotest.test_case "periodic remaps" `Quick test_policy_periodic_remaps_on_gain;
          Alcotest.test_case "amortization" `Quick test_policy_periodic_respects_migration_cost;
          Alcotest.test_case "threshold degradation" `Quick test_policy_threshold_requires_degradation;
          Alcotest.test_case "threshold cooldown" `Quick test_policy_threshold_cooldown;
          Alcotest.test_case "always best" `Quick test_policy_always_best_small_gains;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "build applies loads" `Quick test_scenario_build_applies_loads;
          Alcotest.test_case "validation" `Quick test_scenario_validation;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "completes" `Quick test_adaptive_completes_static_world;
          Alcotest.test_case "deterministic" `Quick test_adaptive_deterministic;
          Alcotest.test_case "any seed completes" `Quick test_adaptive_seed_changes_world;
          Alcotest.test_case "beats static after step" `Slow test_adaptive_beats_static_after_step;
          Alcotest.test_case "never policy" `Slow test_adaptive_never_policy_stays_put;
          Alcotest.test_case "blind start discovers load" `Slow
            test_adaptive_blind_start_discovers_load;
          Alcotest.test_case "ctmc evaluator" `Quick test_adaptive_with_ctmc_evaluator;
          Alcotest.test_case "colocates under congestion" `Slow
            test_adaptive_colocates_under_congestion;
          test_adaptive_conservation_under_dynamics;
        ] );
      ( "adaptive_farm",
        [
          Alcotest.test_case "one stage required" `Quick test_adaptive_farm_requires_one_stage;
          Alcotest.test_case "static completes" `Quick test_adaptive_farm_static_completes;
          Alcotest.test_case "evicts degraded worker" `Slow
            test_adaptive_farm_evicts_degraded_worker;
          Alcotest.test_case "deterministic" `Quick test_adaptive_farm_deterministic;
        ] );
      ( "adaptive_repl",
        [
          Alcotest.test_case "initial allocation" `Quick test_adaptive_repl_initial_allocation;
          Alcotest.test_case "routes around collapse" `Slow
            test_adaptive_repl_routes_around_collapse;
          Alcotest.test_case "needs enough nodes" `Quick test_adaptive_repl_needs_enough_nodes;
          Alcotest.test_case "least-loaded farm mode" `Quick test_adaptive_farm_least_loaded_mode;
          Alcotest.test_case "repl adaptations traced" `Slow
            test_adaptive_repl_records_adaptations_in_trace;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "static shapes" `Quick test_baselines_static_shapes;
          Alcotest.test_case "identical world" `Quick test_baselines_identical_world;
          Alcotest.test_case "oracle dominates" `Slow test_baselines_oracle_dominates;
          Alcotest.test_case "oracle space guard" `Quick test_baselines_oracle_space_guard;
          Alcotest.test_case "clairvoyant completes" `Slow test_baselines_clairvoyant_completes;
          Alcotest.test_case "model best vs blind" `Quick
            test_baselines_model_best_beats_blind_round_robin;
        ] );
    ]
