(* Unit and property tests for Aspipe_util: PRNG, variates, statistics,
   forecasters, time series and rendering. *)

module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Stats = Aspipe_util.Stats
module Forecast = Aspipe_util.Forecast
module Timeseries = Aspipe_util.Timeseries
module Render = Aspipe_util.Render

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy starts at same state" (Rng.bits64 a) (Rng.bits64 b);
  (* Advance only the copy; the parent's next draw must be unaffected. *)
  let parent_reference = Rng.copy a in
  ignore (Rng.bits64 b);
  ignore (Rng.bits64 b);
  Alcotest.(check int64) "parent unaffected by copy's progress" (Rng.bits64 parent_reference)
    (Rng.bits64 a)

let test_rng_split_diverges () =
  let parent = Rng.create 11 in
  let child = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split stream is distinct" true (!same < 4)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.fail "float outside [0,1)"
  done

let test_rng_float_mean () =
  let rng = Rng.create 13 in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  check_close ~eps:0.01 "uniform mean near 0.5" 0.5 (!acc /. Float.of_int n)

let test_rng_int_bounds =
  qtest "Rng.int stays in bounds"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 0 10_000))
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_shuffle_permutes =
  qtest "shuffle preserves the multiset"
    QCheck2.Gen.(pair (array_size (int_range 0 50) int) (int_range 0 9999))
    (fun (a, seed) ->
      let rng = Rng.create seed in
      let b = Array.copy a in
      Rng.shuffle rng b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let test_rng_pick () =
  let rng = Rng.create 2 in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    if not (Array.mem (Rng.pick rng a) a) then Alcotest.fail "pick outside array"
  done;
  Alcotest.check_raises "empty pick rejected" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

(* -------------------------------------------------------------- Variate *)

let sample_mean n draw =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. draw ()
  done;
  !acc /. Float.of_int n

let test_variate_exponential_mean () =
  let rng = Rng.create 21 in
  let mean = sample_mean 50_000 (fun () -> Variate.exponential rng ~rate:2.0) in
  check_close ~eps:0.02 "Exp(2) mean 0.5" 0.5 mean

let test_variate_exponential_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "rate 0 rejected"
    (Invalid_argument "Variate.exponential: rate must be positive") (fun () ->
      ignore (Variate.exponential rng ~rate:0.0))

let test_variate_normal_moments () =
  let rng = Rng.create 22 in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Variate.normal rng ~mean:3.0 ~stddev:2.0) in
  check_close ~eps:0.05 "normal mean" 3.0 (Stats.mean samples);
  check_close ~eps:0.1 "normal stddev" 2.0 (Stats.stddev samples)

let test_variate_lognormal_mean () =
  let rng = Rng.create 23 in
  let mu = 0.5 and sigma = 0.4 in
  let mean = sample_mean 100_000 (fun () -> Variate.lognormal rng ~mu ~sigma) in
  let expected = exp (mu +. (sigma *. sigma /. 2.0)) in
  check_close ~eps:(0.03 *. expected) "lognormal mean" expected mean

let test_variate_gamma_mean () =
  let rng = Rng.create 24 in
  let mean = sample_mean 50_000 (fun () -> Variate.gamma rng ~shape:3.0 ~scale:0.5) in
  check_close ~eps:0.05 "Gamma(3,0.5) mean 1.5" 1.5 mean

let test_variate_gamma_small_shape () =
  let rng = Rng.create 25 in
  let mean = sample_mean 100_000 (fun () -> Variate.gamma rng ~shape:0.5 ~scale:2.0) in
  check_close ~eps:0.05 "Gamma(0.5,2) mean 1.0" 1.0 mean;
  Alcotest.check_raises "shape 0 rejected"
    (Invalid_argument "Variate.gamma: parameters must be positive") (fun () ->
      ignore (Variate.gamma rng ~shape:0.0 ~scale:1.0))

let test_variate_erlang_mean () =
  let rng = Rng.create 26 in
  let mean = sample_mean 20_000 (fun () -> Variate.erlang rng ~k:4 ~rate:2.0) in
  check_close ~eps:0.05 "Erlang(4,2) mean 2.0" 2.0 mean

let test_variate_pareto_support () =
  let rng = Rng.create 27 in
  for _ = 1 to 10_000 do
    if Variate.pareto rng ~shape:2.5 ~scale:1.5 < 1.5 then Alcotest.fail "pareto below scale"
  done

let test_variate_weibull_positive () =
  let rng = Rng.create 28 in
  for _ = 1 to 10_000 do
    if Variate.weibull rng ~shape:1.5 ~scale:2.0 <= 0.0 then Alcotest.fail "weibull non-positive"
  done

let test_variate_bernoulli_extremes () =
  let rng = Rng.create 29 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Variate.bernoulli rng ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Variate.bernoulli rng ~p:1.0)
  done

let test_variate_categorical () =
  let rng = Rng.create 30 in
  for _ = 1 to 1000 do
    let i = Variate.categorical rng ~weights:[| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "zero weights never drawn" 1 i
  done;
  let counts = Array.make 2 0 in
  for _ = 1 to 20_000 do
    let i = Variate.categorical rng ~weights:[| 3.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close ~eps:0.03 "weight proportions" 0.75 (Float.of_int counts.(0) /. 20_000.0);
  Alcotest.check_raises "empty weights" (Invalid_argument "Variate.categorical: empty weights")
    (fun () -> ignore (Variate.categorical rng ~weights:[||]))

let test_variate_truncated () =
  let rng = Rng.create 31 in
  for _ = 1 to 1000 do
    let x = Variate.truncated ~lo:0.4 ~hi:0.6 (fun () -> Rng.float rng) in
    if not (x >= 0.4 && x <= 0.6) then Alcotest.fail "truncated out of bounds"
  done;
  (* An impossible-to-hit band gets clamped rather than looping forever. *)
  let x = Variate.truncated ~lo:5.0 ~hi:6.0 (fun () -> 0.0) in
  check_float "clamps after bounded attempts" 5.0 x

let test_variate_spec_means () =
  let rng = Rng.create 32 in
  let specs =
    [
      Variate.Constant 2.5;
      Variate.Uniform { lo = 1.0; hi = 3.0 };
      Variate.Exponential { rate = 0.5 };
      Variate.Gamma { shape = 2.0; scale = 1.5 };
      Variate.Normal { mean = 4.0; stddev = 1.0 };
    ]
  in
  List.iter
    (fun spec ->
      let expected = Variate.mean_of_spec spec in
      let measured = sample_mean 60_000 (fun () -> Variate.sample rng spec) in
      check_close
        ~eps:(0.05 *. Float.max 1.0 expected)
        (Format.asprintf "sampled mean of %a" Variate.pp_spec spec)
        expected measured)
    specs

let test_variate_pareto_infinite_mean () =
  check_float "Pareto shape<=1 has infinite mean" infinity
    (Variate.mean_of_spec (Variate.Pareto { shape = 1.0; scale = 2.0 }))

let test_variate_weibull_mean_formula () =
  (* Weibull with shape 1 is Exp(1/scale): mean = scale. *)
  check_close ~eps:1e-6 "Weibull shape=1 mean = scale" 3.0
    (Variate.mean_of_spec (Variate.Weibull { shape = 1.0; scale = 3.0 }))

(* ---------------------------------------------------------------- Stats *)

let test_welford_matches_batch =
  qtest "Welford mean/variance match batch formulas"
    QCheck2.Gen.(array_size (int_range 2 100) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let acc = Stats.Welford.create () in
      Array.iter (Stats.Welford.add acc) xs;
      let close a b =
        let scale = Float.max 1.0 (Float.abs a) in
        Float.abs (a -. b) < 1e-6 *. scale
      in
      close (Stats.mean xs) (Stats.Welford.mean acc)
      && close (Stats.variance xs) (Stats.Welford.variance acc))

let test_welford_merge =
  qtest "Welford merge equals single-stream accumulation"
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 50) (float_range (-100.0) 100.0))
        (array_size (int_range 1 50) (float_range (-100.0) 100.0)))
    (fun (xs, ys) ->
      let a = Stats.Welford.create () and b = Stats.Welford.create () in
      Array.iter (Stats.Welford.add a) xs;
      Array.iter (Stats.Welford.add b) ys;
      let merged = Stats.Welford.merge a b in
      let whole = Stats.Welford.create () in
      Array.iter (Stats.Welford.add whole) (Array.append xs ys);
      Stats.Welford.count merged = Stats.Welford.count whole
      && Float.abs (Stats.Welford.mean merged -. Stats.Welford.mean whole) < 1e-6
      && Float.abs (Stats.Welford.min merged -. Stats.Welford.min whole) < 1e-12
      && Float.abs (Stats.Welford.max merged -. Stats.Welford.max whole) < 1e-12)

let test_welford_empty () =
  let acc = Stats.Welford.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Stats.Welford.mean acc));
  Alcotest.(check int) "empty count" 0 (Stats.Welford.count acc)

let test_quantile_known () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median of 1..5" 3.0 (Stats.median xs);
  check_float "q0 is min" 1.0 (Stats.quantile xs 0.0);
  check_float "q1 is max" 5.0 (Stats.quantile xs 1.0);
  check_float "q0.25 interpolates" 2.0 (Stats.quantile xs 0.25);
  check_float "q0.125 interpolates between order stats" 1.5 (Stats.quantile xs 0.125)

let test_quantile_invalid () =
  Alcotest.check_raises "empty array" (Invalid_argument "Stats.quantile: empty array") (fun () ->
      ignore (Stats.quantile [||] 0.5));
  Alcotest.check_raises "q out of range" (Invalid_argument "Stats.quantile: q outside [0,1]")
    (fun () -> ignore (Stats.quantile [| 1.0 |] 1.5))

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.median xs);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] xs

let test_confidence95 () =
  let samples = [| 2.0; 4.0; 6.0; 8.0 |] in
  let mean, half = Stats.confidence95 samples in
  check_float "mean" 5.0 mean;
  check_close ~eps:1e-6 "half width 1.96 s/sqrt n" (1.96 *. Stats.stddev samples /. 2.0) half;
  let _, half1 = Stats.confidence95 [| 42.0 |] in
  check_float "n=1 has zero width" 0.0 half1

let test_mae_rmse () =
  check_float "mae" 1.0 (Stats.mae [| 1.0; 2.0; 3.0 |] [| 2.0; 1.0; 4.0 |]);
  check_float "rmse" 1.0 (Stats.rmse [| 1.0; 2.0; 3.0 |] [| 2.0; 1.0; 4.0 |]);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stats.mae: length mismatch")
    (fun () -> ignore (Stats.mae [| 1.0 |] [| 1.0; 2.0 |]))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -5.0; 15.0 ];
  let counts = Stats.Histogram.counts h in
  Alcotest.(check int) "total" 6 (Stats.Histogram.count h);
  Alcotest.(check int) "bin 0 (incl. saturated low)" 2 counts.(0);
  Alcotest.(check int) "bin 1" 2 counts.(1);
  Alcotest.(check int) "bin 9 (incl. saturated high)" 2 counts.(9);
  check_float "bin midpoint" 0.5 (Stats.Histogram.bin_mid h 0);
  Alcotest.(check bool) "pp renders" true
    (String.length (Format.asprintf "%a" Stats.Histogram.pp h) > 0)

let test_histogram_invalid () =
  Alcotest.check_raises "bins 0" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Stats.Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

(* ------------------------------------------------------------- Forecast *)

let feed forecaster values = List.iter (Forecast.observe forecaster) values

let test_forecast_last_value () =
  let f = Forecast.last_value ~fallback:0.7 () in
  check_float "fallback before data" 0.7 (Forecast.predict f);
  feed f [ 1.0; 2.0; 5.0 ];
  check_float "predicts last" 5.0 (Forecast.predict f)

let test_forecast_running_mean () =
  let f = Forecast.running_mean () in
  feed f [ 2.0; 4.0; 6.0 ];
  check_float "predicts mean" 4.0 (Forecast.predict f)

let test_forecast_sliding_mean () =
  let f = Forecast.sliding_mean ~window:3 () in
  feed f [ 100.0; 1.0; 2.0; 3.0 ];
  check_float "window drops the old value" 2.0 (Forecast.predict f)

let test_forecast_sliding_median_robust () =
  let f = Forecast.sliding_median ~window:5 () in
  feed f [ 1.0; 1.0; 1.0; 1.0; 100.0 ];
  check_float "median shrugs off the spike" 1.0 (Forecast.predict f)

let test_forecast_ewma_formula () =
  let f = Forecast.ewma ~gain:0.5 () in
  feed f [ 10.0 ];
  check_float "initializes at first value" 10.0 (Forecast.predict f);
  feed f [ 20.0 ];
  check_float "ewma update" 15.0 (Forecast.predict f);
  feed f [ 20.0 ];
  check_float "ewma update again" 17.5 (Forecast.predict f)

let test_forecast_ewma_invalid () =
  Alcotest.check_raises "gain 0 rejected" (Invalid_argument "Forecast.ewma: gain must be in (0,1]")
    (fun () -> ignore (Forecast.ewma ~gain:0.0 ()))

let test_forecast_error_tracking () =
  let f = Forecast.last_value () in
  Alcotest.(check bool) "mse nan before enough data" true (Float.is_nan (Forecast.mse f));
  feed f [ 1.0; 2.0; 2.0 ];
  (* errors: |1-2| then |2-2| -> mse (1+0)/2 *)
  check_float "mse" 0.5 (Forecast.mse f);
  check_float "mae" 0.5 (Forecast.mae f)

let test_forecast_adaptive_constant_signal () =
  let f = Forecast.adaptive () in
  feed f (List.init 50 (fun _ -> 0.42));
  check_close ~eps:1e-9 "constant signal learned exactly" 0.42 (Forecast.predict f);
  Alcotest.(check bool) "members exposed" true (List.length (Forecast.members f) >= 10)

let test_forecast_adaptive_tracks_step () =
  let f = Forecast.adaptive () in
  let last = Forecast.last_value () in
  let signal = List.init 40 (fun i -> if i < 20 then 0.9 else 0.2) in
  List.iter
    (fun v ->
      Forecast.observe f v;
      Forecast.observe last v)
    signal;
  Alcotest.(check bool) "ensemble no worse than 2x the best primitive here" true
    (Forecast.mae f <= (2.0 *. Forecast.mae last) +. 1e-9)

let test_forecast_window_invalid () =
  Alcotest.check_raises "window 0" (Invalid_argument "Forecast: window must be positive")
    (fun () -> ignore (Forecast.sliding_mean ~window:0 ()))


let test_forecast_trend_extrapolates () =
  let f = Forecast.trend ~gain:0.5 () in
  (* A steady ramp: the trend forecaster should predict ahead of the last
     value, the plain last-value forecaster always lags by one step. *)
  let last = Forecast.last_value () in
  List.iter
    (fun v ->
      Forecast.observe f v;
      Forecast.observe last v)
    (List.init 30 (fun i -> Float.of_int i /. 10.0));
  Alcotest.(check bool) "trend beats last value on a ramp" true
    (Forecast.mae f < Forecast.mae last)

let test_forecast_ar1_fits_autoregression () =
  (* x_t = 0.5 x_{t-1} + 1, from x_0 = 0: converges to 2. AR(1) should learn
     the recurrence almost exactly. *)
  let f = Forecast.ar1 () in
  let x = ref 0.0 in
  for _ = 1 to 60 do
    Forecast.observe f !x;
    x := (0.5 *. !x) +. 1.0
  done;
  let predicted = Forecast.predict f in
  let expected = (0.5 *. 2.0) +. 1.0 in
  check_close ~eps:0.01 "ar1 one-step prediction" expected predicted

let test_forecast_ar1_before_fit () =
  let f = Forecast.ar1 ~fallback:0.3 () in
  check_float "fallback before data" 0.3 (Forecast.predict f);
  Forecast.observe f 0.9;
  check_float "last value until identifiable" 0.9 (Forecast.predict f)

(* ---------------------------------------------------------------- Csvio *)

module Csvio = Aspipe_util.Csvio

let test_csv_escaping () =
  Alcotest.(check string) "plain untouched" "abc" (Csvio.escape_field "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csvio.escape_field "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csvio.escape_field "a\"b")

let test_csv_encode () =
  Alcotest.(check string) "rows joined" "a,b\n1,\"x,y\"\n"
    (Csvio.encode_rows [ [ "a"; "b" ]; [ "1"; "x,y" ] ])

let test_csv_table_roundtrip () =
  let table = Render.Table.create ~title:"t" ~columns:[ "c1"; "c2" ] in
  Render.Table.add_row table [ "v1"; "v2" ];
  Alcotest.(check (list (list string))) "header + rows" [ [ "c1"; "c2" ]; [ "v1"; "v2" ] ]
    (Csvio.table_rows table)

let test_csv_series_rows () =
  let rows = Csvio.series_rows [ Render.Series.make "s" [| (1.0, 2.0) |] ] in
  Alcotest.(check (list (list string))) "long format" [ [ "series"; "x"; "y" ]; [ "s"; "1"; "2" ] ]
    rows

let test_csv_save_files () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "aspipe_csv_test" in
  let table = Render.Table.create ~title:"t" ~columns:[ "a" ] in
  Render.Table.add_row table [ "1" ];
  let path = Csvio.save_table ~dir ~basename:"demo" table in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "header written" "a" line

(* ----------------------------------------------------------- Timeseries *)

let test_timeseries_eval () =
  let ts = Timeseries.of_points ~initial:1.0 [ (10.0, 2.0); (20.0, 3.0) ] in
  check_float "before first point" 1.0 (Timeseries.value_at ts 5.0);
  check_float "at a point" 2.0 (Timeseries.value_at ts 10.0);
  check_float "between points" 2.0 (Timeseries.value_at ts 15.0);
  check_float "after last" 3.0 (Timeseries.value_at ts 25.0)

let test_timeseries_append_only () =
  let ts = Timeseries.create () in
  Timeseries.add ts 5.0 1.0;
  Alcotest.check_raises "past insert rejected"
    (Invalid_argument "Timeseries.add: time must be non-decreasing") (fun () ->
      Timeseries.add ts 4.0 2.0)

let test_timeseries_same_instant_overwrites () =
  let ts = Timeseries.create () in
  Timeseries.add ts 5.0 1.0;
  Timeseries.add ts 5.0 9.0;
  check_float "same-time update supersedes" 9.0 (Timeseries.value_at ts 5.0);
  Alcotest.(check int) "one point kept" 1 (List.length (Timeseries.points ts))

let test_timeseries_integrate () =
  let ts = Timeseries.of_points ~initial:0.0 [ (0.0, 2.0); (10.0, 4.0) ] in
  check_float "integral over constant piece" 20.0 (Timeseries.integrate ts ~lo:0.0 ~hi:10.0);
  check_float "integral across a breakpoint" 18.0 (Timeseries.integrate ts ~lo:5.0 ~hi:12.0);
  check_float "empty window" 0.0 (Timeseries.integrate ts ~lo:3.0 ~hi:3.0);
  check_float "mean over window" 2.0 (Timeseries.mean_over ts ~lo:0.0 ~hi:10.0)

let test_timeseries_integrate_matches_samples =
  qtest ~count:100 "integrate agrees with fine Riemann sampling"
    QCheck2.Gen.(list_size (int_range 1 10) (pair (float_range 0.0 100.0) (float_range 0.0 5.0)))
    (fun points ->
      let dedup = List.sort_uniq (fun (a, _) (b, _) -> Float.compare a b) points in
      let ts = Timeseries.of_points ~initial:1.0 dedup in
      let lo = 0.0 and hi = 110.0 in
      let exact = Timeseries.integrate ts ~lo ~hi in
      let step = 0.01 in
      let samples = Timeseries.sample ts ~lo ~hi:(hi -. step) ~step in
      let riemann = Array.fold_left (fun acc (_, v) -> acc +. (v *. step)) 0.0 samples in
      Float.abs (exact -. riemann) < 0.5)

let test_timeseries_duplicate_points () =
  Alcotest.check_raises "duplicate timestamps rejected"
    (Invalid_argument "Timeseries.of_points: duplicate timestamp") (fun () ->
      ignore (Timeseries.of_points [ (1.0, 2.0); (1.0, 3.0) ]))

let test_timeseries_sample_grid () =
  let ts = Timeseries.of_points ~initial:0.0 [ (0.0, 1.0) ] in
  let samples = Timeseries.sample ts ~lo:0.0 ~hi:1.0 ~step:0.25 in
  Alcotest.(check int) "5 samples over [0,1] at 0.25" 5 (Array.length samples);
  check_float "first sample x" 0.0 (fst samples.(0));
  check_float "last sample x" 1.0 (fst samples.(4))

(* --------------------------------------------------------------- Render *)

let test_table_render () =
  let table = Render.Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Render.Table.add_row table [ "x"; "y" ];
  Render.Table.add_float_row table ("z", [ 1.5 ]);
  let s = Render.Table.to_string table in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (string_contains s needle))
    [ "demo"; "x"; "y"; "1.5" ]

let test_table_nan_renders_dash () =
  let table = Render.Table.create ~title:"missing" ~columns:[ "label"; "v1"; "v2" ] in
  Render.Table.add_float_row table ("row", [ nan; 2.5 ]);
  (match Render.Table.rows table with
  | [ [ _; c1; c2 ] ] ->
      Alcotest.(check string) "NaN cell is a dash" "-" c1;
      Alcotest.(check string) "finite cell unaffected" "2.5" c2
  | _ -> Alcotest.fail "expected one three-cell row");
  Alcotest.(check bool) "rendered table has no literal nan" false
    (string_contains (Render.Table.to_string table) "nan")

let test_table_row_width () =
  let table = Render.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "row width mismatch" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Render.Table.add_row table [ "only-one" ])

let test_plot () =
  let series = [ Render.Series.make "s" [| (0.0, 0.0); (1.0, 1.0); (2.0, 4.0) |] ] in
  let s = Render.plot series in
  Alcotest.(check bool) "plot non-empty" true (String.length s > 100);
  Alcotest.(check string) "empty plot" "(empty plot)\n" (Render.plot [])

(* ------------------------------------------------- cross-cutting properties *)

(* The campaign's property battery: statistics against naive oracles,
   conservation laws of the time-series resampler, forecaster fixed points
   and statistical independence of split RNG streams. *)

let nonempty_floats =
  QCheck2.Gen.(list_size (int_range 1 200) (float_range (-1e3) 1e3))

let test_prop_mean_matches_fold =
  qtest "mean matches the naive fold"
    nonempty_floats
    (fun xs ->
      let a = Array.of_list xs in
      let oracle = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean a -. oracle) <= 1e-9 *. Float.max 1.0 (Float.abs oracle))

let test_prop_variance_matches_fold =
  qtest "variance matches the two-pass fold"
    QCheck2.Gen.(list_size (int_range 2 200) (float_range (-1e3) 1e3))
    (fun xs ->
      let a = Array.of_list xs in
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let oracle =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      Float.abs (Stats.variance a -. oracle) <= 1e-6 *. Float.max 1.0 oracle)

let test_prop_quantile_monotone =
  qtest "quantile is monotone in q"
    QCheck2.Gen.(triple nonempty_floats (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (xs, q1, q2) ->
      let a = Array.of_list xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile a lo <= Stats.quantile a hi)

let test_prop_quantile_bounded =
  qtest "quantile stays within the sample range"
    QCheck2.Gen.(pair nonempty_floats (float_range 0.0 1.0))
    (fun (xs, q) ->
      let a = Array.of_list xs in
      let v = Stats.quantile a q in
      let lo = List.fold_left Float.min infinity xs
      and hi = List.fold_left Float.max neg_infinity xs in
      v >= lo && v <= hi)

let test_prop_resample_conserves_integral =
  (* A piecewise-constant series whose breakpoints sit on the sampling
     grid: summing sample · step over [0, n) must reproduce the exact
     integral — resampling a step signal on its own grid loses nothing. *)
  qtest ~count:100 "resampling on the breakpoint grid conserves the integral"
    QCheck2.Gen.(list_size (int_range 1 40) (float_range (-50.0) 50.0))
    (fun levels ->
      let n = List.length levels in
      let points = List.mapi (fun i v -> (float_of_int i, v)) levels in
      let ts = Timeseries.of_points ~initial:0.0 points in
      let hi = float_of_int n in
      let integral = Timeseries.integrate ts ~lo:0.0 ~hi in
      let samples = Timeseries.sample ts ~lo:0.0 ~hi ~step:1.0 in
      let riemann =
        Array.fold_left
          (fun acc (t, v) -> if t < hi then acc +. v else acc)
          0.0 samples
      in
      Float.abs (riemann -. integral) <= 1e-6 *. Float.max 1.0 (Float.abs integral))

let test_prop_forecast_constant_fixed_point =
  (* Every forecaster in the bank (and the NWS ensemble on top) must treat
     a constant signal as its own forecast. *)
  qtest ~count:100 "constant series => constant forecast"
    QCheck2.Gen.(pair (float_range (-100.0) 100.0) (int_range 2 50))
    (fun (c, n) ->
      List.for_all
        (fun forecaster ->
          for _ = 1 to n do
            Forecast.observe forecaster c
          done;
          Float.abs (Forecast.predict forecaster -. c) <= 1e-9 *. Float.max 1.0 (Float.abs c))
        [
          Forecast.last_value ();
          Forecast.running_mean ();
          Forecast.sliding_mean ~window:5 ();
          Forecast.sliding_median ~window:5 ();
          Forecast.ewma ~gain:0.3 ();
          Forecast.adaptive ();
        ])

(* Pearson chi-square statistic of [counts] against a uniform expectation. *)
let chi_square counts total =
  let cells = Array.length counts in
  let expected = float_of_int total /. float_of_int cells in
  Array.fold_left
    (fun acc observed ->
      let d = float_of_int observed -. expected in
      acc +. (d *. d /. expected))
    0.0 counts

let test_rng_split_chi_square () =
  (* Independence smoke test: after a split, bucket (parent, child) output
     pairs into a 8×8 joint table. Dependence between the streams shows up
     as non-uniform cells. 4096 samples over 64 cells (63 df): the 99.9%
     point is ≈ 103, and the draws are deterministic per seed, so this
     never flakes — it only fails if split correlation actually appears. *)
  List.iter
    (fun seed ->
      let parent = Rng.create seed in
      let child = Rng.split parent in
      let joint = Array.make 64 0 in
      let marginal_p = Array.make 8 0 and marginal_c = Array.make 8 0 in
      let samples = 4096 in
      for _ = 1 to samples do
        let a = Rng.int parent 8 and b = Rng.int child 8 in
        joint.((a * 8) + b) <- joint.((a * 8) + b) + 1;
        marginal_p.(a) <- marginal_p.(a) + 1;
        marginal_c.(b) <- marginal_c.(b) + 1
      done;
      let check name stat bound =
        if stat > bound then
          Alcotest.failf "seed %d: %s chi-square %.1f exceeds %.1f" seed name stat bound
      in
      (* 7 df at 99.9%: ≈ 24.3. *)
      check "parent marginal" (chi_square marginal_p samples) 24.3;
      check "child marginal" (chi_square marginal_c samples) 24.3;
      check "joint" (chi_square joint samples) 103.0)
    [ 1; 2; 42; 1234; 99991 ]

(* ----------------------------------------------------------------- Ring *)

module Ring = Aspipe_util.Ring

let test_ring_fifo () =
  let r = Ring.create ~dummy:0 in
  Alcotest.(check bool) "fresh is empty" true (Ring.is_empty r);
  for i = 1 to 100 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 100 (Ring.length r);
  Alcotest.(check int) "peek is front" 1 (Ring.peek r);
  for i = 1 to 100 do
    Alcotest.(check int) "fifo order" i (Ring.pop r)
  done;
  Alcotest.(check bool) "drained" true (Ring.is_empty r);
  Alcotest.check_raises "pop empty" (Invalid_argument "Ring.pop: empty") (fun () ->
      ignore (Ring.pop r))

let test_ring_push_front () =
  let r = Ring.create ~dummy:0 in
  Ring.push r 3;
  Ring.push r 4;
  Ring.push_front r 2;
  Ring.push_front r 1;
  let got = ref [] in
  Ring.iter r (fun x -> got := x :: !got);
  Alcotest.(check (list int)) "front-to-back" [ 1; 2; 3; 4 ] (List.rev !got);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  Ring.push r 9;
  Alcotest.(check int) "usable after clear" 9 (Ring.pop r)

(* Model check: a ring driven by a random push/push_front/pop script
   behaves exactly like a list-backed deque, across growth and
   wrap-around. *)
let test_prop_ring_matches_list_model =
  let open QCheck2.Gen in
  let op = int_range 0 3 in
  qtest "Ring matches a list-model deque" (list_size (int_range 0 400) op) (fun ops ->
      let r = Ring.create ~dummy:(-1) in
      let model = ref [] in
      let counter = ref 0 in
      List.iter
        (fun op ->
          incr counter;
          match op with
          | 0 | 3 ->
              Ring.push r !counter;
              model := !model @ [ !counter ]
          | 1 ->
              Ring.push_front r !counter;
              model := !counter :: !model
          | _ -> (
              match !model with
              | [] -> assert (Ring.is_empty r)
              | x :: rest ->
                  model := rest;
                  assert (Ring.pop r = x)))
        ops;
      let got = ref [] in
      Ring.iter r (fun x -> got := x :: !got);
      List.rev !got = !model && Ring.length r = List.length !model)

(* ----------------------------------------------------------------- Spsc *)

module Spsc = Aspipe_util.Spsc

let test_spsc_capacity_rounding () =
  List.iter
    (fun (req, want) ->
      Alcotest.(check int)
        (Printf.sprintf "capacity %d rounds to %d" req want)
        want
        (Spsc.capacity (Spsc.create ~capacity:req)))
    [ (1, 1); (2, 2); (3, 4); (5, 8); (64, 64); (100, 128) ];
  Alcotest.check_raises "capacity 0" (Invalid_argument "Spsc.create: capacity must be positive")
    (fun () -> ignore (Spsc.create ~capacity:0))

let test_spsc_fifo_single_domain () =
  let q = Spsc.create ~capacity:4 in
  Alcotest.(check int) "fresh is empty" 0 (Spsc.length q);
  Alcotest.(check (option int)) "try_pop empty" None (Spsc.try_pop q);
  for i = 1 to 4 do
    Alcotest.(check bool) "push with room" true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "full rejects" false (Spsc.try_push q 5);
  Alcotest.(check int) "length at capacity" 4 (Spsc.length q);
  for i = 1 to 4 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Spsc.try_pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Spsc.try_pop q);
  (* Wrap-around: the monotone indices must address slots correctly long
     past the physical end of the buffer. *)
  for i = 1 to 100 do
    Spsc.push q i;
    Alcotest.(check (option int)) "wraps" (Some i) (Spsc.pop q)
  done

let test_spsc_close_semantics () =
  let q = Spsc.create ~capacity:8 in
  Spsc.push q 1;
  Spsc.push q 2;
  Alcotest.(check bool) "open" false (Spsc.is_closed q);
  Spsc.close q;
  Spsc.close q;
  (* idempotent *)
  Alcotest.(check bool) "closed" true (Spsc.is_closed q);
  Alcotest.check_raises "push after close" Spsc.Closed (fun () -> Spsc.push q 3);
  Alcotest.check_raises "try_push after close" Spsc.Closed (fun () ->
      ignore (Spsc.try_push q 3));
  Alcotest.(check (option int)) "queued items drain" (Some 1) (Spsc.pop q);
  Alcotest.(check (option int)) "in order" (Some 2) (Spsc.pop q);
  Alcotest.(check (option int)) "then exhausted" None (Spsc.pop q);
  Alcotest.(check (option int)) "stays exhausted" None (Spsc.pop q)

let test_spsc_chunk_roundtrip () =
  let q = Spsc.create ~capacity:8 in
  let src = Array.init 6 (fun i -> Some (i * 10)) in
  Spsc.push_chunk q src ~pos:0 ~len:6;
  Alcotest.(check int) "chunk in" 6 (Spsc.length q);
  let dst = Array.make 8 None in
  let n = Spsc.pop_chunk q dst ~pos:1 ~len:4 in
  Alcotest.(check int) "partial chunk out" 4 n;
  for k = 0 to 3 do
    Alcotest.(check (option int)) "values at pos offset" (Some (k * 10)) dst.(1 + k)
  done;
  Alcotest.(check int) "rest of chunk" 2 (Spsc.pop_chunk q dst ~pos:0 ~len:8);
  Spsc.close q;
  Alcotest.(check int) "pop_chunk closed+drained" 0 (Spsc.pop_chunk q dst ~pos:0 ~len:8);
  Alcotest.(check int) "pop_chunk len 0" 0 (Spsc.pop_chunk q dst ~pos:0 ~len:0);
  Alcotest.check_raises "push_chunk after close" Spsc.Closed (fun () ->
      Spsc.push_chunk q src ~pos:0 ~len:1);
  Alcotest.check_raises "push_chunk bounds"
    (Invalid_argument "Spsc.push_chunk: window out of bounds") (fun () ->
      Spsc.push_chunk q src ~pos:4 ~len:4);
  Alcotest.check_raises "pop_chunk bounds"
    (Invalid_argument "Spsc.pop_chunk: window out of bounds") (fun () ->
      ignore (Spsc.pop_chunk q dst ~pos:7 ~len:2))

(* Model check: a ring driven by a random script of non-blocking operations
   (try_push / try_pop / space-clipped chunk push / chunk pop / close)
   behaves exactly like a FIFO list with a closed flag, across every
   capacity and past wrap-around. Blocking variants are exercised by the
   two-domain tests below; here every call is chosen so it cannot park. *)
let test_prop_spsc_matches_list_model =
  let open QCheck2.Gen in
  let op = pair (int_range 0 4) (int_range 1 5) in
  let script = pair (int_range 1 6) (list_size (int_range 0 300) op) in
  qtest "Spsc matches a list model" script (fun (req_cap, ops) ->
      let q = Spsc.create ~capacity:req_cap in
      let cap = Spsc.capacity q in
      let model = ref [] in
      (* head of the list = oldest item *)
      let closed = ref false in
      let counter = ref 0 in
      let ok = ref true in
      let check b = if not b then ok := false in
      List.iter
        (fun (op, k) ->
          if !ok then
            match op with
            | 0 ->
                incr counter;
                let x = !counter in
                if !closed then
                  check
                    (match Spsc.try_push q x with
                    | exception Spsc.Closed -> true
                    | _ -> false)
                else if List.length !model < cap then begin
                  check (Spsc.try_push q x);
                  model := !model @ [ x ]
                end
                else check (not (Spsc.try_push q x))
            | 1 -> (
                match !model with
                | [] -> check (Spsc.try_pop q = None)
                | x :: rest ->
                    model := rest;
                    check (Spsc.try_pop q = Some x))
            | 2 ->
                let free = cap - List.length !model in
                let n = min k free in
                if (not !closed) && n > 0 then begin
                  let xs = List.init n (fun i -> !counter + 1 + i) in
                  counter := !counter + n;
                  Spsc.push_chunk q (Array.of_list (List.map Option.some xs)) ~pos:0 ~len:n;
                  model := !model @ xs
                end
            | 3 ->
                let avail = List.length !model in
                if avail > 0 then begin
                  let dst = Array.make k None in
                  let n = Spsc.pop_chunk q dst ~pos:0 ~len:k in
                  (* The count may be partial — a stale tail snapshot
                     under-reports availability — but never zero while items
                     remain, and never more than requested or present. *)
                  check (n >= 1 && n <= min k avail);
                  let rec consume i remaining =
                    if i >= n then remaining
                    else
                      match remaining with
                      | x :: rest ->
                          check (dst.(i) = Some x);
                          consume (i + 1) rest
                      | [] ->
                          check false;
                          []
                  in
                  model := consume 0 !model
                end
                else if !closed then
                  check (Spsc.pop_chunk q (Array.make k None) ~pos:0 ~len:k = 0)
                else check (Spsc.try_pop q = None)
            | _ ->
                Spsc.close q;
                closed := true)
        ops;
      check (Spsc.length q = List.length !model);
      !ok)

(* -------------------------------------------- Spsc under two real domains *)

(* Producer and consumer on separate domains, across the capacity × batch
   grid the backend actually uses: every item must arrive exactly once, in
   order, and the producer's close-after-last-push must leave nothing
   stranded. A lost item, reorder or lost wake-up hangs or fails the case. *)
let spsc_stress ~capacity ~batch ~items () =
  let q = Spsc.create ~capacity in
  let producer =
    Domain.spawn (fun () ->
        if batch = 1 then
          for i = 0 to items - 1 do
            Spsc.push q i
          done
        else begin
          let buf = Array.make batch None in
          let i = ref 0 in
          while !i < items do
            let n = min batch (items - !i) in
            for k = 0 to n - 1 do
              buf.(k) <- Some (!i + k)
            done;
            Spsc.push_chunk q buf ~pos:0 ~len:n;
            i := !i + n
          done
        end;
        Spsc.close q)
  in
  let next = ref 0 in
  let buf = Array.make batch None in
  let running = ref true in
  while !running do
    let n = Spsc.pop_chunk q buf ~pos:0 ~len:batch in
    if n = 0 then running := false
    else begin
      for k = 0 to n - 1 do
        (match buf.(k) with
        | Some x when x = !next + k -> ()
        | Some x -> Alcotest.failf "out of order: got %d, expected %d" x (!next + k)
        | None -> Alcotest.fail "hole in popped chunk");
        buf.(k) <- None
      done;
      next := !next + n
    end
  done;
  Domain.join producer;
  Alcotest.(check int) "every item arrived exactly once, in order" items !next

let spsc_stress_cases =
  List.concat_map
    (fun capacity ->
      List.map
        (fun batch ->
          Alcotest.test_case
            (Printf.sprintf "stress capacity=%d batch=%d" capacity batch)
            `Quick
            (spsc_stress ~capacity ~batch ~items:20_000))
        [ 1; 8; 64 ])
    [ 1; 2; 64 ]

(* The close protocol under real blocking, mirroring the Chan regressions:
   a party parked on a full (producer) or empty (consumer) ring must be
   woken by a [close] from another domain with the typed outcome — never
   left parked. A lost wake-up hangs the suite here instead of passing. *)

let test_spsc_close_wakes_blocked_producer () =
  let q = Spsc.create ~capacity:1 in
  Spsc.push q 0;
  let producer =
    Domain.spawn (fun () ->
        match Spsc.push q 1 with () -> `Pushed | exception Spsc.Closed -> `Raised_closed)
  in
  Unix.sleepf 0.05;
  Spsc.close q;
  Alcotest.(check bool) "blocked producer raises Closed" true (Domain.join producer = `Raised_closed)

let test_spsc_close_wakes_blocked_consumer () =
  let q : int Spsc.t = Spsc.create ~capacity:4 in
  let consumer = Domain.spawn (fun () -> Spsc.pop q) in
  Unix.sleepf 0.05;
  Spsc.close q;
  Alcotest.(check (option int)) "blocked consumer gets None" None (Domain.join consumer)

let test_spsc_close_wakes_blocked_chunk_consumer () =
  let q : int Spsc.t = Spsc.create ~capacity:4 in
  let consumer =
    Domain.spawn (fun () -> Spsc.pop_chunk q (Array.make 4 None) ~pos:0 ~len:4)
  in
  Unix.sleepf 0.05;
  Spsc.close q;
  Alcotest.(check int) "blocked chunk consumer gets 0" 0 (Domain.join consumer)

let test_spsc_producer_close_drains () =
  (* close-after-last-push from the producer domain: the consumer must see
     every item even if it was parked when the close landed. *)
  let q = Spsc.create ~capacity:2 in
  let producer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        for i = 1 to 100 do
          Spsc.push q i
        done;
        Spsc.close q)
  in
  let got = ref 0 in
  let running = ref true in
  while !running do
    match Spsc.pop q with
    | None -> running := false
    | Some x ->
        if x <> !got + 1 then Alcotest.failf "drain order: got %d after %d" x !got;
        got := x
  done;
  Domain.join producer;
  Alcotest.(check int) "all items drained past the close" 100 !got

let () =
  Alcotest.run "aspipe_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independence" `Quick test_rng_copy_independent;
          Alcotest.test_case "split divergence" `Quick test_rng_split_diverges;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Slow test_rng_float_mean;
          test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          test_rng_shuffle_permutes;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "variate",
        [
          Alcotest.test_case "exponential mean" `Slow test_variate_exponential_mean;
          Alcotest.test_case "exponential invalid" `Quick test_variate_exponential_invalid;
          Alcotest.test_case "normal moments" `Slow test_variate_normal_moments;
          Alcotest.test_case "lognormal mean" `Slow test_variate_lognormal_mean;
          Alcotest.test_case "gamma mean" `Slow test_variate_gamma_mean;
          Alcotest.test_case "gamma small shape" `Slow test_variate_gamma_small_shape;
          Alcotest.test_case "erlang mean" `Slow test_variate_erlang_mean;
          Alcotest.test_case "pareto support" `Quick test_variate_pareto_support;
          Alcotest.test_case "weibull positive" `Quick test_variate_weibull_positive;
          Alcotest.test_case "bernoulli extremes" `Quick test_variate_bernoulli_extremes;
          Alcotest.test_case "categorical" `Quick test_variate_categorical;
          Alcotest.test_case "truncated" `Quick test_variate_truncated;
          Alcotest.test_case "spec means" `Slow test_variate_spec_means;
          Alcotest.test_case "pareto infinite mean" `Quick test_variate_pareto_infinite_mean;
          Alcotest.test_case "weibull mean formula" `Quick test_variate_weibull_mean_formula;
        ] );
      ( "stats",
        [
          test_welford_matches_batch;
          test_welford_merge;
          Alcotest.test_case "welford empty" `Quick test_welford_empty;
          Alcotest.test_case "quantile known" `Quick test_quantile_known;
          Alcotest.test_case "quantile invalid" `Quick test_quantile_invalid;
          Alcotest.test_case "quantile pure" `Quick test_quantile_does_not_mutate;
          Alcotest.test_case "confidence95" `Quick test_confidence95;
          Alcotest.test_case "mae rmse" `Quick test_mae_rmse;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
        ] );
      ( "forecast",
        [
          Alcotest.test_case "last value" `Quick test_forecast_last_value;
          Alcotest.test_case "running mean" `Quick test_forecast_running_mean;
          Alcotest.test_case "sliding mean" `Quick test_forecast_sliding_mean;
          Alcotest.test_case "sliding median" `Quick test_forecast_sliding_median_robust;
          Alcotest.test_case "ewma formula" `Quick test_forecast_ewma_formula;
          Alcotest.test_case "ewma invalid" `Quick test_forecast_ewma_invalid;
          Alcotest.test_case "error tracking" `Quick test_forecast_error_tracking;
          Alcotest.test_case "adaptive constant" `Quick test_forecast_adaptive_constant_signal;
          Alcotest.test_case "adaptive step" `Quick test_forecast_adaptive_tracks_step;
          Alcotest.test_case "window invalid" `Quick test_forecast_window_invalid;
          Alcotest.test_case "trend extrapolates" `Quick test_forecast_trend_extrapolates;
          Alcotest.test_case "ar1 fit" `Quick test_forecast_ar1_fits_autoregression;
          Alcotest.test_case "ar1 fallback" `Quick test_forecast_ar1_before_fit;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "encode" `Quick test_csv_encode;
          Alcotest.test_case "table rows" `Quick test_csv_table_roundtrip;
          Alcotest.test_case "series rows" `Quick test_csv_series_rows;
          Alcotest.test_case "save files" `Quick test_csv_save_files;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "piecewise eval" `Quick test_timeseries_eval;
          Alcotest.test_case "append only" `Quick test_timeseries_append_only;
          Alcotest.test_case "same instant" `Quick test_timeseries_same_instant_overwrites;
          Alcotest.test_case "integrate" `Quick test_timeseries_integrate;
          test_timeseries_integrate_matches_samples;
          Alcotest.test_case "duplicates" `Quick test_timeseries_duplicate_points;
          Alcotest.test_case "sample grid" `Quick test_timeseries_sample_grid;
        ] );
      ( "ring",
        [
          Alcotest.test_case "fifo" `Quick test_ring_fifo;
          Alcotest.test_case "push front" `Quick test_ring_push_front;
          test_prop_ring_matches_list_model;
        ] );
      ( "spsc",
        [
          Alcotest.test_case "capacity rounding" `Quick test_spsc_capacity_rounding;
          Alcotest.test_case "fifo single domain" `Quick test_spsc_fifo_single_domain;
          Alcotest.test_case "close semantics" `Quick test_spsc_close_semantics;
          Alcotest.test_case "chunk roundtrip" `Quick test_spsc_chunk_roundtrip;
          test_prop_spsc_matches_list_model;
        ] );
      ( "spsc-domains",
        spsc_stress_cases
        @ [
            Alcotest.test_case "close wakes blocked producer" `Quick
              test_spsc_close_wakes_blocked_producer;
            Alcotest.test_case "close wakes blocked consumer" `Quick
              test_spsc_close_wakes_blocked_consumer;
            Alcotest.test_case "close wakes blocked chunk consumer" `Quick
              test_spsc_close_wakes_blocked_chunk_consumer;
            Alcotest.test_case "producer close drains" `Quick test_spsc_producer_close_drains;
          ] );
      ( "properties",
        [
          test_prop_mean_matches_fold;
          test_prop_variance_matches_fold;
          test_prop_quantile_monotone;
          test_prop_quantile_bounded;
          test_prop_resample_conserves_integral;
          test_prop_forecast_constant_fixed_point;
          Alcotest.test_case "rng split chi-square" `Quick test_rng_split_chi_square;
        ] );
      ( "render",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "nan renders dash" `Quick test_table_nan_renders_dash;
          Alcotest.test_case "row width" `Quick test_table_row_width;
          Alcotest.test_case "plot" `Quick test_plot;
        ] );
    ]
