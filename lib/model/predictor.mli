(** Ties the cost spec, the evaluators and the search together: the component
    the adaptive engine calls when it must answer "which mapping should the
    pipeline be running, given what the monitors currently believe?". *)

type kind = Analytic | Ctmc
(** Which evaluator scores candidate mappings. [Analytic] is O(Ns) per
    candidate; [Ctmc] is exact under exponential assumptions but costs
    3^Ns states per candidate. *)

type t

val make : ?kind:kind -> Costspec.t -> t
(** Default [Analytic]. *)

val kind : t -> kind
val spec : t -> Costspec.t

val evaluate : t -> Mapping.t -> float
(** Predicted steady-state throughput (items/s). *)

val choose :
  ?fix_first_on:int -> ?exhaustive_limit:int -> ?par:Search.par -> t -> Search.result
(** Best mapping over the full space. The [Analytic] kind runs the
    incremental fast paths ({!Search.auto_spec} / {!Search.exhaustive_spec},
    with [par] enabling the chunked parallel backend on large spaces); the
    [Ctmc] kind keeps the generic {!Search.auto} / {!Search.exhaustive}.
    All backends obey the lowest-code tie-break, so the chosen mapping is
    independent of backend and worker count. *)

val rank : t -> Mapping.t list -> (Mapping.t * float) list
(** Candidates with scores, best first; deterministic for equal scores. *)

val predicted_completion : t -> Mapping.t -> items:int -> float
(** Makespan estimate ({!Analytic.completion_time}, regardless of [kind],
    with the CTMC throughput substituted when [kind = Ctmc]). *)
