(** Stage→processor assignments.

    A mapping for an [Ns]-stage pipeline over [Np] processors is an array of
    length [Ns] whose [i]-th entry names the processor hosting stage [i].
    Written [(p₀,p₁,…)] as in the skeleton-scheduling literature — e.g.
    [(0,0,1)] runs the first two stages on processor 0 and the third on
    processor 1. *)

type t = private int array

val of_array : processors:int -> int array -> t
(** Validates every entry lies in [\[0, processors)]. *)

val to_array : t -> int array
val stages : t -> int
val processor_of : t -> int -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val round_robin : stages:int -> processors:int -> t
(** Stage [i] on processor [i mod processors]. *)

val all_on : stages:int -> processor:int -> processors:int -> t

val random : Aspipe_util.Rng.t -> stages:int -> processors:int -> t

val blocks : stages:int -> processors:int -> t
(** Contiguous blocks: stages split as evenly as possible into [processors]
    consecutive groups — the classic static block mapping baseline. *)

val max_enumeration : int
(** Hard cap on the enumerable assignment space, [2^22]. *)

val space_within : stages:int -> processors:int -> cap:int -> int option
(** [processors ^ stages] as [Some n] when it does not exceed [cap], [None]
    otherwise — exact integer arithmetic, never overflows. Replaces the old
    float-based sizing ([Float.of_int p ** Float.of_int s] through
    [int_of_float]) that could misround near the cap. [stages = 0] yields
    [Some 1]. *)

val space_size : stages:int -> processors:int -> int option
(** [space_within ~cap:max_int]: the exact space size, or [None] when it does
    not fit in an [int]. *)

val enumerate : ?fix_first_on:int -> stages:int -> processors:int -> unit -> t list
(** Every assignment ([processors]^[stages] of them, or a factor fewer with
    [fix_first_on] pinning stage 0, as the paper's tables do), in ascending
    {e enumeration-code} order (see {!decode}).
    Raises [Invalid_argument] if the space exceeds {!max_enumeration}. *)

val iter_enumerate :
  ?fix_first_on:int -> stages:int -> processors:int -> (t -> unit) -> unit
(** Zero-materialization {!enumerate}: drives a single scratch array through
    the space odometer-style and passes it to the callback once per
    assignment, in the same ascending-code order as {!enumerate}. The array
    is reused between calls — the callback must not retain it (copy via
    {!to_array} if needed). Raises like {!enumerate}. *)

val decode : ?fix_first_on:int -> stages:int -> processors:int -> int -> t
(** The mapping at position [code] in enumeration order: free stages are the
    little-endian base-[processors] digits of [code], stage 0 pinned when
    [fix_first_on] is given. Raises [Invalid_argument] when [code] is outside
    [\[0, space)]. *)

val code_of : ?fix_first_on:int -> processors:int -> t -> int
(** Inverse of {!decode} (the pinned stage, when any, contributes nothing). *)

val iter_gray :
  ?fix_first_on:int ->
  stages:int ->
  processors:int ->
  init:(t -> unit) ->
  step:(t -> stage:int -> code:int -> unit) ->
  unit ->
  unit
(** Visits the same space as {!iter_enumerate} in reflected mixed-radix
    Gray-code order: [init] sees the all-zeros assignment (code 0), then each
    [step] changes {e exactly one} stage of the scratch array (by ±1 on that
    digit) and reports the changed [stage] plus the current enumeration
    [code]. Scratch-reuse caveats as {!iter_enumerate}. *)

val neighbours : t -> processors:int -> t list
(** All mappings differing in exactly one stage's processor. *)

val iter_neighbours :
  t -> processors:int -> (stage:int -> target:int -> t -> unit) -> unit
(** Zero-copy {!neighbours}: the callback sees each neighbour in the same
    order (stage ascending, then target processor ascending) through one
    in-place scratch array, restored between stages. Scratch-reuse caveats as
    {!iter_enumerate}. *)

val colocation : t -> processors:int -> int array
(** [colocation m ~processors] gives, per processor, the number of stages it
    hosts. *)

val stages_sharing : t -> int -> int
(** [stages_sharing m i] is the number of stages (≥ 1) on stage [i]'s
    processor, including stage [i]. *)
