type kind = Analytic | Ctmc

type t = { kind : kind; spec : Costspec.t }

let make ?(kind = Analytic) spec =
  Costspec.validate spec;
  { kind; spec }

let kind t = t.kind
let spec t = t.spec

let evaluate t m =
  match t.kind with
  | Analytic -> Analytic.throughput t.spec m
  | Ctmc -> Ctmc.throughput (Ctmc.of_costspec t.spec m)

let choose ?fix_first_on ?exhaustive_limit ?par t =
  let stages = Costspec.stages t.spec and processors = Costspec.processors t.spec in
  match (t.kind, fix_first_on) with
  (* The analytic evaluator takes the incremental fast paths; the CTMC kind
     keeps the generic walks (its evaluator dwarfs enumeration cost anyway). *)
  | Analytic, None -> Search.auto_spec ?exhaustive_limit ?par t.spec
  | Analytic, Some p -> Search.exhaustive_spec ~fix_first_on:p t.spec
  | Ctmc, None -> Search.auto ?exhaustive_limit ~stages ~processors (evaluate t)
  | Ctmc, Some p ->
      (* Pinning the first stage shrinks the space; exhaustive it if feasible. *)
      Search.exhaustive ~fix_first_on:p ~stages ~processors (evaluate t)

let rank t candidates =
  let scored = List.map (fun m -> (m, evaluate t m)) candidates in
  List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) scored

let predicted_completion t m ~items =
  let x = evaluate t m in
  if x <= 0.0 then infinity
  else Analytic.fill_latency t.spec m +. (Float.of_int (items - 1) /. x)
