(** The fast mapping evaluator: steady-state pipeline throughput by
    bottleneck analysis.

    Two families of stations bound the output rate:

    - every {e processor} serves the total work of the stages mapped to it:
      capacity [node_rate / Σ work];
    - every {e stage cycle} — a stage processes an item and then performs its
      synchronous output move before accepting the next: capacity
      [1 / (shared service time + output transfer time)].

    In steady state a saturated [Pipeline1for1] cannot beat its slowest
    station, and the bound is tight up to queueing noise — experiment E1
    quantifies this against the simulator and the CTMC. O(Ns + Np) per
    evaluation, so mapping search can afford thousands of calls. *)

type bottleneck = Processor of int | Stage_cycle of int

val throughput : Costspec.t -> Mapping.t -> float
(** Predicted items/second. *)

val bottleneck : Costspec.t -> Mapping.t -> bottleneck * float
(** The binding station and its capacity. *)

val stage_cycle_time : Costspec.t -> Mapping.t -> int -> float
(** Shared service time plus output-move time of stage [i]. *)

val fill_latency : Costspec.t -> Mapping.t -> float
(** Time for the first item to traverse an empty pipeline (one service and
    one move per stage, plus the input move, uncontended). *)

val completion_time : Costspec.t -> Mapping.t -> items:int -> float
(** Estimated makespan for a finite input set: fill latency plus
    [(items − 1)] bottleneck periods. *)

val pp_bottleneck : Format.formatter -> bottleneck -> unit

(** Incremental re-scoring for mapping search.

    An [Incr.t] holds the station rates of one mapping in flat float arrays —
    per-processor capacities and per-stage cycles — plus a tracked minimum,
    and updates them under single-stage moves: a move re-derives only the two
    affected processors' capacities and the touched stage cycles, with the
    minimum recomputed lazily when the station holding it rises. Scores are
    {e bit-identical} to {!throughput} on the same spec and assignment (the
    arithmetic replicates [Costspec] formula-for-formula; per-processor work
    is re-summed in stage order, never delta-adjusted), which is what lets
    exhaustive search, hill-climbing, and branch-and-bound run on it without
    changing any decision the full evaluator would make. *)
module Incr : sig
  type t

  val create : Costspec.t -> Mapping.t -> t
  (** O(Ns·Np) build of the station state for an initial assignment. *)

  val move : t -> stage:int -> int -> unit
  (** [move t ~stage q] re-assigns [stage] to processor [q] and updates the
      affected stations — O(k) where [k] is the number of stages touching the
      two processors involved. A no-op when [stage] is already on [q]. *)

  val score : t -> float
  (** Throughput of the current assignment; equals
      [throughput spec (mapping t)] bit-for-bit. O(1) when the tracked
      minimum is valid, O(Ns + Np) rescan otherwise. *)

  val assignment : t -> int -> int
  (** Processor currently hosting the given stage. *)

  val mapping : t -> Mapping.t
  (** Snapshot of the current assignment. *)

  val stages : t -> int
  val processors : t -> int
end
