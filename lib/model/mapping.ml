type t = int array

let of_array ~processors a =
  if Array.length a = 0 then invalid_arg "Mapping.of_array: empty";
  Array.iter
    (fun p ->
      if p < 0 || p >= processors then invalid_arg "Mapping.of_array: processor out of range")
    a;
  Array.copy a

let to_array t = Array.copy t
let stages t = Array.length t
let processor_of t i = t.(i)
let equal (a : t) (b : t) = a = b

let to_string t =
  "(" ^ String.concat "," (List.map string_of_int (Array.to_list t)) ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let round_robin ~stages ~processors =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.round_robin";
  Array.init stages (fun i -> i mod processors)

let all_on ~stages ~processor ~processors =
  if processor < 0 || processor >= processors then invalid_arg "Mapping.all_on";
  Array.make stages processor

let random rng ~stages ~processors =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.random";
  Array.init stages (fun _ -> Aspipe_util.Rng.int rng processors)

let blocks ~stages ~processors =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.blocks";
  let groups = min stages processors in
  (* Even split: the first [stages mod groups] blocks get one extra stage. *)
  let base = stages / groups and extra = stages mod groups in
  let boundaries = Array.make (groups + 1) 0 in
  for g = 1 to groups do
    boundaries.(g) <- boundaries.(g - 1) + base + (if g <= extra then 1 else 0)
  done;
  Array.init stages (fun i ->
      let rec find g = if i < boundaries.(g + 1) then g else find (g + 1) in
      find 0)

(* --------------------------------------------------------- enumeration *)

let max_enumeration = 1 lsl 22

(* [processors]^[stages] without ever overflowing: the running product is
   abandoned the moment it would exceed [cap]. The old float-based sizing
   ([Float.of_int p ** Float.of_int s] squeezed back through
   [int_of_float]) could misround near the cap — [5. ** 9.] and friends are
   not guaranteed exact through pow — and silently wrapped for large
   exponents. *)
let space_within ~stages ~processors ~cap =
  if stages < 0 || processors <= 0 || cap < 0 then invalid_arg "Mapping.space_within";
  let rec go acc i =
    if i = stages then Some acc
    else if acc > cap / processors then None
    else go (acc * processors) (i + 1)
  in
  go 1 0

let space_size ~stages ~processors = space_within ~stages ~processors ~cap:max_int

let free_start fix_first_on = match fix_first_on with Some _ -> 1 | None -> 0

let check_dims ?fix_first_on ~stages ~processors () =
  if stages <= 0 || processors <= 0 then invalid_arg "Mapping.enumerate";
  match fix_first_on with
  | Some p when p < 0 || p >= processors ->
      invalid_arg "Mapping.enumerate: fix_first_on out of range"
  | _ -> ()

let enumeration_total ?fix_first_on ~stages ~processors () =
  let free = stages - free_start fix_first_on in
  match space_within ~stages:free ~processors ~cap:max_enumeration with
  | Some n -> n
  | None -> invalid_arg "Mapping.enumerate: assignment space too large"

let iter_enumerate ?fix_first_on ~stages ~processors f =
  check_dims ?fix_first_on ~stages ~processors ();
  let total = enumeration_total ?fix_first_on ~stages ~processors () in
  let start = free_start fix_first_on in
  let m = Array.make stages 0 in
  (match fix_first_on with Some p -> m.(0) <- p | None -> ());
  f m;
  for _ = 1 to total - 1 do
    (* Odometer step: the free digits are little-endian in the code, so the
       visit order is ascending enumeration code. *)
    let i = ref start in
    while m.(!i) = processors - 1 do
      m.(!i) <- 0;
      incr i
    done;
    m.(!i) <- m.(!i) + 1;
    f m
  done

let enumerate ?fix_first_on ~stages ~processors () =
  let acc = ref [] in
  iter_enumerate ?fix_first_on ~stages ~processors (fun m -> acc := Array.copy m :: !acc);
  List.rev !acc

let decode ?fix_first_on ~stages ~processors code =
  check_dims ?fix_first_on ~stages ~processors ();
  let total = enumeration_total ?fix_first_on ~stages ~processors () in
  if code < 0 || code >= total then invalid_arg "Mapping.decode: code out of range";
  let start = free_start fix_first_on in
  let m = Array.make stages 0 in
  (match fix_first_on with Some p -> m.(0) <- p | None -> ());
  let rest = ref code in
  for i = start to stages - 1 do
    m.(i) <- !rest mod processors;
    rest := !rest / processors
  done;
  m

let code_of ?fix_first_on ~processors t =
  let start = free_start fix_first_on in
  let code = ref 0 in
  for i = Array.length t - 1 downto start do
    code := (!code * processors) + t.(i)
  done;
  !code

let iter_gray ?fix_first_on ~stages ~processors ~init ~step () =
  check_dims ?fix_first_on ~stages ~processors ();
  let total = enumeration_total ?fix_first_on ~stages ~processors () in
  ignore total;
  let start = free_start fix_first_on in
  let n = stages - start in
  let m = Array.make stages 0 in
  (match fix_first_on with Some p -> m.(0) <- p | None -> ());
  init m;
  if processors > 1 && n > 0 then begin
    (* Loopless reflected mixed-radix Gray walk (Knuth 7.2.1.1, Algorithm H):
       each step moves exactly one free digit by +-1. The enumeration code is
       maintained incrementally from the digit's weight. *)
    let a = Array.make n 0 in
    let focus = Array.init (n + 1) Fun.id in
    let dir = Array.make n 1 in
    let pow = Array.make n 1 in
    for j = 1 to n - 1 do
      pow.(j) <- pow.(j - 1) * processors
    done;
    let code = ref 0 in
    let continue = ref true in
    while !continue do
      let j = focus.(0) in
      focus.(0) <- 0;
      if j = n then continue := false
      else begin
        a.(j) <- a.(j) + dir.(j);
        m.(start + j) <- a.(j);
        code := !code + (dir.(j) * pow.(j));
        if a.(j) = 0 || a.(j) = processors - 1 then begin
          dir.(j) <- -dir.(j);
          focus.(j) <- focus.(j + 1);
          focus.(j + 1) <- j + 1
        end;
        step m ~stage:(start + j) ~code:!code
      end
    done
  end

let iter_neighbours t ~processors f =
  let m = Array.copy t in
  Array.iteri
    (fun i p ->
      for q = 0 to processors - 1 do
        if q <> p then begin
          m.(i) <- q;
          f ~stage:i ~target:q m
        end
      done;
      m.(i) <- p)
    t

let neighbours t ~processors =
  let acc = ref [] in
  iter_neighbours t ~processors (fun ~stage:_ ~target:_ m -> acc := Array.copy m :: !acc);
  List.rev !acc

let colocation t ~processors =
  let counts = Array.make processors 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) t;
  counts

let stages_sharing t i =
  let p = t.(i) in
  Array.fold_left (fun acc q -> if q = p then acc + 1 else acc) 0 t
