(** Mapping search: given an evaluator (predicted throughput, higher is
    better), find a good stage→processor assignment.

    Exhaustive search reproduces the paper-scale behaviour (enumerate all
    Np^Ns candidates, pick the best); greedy and hill-climbing keep the
    decision path sub-second when the space explodes, which experiment E6
    quantifies.

    {2 Tie-break contract}

    Every exhaustive backend — the generic walk, the reference list fold,
    the pruned/canonicalized branch-and-bound, and the chunked parallel
    search — resolves equal scores to the candidate with the {e lowest
    enumeration code} (see {!Mapping.decode}). Scores compare by exact float
    equality, which is meaningful because {!Analytic.Incr} is bit-identical
    to the full evaluator. The contract is what makes serial, pruned, and
    [--jobs N] searches return byte-identical mappings. *)

type evaluator = Mapping.t -> float

type result = { mapping : Mapping.t; score : float; evaluated : int }

val default_exhaustive_limit : int
(** Largest candidate space {!auto} / {!auto_spec} searches exhaustively
    before falling back to greedy + hill-climb: [262144] (2¹⁸), raised 13×
    from the historical 20k by the incremental evaluator. *)

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }
(** Parallel-map capability injected by callers that own a domain pool
    (e.g. [Aspipe_runner.Pool.map_list]); the model layer stays free of any
    runner dependency. Results must come back in input order. *)

val sequential_par : par
(** [List.map] — the degenerate backend; searches give byte-identical
    results under any [par]. *)

val exhaustive :
  ?fix_first_on:int -> stages:int -> processors:int -> evaluator -> result
(** Scores the full assignment space through one scratch array (no list is
    materialized), in ascending enumeration-code order. Ties break toward
    the lowest code. *)

val exhaustive_ref :
  ?fix_first_on:int -> stages:int -> processors:int -> evaluator -> result
(** The historical materializing implementation ([best_of] over
    {!Mapping.enumerate}) — kept as the differential-testing and benchmark
    reference for {!exhaustive} and the spec-specialized backends. *)

val exhaustive_spec :
  ?fix_first_on:int -> ?prune:bool -> ?canonical:bool -> Costspec.t -> result
(** Exhaustive search on the incremental evaluator. With [prune] (default
    [true]) a branch-and-bound prefix bound — adding work to a processor
    only lowers its capacity station — skips subtrees that provably cannot
    beat the incumbent (strict inequality only, preserving the tie-break).
    With [canonical] (default [true]) processors whose rates and link costs
    are exactly interchangeable are collapsed: only one representative per
    symmetry class is scored (up to p! shrinkage on uniform grids) and the
    winner is relabeled to its class's lowest-code member. [evaluated]
    counts scored leaves, so it shrinks under pruning/canonicalization;
    with both disabled this is the pure Gray-order incremental walk and
    [evaluated] equals the space size. The returned mapping and score are
    identical to {!exhaustive} on [Analytic.throughput spec]. *)

val exhaustive_par :
  ?fix_first_on:int -> ?par:par -> ?chunks:int -> Costspec.t -> result
(** Splits the code space into [chunks] contiguous ranges (default: 32 for
    spaces ≥ 2¹⁵, else 1), searches each with the incremental evaluator via
    [par.pmap], and merges in ascending range order with a strict
    improvement test — so the result is byte-identical for any worker count,
    including {!sequential_par}. *)

val greedy : stages:int -> processors:int -> evaluator -> result
(** Builds the mapping stage by stage, placing each stage on the processor
    that maximizes the evaluator applied to the partial pipeline (remaining
    stages tentatively on the last chosen processor). O(Ns·Np) evaluations. *)

val hill_climb :
  ?max_steps:int -> start:Mapping.t -> processors:int -> evaluator -> result
(** Steepest-ascent over the single-stage-move neighbourhood from [start];
    stops at a local optimum or after [max_steps] (default 1000) moves.
    Probes neighbours through {!Mapping.iter_neighbours}'s scratch array —
    a candidate is copied only when it improves on the step's incumbent. *)

val hill_climb_spec :
  ?max_steps:int -> start:Mapping.t -> Costspec.t -> result
(** {!hill_climb} on {!Analytic.Incr}: neighbours are probed as move/undo
    pairs on one incremental state, no full re-evaluation. Same neighbour
    order, same tie-breaks, bit-identical scores — hence the same trajectory
    and result as the generic climb on [Analytic.throughput spec]. *)

val auto :
  ?exhaustive_limit:int -> stages:int -> processors:int -> evaluator -> result
(** Exhaustive when the space has at most [exhaustive_limit] (default
    {!default_exhaustive_limit}) candidates, otherwise greedy refined by
    hill climbing — the policy the adaptive engine uses. Space sizing is
    exact integer arithmetic (no float rounding). *)

val auto_spec :
  ?exhaustive_limit:int -> ?fix_first_on:int -> ?par:par -> Costspec.t -> result
(** {!auto} specialized to the analytic evaluator: {!exhaustive_spec} below
    the limit (or {!exhaustive_par} when [par] is given and the space is
    large enough to amortize the fan-out), greedy + {!hill_climb_spec}
    above. *)

val best_of : Mapping.t list -> evaluator -> result
(** Score an explicit candidate list (e.g. the paper's eight mappings). *)
