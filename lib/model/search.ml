type evaluator = Mapping.t -> float

type result = { mapping : Mapping.t; score : float; evaluated : int }

(* Exhaustive search is cheap enough since the incremental evaluator landed
   that the auto policy can afford spaces an order of magnitude larger than
   the historical 20k before bailing to greedy+hill-climb. *)
let default_exhaustive_limit = 262_144

type par = { pmap : 'a 'b. ('a -> 'b) -> 'a list -> 'b list }

let sequential_par = { pmap = (fun f xs -> List.map f xs) }

let best_of candidates evaluator =
  match candidates with
  | [] -> invalid_arg "Search.best_of: no candidates"
  | first :: rest ->
      let count = ref 1 in
      let best =
        List.fold_left
          (fun (bm, bs) m ->
            incr count;
            let s = evaluator m in
            if s > bs then (m, s) else (bm, bs))
          (first, evaluator first) rest
      in
      { mapping = fst best; score = snd best; evaluated = !count }

let exhaustive_ref ?fix_first_on ~stages ~processors evaluator =
  best_of (Mapping.enumerate ?fix_first_on ~stages ~processors ()) evaluator

(* Generic exhaustive over the scratch-array enumeration: ascending code
   order with copy-on-improve, so the winner among equal scores is the lowest
   enumeration code — exactly the tie-break [exhaustive_ref] implements by
   folding the materialized list. *)
let exhaustive ?fix_first_on ~stages ~processors evaluator =
  let count = ref 0 in
  let best_score = ref neg_infinity in
  let best = ref [||] in
  let have = ref false in
  Mapping.iter_enumerate ?fix_first_on ~stages ~processors (fun m ->
      incr count;
      let s = evaluator m in
      if (not !have) || s > !best_score then begin
        have := true;
        best_score := s;
        best := Mapping.to_array m
      end);
  {
    mapping = Mapping.of_array ~processors !best;
    score = !best_score;
    evaluated = !count;
  }

let greedy ~stages ~processors evaluator =
  if stages <= 0 || processors <= 0 then invalid_arg "Search.greedy";
  let assignment = Array.make stages 0 in
  let evaluated = ref 0 in
  for i = 0 to stages - 1 do
    let best_processor = ref 0 and best_score = ref neg_infinity in
    for p = 0 to processors - 1 do
      assignment.(i) <- p;
      (* Remaining stages ride along on processor p for the tentative score. *)
      for j = i + 1 to stages - 1 do
        assignment.(j) <- p
      done;
      let score = evaluator (Mapping.of_array ~processors assignment) in
      incr evaluated;
      if score > !best_score then begin
        best_score := score;
        best_processor := p
      end
    done;
    assignment.(i) <- !best_processor;
    for j = i + 1 to stages - 1 do
      assignment.(j) <- !best_processor
    done
  done;
  let mapping = Mapping.of_array ~processors assignment in
  { mapping; score = evaluator mapping; evaluated = !evaluated + 1 }

let hill_climb ?(max_steps = 1000) ~start ~processors evaluator =
  let evaluated = ref 1 in
  let rec climb mapping score steps =
    if steps >= max_steps then { mapping; score; evaluated = !evaluated }
    else begin
      (* Steepest ascent over the in-place neighbour scratch; the array is
         copied only when it improves on everything seen this step, killing
         the s×(p−1) copies the materialized [neighbours] list used to pay. *)
      let best_s = ref neg_infinity in
      let best_m = ref [||] in
      Mapping.iter_neighbours mapping ~processors (fun ~stage:_ ~target:_ m ->
          incr evaluated;
          let s = evaluator m in
          if s > score && s > !best_s then begin
            best_s := s;
            best_m := Mapping.to_array m
          end);
      if !best_m = [||] then { mapping; score; evaluated = !evaluated }
      else climb (Mapping.of_array ~processors !best_m) !best_s (steps + 1)
    end
  in
  climb start (evaluator start) 0

let auto ?(exhaustive_limit = default_exhaustive_limit) ~stages ~processors evaluator =
  match Mapping.space_within ~stages ~processors ~cap:exhaustive_limit with
  | Some _ -> exhaustive ~stages ~processors evaluator
  | None ->
      let greedy_result = greedy ~stages ~processors evaluator in
      let refined = hill_climb ~start:greedy_result.mapping ~processors evaluator in
      { refined with evaluated = refined.evaluated + greedy_result.evaluated }

(* ------------------------------------------------------------------ *)
(* Spec-specialized fast paths on [Analytic.Incr].                     *)

(* Processors [p] and [q] are interchangeable when transposing them leaves
   the spec bit-identical: equal node rates and user-link costs, and
   latency/bandwidth matrices invariant under the swap (exact float
   equality). Relabeling a mapping by such a transposition then permutes the
   station multiset without changing any station's value, so the score is
   bit-identical — the invariant canonicalization relies on. *)
let symmetric_pair (spec : Costspec.t) p q =
  let np = Costspec.processors spec in
  let matrix_swap_invariant (m : float array array) =
    m.(p).(p) = m.(q).(q)
    && m.(p).(q) = m.(q).(p)
    &&
    let ok = ref true in
    for r = 0 to np - 1 do
      if r <> p && r <> q then
        if not (m.(p).(r) = m.(q).(r) && m.(r).(p) = m.(r).(q)) then ok := false
    done;
    !ok
  in
  spec.Costspec.node_rates.(p) = spec.Costspec.node_rates.(q)
  && spec.Costspec.user_latency.(p) = spec.Costspec.user_latency.(q)
  && spec.Costspec.user_bandwidth.(p) = spec.Costspec.user_bandwidth.(q)
  && matrix_swap_invariant spec.Costspec.latency
  && matrix_swap_invariant spec.Costspec.bandwidth

(* [class_of.(p)] is the smallest processor symmetric with [p]; the pinned
   processor, when any, is frozen in its own singleton so canonicalization
   never relabels it. Checking each candidate against the class
   representative suffices: two processors individually swap-symmetric with
   the same representative are swap-symmetric with each other (their rows
   and columns all equal the representative's up to the swapped entries). *)
let symmetry_classes ?fix_first_on spec =
  let np = Costspec.processors spec in
  let class_of = Array.init np Fun.id in
  let pinned p = fix_first_on = Some p in
  for p = 0 to np - 1 do
    if class_of.(p) = p && not (pinned p) then
      for q = p + 1 to np - 1 do
        if class_of.(q) = q && (not (pinned q)) && symmetric_pair spec p q then
          class_of.(q) <- p
      done
  done;
  class_of

(* Previous member of [p]'s symmetry class in processor order, or -1 when
   [p] is its class's smallest member. Canonical (restricted-growth)
   assignments use a class member only after its predecessor appears. *)
let class_predecessors class_of =
  let np = Array.length class_of in
  let last_seen = Array.make np (-1) in
  Array.init np (fun p ->
      let c = class_of.(p) in
      let pred = last_seen.(c) in
      last_seen.(c) <- p;
      pred)

(* Minimal enumeration code of [assign] over all symmetric relabelings:
   scanning stages from the most significant digit (the last stage — codes
   are little-endian), greedily relabel each class's processors to the
   class's smallest unused member at first use. Returns the relabeled
   assignment, its code. *)
let relabel_min_code ?fix_first_on ~class_of assign =
  let ns = Array.length assign and np = Array.length class_of in
  let members = Array.make np [] in
  for p = np - 1 downto 0 do
    members.(class_of.(p)) <- p :: members.(class_of.(p))
  done;
  let label = Array.make np (-1) in
  let out = Array.make ns 0 in
  let start = match fix_first_on with Some _ -> 1 | None -> 0 in
  (match fix_first_on with Some _ -> out.(0) <- assign.(0) | None -> ());
  for i = ns - 1 downto start do
    let p = assign.(i) in
    if label.(p) < 0 then begin
      let c = class_of.(p) in
      match members.(c) with
      | next :: rest ->
          label.(p) <- next;
          members.(c) <- rest
      | [] -> assert false
    end;
    out.(i) <- label.(p)
  done;
  let code = ref 0 in
  for i = ns - 1 downto start do
    code := (!code * np) + out.(i)
  done;
  (out, !code)

let check_space ?fix_first_on ~stages ~processors ~cap () =
  let free = match fix_first_on with Some _ -> stages - 1 | None -> stages in
  match Mapping.space_within ~stages:free ~processors ~cap with
  | Some n -> n
  | None -> invalid_arg "Mapping.enumerate: assignment space too large"

(* Branch-and-bound DFS over assignment prefixes, scoring leaves with
   [Analytic.Incr]. Stages are assigned in increasing index order, so each
   prefix's per-processor work sums are stage-order left folds — prefixes of
   the exact sums the evaluator computes. Adding work to a processor can
   only lower its capacity station (float division by a left-fold-larger sum
   is monotone), so

     bound = min over processors of (node_rate / work-so-far)

   is an upper bound, {e in float arithmetic}, on every leaf score below the
   prefix: each leaf's throughput is ≤ its own capacity stations, which are
   ≤ the prefix's. Pruning is on strict [bound < best] only — equal-score
   subtrees must be visited because the DFS order is not ascending-code, and
   the contract is lowest-code-wins among ties. *)
let exhaustive_spec ?fix_first_on ?(prune = true) ?(canonical = true) spec =
  let ns = Costspec.stages spec and np = Costspec.processors spec in
  let total = check_space ?fix_first_on ~stages:ns ~processors:np ~cap:Mapping.max_enumeration () in
  ignore total;
  let start = match fix_first_on with Some _ -> 1 | None -> 0 in
  (match fix_first_on with
  | Some p when p < 0 || p >= np -> invalid_arg "Mapping.enumerate: fix_first_on out of range"
  | _ -> ());
  let class_of = if canonical then symmetry_classes ?fix_first_on spec else Array.init np Fun.id in
  (* Canonicalization only pays when at least one class has two members;
     fully heterogeneous specs take the plain pruned walk. *)
  let canonical =
    canonical
    &&
    let nontrivial = ref false in
    Array.iteri (fun p c -> if c <> p then nontrivial := true) class_of;
    !nontrivial
  in
  let pred = class_predecessors class_of in
  let used = Array.make np 0 in
  let work = spec.Costspec.stage_work in
  let rates = spec.Costspec.node_rates in
  let bound_work = Array.make np 0.0 in
  let m0 = Array.make ns 0 in
  (match fix_first_on with
  | Some p ->
      m0.(0) <- p;
      used.(p) <- 1;
      bound_work.(p) <- 0.0 +. work.(0)
  | None -> ());
  let root_bound =
    match fix_first_on with
    | Some p -> if bound_work.(p) <= 0.0 then infinity else rates.(p) /. bound_work.(p)
    | None -> infinity
  in
  let pow = Array.make (ns - start) 1 in
  for k = 1 to ns - start - 1 do
    pow.(k) <- pow.(k - 1) * np
  done;
  let incr_state = Analytic.Incr.create spec (Mapping.of_array ~processors:np m0) in
  let scored = ref 0 in
  let have = ref false in
  let best_score = ref neg_infinity in
  let best_code = ref max_int in
  let best_assign = ref [||] in
  let rec dfs s bound code =
    if s = ns then begin
      incr scored;
      let score = Analytic.Incr.score incr_state in
      if (not !have) || score >= !best_score then begin
        let leaf = Array.init ns (Analytic.Incr.assignment incr_state) in
        if canonical then begin
          (* The representative's score is the whole symmetry class's score;
             rank the class by its minimal-code member so the winner is the
             same assignment the plain ascending-code walk returns. *)
          let relabeled, ccode = relabel_min_code ?fix_first_on ~class_of leaf in
          if (not !have) || score > !best_score || ccode < !best_code then begin
            have := true;
            best_score := score;
            best_code := ccode;
            best_assign := relabeled
          end
        end
        else if (not !have) || score > !best_score || code < !best_code then begin
          have := true;
          best_score := score;
          best_code := code;
          best_assign := leaf
        end
      end
    end
    else
      for q = 0 to np - 1 do
        if (not canonical) || pred.(q) < 0 || used.(pred.(q)) > 0 then begin
          let saved = bound_work.(q) in
          let w = saved +. work.(s) in
          bound_work.(q) <- w;
          let station = if w <= 0.0 then infinity else rates.(q) /. w in
          let bound' = Float.min bound station in
          if (not prune) || (not !have) || not (bound' < !best_score) then begin
            Analytic.Incr.move incr_state ~stage:s q;
            used.(q) <- used.(q) + 1;
            dfs (s + 1) bound' (code + (q * pow.(s - start)));
            used.(q) <- used.(q) - 1
          end;
          bound_work.(q) <- saved
        end
      done
  in
  dfs start root_bound 0;
  {
    mapping = Mapping.of_array ~processors:np !best_assign;
    score = !best_score;
    evaluated = !scored;
  }

(* Best (score, code) over the contiguous code range [lo, hi), walking the
   odometer with one [Incr.move] per changed digit. Within a chunk the visit
   order is ascending code, so first-wins ties are lowest-code ties. *)
let search_range ?fix_first_on spec ~lo ~hi =
  let ns = Costspec.stages spec and np = Costspec.processors spec in
  let start = match fix_first_on with Some _ -> 1 | None -> 0 in
  let scratch = Mapping.to_array (Mapping.decode ?fix_first_on ~stages:ns ~processors:np lo) in
  let st = Analytic.Incr.create spec (Mapping.of_array ~processors:np scratch) in
  let best_score = ref (Analytic.Incr.score st) in
  let best_code = ref lo in
  for code = lo + 1 to hi - 1 do
    let i = ref start in
    while scratch.(!i) = np - 1 do
      scratch.(!i) <- 0;
      Analytic.Incr.move st ~stage:!i 0;
      incr i
    done;
    scratch.(!i) <- scratch.(!i) + 1;
    Analytic.Incr.move st ~stage:!i scratch.(!i);
    let s = Analytic.Incr.score st in
    if s > !best_score then begin
      best_score := s;
      best_code := code
    end
  done;
  (!best_score, !best_code)

let default_chunks total = if total >= 32_768 then 32 else 1

let exhaustive_par ?fix_first_on ?(par = sequential_par) ?chunks spec =
  let ns = Costspec.stages spec and np = Costspec.processors spec in
  let total = check_space ?fix_first_on ~stages:ns ~processors:np ~cap:Mapping.max_enumeration () in
  let chunks = max 1 (min (match chunks with Some c -> c | None -> default_chunks total) total) in
  let size = (total + chunks - 1) / chunks in
  let ranges =
    List.init chunks (fun i ->
        let lo = i * size in
        (lo, min total (lo + size)))
    |> List.filter (fun (lo, hi) -> lo < hi)
  in
  let results = par.pmap (fun (lo, hi) -> search_range ?fix_first_on spec ~lo ~hi) ranges in
  (* Chunks are merged in ascending range order with a strict improvement
     test, so equal scores resolve to the earliest chunk — i.e. the lowest
     code, independent of how [par.pmap] scheduled the chunks. *)
  let best_score, best_code =
    match results with
    | [] -> invalid_arg "Search.exhaustive_par: empty space"
    | first :: rest ->
        List.fold_left
          (fun (bs, bc) (s, c) -> if s > bs then (s, c) else (bs, bc))
          first rest
  in
  {
    mapping = Mapping.decode ?fix_first_on ~stages:ns ~processors:np best_code;
    score = best_score;
    evaluated = total;
  }

(* Steepest-ascent hill climb on the incremental evaluator: neighbour moves
   are probed as move/undo pairs on one [Incr] state. Neighbour order and
   tie-breaks replicate [hill_climb] exactly, and [Incr] scores are
   bit-identical to the full evaluator, so the trajectory — and therefore
   the result — matches the generic climb on [Analytic.throughput]. *)
let hill_climb_spec ?(max_steps = 1000) ~start spec =
  let np = Costspec.processors spec in
  let ns = Costspec.stages spec in
  let st = Analytic.Incr.create spec start in
  let evaluated = ref 1 in
  let score = ref (Analytic.Incr.score st) in
  let steps = ref 0 in
  let improved = ref true in
  while !improved && !steps < max_steps do
    let best_s = ref neg_infinity and best_stage = ref (-1) and best_q = ref (-1) in
    for i = 0 to ns - 1 do
      let p = Analytic.Incr.assignment st i in
      for q = 0 to np - 1 do
        if q <> p then begin
          Analytic.Incr.move st ~stage:i q;
          incr evaluated;
          let s = Analytic.Incr.score st in
          if s > !score && s > !best_s then begin
            best_s := s;
            best_stage := i;
            best_q := q
          end;
          Analytic.Incr.move st ~stage:i p
        end
      done
    done;
    if !best_stage >= 0 then begin
      Analytic.Incr.move st ~stage:!best_stage !best_q;
      score := !best_s;
      incr steps
    end
    else improved := false
  done;
  { mapping = Analytic.Incr.mapping st; score = !score; evaluated = !evaluated }

let auto_spec ?(exhaustive_limit = default_exhaustive_limit) ?fix_first_on ?par spec =
  let ns = Costspec.stages spec and np = Costspec.processors spec in
  let free = match fix_first_on with Some _ -> ns - 1 | None -> ns in
  match Mapping.space_within ~stages:free ~processors:np ~cap:exhaustive_limit with
  | Some total ->
      (match par with
      | Some par when total >= 32_768 -> exhaustive_par ?fix_first_on ~par spec
      | _ -> exhaustive_spec ?fix_first_on spec)
  | None ->
      let evaluator m = Analytic.throughput spec m in
      let greedy_result = greedy ~stages:ns ~processors:np evaluator in
      let refined = hill_climb_spec ~start:greedy_result.mapping spec in
      { refined with evaluated = refined.evaluated + greedy_result.evaluated }
