type bottleneck = Processor of int | Stage_cycle of int

let pp_bottleneck ppf = function
  | Processor p -> Format.fprintf ppf "processor %d" p
  | Stage_cycle i -> Format.fprintf ppf "stage %d cycle" i

let stage_cycle_time spec m i =
  let service =
    let rate = Costspec.service_rate spec m i in
    if rate = infinity then 0.0 else 1.0 /. rate
  in
  let move_out =
    let rate = Costspec.move_rate spec m (i + 1) in
    if rate = infinity then 0.0 else 1.0 /. rate
  in
  service +. move_out

(* Every station with its items/s capacity under [m]. *)
let stations spec m =
  let ns = Costspec.stages spec in
  let np = Costspec.processors spec in
  let work_per_processor = Array.make np 0.0 in
  Array.iteri
    (fun i w ->
      let p = Mapping.processor_of m i in
      work_per_processor.(p) <- work_per_processor.(p) +. w)
    spec.Costspec.stage_work;
  let processor_stations =
    List.filter_map
      (fun p ->
        if work_per_processor.(p) <= 0.0 then None
        else Some (Processor p, spec.Costspec.node_rates.(p) /. work_per_processor.(p)))
      (List.init np Fun.id)
  in
  let cycle_stations =
    List.map
      (fun i ->
        let cycle = stage_cycle_time spec m i in
        (Stage_cycle i, if cycle <= 0.0 then infinity else 1.0 /. cycle))
      (List.init ns Fun.id)
  in
  processor_stations @ cycle_stations

let bottleneck spec m =
  match stations spec m with
  | [] -> invalid_arg "Analytic.bottleneck: no stations"
  | first :: rest ->
      List.fold_left (fun (bs, br) (s, r) -> if r < br then (s, r) else (bs, br)) first rest

let throughput spec m = snd (bottleneck spec m)

(* ------------------------------------------------------------------ *)
(* Incremental evaluation.

   [Incr] mirrors [stations] in flat float arrays and re-scores a
   single-stage move by touching only the affected entries. Every arithmetic
   expression below replicates the corresponding [Costspec] /
   [stage_cycle_time] formula operation-for-operation, in the same order, so
   scores are bit-identical to [throughput] — the qcheck differential battery
   in test_model pins this down. Two details carry the bit-identity:

   - per-processor work is {e re-summed} over stages in increasing index
     order after a move (never delta-adjusted), because float addition does
     not commute with subtraction and [stations] folds in stage order;
   - a processor hosting zero work is represented by an [infinity] station
     rather than excluded; [min] over stations is insensitive to the extra
     entries. *)
module Incr = struct
  type t = {
    spec : Costspec.t;
    ns : int;
    np : int;
    assign : int array; (* current stage -> processor map *)
    counts : int array; (* stages hosted per processor: O(1) sharing *)
    work : float array; (* per-processor work sums, stage-order folds *)
    proc_rate : float array; (* processor capacity stations *)
    cycle_rate : float array; (* stage-cycle stations *)
    (* Tracked minimum over both station arrays, recomputed lazily when the
       station holding it moves up. Station ids: [0, np) are processors,
       [np, np + ns) are stage cycles. *)
    mutable min_rate : float;
    mutable min_station : int;
    mutable min_valid : bool;
  }

  let note t station rate =
    if t.min_valid then begin
      if rate <= t.min_rate then begin
        t.min_rate <- rate;
        t.min_station <- station
      end
      else if station = t.min_station then t.min_valid <- false
    end

  let resum_work t p =
    let s = ref 0.0 in
    for i = 0 to t.ns - 1 do
      if t.assign.(i) = p then s := !s +. t.spec.Costspec.stage_work.(i)
    done;
    t.work.(p) <- !s

  let set_proc t p =
    let rate =
      if t.work.(p) <= 0.0 then infinity
      else t.spec.Costspec.node_rates.(p) /. t.work.(p)
    in
    t.proc_rate.(p) <- rate;
    note t p rate

  (* [Costspec.service_rate], with the sharing count read from [counts]. *)
  let service_rate t i =
    let p = t.assign.(i) in
    let sharing = Float.of_int t.counts.(p) in
    let work = t.spec.Costspec.stage_work.(i) in
    if work <= 0.0 then infinity else t.spec.Costspec.node_rates.(p) /. (work *. sharing)

  (* [Costspec.move_rate] on the scratch assignment. *)
  let move_rate t i =
    let spec = t.spec in
    let time =
      if i = 0 then begin
        let p = t.assign.(0) in
        spec.Costspec.user_latency.(p) +. (spec.Costspec.item_bytes /. spec.Costspec.user_bandwidth.(p))
      end
      else if i = t.ns then begin
        let p = t.assign.(t.ns - 1) in
        spec.Costspec.user_latency.(p)
        +. (spec.Costspec.output_bytes.(t.ns - 1) /. spec.Costspec.user_bandwidth.(p))
      end
      else begin
        let src = t.assign.(i - 1) and dst = t.assign.(i) in
        spec.Costspec.latency.(src).(dst)
        +. (spec.Costspec.output_bytes.(i - 1) /. spec.Costspec.bandwidth.(src).(dst))
      end
    in
    if time <= 0.0 then infinity else 1.0 /. time

  (* [stage_cycle_time] + the cycle-station rate from [stations]. *)
  let set_cycle t i =
    let service =
      let rate = service_rate t i in
      if rate = infinity then 0.0 else 1.0 /. rate
    in
    let move_out =
      let rate = move_rate t (i + 1) in
      if rate = infinity then 0.0 else 1.0 /. rate
    in
    let cycle = service +. move_out in
    let rate = if cycle <= 0.0 then infinity else 1.0 /. cycle in
    t.cycle_rate.(i) <- rate;
    note t (t.np + i) rate

  let refresh_min t =
    let best = ref infinity and station = ref 0 in
    for p = 0 to t.np - 1 do
      if t.proc_rate.(p) < !best then begin
        best := t.proc_rate.(p);
        station := p
      end
    done;
    for i = 0 to t.ns - 1 do
      if t.cycle_rate.(i) < !best then begin
        best := t.cycle_rate.(i);
        station := t.np + i
      end
    done;
    t.min_rate <- !best;
    t.min_station <- !station;
    t.min_valid <- true

  let create spec m =
    let ns = Costspec.stages spec and np = Costspec.processors spec in
    if Mapping.stages m <> ns then invalid_arg "Analytic.Incr.create: stage count mismatch";
    let assign = Mapping.to_array m in
    let t =
      {
        spec;
        ns;
        np;
        assign;
        counts = Array.make np 0;
        work = Array.make np 0.0;
        proc_rate = Array.make np infinity;
        cycle_rate = Array.make ns infinity;
        min_rate = infinity;
        min_station = 0;
        min_valid = false;
      }
    in
    Array.iter (fun p -> t.counts.(p) <- t.counts.(p) + 1) assign;
    for p = 0 to np - 1 do
      resum_work t p;
      set_proc t p
    done;
    for i = 0 to ns - 1 do
      set_cycle t i
    done;
    t

  let move t ~stage q =
    if stage < 0 || stage >= t.ns then invalid_arg "Analytic.Incr.move: stage out of range";
    if q < 0 || q >= t.np then invalid_arg "Analytic.Incr.move: processor out of range";
    let p = t.assign.(stage) in
    if p <> q then begin
      t.assign.(stage) <- q;
      t.counts.(p) <- t.counts.(p) - 1;
      t.counts.(q) <- t.counts.(q) + 1;
      resum_work t p;
      resum_work t q;
      set_proc t p;
      set_proc t q;
      (* Cycles whose service sharing or either move endpoint changed: every
         stage still (or now) on [p] or [q], plus the predecessor of the moved
         stage, whose output move re-targets. *)
      for j = 0 to t.ns - 1 do
        if t.assign.(j) = p || t.assign.(j) = q || j = stage - 1 then set_cycle t j
      done
    end

  let score t =
    if not t.min_valid then refresh_min t;
    t.min_rate

  let assignment t i = t.assign.(i)
  let mapping t = Mapping.of_array ~processors:t.np t.assign
  let stages t = t.ns
  let processors t = t.np
end

let fill_latency spec m =
  let ns = Costspec.stages spec in
  let services =
    List.fold_left
      (fun acc i ->
        let rate = Costspec.service_rate spec m i in
        acc +. (if rate = infinity then 0.0 else 1.0 /. rate))
      0.0 (List.init ns Fun.id)
  in
  let moves =
    List.fold_left
      (fun acc i ->
        let rate = Costspec.move_rate spec m i in
        acc +. (if rate = infinity then 0.0 else 1.0 /. rate))
      0.0
      (List.init (ns + 1) Fun.id)
  in
  services +. moves

let completion_time spec m ~items =
  if items <= 0 then invalid_arg "Analytic.completion_time: items must be positive";
  let x = throughput spec m in
  fill_latency spec m +. (Float.of_int (items - 1) /. x)
