(** Latency service-level objectives over windowed sojourn times.

    A spec reads "the [target_quantile] of per-item sojourns must stay
    within [threshold] seconds, assessed per [window]-second window". The
    meter accumulates departures, {!close_window} seals the current window
    into a {!window_stats} (emitted on the event bus as
    [Aspipe_obs.Event.Slo_window] by the serving driver), and attainment is
    the fraction of windows that met their quantile budget. *)

type spec = private { target_quantile : float; threshold : float; window : float }

val spec : target_quantile:float -> threshold:float -> window:float -> spec
(** Raises [Invalid_argument] unless [target_quantile ∈ (0,1)] and
    [threshold], [window] are positive. *)

type window_stats = {
  index : int;  (** 0-based window number *)
  until : float;  (** virtual time the window was closed at *)
  completions : int;
  violations : int;  (** departures whose sojourn exceeded the threshold *)
  attained : bool;
      (** [violations ≤ (1 − target_quantile) · completions]; an empty
          window is vacuously attained *)
}

type t

val create : spec -> t
val get_spec : t -> spec

val observe : t -> sojourn:float -> unit
(** Account one departure into the current window. *)

val close_window : t -> now:float -> window_stats
(** Seal the current window, reset the in-window counters, and return the
    sealed stats (also appended to {!windows}). *)

val windows : t -> window_stats list
(** All sealed windows, oldest first. *)

val attainment : t -> float
(** Fraction of sealed windows attained; [nan] before any window closed. *)

val completions_total : t -> int
val violations_total : t -> int

val pp_spec : Format.formatter -> spec -> unit
