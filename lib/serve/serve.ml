module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Monitor = Aspipe_grid.Monitor
module Trace = Aspipe_grid.Trace
module Skel_sim = Aspipe_skel.Skel_sim
module Mapping = Aspipe_model.Mapping
module Costspec = Aspipe_model.Costspec
module Predictor = Aspipe_model.Predictor
module Search = Aspipe_model.Search
module Scenario = Aspipe_core.Scenario
module Policy = Aspipe_core.Policy
module Calibration = Aspipe_core.Calibration
module Migration = Aspipe_core.Migration

let log_src = Logs.Src.create "aspipe.serve" ~doc:"Open-arrival serving driver"

module Log = (val Logs.src_log log_src)

type config = {
  evaluator : Predictor.kind;
  monitor_every : float;
  evaluate_every : float;
  sensor : Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  migration : Migration.t;
  fix_first_on : int option;
  failover : Policy.failover;
  headroom : float;
  amortize_horizon : float;
  queue_capacity : int option;
}

let default_config =
  {
    evaluator = Predictor.Analytic;
    monitor_every = 5.0;
    evaluate_every = 10.0;
    sensor = Monitor.default_sensor;
    probes = 5;
    measurement_noise = 0.01;
    migration = Migration.default;
    fix_first_on = None;
    failover = Policy.default_failover;
    headroom = 1.2;
    amortize_horizon = 60.0;
    queue_capacity = None;
  }

type report = {
  scenario_name : string;
  autoscaler_name : string;
  trace : Trace.t;
  slo : Slo.spec;
  windows : Slo.window_stats list;
  attainment : float;
  arrivals : int;
  completions : int;
  violations : int;
  p50 : float;
  p99 : float;
  p999 : float;
  mean_sojourn : float;
  max_sojourn : float;
  node_seconds : float;
  mean_nodes : float;
  duration : float;
  initial_mapping : Mapping.t;
  final_mapping : Mapping.t;
  adaptation_count : int;
  policy_evaluations : int;
  failover_count : int;
  items_lost : int;
}

(* Exact nearest-rank quantile of a sorted sample; [nan] when empty. *)
let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then nan
  else a.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. Float.of_int n)) - 1)))

let distinct_nodes m = List.length (List.sort_uniq Int.compare (Array.to_list m))

(* Cheapest adequate mapping: fewest distinct nodes whose predicted
   throughput still covers [required]; ties broken towards the higher
   predicted rate, then enumeration order. The scale-down target. *)
let cheapest predictor ~stages ~processors ~fix_first_on ~required =
  match Mapping.enumerate ?fix_first_on ~stages ~processors () with
  | exception Invalid_argument _ -> None
  | candidates ->
      let best =
        List.fold_left
          (fun acc m ->
            let rate = Predictor.evaluate predictor m in
            if rate < required then acc
            else
              let cost = distinct_nodes (Mapping.to_array m) in
              match acc with
              | Some (bc, br, _) when bc < cost || (bc = cost && br >= rate) -> acc
              | _ -> Some (cost, rate, m))
          None candidates
      in
      Option.map (fun (_, _, m) -> m) best

let run ?(config = default_config) ?instrument ?(max_items = max_int)
    ?(initial = `Cheapest) ~autoscaler ~arrival ~slo ?(provision_rate = 0.0) ~scenario
    ~seed () =
  let root_rng = Rng.create seed in
  let env_rng = Rng.split root_rng in
  let calib_rng = Rng.split root_rng in
  let sim_rng = Rng.split root_rng in
  let monitor_rng = Rng.split root_rng in
  let arrival_rng = Rng.split root_rng in
  let topo = Scenario.build scenario ~rng:env_rng in
  let engine = Topology.engine topo in
  let bus = Engine.bus engine in
  (match instrument with Some f -> f bus | None -> ());
  let stages = scenario.Scenario.stages in
  let input = scenario.Scenario.input in
  let horizon = scenario.Scenario.horizon in
  (* Runaway guard: a stalled pipeline (dead node, failover disabled) would
     otherwise keep the periodic evaluators alive forever. *)
  let drain_limit = 3.0 *. horizon in
  let ns = Array.length stages in
  let processors = Topology.size topo in
  let policy = Autoscaler.fresh autoscaler in

  (* Calibration and monitoring, exactly as in the closed-stream engine. *)
  let calibration =
    Calibration.run ~probes:config.probes ~measurement_noise:config.measurement_noise ~bus
      ~rng:calib_rng stages
  in
  let calibrated_work = Calibration.work_vector calibration in
  let monitor =
    Monitor.create ~sensor:config.sensor ~suspect_after:config.failover.Policy.suspect_after
      ~rng:monitor_rng ~every:config.monitor_every ~horizon topo
  in
  let spec_from ?link_quality ?user_link_quality availability =
    Costspec.with_stage_work
      (Costspec.of_topology ~availability ?link_quality ?user_link_quality ~topo ~stages ~input
         ())
      calibrated_work
  in
  let belief_spec () =
    spec_from
      ~link_quality:(fun ~src ~dst -> Monitor.link_forecast monitor ~src ~dst)
      ~user_link_quality:(Monitor.user_link_forecast monitor)
      (fun i -> if Monitor.suspected monitor i then 1e-9 else Monitor.node_forecast monitor i)
  in

  (* Serving-style provisioning: start on the cheapest mapping whose
     predicted rate covers [provision_rate × headroom] (the demand promise),
     not the throughput-maximal one — over-provisioning is exactly the cost
     the autoscalers are being compared on. *)
  let initial_spec = spec_from (fun i -> Node.availability (Topology.node topo i)) in
  let initial_predictor = Predictor.make ~kind:config.evaluator initial_spec in
  let initial_search =
    match config.fix_first_on with
    | None -> Predictor.choose initial_predictor
    | Some p -> Predictor.choose ~fix_first_on:p initial_predictor
  in
  let initial_mapping =
    match initial with
    | `Best -> initial_search.Search.mapping
    | `Cheapest -> (
        match
          cheapest initial_predictor ~stages:ns ~processors
            ~fix_first_on:config.fix_first_on
            ~required:(provision_rate *. config.headroom)
        with
        | Some m -> m
        | None -> initial_search.Search.mapping)
  in
  Log.info (fun m ->
      m "[%s/%s] provisioned %s (predicted %.3f items/s for %.3f items/s demand)"
        scenario.Scenario.name (Autoscaler.name autoscaler)
        (Mapping.to_string initial_mapping)
        (Predictor.evaluate initial_predictor initial_mapping)
        provision_rate);

  (* Execution: open stream, latency stamped per item. *)
  let trace = Trace.create () in
  let meter = Slo.create slo in
  let window_sojourns = ref [] in
  let on_completion ~item:_ ~arrival:stamp =
    let sojourn = Engine.now engine -. stamp in
    Slo.observe meter ~sojourn;
    window_sojourns := sojourn :: !window_sojourns
  in
  let sim =
    Skel_sim.create ?queue_capacity:config.queue_capacity ~trace ~arrivals:`External
      ~on_completion ~rng:sim_rng ~topo ~stages
      ~mapping:(Mapping.to_array initial_mapping)
      ~input ()
  in
  let next_item = ref 0 in
  Arrival.schedule ~max_items ~until:horizon ~rng:arrival_rng ~engine arrival
    ~f:(fun () ->
      Skel_sim.inject sim ~item:!next_item;
      incr next_item);
  let backlog () = Skel_sim.items_injected sim - Skel_sim.items_completed sim in

  (* Node-seconds: the integral over time of how many distinct nodes the
     adopted mapping occupies — the provisioned-cost axis every autoscaler
     is scored on. Migration overlap is not double-charged; the clock
     switches to the target mapping's footprint at commit. *)
  let node_seconds = ref 0.0 in
  let ns_since = ref 0.0 in
  let ns_nodes = ref (distinct_nodes (Mapping.to_array initial_mapping)) in
  let account_nodes_until_now () =
    let now = Engine.now engine in
    node_seconds := !node_seconds +. (Float.of_int !ns_nodes *. (now -. !ns_since));
    ns_since := now
  in
  let adopt_mapping target =
    account_nodes_until_now ();
    ns_nodes := distinct_nodes target
  in

  (* SLO windows close on their own periodic clock and are published as
     control events, so any sink (meters, JSONL, Perfetto) sees attainment
     as it happens. *)
  Engine.periodic engine ~every:slo.Slo.window (fun () ->
      let now = Engine.now engine in
      let stats = Slo.close_window meter ~now in
      Aspipe_obs.Bus.emit bus
        (Aspipe_obs.Event.Slo_window
           {
             window = stats.Slo.index;
             until = stats.Slo.until;
             completions = stats.Slo.completions;
             violations = stats.Slo.violations;
             attained = stats.Slo.attained;
           });
      now < drain_limit && (now < horizon || backlog () > 0));

  let adopted_throughput = ref (Predictor.evaluate initial_predictor initial_mapping) in
  let last_eval_time = ref 0.0 in
  let last_eval_completed = ref 0 in
  let last_eval_injected = ref 0 in
  let prev_p99 = ref nan in
  let evaluations = ref 0 in
  let adaptation_count = ref 0 in
  let failover_count = ref 0 in
  let last_failover = ref neg_infinity in
  let try_failover () =
    let current = Skel_sim.mapping sim in
    let suspect_mapped =
      config.failover.Policy.enabled
      && Array.exists (fun node -> Monitor.suspected monitor node) current
    in
    if
      suspect_mapped
      && Engine.now engine -. !last_failover >= config.failover.Policy.backoff
      && !failover_count < config.failover.Policy.max_failovers
    then begin
      let predictor = Predictor.make ~kind:config.evaluator (belief_spec ()) in
      let result =
        match config.fix_first_on with
        | None -> Predictor.choose predictor
        | Some p -> Predictor.choose ~fix_first_on:p predictor
      in
      let target = Mapping.to_array result.Search.mapping in
      if target <> current then begin
        let replayed = List.length (Skel_sim.lost_items sim) in
        adopt_mapping target;
        Skel_sim.failover sim target;
        incr failover_count;
        last_failover := Engine.now engine;
        adopted_throughput := result.Search.score;
        Aspipe_obs.Bus.emit bus
          (Aspipe_obs.Event.Failover_committed
             { mapping_before = current; mapping_after = target; items_redispatched = replayed });
        true
      end
      else false
    end
    else false
  in
  let evaluate () =
    let now = Engine.now engine in
    if now >= drain_limit || ((not (backlog () > 0)) && now >= horizon) then false
    else if Skel_sim.migrating sim then true
    else if try_failover () then true
    else begin
      incr evaluations;
      let completed = Skel_sim.items_completed sim in
      let injected = Skel_sim.items_injected sim in
      let window = now -. !last_eval_time in
      let observed =
        if window <= 0.0 then 0.0
        else Float.of_int (completed - !last_eval_completed) /. window
      in
      let arrival_rate =
        if window <= 0.0 then 0.0
        else Float.of_int (injected - !last_eval_injected) /. window
      in
      last_eval_time := now;
      last_eval_completed := completed;
      last_eval_injected := injected;
      let sorted = Array.of_list !window_sojourns in
      Array.sort Float.compare sorted;
      window_sojourns := [];
      let p99 = quantile_sorted sorted 0.99 in
      let sojourn_slope =
        if Float.is_nan p99 || Float.is_nan !prev_p99 || window <= 0.0 then 0.0
        else (p99 -. !prev_p99) /. window
      in
      prev_p99 := p99;
      let spec = belief_spec () in
      let predictor = Predictor.make ~kind:config.evaluator spec in
      let current = Mapping.of_array ~processors (Skel_sim.mapping sim) in
      let ctx =
        {
          Policy.time = now;
          current;
          predictor;
          observed_throughput = observed;
          adopted_throughput = !adopted_throughput;
          (* Open streams have no finite remainder; amortize migrations
             against the backlog plus the demand expected over the
             amortization horizon. *)
          items_remaining =
            backlog () + int_of_float (Float.ceil (arrival_rate *. config.amortize_horizon));
          migration_stall =
            (fun target -> Migration.stall_seconds config.migration ~spec ~stages ~current ~target);
          choose_best =
            (fun () ->
              match config.fix_first_on with
              | None -> Predictor.choose predictor
              | Some p -> Predictor.choose ~fix_first_on:p predictor);
          serving =
            Some
              {
                Policy.backlog = backlog ();
                arrival_rate;
                p99_sojourn = p99;
                sojourn_slope;
                slo_threshold = slo.Slo.threshold;
                choose_cheapest =
                  (fun ~headroom ->
                    cheapest predictor ~stages:ns ~processors
                      ~fix_first_on:config.fix_first_on
                      ~required:(arrival_rate *. headroom));
              };
        }
      in
      Aspipe_obs.Bus.emit bus
        (Aspipe_obs.Event.Adaptation_considered
           {
             mapping = Mapping.to_array current;
             observed_throughput = observed;
             adopted_throughput = !adopted_throughput;
           });
      (match Policy.decide policy ctx with
      | Policy.Keep ->
          Aspipe_obs.Bus.emit bus
            (Aspipe_obs.Event.Adaptation_rejected
               { mapping = Mapping.to_array current; observed_throughput = observed })
      | Policy.Remap target ->
          let stall = Migration.stall_seconds config.migration ~spec ~stages ~current ~target in
          let gain = Predictor.evaluate predictor target -. Predictor.evaluate predictor current in
          adopt_mapping (Mapping.to_array target);
          ignore (Skel_sim.remap sim (Mapping.to_array target));
          incr adaptation_count;
          Aspipe_obs.Bus.emit bus
            (Aspipe_obs.Event.Adaptation_committed
               {
                 mapping_before = Mapping.to_array current;
                 mapping_after = Mapping.to_array target;
                 predicted_gain = gain;
                 migration_cost = stall;
               });
          adopted_throughput := Predictor.evaluate predictor target;
          Log.info (fun m ->
              m "[%s/%s] t=%.1f remap %s -> %s (%d in flight, p99 %.2fs)"
                scenario.Scenario.name (Autoscaler.name autoscaler) now
                (Mapping.to_string current) (Mapping.to_string target)
                (backlog ()) p99));
      true
    end
  in
  Engine.periodic engine ~every:config.evaluate_every evaluate;

  (* The serving run drives the engine directly: arrivals stop at the
     horizon, the pipeline drains, the self-rescheduling components wind
     down, and the queue empties on its own. *)
  Engine.run engine;
  account_nodes_until_now ();

  let sojourns = Array.map snd (Trace.sojourns trace) in
  Array.sort Float.compare sojourns;
  let elapsed = Engine.now engine in
  {
    scenario_name = scenario.Scenario.name;
    autoscaler_name = Autoscaler.name autoscaler;
    trace;
    slo;
    windows = Slo.windows meter;
    attainment = Slo.attainment meter;
    arrivals = Skel_sim.items_injected sim;
    completions = Skel_sim.items_completed sim;
    violations = Slo.violations_total meter;
    p50 = quantile_sorted sojourns 0.5;
    p99 = quantile_sorted sojourns 0.99;
    p999 = quantile_sorted sojourns 0.999;
    mean_sojourn = Trace.mean_sojourn trace;
    max_sojourn =
      (if Array.length sojourns = 0 then nan else sojourns.(Array.length sojourns - 1));
    node_seconds = !node_seconds;
    mean_nodes = (if elapsed <= 0.0 then 0.0 else !node_seconds /. elapsed);
    duration = Trace.makespan trace;
    initial_mapping;
    final_mapping = Mapping.of_array ~processors (Skel_sim.mapping sim);
    adaptation_count = !adaptation_count;
    policy_evaluations = !evaluations;
    failover_count = !failover_count;
    items_lost = Skel_sim.items_lost_total sim;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>serving %s under %s (%a):@ %d arrivals, %d completions, %d SLO violations@ sojourn \
     p50 %.3fs p99 %.3fs p999 %.3fs (mean %.3fs)@ attainment %.1f%% over %d windows@ cost %.0f \
     node-seconds (mean %.2f nodes), %d adaptations%t@]"
    r.scenario_name r.autoscaler_name Slo.pp_spec r.slo r.arrivals r.completions r.violations
    r.p50 r.p99 r.p999 r.mean_sojourn
    (100.0 *. r.attainment)
    (List.length r.windows) r.node_seconds r.mean_nodes r.adaptation_count
    (fun ppf ->
      if r.failover_count > 0 || r.items_lost > 0 then
        Format.fprintf ppf "@ %d failovers, %d items lost" r.failover_count r.items_lost)
