module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Engine = Aspipe_des.Engine
module Stream_spec = Aspipe_skel.Stream_spec

type t =
  | Poisson of { rate : float }
  | Nhpp of { rate : float -> float; rate_max : float }
  | Mmpp of { rates : float array; mean_holding : float array }
  | Replay of { times : float array }

let poisson ~rate =
  if rate <= 0.0 then invalid_arg "Arrival.poisson: rate must be positive";
  Poisson { rate }

let nhpp ~rate ~rate_max =
  if rate_max <= 0.0 then invalid_arg "Arrival.nhpp: rate_max must be positive";
  Nhpp { rate; rate_max }

let mmpp ~rates ~mean_holding =
  let n = Array.length rates in
  if n = 0 || Array.length mean_holding <> n then
    invalid_arg "Arrival.mmpp: rates and mean_holding must have equal nonzero length";
  Array.iter
    (fun r -> if r < 0.0 then invalid_arg "Arrival.mmpp: negative rate")
    rates;
  Array.iter
    (fun h -> if h <= 0.0 then invalid_arg "Arrival.mmpp: holding times must be positive")
    mean_holding;
  if not (Array.exists (fun r -> r > 0.0) rates) then
    invalid_arg "Arrival.mmpp: at least one state must have a positive rate";
  Mmpp { rates; mean_holding }

let replay times =
  let n = Array.length times in
  for i = 0 to n - 1 do
    if times.(i) < 0.0 then invalid_arg "Arrival.replay: negative arrival time";
    if i > 0 && times.(i) < times.(i - 1) then
      invalid_arg "Arrival.replay: times must be non-decreasing"
  done;
  Replay { times = Array.copy times }

let diurnal ~base ~amplitude ~period =
  if base <= 0.0 then invalid_arg "Arrival.diurnal: base rate must be positive";
  if amplitude < 0.0 || amplitude > base then
    invalid_arg "Arrival.diurnal: amplitude must lie in [0, base]";
  if period <= 0.0 then invalid_arg "Arrival.diurnal: period must be positive";
  let two_pi = 8.0 *. atan 1.0 in
  Nhpp
    {
      rate = (fun t -> base +. (amplitude *. sin (two_pi *. t /. period)));
      rate_max = base +. amplitude;
    }

let flash_crowd ~base ~peak ~at ~ramp ~decay =
  if base <= 0.0 then invalid_arg "Arrival.flash_crowd: base rate must be positive";
  if peak < base then invalid_arg "Arrival.flash_crowd: peak must be >= base";
  if at < 0.0 then invalid_arg "Arrival.flash_crowd: surge start must be >= 0";
  if ramp <= 0.0 || decay <= 0.0 then
    invalid_arg "Arrival.flash_crowd: ramp and decay must be positive";
  let surge = peak -. base in
  Nhpp
    {
      rate =
        (fun t ->
          if t < at then base
          else if t < at +. ramp then base +. (surge *. ((t -. at) /. ramp))
          else base +. (surge *. exp (-.(t -. at -. ramp) /. decay)));
      rate_max = peak;
    }

let of_stream_spec (spec : Stream_spec.t) =
  match spec.arrival with
  | Stream_spec.Immediate -> Replay { times = Array.make spec.items 0.0 }
  | Stream_spec.Spaced dt ->
      Replay { times = Array.init spec.items (fun i -> dt *. Float.of_int i) }
  | Stream_spec.Poisson rate -> Poisson { rate }

(* A stateful source of successive arrival instants: [None] once the next
   instant would land past [until]. Each call draws from [rng] at most a
   bounded-expectation number of times, so the engine only pays for
   arrivals it actually sees — nothing is materialized. *)
let source ~until ~rng t =
  match t with
  | Poisson { rate } ->
      let clock = ref 0.0 in
      fun () ->
        clock := !clock +. Variate.exponential rng ~rate;
        if !clock > until then None else Some !clock
  | Nhpp { rate; rate_max } ->
      (* Lewis–Shedler thinning: homogeneous candidates at [rate_max],
         accepted with probability rate(t)/rate_max. Rejected candidates
         still advance the clock, so a long all-zero-rate stretch costs
         O(rate_max * stretch) draws and then terminates at [until]. *)
      let clock = ref 0.0 in
      let rec next () =
        clock := !clock +. Variate.exponential rng ~rate:rate_max;
        if !clock > until then None
        else if Rng.float rng < rate !clock /. rate_max then Some !clock
        else next ()
      in
      next
  | Mmpp { rates; mean_holding } ->
      (* Cyclic Markov-modulated Poisson: states visited in order, each held
         for an Exp(1/mean_holding) sojourn, arrivals at the state's rate.
         Crossing a state boundary discards the in-progress inter-arrival
         draw and redraws from the boundary — exact by memorylessness. *)
      let state = ref 0 in
      let clock = ref 0.0 in
      let holding s = Variate.exponential rng ~rate:(1.0 /. mean_holding.(s)) in
      let state_until = ref (holding 0) in
      let rec next () =
        if !clock > until then None
        else begin
          let rate = rates.(!state) in
          let candidate =
            if rate <= 0.0 then infinity else !clock +. Variate.exponential rng ~rate
          in
          if candidate <= !state_until then begin
            clock := candidate;
            if candidate > until then None else Some candidate
          end
          else begin
            clock := !state_until;
            state := (!state + 1) mod Array.length rates;
            state_until := !state_until +. holding !state;
            next ()
          end
        end
      in
      next
  | Replay { times } ->
      let i = ref 0 in
      fun () ->
        if !i >= Array.length times then None
        else begin
          let v = times.(!i) in
          incr i;
          if v > until then None else Some v
        end

let times ?(max_items = max_int) ~until ~rng t =
  let next = source ~until ~rng t in
  let acc = ref [] in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < max_items do
    match next () with
    | None -> continue := false
    | Some v ->
        acc := v :: !acc;
        incr count
  done;
  Array.of_list (List.rev !acc)

let schedule ?(max_items = max_int) ~until ~rng ~engine t ~f =
  let next = source ~until ~rng t in
  let count = ref 0 in
  (* Self-rescheduling: exactly one pending arrival event at a time. The
     next instant is drawn inside the previous arrival's callback, so the
     process is lazy in engine time and still fully deterministic — the
     dedicated [rng] is consumed in arrival order only. *)
  let rec arm () =
    if !count < max_items then
      match next () with
      | None -> ()
      | Some time ->
          incr count;
          ignore
            (Engine.schedule_at engine ~time (fun () ->
                 f ();
                 arm ()))
  in
  arm ()

let spec_grammar =
  "KIND:ARGS — poisson:RATE | diurnal:BASE,AMPLITUDE,PERIOD | \
   flash:BASE,PEAK,AT,RAMP,DECAY | mmpp:RATE/HOLD,RATE/HOLD,... | replay:T1,T2,..."

let parse_spec spec =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let number token =
    match float_of_string_opt (String.trim token) with
    | Some v -> v
    | None -> fail "arrival spec %S: %S is not a number" spec token
  in
  let numbers args = List.map number (String.split_on_char ',' args) in
  match String.index_opt spec ':' with
  | None -> fail "arrival spec %S: expected %s" spec spec_grammar
  | Some i -> (
      let kind = String.lowercase_ascii (String.trim (String.sub spec 0 i)) in
      let args = String.sub spec (i + 1) (String.length spec - i - 1) in
      let arity () =
        fail "arrival spec %S: wrong argument count for %s (%s)" spec kind spec_grammar
      in
      match kind with
      | "poisson" -> (
          match numbers args with [ rate ] -> poisson ~rate | _ -> arity ())
      | "diurnal" -> (
          match numbers args with
          | [ base; amplitude; period ] -> diurnal ~base ~amplitude ~period
          | _ -> arity ())
      | "flash" -> (
          match numbers args with
          | [ base; peak; at; ramp; decay ] -> flash_crowd ~base ~peak ~at ~ramp ~decay
          | _ -> arity ())
      | "replay" -> replay (Array.of_list (numbers args))
      | "mmpp" ->
          let states =
            List.map
              (fun clause ->
                match String.split_on_char '/' clause with
                | [ rate; holding ] -> (number rate, number holding)
                | _ -> fail "arrival spec %S: mmpp state %S is not RATE/HOLD" spec clause)
              (String.split_on_char ',' args)
          in
          mmpp
            ~rates:(Array.of_list (List.map fst states))
            ~mean_holding:(Array.of_list (List.map snd states))
      | _ -> fail "arrival spec %S: unknown kind %S (%s)" spec kind spec_grammar)

let pp ppf t =
  match t with
  | Poisson { rate } -> Format.fprintf ppf "poisson(%g/s)" rate
  | Nhpp { rate_max; _ } -> Format.fprintf ppf "nhpp(rate_max %g/s)" rate_max
  | Mmpp { rates; _ } ->
      Format.fprintf ppf "mmpp(%d states, rates %s)" (Array.length rates)
        (String.concat ","
           (List.map (Printf.sprintf "%g") (Array.to_list rates)))
  | Replay { times } -> Format.fprintf ppf "replay(%d arrivals)" (Array.length times)
