(** The autoscaler interface: one name for each way of deciding when a
    serving pipeline re-maps (scales).

    Every autoscaler is a recipe for a fresh {!Aspipe_core.Policy.t} —
    policies carry mutable state (cool-down clocks), so each run must get
    its own value via {!fresh}. The paper's remap-on-divergence trigger,
    the backlog trigger and the latency-gradient trigger all fit behind
    this one interface, which is what lets the serving experiments compare
    them like-for-like on SLO attainment versus provisioned node-seconds. *)

type t

val name : t -> string

val fresh : t -> Aspipe_core.Policy.t
(** A fresh, independently-stateful policy value for one run. *)

val static : unit -> t
(** Never re-maps: whatever the run was provisioned with, it keeps. *)

val remap_on_divergence :
  ?drop:float -> ?min_gain:float -> ?cooldown:float -> unit -> t
(** The paper's trigger ({!Aspipe_core.Policy.threshold}): re-map when
    observed throughput diverges below the adopted expectation. Demand-
    blind: an arrival surge that saturates the pipeline does not move
    observed throughput below the adopted rate, so it cannot fire. *)

val queue_length :
  ?high:int -> ?low:int -> ?headroom:float -> ?min_gain:float -> ?cooldown:float ->
  unit -> t
(** Backlog hysteresis ({!Aspipe_core.Policy.queue_length}). *)

val latency_gradient :
  ?margin:float -> ?relax:float -> ?headroom:float -> ?min_gain:float ->
  ?cooldown:float -> unit -> t
(** Pre-breach latency trigger ({!Aspipe_core.Policy.latency_gradient}). *)
