type spec = { target_quantile : float; threshold : float; window : float }

let spec ~target_quantile ~threshold ~window =
  if target_quantile <= 0.0 || target_quantile >= 1.0 then
    invalid_arg "Slo.spec: target_quantile must lie in (0, 1)";
  if threshold <= 0.0 then invalid_arg "Slo.spec: threshold must be positive";
  if window <= 0.0 then invalid_arg "Slo.spec: window must be positive";
  { target_quantile; threshold; window }

type window_stats = {
  index : int;
  until : float;
  completions : int;
  violations : int;
  attained : bool;
}

type t = {
  spec : spec;
  mutable window_completions : int;
  mutable window_violations : int;
  mutable windows : window_stats list;  (* newest first *)
  mutable next_index : int;
  mutable total_completions : int;
  mutable total_violations : int;
}

let create spec =
  {
    spec;
    window_completions = 0;
    window_violations = 0;
    windows = [];
    next_index = 0;
    total_completions = 0;
    total_violations = 0;
  }

let get_spec t = t.spec

let observe t ~sojourn =
  t.window_completions <- t.window_completions + 1;
  t.total_completions <- t.total_completions + 1;
  if sojourn > t.spec.threshold then begin
    t.window_violations <- t.window_violations + 1;
    t.total_violations <- t.total_violations + 1
  end

(* A window is attained when the fraction of in-threshold departures meets
   the target quantile; an empty window is vacuously attained (nothing was
   served late): attained ⇔ violations ≤ (1 − q) · completions. The budget
   comparison carries a relative epsilon so that an exactly-on-budget
   window (2 violations of 20 at q = 0.9) is not flipped to a miss by
   (1 − q) rounding away from a representable value. *)
let close_window t ~now =
  let completions = t.window_completions in
  let violations = t.window_violations in
  let budget = (1.0 -. t.spec.target_quantile) *. Float.of_int completions in
  let attained =
    completions = 0
    || Float.of_int violations <= budget +. (1e-9 *. Float.of_int completions)
  in
  let stats = { index = t.next_index; until = now; completions; violations; attained } in
  t.windows <- stats :: t.windows;
  t.next_index <- t.next_index + 1;
  t.window_completions <- 0;
  t.window_violations <- 0;
  stats

let windows t = List.rev t.windows

let attainment t =
  match t.windows with
  | [] -> nan
  | ws ->
      let attained = List.length (List.filter (fun w -> w.attained) ws) in
      Float.of_int attained /. Float.of_int (List.length ws)

let completions_total t = t.total_completions
let violations_total t = t.total_violations

let pp_spec ppf s =
  Format.fprintf ppf "p%g of sojourns <= %gs per %gs window"
    (100.0 *. s.target_quantile) s.threshold s.window
