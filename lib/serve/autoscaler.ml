module Policy = Aspipe_core.Policy

type t = { name : string; fresh : unit -> Policy.t }

let name t = t.name
let fresh t = t.fresh ()

let static () = { name = "static"; fresh = (fun () -> Policy.never ()) }

let remap_on_divergence ?drop ?min_gain ?cooldown () =
  {
    name = "remap-on-divergence";
    fresh = (fun () -> Policy.threshold ?drop ?min_gain ?cooldown ());
  }

let queue_length ?high ?low ?headroom ?min_gain ?cooldown () =
  {
    name = "queue-length";
    fresh = (fun () -> Policy.queue_length ?high ?low ?headroom ?min_gain ?cooldown ());
  }

let latency_gradient ?margin ?relax ?headroom ?min_gain ?cooldown () =
  {
    name = "latency-gradient";
    fresh =
      (fun () -> Policy.latency_gradient ?margin ?relax ?headroom ?min_gain ?cooldown ());
  }
