(** The open-arrival serving driver: the adaptive engine re-hosted for a
    workload that never ends.

    Where {!Aspipe_core.Adaptive.run} drains a known batch and scores
    makespan, [run] serves an {!Arrival.t} process against a latency
    {!Slo.spec} and scores {e SLO attainment versus provisioned cost}:

    - arrivals are lazy self-rescheduling engine events ({!Arrival.schedule}),
      injected into an open-stream {!Aspipe_skel.Skel_sim} that stamps every
      item and emits per-item [Sojourn] events on departure;
    - SLO windows close on their own periodic clock and are published as
      [Slo_window] control events;
    - the autoscaler policy is evaluated periodically with the full serving
      context (backlog, observed arrival rate, windowed p99 and its slope,
      and a cheapest-adequate-mapping search for scale-down);
    - provisioned cost is accounted as node-seconds: the time integral of
      the adopted mapping's distinct-node footprint.

    Calibration, monitoring, belief formation and failover are shared with
    the closed-stream engine, so serving runs and batch runs are honestly
    comparable. *)

type config = {
  evaluator : Aspipe_model.Predictor.kind;
  monitor_every : float;
  evaluate_every : float;
  sensor : Aspipe_grid.Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  migration : Aspipe_core.Migration.t;
  fix_first_on : int option;
  failover : Aspipe_core.Policy.failover;
  headroom : float;
      (** capacity margin for provisioning and scale-down targets *)
  amortize_horizon : float;
      (** seconds of expected future demand a migration is amortized
          against (open streams have no finite item remainder) *)
  queue_capacity : int option;
}

val default_config : config

type report = {
  scenario_name : string;
  autoscaler_name : string;
  trace : Aspipe_grid.Trace.t;
  slo : Slo.spec;
  windows : Slo.window_stats list;
  attainment : float;  (** fraction of SLO windows attained; [nan] if none *)
  arrivals : int;
  completions : int;
  violations : int;  (** departures over the latency threshold *)
  p50 : float;  (** exact nearest-rank quantiles of the sojourn series *)
  p99 : float;
  p999 : float;
  mean_sojourn : float;
  max_sojourn : float;
  node_seconds : float;  (** provisioned cost *)
  mean_nodes : float;  (** node_seconds / run duration *)
  duration : float;  (** last departure's virtual time *)
  initial_mapping : Aspipe_model.Mapping.t;
  final_mapping : Aspipe_model.Mapping.t;
  adaptation_count : int;
  policy_evaluations : int;
  failover_count : int;
  items_lost : int;
}

val run :
  ?config:config ->
  ?instrument:(Aspipe_obs.Bus.t -> unit) ->
  ?max_items:int ->
  ?initial:[ `Cheapest | `Best ] ->
  autoscaler:Autoscaler.t ->
  arrival:Arrival.t ->
  slo:Slo.spec ->
  ?provision_rate:float ->
  scenario:Aspipe_core.Scenario.t ->
  seed:int ->
  unit ->
  report
(** Serve [arrival] through [scenario]'s pipeline until the scenario
    horizon, then let the queue drain. [provision_rate] (items/s, default
    0) is the demand the initial mapping is provisioned for: with
    [~initial:`Cheapest] (default) the run starts on the cheapest mapping
    predicted to cover [provision_rate × headroom]; [`Best] starts on the
    throughput-maximal mapping (the over-provisioned baseline).
    [max_items] bounds total arrivals (for embedded closed streams).
    Deterministic for fixed seed and configuration. *)

val pp_report : Format.formatter -> report -> unit
