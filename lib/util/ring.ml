type 'a t = {
  dummy : 'a;
  mutable buf : 'a array;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
}

(* Capacity is kept a power of two so index wrap-around is a mask, not a
   modulo. *)

let create ~dummy = { dummy; buf = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let buf = Array.make ncap t.dummy in
  (* Unroll the ring into the new array starting at 0. *)
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.((t.head + i) land (cap - 1))
  done;
  t.buf <- buf;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t;
  let mask = Array.length t.buf - 1 in
  t.buf.((t.head + t.len) land mask) <- x;
  t.len <- t.len + 1

let push_front t x =
  if t.len = Array.length t.buf then grow t;
  let mask = Array.length t.buf - 1 in
  let head = (t.head - 1) land mask in
  t.buf.(head) <- x;
  t.head <- head;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let x = t.buf.(t.head) in
  (* Overwrite the vacated cell so the ring does not retain the element. *)
  t.buf.(t.head) <- t.dummy;
  t.head <- (t.head + 1) land (Array.length t.buf - 1);
  t.len <- t.len - 1;
  x

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.buf.(t.head)

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) land (cap - 1))
  done

let clear t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    t.buf.((t.head + i) land (cap - 1)) <- t.dummy
  done;
  t.head <- 0;
  t.len <- 0
