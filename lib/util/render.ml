module Table = struct
  type t = { title : string; columns : string list; mutable rows : string list list }

  let create ~title ~columns = { title; columns; rows = [] }

  let add_row t row =
    if List.length row <> List.length t.columns then
      invalid_arg "Table.add_row: row width mismatch";
    t.rows <- row :: t.rows

  let add_float_row t ?(precision = 4) (label, values) =
    let cell v =
      if Float.is_nan v then "-" else Printf.sprintf "%.*g" precision v
    in
    add_row t (label :: List.map cell values)

  let title t = t.title
  let columns t = t.columns
  let rows t = List.rev t.rows

  let to_string t =
    let rows = List.rev t.rows in
    let all = t.columns :: rows in
    let ncols = List.length t.columns in
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
      all;
    let buffer = Buffer.create 256 in
    let render_row row =
      List.iteri
        (fun i cell ->
          Buffer.add_string buffer (if i = 0 then "| " else " | ");
          Buffer.add_string buffer cell;
          Buffer.add_string buffer (String.make (widths.(i) - String.length cell) ' '))
        row;
      Buffer.add_string buffer " |\n"
    in
    let rule () =
      Array.iter
        (fun w ->
          Buffer.add_char buffer '+';
          Buffer.add_string buffer (String.make (w + 2) '-'))
        widths;
      Buffer.add_string buffer "+\n"
    in
    Buffer.add_string buffer ("== " ^ t.title ^ " ==\n");
    rule ();
    render_row t.columns;
    rule ();
    List.iter render_row rows;
    rule ();
    Buffer.contents buffer

  let print t = Out.print_string (to_string t)
end

module Series = struct
  type t = { label : string; points : (float * float) array }

  let make label points = { label; points }
end

let plot ?(width = 64) ?(height = 16) (series : Series.t list) =
  let all_points = List.concat_map (fun s -> Array.to_list s.Series.points) series in
  match all_points with
  | [] -> "(empty plot)\n"
  | _ ->
      let xs = List.map fst all_points and ys = List.map snd all_points in
      let fold f = function [] -> 0.0 | x :: rest -> List.fold_left f x rest in
      let x_min = fold Float.min xs and x_max = fold Float.max xs in
      let y_min = Float.min 0.0 (fold Float.min ys) and y_max = fold Float.max ys in
      let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
      let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
      List.iteri
        (fun si s ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          Array.iter
            (fun (x, y) ->
              let col = int_of_float ((x -. x_min) /. x_span *. Float.of_int (width - 1)) in
              let row = int_of_float ((y -. y_min) /. y_span *. Float.of_int (height - 1)) in
              let row = height - 1 - row in
              if row >= 0 && row < height && col >= 0 && col < width then
                grid.(row).(col) <- glyph)
            s.Series.points)
        series;
      let buffer = Buffer.create (width * height) in
      Array.iteri
        (fun i line ->
          let y = y_max -. (Float.of_int i /. Float.of_int (height - 1) *. y_span) in
          Buffer.add_string buffer (Printf.sprintf "%10.3g |" y);
          Array.iter (Buffer.add_char buffer) line;
          Buffer.add_char buffer '\n')
        grid;
      Buffer.add_string buffer (String.make 11 ' ');
      Buffer.add_char buffer '+';
      Buffer.add_string buffer (String.make width '-');
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer
        (Printf.sprintf "%10s  %-10.4g%*s%10.4g\n" "" x_min (width - 20) "" x_max);
      List.iteri
        (fun si s ->
          Buffer.add_string buffer
            (Printf.sprintf "%12s%c = %s\n" "" glyphs.(si mod Array.length glyphs) s.Series.label))
        series;
      Buffer.contents buffer

let print_figure ~title ?(x_label = "x") ?(y_label = "y") series =
  Out.printf "== %s ==\n" title;
  List.iter
    (fun (s : Series.t) ->
      Out.printf "-- series: %s  (%s, %s)\n" s.Series.label x_label y_label;
      Array.iter (fun (x, y) -> Out.printf "%14.6g %14.6g\n" x y) s.Series.points)
    series;
  Out.print_string (plot series)
