(** A lock-free single-producer/single-consumer ring FIFO with a close
    protocol and batched (chunked) transfer — the inter-stage channel of the
    shared-memory pipeline backend ({!Skel_mc}).

    Exactly one domain may push (the producer) and exactly one domain may
    pop (the consumer); {!close} may be called from any domain and is
    idempotent. Under that discipline every operation on the fast path is a
    handful of plain loads/stores plus one [Atomic.set] of the caller's own
    index — no locks, no CAS loops:

    - the producer owns [tail] (the next slot to write) and keeps a cached
      snapshot of [head], refreshed from the atomic only when the cache says
      the ring is full (FastFlow-style), so an uncontended push does not even
      read the consumer's cache line;
    - the consumer owns [head] (the next slot to read) and keeps the mirror
      snapshot of [tail].

    Slow path: a party that finds the ring full (producer) or empty
    (consumer) spins briefly, then parks on a mutex/condition pair. A
    [waiters] flag is raised before the final re-check of the indices, and
    the opposite side broadcasts after publishing whenever the flag is up,
    so wake-ups cannot be lost; the fast path pays only one atomic read of
    the flag.

    Shutdown mirrors {!Aspipe_skel.Chan}: after [close], pushes raise
    {!Closed} and pops drain the remaining items then report exhaustion
    ([None] / chunk count 0). A producer that closes after its last push is
    guaranteed full drainage on the consumer side; a close racing a push
    from a third domain may lose that in-flight item, exactly like the
    failure-abort path it exists for.

    See DESIGN.md, "Multicore backend", for the memory-ordering argument. *)

type 'a t

exception Closed

val create : capacity:int -> 'a t
(** Ring with at least [capacity] slots (rounded up to a power of two).
    Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : 'a t -> int
(** The actual (power-of-two) slot count. *)

val length : 'a t -> int
(** Item count snapshot; exact only when both sides are quiescent. *)

val close : 'a t -> unit
(** Idempotent; callable from any domain. Wakes all parked parties. *)

val is_closed : 'a t -> bool

(** {1 Producer side} — one domain only. *)

val push : 'a t -> 'a -> unit
(** Blocks while full. Raises {!Closed} if the ring is closed. *)

val try_push : 'a t -> 'a -> bool
(** [false] when currently full. Raises {!Closed} if closed. *)

val push_chunk : 'a t -> 'a option array -> pos:int -> len:int -> unit
(** Transfer [src.(pos..pos+len-1)] — every cell must be [Some] — into the
    ring, blocking for space as needed; the option cells are moved, not
    re-allocated. Raises {!Closed} if the ring is closed before all [len]
    items are in (items already transferred stay transferred). *)

(** {1 Consumer side} — one domain only. *)

val pop : 'a t -> 'a option
(** Blocks while empty and open; [None] once closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking; [None] when currently empty (even if open). *)

val pop_chunk : 'a t -> 'a option array -> pos:int -> len:int -> int
(** Pop up to [len] items into [dst.(pos..)], blocking until at least one
    item is available or the ring is closed and drained; returns the count
    popped — [0] if and only if the ring is closed and empty ([len = 0]
    also returns 0 immediately). Vacated ring slots are reset so popped
    items are not retained. *)
