(** ASCII rendering for the experiment harness: tables matching the paper's
    layout, and figure series as both [(x, y)] listings and quick line plots
    so the shape of each reproduced figure is visible in a terminal. *)

module Table : sig
  type t

  val create : title:string -> columns:string list -> t
  val add_row : t -> string list -> unit
  (** Raises [Invalid_argument] if the row width differs from the header. *)

  val add_float_row : t -> ?precision:int -> (string * float list) -> unit
  (** [add_float_row t (label, values)] — convenience for numeric rows.
      NaN renders as ["-"]: an absent measurement, not a number. *)

  val title : t -> string
  val columns : t -> string list
  val rows : t -> string list list
  (** Rows in insertion order. *)

  val to_string : t -> string
  val print : t -> unit
end

module Series : sig
  type t = { label : string; points : (float * float) array }

  val make : string -> (float * float) array -> t
end

val print_figure :
  title:string -> ?x_label:string -> ?y_label:string -> Series.t list -> unit
(** Prints each series as aligned [(x, y)] columns followed by a compact
    ASCII plot (all series overlaid, one glyph per series). *)

val plot : ?width:int -> ?height:int -> Series.t list -> string
(** The ASCII plot alone. *)
