(** A growable FIFO ring buffer: O(1) push/pop at both ends with no
    per-element allocation, unlike [Queue] which allocates a cell per
    [push]. Used for the per-stage item queues on the simulator's hot
    path.

    The [dummy] element fills unused cells (and overwrites vacated ones,
    so popped elements are not retained); it is never returned. *)

type 'a t

val create : dummy:'a -> 'a t

val length : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the back; amortised O(1). *)

val push_front : 'a t -> 'a -> unit
(** Prepend at the front (used to restore re-queued items in order). *)

val pop : 'a t -> 'a
(** Remove and return the front element; raises [Invalid_argument] when
    empty. *)

val peek : 'a t -> 'a
(** Front element without removing it; raises [Invalid_argument] when
    empty. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Front-to-back iteration; the ring must not be mutated during it. *)

val clear : 'a t -> unit
(** Empty the ring, dropping references to all elements. *)
