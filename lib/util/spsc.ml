exception Closed

(* Indices are monotonically increasing ints (never wrapped — a 63-bit
   counter outlives any run); slot = index land mask. The length is
   [tail - head], fullness [tail - head = capacity], so an empty ring and a
   full ring are distinguishable without a spare slot.

   Ownership discipline (see the .mli): [tail] is written only by the
   producer, [head] only by the consumer. Each side also keeps a plain
   (non-atomic) snapshot of the *other* side's index — [head_cache] on the
   producer, [tail_cache] on the consumer — refreshed from the atomic only
   when the cached value can no longer prove progress is possible. The
   snapshots are sound because both indices are monotone: a stale
   [head_cache] under-reports how much the consumer has freed, so the
   producer can only be too conservative (never overwrites an unconsumed
   slot); a stale [tail_cache] under-reports what has been published, so the
   consumer can only be too conservative (never reads an unpublished slot).

   Publication: the producer writes [buf.(i)] (plain write) and then
   [Atomic.set tail] (release); the consumer observes the new [tail] via
   [Atomic.get] (acquire) before touching [buf.(i)]. The OCaml memory model
   makes the buffer write visible at that point. The symmetric argument
   covers the consumer's slot reset before it advances [head].

   The caches live in their own one-element arrays, allocated between
   padding blocks, so each side's hot mutable word shares a cache line with
   nothing the other side writes (OCaml 5.1 has no [Atomic.make_contended];
   sequential minor-heap allocation is the portable approximation, and the
   pads are retained in the record so a moving collector keeps the blocks
   apart). *)

type 'a t = {
  mask : int;
  buf : 'a option array;
  (* producer-owned line(s) *)
  tail : int Atomic.t;
  head_cache : int array;
  _pad_p : int array;
  (* consumer-owned line(s) *)
  head : int Atomic.t;
  tail_cache : int array;
  _pad_c : int array;
  (* shared, read-mostly *)
  closed : bool Atomic.t;
  waiters : int Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
}

let pad_words = 16

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = next_pow2 capacity in
  (* Allocation order groups each side's state and separates the groups. *)
  let tail = Atomic.make 0 in
  let head_cache = Array.make 1 0 in
  let _pad_p = Array.make pad_words 0 in
  let head = Atomic.make 0 in
  let tail_cache = Array.make 1 0 in
  let _pad_c = Array.make pad_words 0 in
  {
    mask = cap - 1;
    buf = Array.make cap None;
    tail;
    head_cache;
    _pad_p;
    head;
    tail_cache;
    _pad_c;
    closed = Atomic.make false;
    waiters = Atomic.make 0;
    mutex = Mutex.create ();
    cond = Condition.create ();
  }

let capacity t = t.mask + 1

(* The two reads are not a snapshot: the consumer can advance past a stale
   tail read, so clamp. *)
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let is_closed t = Atomic.get t.closed

(* ------------------------------------------------------- park / unpark *)

(* The flag-then-recheck protocol. The waiter raises [waiters] (with the
   mutex held) and then re-evaluates [ready] — which reads the other side's
   atomic index — before sleeping. The waker publishes (an atomic index
   write) and then reads [waiters]. Both orders are program order on
   sequentially consistent atomics, so either the waker sees the flag and
   broadcasts (under the same mutex, hence not between the waiter's re-check
   and its wait), or the waiter's re-check sees the waker's publication.
   Either way the wake-up cannot be lost. *)

let wake t =
  if Atomic.get t.waiters > 0 then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let park t ready =
  Mutex.lock t.mutex;
  Atomic.incr t.waiters;
  while not (ready t || Atomic.get t.closed) do
    Condition.wait t.cond t.mutex
  done;
  Atomic.decr t.waiters;
  Mutex.unlock t.mutex

let spin_budget = 64

let spin_then_park t ready =
  let budget = ref spin_budget in
  while (not (ready t)) && (not (Atomic.get t.closed)) && !budget > 0 do
    Domain.cpu_relax ();
    decr budget
  done;
  if (not (ready t)) && not (Atomic.get t.closed) then park t ready

let close t =
  Atomic.set t.closed true;
  (* Unconditional broadcast: a party between raising [waiters] and
     [Condition.wait] must still observe the close. *)
  Mutex.lock t.mutex;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

(* -------------------------------------------------------- producer side *)

(* Free slots, refreshing the head snapshot only when the cache says none
   are left. Runs on the producer domain only. *)
let space t =
  let tail = Atomic.get t.tail in
  let free = capacity t - (tail - t.head_cache.(0)) in
  if free > 0 then free
  else begin
    t.head_cache.(0) <- Atomic.get t.head;
    capacity t - (tail - t.head_cache.(0))
  end

let ready_push t = space t > 0

let try_push t x =
  if Atomic.get t.closed then raise Closed;
  if space t <= 0 then false
  else begin
    let tail = Atomic.get t.tail in
    t.buf.(tail land t.mask) <- Some x;
    Atomic.set t.tail (tail + 1);
    wake t;
    true
  end

let rec push t x =
  if not (try_push t x) then begin
    spin_then_park t ready_push;
    push t x
  end

let push_chunk t src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length src then
    invalid_arg "Spsc.push_chunk: window out of bounds";
  let rec go pos len =
    if len > 0 then begin
      if Atomic.get t.closed then raise Closed;
      let free = space t in
      if free <= 0 then begin
        spin_then_park t ready_push;
        go pos len
      end
      else begin
        let n = min free len in
        let tail = Atomic.get t.tail in
        for k = 0 to n - 1 do
          t.buf.((tail + k) land t.mask) <- src.(pos + k)
        done;
        Atomic.set t.tail (tail + n);
        wake t;
        go (pos + n) (len - n)
      end
    end
  in
  go pos len

(* -------------------------------------------------------- consumer side *)

let available t =
  let head = Atomic.get t.head in
  let avail = t.tail_cache.(0) - head in
  if avail > 0 then avail
  else begin
    t.tail_cache.(0) <- Atomic.get t.tail;
    t.tail_cache.(0) - head
  end

let ready_pop t = available t > 0

let try_pop t =
  if available t <= 0 then None
  else begin
    let head = Atomic.get t.head in
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    wake t;
    match x with Some _ -> x | None -> assert false
  end

let rec pop t =
  match try_pop t with
  | Some _ as r -> r
  | None ->
      if Atomic.get t.closed then
        (* Items pushed before the close must drain: the closed read above
           happens after the producer's final tail write, so one more
           refresh sees everything. *)
        try_pop t
      else begin
        spin_then_park t ready_pop;
        pop t
      end

let pop_chunk t dst ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length dst then
    invalid_arg "Spsc.pop_chunk: window out of bounds";
  if len = 0 then 0
  else begin
    let rec go () =
      let avail = available t in
      if avail > 0 then begin
        let n = min avail len in
        let head = Atomic.get t.head in
        for k = 0 to n - 1 do
          let i = (head + k) land t.mask in
          dst.(pos + k) <- t.buf.(i);
          t.buf.(i) <- None
        done;
        Atomic.set t.head (head + n);
        wake t;
        n
      end
      else if Atomic.get t.closed then if available t > 0 then go () else 0
      else begin
        spin_then_park t ready_pop;
        go ()
      end
    in
    go ()
  end
