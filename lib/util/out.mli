(** Domain-local redirectable output — the seam that lets the campaign
    runner execute printing experiments on worker domains and still emit
    their bytes in deterministic registry order.

    All experiment-facing printing (including {!Render.Table.print} and
    {!Render.print_figure}) goes through this module. With no capture
    installed, everything falls through to stdout, so sequential callers
    (the CLI's [experiment] subcommand, direct [run_all]) see exactly the
    bytes they always did. Under {!capture}, the same bytes land in a
    per-run buffer that the caller flushes in order. *)

val print_string : string -> unit
(** To the current domain's capture buffer, or stdout if none. *)

val print_char : char -> unit

val newline : unit -> unit
(** [print_string "\n"]. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** [Printf]-style formatting into the current target. *)

val with_buffer : Buffer.t -> (unit -> 'a) -> 'a
(** [with_buffer b f] runs [f] with this domain's output redirected into
    [b], restoring the previous target afterwards (exception-safe).
    Scopes nest. *)

val capture : (unit -> unit) -> string
(** [capture f] runs [f] under a fresh buffer and returns its output. *)

val capturing : unit -> bool
(** Whether this domain currently redirects into a buffer. *)

val set_capture_probe : (int -> unit) option -> unit
(** Install (or clear) an observer called as each {!with_buffer} scope
    exits with the bytes that scope accumulated, on the exiting domain.
    One global slot — owned by the profiler ({!Aspipe_prof.Prof.enable});
    an empty slot costs one atomic load per scope. *)
