(* Domain-local output redirection.

   Each domain carries an optional capture buffer in domain-local storage.
   When a buffer is installed, every byte the experiment code prints through
   this module lands in the buffer instead of stdout; otherwise the bytes
   fall through to stdout unchanged. Capture scopes nest (the previous
   target is restored on exit, even on exceptions), so a worker domain that
   helps execute another task mid-wait cannot leak that task's output into
   its own buffer. *)

let key : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let target () = Domain.DLS.get key

let print_string s =
  match !(target ()) with
  | Some buffer -> Buffer.add_string buffer s
  | None -> Stdlib.print_string s

let print_char c =
  match !(target ()) with
  | Some buffer -> Buffer.add_char buffer c
  | None -> Stdlib.print_char c

let newline () = print_string "\n"

let printf fmt = Printf.ksprintf print_string fmt

(* An optional observer of capture-scope exits (the profiler counts flushed
   bytes through it). One global slot, read with a single atomic load per
   scope — never per byte — so capture cost is unchanged when empty. *)
let capture_probe : (int -> unit) option Atomic.t = Atomic.make None
let set_capture_probe p = Atomic.set capture_probe p

let with_buffer buffer f =
  let cell = target () in
  let previous = !cell in
  cell := Some buffer;
  let before = Buffer.length buffer in
  Fun.protect
    ~finally:(fun () ->
      cell := previous;
      match Atomic.get capture_probe with
      | Some probe -> probe (Buffer.length buffer - before)
      | None -> ())
    f

let capture f =
  let buffer = Buffer.create 1024 in
  with_buffer buffer f;
  Buffer.contents buffer

let capturing () = !(target ()) <> None
