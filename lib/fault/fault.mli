(** Fault injection: scheduled crash/recovery of nodes and partition of
    links, mirroring how {!Aspipe_grid.Loadgen} schedules background load.

    A {!profile} is a declarative fault schedule. Applied to a node it
    drives {!Aspipe_grid.Node.set_up}; applied to a link pair it drives
    both directions' quality to the floor (a blackout — the grid link
    degrades to near-uselessness rather than dropping messages, so no
    in-flight transfer is ever silently lost). Profiles live in
    {!Aspipe_core.Scenario.t}'s [faults] / [net_faults] fields so every
    strategy run replays the identical fault schedule. *)

type profile =
  | Crash_at of float  (** one-shot fail-stop crash at the given time *)
  | Crash_recover of { at : float; duration : float }
      (** crash at [at], recover at [at +. duration] *)
  | Windows of (float * float) list
      (** a list of [(at, duration)] down windows *)
  | Poisson of { mtbf : float; mttr : float }
      (** alternating exponential up/down holds — the classic crash–repair
          renewal process; needs [~rng] *)

val pp_profile : Format.formatter -> profile -> unit

val apply_node :
  ?rng:Aspipe_util.Rng.t ->
  horizon:float ->
  Aspipe_grid.Topology.t ->
  int ->
  profile ->
  unit
(** Schedule the profile's up/down transitions for one node. Stochastic
    profiles draw their whole schedule from [~rng] up front, so the fault
    times are a pure function of the seed. Raises [Invalid_argument] on
    malformed profiles or a missing [~rng]. *)

val apply_link :
  ?rng:Aspipe_util.Rng.t ->
  horizon:float ->
  Aspipe_grid.Topology.t ->
  int ->
  int ->
  profile ->
  unit
(** [apply_link topo a b profile] partitions the (a, b) pair: both
    directions are driven to the quality floor for the profile's down
    periods and restored to nominal (1.0) quality on recovery. *)

val parse_spec : string -> (int * profile) list
(** Parse the CLI fault grammar: semicolon-separated [target:profile]
    clauses where a profile is [crash@T], [crash@T+D], [mtbf=M,mttr=R] or
    [windows=T1+D1,T2+D2,...] — e.g.
    ["0:crash@120;1:mtbf=500,mttr=50"]. Raises [Invalid_argument] with a
    clause-naming message on malformed input. *)
