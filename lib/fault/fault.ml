module Engine = Aspipe_des.Engine
module Rng = Aspipe_util.Rng
module Variate = Aspipe_util.Variate
module Topology = Aspipe_grid.Topology
module Node = Aspipe_grid.Node
module Link = Aspipe_grid.Link

type profile =
  | Crash_at of float
  | Crash_recover of { at : float; duration : float }
  | Windows of (float * float) list
  | Poisson of { mtbf : float; mttr : float }

let pp_profile ppf = function
  | Crash_at t -> Format.fprintf ppf "crash(at=%g)" t
  | Crash_recover { at; duration } -> Format.fprintf ppf "crash(at=%g,for=%g)" at duration
  | Windows ws -> Format.fprintf ppf "windows(%d)" (List.length ws)
  | Poisson { mtbf; mttr } -> Format.fprintf ppf "poisson(mtbf=%g,mttr=%g)" mtbf mttr

let validate = function
  | Crash_at t -> if t < 0.0 then invalid_arg "Fault: crash time must be non-negative"
  | Crash_recover { at; duration } ->
      if at < 0.0 || duration <= 0.0 then
        invalid_arg "Fault: crash window needs at >= 0 and duration > 0"
  | Windows ws ->
      List.iter
        (fun (at, duration) ->
          if at < 0.0 || duration <= 0.0 then
            invalid_arg "Fault: every window needs at >= 0 and duration > 0")
        ws
  | Poisson { mtbf; mttr } ->
      if mtbf <= 0.0 || mttr <= 0.0 then invalid_arg "Fault: mtbf and mttr must be positive"

let require_rng = function
  | Some rng -> rng
  | None -> invalid_arg "Fault: the Poisson profile is stochastic and needs ~rng"

(* Translate a profile into timed down/up transitions on the engine. The
   same driver serves nodes (down = crashed) and links (down = partitioned),
   mirroring how [Netgen.drive] reuses the Loadgen profiles. *)
let drive ?rng ~horizon engine ~go_down ~go_up profile =
  validate profile;
  let at time f =
    if time <= Engine.now engine then f ()
    else ignore (Engine.schedule_at engine ~time (fun () -> f ()))
  in
  match profile with
  | Crash_at t -> at t go_down
  | Crash_recover { at = t; duration } ->
      at t go_down;
      at (t +. duration) go_up
  | Windows ws ->
      List.iter
        (fun (t, duration) ->
          at t go_down;
          at (t +. duration) go_up)
        ws
  | Poisson { mtbf; mttr } ->
      let rng = require_rng rng in
      (* Alternating exponential up/down holds: the classic crash–repair
         renewal process. All draws happen up front, so the schedule is a
         pure function of the seed regardless of how the run unfolds. *)
      let rec plan t0 =
        let crash = t0 +. Variate.exponential rng ~rate:(1.0 /. mtbf) in
        if crash < horizon then begin
          let recover = crash +. Variate.exponential rng ~rate:(1.0 /. mttr) in
          at crash go_down;
          at recover go_up;
          plan recover
        end
      in
      plan (Engine.now engine)

let apply_node ?rng ~horizon topo i profile =
  let node = Topology.node topo i in
  drive ?rng ~horizon (Topology.engine topo)
    ~go_down:(fun () -> Node.set_up node false)
    ~go_up:(fun () -> Node.set_up node true)
    profile

(* A partition drives both directions of the pair to the quality floor
   (Link.set_quality clamps at 0.01): the link is effectively black-holed —
   transfers crawl rather than vanish, which keeps the simulation free of
   undeliverable messages while still starving whatever depends on the
   link. *)
let apply_link ?rng ~horizon topo a b profile =
  let forward = Topology.link topo ~src:a ~dst:b in
  let backward = Topology.link topo ~src:b ~dst:a in
  drive ?rng ~horizon (Topology.engine topo)
    ~go_down:(fun () ->
      Link.set_quality forward 0.0;
      Link.set_quality backward 0.0)
    ~go_up:(fun () ->
      Link.set_quality forward 1.0;
      Link.set_quality backward 1.0)
    profile

(* CLI grammar: "0:crash@120;2:crash@50+30;1:mtbf=500,mttr=50;
   3:windows=10+5,40+5". One [target:profile] clause per ';'. *)
let parse_profile s =
  let fail () = invalid_arg (Printf.sprintf "Fault.parse_spec: cannot parse %S" s) in
  let float_of s = match float_of_string_opt (String.trim s) with Some f -> f | None -> fail () in
  let s = String.trim s in
  if String.length s > 6 && String.sub s 0 6 = "crash@" then begin
    let rest = String.sub s 6 (String.length s - 6) in
    match String.index_opt rest '+' with
    | None -> Crash_at (float_of rest)
    | Some k ->
        Crash_recover
          {
            at = float_of (String.sub rest 0 k);
            duration = float_of (String.sub rest (k + 1) (String.length rest - k - 1));
          }
  end
  else if String.length s > 5 && String.sub s 0 5 = "mtbf=" then begin
    match String.split_on_char ',' s with
    | [ mtbf_part; mttr_part ] ->
        let value part prefix =
          if
            String.length part > String.length prefix
            && String.sub part 0 (String.length prefix) = prefix
          then float_of (String.sub part (String.length prefix) (String.length part - String.length prefix))
          else fail ()
        in
        Poisson
          { mtbf = value (String.trim mtbf_part) "mtbf="; mttr = value (String.trim mttr_part) "mttr=" }
    | _ -> fail ()
  end
  else if String.length s > 8 && String.sub s 0 8 = "windows=" then begin
    let rest = String.sub s 8 (String.length s - 8) in
    let window w =
      match String.index_opt w '+' with
      | Some k ->
          (float_of (String.sub w 0 k), float_of (String.sub w (k + 1) (String.length w - k - 1)))
      | None -> fail ()
    in
    Windows (List.map window (String.split_on_char ',' rest))
  end
  else fail ()

let parse_spec spec =
  let clause s =
    let s = String.trim s in
    match String.index_opt s ':' with
    | Some k ->
        let node =
          match int_of_string_opt (String.trim (String.sub s 0 k)) with
          | Some n when n >= 0 -> n
          | Some _ | None ->
              invalid_arg (Printf.sprintf "Fault.parse_spec: bad node index in %S" s)
        in
        let profile = parse_profile (String.sub s (k + 1) (String.length s - k - 1)) in
        validate profile;
        (node, profile)
    | None -> invalid_arg (Printf.sprintf "Fault.parse_spec: missing ':' in clause %S" s)
  in
  match
    spec |> String.split_on_char ';'
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map clause
  with
  | [] -> invalid_arg "Fault.parse_spec: empty fault spec"
  | schedule -> schedule
