(** The adaptive parallel pipeline pattern — the reproduction's primary
    contribution.

    One {!run} executes the full ASPara-style lifecycle on a scenario:

    + {b Calibration}: probe the stage costs ({!Calibration}) and, unless
      disabled, take an initial resource reading;
    + {b Scheduling}: choose the initial stage→processor mapping by model
      search over the calibrated cost spec;
    + {b Execution with monitoring}: run the pipeline on the simulated grid
      while the {!Aspipe_grid.Monitor} samples resource availability through
      noisy sensors and feeds the NWS-style forecasters;
    + {b Adaptation}: at every evaluation epoch, hand the policy a context of
      fresh forecasts, the observed output rate and a migration-cost
      estimator; if it answers [Remap], migrate the moving stages (state
      transfer over the network, restart penalty folded into the cost
      estimate the policy already cleared).

    Everything the engine decides from is observable information —
    calibration estimates, noisy monitor forecasts, the trace — never the
    simulator's ground truth, so comparisons against static and oracle
    baselines are honest. *)

type config = {
  policy : unit -> Policy.t;  (** factory, so every run gets fresh state *)
  evaluator : Aspipe_model.Predictor.kind;
  monitor_every : float;
  evaluate_every : float;
  sensor : Aspipe_grid.Monitor.sensor_spec;
  probes : int;
  measurement_noise : float;
  migration : Migration.t;
  fix_first_on : int option;
      (** pin stage 0's processor during search (paper-style tables) *)
  initial_resource_reading : bool;
      (** calibrate against ground-truth availability at t = 0 (an NWS
          deployment has pre-run history); otherwise assume dedicated *)
  failover : Policy.failover;
      (** failure response: when the monitor suspects a mapped node (missed
          heartbeats), re-map the orphaned stages to survivors and replay
          their checkpointed items — checked at each evaluation epoch,
          before the performance policy *)
  exhaustive_limit : int;
      (** largest candidate space the predictor searches exhaustively before
          falling back to greedy + hill-climb (default
          {!Aspipe_model.Search.default_exhaustive_limit}) *)
}

val default_config : config
(** threshold policy (drop 0.25, cooldown 30 s), analytic evaluator,
    monitor every 5 s, evaluate every 10 s, default sensor, 5 probes,
    default migration model, initial reading on,
    {!Policy.default_failover}. *)

type report = {
  scenario_name : string;
  policy_name : string;
  trace : Aspipe_grid.Trace.t;
  calibration : Calibration.t;
  initial_mapping : Aspipe_model.Mapping.t;
  final_mapping : Aspipe_model.Mapping.t;
  makespan : float;
  throughput : float;
  adaptation_count : int;
  policy_evaluations : int;
  monitor_samples : int;
  failover_count : int;  (** committed failure-driven re-maps *)
  items_lost : int;  (** cumulative item-loss events across all crashes *)
  items_redispatched : int;  (** checkpoint replays that re-entered the pipe *)
}

val run :
  ?config:config ->
  ?instrument:(Aspipe_obs.Bus.t -> unit) ->
  scenario:Scenario.t ->
  seed:int ->
  unit ->
  report
(** Build a fresh environment from the scenario and execute to completion.
    Deterministic in [(scenario, config, seed)].

    [instrument] is called with the run's event bus before calibration
    starts, so telemetry sinks (JSONL, Perfetto, metrics meters) can be
    subscribed and observe the complete run: calibration samples, monitor
    readings, forecast updates, every service/transfer/completion, and each
    adaptation decision (considered / committed / rejected). Sinks are pure
    observers — attaching them never changes the run. *)

val pp_report : Format.formatter -> report -> unit
